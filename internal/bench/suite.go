package bench

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"testing"
	"time"

	"repro/async"
	"repro/async/jobs"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/la"
	"repro/internal/opt"
)

// SuiteOptions configure a suite run.
type SuiteOptions struct {
	// SchedulerJobs is how many jobs the serving-layer measurement pushes
	// through the 2-engine pool (default 60).
	SchedulerJobs int
	// Log, when non-nil, receives one line per metric as it is measured.
	Log io.Writer
}

func (o *SuiteOptions) defaults() {
	if o.SchedulerJobs <= 0 {
		o.SchedulerJobs = 60
	}
}

// RunSuite measures the hot paths and returns a populated report:
// micro-benchmarks of the gradient kernel (ns/gradient, allocs/op), the
// sparse substrate, and an end-to-end scheduler throughput run with
// wait-time summaries. Metric names are stable (see Entry).
func RunSuite(now time.Time, opts SuiteOptions) (*Report, error) {
	opts.defaults()
	r := NewReport(now)
	log := func(e Entry) {
		r.Add(e)
		if opts.Log != nil {
			fmt.Fprintf(opts.Log, "%-28s %14.4g %s\n", e.Name, e.Value, e.Unit)
		}
	}

	if err := gradMetrics(log); err != nil {
		return nil, err
	}
	if err := substrateMetrics(log); err != nil {
		return nil, err
	}
	if err := sparseMetrics(log); err != nil {
		return nil, err
	}
	if err := proxMetrics(log); err != nil {
		return nil, err
	}
	if err := selectMetrics(log); err != nil {
		return nil, err
	}
	if err := checkpointMetrics(log); err != nil {
		return nil, err
	}
	if err := schedulerMetrics(log, opts.SchedulerJobs); err != nil {
		return nil, err
	}
	if err := preemptMetrics(log); err != nil {
		return nil, err
	}
	if err := storeMetrics(log); err != nil {
		return nil, err
	}
	if err := durableSchedulerMetrics(log); err != nil {
		return nil, err
	}
	if err := replicaMetrics(log); err != nil {
		return nil, err
	}
	if err := telemetryMetrics(log); err != nil {
		return nil, err
	}
	return r, nil
}

// checkpointMetrics times the driver-checkpoint save path (the per-capture
// cost a CheckpointEvery cadence pays): a 100k-dimension model plus history
// average through the binary codec into a reused buffer.
func checkpointMetrics(log func(Entry)) error {
	const dim = 100_000
	cp := &opt.Checkpoint{Algorithm: "asaga", W: la.NewVec(dim), Updates: 1 << 20, AvgHist: la.NewVec(dim)}
	for i := range cp.W {
		cp.W[i] = float64(i%13) * 0.25
		cp.AvgHist[i] = float64(i%7) * 0.5
	}
	var buf bytes.Buffer
	res := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			buf.Reset()
			if err := opt.SaveCheckpoint(&buf, cp); err != nil {
				b.Fatal(err)
			}
		}
	})
	log(Entry{Name: "checkpoint.save_ns", Value: float64(res.NsPerOp()), Unit: "ns/op", Better: LowerIsBetter,
		Note: "100k-dim model + history average, binary codec, reused buffer"})
	return nil
}

// preemptMetrics measures the scheduler's preempt→resume round trip: the
// wall time from Preempt(id) until the job is checkpointed aside, re-queued
// and running again on the freed engine.
func preemptMetrics(log func(Entry)) error {
	s, err := jobs.New(jobs.Config{
		Engines:    1,
		QueueDepth: 4,
		Retention:  4,
		EngineOptions: []async.Option{
			async.WithWorkers(1),
			async.WithPartitions(2),
		},
	})
	if err != nil {
		return err
	}
	defer s.Close()
	id, err := s.Submit(jobs.Spec{
		Algorithm:     "asgd",
		Dataset:       jobs.DatasetSpec{Name: "rcv1-like"},
		Step:          jobs.StepSpec{Kind: "const", A: 0.01},
		Updates:       50_000_000, // effectively unbounded; canceled below
		SnapshotEvery: 10_000,
	})
	if err != nil {
		return err
	}
	deadline := time.Now().Add(2 * time.Minute)
	waitFor := func(cond func(jobs.Job) bool) error {
		for {
			job, err := s.Status(id)
			if err != nil {
				return err
			}
			if cond(job) {
				return nil
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("bench: preempt cycle stuck in %s", job.State)
			}
			time.Sleep(200 * time.Microsecond)
		}
	}
	if err := waitFor(func(j jobs.Job) bool { return j.State == jobs.StateRunning }); err != nil {
		return err
	}
	const cycles = 5
	var total time.Duration
	for i := 0; i < cycles; i++ {
		before, err := s.Status(id)
		if err != nil {
			return err
		}
		start := time.Now()
		if err := s.Preempt(id); err != nil {
			return err
		}
		if err := waitFor(func(j jobs.Job) bool {
			return j.Preemptions > before.Preemptions && j.State == jobs.StateRunning
		}); err != nil {
			return err
		}
		total += time.Since(start)
	}
	if err := s.Cancel(id); err != nil {
		return err
	}
	log(Entry{Name: "scheduler.preempt_resume_ms", Value: total.Seconds() * 1000 / cycles, Unit: "ms", Better: LowerIsBetter,
		Note: fmt.Sprintf("Preempt→checkpoint→requeue→running again, mean of %d cycles, 1-engine pool", cycles)})
	return nil
}

// gradEnv builds the single-worker environment the kernel benchmarks run
// on: a synthetic 4000×200 dataset with 40 nnz/row, split 4 ways, model
// broadcast cached. Mirrors BenchmarkGradKernelLocal in bench_test.go.
func gradEnv() (*cluster.Env, []int, error) {
	d, err := dataset.Generate(dataset.SynthConfig{
		Name: "bench", Rows: 4000, Cols: 200, NNZPerRow: 40, Seed: 1,
	})
	if err != nil {
		return nil, nil, err
	}
	parts, err := dataset.Split(d, 4)
	if err != nil {
		return nil, nil, err
	}
	env := cluster.NewEnv(0, 1, nil)
	idx := make([]int, 0, len(parts))
	for _, p := range parts {
		if err := env.InstallPartition(p); err != nil {
			return nil, nil, err
		}
		idx = append(idx, p.Index)
	}
	env.Cache().Put("w", 1, la.NewVec(d.NumCols()))
	return env, idx, nil
}

func gradMetrics(log func(Entry)) error {
	env, idx, err := gradEnv()
	if err != nil {
		return err
	}
	kern := opt.GradKernel(opt.LeastSquares{}, core.DynBroadcast{ID: "w", Version: 1}, 0.1)
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			v, n, err := kern(env, idx, int64(i))
			if err != nil {
				b.Fatal(err)
			}
			if n > 0 {
				la.PutVec(v.(la.Vec))
			}
		}
	})
	log(Entry{Name: "grad.ns_per_task", Value: float64(res.NsPerOp()), Unit: "ns/op", Better: LowerIsBetter,
		Note: "mini-batch GradKernel, 4 partitions, frac 0.1, steady state"})
	log(Entry{Name: "grad.allocs_per_task", Value: float64(res.AllocsPerOp()), Unit: "allocs/op", Better: LowerIsBetter,
		Note: "zero-alloc inner loop; the single steady-state alloc is payload boxing"})
	log(Entry{Name: "grad.bytes_per_task", Value: float64(res.AllocedBytesPerOp()), Unit: "B/op", Better: LowerIsBetter})

	// ns/gradient: full sweep (frac 1) so sampling noise doesn't enter
	full := opt.GradKernel(opt.LeastSquares{}, core.DynBroadcast{ID: "w", Version: 1}, 1.0)
	var samples int
	res = testing.Benchmark(func(b *testing.B) {
		samples = 0
		for i := 0; i < b.N; i++ {
			v, n, err := full(env, idx, int64(i))
			if err != nil {
				b.Fatal(err)
			}
			samples += n
			la.PutVec(v.(la.Vec))
		}
	})
	perSample := float64(res.T.Nanoseconds()) / float64(samples)
	log(Entry{Name: "grad.ns_per_sample", Value: perSample, Unit: "ns/gradient", Better: LowerIsBetter,
		Note: "per-sample cost of the fused inner loop (40 nnz/row)"})
	return nil
}

func substrateMetrics(log func(Entry)) error {
	d, err := dataset.Generate(dataset.SynthConfig{
		Name: "bench", Rows: 2000, Cols: 500, NNZPerRow: 25, Seed: 1,
	})
	if err != nil {
		return err
	}
	m := d.X
	x, y := la.NewVec(m.NumCols), la.NewVec(m.NumRows)
	for i := range x {
		x[i] = float64(i%7) - 3
	}
	res := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m.MatVec(x, y)
		}
	})
	bytesPerOp := float64(m.NNZ() * 12) // 8B value + 4B col index
	log(Entry{Name: "la.matvec_mbps", Value: bytesPerOp / float64(res.NsPerOp()) * 1e3, Unit: "MB/s", Better: HigherIsBetter,
		Note: "CSR MatVec streaming rate, 2000x500 @ 25 nnz/row"})

	idx, val := m.RowNZ(0)
	g := la.NewVec(m.NumCols)
	res = testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			la.GradAccum(0.5, idx, val, g)
		}
	})
	log(Entry{Name: "la.grad_accum_ns", Value: float64(res.NsPerOp()), Unit: "ns/op", Better: LowerIsBetter,
		Note: fmt.Sprintf("fused sparse scatter over %d nnz", len(idx))})
	return nil
}

func schedulerMetrics(log func(Entry), n int) error {
	s, err := jobs.New(jobs.Config{
		Engines:    2,
		QueueDepth: n + 1,
		Retention:  n + 1,
		EngineOptions: []async.Option{
			async.WithWorkers(2),
			async.WithPartitions(2),
		},
	})
	if err != nil {
		return err
	}
	defer s.Close()
	spec := jobs.Spec{
		Algorithm: "asgd",
		Dataset:   jobs.DatasetSpec{Name: "rcv1-like"},
		Step:      jobs.StepSpec{Kind: "const", A: 0.01},
		Updates:   25,
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	// warm up: engines spun, dataset generated and distributed
	id, err := s.Submit(spec)
	if err != nil {
		return err
	}
	if _, err := s.Wait(ctx, id); err != nil {
		return err
	}
	start := time.Now()
	ids := make([]jobs.ID, n)
	for i := range ids {
		if ids[i], err = s.Submit(spec); err != nil {
			return err
		}
	}
	var waitMeanMS float64
	var waited int
	for _, id := range ids {
		job, err := s.Wait(ctx, id)
		if err != nil {
			return err
		}
		if job.State != jobs.StateDone {
			return fmt.Errorf("bench: job %s finished %s (%s)", job.ID, job.State, job.Err)
		}
		if job.Wait != nil {
			waitMeanMS += job.Wait.MeanMS
			waited++
		}
	}
	elapsed := time.Since(start)
	log(Entry{Name: "sched.jobs_per_sec", Value: float64(n) / elapsed.Seconds(), Unit: "jobs/sec", Better: HigherIsBetter,
		Note: fmt.Sprintf("%d ASGD jobs through a 2-engine pool", n)})
	if waited > 0 {
		log(Entry{Name: "sched.worker_wait_mean_ms", Value: waitMeanMS / float64(waited), Unit: "ms", Better: LowerIsBetter,
			Note: "mean per-worker wait across completed jobs"})
	}
	st := s.Stats()
	log(Entry{Name: "sched.queue_wait_avg_ms", Value: st.AvgQueueWaitMS, Unit: "ms", Better: LowerIsBetter,
		Note: "avg time jobs sat queued before dispatch"})
	return nil
}
