package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"testing"
	"time"

	"repro/async"
	"repro/async/jobs"
	"repro/async/jobs/store"
	"repro/internal/la"
	"repro/internal/opt"
)

func durableSpec() jobs.Spec {
	return jobs.Spec{
		Algorithm: "asgd",
		Dataset:   jobs.DatasetSpec{Name: "rcv1-like"},
		Step:      jobs.StepSpec{Kind: "const", A: 0.01},
		Updates:   25,
	}
}

// storeMetrics measures the durability layer in isolation: the
// fsync-inclusive append latency the append-before-ack invariant pays, and
// cold-boot recovery over a populated log.
func storeMetrics(log func(Entry)) error {
	// store.append_ns: one durable transition (frame encode + write + fsync)
	dir, err := os.MkdirTemp("", "bench-wal-append-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	w, err := store.Open(dir, store.Options{})
	if err != nil {
		return err
	}
	var appendErr error
	res := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rec := &store.Record{Type: store.TypeCheckpointed, Job: "job-000001", Updates: int64(i), DispatchSeq: int64(i)}
			if appendErr = w.Append(rec); appendErr != nil {
				b.Fatal(appendErr)
			}
		}
	})
	w.Close()
	if appendErr != nil {
		return appendErr
	}
	log(Entry{Name: "store.append_ns", Value: float64(res.NsPerOp()), Unit: "ns/op", Better: LowerIsBetter,
		Note: "durable WAL append: frame encode + write + fsync (append-before-ack)"})

	// store.recovery_ms: scheduler cold boot over a 200-job log — replay,
	// rebuild, checkpoint loads, post-recovery compaction.
	dir2, err := os.MkdirTemp("", "bench-wal-recover-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir2)
	w2, err := store.Open(dir2, store.Options{NoSync: true})
	if err != nil {
		return err
	}
	specJSON, err := json.Marshal(durableSpec())
	if err != nil {
		return err
	}
	cp := &opt.Checkpoint{Algorithm: "asgd", W: la.NewVec(1000), Updates: 500}
	cp.SetInt("dispatch_seq", 7)
	const jobsN = 200
	for i := 1; i <= jobsN; i++ {
		id := fmt.Sprintf("job-%06d", i)
		if err := w2.Append(&store.Record{Type: store.TypeSubmitted, Job: id, JobSeq: int64(i), Spec: specJSON}); err != nil {
			return err
		}
		switch i % 4 {
		case 0: // terminal
			if err := w2.Append(&store.Record{Type: store.TypeDispatched, Job: id}); err != nil {
				return err
			}
			if err := w2.Append(&store.Record{Type: store.TypeDone, Job: id, Updates: 25, FinalError: 0.01, HasFinal: true}); err != nil {
				return err
			}
		case 1: // preempted with a durable checkpoint to load
			if err := w2.Append(&store.Record{Type: store.TypeDispatched, Job: id}); err != nil {
				return err
			}
			if err := w2.SaveCheckpoint(id, 7, cp); err != nil {
				return err
			}
			if err := w2.Append(&store.Record{Type: store.TypeCheckpointed, Job: id, Updates: 500, DispatchSeq: 7}); err != nil {
				return err
			}
			if err := w2.Append(&store.Record{Type: store.TypePreempted, Job: id, Updates: 500, DispatchSeq: 7}); err != nil {
				return err
			}
		}
	}
	if err := w2.Close(); err != nil {
		return err
	}
	w3, err := store.Open(dir2, store.Options{NoSync: true})
	if err != nil {
		return err
	}
	defer w3.Close()
	s, err := jobs.New(jobs.Config{
		Engines:       1,
		QueueDepth:    jobsN + 1,
		Retention:     jobsN + 1,
		Store:         w3,
		EngineOptions: []async.Option{async.WithWorkers(1), async.WithPartitions(2)},
	})
	if err != nil {
		return err
	}
	st := s.Stats()
	if err := s.Close(); err != nil {
		return err
	}
	if st.RecoveredJobs != jobsN {
		return fmt.Errorf("bench: recovered %d jobs, want %d", st.RecoveredJobs, jobsN)
	}
	log(Entry{Name: "store.recovery_ms", Value: st.RecoveryMS, Unit: "ms", Better: LowerIsBetter,
		Note: fmt.Sprintf("cold boot over a %d-job log (queued/preempted/done mix, checkpoint loads, compaction)", jobsN)})
	return nil
}

// durableSchedulerMetrics measures serving throughput with durability on —
// every transition fsynced — across a drain/restart cycle in the middle of
// the run, so the number prices recovery into the sustained rate.
func durableSchedulerMetrics(log func(Entry)) error {
	dir, err := os.MkdirTemp("", "bench-wal-sustained-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	w, err := store.Open(dir, store.Options{})
	if err != nil {
		return err
	}
	const n = 40
	cfg := jobs.Config{
		Engines:    2,
		QueueDepth: n + 2,
		Retention:  n + 2,
		Store:      w,
		EngineOptions: []async.Option{
			async.WithWorkers(2),
			async.WithPartitions(2),
		},
	}
	s, err := jobs.New(cfg)
	if err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	// warm up: engines spun, dataset generated and distributed
	warm, err := s.Submit(durableSpec())
	if err != nil {
		return err
	}
	if _, err := s.Wait(ctx, warm); err != nil {
		return err
	}

	start := time.Now()
	ids := make([]jobs.ID, n)
	for i := range ids {
		if ids[i], err = s.Submit(durableSpec()); err != nil {
			return err
		}
	}
	// let half the batch complete, then restart the service mid-run
	for s.Stats().Done < 1+n/2 {
		if ctx.Err() != nil {
			return fmt.Errorf("bench: durable batch stalled: %w", ctx.Err())
		}
		time.Sleep(time.Millisecond)
	}
	if err := s.Drain(ctx); err != nil {
		return err
	}
	if err := s.Close(); err != nil {
		return err
	}
	if err := w.Close(); err != nil {
		return err
	}
	w2, err := store.Open(dir, store.Options{})
	if err != nil {
		return err
	}
	defer w2.Close()
	cfg.Store = w2
	s2, err := jobs.New(cfg)
	if err != nil {
		return err
	}
	defer s2.Close()
	for _, id := range ids {
		job, err := s2.Wait(ctx, id)
		if err != nil {
			return err
		}
		if job.State != jobs.StateDone {
			return fmt.Errorf("bench: durable job %s finished %s (%s)", job.ID, job.State, job.Err)
		}
	}
	elapsed := time.Since(start)
	log(Entry{Name: "scheduler.sustained_jobs_per_sec", Value: float64(n) / elapsed.Seconds(), Unit: "jobs/sec", Better: HigherIsBetter,
		Note: fmt.Sprintf("%d ASGD jobs through a WAL-backed 2-engine pool with a mid-batch drain/restart", n)})
	return nil
}

// replicaCfg builds one replica's scheduler config over a shared store with
// bench-grade lease timing (tight scans so failover and cross-replica
// mirroring, not ticker cadence, dominate the numbers).
func replicaCfg(st store.Store, replica string, depth int) jobs.Config {
	return jobs.Config{
		Engines:        1,
		QueueDepth:     depth,
		Retention:      depth,
		Store:          st,
		ReplicaID:      replica,
		LeaseTTL:       200 * time.Millisecond,
		RenewEvery:     40 * time.Millisecond,
		AdoptScanEvery: 25 * time.Millisecond,
		EngineOptions: []async.Option{
			async.WithWorkers(2),
			async.WithPartitions(2),
		},
	}
}

// replicaMetrics measures multi-replica serving: failover latency (kill the
// owning replica mid-run, time from lease expiry to the survivor's adoption
// claim) and batch throughput at one vs two replicas over one shared
// directory — the second replica claims work off the shared log, so the
// jobs/sec delta is the scale-out the lease CAS buys.
func replicaMetrics(log func(Entry)) error {
	// scheduler.failover_ms: orphan expiry → adoption claim on the survivor
	dir, err := os.MkdirTemp("", "bench-replica-failover-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	shA, err := store.OpenShared(dir, "a", store.SharedOptions{NoSync: true})
	if err != nil {
		return err
	}
	sA, err := jobs.New(replicaCfg(shA, "a", 4))
	if err != nil {
		return err
	}
	spec := durableSpec()
	spec.Updates = 4000
	spec.CheckpointEvery = 50
	id, err := sA.Submit(spec)
	if err != nil {
		return err
	}
	deadline := time.Now().Add(2 * time.Minute)
	for shA.Metrics().CheckpointSpills < 1 {
		if time.Now().After(deadline) {
			return fmt.Errorf("bench: replica a never spilled a checkpoint")
		}
		time.Sleep(time.Millisecond)
	}
	sA.Kill() // crash without releasing: the lease must expire
	shA.Kill()
	shB, err := store.OpenShared(dir, "b", store.SharedOptions{NoSync: true})
	if err != nil {
		return err
	}
	defer shB.Close()
	sB, err := jobs.New(replicaCfg(shB, "b", 4))
	if err != nil {
		return err
	}
	defer sB.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	job, err := sB.Wait(ctx, id)
	if err != nil {
		return err
	}
	if job.State != jobs.StateDone {
		return fmt.Errorf("bench: failed-over job finished %s (%s)", job.State, job.Err)
	}
	st := sB.Stats()
	if st.Adopted < 1 || st.FailoverMS <= 0 {
		return fmt.Errorf("bench: no adoption measured (adopted %d, failover %.3f ms)", st.Adopted, st.FailoverMS)
	}
	log(Entry{Name: "scheduler.failover_ms", Value: st.FailoverMS, Unit: "ms", Better: LowerIsBetter,
		Note: "owner killed mid-run: lease expiry → survivor's adoption claim (checkpointed resume)"})

	// scheduler.replica{1,2}_jobs_per_sec: one batch, one vs two claimants
	one, err := replicaBatch(1)
	if err != nil {
		return err
	}
	two, err := replicaBatch(2)
	if err != nil {
		return err
	}
	log(Entry{Name: "scheduler.replica1_jobs_per_sec", Value: one, Unit: "jobs/sec", Better: HigherIsBetter,
		Note: "16 ASGD jobs (400 updates each), single replica over a shared store (lease CAS on every dispatch)"})
	log(Entry{Name: "scheduler.replica2_jobs_per_sec", Value: two, Unit: "jobs/sec", Better: HigherIsBetter,
		Note: "same batch, two replicas claiming off one shared log"})
	return nil
}

// replicaBatch pushes one batch of jobs through nReplicas schedulers
// sharing a directory and returns jobs/sec. All jobs are submitted on the
// first replica; the rest import them from the shared log and compete for
// claims.
func replicaBatch(nReplicas int) (float64, error) {
	// heavy enough per job that compute, not tail-scan cadence, dominates —
	// otherwise the cross-replica mirror latency hides the scale-out
	const n = 16
	batchSpec := durableSpec()
	batchSpec.Updates = 400
	dir, err := os.MkdirTemp("", "bench-replica-batch-*")
	if err != nil {
		return 0, err
	}
	defer os.RemoveAll(dir)
	scheds := make([]*jobs.Scheduler, nReplicas)
	for i := range scheds {
		name := fmt.Sprintf("r%d", i)
		sh, err := store.OpenShared(dir, name, store.SharedOptions{NoSync: true})
		if err != nil {
			return 0, err
		}
		defer sh.Close()
		if scheds[i], err = jobs.New(replicaCfg(sh, name, n+2)); err != nil {
			return 0, err
		}
		defer scheds[i].Close()
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	// warm up every replica's engine and dataset cache
	for _, s := range scheds {
		id, err := s.Submit(durableSpec())
		if err != nil {
			return 0, err
		}
		if _, err := s.Wait(ctx, id); err != nil {
			return 0, err
		}
	}
	start := time.Now()
	ids := make([]jobs.ID, n)
	for i := range ids {
		var err error
		if ids[i], err = scheds[0].Submit(batchSpec); err != nil {
			return 0, err
		}
	}
	// jobs finished on other replicas mirror back through the tail scan
	for _, id := range ids {
		job, err := scheds[0].Wait(ctx, id)
		if err != nil {
			return 0, err
		}
		if job.State != jobs.StateDone {
			return 0, fmt.Errorf("bench: replica job %s finished %s (%s)", job.ID, job.State, job.Err)
		}
	}
	return float64(n) / time.Since(start).Seconds(), nil
}
