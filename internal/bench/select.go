package bench

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/la"
	"repro/internal/la/maxip"
	"repro/internal/metrics"
	"repro/internal/opt"
	"repro/internal/rdd"
)

// Greedy-selection metrics: per-round cost of the maintained MaxIP index
// against the exact O(d) scan it replaces at the 1M-dimension sparse-wide
// shape, the SRP-LSH comparison point, the quickselect top-k compressor,
// and rounds-to-tolerance of greedy vs cyclic coordinate descent on the
// concentrated-signal design greedy selection exists for.

// selectWide generates the full-scale sparse-wide matrix (20k×1M, 100
// nnz/row — ~860k distinct stored columns) and its column view.
func selectWide() (*la.CSR, *la.ColView, error) {
	d, err := dataset.Generate(dataset.SparseWide(dataset.ScaleFull, 1))
	if err != nil {
		return nil, nil, err
	}
	return d.X, la.NewColView(d.X), nil
}

// extractionNs measures one top-16 selection against an up-to-date index.
// exactBelow < 0 runs the tournament tree (O(k·log d)), a huge value
// forces the exact full scan (O(d)). Incremental query maintenance is
// deliberately excluded: both backends pay the bitwise-identical dirty-
// column re-scoring (see maintenanceNs), so extraction is the entire
// differential between them.
func extractionNs(x *la.CSR, cv *la.ColView, exactBelow int) float64 {
	ix := maxip.New(x, cv, nil, maxip.Options{ExactBelow: exactBelow})
	rng := rand.New(rand.NewSource(7))
	u := la.NewVec(x.NumRows)
	for i := range u {
		u[i] = rng.NormFloat64()
	}
	ix.Rebuild(u)
	var out []int32
	res := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			out = ix.TopK(16, out[:0])
		}
	})
	return float64(res.NsPerOp())
}

// maintenanceNs measures the per-round incremental maintenance both
// backends share: a 32-row query update (a mini-batch worth of changed
// residuals) flushed through the dirty-row → dirty-column re-scoring.
func maintenanceNs(x *la.CSR, cv *la.ColView) float64 {
	ix := maxip.New(x, cv, nil, maxip.Options{})
	rng := rand.New(rand.NewSource(7))
	batch := make([]int32, 32)
	res := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for t := range batch {
				batch[t] = int32(rng.Intn(x.NumRows))
			}
			for _, r := range batch {
				ix.SetRow(r, float64(i%17)-8)
			}
			ix.Flush()
		}
	})
	return float64(res.NsPerOp())
}

// srpQueryNs measures one SRP-LSH top-16 query on the same shape: the
// structure needs no maintenance, but every query pays Tables·Bits dense
// projections of the full query vector — the cost model the maintained
// index avoids.
func srpQueryNs(x *la.CSR, cv *la.ColView) float64 {
	s := maxip.NewSRP(cv, x.NumRows, maxip.SRPOptions{Tables: 4, Bits: 10, Seed: 3})
	rng := rand.New(rand.NewSource(9))
	q := la.NewVec(x.NumRows)
	for i := range q {
		q[i] = rng.NormFloat64()
	}
	var out []int32
	res := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			q[i%len(q)] = float64(i%17) - 8
			out = s.TopK(q, 16, out[:0])
		}
	})
	return float64(res.NsPerOp())
}

// benchIllCond is the concentrated-signal regression design greedy
// selection is built for: `heavy` strong columns at the end of the index
// range carry all the label signal and are row-disjoint (each row stores
// exactly one heavy entry — no intra-block coupling), while a long weak
// tail carries only noise. A cyclic cursor burns most of a pass before
// touching signal; greedy jumps straight to it.
func benchIllCond(rows, cols, heavy int, seed int64) (*dataset.Dataset, error) {
	rng := rand.New(rand.NewSource(seed))
	const tailPerRow = 5
	m := la.NewCSR(rows, cols, rows*(tailPerRow+1))
	hbase := cols - heavy
	w := la.NewVec(cols)
	for j := 0; j < heavy; j++ {
		w[hbase+j] = 1 + float64(j%3)
	}
	for i := 0; i < rows; i++ {
		seen := map[int32]bool{}
		idx := make([]int32, 0, tailPerRow+1)
		for len(idx) < tailPerRow {
			j := int32(rng.Intn(hbase))
			if !seen[j] {
				seen[j] = true
				idx = append(idx, j)
			}
		}
		idx = append(idx, int32(hbase+i%heavy))
		for a := 1; a < len(idx); a++ { // tail draws are unsorted; insertion-fix
			for b := a; b > 0 && idx[b] < idx[b-1]; b-- {
				idx[b], idx[b-1] = idx[b-1], idx[b]
			}
		}
		val := make([]float64, len(idx))
		for k, j := range idx {
			if int(j) >= hbase {
				val[k] = 10
			} else {
				val[k] = 0.3 * rng.NormFloat64()
			}
		}
		if err := m.AppendRow(la.SparseVec{Idx: idx, Val: val, N: cols}); err != nil {
			return nil, err
		}
	}
	y := la.NewVec(rows)
	m.MatVec(w, y)
	for i := range y {
		y[i] += 0.01 * rng.NormFloat64()
	}
	return &dataset.Dataset{Name: "ill-cond", X: m, Y: y}, nil
}

// roundsToTol returns the first round at which the trace error drops to
// tol, or the full budget when it never does.
func roundsToTol(tr *metrics.Trace, tol float64, budget int) float64 {
	for _, p := range tr.Points {
		if p.Error <= tol {
			return float64(p.Updates)
		}
	}
	return float64(budget)
}

// greedyRounds runs greedy and cyclic CD on the concentrated-signal design
// and reports each mode's rounds to 1e-4 relative suboptimality.
func greedyRounds() (greedy, cyclic float64, err error) {
	d, err := benchIllCond(400, 768, 16, 47)
	if err != nil {
		return 0, 0, err
	}
	c, err := cluster.NewLocal(cluster.Config{NumWorkers: 2, Seed: 1})
	if err != nil {
		return 0, 0, err
	}
	defer c.Shutdown()
	rctx := rdd.NewContext(c)
	if _, err := rctx.Distribute(d, 4); err != nil {
		return 0, 0, err
	}
	ac := core.New(rctx)
	defer ac.Close()

	loss := opt.Composite{Inner: opt.LeastSquares{}, L2: 0.001}
	run := func(mode string, rounds, snap int, fstar float64) (*opt.Result, error) {
		p := opt.CDParams{BlockSize: 16, Mode: mode, DampStep: 1}
		p.Loss = loss
		p.Updates = rounds
		p.SnapshotEvery = snap
		return opt.CD(ac, d, p, fstar)
	}
	// reference optimum: a long greedy run to convergence (cyclic is still
	// descending after 600 rounds here — its first pass dumps spurious
	// weight on the noise tail, then repairs it one block per round)
	ref, err := run("greedy", 600, 600, 0)
	if err != nil {
		return 0, 0, err
	}
	fstar := opt.Objective(d, loss, ref.W)
	tol := 1e-4 * math.Max(1, math.Abs(fstar))

	const budget = 400
	rg, err := run("greedy", budget, 1, fstar)
	if err != nil {
		return 0, 0, err
	}
	rc, err := run("cyclic", budget, 1, fstar)
	if err != nil {
		return 0, 0, err
	}
	return roundsToTol(rg.Trace, tol, budget), roundsToTol(rc.Trace, tol, budget), nil
}

func selectMetrics(log func(Entry)) error {
	x, cv, err := selectWide()
	if err != nil {
		return err
	}
	cols := len(cv.Cols)

	maxipNs := extractionNs(x, cv, -1)
	log(Entry{Name: "select.maxip_ns", Value: maxipNs, Unit: "ns/op", Better: LowerIsBetter,
		Note: fmt.Sprintf("top-16 extraction via tournament tree, sparse-wide full (%dk stored cols)", cols/1000)})
	scanNs := extractionNs(x, cv, 1<<30)
	log(Entry{Name: "select.scan_ns", Value: scanNs, Unit: "ns/op", Better: LowerIsBetter,
		Note: "the exact O(d) scan the tree replaces (maintenance is identical either way)"})
	log(Entry{Name: "select.update_ns", Value: maintenanceNs(x, cv), Unit: "ns/op", Better: LowerIsBetter,
		Note: "shared incremental maintenance: 32-row query update flushed through dirty-column re-scoring"})
	log(Entry{Name: "select.srp_ns", Value: srpQueryNs(x, cv), Unit: "ns/op", Better: LowerIsBetter,
		Note: "SRP-LSH (4 tables × 10 bits) top-16 query on the same shape: O(L·K·n) dense projections per query"})

	// top-k gradient compression: quickselect over a dense 131k-dim gradient
	g := la.NewVec(1 << 17)
	rng := rand.New(rand.NewSource(11))
	for i := range g {
		g[i] = rng.NormFloat64()
	}
	k := len(g) / 100
	res := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			opt.TopK(g, k)
		}
	})
	log(Entry{Name: "select.topk_ns", Value: float64(res.NsPerOp()), Unit: "ns/op", Better: LowerIsBetter,
		Note: fmt.Sprintf("top-%d of a dense %dk-dim gradient, quickselect + index restore", k, len(g)/1000)})

	gr, cy, err := greedyRounds()
	if err != nil {
		return err
	}
	log(Entry{Name: "cd.greedy_rounds_to_tol", Value: gr, Unit: "rounds", Better: LowerIsBetter,
		Note: "greedy (Gauss-Southwell via MaxIP) CD rounds to 1e-4 rel. suboptimality, concentrated-signal 400×768"})
	log(Entry{Name: "cd.cyclic_rounds_to_tol", Value: cy, Unit: "rounds", Better: LowerIsBetter,
		Note: "cyclic-order CD on the same design and budget"})
	return nil
}
