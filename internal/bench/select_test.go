package bench

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/la"
)

// TestMaxIPSelectionAcceptance pins the headline claim of the greedy-
// selection subsystem: at the 1M-dimension sparse-wide shape, a top-16
// selection against the maintained tournament tree is at least 10× faster
// than the exact O(d) scan it replaces. Incremental query maintenance is
// bitwise-identical between the two backends (same dirty-column
// re-scoring, see maintenanceNs), so extraction is the entire
// differential — and the true ratio there is orders of magnitude
// (O(k·log d) vs a pass over ~860k stored columns), leaving the 10×
// floor plenty of margin on noisy CI machines.
func TestMaxIPSelectionAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark comparison")
	}
	x, cv, err := selectWide()
	if err != nil {
		t.Fatal(err)
	}
	treeNs := extractionNs(x, cv, -1)
	scanNs := extractionNs(x, cv, 1<<30)
	if scanNs < 10*treeNs {
		t.Errorf("selection round: tree %.0fns vs scan %.0fns — want ≥ 10× win", treeNs, scanNs)
	}
}

// TestGreedyRoundsAcceptance pins the convergence half of the claim:
// on the seeded concentrated-signal design, greedy (Gauss-Southwell)
// block selection reaches 1e-4 relative suboptimality in strictly fewer
// rounds than cyclic order. The run is deterministic (fixed dataset seed,
// deterministic selection), so a strict inequality is a stable pin.
func TestGreedyRoundsAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark comparison")
	}
	greedy, cyclic, err := greedyRounds()
	if err != nil {
		t.Fatal(err)
	}
	if greedy >= cyclic {
		t.Errorf("rounds to 1e-4: greedy %.0f vs cyclic %.0f — greedy must be strictly fewer", greedy, cyclic)
	}
	if greedy >= 400 {
		t.Errorf("greedy never reached tolerance within the %d-round budget", 400)
	}
}

// TestSelectHelpersSmoke exercises the measurement helpers on a small
// shape so their mechanics stay correct independent of the full-scale
// acceptance runs: maintenance flushing, SRP querying, and the metric
// emitters they feed.
func TestSelectHelpersSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark helpers")
	}
	d, err := dataset.Generate(dataset.SparseWide(dataset.ScaleTiny, 1))
	if err != nil {
		t.Fatal(err)
	}
	cv := la.NewColView(d.X)
	if ns := maintenanceNs(d.X, cv); ns <= 0 {
		t.Fatalf("maintenanceNs = %v", ns)
	}
	if ns := srpQueryNs(d.X, cv); ns <= 0 {
		t.Fatalf("srpQueryNs = %v", ns)
	}
}
