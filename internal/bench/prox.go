package bench

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/opt"
	"repro/internal/rdd"
)

// proxMetrics measures the composite-objective hot paths: the O(d) lazy
// prox settle sweep the sparse elastic-net path pays at every snapshot or
// broadcast, and the end-to-end per-round cost of a coordinate-descent
// block update through the full engine path (dispatch, block gradient over
// the column view, prox step, delta broadcast).
func proxMetrics(log func(Entry)) error {
	const cols, nnz = 100_000, 64
	step := opt.ProxSettleBench(cols, nnz)
	res := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			step()
		}
	})
	log(Entry{Name: "prox.settle_ns", Value: float64(res.NsPerOp()), Unit: "ns/op", Better: LowerIsBetter,
		Note: fmt.Sprintf("full settle sweep of a %dk-dim lazy elastic-net model (+%d-nnz delta)", cols/1000, nnz)})

	d, err := dataset.Generate(dataset.SynthConfig{
		Name: "bench-cd", Rows: 2000, Cols: 1000, NNZPerRow: 20, Seed: 1,
	})
	if err != nil {
		return err
	}
	c, err := cluster.NewLocal(cluster.Config{NumWorkers: 2, Seed: 1})
	if err != nil {
		return err
	}
	defer c.Shutdown()
	rctx := rdd.NewContext(c)
	if _, err := rctx.Distribute(d, 4); err != nil {
		return err
	}
	ac := core.New(rctx)
	defer ac.Close()
	run := func(rounds int) (time.Duration, error) {
		p := opt.CDParams{BlockSize: 64}
		p.Loss = opt.Composite{Inner: opt.LeastSquares{}, L2: 0.01, L1: 0.001}
		p.Updates = rounds
		p.SnapshotEvery = rounds
		start := time.Now()
		_, err := opt.CD(ac, d, p, 0)
		return time.Since(start), err
	}
	if _, err := run(20); err != nil { // warm-up: engine spun, residuals built
		return err
	}
	const rounds = 300
	elapsed, err := run(rounds)
	if err != nil {
		return err
	}
	log(Entry{Name: "cd.update_ns", Value: float64(elapsed.Nanoseconds()) / rounds, Unit: "ns/op", Better: LowerIsBetter,
		Note: "one CD round end to end: 64-coord block over 2000x1000 @ 20 nnz/row, 2 workers"})
	return nil
}
