package bench

import (
	"path/filepath"
	"testing"
	"time"
)

func TestReportRoundTripAndFilename(t *testing.T) {
	now := time.Date(2026, 7, 27, 12, 0, 0, 0, time.UTC)
	if got := DefaultFilename(now); got != "BENCH_2026-07-27.json" {
		t.Fatalf("DefaultFilename = %q", got)
	}
	r := NewReport(now)
	r.Add(Entry{Name: "grad.ns_per_sample", Value: 85.2, Unit: "ns/gradient", Better: LowerIsBetter})
	r.Add(Entry{Name: "sched.jobs_per_sec", Value: 700, Unit: "jobs/sec", Better: HigherIsBetter})
	path := filepath.Join(t.TempDir(), DefaultFilename(now))
	if err := r.Write(path); err != nil {
		t.Fatal(err)
	}
	back, err := ReadReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Schema != SchemaVersion || back.Date != "2026-07-27" || len(back.Entries) != 2 {
		t.Fatalf("round trip mismatch: %+v", back)
	}
	if e, ok := back.Lookup("grad.ns_per_sample"); !ok || e.Value != 85.2 {
		t.Fatalf("lookup: %+v %v", e, ok)
	}
}

func TestCompareThresholds(t *testing.T) {
	now := time.Now()
	old := NewReport(now)
	old.Add(Entry{Name: "ns", Value: 100, Unit: "ns/op", Better: LowerIsBetter})
	old.Add(Entry{Name: "jps", Value: 1000, Unit: "jobs/sec", Better: HigherIsBetter})
	old.Add(Entry{Name: "gone", Value: 5, Unit: "x", Better: LowerIsBetter})

	cur := NewReport(now)
	cur.Add(Entry{Name: "ns", Value: 114, Unit: "ns/op", Better: LowerIsBetter})      // +14%: within 15%
	cur.Add(Entry{Name: "jps", Value: 900, Unit: "jobs/sec", Better: HigherIsBetter}) // -10%: within
	cur.Add(Entry{Name: "new", Value: 1, Unit: "x", Better: LowerIsBetter})           // only in new: skipped
	if regs := Compare(old, cur, 0.15); len(regs) != 0 {
		t.Fatalf("expected no regressions, got %v", regs)
	}

	cur = NewReport(now)
	cur.Add(Entry{Name: "ns", Value: 120, Unit: "ns/op", Better: LowerIsBetter})      // +20%: regression
	cur.Add(Entry{Name: "jps", Value: 800, Unit: "jobs/sec", Better: HigherIsBetter}) // -20%: regression
	regs := Compare(old, cur, 0.15)
	if len(regs) != 2 {
		t.Fatalf("expected 2 regressions, got %v", regs)
	}
	if regs[0].Name != "ns" || regs[1].Name != "jps" {
		t.Fatalf("unexpected regression set: %v", regs)
	}
	// improvements never flag
	cur = NewReport(now)
	cur.Add(Entry{Name: "ns", Value: 10, Unit: "ns/op", Better: LowerIsBetter})
	cur.Add(Entry{Name: "jps", Value: 5000, Unit: "jobs/sec", Better: HigherIsBetter})
	if regs := Compare(old, cur, 0.15); len(regs) != 0 {
		t.Fatalf("improvements flagged: %v", regs)
	}
}

// TestGradMetricsSmoke runs the kernel micro-measurements (not the
// scheduler leg, which the CI bench job exercises) and sanity-checks the
// zero-alloc invariant end to end through the suite plumbing.
func TestGradMetricsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("micro-benchmarks under -short")
	}
	r := NewReport(time.Now())
	log := func(e Entry) { r.Add(e) }
	if err := gradMetrics(log); err != nil {
		t.Fatal(err)
	}
	e, ok := r.Lookup("grad.allocs_per_task")
	if !ok {
		t.Fatal("grad.allocs_per_task missing")
	}
	// the inner loop is zero-alloc (see opt.TestGradSweepAllocFree); the one
	// remaining per-task allocation is boxing the payload into `any`
	if e.Value > 1 {
		t.Errorf("steady-state gradient task allocates %v/op, want ≤ 1 (payload boxing)", e.Value)
	}
	if ns, ok := r.Lookup("grad.ns_per_sample"); !ok || ns.Value <= 0 {
		t.Errorf("grad.ns_per_sample bogus: %+v", ns)
	}
}
