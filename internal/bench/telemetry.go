package bench

import (
	"fmt"
	"testing"

	"repro/internal/telemetry"
)

// telemetryMetrics prices the instrumentation the spine adds to every hot
// path: one counter increment plus one histogram observation on a fresh
// registry, the exact pair the coordinator pays per ingested result. The
// alloc count is measured alongside — the zero-alloc invariant is part of
// the contract, and a regression here taxes every layer at once.
func telemetryMetrics(log func(Entry)) error {
	r := telemetry.NewRegistry()
	c := r.Counter("bench_ops_total", "benchmark counter")
	h := r.Histogram("bench_latency_seconds", "benchmark histogram", telemetry.LatencyBuckets())
	op := func() {
		c.Inc()
		h.Observe(3.2e-5)
	}
	allocs := testing.AllocsPerRun(1000, op)
	res := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			op()
		}
	})
	log(Entry{Name: "telemetry.overhead_ns", Value: float64(res.NsPerOp()), Unit: "ns/op", Better: LowerIsBetter,
		Note: fmt.Sprintf("counter Inc + histogram Observe per hot-path event; %.0f allocs/op", allocs)})
	if allocs != 0 {
		return fmt.Errorf("bench: telemetry hot path allocates (%.0f allocs/op)", allocs)
	}
	return nil
}
