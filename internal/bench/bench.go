// Package bench is the measurement layer behind the repo's performance
// trajectory. It defines the stable BENCH_*.json result schema, a
// programmatic suite that measures the hot paths (ns/gradient, allocs/op,
// scheduler jobs/sec, wait-time summaries), and a threshold comparator the
// CI bench-regression job gates on. cmd/asyncbench -json runs the suite;
// cmd/asyncbench -compare gates two reports against each other.
package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"
)

// SchemaVersion identifies the BENCH_*.json layout. Bump only when a field
// changes meaning; adding entries is not a schema change (Compare skips
// metrics absent from either side).
const SchemaVersion = "asyncbench/v1"

// Direction states which way a metric should move.
type Direction string

const (
	LowerIsBetter  Direction = "lower"
	HigherIsBetter Direction = "higher"
)

// Entry is one measured quantity in a report. Name is a stable metric id
// ("grad.ns_per_sample"); renaming one silently drops it from regression
// comparisons, so treat names as API.
type Entry struct {
	Name   string    `json:"name"`
	Value  float64   `json:"value"`
	Unit   string    `json:"unit"`
	Better Direction `json:"better"`
	Note   string    `json:"note,omitempty"`
}

// Report is the BENCH_*.json document: one run of the suite on one machine.
type Report struct {
	Schema  string  `json:"schema"`
	Date    string  `json:"date"` // YYYY-MM-DD, UTC
	Unix    int64   `json:"unix"`
	Go      string  `json:"go"`
	OS      string  `json:"os"`
	Arch    string  `json:"arch"`
	CPUs    int     `json:"cpus"`
	Entries []Entry `json:"entries"`
}

// NewReport stamps an empty report with the current environment.
func NewReport(now time.Time) *Report {
	return &Report{
		Schema: SchemaVersion,
		Date:   now.UTC().Format("2006-01-02"),
		Unix:   now.Unix(),
		Go:     runtime.Version(),
		OS:     runtime.GOOS,
		Arch:   runtime.GOARCH,
		CPUs:   runtime.NumCPU(),
	}
}

// Add appends an entry.
func (r *Report) Add(e Entry) { r.Entries = append(r.Entries, e) }

// Lookup returns the entry named name.
func (r *Report) Lookup(name string) (Entry, bool) {
	for _, e := range r.Entries {
		if e.Name == name {
			return e, true
		}
	}
	return Entry{}, false
}

// DefaultFilename is the BENCH_<date>.json artifact name for a run time.
func DefaultFilename(now time.Time) string {
	return "BENCH_" + now.UTC().Format("2006-01-02") + ".json"
}

// Write marshals the report to path (indented, trailing newline).
func (r *Report) Write(path string) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Errorf("bench: marshal report: %w", err)
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// ReadReport parses a BENCH_*.json file and checks the schema tag.
func ReadReport(path string) (*Report, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(b, &r); err != nil {
		return nil, fmt.Errorf("bench: parse %s: %w", path, err)
	}
	if r.Schema != SchemaVersion {
		return nil, fmt.Errorf("bench: %s has schema %q, want %q", path, r.Schema, SchemaVersion)
	}
	return &r, nil
}

// Regression is one metric that moved the wrong way past the threshold.
type Regression struct {
	Name  string  `json:"name"`
	Old   float64 `json:"old"`
	New   float64 `json:"new"`
	Unit  string  `json:"unit"`
	Ratio float64 `json:"ratio"` // new/old for lower-is-better, old/new for higher
}

func (r Regression) String() string {
	return fmt.Sprintf("%s: %.4g -> %.4g %s (%.0f%% worse)", r.Name, r.Old, r.New, r.Unit, (r.Ratio-1)*100)
}

// Compare reports the metrics of new that are worse than old by more than
// threshold (0.15 = 15%). Metrics present in only one report are skipped so
// the suite can grow without breaking old baselines; zero/negative old
// values are skipped as degenerate. Direction comes from the NEW report
// (the PR under test owns the metric definitions).
func Compare(old, cur *Report, threshold float64) []Regression {
	var regs []Regression
	for _, e := range cur.Entries {
		oe, ok := old.Lookup(e.Name)
		if !ok || oe.Value <= 0 || e.Value <= 0 {
			continue
		}
		var ratio float64
		switch e.Better {
		case HigherIsBetter:
			ratio = oe.Value / e.Value
		default: // lower is better
			ratio = e.Value / oe.Value
		}
		if ratio > 1+threshold {
			regs = append(regs, Regression{Name: e.Name, Old: oe.Value, New: e.Value, Unit: e.Unit, Ratio: ratio})
		}
	}
	return regs
}
