package bench

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/la"
)

// TestSparseDeltaAcceptance pins the headline claims of the sparse-delta
// data path on the sparse-wide shape: per-task kernel time, driver-side
// ns/update, and wire bytes/task each improve at least 5× over the dense
// path. The true ratios are orders of magnitude (nnz/d ≈ 3e-4), so the 5×
// floor holds with plenty of margin on noisy CI machines.
func TestSparseDeltaAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark comparison")
	}
	env, idx, cols, err := sparseWideEnv()
	if err != nil {
		t.Fatal(err)
	}

	// Task time: both paths share the O(rows) Bernoulli sampling sweep, so
	// the per-task ratio is bounded by it — require the sparse path to win,
	// not by a fixed factor (the ≥5× criteria below are on the terms the
	// sparse path actually removes: the O(d) driver update and wire bytes).
	sparseNs, _ := sparseTaskNs(env, idx, false)
	denseNs, _ := sparseTaskNs(env, idx, true)
	if sparseNs > denseNs {
		t.Errorf("task time: sparse %.0fns vs dense %.0fns — sparse path must not be slower", sparseNs, denseNs)
	}

	delta, err := sparseDelta(env, idx)
	if err != nil {
		t.Fatal(err)
	}
	defer la.PutDelta(delta)
	w := la.NewVec(cols)
	sparseUpd := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			delta.AxpyDense(-1e-9, w)
		}
	}).NsPerOp()
	dense := delta.Dense()
	denseUpd := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			la.Axpy(-1e-9, dense, w)
		}
	}).NsPerOp()
	if denseUpd < 5*sparseUpd {
		t.Errorf("ns/update: sparse %d vs dense %d — want ≥ 5× win", sparseUpd, denseUpd)
	}

	mk := func(payload any) cluster.Message {
		return cluster.Message{Kind: cluster.KindTaskResult, Result: &cluster.Result{
			TaskID: 1, Payload: core.ReducePayload{Val: payload, N: 300},
		}}
	}
	binFrame, usedBin, err := cluster.EncodeFrame(mk(delta), true)
	if err != nil {
		t.Fatal(err)
	}
	if !usedBin {
		t.Fatal("sparse result fell back to gob")
	}
	gobFrame, _, err := cluster.EncodeFrame(mk(dense), false)
	if err != nil {
		t.Fatal(err)
	}
	if len(gobFrame) < 5*len(binFrame) {
		t.Errorf("bytes/task: sparse-binary %dB vs dense-gob %dB — want ≥ 5× win", len(binFrame), len(gobFrame))
	}
}
