package bench

import (
	"fmt"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/la"
	"repro/internal/opt"
)

// Sparse-delta data-path metrics on the sparse-wide shape: per-task kernel
// cost on the O(nnz) path vs the dense-forced path, driver-side
// ns/update, wire bytes/task under the binary codec vs the dense gob
// baseline, and codec encode throughput. These are the entries the 15%
// regression gate watches for the sparse pipeline.

// sparseWideEnv builds a single-worker environment holding the sparse-wide
// dataset at small scale (3000×200k, 64 nnz/row, density 3.2e-4), split 4
// ways, with the model broadcast cached.
func sparseWideEnv() (*cluster.Env, []int, int, error) {
	d, err := dataset.Generate(dataset.SparseWide(dataset.ScaleSmall, 1))
	if err != nil {
		return nil, nil, 0, err
	}
	parts, err := dataset.Split(d, 4)
	if err != nil {
		return nil, nil, 0, err
	}
	env := cluster.NewEnv(0, 1, nil)
	idx := make([]int, 0, len(parts))
	for _, p := range parts {
		if err := env.InstallPartition(p); err != nil {
			return nil, nil, 0, err
		}
		idx = append(idx, p.Index)
	}
	env.Cache().Put("w", 1, la.NewVec(d.NumCols()))
	return env, idx, d.NumCols(), nil
}

// sparseTaskNs measures one GradKernel task on the sparse-wide environment;
// forceDense pins the density threshold to 0 first (the old dense path).
func sparseTaskNs(env *cluster.Env, idx []int, forceDense bool) (nsPerTask, allocsPerTask float64) {
	old := opt.SparseDensityThreshold
	if forceDense {
		opt.SparseDensityThreshold = 0
	}
	defer func() { opt.SparseDensityThreshold = old }()
	kern := opt.GradKernel(opt.LeastSquares{}, core.DynBroadcast{ID: "w", Version: 1}, 0.005)
	recycle := func(v any) {
		switch g := v.(type) {
		case la.Vec:
			la.PutVec(g)
		case *la.DeltaVec:
			la.PutDelta(g)
		}
	}
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			v, n, err := kern(env, idx, int64(i))
			if err != nil {
				b.Fatal(err)
			}
			if n > 0 {
				recycle(v)
			}
		}
	})
	return float64(res.NsPerOp()), float64(res.AllocsPerOp())
}

// sparseDelta produces one representative task payload from the sparse-wide
// kernel (caller owns it). The sampling fraction matches a small ASGD
// mini-batch (~30 samples, ~2k touched coordinates out of 200k).
func sparseDelta(env *cluster.Env, idx []int) (*la.DeltaVec, error) {
	kern := opt.GradKernel(opt.LeastSquares{}, core.DynBroadcast{ID: "w", Version: 1}, 0.01)
	v, n, err := kern(env, idx, 42)
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, fmt.Errorf("bench: empty sparse sample")
	}
	d, ok := v.(*la.DeltaVec)
	if !ok {
		return nil, fmt.Errorf("bench: sparse-wide kernel shipped %T", v)
	}
	return d, nil
}

func sparseMetrics(log func(Entry)) error {
	env, idx, cols, err := sparseWideEnv()
	if err != nil {
		return err
	}

	ns, allocs := sparseTaskNs(env, idx, false)
	log(Entry{Name: "grad.sparse_ns_per_task", Value: ns, Unit: "ns/op", Better: LowerIsBetter,
		Note: "O(nnz) GradKernel task, sparse-wide small (200k cols, 64 nnz/row), frac 0.005"})
	log(Entry{Name: "grad.sparse_allocs_per_task", Value: allocs, Unit: "allocs/op", Better: LowerIsBetter,
		Note: "sparse task path is fully pooled: payload boxing included"})

	delta, err := sparseDelta(env, idx)
	if err != nil {
		return err
	}
	defer la.PutDelta(delta)

	// driver-side ns/update: sparse scatter vs the dense Axpy it replaces
	w := la.NewVec(cols)
	res := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			delta.AxpyDense(-1e-9, w)
		}
	})
	log(Entry{Name: "update.sparse_ns", Value: float64(res.NsPerOp()), Unit: "ns/update", Better: LowerIsBetter,
		Note: fmt.Sprintf("apply one sparse delta (%d nnz) to a %dk-dim model", delta.NNZ(), cols/1000)})
	dense := delta.Dense()
	res = testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			la.Axpy(-1e-9, dense, w)
		}
	})
	log(Entry{Name: "update.dense_ns", Value: float64(res.NsPerOp()), Unit: "ns/update", Better: LowerIsBetter,
		Note: "the dense O(d) Axpy the sparse path replaces"})

	// wire bytes/task: binary sparse frame vs the gob dense frame the old
	// data path shipped for the same gradient
	mkResult := func(payload any) cluster.Message {
		return cluster.Message{Kind: cluster.KindTaskResult, Result: &cluster.Result{
			TaskID: 1, Worker: 0, Op: "opt.grad",
			Payload: core.ReducePayload{Val: payload, N: 300},
		}}
	}
	binFrame, usedBin, err := cluster.EncodeFrame(mkResult(delta), true)
	if err != nil {
		return err
	}
	if !usedBin {
		return fmt.Errorf("bench: sparse result fell back to gob")
	}
	gobFrame, _, err := cluster.EncodeFrame(mkResult(dense), false)
	if err != nil {
		return err
	}
	log(Entry{Name: "wire.bytes_per_task", Value: float64(len(binFrame)), Unit: "B", Better: LowerIsBetter,
		Note: "binary frame of one sparse task result"})
	log(Entry{Name: "wire.bytes_per_task_dense", Value: float64(len(gobFrame)), Unit: "B", Better: LowerIsBetter,
		Note: "gob frame of the dense equivalent (the pre-codec wire cost)"})

	// codec encode throughput on a dense model payload (the fetch/push path)
	payload := la.NewVec(cols)
	for i := range payload {
		payload[i] = float64(i%13) - 6
	}
	push := cluster.Message{Kind: cluster.KindBroadcastPush, Push: &cluster.BroadcastPush{ID: "w", Version: 1, Value: payload}}
	var bytesPerOp int
	res = testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			frame, _, err := cluster.EncodeFrame(push, true)
			if err != nil {
				b.Fatal(err)
			}
			bytesPerOp = len(frame)
		}
	})
	log(Entry{Name: "codec.encode_mbps", Value: float64(bytesPerOp) / float64(res.NsPerOp()) * 1e3, Unit: "MB/s", Better: HigherIsBetter,
		Note: fmt.Sprintf("binary-encode a %dk-dim dense broadcast push", cols/1000)})
	return nil
}
