package core

import "repro/internal/telemetry"

// Coordinator-level instrumentation on the process-global registry. All
// observations happen on paths that already hold co.mu and touch maps, so
// the zero-alloc atomic ops add nothing measurable (pinned by
// telemetry.overhead_ns in internal/bench).
var (
	mTasksDispatched = telemetry.Default().Counter("async_core_tasks_dispatched_total",
		"Tasks handed to workers by the ASYNC scheduler.")
	mResultsIngested = telemetry.Default().Counter("async_core_results_total",
		"Worker results ingested by the coordinator (failed tasks included).")
	mClockAdvances = telemetry.Default().Counter("async_core_updates_total",
		"Logical model-update clock advances.")
	mStaleness = telemetry.Default().Histogram("async_core_staleness",
		"Staleness (updates behind the clock) of ingested results.",
		telemetry.PowTwoBuckets(16))
	mTaskWait = telemetry.Default().Histogram("async_core_task_wait_seconds",
		"Per-task worker wait between submitting a result and receiving the next task.",
		telemetry.LatencyBuckets())
	mTaskCompute = telemetry.Default().Histogram("async_core_task_compute_seconds",
		"Per-task worker compute time.",
		telemetry.LatencyBuckets())
	mDispatchRoundtrip = telemetry.Default().Histogram("async_core_dispatch_roundtrip_seconds",
		"Dispatch-to-ingest round trip per task (queueing, transport, compute).",
		telemetry.LatencyBuckets())
)
