package core

import (
	"encoding/gob"
	"math/rand"
	"testing"
	"time"

	"repro/internal/cluster"
)

// echoArgs is the registered-op argument type for the ASYNCreduceOp tests.
type echoArgs struct {
	Factor int
	Parts  []int
}

func init() {
	gob.Register(echoArgs{})
	cluster.RegisterOp("core.testRowsTimes", func(env *cluster.Env, t *cluster.Task) (any, error) {
		a := t.Args.(echoArgs)
		n := 0
		for _, p := range a.Parts {
			part, err := env.Partition(p)
			if err != nil {
				return nil, err
			}
			n += part.NumRows()
		}
		return ReducePayload{Val: n * a.Factor, N: n}, nil
	})
}

func TestASYNCreduceOp(t *testing.T) {
	ac, _ := setup(t, 3, 6, nil)
	sel, err := ac.ASYNCbarrier(ASP(), nil)
	if err != nil {
		t.Fatal(err)
	}
	n, err := ac.ASYNCreduceOp(sel, "core.testRowsTimes", func(worker int, parts []int) any {
		return echoArgs{Factor: 2, Parts: parts}
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("dispatched %d", n)
	}
	total := 0
	for i := 0; i < n; i++ {
		tr, err := ac.ASYNCcollectAll()
		if err != nil {
			t.Fatal(err)
		}
		total += tr.Payload.(int)
		if tr.Attrs.MiniBatch == 0 {
			t.Fatal("op result lost its batch attribute")
		}
	}
	if total != 2*96 {
		t.Fatalf("total = %d, want 192", total)
	}
}

func TestASYNCreduceOpUnknownOpFails(t *testing.T) {
	ac, _ := setup(t, 1, 1, nil)
	sel, err := ac.ASYNCbarrier(ASP(), nil)
	if err != nil {
		t.Fatal(err)
	}
	n, err := ac.ASYNCreduceOp(sel, "core.noSuchOp", func(int, []int) any { return nil })
	if err != nil {
		t.Fatal(err)
	}
	// dispatch succeeds; the task fails on the worker and produces no
	// queue entry, so pending must drain to zero
	if n != 1 {
		t.Fatalf("dispatched %d", n)
	}
	deadline := time.Now().Add(3 * time.Second)
	for ac.Pending() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("pending stuck after failed op")
		}
		time.Sleep(time.Millisecond)
	}
	if ac.HasNext() {
		t.Fatal("failed op produced a result")
	}
}

func TestASYNCcollectTimeout(t *testing.T) {
	ac, _ := setup(t, 1, 1, nil)
	sel, err := ac.ASYNCbarrier(ASP(), nil)
	if err != nil {
		t.Fatal(err)
	}
	block := make(chan struct{})
	if _, err := ac.ASYNCreduce(sel, func(env *cluster.Env, parts []int, seed int64) (any, int, error) {
		<-block
		return 1, 1, nil
	}); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := ac.ASYNCcollectTimeout(50 * time.Millisecond); err == nil {
		t.Fatal("timeout collect succeeded with no result")
	}
	if elapsed := time.Since(start); elapsed < 40*time.Millisecond || elapsed > 2*time.Second {
		t.Fatalf("timeout fired after %v", elapsed)
	}
	close(block)
	if _, err := ac.ASYNCcollectTimeout(2 * time.Second); err != nil {
		t.Fatalf("collect after unblock: %v", err)
	}
}

func TestSelectionReleaseAfterReduceIsNoop(t *testing.T) {
	ac, _ := setup(t, 2, 2, nil)
	sel, err := ac.ASYNCbarrier(ASP(), nil)
	if err != nil {
		t.Fatal(err)
	}
	n, err := ac.ASYNCreduce(sel, countKernel)
	if err != nil {
		t.Fatal(err)
	}
	sel.Release() // must not free workers that are running tasks
	for i := 0; i < n; i++ {
		if _, err := ac.ASYNCcollect(); err != nil {
			t.Fatal(err)
		}
	}
	if got := ac.STAT().AvailableWorkers; got != 2 {
		t.Fatalf("available = %d", got)
	}
}

func TestBarrierNilIsASP(t *testing.T) {
	ac, _ := setup(t, 2, 2, nil)
	sel, err := ac.ASYNCbarrier(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Workers) != 2 {
		t.Fatalf("nil barrier selected %v", sel.Workers)
	}
	sel.Release()
}

func TestPSPFilterAdmitsFraction(t *testing.T) {
	ac, _ := setup(t, 4, 4, nil)
	rng := rand.New(rand.NewSource(5))
	admitted := 0
	const rounds = 40
	for i := 0; i < rounds; i++ {
		sel, err := ac.ASYNCbarrier(ASP(), PSP(0.5, rng))
		if err != nil {
			// PSP can reject everyone in a round; barrier waits — with no
			// pending work it times out. Use a short timeout and continue.
			continue
		}
		admitted += len(sel.Workers)
		sel.Release()
	}
	mean := float64(admitted) / rounds
	if mean < 1 || mean > 3 {
		t.Fatalf("PSP(0.5) admitted %.2f of 4 workers on average", mean)
	}
}

func TestUpdatesMonotone(t *testing.T) {
	ac, _ := setup(t, 1, 1, nil)
	prev := ac.Updates()
	for i := 0; i < 10; i++ {
		got := ac.AdvanceClock()
		if got != prev+1 {
			t.Fatalf("clock jumped %d → %d", prev, got)
		}
		prev = got
	}
}
