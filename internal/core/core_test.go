package core

import (
	"errors"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/dataset"
	"repro/internal/la"
	"repro/internal/rdd"
	"repro/internal/straggler"
)

func setup(t *testing.T, workers, parts int, delay straggler.Model) (*Context, *rdd.RDD[rdd.Point]) {
	t.Helper()
	c, err := cluster.NewLocal(cluster.Config{NumWorkers: workers, Delay: delay, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Shutdown)
	rctx := rdd.NewContext(c)
	d, err := dataset.Generate(dataset.SynthConfig{
		Name: "t", Rows: 96, Cols: 6, NNZPerRow: 3, Noise: 0.1, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	points, err := rctx.Distribute(d, parts)
	if err != nil {
		t.Fatal(err)
	}
	ac := New(rctx)
	t.Cleanup(ac.Close)
	return ac, points
}

func countKernel(env *cluster.Env, parts []int, seed int64) (any, int, error) {
	n := 0
	for _, p := range parts {
		part, err := env.Partition(p)
		if err != nil {
			return nil, 0, err
		}
		n += part.NumRows()
	}
	return n, n, nil
}

func TestSTATInitial(t *testing.T) {
	ac, _ := setup(t, 4, 4, nil)
	st := ac.STAT()
	if st.AliveWorkers != 4 || st.AvailableWorkers != 4 {
		t.Fatalf("stat %+v", st)
	}
	if st.MaxStaleness != 0 || st.Updates != 0 || st.Pending != 0 {
		t.Fatalf("stat %+v", st)
	}
	if len(st.Available()) != 4 {
		t.Fatalf("available %v", st.Available())
	}
	for i, w := range st.Workers {
		if w.Worker != i {
			t.Fatalf("workers not sorted: %v", st.Workers)
		}
	}
}

func TestASPBarrierSelectsAllAvailable(t *testing.T) {
	ac, _ := setup(t, 3, 3, nil)
	sel, err := ac.ASYNCbarrier(ASP(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Workers) != 3 {
		t.Fatalf("selected %v", sel.Workers)
	}
	// reserved workers are no longer available
	if got := ac.STAT().AvailableWorkers; got != 0 {
		t.Fatalf("available after reserve = %d", got)
	}
	sel.Release()
	if got := ac.STAT().AvailableWorkers; got != 3 {
		t.Fatalf("available after release = %d", got)
	}
}

func TestBarrierFilter(t *testing.T) {
	ac, _ := setup(t, 4, 4, nil)
	sel, err := ac.ASYNCbarrier(ASP(), func(w WorkerStat) bool { return w.Worker%2 == 0 })
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Workers) != 2 {
		t.Fatalf("selected %v", sel.Workers)
	}
	for _, w := range sel.Workers {
		if w%2 != 0 {
			t.Fatalf("filter violated: %v", sel.Workers)
		}
	}
	sel.Release()
}

func TestASYNCreduceDeliversResults(t *testing.T) {
	ac, _ := setup(t, 3, 6, nil)
	sel, err := ac.ASYNCbarrier(ASP(), nil)
	if err != nil {
		t.Fatal(err)
	}
	n, err := ac.ASYNCreduce(sel, countKernel)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("dispatched %d", n)
	}
	total := 0
	for i := 0; i < n; i++ {
		tr, err := ac.ASYNCcollectAll()
		if err != nil {
			t.Fatal(err)
		}
		total += tr.Payload.(int)
		if tr.Attrs.MiniBatch == 0 {
			t.Fatalf("mini-batch attr missing: %+v", tr.Attrs)
		}
		if tr.Attrs.Staleness != 0 {
			t.Fatalf("staleness %d with no updates", tr.Attrs.Staleness)
		}
	}
	if total != 96 {
		t.Fatalf("total rows %d, want 96", total)
	}
	// all workers available again
	if got := ac.STAT().AvailableWorkers; got != 3 {
		t.Fatalf("available = %d", got)
	}
}

func TestStalenessTracksClock(t *testing.T) {
	ac, _ := setup(t, 2, 2, nil)
	sel, err := ac.ASYNCbarrier(ASP(), nil)
	if err != nil {
		t.Fatal(err)
	}
	slowKernel := func(env *cluster.Env, parts []int, seed int64) (any, int, error) {
		time.Sleep(50 * time.Millisecond)
		return 1, 1, nil
	}
	if _, err := ac.ASYNCreduce(sel, slowKernel); err != nil {
		t.Fatal(err)
	}
	// advance the clock 5 times while tasks are in flight
	for i := 0; i < 5; i++ {
		ac.AdvanceClock()
	}
	for i := 0; i < 2; i++ {
		tr, err := ac.ASYNCcollectAll()
		if err != nil {
			t.Fatal(err)
		}
		if tr.Attrs.Staleness != 5 {
			t.Fatalf("staleness = %d, want 5", tr.Attrs.Staleness)
		}
	}
}

func TestBSPBarrierWaitsForAllWorkers(t *testing.T) {
	ac, _ := setup(t, 2, 2, nil)
	sel, _ := ac.ASYNCbarrier(ASP(), nil)
	slow := func(env *cluster.Env, parts []int, seed int64) (any, int, error) {
		time.Sleep(80 * time.Millisecond)
		return 1, 1, nil
	}
	if _, err := ac.ASYNCreduce(sel, slow); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	sel2, err := ac.ASYNCbarrier(BSP(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 50*time.Millisecond {
		t.Fatalf("BSP barrier opened after %v, before workers finished", elapsed)
	}
	if len(sel2.Workers) != 2 {
		t.Fatalf("BSP selected %v", sel2.Workers)
	}
	sel2.Release()
}

func TestSSPBarrierBlocksOnStaleness(t *testing.T) {
	ac, _ := setup(t, 2, 2, nil)
	ac.BarrierTimeout = 300 * time.Millisecond
	sel, _ := ac.ASYNCbarrier(ASP(), nil)
	block := make(chan struct{})
	kern := func(env *cluster.Env, parts []int, seed int64) (any, int, error) {
		<-block
		return 1, 1, nil
	}
	if _, err := ac.ASYNCreduce(sel, kern); err != nil {
		t.Fatal(err)
	}
	// make in-flight tasks very stale
	for i := 0; i < 10; i++ {
		ac.AdvanceClock()
	}
	// SSP with threshold 3 must time out: staleness is 10
	_, err := ac.ASYNCbarrier(SSP(3), nil)
	if !errors.Is(err, ErrBarrierTimeout) {
		t.Fatalf("SSP barrier: %v, want timeout", err)
	}
	close(block)
	// after results arrive, staleness resets on completion; new tasks start fresh
	for i := 0; i < 2; i++ {
		if _, err := ac.ASYNCcollect(); err != nil {
			t.Fatal(err)
		}
	}
	sel3, err := ac.ASYNCbarrier(SSP(20), nil)
	if err != nil {
		t.Fatal(err)
	}
	sel3.Release()
}

func TestMinAvailableBarrier(t *testing.T) {
	ac, _ := setup(t, 4, 4, nil)
	// occupy two workers
	sel, _ := ac.ASYNCbarrier(ASP(), func(w WorkerStat) bool { return w.Worker < 2 })
	block := make(chan struct{})
	kern := func(env *cluster.Env, parts []int, seed int64) (any, int, error) {
		<-block
		return 1, 1, nil
	}
	if _, err := ac.ASYNCreduce(sel, kern); err != nil {
		t.Fatal(err)
	}
	// β=0.5 of 4 alive = 2 available required; exactly 2 remain → opens
	sel2, err := ac.ASYNCbarrier(MinAvailable(0.5), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel2.Workers) != 2 {
		t.Fatalf("selected %v", sel2.Workers)
	}
	sel2.Release()
	// β=0.9 needs 3 available; only 2 → timeout
	ac.BarrierTimeout = 200 * time.Millisecond
	if _, err := ac.ASYNCbarrier(MinAvailable(0.9), nil); !errors.Is(err, ErrBarrierTimeout) {
		t.Fatalf("barrier: %v, want timeout", err)
	}
	close(block)
	for i := 0; i < 2; i++ {
		if _, err := ac.ASYNCcollect(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestASYNCreduceRDDMatchesSyncReduce(t *testing.T) {
	ac, points := setup(t, 2, 4, nil)
	ys := rdd.Map(points, func(p rdd.Point) float64 { return p.Y })
	want, err := ys.Reduce(func(a, b float64) float64 { return a + b })
	if err != nil {
		t.Fatal(err)
	}
	sel, err := ac.ASYNCbarrier(BSP(), nil)
	if err != nil {
		t.Fatal(err)
	}
	n, err := ASYNCreduceRDD(ac, ys, func(a, b float64) float64 { return a + b }, sel)
	if err != nil {
		t.Fatal(err)
	}
	var got float64
	for i := 0; i < n; i++ {
		p, err := ac.ASYNCcollect()
		if err != nil {
			t.Fatal(err)
		}
		got += p.(float64)
	}
	if diff := got - want; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("async sum %v != sync sum %v", got, want)
	}
}

func TestASYNCaggregate(t *testing.T) {
	ac, points := setup(t, 2, 4, nil)
	sel, err := ac.ASYNCbarrier(ASP(), nil)
	if err != nil {
		t.Fatal(err)
	}
	n, err := ASYNCaggregate(ac, points, 0,
		func(acc int, p rdd.Point) int { return acc + 1 },
		func(a, b int) int { return a + b }, sel)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for i := 0; i < n; i++ {
		p, err := ac.ASYNCcollect()
		if err != nil {
			t.Fatal(err)
		}
		total += p.(int)
	}
	if total != 96 {
		t.Fatalf("aggregate count %d, want 96", total)
	}
}

func TestCollectWithNothingPendingFails(t *testing.T) {
	ac, _ := setup(t, 2, 2, nil)
	if _, err := ac.ASYNCcollect(); err == nil {
		t.Fatal("collect with nothing in flight succeeded")
	}
}

func TestHasNextLifecycle(t *testing.T) {
	ac, _ := setup(t, 1, 1, nil)
	if ac.HasNext() {
		t.Fatal("HasNext true before any dispatch")
	}
	sel, _ := ac.ASYNCbarrier(ASP(), nil)
	if _, err := ac.ASYNCreduce(sel, countKernel); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for !ac.HasNext() {
		if time.Now().After(deadline) {
			t.Fatal("result never became visible")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := ac.ASYNCcollect(); err != nil {
		t.Fatal(err)
	}
	if ac.HasNext() {
		t.Fatal("HasNext true after draining")
	}
}

func TestSelectionDoubleUseIsNoop(t *testing.T) {
	ac, _ := setup(t, 2, 2, nil)
	sel, _ := ac.ASYNCbarrier(ASP(), nil)
	n1, err := ac.ASYNCreduce(sel, countKernel)
	if err != nil {
		t.Fatal(err)
	}
	n2, err := ac.ASYNCreduce(sel, countKernel)
	if err != nil {
		t.Fatal(err)
	}
	if n1 != 2 || n2 != 0 {
		t.Fatalf("dispatch counts %d, %d", n1, n2)
	}
	for i := 0; i < n1; i++ {
		if _, err := ac.ASYNCcollect(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestWorkerDeathDuringTask(t *testing.T) {
	ac, _ := setup(t, 3, 3, nil)
	sel, _ := ac.ASYNCbarrier(ASP(), nil)
	slow := func(env *cluster.Env, parts []int, seed int64) (any, int, error) {
		time.Sleep(100 * time.Millisecond)
		return 1, 1, nil
	}
	if _, err := ac.ASYNCreduce(sel, slow); err != nil {
		t.Fatal(err)
	}
	ac.RDD().Cluster().Kill(0)
	// the sweeper must clear the dead worker's in-flight slot so pending
	// drains to the two surviving results
	got := 0
	for i := 0; i < 2; i++ {
		if _, err := ac.ASYNCcollect(); err != nil {
			t.Fatalf("collect %d: %v", i, err)
		}
		got++
	}
	deadline := time.Now().Add(3 * time.Second)
	for ac.Pending() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("pending stuck at %d after worker death", ac.Pending())
		}
		time.Sleep(10 * time.Millisecond)
	}
	st := ac.STAT()
	if st.AliveWorkers != 2 {
		t.Fatalf("alive = %d, want 2", st.AliveWorkers)
	}
	// further barriers exclude the dead worker
	sel2, err := ac.ASYNCbarrier(ASP(), nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range sel2.Workers {
		if w == 0 {
			t.Fatal("dead worker selected")
		}
	}
	sel2.Release()
}

func TestBarrierErrNoWorkers(t *testing.T) {
	ac, _ := setup(t, 1, 1, nil)
	ac.RDD().Cluster().Kill(0)
	time.Sleep(120 * time.Millisecond) // let the sweeper observe the death
	if _, err := ac.ASYNCbarrier(ASP(), nil); !errors.Is(err, ErrNoWorkers) {
		t.Fatalf("barrier: %v, want ErrNoWorkers", err)
	}
}

func TestAvgTaskTimeTracked(t *testing.T) {
	ac, _ := setup(t, 1, 1, nil)
	for round := 0; round < 3; round++ {
		sel, err := ac.ASYNCbarrier(ASP(), nil)
		if err != nil {
			t.Fatal(err)
		}
		kern := func(env *cluster.Env, parts []int, seed int64) (any, int, error) {
			time.Sleep(20 * time.Millisecond)
			return 1, 1, nil
		}
		if _, err := ac.ASYNCreduce(sel, kern); err != nil {
			t.Fatal(err)
		}
		if _, err := ac.ASYNCcollect(); err != nil {
			t.Fatal(err)
		}
	}
	st := ac.STAT()
	w := st.Workers[0]
	if w.TasksCompleted != 3 {
		t.Fatalf("completed = %d", w.TasksCompleted)
	}
	if w.AvgTaskTime < 15*time.Millisecond {
		t.Fatalf("avg task time %v too small", w.AvgTaskTime)
	}
}

func TestMaxAvgTaskTimeFilter(t *testing.T) {
	f := MaxAvgTaskTime(10 * time.Millisecond)
	if !f(WorkerStat{AvgTaskTime: 0}) {
		t.Fatal("fresh worker rejected")
	}
	if !f(WorkerStat{AvgTaskTime: 5 * time.Millisecond}) {
		t.Fatal("fast worker rejected")
	}
	if f(WorkerStat{AvgTaskTime: 50 * time.Millisecond}) {
		t.Fatal("slow worker accepted")
	}
}

func TestWaitTimesRecorded(t *testing.T) {
	ac, _ := setup(t, 2, 2, nil)
	for round := 0; round < 2; round++ {
		sel, err := ac.ASYNCbarrier(BSP(), nil)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ac.ASYNCreduce(sel, countKernel); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 2; i++ {
			if _, err := ac.ASYNCcollect(); err != nil {
				t.Fatal(err)
			}
		}
	}
	wt := ac.Coordinator().WaitTimes()
	if len(wt) != 2 {
		t.Fatalf("wait times for %d workers, want 2", len(wt))
	}
}

func TestASYNCbroadcastHistory(t *testing.T) {
	ac, _ := setup(t, 1, 1, nil)
	b1 := ac.ASYNCbroadcast("w", la.Vec{1, 0})
	b2 := ac.ASYNCbroadcast("w", la.Vec{2, 0})
	if b1.Version == b2.Version {
		t.Fatal("versions collide")
	}
	sel, _ := ac.ASYNCbarrier(ASP(), nil)
	kern := func(env *cluster.Env, parts []int, seed int64) (any, int, error) {
		// current value resolves to b2's payload
		cur, err := b2.Value(env)
		if err != nil {
			return nil, 0, err
		}
		// sample 7 has no recorded version → falls back to default (b1)
		hist, ver, err := b2.ValueAt(env, 7, b1.Version)
		if err != nil {
			return nil, 0, err
		}
		if ver != b1.Version {
			return nil, 0, errTest("default version not used")
		}
		// record and re-read: must now resolve to b2
		b2.Record(env, 7)
		_, ver2, err := b2.ValueAt(env, 7, b1.Version)
		if err != nil {
			return nil, 0, err
		}
		if ver2 != b2.Version {
			return nil, 0, errTest("recorded version not used")
		}
		return cur.(la.Vec)[0] + hist.(la.Vec)[0], 1, nil
	}
	if _, err := ac.ASYNCreduce(sel, kern); err != nil {
		t.Fatal(err)
	}
	p, err := ac.ASYNCcollect()
	if err != nil {
		t.Fatal(err)
	}
	if p.(float64) != 3 { // 2 (current) + 1 (historical)
		t.Fatalf("payload %v, want 3", p)
	}
}

func TestASYNCbroadcastValueAtNoDefault(t *testing.T) {
	ac, _ := setup(t, 1, 1, nil)
	b := ac.ASYNCbroadcast("x", 1)
	sel, _ := ac.ASYNCbarrier(ASP(), nil)
	kern := func(env *cluster.Env, parts []int, seed int64) (any, int, error) {
		_, _, err := b.ValueAt(env, 3, 0)
		if err == nil {
			return nil, 0, errTest("missing default accepted")
		}
		return true, 1, nil
	}
	if _, err := ac.ASYNCreduce(sel, kern); err != nil {
		t.Fatal(err)
	}
	if p, err := ac.ASYNCcollect(); err != nil || p != true {
		t.Fatalf("collect %v %v", p, err)
	}
}

func TestASYNCbroadcastEagerPopulatesCache(t *testing.T) {
	ac, _ := setup(t, 2, 2, nil)
	b := ac.ASYNCbroadcastEager("e", la.Vec{9})
	time.Sleep(30 * time.Millisecond)
	sel, _ := ac.ASYNCbarrier(ASP(), nil)
	kern := func(env *cluster.Env, parts []int, seed int64) (any, int, error) {
		if _, ok := env.Cache().Get(b.ID, b.Version); !ok {
			return nil, 0, errTest("eager broadcast not cached")
		}
		return true, 1, nil
	}
	n, err := ac.ASYNCreduce(sel, kern)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if p, err := ac.ASYNCcollect(); err != nil || p != true {
			t.Fatalf("collect: %v %v", p, err)
		}
	}
}

type errTest string

func (e errTest) Error() string { return string(e) }
