package core

import (
	"math/rand"
	"time"
)

// BarrierFunc is a barrier-control predicate over the STAT table: dispatch
// may proceed only when it returns true. This is the paper's Listing 2
// interface; ASP, BSP and SSP are provided and users can define their own
// (e.g. over AvgTaskTime, as in adaptive synchronous parallel strategies).
type BarrierFunc func(Stat) bool

// WorkerFilter selects which available workers receive tasks once the
// barrier opens. nil means "all available workers".
type WorkerFilter func(WorkerStat) bool

// ASP is the fully asynchronous barrier: always open
// (f: STAT.foreach(true)).
func ASP() BarrierFunc {
	return func(Stat) bool { return true }
}

// BSP is the bulk-synchronous barrier: open only when every live worker is
// available (f: STAT.foreach(Available_Workers == P)).
func BSP() BarrierFunc {
	return func(s Stat) bool { return s.AliveWorkers > 0 && s.AvailableWorkers == s.AliveWorkers }
}

// SSP is the stale-synchronous barrier with staleness threshold s
// (f: STAT.foreach(MAX_Staleness < s)).
func SSP(s int64) BarrierFunc {
	return func(st Stat) bool { return st.MaxStaleness < s }
}

// MinAvailable opens when at least ⌊beta·P⌋ workers are available — the
// bounded-staleness strategy used in the paper's ASGD walkthrough (§5.1).
func MinAvailable(beta float64) BarrierFunc {
	return func(s Stat) bool {
		need := int(beta * float64(s.AliveWorkers))
		if need < 1 {
			need = 1
		}
		return s.AvailableWorkers >= need
	}
}

// PSP is a probabilistic synchronous parallel filter in the style the paper
// cites ([65], Wang et al.): each available worker is admitted for dispatch
// with probability p, trading synchronization cost against gradient
// freshness stochastically. The rng must be owned by the driver goroutine.
func PSP(p float64, rng *rand.Rand) WorkerFilter {
	return func(WorkerStat) bool { return rng.Float64() < p }
}

// MaxAvgTaskTime admits only workers whose average task time is below the
// bound — a completion-time-based barrier in the style of adaptive
// synchronous parallel methods the paper cites ([69]).
func MaxAvgTaskTime(bound time.Duration) WorkerFilter {
	return func(w WorkerStat) bool {
		return w.AvgTaskTime == 0 || w.AvgTaskTime <= bound
	}
}

// Selection is the outcome of an ASYNCbarrier call: the workers reserved
// for the next dispatch. A Selection must be either dispatched (via
// ASYNCreduce / Dispatch) or released.
type Selection struct {
	Workers []int
	ac      *Context
	used    bool
}

// Release returns reserved workers to the available pool without
// dispatching (used when the driver decides not to proceed).
func (s *Selection) Release() {
	if s.used || s.ac == nil {
		return
	}
	s.used = true
	s.ac.coord.release(s.Workers)
}

// scheduler implements the ASYNCscheduler (§4.4): it blocks until the
// barrier predicate holds and at least one available worker passes the
// filter, then reserves those workers.
type scheduler struct {
	coord *Coordinator
}

// barrierTimeout bounds how long a barrier may block before reporting that
// the system cannot make progress (e.g. every worker died).
const defaultBarrierTimeout = 30 * time.Second

func (sc *scheduler) await(f BarrierFunc, filter WorkerFilter, timeout time.Duration) ([]int, error) {
	if timeout <= 0 {
		timeout = defaultBarrierTimeout
	}
	deadline := time.Now().Add(timeout)
	timer := time.AfterFunc(timeout, func() {
		sc.coord.mu.Lock()
		sc.coord.cond.Broadcast()
		sc.coord.mu.Unlock()
	})
	defer timer.Stop()

	sc.coord.mu.Lock()
	defer sc.coord.mu.Unlock()
	for {
		if err := sc.coord.ctxErr; err != nil {
			return nil, err
		}
		st := sc.coord.statLocked()
		if st.AliveWorkers == 0 {
			return nil, ErrNoWorkers
		}
		rejectedOnly := false
		if f == nil || f(st) {
			var chosen []int
			available := 0
			for _, w := range st.Workers {
				if !w.Alive || !w.Available {
					continue
				}
				available++
				if filter != nil && !filter(w) {
					continue
				}
				chosen = append(chosen, w.Worker)
			}
			if len(chosen) > 0 {
				// reserve inline (we already hold the lock)
				for _, w := range chosen {
					if ws := sc.coord.workers[w]; ws != nil {
						ws.available = false
					}
				}
				return chosen, nil
			}
			rejectedOnly = available > 0
		}
		if time.Now().After(deadline) {
			return nil, ErrBarrierTimeout
		}
		if rejectedOnly {
			// the barrier is open and workers are available but the filter
			// rejected all of them; probabilistic filters (PSP) need a
			// redraw, which no coordinator event will trigger — poll
			sc.coord.mu.Unlock()
			time.Sleep(time.Millisecond)
			sc.coord.mu.Lock()
			continue
		}
		sc.coord.cond.Wait()
	}
}
