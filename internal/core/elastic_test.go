package core

import (
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/straggler"
)

// TestElasticWorkerJoins grows the cluster mid-session: the coordinator's
// sweeper must discover the new worker, barriers must select it once it
// owns partitions, and it must complete tasks.
func TestElasticWorkerJoins(t *testing.T) {
	ac, _ := setup(t, 2, 4, nil)
	c := ac.RDD().Cluster()
	id := c.AddLocalWorker(straggler.None{}, 99)
	if id != 2 {
		t.Fatalf("new worker id %d, want 2", id)
	}
	// wait for the sweeper (50ms period) to register it
	deadline := time.Now().Add(3 * time.Second)
	for ac.STAT().AliveWorkers != 3 {
		if time.Now().After(deadline) {
			t.Fatalf("new worker never discovered: %+v", ac.STAT())
		}
		time.Sleep(10 * time.Millisecond)
	}
	// move a partition onto it so it can receive reduce work
	if err := ac.RDD().MovePartition(0, id); err != nil {
		t.Fatal(err)
	}
	if w, _ := ac.RDD().WorkerFor(0); w != id {
		t.Fatalf("partition 0 on worker %d, want %d", w, id)
	}
	// run a BSP round: all three workers (incl. the new one) must report
	sel, err := ac.ASYNCbarrier(BSP(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Workers) != 3 {
		t.Fatalf("BSP selected %v", sel.Workers)
	}
	n, err := ac.ASYNCreduce(sel, countKernel)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("dispatched %d", n)
	}
	seen := map[int]bool{}
	for i := 0; i < n; i++ {
		tr, err := ac.ASYNCcollectAll()
		if err != nil {
			t.Fatal(err)
		}
		seen[tr.Attrs.Worker] = true
	}
	if !seen[id] {
		t.Fatalf("new worker produced no result: %v", seen)
	}
}

// TestMovePartitionContent: after a move, tasks on the new owner see the
// same rows.
func TestMovePartitionContent(t *testing.T) {
	ac, _ := setup(t, 2, 2, nil)
	before := partRows(t, ac, 0)
	if err := ac.RDD().MovePartition(0, 1); err != nil {
		t.Fatal(err)
	}
	after := partRows(t, ac, 0)
	if before != after {
		t.Fatalf("partition changed size on move: %d → %d", before, after)
	}
	// moving to the same worker is a no-op
	if err := ac.RDD().MovePartition(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := ac.RDD().MovePartition(99, 1); err == nil {
		t.Fatal("moving unknown partition succeeded")
	}
}

func partRows(t *testing.T, ac *Context, part int) int {
	t.Helper()
	w, err := ac.RDD().WorkerFor(part)
	if err != nil {
		t.Fatal(err)
	}
	c := ac.RDD().Cluster()
	router := c.Router()
	ch := make(chan *cluster.Result, 1)
	tk := &cluster.Task{ID: c.NextTaskID(), Partition: part}
	tk.SetFunc(func(env *cluster.Env, task *cluster.Task) (any, error) {
		p, err := env.Partition(task.Partition)
		if err != nil {
			return nil, err
		}
		return p.NumRows(), nil
	})
	router.Route(tk.ID, ch)
	if err := c.Submit(w, tk); err != nil {
		t.Fatal(err)
	}
	r := <-ch
	if r.Failed() {
		t.Fatal(r.Err)
	}
	return r.Payload.(int)
}

// TestStalenessHistogram: the coordinator aggregates staleness counts.
func TestStalenessHistogram(t *testing.T) {
	ac, _ := setup(t, 2, 2, nil)
	for round := 0; round < 3; round++ {
		sel, err := ac.ASYNCbarrier(BSP(), nil)
		if err != nil {
			t.Fatal(err)
		}
		n, err := ac.ASYNCreduce(sel, countKernel)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			if _, err := ac.ASYNCcollect(); err != nil {
				t.Fatal(err)
			}
		}
		ac.AdvanceClock()
	}
	hist := ac.Coordinator().StalenessHistogram()
	var total int64
	for stale, count := range hist {
		if stale < 0 || count <= 0 {
			t.Fatalf("bad histogram entry %d:%d", stale, count)
		}
		total += count
	}
	if total != 6 { // 3 rounds × 2 workers
		t.Fatalf("histogram total %d, want 6", total)
	}
}
