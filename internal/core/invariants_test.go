package core

import (
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
)

// statInvariants checks the structural invariants every STAT snapshot must
// satisfy.
func statInvariants(t *testing.T, s Stat) {
	t.Helper()
	if s.AvailableWorkers > s.AliveWorkers {
		t.Fatalf("available %d > alive %d", s.AvailableWorkers, s.AliveWorkers)
	}
	if s.AliveWorkers > len(s.Workers) {
		t.Fatalf("alive %d > workers %d", s.AliveWorkers, len(s.Workers))
	}
	if s.Pending < 0 {
		t.Fatalf("negative pending %d", s.Pending)
	}
	if s.MaxStaleness < 0 {
		t.Fatalf("negative staleness %d", s.MaxStaleness)
	}
	alive, avail := 0, 0
	for i, w := range s.Workers {
		if i > 0 && s.Workers[i-1].Worker >= w.Worker {
			t.Fatal("workers not strictly sorted")
		}
		if w.Alive {
			alive++
			if w.Available {
				avail++
			}
		}
		if w.TasksCompleted < 0 || w.AvgTaskTime < 0 {
			t.Fatalf("negative counters: %+v", w)
		}
	}
	if alive != s.AliveWorkers || avail != s.AvailableWorkers {
		t.Fatalf("counts disagree with rows: %d/%d vs %d/%d", alive, avail, s.AliveWorkers, s.AvailableWorkers)
	}
}

// TestSTATInvariantsUnderLoad hammers the coordinator from a driver loop
// while snapshotting STAT concurrently; every snapshot must be consistent.
func TestSTATInvariantsUnderLoad(t *testing.T) {
	ac, _ := setup(t, 4, 8, nil)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				statInvariants(t, ac.STAT())
				time.Sleep(200 * time.Microsecond)
			}
		}
	}()
	kern := func(env *cluster.Env, parts []int, seed int64) (any, int, error) {
		time.Sleep(time.Millisecond)
		return 1, 1, nil
	}
	done := 0
	for done < 60 {
		sel, err := ac.ASYNCbarrier(ASP(), nil)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ac.ASYNCreduce(sel, kern); err != nil {
			t.Fatal(err)
		}
		for first := true; first || ac.HasNext(); first = false {
			if _, err := ac.ASYNCcollect(); err != nil {
				break
			}
			ac.AdvanceClock()
			done++
		}
	}
	close(stop)
	wg.Wait()
	statInvariants(t, ac.STAT())
}

// TestStalenessNeverNegative: collected attributes can never report
// negative staleness (clock only advances).
func TestStalenessNeverNegative(t *testing.T) {
	ac, _ := setup(t, 3, 6, nil)
	for round := 0; round < 10; round++ {
		sel, err := ac.ASYNCbarrier(ASP(), nil)
		if err != nil {
			t.Fatal(err)
		}
		n, err := ac.ASYNCreduce(sel, countKernel)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			tr, err := ac.ASYNCcollectAll()
			if err != nil {
				break
			}
			if tr.Attrs.Staleness < 0 {
				t.Fatalf("negative staleness %d", tr.Attrs.Staleness)
			}
			ac.AdvanceClock()
		}
	}
}

// TestFIFOOrder: results are collected in arrival order.
func TestFIFOOrder(t *testing.T) {
	ac, _ := setup(t, 1, 1, nil)
	// single worker executes tasks in submission order, so payloads must
	// come back FIFO
	for round := 0; round < 5; round++ {
		sel, err := ac.ASYNCbarrier(ASP(), nil)
		if err != nil {
			t.Fatal(err)
		}
		r := round
		if _, err := ac.ASYNCreduce(sel, func(env *cluster.Env, parts []int, seed int64) (any, int, error) {
			return r, 1, nil
		}); err != nil {
			t.Fatal(err)
		}
		p, err := ac.ASYNCcollect()
		if err != nil {
			t.Fatal(err)
		}
		if p.(int) != round {
			t.Fatalf("out of order: got %v at round %d", p, round)
		}
	}
}
