// Package core implements the paper's contribution: the ASYNC engine. Its
// three components — the ASYNCcoordinator, the ASYNCbroadcaster, and the
// ASYNCscheduler — plus the bookkeeping structures (per-task attributes and
// the per-worker STAT table) enable asynchronous optimization methods on
// the Spark-like substrate in internal/rdd, exposing the Table 1 API:
//
//	ASYNCreduce / ASYNCaggregate   asynchronous per-worker local reduction
//	ASYNCbarrier                   barrier control over worker status (ASP/BSP/SSP/custom)
//	ASYNCcollect / ASYNCcollectAll FIFO task-result access, with attributes
//	ASYNCbroadcast                 versioned history broadcast (id-only re-broadcast)
//	AC.STAT / AC.hasNext           bookkeeping access
package core

import (
	"time"
)

// WorkerStat is one row of the STAT table: the most recent status of a
// worker as maintained by the ASYNCcoordinator (§4.1).
type WorkerStat struct {
	Worker    int
	Alive     bool
	Available bool // not currently executing a task

	// Staleness is the number of model updates applied since the worker's
	// current (if busy) or last (if available) task was dispatched.
	Staleness int64

	// AvgTaskTime is the mean wall-clock compute time of the worker's
	// completed tasks, including injected straggler delay.
	AvgTaskTime time.Duration

	// TasksCompleted counts results received from the worker.
	TasksCompleted int64
}

// Stat is the full bookkeeping snapshot handed to barrier-control functions
// and user code via AC.STAT.
type Stat struct {
	Workers []WorkerStat

	// AliveWorkers and AvailableWorkers are the counts the paper's barrier
	// examples use (e.g. BSP: Available_Workers == P).
	AliveWorkers     int
	AvailableWorkers int

	// MaxStaleness is the maximum staleness across live workers (the SSP
	// barrier metric).
	MaxStaleness int64

	// Updates is the server's logical clock: the number of model updates
	// applied so far.
	Updates int64

	// Pending is the number of tasks currently in flight.
	Pending int
}

// Available lists the ids of live, available workers.
func (s Stat) Available() []int {
	var out []int
	for _, w := range s.Workers {
		if w.Alive && w.Available {
			out = append(out, w.Worker)
		}
	}
	return out
}

// Attrs are the per-task-result attributes the coordinator tags results
// with (§4.1: worker ID, staleness, mini-batch size, plus timings).
type Attrs struct {
	Worker    int
	Staleness int64 // updates applied between dispatch and arrival
	MiniBatch int   // samples the task actually processed
	Iteration int64 // logical clock at dispatch
	Compute   time.Duration
	Wait      time.Duration
}

// TaskResult is one entry of the server-side result queue.
type TaskResult struct {
	Payload any
	Attrs   Attrs
}

// BatchSized lets task payloads report their mini-batch size to the
// coordinator so Attrs.MiniBatch is populated.
type BatchSized interface {
	BatchSize() int
}
