package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/cluster"
)

// ErrNoWorkers is returned when a barrier can never be satisfied because no
// live workers remain.
var ErrNoWorkers = errors.New("core: no live workers")

// ErrBarrierTimeout is returned when a barrier predicate stays false past
// the configured timeout.
var ErrBarrierTimeout = errors.New("core: barrier timed out")

// workerState is the coordinator's internal per-worker record.
type workerState struct {
	alive      bool
	available  bool
	dispatch   int64 // logical clock when current/last task was dispatched
	dispatchAt time.Time
	lastStale  int64 // staleness of the last completed task
	totalTime  time.Duration
	completed  int64
	inflight   int64 // task id in flight (0 = none)
}

// Coordinator is the ASYNCcoordinator (§4.2): it consumes worker results,
// tags them with worker attributes, maintains the STAT table and the FIFO
// result queue, and wakes barrier waiters when the system state changes.
type Coordinator struct {
	c *cluster.Cluster

	mu      sync.Mutex
	cond    *sync.Cond
	workers map[int]*workerState
	queue   []TaskResult
	updates int64
	// dispatchSeq numbers dispatched tasks within a run; the reduce
	// transformations derive task sampling seeds from it, so a run's seed
	// stream depends only on its own dispatch history — resumable via
	// SetDispatchSeq, unlike the cluster-global task-id counter.
	dispatchSeq int64
	pending     int
	closed      bool

	results chan *cluster.Result
	done    chan struct{}

	// ctxErr is set (under mu) when a bound context.Context is cancelled;
	// Collect and barrier waits observe it and fail fast. ctxGen guards
	// against a stale watcher goroutine clobbering a newer binding.
	ctxErr error
	ctxGen int64

	// waitSamples accumulate the per-worker wait-time metric (Fig. 4/6).
	waitTotal map[int]time.Duration
	waitCount map[int]int64

	// staleHist counts collected results by staleness value — the
	// distribution staleness-aware methods reason about.
	staleHist map[int64]int64
}

// newCoordinator starts the coordinator loop over the cluster's router.
func newCoordinator(c *cluster.Cluster) *Coordinator {
	co := &Coordinator{
		c:         c,
		workers:   map[int]*workerState{},
		results:   make(chan *cluster.Result, 4096),
		done:      make(chan struct{}),
		waitTotal: map[int]time.Duration{},
		waitCount: map[int]int64{},
		staleHist: map[int64]int64{},
	}
	co.cond = sync.NewCond(&co.mu)
	for _, w := range c.AliveWorkers() {
		co.workers[w] = &workerState{alive: true, available: true}
	}
	go co.loop()
	return co
}

// loop consumes routed results and runs the liveness sweeper.
func (co *Coordinator) loop() {
	liveness := time.NewTicker(50 * time.Millisecond)
	defer liveness.Stop()
	for {
		select {
		case <-co.done:
			return
		case r := <-co.results:
			co.ingest(r)
		case <-liveness.C:
			co.sweep()
		}
	}
}

// ingest tags a result with worker attributes and appends it to the queue.
func (co *Coordinator) ingest(r *cluster.Result) {
	co.mu.Lock()
	defer co.mu.Unlock()
	ws := co.workers[r.Worker]
	if ws == nil {
		return
	}
	staleness := co.updates - r.Dispatch
	if staleness < 0 {
		// a task dispatched before a ResetRun zeroed the clock (ResetRun
		// fails unless the previous run fully drained, so this task belongs
		// to the current run's dataset); only its staleness value is stale
		staleness = 0
	}
	ws.available = true
	ws.inflight = 0
	ws.lastStale = staleness
	ws.totalTime += r.ComputeTime
	ws.completed++
	co.pending--
	co.waitTotal[r.Worker] += r.WaitTime
	co.waitCount[r.Worker]++
	co.staleHist[staleness]++
	mResultsIngested.Inc()
	mStaleness.Observe(float64(staleness))
	mTaskWait.ObserveDuration(r.WaitTime)
	mTaskCompute.ObserveDuration(r.ComputeTime)
	if !ws.dispatchAt.IsZero() {
		mDispatchRoundtrip.ObserveSince(ws.dispatchAt)
	}
	if !r.Failed() {
		attrs := Attrs{
			Worker:    r.Worker,
			Staleness: staleness,
			Iteration: r.Dispatch,
			Compute:   r.ComputeTime,
			Wait:      r.WaitTime,
		}
		payload := r.Payload
		skip := false
		if kp, ok := payload.(ReducePayload); ok {
			// unwrap ASYNCreduce partials; empty partials (a sample that
			// selected zero rows) produce no queue entry
			payload = kp.Val
			attrs.MiniBatch = kp.N
			skip = kp.Empty
		} else if b, ok := payload.(BatchSized); ok {
			attrs.MiniBatch = b.BatchSize()
		}
		if !skip {
			co.queue = append(co.queue, TaskResult{Payload: payload, Attrs: attrs})
		}
	}
	co.cond.Broadcast()
}

// sweep reconciles the worker table with cluster liveness: dead workers are
// marked and their in-flight slots released (so barriers and pending counts
// cannot hang on a crash), and workers added to the cluster after startup —
// elastic scale-out — are discovered and become schedulable.
func (co *Coordinator) sweep() {
	alive := co.c.AliveWorkers()
	co.mu.Lock()
	defer co.mu.Unlock()
	changed := false
	liveSet := make(map[int]bool, len(alive))
	for _, w := range alive {
		liveSet[w] = true
		if co.workers[w] == nil {
			co.workers[w] = &workerState{alive: true, available: true}
			changed = true
		}
	}
	for w, ws := range co.workers {
		if ws.alive && !liveSet[w] {
			ws.alive = false
			ws.available = false
			if ws.inflight != 0 {
				ws.inflight = 0
				co.pending--
			}
			changed = true
		}
	}
	if changed {
		co.cond.Broadcast()
	}
}

// ResetRun clears per-run coordinator state between solves on a reused
// engine: the logical update clock, undelivered results, wait and
// staleness statistics, and per-worker dispatch bookkeeping. It first
// waits (bounded by timeout) for in-flight tasks of the previous run to
// land, discarding their results — an aborted run skips its drain, and its
// strays must not leak into the next run's result queue. If stragglers are
// still in flight at the deadline it fails: their eventual results would
// be computed against the previous run's (possibly different) dataset, so
// starting the next run would silently corrupt it. Call only while no
// solve is active.
func (co *Coordinator) ResetRun(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	timer := time.AfterFunc(timeout, func() {
		co.mu.Lock()
		co.cond.Broadcast()
		co.mu.Unlock()
	})
	defer timer.Stop()
	co.mu.Lock()
	defer co.mu.Unlock()
	for co.pending > 0 && !co.closed && time.Now().Before(deadline) {
		co.queue = nil
		co.cond.Wait()
	}
	if co.pending > 0 && !co.closed {
		return fmt.Errorf("core: reset-run: %d tasks of the previous run still in flight after %v", co.pending, timeout)
	}
	co.queue = nil
	co.updates = 0
	co.dispatchSeq = 0
	co.waitTotal = map[int]time.Duration{}
	co.waitCount = map[int]int64{}
	co.staleHist = map[int64]int64{}
	for _, ws := range co.workers {
		ws.dispatch = 0
		ws.lastStale = 0
		// task-time averages feed MaxAvgTaskTime filters: the next run's
		// barrier decisions must not see the previous dataset's timings
		ws.totalTime = 0
		ws.completed = 0
	}
	return nil
}

// StalenessHistogram snapshots the distribution of result staleness values
// observed so far (staleness → count).
func (co *Coordinator) StalenessHistogram() map[int64]int64 {
	co.mu.Lock()
	defer co.mu.Unlock()
	out := make(map[int64]int64, len(co.staleHist))
	for k, v := range co.staleHist {
		out[k] = v
	}
	return out
}

// noteDispatch records that a task is about to be sent to a worker. It MUST
// run before the actual Submit: a fast worker's result can otherwise be
// ingested before the dispatch is recorded, leaving a phantom in-flight
// entry that blocks BSP/SSP barriers forever.
func (co *Coordinator) noteDispatch(worker int, taskID, clock int64) {
	co.mu.Lock()
	defer co.mu.Unlock()
	ws := co.workers[worker]
	if ws == nil {
		return
	}
	ws.available = false
	ws.dispatch = clock
	ws.dispatchAt = time.Now()
	ws.inflight = taskID
	co.pending++
	mTasksDispatched.Inc()
	co.cond.Broadcast()
}

// undoDispatch rolls back a noteDispatch whose Submit failed.
func (co *Coordinator) undoDispatch(worker int, taskID int64) {
	co.mu.Lock()
	defer co.mu.Unlock()
	ws := co.workers[worker]
	if ws == nil {
		return
	}
	if ws.inflight == taskID {
		ws.inflight = 0
		co.pending--
	}
	co.cond.Broadcast()
}

// reserve marks workers unavailable ahead of dispatch (barrier selection).
func (co *Coordinator) reserve(workers []int) {
	co.mu.Lock()
	defer co.mu.Unlock()
	for _, w := range workers {
		if ws := co.workers[w]; ws != nil {
			ws.available = false
		}
	}
}

// release undoes a reservation that was never dispatched.
func (co *Coordinator) release(workers []int) {
	co.mu.Lock()
	defer co.mu.Unlock()
	for _, w := range workers {
		if ws := co.workers[w]; ws != nil && ws.inflight == 0 && ws.alive {
			ws.available = true
		}
	}
	co.cond.Broadcast()
}

// statLocked builds the Stat snapshot; callers hold co.mu.
func (co *Coordinator) statLocked() Stat {
	s := Stat{Updates: co.updates, Pending: co.pending}
	for w, ws := range co.workers {
		stale := ws.lastStale
		if ws.inflight != 0 {
			stale = co.updates - ws.dispatch
		}
		row := WorkerStat{
			Worker:         w,
			Alive:          ws.alive,
			Available:      ws.available,
			Staleness:      stale,
			TasksCompleted: ws.completed,
		}
		if ws.completed > 0 {
			row.AvgTaskTime = ws.totalTime / time.Duration(ws.completed)
		}
		s.Workers = append(s.Workers, row)
		if ws.alive {
			s.AliveWorkers++
			if ws.available {
				s.AvailableWorkers++
			}
			// only in-flight work counts toward MaxStaleness: an idle
			// worker holds no stale computation, so SSP must not block
			// on its last completed task forever
			if ws.inflight != 0 && stale > s.MaxStaleness {
				s.MaxStaleness = stale
			}
		}
	}
	// deterministic order for callers that index by position
	for i := 1; i < len(s.Workers); i++ {
		for j := i; j > 0 && s.Workers[j].Worker < s.Workers[j-1].Worker; j-- {
			s.Workers[j], s.Workers[j-1] = s.Workers[j-1], s.Workers[j]
		}
	}
	return s
}

// Stat snapshots the STAT table.
func (co *Coordinator) Stat() Stat {
	co.mu.Lock()
	defer co.mu.Unlock()
	return co.statLocked()
}

// AdvanceClock increments the server's logical update clock: call it once
// per model-parameter update.
func (co *Coordinator) AdvanceClock() int64 {
	co.mu.Lock()
	defer co.mu.Unlock()
	co.updates++
	mClockAdvances.Inc()
	co.cond.Broadcast()
	return co.updates
}

// Updates reads the logical clock.
func (co *Coordinator) Updates() int64 {
	co.mu.Lock()
	defer co.mu.Unlock()
	return co.updates
}

// NextDispatchSeq claims the next per-run dispatch sequence number.
func (co *Coordinator) NextDispatchSeq() int64 {
	co.mu.Lock()
	defer co.mu.Unlock()
	co.dispatchSeq++
	return co.dispatchSeq
}

// DispatchSeq reads the per-run dispatch counter (checkpoint export).
func (co *Coordinator) DispatchSeq() int64 {
	co.mu.Lock()
	defer co.mu.Unlock()
	return co.dispatchSeq
}

// SetDispatchSeq restores the per-run dispatch counter (checkpoint resume):
// subsequent tasks continue the interrupted run's seed stream exactly.
func (co *Coordinator) SetDispatchSeq(v int64) {
	co.mu.Lock()
	defer co.mu.Unlock()
	co.dispatchSeq = v
}

// HasNext reports whether a task result is queued (AC.hasNext in Table 1).
func (co *Coordinator) HasNext() bool {
	co.mu.Lock()
	defer co.mu.Unlock()
	return len(co.queue) > 0
}

// Pending counts in-flight tasks.
func (co *Coordinator) Pending() int {
	co.mu.Lock()
	defer co.mu.Unlock()
	return co.pending
}

// Collect pops the oldest task result, blocking until one is available or
// timeout elapses (0 = block indefinitely while work is possible). It fails
// with ErrNoWorkers when nothing is queued, nothing is in flight, and no
// workers remain.
func (co *Coordinator) Collect(timeout time.Duration) (TaskResult, error) {
	deadline := time.Time{}
	if timeout > 0 {
		deadline = time.Now().Add(timeout)
		// wake the cond when the deadline passes so Wait can observe it
		timer := time.AfterFunc(timeout, func() {
			co.mu.Lock()
			co.cond.Broadcast()
			co.mu.Unlock()
		})
		defer timer.Stop()
	}
	co.mu.Lock()
	defer co.mu.Unlock()
	for len(co.queue) == 0 {
		if co.ctxErr != nil {
			return TaskResult{}, co.ctxErr
		}
		if co.closed {
			return TaskResult{}, errors.New("core: coordinator closed")
		}
		if co.pending == 0 {
			return TaskResult{}, fmt.Errorf("core: collect with no results and no tasks in flight")
		}
		if !deadline.IsZero() && time.Now().After(deadline) {
			return TaskResult{}, fmt.Errorf("core: collect timed out after %v", timeout)
		}
		co.cond.Wait()
	}
	tr := co.queue[0]
	co.queue = co.queue[1:]
	return tr, nil
}

// WaitTimes reports each worker's average wait time between tasks — the
// metric behind the paper's Fig. 4, Fig. 6 and Table 3.
func (co *Coordinator) WaitTimes() map[int]time.Duration {
	co.mu.Lock()
	defer co.mu.Unlock()
	out := map[int]time.Duration{}
	for w, total := range co.waitTotal {
		if n := co.waitCount[w]; n > 0 {
			out[w] = total / time.Duration(n)
		}
	}
	return out
}

// bindContext attaches a context whose cancellation aborts Collect calls
// and barrier waits with the context's error. It returns a release function
// that detaches the context (clearing any cancellation error so the
// coordinator is reusable); bindings do not stack — the latest wins.
func (co *Coordinator) bindContext(ctx context.Context) (release func()) {
	if ctx == nil || ctx.Done() == nil {
		return func() {}
	}
	co.mu.Lock()
	co.ctxGen++
	gen := co.ctxGen
	co.ctxErr = ctx.Err()
	co.mu.Unlock()
	stop := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
			co.mu.Lock()
			if co.ctxGen == gen {
				co.ctxErr = ctx.Err()
				co.cond.Broadcast()
			}
			co.mu.Unlock()
		case <-stop:
		}
	}()
	return func() {
		close(stop)
		co.mu.Lock()
		if co.ctxGen == gen {
			co.ctxErr = nil
		}
		co.mu.Unlock()
	}
}

// Close stops the coordinator loop.
func (co *Coordinator) Close() {
	co.mu.Lock()
	if !co.closed {
		co.closed = true
		close(co.done)
	}
	co.cond.Broadcast()
	co.mu.Unlock()
}
