package core

import (
	"context"
	"encoding/gob"
	"fmt"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/rdd"
)

// Context is the Asynchronous Context (AC), the entry point to ASYNC (§5.1).
// Create it once per application on top of an rdd.Context; the
// ASYNCscheduler, ASYNCbroadcaster and ASYNCcoordinator communicate through
// it, and workers deposit results and attributes into its bookkeeping
// structures.
type Context struct {
	rctx  *rdd.Context
	coord *Coordinator
	sched *scheduler

	// bcastMemo backs ASYNCbroadcastStamped (per-run; cleared by ResetRun).
	bcastMu   sync.Mutex
	bcastMemo map[string]stampedBroadcast

	// updateHook observes every AdvanceClock (per-run; cleared by ResetRun).
	hookMu     sync.Mutex
	updateHook func(updates int64)

	// BarrierTimeout bounds ASYNCbarrier blocking (0 = default 30s).
	BarrierTimeout time.Duration
}

// New creates the ASYNC context over a driver context.
func New(rctx *rdd.Context) *Context {
	co := newCoordinator(rctx.Cluster())
	return &Context{rctx: rctx, coord: co, sched: &scheduler{coord: co}}
}

// RDD exposes the underlying driver context.
func (ac *Context) RDD() *rdd.Context { return ac.rctx }

// Coordinator exposes the ASYNCcoordinator (metrics access).
func (ac *Context) Coordinator() *Coordinator { return ac.coord }

// Close shuts down the coordinator loop (the cluster itself is owned by the
// caller).
func (ac *Context) Close() { ac.coord.Close() }

// Bind attaches a context.Context to the AC: while bound, cancellation or
// deadline expiry aborts ASYNCcollect/ASYNCcollectAll and ASYNCbarrier with
// the context's error, making long driver loops interruptible. The returned
// release function detaches the context and must be called when the run
// finishes (typically deferred); the AC is reusable afterwards.
func (ac *Context) Bind(ctx context.Context) (release func()) {
	return ac.coord.bindContext(ctx)
}

// resetRunOp clears worker-local per-run state; registered so the reset
// also crosses real transports (the op must exist in worker processes,
// which import this package through the facade).
const resetRunOp = "core.reset-run"

func init() {
	cluster.RegisterOp(resetRunOp, func(env *cluster.Env, _ *cluster.Task) (any, error) {
		env.StoreClear()
		return nil, nil
	})
}

// ResetRun prepares a reused engine for a fresh, independent run: it waits
// (bounded by timeout) for stray in-flight tasks of the previous run and
// discards their results, zeroes the logical update clock and per-run
// statistics, and clears worker-local run state (broadcast history tables,
// ADMM subproblem state) on every live worker. Without it a second solve
// on the same engine inherits the predecessor's clock — instantly
// exhausting its update budget — and its history. Call only between runs.
func (ac *Context) ResetRun(timeout time.Duration) error {
	if err := ac.coord.ResetRun(timeout); err != nil {
		return err
	}
	ac.bcastMu.Lock()
	ac.bcastMemo = nil // stamps restart with the zeroed clock
	ac.bcastMu.Unlock()
	ac.SetUpdateHook(nil) // a hook must not outlive its run
	c := ac.rctx.Cluster()
	router := c.Router()
	workers := c.AliveWorkers()
	ch := make(chan *cluster.Result, len(workers))
	pending := map[int64]bool{}
	for _, w := range workers {
		t := &cluster.Task{ID: c.NextTaskID(), Op: resetRunOp, Partition: -1}
		router.Route(t.ID, ch)
		if err := c.Submit(w, t); err != nil {
			router.Unroute(t.ID)
			continue // a worker that died since AliveWorkers holds no state worth clearing
		}
		pending[t.ID] = true
	}
	n := len(pending)
	deadline := time.After(timeout)
	for i := 0; i < n; i++ {
		select {
		case r := <-ch:
			delete(pending, r.TaskID)
		case <-deadline:
			// unroute the unacknowledged tasks so retries on a wedged
			// engine don't accumulate dead routes in the router
			for id := range pending {
				router.Unroute(id)
			}
			return fmt.Errorf("core: reset-run: %d/%d workers acknowledged before timeout", i, n)
		}
	}
	return nil
}

// STAT snapshots the worker status table (AC.STAT in Table 1).
func (ac *Context) STAT() Stat { return ac.coord.Stat() }

// HasNext reports whether a task result is waiting (AC.hasNext).
func (ac *Context) HasNext() bool { return ac.coord.HasNext() }

// Pending counts in-flight tasks.
func (ac *Context) Pending() int { return ac.coord.Pending() }

// SetUpdateHook registers fn to run synchronously (on the driver goroutine)
// after every AdvanceClock — the update-boundary hook. The driver runtime
// uses it to mark checkpoint cadence and preemption boundaries; monitors may
// use it to observe run progress without polling. nil unregisters; ResetRun
// clears it so a hook can never outlive its run.
func (ac *Context) SetUpdateHook(fn func(updates int64)) {
	ac.hookMu.Lock()
	ac.updateHook = fn
	ac.hookMu.Unlock()
}

// AdvanceClock increments the model-update logical clock; drivers call it
// once per parameter update so staleness bookkeeping is meaningful. The
// registered update hook (if any) runs after the increment, before return.
func (ac *Context) AdvanceClock() int64 {
	v := ac.coord.AdvanceClock()
	ac.hookMu.Lock()
	fn := ac.updateHook
	ac.hookMu.Unlock()
	if fn != nil {
		fn(v)
	}
	return v
}

// Updates reads the logical clock.
func (ac *Context) Updates() int64 { return ac.coord.Updates() }

// ASYNCcollect pops the oldest task result payload in FIFO order,
// blocking until one arrives.
func (ac *Context) ASYNCcollect() (any, error) {
	tr, err := ac.coord.Collect(0)
	if err != nil {
		return nil, err
	}
	return tr.Payload, nil
}

// ASYNCcollectAll pops the oldest task result together with its attributes
// (worker id, staleness, mini-batch size, timings).
func (ac *Context) ASYNCcollectAll() (TaskResult, error) {
	return ac.coord.Collect(0)
}

// ASYNCcollectTimeout is ASYNCcollectAll with a deadline: it fails if no
// result becomes available within the timeout (useful for drivers that
// interleave collection with other work).
func (ac *Context) ASYNCcollectTimeout(timeout time.Duration) (TaskResult, error) {
	return ac.coord.Collect(timeout)
}

// ASYNCbarrier blocks until the barrier predicate over STAT holds and at
// least one available worker passes the filter, then reserves those workers
// for dispatch. Pass nil filter to take every available worker. This is the
// ASYNCbarrier transformation of Table 1: the returned Selection is the
// "RDD of workers that satisfy f".
func (ac *Context) ASYNCbarrier(f BarrierFunc, filter WorkerFilter) (*Selection, error) {
	chosen, err := ac.sched.await(f, filter, ac.BarrierTimeout)
	if err != nil {
		return nil, err
	}
	return &Selection{Workers: chosen, ac: ac}, nil
}

// Kernel computes one worker's locally reduced partial over the partitions
// it owns. It returns the partial value and the number of samples
// processed (the mini-batch size recorded in the result attributes).
type Kernel func(env *cluster.Env, parts []int, seed int64) (value any, batch int, err error)

// ReducePayload wraps an ASYNCreduce partial for transport; the coordinator
// unwraps it when tagging attributes. Registered ops that participate in
// remote ASYNCreduceOp dispatch return it directly.
type ReducePayload struct {
	Val   any
	N     int
	Empty bool
}

// BatchSize implements BatchSized.
func (k ReducePayload) BatchSize() int { return k.N }

func init() {
	gob.Register(ReducePayload{})
}

// ASYNCreduce dispatches one task per selected worker, computing the kernel
// over the worker's partitions with a local (worker-side) reduction, and
// returns immediately: results arrive in the AC queue as workers finish.
// This is the ASYNCreduce action of Table 1 — it differs from Spark's
// reduce exactly as §5.1 describes (per-worker execution, immediate
// return). It returns the number of tasks actually dispatched; workers that
// died between selection and dispatch are skipped.
func (ac *Context) ASYNCreduce(sel *Selection, k Kernel) (int, error) {
	if sel == nil || sel.used {
		return 0, nil
	}
	sel.used = true
	c := ac.rctx.Cluster()
	router := c.Router()
	dispatched := 0
	for _, w := range sel.Workers {
		parts := ac.rctx.PartitionsOn(w)
		if len(parts) == 0 {
			ac.coord.release([]int{w})
			continue
		}
		t := &cluster.Task{
			ID:       c.NextTaskID(),
			Seed:     ac.coord.NextDispatchSeq()*1_000_003 + int64(w),
			Dispatch: ac.coord.Updates(),
		}
		kern := k
		t.SetFunc(func(env *cluster.Env, tk *cluster.Task) (any, error) {
			v, n, err := kern(env, parts, tk.Seed)
			if err != nil {
				return nil, err
			}
			return ReducePayload{Val: v, N: n, Empty: n == 0 && v == nil}, nil
		})
		router.Route(t.ID, ac.coord.results)
		ac.coord.noteDispatch(w, t.ID, t.Dispatch)
		if err := c.Submit(w, t); err != nil {
			ac.coord.undoDispatch(w, t.ID)
			router.Unroute(t.ID)
			ac.coord.release([]int{w})
			continue
		}
		dispatched++
	}
	return dispatched, nil
}

// ASYNCreduceOp is the remote-capable flavour of ASYNCreduce: instead of an
// in-process kernel it dispatches a registered op (see cluster.RegisterOp)
// whose args are built per worker by argsFor — everything crossing the wire
// is serializable, so this path works over the TCP transport. The op must
// return a ReducePayload.
func (ac *Context) ASYNCreduceOp(sel *Selection, op string, argsFor func(worker int, parts []int) any) (int, error) {
	if sel == nil || sel.used {
		return 0, nil
	}
	sel.used = true
	c := ac.rctx.Cluster()
	router := c.Router()
	dispatched := 0
	for _, w := range sel.Workers {
		parts := ac.rctx.PartitionsOn(w)
		if len(parts) == 0 {
			ac.coord.release([]int{w})
			continue
		}
		t := &cluster.Task{
			ID:       c.NextTaskID(),
			Op:       op,
			Args:     argsFor(w, parts),
			Seed:     ac.coord.NextDispatchSeq()*1_000_003 + int64(w),
			Dispatch: ac.coord.Updates(),
		}
		router.Route(t.ID, ac.coord.results)
		ac.coord.noteDispatch(w, t.ID, t.Dispatch)
		if err := c.Submit(w, t); err != nil {
			ac.coord.undoDispatch(w, t.ID)
			router.Unroute(t.ID)
			ac.coord.release([]int{w})
			continue
		}
		dispatched++
	}
	return dispatched, nil
}

// ASYNCreduceRDD runs the paper's Algorithm 2 dispatch chain over an RDD:
// each selected worker computes the RDD's lineage on its partitions
// (sample/map transformations included), reduces locally with combine, and
// submits the partial asynchronously. Top-level function because Go methods
// cannot introduce type parameters.
func ASYNCreduceRDD[T any](ac *Context, r *rdd.RDD[T], combine func(T, T) T, sel *Selection) (int, error) {
	compute := r.Compute()
	return ac.ASYNCreduce(sel, func(env *cluster.Env, parts []int, seed int64) (any, int, error) {
		var acc T
		seen := false
		n := 0
		for _, p := range parts {
			vals, err := compute(env, p, seed+int64(p))
			if err != nil {
				return nil, 0, err
			}
			for _, v := range vals {
				if !seen {
					acc, seen = v, true
				} else {
					acc = combine(acc, v)
				}
			}
			n += len(vals)
		}
		if !seen {
			return nil, 0, nil
		}
		return acc, n, nil
	})
}

// ASYNCaggregate is the aggregate flavour of Table 1: per-worker fold with
// a zero value and seqOp, combined locally with combOp across the worker's
// partitions, submitted asynchronously.
func ASYNCaggregate[T, U any](ac *Context, r *rdd.RDD[T], zero U, seqOp func(U, T) U, combOp func(U, U) U, sel *Selection) (int, error) {
	compute := r.Compute()
	return ac.ASYNCreduce(sel, func(env *cluster.Env, parts []int, seed int64) (any, int, error) {
		acc := zero
		n := 0
		for _, p := range parts {
			vals, err := compute(env, p, seed+int64(p))
			if err != nil {
				return nil, 0, err
			}
			local := zero
			for _, v := range vals {
				local = seqOp(local, v)
			}
			acc = combOp(acc, local)
			n += len(vals)
		}
		return acc, n, nil
	})
}
