package core

import (
	"fmt"

	"repro/internal/cluster"
)

// Binary payload codes claimed by the core layer. The opt layer claims the
// next block (see internal/opt); keep the ranges disjoint.
const (
	payloadReduce byte = 16
)

func init() {
	// ReducePayload wraps every ASYNCreduce partial that crosses a real
	// transport, so teaching the binary codec about it (with the inner
	// value encoded recursively) is what puts task results on the compact
	// wire format end to end.
	cluster.RegisterPayloadCodec(payloadReduce, ReducePayload{},
		func(w *cluster.BinWriter, v any) error {
			kp, ok := v.(ReducePayload)
			if !ok {
				return fmt.Errorf("core: reduce codec got %T", v)
			}
			w.PutVarint(int64(kp.N))
			b := byte(0)
			if kp.Empty {
				b = 1
			}
			w.PutByte(b)
			return w.PutValue(kp.Val)
		},
		func(r *cluster.BinReader) (any, error) {
			kp := ReducePayload{N: int(r.Varint()), Empty: r.Byte() == 1}
			v, err := r.Value()
			if err != nil {
				return nil, err
			}
			kp.Val = v
			return kp, r.Err()
		})
}
