package core

import (
	"encoding/json"
	"net/http"
	"time"
)

// Monitor exposes the engine's bookkeeping over HTTP as JSON — the
// observability surface a cloud engine ships with. Endpoints:
//
//	GET /stat       the STAT table snapshot
//	GET /staleness  the staleness histogram
//	GET /waits      per-worker average wait times (ms)
//	GET /healthz    liveness summary
//
// Mount it on any mux: http.ListenAndServe(addr, ac.Monitor()).
func (ac *Context) Monitor() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/stat", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, ac.STAT())
	})
	mux.HandleFunc("/staleness", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, ac.Coordinator().StalenessHistogram())
	})
	mux.HandleFunc("/waits", func(w http.ResponseWriter, r *http.Request) {
		waits := ac.Coordinator().WaitTimes()
		out := make(map[int]float64, len(waits))
		for worker, d := range waits {
			out[worker] = float64(d.Microseconds()) / 1000.0
		}
		writeJSON(w, out)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		st := ac.STAT()
		writeJSON(w, healthz{
			Alive:     st.AliveWorkers,
			Available: st.AvailableWorkers,
			Pending:   st.Pending,
			Updates:   st.Updates,
			Healthy:   st.AliveWorkers > 0,
			Time:      time.Now().UTC(),
		})
	})
	return mux
}

type healthz struct {
	Alive     int       `json:"alive"`
	Available int       `json:"available"`
	Pending   int       `json:"pending"`
	Updates   int64     `json:"updates"`
	Healthy   bool      `json:"healthy"`
	Time      time.Time `json:"time"`
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
