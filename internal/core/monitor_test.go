package core

import (
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"
)

func getJSON(t *testing.T, h *httptest.Server, path string, v any) {
	t.Helper()
	resp, err := h.Client().Get(h.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("%s: status %d", path, resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("%s: content type %q", path, ct)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("%s: %v", path, err)
	}
}

func TestMonitorEndpoints(t *testing.T) {
	ac, _ := setup(t, 2, 2, nil)
	// produce some activity so the histogram and waits are non-trivial
	for round := 0; round < 2; round++ {
		sel, err := ac.ASYNCbarrier(BSP(), nil)
		if err != nil {
			t.Fatal(err)
		}
		n, err := ac.ASYNCreduce(sel, countKernel)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			if _, err := ac.ASYNCcollect(); err != nil {
				t.Fatal(err)
			}
		}
		ac.AdvanceClock()
	}
	srv := httptest.NewServer(ac.Monitor())
	defer srv.Close()

	var st Stat
	getJSON(t, srv, "/stat", &st)
	if st.AliveWorkers != 2 || len(st.Workers) != 2 {
		t.Fatalf("/stat: %+v", st)
	}

	var hz struct {
		Alive   int   `json:"alive"`
		Healthy bool  `json:"healthy"`
		Updates int64 `json:"updates"`
	}
	getJSON(t, srv, "/healthz", &hz)
	if !hz.Healthy || hz.Alive != 2 || hz.Updates != 2 {
		t.Fatalf("/healthz: %+v", hz)
	}

	var hist map[string]int64
	getJSON(t, srv, "/staleness", &hist)
	var total int64
	for _, n := range hist {
		total += n
	}
	if total != 4 { // 2 rounds × 2 workers
		t.Fatalf("/staleness total %d: %v", total, hist)
	}

	var waits map[string]float64
	getJSON(t, srv, "/waits", &waits)
	if len(waits) != 2 {
		t.Fatalf("/waits: %v", waits)
	}
}

func TestMonitorUnhealthyWhenAllDead(t *testing.T) {
	ac, _ := setup(t, 1, 1, nil)
	ac.RDD().Cluster().Kill(0)
	// wait for the sweeper
	srv := httptest.NewServer(ac.Monitor())
	defer srv.Close()
	deadline := 100
	for {
		var hz struct {
			Healthy bool `json:"healthy"`
		}
		getJSON(t, srv, "/healthz", &hz)
		if !hz.Healthy {
			return
		}
		if deadline--; deadline == 0 {
			t.Fatal("healthz never reported unhealthy")
		}
		time.Sleep(20 * time.Millisecond)
	}
}
