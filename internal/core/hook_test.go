package core

import (
	"testing"
	"time"

	"repro/internal/cluster"
)

// TestUpdateHookFiresPerAdvance: the update-boundary hook observes every
// clock advance with the post-increment value, on the calling goroutine.
func TestUpdateHookFiresPerAdvance(t *testing.T) {
	ac, _ := setup(t, 1, 1, nil)
	var seen []int64
	ac.SetUpdateHook(func(u int64) { seen = append(seen, u) })
	for i := 0; i < 3; i++ {
		ac.AdvanceClock()
	}
	if len(seen) != 3 || seen[0] != 1 || seen[2] != 3 {
		t.Fatalf("hook observed %v, want [1 2 3]", seen)
	}
	ac.SetUpdateHook(nil)
	ac.AdvanceClock()
	if len(seen) != 3 {
		t.Fatalf("unregistered hook still fired: %v", seen)
	}
}

// TestResetRunClearsHookAndDispatchSeq: per-run state — the hook and the
// dispatch-sequence counter — must not leak into the next run.
func TestResetRunClearsHookAndDispatchSeq(t *testing.T) {
	ac, _ := setup(t, 1, 1, nil)
	fired := 0
	ac.SetUpdateHook(func(int64) { fired++ })
	ac.AdvanceClock()
	co := ac.Coordinator()
	co.SetDispatchSeq(41)
	if got := co.NextDispatchSeq(); got != 42 {
		t.Fatalf("dispatch seq %d, want 42", got)
	}
	if got := co.DispatchSeq(); got != 42 {
		t.Fatalf("dispatch seq reads %d, want 42", got)
	}
	if err := ac.ResetRun(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if got := co.DispatchSeq(); got != 0 {
		t.Fatalf("dispatch seq %d after ResetRun, want 0", got)
	}
	ac.AdvanceClock()
	if fired != 1 {
		t.Fatalf("hook survived ResetRun (fired %d)", fired)
	}
	if got := ac.Updates(); got != 1 {
		t.Fatalf("clock %d after ResetRun+advance, want 1", got)
	}
}

// TestDispatchSeqSeedsTasks: the per-run dispatch counter (not the
// cluster-global task-id counter) drives task seeds, so a run whose
// counter is restored — the checkpoint-resume path — draws exactly the
// seed stream the uninterrupted run would have.
func TestDispatchSeqSeedsTasks(t *testing.T) {
	collectSeeds := func(ac *Context, n int) []int64 {
		t.Helper()
		var seeds []int64
		for i := 0; i < n; i++ {
			sel, err := ac.ASYNCbarrier(BSP(), nil)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := ac.ASYNCreduce(sel, func(env *cluster.Env, parts []int, seed int64) (any, int, error) {
				return seed, 1, nil
			}); err != nil {
				t.Fatal(err)
			}
			tr, err := ac.ASYNCcollectAll()
			if err != nil {
				t.Fatal(err)
			}
			seeds = append(seeds, tr.Payload.(int64))
		}
		return seeds
	}
	ac1, _ := setup(t, 1, 1, nil)
	full := collectSeeds(ac1, 4)

	ac2, _ := setup(t, 1, 1, nil)
	first := collectSeeds(ac2, 2)
	mark := ac2.Coordinator().DispatchSeq()
	if err := ac2.ResetRun(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	ac2.Coordinator().SetDispatchSeq(mark) // what a checkpoint resume restores
	rest := collectSeeds(ac2, 2)

	got := append(append([]int64{}, first...), rest...)
	for i := range full {
		if got[i] != full[i] {
			t.Fatalf("seed stream diverged at task %d: %v vs %v", i, got, full)
		}
	}
}
