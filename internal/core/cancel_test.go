package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/dataset"
	"repro/internal/rdd"
)

func newTestAC(t *testing.T, workers int) (*Context, func()) {
	t.Helper()
	c, err := cluster.NewLocal(cluster.Config{NumWorkers: workers, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	rctx := rdd.NewContext(c)
	d, err := dataset.Generate(dataset.EpsilonLike(dataset.ScaleTiny, 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rctx.Distribute(d, 2*workers); err != nil {
		t.Fatal(err)
	}
	ac := New(rctx)
	return ac, func() { ac.Close(); c.Shutdown() }
}

func TestBindCancelAbortsCollect(t *testing.T) {
	ac, done := newTestAC(t, 1)
	defer done()
	ctx, cancel := context.WithCancel(context.Background())
	release := ac.Bind(ctx)
	defer release()

	// occupy the worker so Collect has something pending to wait on
	sel, err := ac.ASYNCbarrier(ASP(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ac.ASYNCreduce(sel, func(env *cluster.Env, parts []int, seed int64) (any, int, error) {
		time.Sleep(time.Second)
		return nil, 0, nil
	}); err != nil {
		t.Fatal(err)
	}
	time.AfterFunc(20*time.Millisecond, cancel)
	start := time.Now()
	if _, err := ac.ASYNCcollectAll(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Collect returned %v, want context.Canceled", err)
	}
	if time.Since(start) > 500*time.Millisecond {
		t.Fatal("Collect did not abort promptly on cancellation")
	}
}

func TestBindCancelAbortsBarrier(t *testing.T) {
	ac, done := newTestAC(t, 1)
	defer done()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	release := ac.Bind(ctx)
	defer release()
	never := func(Stat) bool { return false }
	start := time.Now()
	if _, err := ac.ASYNCbarrier(never, nil); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("barrier returned %v, want context.DeadlineExceeded", err)
	}
	if time.Since(start) > time.Second {
		t.Fatal("barrier did not abort promptly on deadline")
	}
}

func TestBindReleaseRestoresAC(t *testing.T) {
	ac, done := newTestAC(t, 1)
	defer done()
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // bind an already-cancelled context
	release := ac.Bind(ctx)
	if _, err := ac.ASYNCbarrier(ASP(), nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("barrier under cancelled ctx: %v", err)
	}
	release()
	// after release the AC works again
	sel, err := ac.ASYNCbarrier(ASP(), nil)
	if err != nil {
		t.Fatalf("barrier after release: %v", err)
	}
	sel.Release()
}

func TestBindNilAndBackgroundAreNoops(t *testing.T) {
	ac, done := newTestAC(t, 1)
	defer done()
	release := ac.Bind(nil)
	release()
	release = ac.Bind(context.Background())
	release()
	sel, err := ac.ASYNCbarrier(ASP(), nil)
	if err != nil {
		t.Fatal(err)
	}
	sel.Release()
}

func TestBindLatestWins(t *testing.T) {
	ac, done := newTestAC(t, 1)
	defer done()
	ctx1, cancel1 := context.WithCancel(context.Background())
	rel1 := ac.Bind(ctx1)
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	rel2 := ac.Bind(ctx2)
	defer rel2()
	cancel1() // the superseded binding must not poison the current one
	rel1()
	time.Sleep(10 * time.Millisecond)
	sel, err := ac.ASYNCbarrier(ASP(), nil)
	if err != nil {
		t.Fatalf("barrier under binding 2 after cancel of binding 1: %v", err)
	}
	sel.Release()
}
