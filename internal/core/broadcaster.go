package core

import (
	"fmt"
	"sync"

	"repro/internal/cluster"
)

// DynBroadcast is the handle returned by ASYNCbroadcast (§4.3): a broadcast
// id plus the version assigned to the value. Re-broadcasting a new value
// under the same id ships only the (id, version) pair inside tasks; workers
// pull the value at most once per version and keep prior versions in their
// local cache, which is what makes historical-gradient methods (SAGA/ASAGA)
// communication-efficient.
type DynBroadcast struct {
	ID      string
	Version int64
}

// ASYNCbroadcast registers value under id with a fresh version on the
// driver. Nothing is pushed: workers resolve (id, version) lazily through
// the fetch path and cache it. This is the ASYNCbroadcaster's driver half.
func (ac *Context) ASYNCbroadcast(id string, value any) DynBroadcast {
	b := ac.rctx.BroadcastQuiet(id, value)
	return DynBroadcast{ID: id, Version: b.Version}
}

// ASYNCbroadcastEager additionally pushes the value to all live workers,
// trading bandwidth for first-use latency (Spark-style eager broadcast with
// ASYNC versioning).
func (ac *Context) ASYNCbroadcastEager(id string, value any) DynBroadcast {
	b := ac.rctx.BroadcastQuiet(id, value)
	ac.rctx.Cluster().PushAll(id, b.Version, value)
	return DynBroadcast{ID: id, Version: b.Version}
}

// ASYNCbroadcastStamped is the versioned model broadcast of the steady-state
// driver loop: the value is re-registered under a fresh version only when
// stamp differs from the previous call's stamp for this id. When the stamp
// is unchanged — the driver loop came around without applying any update —
// the existing (id, version) handle is returned, value() is never invoked
// (no clone, no allocation), and workers whose caches already hold that
// version skip the fetch entirely. Drivers pass the model-update clock as
// the stamp, which makes a re-broadcast of an unchanged model free on the
// driver and on the wire.
func (ac *Context) ASYNCbroadcastStamped(id string, stamp int64, value func() any) DynBroadcast {
	ac.bcastMu.Lock()
	if ac.bcastMemo == nil {
		ac.bcastMemo = map[string]stampedBroadcast{}
	}
	if m, ok := ac.bcastMemo[id]; ok && m.stamp == stamp {
		ac.bcastMu.Unlock()
		return m.br
	}
	ac.bcastMu.Unlock()
	br := ac.ASYNCbroadcast(id, value())
	ac.bcastMu.Lock()
	ac.bcastMemo[id] = stampedBroadcast{stamp: stamp, br: br}
	ac.bcastMu.Unlock()
	return br
}

// stampedBroadcast memoizes the live (stamp, handle) pair per broadcast id.
type stampedBroadcast struct {
	stamp int64
	br    DynBroadcast
}

// Value resolves the broadcast's current value on a worker (w_br.value in
// Algorithms 2 and 4).
func (b DynBroadcast) Value(env *cluster.Env) (any, error) {
	return env.BroadcastValue(b.ID, b.Version)
}

// historyTable records, per broadcast id, the version each sample index
// last used — the worker half of historical gradients. Partitions are
// pinned to workers, so each worker owns the table shard for its samples.
type historyTable struct {
	mu   sync.Mutex
	vers map[int]int64 // global sample index → broadcast version
}

// historyKeys interns the per-id store keys: resolving a history handle is
// on the per-task path, and rebuilding the key would put a string concat
// allocation back on it. The id set is tiny (one per broadcast name).
var historyKeys sync.Map // id → "core.history." + id

func historyKey(id string) string {
	if k, ok := historyKeys.Load(id); ok {
		return k.(string)
	}
	k := "core.history." + id
	historyKeys.Store(id, k)
	return k
}

func getHistory(env *cluster.Env, id string) *historyTable {
	return env.StoreGetOrCreate(historyKey(id), func() any {
		return &historyTable{vers: map[int]int64{}}
	}).(*historyTable)
}

// ValueAt resolves the broadcast value recorded for sample index
// (w_br.value(index) in Algorithm 4). If the sample has no recorded
// version yet, def is used (SAGA initializes history at w₀).
func (b DynBroadcast) ValueAt(env *cluster.Env, index int, def int64) (any, int64, error) {
	h := getHistory(env, b.ID)
	h.mu.Lock()
	ver, ok := h.vers[index]
	h.mu.Unlock()
	if !ok {
		ver = def
	}
	if ver <= 0 {
		return nil, 0, fmt.Errorf("core: sample %d has no recorded version and no default", index)
	}
	v, err := env.BroadcastValue(b.ID, ver)
	if err != nil {
		return nil, 0, err
	}
	return v, ver, nil
}

// TryValueAt resolves the broadcast value recorded for sample index,
// reporting ok=false when the sample has never been recorded (SAGA treats
// such samples as having zero historical gradient).
func (b DynBroadcast) TryValueAt(env *cluster.Env, index int) (any, bool, error) {
	h := getHistory(env, b.ID)
	h.mu.Lock()
	ver, ok := h.vers[index]
	h.mu.Unlock()
	if !ok {
		return nil, false, nil
	}
	v, err := env.BroadcastValue(b.ID, ver)
	if err != nil {
		return nil, false, err
	}
	return v, true, nil
}

// Record stores the broadcast version just used for sample index, to be
// read back by the next ValueAt for that sample.
func (b DynBroadcast) Record(env *cluster.Env, index int) {
	h := getHistory(env, b.ID)
	h.mu.Lock()
	h.vers[index] = b.Version
	h.mu.Unlock()
}

// BroadcastHistory is a resolved handle onto the worker's history table for
// one broadcast id. Per-sample loops hoist the handle once per task (the
// lookup concatenates a store key, which would otherwise allocate on every
// sample) and then use it allocation-free.
type BroadcastHistory struct {
	b DynBroadcast
	h *historyTable
}

// History resolves the worker's history-table handle for this broadcast.
func (b DynBroadcast) History(env *cluster.Env) BroadcastHistory {
	return BroadcastHistory{b: b, h: getHistory(env, b.ID)}
}

// TryValueAt is DynBroadcast.TryValueAt through the resolved handle.
func (bh BroadcastHistory) TryValueAt(env *cluster.Env, index int) (any, bool, error) {
	bh.h.mu.Lock()
	ver, ok := bh.h.vers[index]
	bh.h.mu.Unlock()
	if !ok {
		return nil, false, nil
	}
	v, err := env.BroadcastValue(bh.b.ID, ver)
	if err != nil {
		return nil, false, err
	}
	return v, true, nil
}

// Record is DynBroadcast.Record through the resolved handle.
func (bh BroadcastHistory) Record(index int) {
	bh.h.mu.Lock()
	bh.h.vers[index] = bh.b.Version
	bh.h.mu.Unlock()
}

// RecordedVersion reports the version recorded for a sample (testing and
// diagnostics).
func (b DynBroadcast) RecordedVersion(env *cluster.Env, index int) (int64, bool) {
	h := getHistory(env, b.ID)
	h.mu.Lock()
	defer h.mu.Unlock()
	v, ok := h.vers[index]
	return v, ok
}
