package cluster

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"repro/internal/la"
)

// payloadEqual compares decoded payloads semantically: dense and sparse
// vectors by value (nil and empty are the same), everything else by
// DeepEqual. Gob and the binary codec legitimately differ on nil-vs-empty
// slices, which is invisible to every consumer.
func payloadEqual(a, b any) bool {
	switch x := a.(type) {
	case la.Vec:
		y, ok := b.(la.Vec)
		return ok && la.Equal(x, y, 0)
	case *la.DeltaVec:
		y, ok := b.(*la.DeltaVec)
		if !ok || x.N != y.N || len(x.Idx) != len(y.Idx) {
			return false
		}
		for k := range x.Idx {
			if x.Idx[k] != y.Idx[k] || x.Val[k] != y.Val[k] {
				return false
			}
		}
		return true
	default:
		return reflect.DeepEqual(a, b)
	}
}

// roundTrip encodes m in both formats, decodes both frames, and checks the
// two decodings agree with the original. It returns the frame sizes.
func roundTrip(t *testing.T, m Message) (binBytes, gobBytes int) {
	t.Helper()
	RegisterGobTypes()
	binFrame, usedBin, err := EncodeFrame(m, true)
	if err != nil {
		t.Fatalf("binary encode: %v", err)
	}
	if !usedBin {
		t.Fatalf("kind %v fell back to gob unexpectedly", m.Kind)
	}
	gobFrame, _, err := EncodeFrame(m, false)
	if err != nil {
		t.Fatalf("gob encode: %v", err)
	}
	check := func(name string, frame []byte) {
		back, err := DecodeFrame(frame)
		if err != nil {
			t.Fatalf("%s decode: %v", name, err)
		}
		if back.Kind != m.Kind || back.Seq != m.Seq {
			t.Fatalf("%s decode: kind/seq (%v,%d) != (%v,%d)", name, back.Kind, back.Seq, m.Kind, m.Seq)
		}
		switch m.Kind {
		case KindTaskResult:
			r, o := back.Result, m.Result
			if r.TaskID != o.TaskID || r.Worker != o.Worker || r.Op != o.Op ||
				r.Dispatch != o.Dispatch || r.Err != o.Err ||
				r.ComputeTime != o.ComputeTime || r.WaitTime != o.WaitTime {
				t.Fatalf("%s decode: result fields differ: %+v vs %+v", name, r, o)
			}
			if !payloadEqual(o.Payload, r.Payload) {
				t.Fatalf("%s decode: payload differs", name)
			}
		case KindRunTask:
			tk, o := back.Task, m.Task
			if tk.ID != o.ID || tk.Op != o.Op || tk.Partition != o.Partition ||
				tk.Seed != o.Seed || tk.Dispatch != o.Dispatch || !payloadEqual(o.Args, tk.Args) {
				t.Fatalf("%s decode: task differs: %+v vs %+v", name, tk, o)
			}
		case KindFetchReply:
			if back.FetchReply.ID != m.FetchReply.ID || back.FetchReply.Version != m.FetchReply.Version ||
				back.FetchReply.Err != m.FetchReply.Err || !payloadEqual(m.FetchReply.Value, back.FetchReply.Value) {
				t.Fatalf("%s decode: fetch reply differs", name)
			}
		case KindBroadcastPush:
			if back.Push.ID != m.Push.ID || back.Push.Version != m.Push.Version ||
				!payloadEqual(m.Push.Value, back.Push.Value) {
				t.Fatalf("%s decode: push differs", name)
			}
		case KindHello:
			if back.Hello.Worker != m.Hello.Worker || !reflect.DeepEqual(back.Hello.Codecs, m.Hello.Codecs) {
				t.Fatalf("%s decode: hello differs", name)
			}
		case KindHelloAck:
			if back.HelloAck.Codec != m.HelloAck.Codec {
				t.Fatalf("%s decode: hello-ack differs", name)
			}
		case KindFetch:
			if !reflect.DeepEqual(back.Fetch, m.Fetch) {
				t.Fatalf("%s decode: fetch differs", name)
			}
		case KindAck:
			if !reflect.DeepEqual(back.Ack, m.Ack) {
				t.Fatalf("%s decode: ack differs", name)
			}
		}
	}
	check("binary", binFrame)
	check("gob", gobFrame)
	return len(binFrame), len(gobFrame)
}

func randVec(rng *rand.Rand, n int) la.Vec {
	v := la.NewVec(n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

func randDeltaVec(rng *rand.Rand, n, nnz int) *la.DeltaVec {
	seen := map[int32]bool{}
	for len(seen) < nnz {
		seen[int32(rng.Intn(n))] = true
	}
	d := &la.DeltaVec{N: n}
	for j := int32(0); int(j) < n && len(d.Idx) < nnz; j++ {
		if seen[j] {
			d.Idx = append(d.Idx, j)
			d.Val = append(d.Val, rng.NormFloat64())
		}
	}
	return d
}

func TestCodecResultRoundTripDense(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, 3, 100, 4096, 100_000} {
		m := Message{Kind: KindTaskResult, Result: &Result{
			TaskID: rng.Int63(), Worker: rng.Intn(32), Op: "opt.grad",
			Dispatch: rng.Int63(), Payload: randVec(rng, n),
			ComputeTime: time.Duration(rng.Int63n(1e9)), WaitTime: time.Duration(rng.Int63n(1e6)),
		}}
		binB, gobB := roundTrip(t, m)
		if n >= 100 && binB >= gobB {
			t.Errorf("n=%d: binary frame (%dB) not smaller than gob (%dB)", n, binB, gobB)
		}
	}
}

func TestCodecResultRoundTripSparse(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	cases := []struct{ n, nnz int }{{10, 0}, {10, 3}, {1000, 50}, {1 << 20, 100}, {1 << 20, 20000}}
	for _, c := range cases {
		m := Message{Kind: KindTaskResult, Result: &Result{
			TaskID: 7, Worker: 2, Payload: randDeltaVec(rng, c.n, c.nnz),
		}}
		roundTrip(t, m)
	}
}

func TestCodecSpecialFloats(t *testing.T) {
	v := la.Vec{math.Inf(1), math.Inf(-1), 0, math.Copysign(0, -1), math.MaxFloat64, math.SmallestNonzeroFloat64}
	roundTrip(t, Message{Kind: KindBroadcastPush, Push: &BroadcastPush{ID: "w", Version: 3, Value: v}})
	// NaN defeats == comparison; check it survives the binary trip by hand
	frame, _, err := EncodeFrame(Message{Kind: KindFetchReply, FetchReply: &FetchReply{ID: "w", Version: 1, Value: la.Vec{math.NaN()}}}, true)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeFrame(frame)
	if err != nil {
		t.Fatal(err)
	}
	got := back.FetchReply.Value.(la.Vec)
	if len(got) != 1 || !math.IsNaN(got[0]) {
		t.Fatalf("NaN did not survive: %v", got)
	}
}

func TestCodecControlMessages(t *testing.T) {
	msgs := []Message{
		{Kind: KindHello, Hello: &Hello{Worker: 4, Codecs: []string{BinCodecName}}},
		{Kind: KindHelloAck, HelloAck: &HelloAck{Codec: BinCodecName}},
		{Kind: KindFetch, Fetch: &FetchReq{Worker: 1, ID: "model", Version: 42}},
		{Kind: KindAck, Seq: 9, Ack: &Ack{Seq: 9, Err: "boom"}},
		{Kind: KindShutdown},
		{Kind: KindRunTask, Task: &Task{ID: 5, Op: "opt.grad", Partition: -1, Seed: -77, Dispatch: 12}},
	}
	for _, m := range msgs {
		roundTrip(t, m)
	}
}

// TestCodecInstallFallsBack: partition installs (rare, setup-time) have no
// binary encoding and ride gob frames even when binary is negotiated.
func TestCodecInstallFallsBack(t *testing.T) {
	RegisterGobTypes()
	frame, usedBin, err := EncodeFrame(Message{Kind: KindInstallPartition, Seq: 3, Install: &InstallPartition{}}, true)
	if err != nil {
		t.Fatal(err)
	}
	if usedBin {
		t.Fatal("install message must fall back to gob")
	}
	back, err := DecodeFrame(frame)
	if err != nil {
		t.Fatal(err)
	}
	if back.Kind != KindInstallPartition || back.Seq != 3 {
		t.Fatalf("got %v seq %d", back.Kind, back.Seq)
	}
}

// TestCodecEncodeSteadyStateAllocs: framing a task result through the
// reusable writer is allocation-free once the buffer has grown.
func TestCodecEncodeSteadyStateAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := Message{Kind: KindTaskResult, Result: &Result{
		TaskID: 1, Worker: 0, Payload: randDeltaVec(rng, 10000, 200),
	}}
	var w BinWriter
	var out []byte
	var err error
	work := func() {
		out, _, err = appendFrameBody(&w, out[:0], &m, true)
		if err != nil {
			t.Fatal(err)
		}
	}
	work()
	if allocs := testing.AllocsPerRun(100, work); allocs > 0 {
		t.Errorf("binary encode allocates %v per message, want 0", allocs)
	}
}

// FuzzDecodeFrame hardens the wire decoder: arbitrary bytes must never
// panic or over-allocate, and every frame the encoder produces must decode.
func FuzzDecodeFrame(f *testing.F) {
	RegisterGobTypes()
	rng := rand.New(rand.NewSource(4))
	seedMsgs := []Message{
		{Kind: KindTaskResult, Result: &Result{TaskID: 3, Payload: randVec(rng, 16)}},
		{Kind: KindTaskResult, Result: &Result{TaskID: 4, Payload: randDeltaVec(rng, 1000, 20)}},
		{Kind: KindHello, Hello: &Hello{Worker: 0, Codecs: []string{BinCodecName}}},
		{Kind: KindFetch, Fetch: &FetchReq{Worker: 2, ID: "m", Version: 1}},
		{Kind: KindShutdown},
	}
	for _, m := range seedMsgs {
		if frame, _, err := EncodeFrame(m, true); err == nil {
			f.Add(frame)
		}
	}
	f.Add([]byte{0, 0, 0, 2, frameBinary, byte(KindTaskResult)})
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _ = DecodeFrame(data) // must not panic
	})
}
