package cluster

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"math"
	"reflect"
	"sync"
	"time"

	"repro/internal/la"
)

// Compact binary wire codec. Every TCP connection carries length-prefixed
// frames:
//
//	[4-byte big-endian frame length L][1-byte format][L-1 bytes body]
//
// format 0 (frameGob):    body is a self-contained gob stream of one Message
// format 1 (frameBinary): body is the compact binary encoding below
//
// The binary format encodes the hot protocol messages — RunTask,
// TaskResult, Fetch/FetchReply, BroadcastPush — with varint integers,
// raw little-endian float64 payloads, and varint-delta coordinate indices,
// cutting per-task message size and encode allocations versus gob (which
// re-transmits type descriptors and boxes every field through reflection).
// Messages the binary format does not cover (partition installs) and
// payload types nobody registered fall back to a gob frame transparently;
// both sides always accept both formats.
//
// Negotiation rides the Hello handshake: the framed endpoint stamps
// BinCodecName into Hello.Codecs on the way out, and a receiver that
// understands it answers with a HelloAck — from then on each side sends
// binary for whatever it can encode. Endpoints that never see the
// advertisement simply keep exchanging gob frames.
const (
	frameGob    byte = 0
	frameBinary byte = 1

	// maxFrame bounds a frame so a corrupted or hostile length prefix
	// cannot trigger an unbounded allocation.
	maxFrame = 1 << 30

	// BinCodecName identifies this codec revision in Hello.Codecs.
	BinCodecName = "bin/1"
)

// Builtin payload codes. Codes ≥ payloadRegistered are claimed through
// RegisterPayloadCodec.
const (
	payloadNil     byte = 0
	payloadVec     byte = 1
	payloadDelta   byte = 2
	payloadFloat64 byte = 3
	payloadInt64   byte = 4
	payloadString  byte = 5
	payloadBool    byte = 6
	payloadIntSlc  byte = 7

	payloadRegistered byte = 16
)

// errNoBinary marks a message (or payload) the binary format cannot carry;
// the sender falls back to a gob frame.
var errNoBinary = errors.New("cluster: message has no binary encoding")

// payloadCodec is one registered payload type.
type payloadCodec struct {
	code byte
	enc  func(*BinWriter, any) error
	dec  func(*BinReader) (any, error)
}

var payloadRegistry = struct {
	mu     sync.RWMutex
	byType map[reflect.Type]*payloadCodec
	byCode map[byte]*payloadCodec
}{byType: map[reflect.Type]*payloadCodec{}, byCode: map[byte]*payloadCodec{}}

// RegisterPayloadCodec teaches the binary codec a payload type: prototype's
// concrete type is encoded by enc under the given code and decoded by dec.
// Codes below 16 are reserved for builtins; registering a taken code or
// type panics (registration is an init-time act, like gob.Register).
func RegisterPayloadCodec(code byte, prototype any, enc func(*BinWriter, any) error, dec func(*BinReader) (any, error)) {
	if code < payloadRegistered {
		panic(fmt.Sprintf("cluster: payload code %d is reserved", code))
	}
	t := reflect.TypeOf(prototype)
	payloadRegistry.mu.Lock()
	defer payloadRegistry.mu.Unlock()
	if _, dup := payloadRegistry.byCode[code]; dup {
		panic(fmt.Sprintf("cluster: payload code %d registered twice", code))
	}
	if _, dup := payloadRegistry.byType[t]; dup {
		panic(fmt.Sprintf("cluster: payload type %v registered twice", t))
	}
	c := &payloadCodec{code: code, enc: enc, dec: dec}
	payloadRegistry.byCode[code] = c
	payloadRegistry.byType[t] = c
}

// BinWriter builds the body of a binary frame. The zero value is ready to
// use; Reset reuses the buffer across messages so steady-state encoding
// performs no allocations once the buffer has grown to the working size.
type BinWriter struct{ buf []byte }

// Reset truncates the buffer, keeping its capacity.
func (w *BinWriter) Reset() { w.buf = w.buf[:0] }

// Bytes returns the accumulated encoding (valid until the next Reset).
func (w *BinWriter) Bytes() []byte { return w.buf }

// PutByte appends a raw byte.
func (w *BinWriter) PutByte(b byte) { w.buf = append(w.buf, b) }

// PutUvarint appends an unsigned varint.
func (w *BinWriter) PutUvarint(v uint64) { w.buf = binary.AppendUvarint(w.buf, v) }

// PutVarint appends a zig-zag signed varint.
func (w *BinWriter) PutVarint(v int64) { w.buf = binary.AppendVarint(w.buf, v) }

// PutString appends a length-prefixed string.
func (w *BinWriter) PutString(s string) {
	w.PutUvarint(uint64(len(s)))
	w.buf = append(w.buf, s...)
}

// PutFloat64 appends one little-endian float64.
func (w *BinWriter) PutFloat64(f float64) {
	w.buf = binary.LittleEndian.AppendUint64(w.buf, math.Float64bits(f))
}

// PutFloat64s appends a run of little-endian float64s (no length prefix).
func (w *BinWriter) PutFloat64s(fs []float64) {
	for _, f := range fs {
		w.buf = binary.LittleEndian.AppendUint64(w.buf, math.Float64bits(f))
	}
}

// PutIndexDeltas appends strictly increasing coordinate indices as a first
// absolute value plus uvarint gaps — the compact index encoding of sparse
// payloads.
func (w *BinWriter) PutIndexDeltas(idx []int32) {
	prev := int32(0)
	for i, j := range idx {
		if i == 0 {
			w.PutUvarint(uint64(j))
		} else {
			w.PutUvarint(uint64(j - prev))
		}
		prev = j
	}
}

// PutValue appends a payload value: builtins directly, registered types via
// their codec. It returns errNoBinary (wrapped) for anything else, which
// makes the enclosing message fall back to gob.
func (w *BinWriter) PutValue(v any) error {
	switch x := v.(type) {
	case nil:
		w.PutByte(payloadNil)
	case la.Vec:
		w.PutByte(payloadVec)
		w.PutUvarint(uint64(len(x)))
		w.PutFloat64s(x)
	case *la.DeltaVec:
		w.PutByte(payloadDelta)
		w.PutUvarint(uint64(x.N))
		w.PutUvarint(uint64(len(x.Idx)))
		w.PutIndexDeltas(x.Idx)
		w.PutFloat64s(x.Val)
	case float64:
		w.PutByte(payloadFloat64)
		w.PutFloat64(x)
	case int64:
		w.PutByte(payloadInt64)
		w.PutVarint(x)
	case int:
		w.PutByte(payloadInt64)
		w.PutVarint(int64(x))
	case string:
		w.PutByte(payloadString)
		w.PutString(x)
	case bool:
		b := byte(0)
		if x {
			b = 1
		}
		w.PutByte(payloadBool)
		w.PutByte(b)
	case []int:
		w.PutByte(payloadIntSlc)
		w.PutUvarint(uint64(len(x)))
		for _, e := range x {
			w.PutVarint(int64(e))
		}
	default:
		payloadRegistry.mu.RLock()
		c := payloadRegistry.byType[reflect.TypeOf(v)]
		payloadRegistry.mu.RUnlock()
		if c == nil {
			return fmt.Errorf("%w: payload %T", errNoBinary, v)
		}
		w.PutByte(c.code)
		return c.enc(w, v)
	}
	return nil
}

// BinReader decodes the body of a binary frame. Errors are sticky: after
// the first malformed field every subsequent read returns zero values, and
// Err reports the failure. All lengths are validated against the remaining
// input before any allocation, so a corrupt (or fuzzed) frame cannot
// trigger an outsized allocation.
type BinReader struct {
	buf []byte
	off int
	err error
}

// NewBinReader wraps a binary frame body.
func NewBinReader(b []byte) *BinReader { return &BinReader{buf: b} }

// Err returns the first decoding error, if any.
func (r *BinReader) Err() error { return r.err }

func (r *BinReader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("cluster: bad frame: "+format, args...)
	}
}

// Byte reads one raw byte.
func (r *BinReader) Byte() byte {
	if r.err != nil {
		return 0
	}
	if r.off >= len(r.buf) {
		r.fail("truncated byte")
		return 0
	}
	b := r.buf[r.off]
	r.off++
	return b
}

// Uvarint reads an unsigned varint.
func (r *BinReader) Uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		r.fail("bad uvarint")
		return 0
	}
	r.off += n
	return v
}

// Varint reads a zig-zag signed varint.
func (r *BinReader) Varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.buf[r.off:])
	if n <= 0 {
		r.fail("bad varint")
		return 0
	}
	r.off += n
	return v
}

// Length reads a uvarint and validates it as a count of elements each at
// least elemSize bytes wide against the remaining input.
func (r *BinReader) Length(elemSize int) int {
	v := r.Uvarint()
	if r.err != nil {
		return 0
	}
	if elemSize < 1 {
		elemSize = 1
	}
	if v > uint64((len(r.buf)-r.off)/elemSize) {
		r.fail("length %d exceeds remaining input", v)
		return 0
	}
	return int(v)
}

// String reads a length-prefixed string.
func (r *BinReader) String() string {
	n := r.Length(1)
	if r.err != nil {
		return ""
	}
	s := string(r.buf[r.off : r.off+n])
	r.off += n
	return s
}

// Float64 reads one little-endian float64.
func (r *BinReader) Float64() float64 {
	if r.err != nil {
		return 0
	}
	if r.off+8 > len(r.buf) {
		r.fail("truncated float64")
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(r.buf[r.off:]))
	r.off += 8
	return v
}

// Float64s fills dst with little-endian float64s.
func (r *BinReader) Float64s(dst []float64) {
	if r.err != nil {
		return
	}
	if r.off+8*len(dst) > len(r.buf) {
		r.fail("truncated float64 run of %d", len(dst))
		return
	}
	for i := range dst {
		dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(r.buf[r.off:]))
		r.off += 8
	}
}

// IndexDeltas reconstructs nnz strictly increasing indices below n from the
// delta encoding.
func (r *BinReader) IndexDeltas(dst []int32, n int) {
	cur := int64(-1)
	for i := range dst {
		gap := r.Uvarint()
		if r.err != nil {
			return
		}
		if i == 0 {
			cur = int64(gap)
		} else {
			if gap == 0 {
				r.fail("non-increasing sparse index")
				return
			}
			cur += int64(gap)
		}
		if cur >= int64(n) {
			r.fail("sparse index %d out of range [0,%d)", cur, n)
			return
		}
		dst[i] = int32(cur)
	}
}

// Value decodes a payload written by PutValue. Dense vectors come from the
// la pool (the driver recycles them after applying the update), sparse
// deltas from the delta pool.
func (r *BinReader) Value() (any, error) {
	code := r.Byte()
	if r.err != nil {
		return nil, r.err
	}
	switch code {
	case payloadNil:
		return nil, nil
	case payloadVec:
		n := r.Length(8)
		if r.err != nil {
			return nil, r.err
		}
		v := la.GetVec(n)
		r.Float64s(v)
		if r.err != nil {
			la.PutVec(v)
			return nil, r.err
		}
		return v, nil
	case payloadDelta:
		dim := int(r.Uvarint())
		nnz := r.Length(9) // ≥1 byte of index gap + 8 bytes of value each
		if r.err != nil {
			return nil, r.err
		}
		d := la.GetDelta(nnz, dim)
		r.IndexDeltas(d.Idx, dim)
		r.Float64s(d.Val)
		if r.err != nil {
			la.PutDelta(d)
			return nil, r.err
		}
		return d, nil
	case payloadFloat64:
		return r.Float64(), r.err
	case payloadInt64:
		return r.Varint(), r.err
	case payloadString:
		return r.String(), r.err
	case payloadBool:
		return r.Byte() == 1, r.err
	case payloadIntSlc:
		n := r.Length(1)
		if r.err != nil {
			return nil, r.err
		}
		s := make([]int, n)
		for i := range s {
			s[i] = int(r.Varint())
		}
		return s, r.err
	default:
		payloadRegistry.mu.RLock()
		c := payloadRegistry.byCode[code]
		payloadRegistry.mu.RUnlock()
		if c == nil {
			r.fail("unknown payload code %d", code)
			return nil, r.err
		}
		return c.dec(r)
	}
}

// encodeBinMessage renders m into w in the binary format, or returns
// errNoBinary (possibly wrapped) when m cannot be carried.
func encodeBinMessage(w *BinWriter, m *Message) error {
	w.PutByte(byte(m.Kind))
	w.PutVarint(m.Seq)
	switch m.Kind {
	case KindHello:
		if m.Hello == nil {
			return errNoBinary
		}
		w.PutVarint(int64(m.Hello.Worker))
		w.PutUvarint(uint64(len(m.Hello.Codecs)))
		for _, c := range m.Hello.Codecs {
			w.PutString(c)
		}
	case KindHelloAck:
		if m.HelloAck == nil {
			return errNoBinary
		}
		w.PutString(m.HelloAck.Codec)
	case KindRunTask:
		t := m.Task
		if t == nil || t.Func() != nil {
			return errNoBinary // in-process task funcs never cross a wire
		}
		w.PutVarint(t.ID)
		w.PutString(t.Op)
		w.PutVarint(int64(t.Partition))
		w.PutVarint(t.Seed)
		w.PutVarint(t.Dispatch)
		return w.PutValue(t.Args)
	case KindTaskResult:
		r := m.Result
		if r == nil {
			return errNoBinary
		}
		w.PutVarint(r.TaskID)
		w.PutVarint(int64(r.Worker))
		w.PutString(r.Op)
		w.PutVarint(r.Dispatch)
		w.PutString(r.Err)
		w.PutVarint(int64(r.ComputeTime))
		w.PutVarint(int64(r.WaitTime))
		return w.PutValue(r.Payload)
	case KindFetch:
		f := m.Fetch
		if f == nil {
			return errNoBinary
		}
		w.PutVarint(int64(f.Worker))
		w.PutString(f.ID)
		w.PutVarint(f.Version)
	case KindFetchReply:
		f := m.FetchReply
		if f == nil {
			return errNoBinary
		}
		w.PutString(f.ID)
		w.PutVarint(f.Version)
		w.PutString(f.Err)
		return w.PutValue(f.Value)
	case KindBroadcastPush:
		p := m.Push
		if p == nil {
			return errNoBinary
		}
		w.PutString(p.ID)
		w.PutVarint(p.Version)
		return w.PutValue(p.Value)
	case KindAck:
		if m.Ack == nil {
			return errNoBinary
		}
		w.PutVarint(m.Ack.Seq)
		w.PutString(m.Ack.Err)
	case KindShutdown:
		// kind and seq say it all
	default:
		return errNoBinary // partition installs and future kinds ride gob
	}
	return nil
}

// decodeBinMessage parses a binary frame body.
func decodeBinMessage(body []byte) (Message, error) {
	r := NewBinReader(body)
	m := Message{Kind: Kind(r.Byte()), Seq: r.Varint()}
	switch m.Kind {
	case KindHello:
		h := &Hello{Worker: int(r.Varint())}
		n := r.Length(1)
		for i := 0; i < n && r.Err() == nil; i++ {
			h.Codecs = append(h.Codecs, r.String())
		}
		m.Hello = h
	case KindHelloAck:
		m.HelloAck = &HelloAck{Codec: r.String()}
	case KindRunTask:
		t := &Task{
			ID:        r.Varint(),
			Op:        r.String(),
			Partition: int(r.Varint()),
			Seed:      r.Varint(),
			Dispatch:  r.Varint(),
		}
		v, err := r.Value()
		if err != nil {
			return Message{}, err
		}
		t.Args = v
		m.Task = t
	case KindTaskResult:
		res := &Result{
			TaskID:      r.Varint(),
			Worker:      int(r.Varint()),
			Op:          r.String(),
			Dispatch:    r.Varint(),
			Err:         r.String(),
			ComputeTime: time.Duration(r.Varint()),
			WaitTime:    time.Duration(r.Varint()),
		}
		v, err := r.Value()
		if err != nil {
			return Message{}, err
		}
		res.Payload = v
		m.Result = res
	case KindFetch:
		m.Fetch = &FetchReq{Worker: int(r.Varint()), ID: r.String(), Version: r.Varint()}
	case KindFetchReply:
		f := &FetchReply{ID: r.String(), Version: r.Varint(), Err: r.String()}
		v, err := r.Value()
		if err != nil {
			return Message{}, err
		}
		f.Value = v
		m.FetchReply = f
	case KindBroadcastPush:
		p := &BroadcastPush{ID: r.String(), Version: r.Varint()}
		v, err := r.Value()
		if err != nil {
			return Message{}, err
		}
		p.Value = v
		m.Push = p
	case KindAck:
		m.Ack = &Ack{Seq: r.Varint(), Err: r.String()}
	case KindShutdown:
	default:
		r.fail("kind %d has no binary decoding", m.Kind)
	}
	if err := r.Err(); err != nil {
		return Message{}, err
	}
	return m, nil
}

// EncodeFrame renders one message as a complete wire frame. When binary is
// requested the compact codec is attempted first, falling back to gob for
// messages it cannot carry; usedBinary reports which format was written.
// The endpoint's Send path and the bench suite's bytes/task accounting both
// go through this function.
func EncodeFrame(m Message, useBinary bool) (frame []byte, usedBinary bool, err error) {
	var w BinWriter
	body, usedBinary, err := appendFrameBody(&w, nil, &m, useBinary)
	if err != nil {
		return nil, false, err
	}
	return body, usedBinary, nil
}

// appendFrameBody writes [len][format][body] for m into dst, using bw as
// the scratch encoder for binary bodies.
func appendFrameBody(bw *BinWriter, dst []byte, m *Message, useBinary bool) ([]byte, bool, error) {
	if useBinary {
		bw.Reset()
		if err := encodeBinMessage(bw, m); err == nil {
			body := bw.Bytes()
			dst = binary4(dst, uint32(len(body)+1))
			dst = append(dst, frameBinary)
			return append(dst, body...), true, nil
		} else if !errors.Is(err, errNoBinary) {
			return nil, false, err
		}
	}
	var gb bytes.Buffer
	if err := gob.NewEncoder(&gb).Encode(m); err != nil {
		return nil, false, fmt.Errorf("cluster: gob encode: %w", err)
	}
	dst = binary4(dst, uint32(gb.Len()+1))
	dst = append(dst, frameGob)
	return append(dst, gb.Bytes()...), false, nil
}

func binary4(dst []byte, v uint32) []byte {
	return append(dst, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

// DecodeFrame parses one complete wire frame (length prefix included) back
// into a Message — the inverse of EncodeFrame, shared by tests and the
// decode fuzz target.
func DecodeFrame(frame []byte) (Message, error) {
	if len(frame) < 5 {
		return Message{}, errors.New("cluster: short frame")
	}
	l := uint32(frame[0])<<24 | uint32(frame[1])<<16 | uint32(frame[2])<<8 | uint32(frame[3])
	if l < 1 || l > maxFrame || int(l) != len(frame)-4 {
		return Message{}, fmt.Errorf("cluster: bad frame length %d for %d bytes", l, len(frame)-4)
	}
	return decodeFrameBody(frame[4], frame[5:])
}

func decodeFrameBody(format byte, body []byte) (Message, error) {
	switch format {
	case frameGob:
		var m Message
		if err := gob.NewDecoder(bytes.NewReader(body)).Decode(&m); err != nil {
			return Message{}, fmt.Errorf("cluster: gob decode: %w", err)
		}
		return m, nil
	case frameBinary:
		return decodeBinMessage(body)
	default:
		return Message{}, fmt.Errorf("cluster: unknown frame format %d", format)
	}
}
