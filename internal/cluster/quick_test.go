package cluster

import (
	"bytes"
	"encoding/gob"
	"testing"
	"testing/quick"
	"time"
)

// TestPropCacheBounded: whatever the insertion sequence, a bounded cache
// never holds more than maxVersions versions of an id, and Latest always
// reports the highest surviving version.
func TestPropCacheBounded(t *testing.T) {
	f := func(versions []uint8, bound uint8) bool {
		maxV := int(bound%8) + 1
		c := NewBroadcastCache(maxV)
		var lastVer int64 = -1
		for _, v := range versions {
			ver := int64(v)
			c.Put("id", ver, ver)
			lastVer = ver
		}
		st := c.Stats()
		if st.Versions > maxV {
			return false
		}
		if lastVer >= 0 {
			// the most recent Put must always be retrievable (eviction
			// drops the oldest-inserted version, never the newest)
			if got, ok := c.Get("id", lastVer); !ok || got != lastVer {
				return false
			}
			// Latest reports a surviving version at least as new as it
			latest, val, ok := c.Latest("id")
			if !ok || latest < lastVer {
				return false
			}
			if got, ok := c.Get("id", latest); !ok || got != val {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestPropCacheGetAfterPut: any put is readable until evicted.
func TestPropCacheGetAfterPut(t *testing.T) {
	f := func(ids []uint8) bool {
		c := NewBroadcastCache(0)
		for i, raw := range ids {
			id := string(rune('a' + raw%4))
			c.Put(id, int64(i), i)
			v, ok := c.Get(id, int64(i))
			if !ok || v != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestGobMessageRoundTrip encodes every message kind through gob, as the
// TCP transport does, and checks the fields survive.
func TestGobMessageRoundTrip(t *testing.T) {
	RegisterGobTypes()
	gob.Register(map[string]int{})
	msgs := []Message{
		{Kind: KindHello, Hello: &Hello{Worker: 3}},
		{Kind: KindRunTask, Task: &Task{ID: 9, Op: "op", Args: map[string]int{"x": 1}, Partition: 2, Seed: 7, Dispatch: 5}},
		{Kind: KindTaskResult, Result: &Result{TaskID: 9, Worker: 3, Op: "op", Dispatch: 5, Payload: map[string]int{"y": 2}, ComputeTime: time.Millisecond, WaitTime: time.Microsecond}},
		{Kind: KindAck, Ack: &Ack{Seq: 4, Err: "boom"}},
		{Kind: KindFetch, Fetch: &FetchReq{Worker: 1, ID: "w", Version: 8}},
		{Kind: KindFetchReply, FetchReply: &FetchReply{ID: "w", Version: 8, Value: map[string]int{"z": 3}}},
		{Kind: KindBroadcastPush, Push: &BroadcastPush{ID: "w", Version: 2, Value: map[string]int{"q": 4}}},
		{Kind: KindShutdown},
	}
	for _, m := range msgs {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(&m); err != nil {
			t.Fatalf("%v: encode: %v", m.Kind, err)
		}
		var got Message
		if err := gob.NewDecoder(&buf).Decode(&got); err != nil {
			t.Fatalf("%v: decode: %v", m.Kind, err)
		}
		if got.Kind != m.Kind {
			t.Fatalf("kind %v → %v", m.Kind, got.Kind)
		}
		switch m.Kind {
		case KindRunTask:
			if got.Task.ID != 9 || got.Task.Op != "op" || got.Task.Args.(map[string]int)["x"] != 1 {
				t.Fatalf("task fields lost: %+v", got.Task)
			}
			if got.Task.Func() != nil {
				t.Fatal("closure crossed the wire")
			}
		case KindTaskResult:
			if got.Result.ComputeTime != time.Millisecond || got.Result.Payload.(map[string]int)["y"] != 2 {
				t.Fatalf("result fields lost: %+v", got.Result)
			}
		}
	}
}

func TestKindString(t *testing.T) {
	for k := KindHello; k <= KindShutdown; k++ {
		if k.String() == "unknown" {
			t.Fatalf("kind %d has no name", k)
		}
	}
	if Kind(99).String() != "unknown" {
		t.Fatal("bogus kind has a name")
	}
}
