package cluster

import (
	"fmt"
	"time"

	"repro/internal/straggler"
)

// Worker is the executor loop that runs on each cluster node. It executes
// one task at a time (the paper runs one executor per worker), injects
// straggler delay after real compute, tracks the wait-time metric, and
// serves the broadcast-cache fetch path.
type Worker struct {
	id          int
	ep          Endpoint
	delay       straggler.Model
	env         *Env
	minTaskTime time.Duration // pad tasks to this duration (see Config)

	tasks        chan *Task
	fetchReplies chan *FetchReply
	quit         chan struct{}
}

// NewWorker wires a worker runtime onto an endpoint. Call Run to start.
func NewWorker(id int, ep Endpoint, delay straggler.Model, seed int64) *Worker {
	if delay == nil {
		delay = straggler.None{}
	}
	w := &Worker{
		id:           id,
		ep:           ep,
		delay:        delay,
		tasks:        make(chan *Task, inprocBuffer),
		fetchReplies: make(chan *FetchReply, 4),
		quit:         make(chan struct{}),
	}
	w.env = NewEnv(id, seed, w.fetchFromServer)
	return w
}

// Env exposes the worker-local environment (tests and local tooling only).
func (w *Worker) Env() *Env { return w.env }

// Run executes the worker loop until shutdown or transport failure. It
// always returns a non-nil reason; ErrClosed and clean shutdown are normal.
func (w *Worker) Run() error {
	if err := w.ep.Send(Message{Kind: KindHello, Hello: &Hello{Worker: w.id}}); err != nil {
		return fmt.Errorf("cluster: worker %d hello: %w", w.id, err)
	}
	go w.recvLoop()
	var lastSubmit time.Time
	for {
		var t *Task
		select {
		case <-w.quit:
			return nil
		case t = <-w.tasks:
		}
		start := time.Now()
		var wait time.Duration
		if !lastSubmit.IsZero() {
			wait = start.Sub(lastSubmit)
		}
		payload, err := w.execute(t)
		compute := time.Since(start)
		if compute < w.minTaskTime {
			time.Sleep(w.minTaskTime - compute)
			compute = w.minTaskTime
		}
		if extra := w.delay.Delay(w.id, compute); extra > 0 {
			time.Sleep(extra)
			compute += extra
		}
		res := &Result{
			TaskID:      t.ID,
			Worker:      w.id,
			Op:          t.Op,
			Dispatch:    t.Dispatch,
			Payload:     payload,
			ComputeTime: compute,
			WaitTime:    wait,
		}
		if err != nil {
			res.Err = err.Error()
			res.Payload = nil
		}
		if err := w.ep.Send(Message{Kind: KindTaskResult, Result: res}); err != nil {
			return fmt.Errorf("cluster: worker %d submit: %w", w.id, err)
		}
		lastSubmit = time.Now()
	}
}

// execute resolves the task body: the in-process func if attached, else the
// registered op.
func (w *Worker) execute(t *Task) (payload any, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("cluster: task %d panicked on worker %d: %v", t.ID, w.id, r)
		}
	}()
	if fn := t.Func(); fn != nil {
		return fn(w.env, t)
	}
	op, err := LookupOp(t.Op)
	if err != nil {
		return nil, err
	}
	return op(w.env, t)
}

// recvLoop demultiplexes inbound messages. Control messages (installs,
// broadcast pushes) are handled here so they take effect even while a task
// is executing.
func (w *Worker) recvLoop() {
	for {
		m, err := w.ep.Recv()
		if err != nil {
			close(w.quit)
			return
		}
		switch m.Kind {
		case KindRunTask:
			select {
			case w.tasks <- m.Task:
			case <-w.quit:
				return
			}
		case KindInstallPartition:
			ack := Ack{Seq: m.Seq}
			if err := w.env.InstallPartition(m.Install.Part); err != nil {
				ack.Err = err.Error()
			}
			if err := w.ep.Send(Message{Kind: KindAck, Ack: &ack}); err != nil {
				close(w.quit)
				return
			}
		case KindBroadcastPush:
			w.env.Cache().Put(m.Push.ID, m.Push.Version, m.Push.Value)
		case KindFetchReply:
			select {
			case w.fetchReplies <- m.FetchReply:
			default:
				// no fetch outstanding: stale reply, drop
			}
		case KindShutdown:
			close(w.quit)
			return
		}
	}
}

// fetchFromServer implements the broadcast miss path: request (id, version)
// and block for the reply. The executor is single-threaded so at most one
// fetch is outstanding per worker.
func (w *Worker) fetchFromServer(id string, version int64) (any, error) {
	req := Message{Kind: KindFetch, Fetch: &FetchReq{Worker: w.id, ID: id, Version: version}}
	if err := w.ep.Send(req); err != nil {
		return nil, err
	}
	for {
		select {
		case <-w.quit:
			return nil, ErrClosed
		case rep := <-w.fetchReplies:
			if rep.ID != id || rep.Version != version {
				continue // stale reply from an abandoned fetch
			}
			if rep.Err != "" {
				return nil, fmt.Errorf("cluster: fetch %s@%d: %s", id, version, rep.Err)
			}
			return rep.Value, nil
		}
	}
}
