package cluster

import (
	"fmt"
	"sort"
	"sync"
)

// OpFunc executes a registered, remote-capable operation on a worker.
type OpFunc func(env *Env, t *Task) (any, error)

var (
	opMu  sync.RWMutex
	opReg = map[string]OpFunc{}
)

// RegisterOp installs a named operation in the global registry. Ops must be
// registered identically in every process that participates in a cluster
// (exactly like Spark shipping the same application jar to every executor).
// Registering the same name twice panics: it is a programming error.
func RegisterOp(name string, fn OpFunc) {
	if name == "" || fn == nil {
		panic("cluster: RegisterOp requires a name and a function")
	}
	opMu.Lock()
	defer opMu.Unlock()
	if _, dup := opReg[name]; dup {
		panic(fmt.Sprintf("cluster: op %q registered twice", name))
	}
	opReg[name] = fn
}

// LookupOp returns the registered op, or an error naming the known ops.
func LookupOp(name string) (OpFunc, error) {
	opMu.RLock()
	defer opMu.RUnlock()
	if fn, ok := opReg[name]; ok {
		return fn, nil
	}
	known := make([]string, 0, len(opReg))
	for k := range opReg {
		known = append(known, k)
	}
	sort.Strings(known)
	return nil, fmt.Errorf("cluster: unknown op %q (registered: %v)", name, known)
}
