package cluster

import (
	"math/rand"
	"net"
	"testing"
	"time"

	"repro/internal/straggler"
)

// dialRaw opens a framed endpoint without the worker runtime, to exercise
// the handshake rejection paths.
func dialRaw(t *testing.T, addr string) Endpoint {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	return NewFramedEndpoint(conn)
}

// TestServeTCPRejectsBadHandshake: connections with a wrong first message,
// out-of-range id, or duplicate id are dropped and their slot stays open
// for a correct worker.
func TestServeTCPRejectsBadHandshake(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	type res struct {
		c   *Cluster
		err error
	}
	ch := make(chan res, 1)
	go func() {
		c, err := ServeTCP(ln, 2)
		ch <- res{c, err}
	}()

	// 1: wrong first message kind
	bad1 := dialRaw(t, addr)
	_ = bad1.Send(Message{Kind: KindShutdown})
	// 2: out-of-range worker id
	bad2 := dialRaw(t, addr)
	_ = bad2.Send(Message{Kind: KindHello, Hello: &Hello{Worker: 9}})
	// 3: legitimate worker 0
	go func() { _ = DialWorkerTCP(addr, 0, straggler.None{}, 1) }()
	time.Sleep(100 * time.Millisecond)
	// 4: duplicate worker 0 (must be dropped)
	bad3 := dialRaw(t, addr)
	_ = bad3.Send(Message{Kind: KindHello, Hello: &Hello{Worker: 0}})
	// 5: legitimate worker 1 completes the pool
	go func() { _ = DialWorkerTCP(addr, 1, straggler.None{}, 2) }()

	select {
	case r := <-ch:
		if r.err != nil {
			t.Fatal(r.err)
		}
		defer func() {
			r.c.Shutdown()
			_ = ln.Close()
		}()
		if got := len(r.c.AliveWorkers()); got != 2 {
			t.Fatalf("alive workers = %d, want 2", got)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("handshake test timed out")
	}
	_ = bad1.Close()
	_ = bad2.Close()
	_ = bad3.Close()
}

func TestServeTCPRejectsZeroWorkers(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	if _, err := ServeTCP(ln, 0); err == nil {
		t.Fatal("zero workers accepted")
	}
}

func TestEnvRandSeeded(t *testing.T) {
	draw := func(seed int64) float64 {
		e := NewEnv(0, seed, nil)
		var out float64
		e.Rand(func(r *rand.Rand) { out = r.Float64() })
		return out
	}
	if draw(7) != draw(7) {
		t.Fatal("same seed, different draw")
	}
	if draw(7) == draw(8) {
		t.Fatal("different seeds, same draw")
	}
}

func TestEnvStore(t *testing.T) {
	e := NewEnv(0, 1, nil)
	made := 0
	v := e.StoreGetOrCreate("k", func() any { made++; return 42 })
	if v != 42 || made != 1 {
		t.Fatalf("create: %v %d", v, made)
	}
	v = e.StoreGetOrCreate("k", func() any { made++; return 99 })
	if v != 42 || made != 1 {
		t.Fatalf("second create ran: %v %d", v, made)
	}
	if got, ok := e.StoreGet("k"); !ok || got != 42 {
		t.Fatalf("get: %v %v", got, ok)
	}
	e.StoreDelete("k")
	if _, ok := e.StoreGet("k"); ok {
		t.Fatal("delete did not remove")
	}
	if _, ok := e.StoreGet("missing"); ok {
		t.Fatal("missing key found")
	}
}
