package cluster

import (
	"math/rand"
	"sync"

	"repro/internal/la"
)

// Scratch is the worker-local typed scratch store: reusable dense buffers
// and a reseedable RNG that task kernels use instead of allocating per task.
// It sits next to Env's untyped KV store but holds only throwaway compute
// state — contents carry no meaning between tasks, so unlike the KV store it
// survives Env.StoreClear and run resets, which is what keeps a reused
// engine's steady state allocation-free across jobs.
//
// Workers execute one task at a time, so scratch buffers are never used by
// two tasks concurrently; the mutex only protects the buffer maps for
// callers that probe an Env from tests or tooling.
type Scratch struct {
	mu     sync.Mutex
	rng    *rand.Rand
	vecs   map[string]la.Vec
	i32s   map[string][]int32
	deltas map[string]*la.DeltaAccum
}

// Vec returns a zeroed scratch vector of length n under key, reusing the
// previous buffer when the length matches. The buffer is only valid until
// the next Vec call with the same key; it must never escape the task (use
// la.GetVec for accumulators that travel with the task result).
func (s *Scratch) Vec(key string, n int) la.Vec {
	s.mu.Lock()
	if s.vecs == nil {
		s.vecs = map[string]la.Vec{}
	}
	v, ok := s.vecs[key]
	if !ok || len(v) != n {
		v = la.NewVec(n)
		s.vecs[key] = v
	}
	s.mu.Unlock()
	v.Zero()
	return v
}

// I32 returns a scratch []int32 of length n under key, reusing the previous
// buffer when the length matches. Unlike Vec the contents are NOT cleared:
// kernels that maintain a lookup table across tasks (e.g. the BCD block
// index) rely on restoring their own sentinel values before returning.
func (s *Scratch) I32(key string, n int) []int32 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.i32s == nil {
		s.i32s = map[string][]int32{}
	}
	v, ok := s.i32s[key]
	if !ok || len(v) != n {
		v = make([]int32, n)
		s.i32s[key] = v
	}
	return v
}

// Delta returns the worker's sparse scatter accumulator of dimension n
// under key, reusing the previous one when the dimension matches. Like Vec
// buffers it must never escape the task; kernels snapshot it into a pooled
// la.DeltaVec (DeltaAccum.Compact) before returning. The caller is
// responsible for Reset — contents carry no meaning between tasks.
func (s *Scratch) Delta(key string, n int) *la.DeltaAccum {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.deltas == nil {
		s.deltas = map[string]*la.DeltaAccum{}
	}
	a, ok := s.deltas[key]
	if !ok || a.Dim() != n {
		a = la.NewDeltaAccum(n)
		s.deltas[key] = a
	}
	return a
}

// Rand returns the worker's reusable task RNG reseeded with seed. Reseeding
// yields exactly the stream of rand.New(rand.NewSource(seed)), so kernels
// that switched from per-task construction keep their reproducibility
// contract: the same task seed always draws the same sample set.
func (s *Scratch) Rand(seed int64) *rand.Rand {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.rng == nil {
		s.rng = rand.New(rand.NewSource(seed))
		return s.rng
	}
	s.rng.Seed(seed)
	return s.rng
}
