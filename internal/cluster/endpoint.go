package cluster

import (
	"errors"
	"sync"
)

// Endpoint is one side of a bidirectional message link between the server
// and a worker. Send must be safe for concurrent use; Recv is called from a
// single receive loop per endpoint.
type Endpoint interface {
	Send(Message) error
	Recv() (Message, error)
	Close() error
}

// ErrClosed is returned by endpoint operations after Close.
var ErrClosed = errors.New("cluster: endpoint closed")

// chanEndpoint is the in-process endpoint: a pair of buffered channels with
// a shared close signal, so closing either side tears down both.
type chanEndpoint struct {
	in     <-chan Message
	out    chan<- Message
	closed chan struct{}
	once   *sync.Once
}

// inprocBuffer sizes the channel buffers. It is generous so that a slow
// results consumer never deadlocks the dispatch path at experiment scale.
const inprocBuffer = 4096

// NewInprocPair creates a connected (server, worker) endpoint pair.
func NewInprocPair() (server, worker Endpoint) {
	a := make(chan Message, inprocBuffer) // server → worker
	b := make(chan Message, inprocBuffer) // worker → server
	closed := make(chan struct{})
	once := &sync.Once{}
	return &chanEndpoint{in: b, out: a, closed: closed, once: once},
		&chanEndpoint{in: a, out: b, closed: closed, once: once}
}

func (e *chanEndpoint) Send(m Message) error {
	select {
	case <-e.closed:
		return ErrClosed
	default:
	}
	select {
	case e.out <- m:
		return nil
	case <-e.closed:
		return ErrClosed
	}
}

func (e *chanEndpoint) Recv() (Message, error) {
	select {
	case m := <-e.in:
		return m, nil
	case <-e.closed:
		// drain anything already buffered before reporting closure
		select {
		case m := <-e.in:
			return m, nil
		default:
			return Message{}, ErrClosed
		}
	}
}

func (e *chanEndpoint) Close() error {
	e.once.Do(func() { close(e.closed) })
	return nil
}
