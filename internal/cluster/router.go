package cluster

import (
	"sync"
	"sync/atomic"
)

// Router is the single consumer of a Cluster's merged result stream. Callers
// register a destination channel per task id before submitting the task;
// results for unregistered ids are counted and dropped (they can only arise
// from abandoned computations). The router lets the synchronous RDD actions
// and the asynchronous ASYNC engine share one cluster without stealing each
// other's results.
type Router struct {
	mu      sync.Mutex
	routes  map[int64]chan<- *Result
	dropped atomic.Int64
	stopped chan struct{}
}

// Router returns the cluster's router, starting its consume loop on first
// use. After calling this, do not read Cluster.Results directly.
func (c *Cluster) Router() *Router {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.router == nil {
		c.router = &Router{routes: map[int64]chan<- *Result{}, stopped: make(chan struct{})}
		go c.router.run(c.results)
	}
	return c.router
}

func (r *Router) run(results <-chan *Result) {
	for {
		select {
		case <-r.stopped:
			return
		case res := <-results:
			r.mu.Lock()
			ch := r.routes[res.TaskID]
			delete(r.routes, res.TaskID)
			r.mu.Unlock()
			if ch == nil {
				r.dropped.Add(1)
				continue
			}
			ch <- res
		}
	}
}

// Route registers the destination for one task id. Each id is delivered at
// most once and the route is consumed on delivery. The destination channel
// must have capacity for the result (the router never blocks the stream on
// an unbuffered channel by contract, not enforcement).
func (r *Router) Route(id int64, ch chan<- *Result) {
	r.mu.Lock()
	r.routes[id] = ch
	r.mu.Unlock()
}

// Unroute abandons a pending task's route (e.g. its worker died). A result
// arriving afterwards is dropped.
func (r *Router) Unroute(id int64) {
	r.mu.Lock()
	delete(r.routes, id)
	r.mu.Unlock()
}

// Dropped reports how many results arrived with no registered route.
func (r *Router) Dropped() int64 { return r.dropped.Load() }

// Stop terminates the router loop (tests only; normally the router lives as
// long as the cluster).
func (r *Router) Stop() {
	select {
	case <-r.stopped:
	default:
		close(r.stopped)
	}
}
