package cluster

import (
	"math/rand"
	"testing"
)

func TestScratchVecReuse(t *testing.T) {
	env := NewEnv(0, 1, nil)
	v := env.Scratch().Vec("g", 16)
	if len(v) != 16 {
		t.Fatalf("len %d", len(v))
	}
	for i := range v {
		v[i] = float64(i + 1)
	}
	w := env.Scratch().Vec("g", 16)
	if &w[0] != &v[0] {
		t.Fatal("same key+size must reuse the buffer")
	}
	for i, x := range w {
		if x != 0 {
			t.Fatalf("scratch vec not zeroed at %d: %v", i, x)
		}
	}
	// size change reallocates; different key is independent
	u := env.Scratch().Vec("g", 8)
	if len(u) != 8 {
		t.Fatalf("len %d", len(u))
	}
	other := env.Scratch().Vec("h", 16)
	if &other[0] == &v[0] {
		t.Fatal("different keys must not share buffers")
	}
}

func TestScratchI32KeepsContents(t *testing.T) {
	env := NewEnv(0, 1, nil)
	a := env.Scratch().I32("lookup", 4)
	a[2] = 7
	b := env.Scratch().I32("lookup", 4)
	if &b[0] != &a[0] || b[2] != 7 {
		t.Fatal("I32 must reuse the buffer without clearing")
	}
}

// TestScratchRandMatchesFresh pins the reproducibility contract: the
// reseeded per-worker RNG draws exactly the stream a freshly constructed
// rand.New(rand.NewSource(seed)) would, for every reseed.
func TestScratchRandMatchesFresh(t *testing.T) {
	env := NewEnv(0, 1, nil)
	for _, seed := range []int64{1, 42, -7, 1 << 40} {
		got := env.Scratch().Rand(seed)
		want := rand.New(rand.NewSource(seed))
		for i := 0; i < 100; i++ {
			if g, w := got.Float64(), want.Float64(); g != w {
				t.Fatalf("seed %d draw %d: %v != %v", seed, i, g, w)
			}
		}
	}
}

func TestScratchAllocFree(t *testing.T) {
	env := NewEnv(0, 1, nil)
	env.Scratch().Vec("g", 64)
	env.Scratch().Rand(1)
	if allocs := testing.AllocsPerRun(100, func() {
		v := env.Scratch().Vec("g", 64)
		v[0] = 1
		_ = env.Scratch().Rand(7).Float64()
	}); allocs != 0 {
		t.Errorf("steady-state scratch access allocates %v per run, want 0", allocs)
	}
}
