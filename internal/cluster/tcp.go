package cluster

import (
	"encoding/gob"
	"fmt"
	"net"
	"sync"

	"repro/internal/straggler"
)

// gobEndpoint carries protocol messages over a stream connection using
// encoding/gob. Sends are serialized by a mutex; receives happen from a
// single loop per endpoint, matching the Endpoint contract.
type gobEndpoint struct {
	conn net.Conn
	enc  *gob.Encoder
	dec  *gob.Decoder
	wmu  sync.Mutex

	closeOnce sync.Once
}

// NewGobEndpoint wraps a connection in the message protocol.
func NewGobEndpoint(conn net.Conn) Endpoint {
	return &gobEndpoint{conn: conn, enc: gob.NewEncoder(conn), dec: gob.NewDecoder(conn)}
}

func (e *gobEndpoint) Send(m Message) error {
	e.wmu.Lock()
	defer e.wmu.Unlock()
	if err := e.enc.Encode(&m); err != nil {
		return fmt.Errorf("cluster: gob send: %w", err)
	}
	return nil
}

func (e *gobEndpoint) Recv() (Message, error) {
	var m Message
	if err := e.dec.Decode(&m); err != nil {
		return Message{}, fmt.Errorf("cluster: gob recv: %w", err)
	}
	return m, nil
}

func (e *gobEndpoint) Close() error {
	var err error
	e.closeOnce.Do(func() { err = e.conn.Close() })
	return err
}

// ListenTCP starts a server listener and accepts exactly numWorkers worker
// connections; each must open with a Hello naming a distinct worker id in
// [0, numWorkers). It returns the assembled Cluster.
func ListenTCP(addr string, numWorkers int) (*Cluster, net.Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, fmt.Errorf("cluster: listen %s: %w", addr, err)
	}
	c, err := ServeTCP(ln, numWorkers)
	if err != nil {
		_ = ln.Close()
		return nil, nil, err
	}
	return c, ln, nil
}

// ServeTCP accepts exactly numWorkers worker connections on an existing
// listener and assembles the Cluster. Connections that fail the handshake
// (bad hello, duplicate or out-of-range id) are dropped and the slot stays
// open for a retry.
func ServeTCP(ln net.Listener, numWorkers int) (*Cluster, error) {
	RegisterGobTypes()
	if numWorkers <= 0 {
		return nil, fmt.Errorf("cluster: non-positive worker count %d", numWorkers)
	}
	c := newCluster()
	seen := map[int]bool{}
	for len(seen) < numWorkers {
		conn, err := ln.Accept()
		if err != nil {
			return nil, fmt.Errorf("cluster: accept: %w", err)
		}
		ep := NewGobEndpoint(conn)
		m, err := ep.Recv()
		if err != nil || m.Kind != KindHello || m.Hello == nil {
			_ = ep.Close()
			continue
		}
		id := m.Hello.Worker
		if id < 0 || id >= numWorkers || seen[id] {
			_ = ep.Close()
			continue
		}
		seen[id] = true
		c.addWorker(id, ep)
	}
	return c, nil
}

// DialWorkerTCP connects a worker process to the server and runs its
// executor loop until shutdown. It blocks for the lifetime of the worker.
func DialWorkerTCP(addr string, id int, delay straggler.Model, seed int64) error {
	RegisterGobTypes()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return fmt.Errorf("cluster: dial %s: %w", addr, err)
	}
	ep := NewGobEndpoint(conn)
	w := NewWorker(id, ep, delay, seed)
	defer ep.Close()
	return w.Run()
}
