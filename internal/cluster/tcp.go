package cluster

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"

	"repro/internal/straggler"
)

// FramedEndpoint carries protocol messages over a stream connection as
// length-prefixed frames (see codec.go). Each frame is either a compact
// binary message or a self-contained gob blob; receivers always accept
// both, and a sender switches to binary once the peer has advertised
// support through the Hello/HelloAck negotiation:
//
//   - outgoing Hello messages are stamped with Codecs = [BinCodecName];
//   - an endpoint that receives such a Hello enables binary sends and
//     answers with a HelloAck (the Hello still surfaces to the caller);
//   - an endpoint that receives a matching HelloAck enables binary sends
//     and consumes the ack internally.
//
// Sends are serialized by a mutex; receives happen from a single loop per
// endpoint, matching the Endpoint contract.
type FramedEndpoint struct {
	conn net.Conn
	br   *bufio.Reader

	wmu sync.Mutex
	bw  *bufio.Writer
	enc BinWriter // reused frame scratch, guarded by wmu
	out []byte    // reused frame buffer, guarded by wmu

	binSend   atomic.Bool // peer can decode binary frames
	closeOnce sync.Once
}

// NewFramedEndpoint wraps a connection in the framed message protocol.
func NewFramedEndpoint(conn net.Conn) *FramedEndpoint {
	return &FramedEndpoint{
		conn: conn,
		br:   bufio.NewReaderSize(conn, 1<<16),
		bw:   bufio.NewWriterSize(conn, 1<<16),
	}
}

// BinarySend reports whether the peer negotiated the binary codec.
func (e *FramedEndpoint) BinarySend() bool { return e.binSend.Load() }

// Send encodes m as one frame and flushes it.
func (e *FramedEndpoint) Send(m Message) error {
	if m.Kind == KindHello && m.Hello != nil && len(m.Hello.Codecs) == 0 {
		h := *m.Hello
		h.Codecs = []string{BinCodecName}
		m.Hello = &h
	}
	e.wmu.Lock()
	defer e.wmu.Unlock()
	out, usedBinary, err := appendFrameBody(&e.enc, e.out[:0], &m, e.binSend.Load())
	if err != nil {
		return fmt.Errorf("cluster: framed send: %w", err)
	}
	e.out = out // keep the grown buffer for reuse
	if _, err := e.bw.Write(out); err != nil {
		return fmt.Errorf("cluster: framed send: %w", err)
	}
	if err := e.bw.Flush(); err != nil {
		return fmt.Errorf("cluster: framed send: %w", err)
	}
	countTx(usedBinary, len(out))
	return nil
}

// Recv reads frames until one carries a caller-visible message, handling
// codec negotiation transparently.
func (e *FramedEndpoint) Recv() (Message, error) {
	for {
		var hdr [5]byte
		if _, err := io.ReadFull(e.br, hdr[:]); err != nil {
			return Message{}, fmt.Errorf("cluster: framed recv: %w", err)
		}
		l := uint32(hdr[0])<<24 | uint32(hdr[1])<<16 | uint32(hdr[2])<<8 | uint32(hdr[3])
		if l < 1 || l > maxFrame {
			return Message{}, fmt.Errorf("cluster: framed recv: bad frame length %d", l)
		}
		body := make([]byte, l-1)
		if _, err := io.ReadFull(e.br, body); err != nil {
			return Message{}, fmt.Errorf("cluster: framed recv: %w", err)
		}
		countRx(hdr[4], int(l)+4)
		m, err := decodeFrameBody(hdr[4], body)
		if err != nil {
			return Message{}, err
		}
		switch {
		case m.Kind == KindHello && m.Hello != nil:
			if offersCodec(m.Hello.Codecs, BinCodecName) {
				e.binSend.Store(true)
				_ = e.Send(Message{Kind: KindHelloAck, HelloAck: &HelloAck{Codec: BinCodecName}})
			}
			return m, nil
		case m.Kind == KindHelloAck:
			if m.HelloAck != nil && m.HelloAck.Codec == BinCodecName {
				e.binSend.Store(true)
			}
			continue // negotiation detail, invisible to the caller
		default:
			return m, nil
		}
	}
}

// Close tears down the connection.
func (e *FramedEndpoint) Close() error {
	var err error
	e.closeOnce.Do(func() { err = e.conn.Close() })
	return err
}

func offersCodec(codecs []string, name string) bool {
	for _, c := range codecs {
		if c == name {
			return true
		}
	}
	return false
}

// ListenTCP starts a server listener and accepts exactly numWorkers worker
// connections; each must open with a Hello naming a distinct worker id in
// [0, numWorkers). It returns the assembled Cluster.
func ListenTCP(addr string, numWorkers int) (*Cluster, net.Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, fmt.Errorf("cluster: listen %s: %w", addr, err)
	}
	c, err := ServeTCP(ln, numWorkers)
	if err != nil {
		_ = ln.Close()
		return nil, nil, err
	}
	return c, ln, nil
}

// ServeTCP accepts exactly numWorkers worker connections on an existing
// listener and assembles the Cluster. Connections that fail the handshake
// (bad hello, duplicate or out-of-range id) are dropped and the slot stays
// open for a retry. Workers that advertise the binary codec in their Hello
// are answered with a HelloAck and served binary frames from then on.
func ServeTCP(ln net.Listener, numWorkers int) (*Cluster, error) {
	RegisterGobTypes()
	if numWorkers <= 0 {
		return nil, fmt.Errorf("cluster: non-positive worker count %d", numWorkers)
	}
	c := newCluster()
	seen := map[int]bool{}
	for len(seen) < numWorkers {
		conn, err := ln.Accept()
		if err != nil {
			return nil, fmt.Errorf("cluster: accept: %w", err)
		}
		ep := NewFramedEndpoint(conn)
		m, err := ep.Recv()
		if err != nil || m.Kind != KindHello || m.Hello == nil {
			_ = ep.Close()
			continue
		}
		id := m.Hello.Worker
		if id < 0 || id >= numWorkers || seen[id] {
			_ = ep.Close()
			continue
		}
		seen[id] = true
		c.addWorker(id, ep)
	}
	return c, nil
}

// DialWorkerTCP connects a worker process to the server and runs its
// executor loop until shutdown. It blocks for the lifetime of the worker.
func DialWorkerTCP(addr string, id int, delay straggler.Model, seed int64) error {
	RegisterGobTypes()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return fmt.Errorf("cluster: dial %s: %w", addr, err)
	}
	ep := NewFramedEndpoint(conn)
	w := NewWorker(id, ep, delay, seed)
	defer ep.Close()
	return w.Run()
}
