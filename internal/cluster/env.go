package cluster

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"

	"repro/internal/dataset"
)

// Env is the worker-local state visible to task functions: the partitions
// the worker owns, the broadcast cache (the ASYNCbroadcaster's worker half),
// a seeded RNG for mini-batch sampling, and a fetch hook for cache misses.
type Env struct {
	WorkerID int

	mu    sync.RWMutex
	parts map[int]*dataset.Partition

	cache *BroadcastCache
	rng   *rand.Rand
	rngMu sync.Mutex

	storeMu sync.Mutex
	store   map[string]any

	scratch Scratch

	// fetch blocks until the server returns the broadcast value (id, version).
	fetch func(id string, version int64) (any, error)
}

// NewEnv builds a worker environment. fetch may be nil for workers that never
// resolve historical broadcast values.
func NewEnv(workerID int, seed int64, fetch func(id string, version int64) (any, error)) *Env {
	return &Env{
		WorkerID: workerID,
		parts:    map[int]*dataset.Partition{},
		cache:    NewBroadcastCache(0),
		rng:      rand.New(rand.NewSource(seed)),
		fetch:    fetch,
	}
}

// InstallPartition stores (or replaces) a partition on the worker.
func (e *Env) InstallPartition(p *dataset.Partition) error {
	if p == nil {
		return fmt.Errorf("cluster: worker %d: nil partition", e.WorkerID)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.parts[p.Index] = p
	return nil
}

// Partition returns the worker's copy of partition i.
func (e *Env) Partition(i int) (*dataset.Partition, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	p, ok := e.parts[i]
	if !ok {
		return nil, fmt.Errorf("cluster: worker %d does not hold partition %d", e.WorkerID, i)
	}
	return p, nil
}

// Partitions returns the indices of partitions held by the worker.
func (e *Env) Partitions() []int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	out := make([]int, 0, len(e.parts))
	for i := range e.parts {
		out = append(out, i)
	}
	return out
}

// DropPartition removes partition i (used when rebalancing after recovery).
func (e *Env) DropPartition(i int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	delete(e.parts, i)
}

// Rand calls f with the worker's seeded RNG under a lock. Task functions use
// it for mini-batch sampling when the task does not carry its own seed.
func (e *Env) Rand(f func(*rand.Rand)) {
	e.rngMu.Lock()
	defer e.rngMu.Unlock()
	f(e.rng)
}

// Cache exposes the worker's broadcast cache.
func (e *Env) Cache() *BroadcastCache { return e.cache }

// Scratch exposes the worker's typed scratch store (reusable compute
// buffers and the per-worker task RNG). See Scratch for the reuse contract.
func (e *Env) Scratch() *Scratch { return &e.scratch }

// StoreGetOrCreate returns the worker-local value under key, creating it
// with mk on first use. The ASYNC layer keeps per-worker history tables
// (sample index → model version) here.
func (e *Env) StoreGetOrCreate(key string, mk func() any) any {
	e.storeMu.Lock()
	defer e.storeMu.Unlock()
	if e.store == nil {
		e.store = map[string]any{}
	}
	v, ok := e.store[key]
	if !ok {
		v = mk()
		e.store[key] = v
	}
	return v
}

// StoreGet returns the worker-local value under key.
func (e *Env) StoreGet(key string) (any, bool) {
	e.storeMu.Lock()
	defer e.storeMu.Unlock()
	v, ok := e.store[key]
	return v, ok
}

// StoreDelete removes a worker-local value.
func (e *Env) StoreDelete(key string) {
	e.storeMu.Lock()
	defer e.storeMu.Unlock()
	delete(e.store, key)
}

// StoreClear drops every worker-local value. The store holds per-run state
// (broadcast history tables, ADMM subproblem state), so a reused engine
// clears it between runs to keep jobs from observing a predecessor's
// state.
func (e *Env) StoreClear() {
	e.storeMu.Lock()
	defer e.storeMu.Unlock()
	e.store = nil
}

// BroadcastValue resolves a broadcast value: cache first, then a blocking
// fetch from the server. This is the worker half of the ASYNCbroadcaster:
// the server re-broadcasts only (id, version); the value itself crosses the
// wire once per worker.
func (e *Env) BroadcastValue(id string, version int64) (any, error) {
	if v, ok := e.cache.Get(id, version); ok {
		return v, nil
	}
	if e.fetch == nil {
		return nil, fmt.Errorf("cluster: worker %d: broadcast %s@%d not cached and no fetch path", e.WorkerID, id, version)
	}
	v, err := e.fetch(id, version)
	if err != nil {
		return nil, err
	}
	e.cache.Put(id, version, v)
	return v, nil
}

// BroadcastCache is the worker-side versioned broadcast store. Values are
// keyed by (id, version); history depth per id is bounded by maxVersions
// (0 = unbounded) with oldest-version eviction, mirroring the paper's note
// that workers keep previously broadcast model parameters in local memory.
type BroadcastCache struct {
	mu          sync.RWMutex
	byID        map[string]map[int64]any
	order       map[string][]int64 // insertion order per id, for eviction
	maxVersions int

	hits    atomic.Int64
	misses  atomic.Int64
	evicted atomic.Int64
}

// NewBroadcastCache builds a cache holding at most maxVersions versions per
// broadcast id (0 = unbounded).
func NewBroadcastCache(maxVersions int) *BroadcastCache {
	return &BroadcastCache{
		byID:        map[string]map[int64]any{},
		order:       map[string][]int64{},
		maxVersions: maxVersions,
	}
}

// Get returns the cached value for (id, version).
func (c *BroadcastCache) Get(id string, version int64) (any, bool) {
	c.mu.RLock()
	v, ok := c.byID[id][version]
	c.mu.RUnlock()
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	return v, ok
}

// Put stores a value for (id, version), evicting the oldest version of the
// same id when the per-id bound is exceeded.
func (c *BroadcastCache) Put(id string, version int64, v any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	m, ok := c.byID[id]
	if !ok {
		m = map[int64]any{}
		c.byID[id] = m
	}
	if _, exists := m[version]; !exists {
		c.order[id] = append(c.order[id], version)
	}
	m[version] = v
	if c.maxVersions > 0 {
		for len(c.order[id]) > c.maxVersions {
			oldest := c.order[id][0]
			c.order[id] = c.order[id][1:]
			delete(m, oldest)
			c.evicted.Add(1)
		}
	}
}

// Latest returns the highest cached version for id.
func (c *BroadcastCache) Latest(id string) (int64, any, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	m := c.byID[id]
	var best int64 = -1
	var bv any
	for ver, v := range m {
		if ver > best {
			best, bv = ver, v
		}
	}
	return best, bv, best >= 0
}

// CacheStats is a snapshot of cache counters, used by the broadcast ablation.
type CacheStats struct {
	Hits, Misses, Evicted int64
	Versions              int
}

// Stats snapshots the counters.
func (c *BroadcastCache) Stats() CacheStats {
	c.mu.RLock()
	n := 0
	for _, m := range c.byID {
		n += len(m)
	}
	c.mu.RUnlock()
	return CacheStats{
		Hits:     c.hits.Load(),
		Misses:   c.misses.Load(),
		Evicted:  c.evicted.Load(),
		Versions: n,
	}
}
