package cluster

import "repro/internal/telemetry"

// Wire instrumentation on the process-global registry, labeled by frame
// format. The per-format children are resolved once here so the per-frame
// path is a cached zero-alloc counter add.
var (
	wireTxFrames  = telemetry.Default().CounterVec("async_wire_tx_frames_total", "Frames sent, by codec format.", "format")
	wireTxBytes   = telemetry.Default().CounterVec("async_wire_tx_bytes_total", "Bytes sent in frames, by codec format.", "format")
	wireRxFrames  = telemetry.Default().CounterVec("async_wire_rx_frames_total", "Frames received, by codec format.", "format")
	wireRxBytes   = telemetry.Default().CounterVec("async_wire_rx_bytes_total", "Bytes received in frames, by codec format.", "format")
	wireTxBin     = wireTxFrames.With("binary")
	wireTxGob     = wireTxFrames.With("gob")
	wireTxBinByte = wireTxBytes.With("binary")
	wireTxGobByte = wireTxBytes.With("gob")
	wireRxBin     = wireRxFrames.With("binary")
	wireRxGob     = wireRxFrames.With("gob")
	wireRxBinByte = wireRxBytes.With("binary")
	wireRxGobByte = wireRxBytes.With("gob")
)

// countTx accounts one sent frame of n bytes.
func countTx(binary bool, n int) {
	if binary {
		wireTxBin.Inc()
		wireTxBinByte.Add(int64(n))
	} else {
		wireTxGob.Inc()
		wireTxGobByte.Add(int64(n))
	}
}

// countRx accounts one received frame of n bytes (header included).
func countRx(format byte, n int) {
	if format == frameBinary {
		wireRxBin.Inc()
		wireRxBinByte.Add(int64(n))
	} else {
		wireRxGob.Inc()
		wireRxGobByte.Add(int64(n))
	}
}
