package cluster

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/la"
	"repro/internal/straggler"
)

func tinyPartition(t *testing.T, idx int) *dataset.Partition {
	t.Helper()
	d, err := dataset.Generate(dataset.SynthConfig{
		Name: "t", Rows: 12, Cols: 4, NNZPerRow: 2, Seed: int64(idx) + 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	parts, err := dataset.Split(d, 2)
	if err != nil {
		t.Fatal(err)
	}
	p := parts[0]
	p.Index = idx
	return p
}

func newTestCluster(t *testing.T, n int, delay straggler.Model) *Cluster {
	t.Helper()
	c, err := NewLocal(Config{NumWorkers: n, Delay: delay, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Shutdown)
	return c
}

func awaitResult(t *testing.T, c *Cluster) *Result {
	t.Helper()
	select {
	case r := <-c.Results():
		return r
	case <-time.After(5 * time.Second):
		t.Fatal("timed out waiting for result")
		return nil
	}
}

func TestInprocEndpointRoundTrip(t *testing.T) {
	s, w := NewInprocPair()
	if err := s.Send(Message{Kind: KindShutdown}); err != nil {
		t.Fatal(err)
	}
	m, err := w.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if m.Kind != KindShutdown {
		t.Fatalf("kind %v", m.Kind)
	}
	if err := w.Send(Message{Kind: KindHello, Hello: &Hello{Worker: 3}}); err != nil {
		t.Fatal(err)
	}
	m, err = s.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if m.Hello.Worker != 3 {
		t.Fatalf("hello worker %d", m.Hello.Worker)
	}
}

func TestInprocEndpointClose(t *testing.T) {
	s, w := NewInprocPair()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Send(Message{Kind: KindHello}); !errors.Is(err, ErrClosed) {
		t.Fatalf("send after close: %v", err)
	}
	if _, err := w.Recv(); !errors.Is(err, ErrClosed) {
		t.Fatalf("recv after close: %v", err)
	}
}

func TestInprocEndpointDrainAfterClose(t *testing.T) {
	s, w := NewInprocPair()
	if err := s.Send(Message{Kind: KindShutdown}); err != nil {
		t.Fatal(err)
	}
	_ = s.Close()
	// already-buffered message is still deliverable
	m, err := w.Recv()
	if err != nil {
		t.Fatalf("buffered message lost: %v", err)
	}
	if m.Kind != KindShutdown {
		t.Fatalf("kind %v", m.Kind)
	}
}

func init() {
	// registered once per process: RegisterOp panics on duplicates, and
	// `go test -count=N` re-runs tests without reinitializing the package
	RegisterOp("test.echo", func(env *Env, task *Task) (any, error) {
		return task.Args, nil
	})
	RegisterOp("test.dupBase", func(*Env, *Task) (any, error) { return nil, nil })
}

func TestRegistryLookup(t *testing.T) {
	fn, err := LookupOp("test.echo")
	if err != nil {
		t.Fatal(err)
	}
	out, err := fn(nil, &Task{Args: 42})
	if err != nil || out != 42 {
		t.Fatalf("echo = %v, %v", out, err)
	}
	if _, err := LookupOp("test.noSuchOp"); err == nil {
		t.Fatal("unknown op accepted")
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate registration")
		}
	}()
	RegisterOp("test.dupBase", func(*Env, *Task) (any, error) { return nil, nil })
}

func TestEnvPartitions(t *testing.T) {
	e := NewEnv(0, 1, nil)
	p := tinyPartition(t, 5)
	if err := e.InstallPartition(p); err != nil {
		t.Fatal(err)
	}
	got, err := e.Partition(5)
	if err != nil {
		t.Fatal(err)
	}
	if got.Index != 5 {
		t.Fatalf("index %d", got.Index)
	}
	if _, err := e.Partition(99); err == nil {
		t.Fatal("missing partition returned")
	}
	if err := e.InstallPartition(nil); err == nil {
		t.Fatal("nil partition accepted")
	}
	if got := e.Partitions(); len(got) != 1 || got[0] != 5 {
		t.Fatalf("Partitions = %v", got)
	}
	e.DropPartition(5)
	if len(e.Partitions()) != 0 {
		t.Fatal("partition not dropped")
	}
}

func TestBroadcastCacheBasics(t *testing.T) {
	c := NewBroadcastCache(0)
	if _, ok := c.Get("w", 1); ok {
		t.Fatal("empty cache hit")
	}
	c.Put("w", 1, "a")
	c.Put("w", 2, "b")
	if v, ok := c.Get("w", 1); !ok || v != "a" {
		t.Fatalf("get = %v %v", v, ok)
	}
	ver, v, ok := c.Latest("w")
	if !ok || ver != 2 || v != "b" {
		t.Fatalf("latest = %d %v %v", ver, v, ok)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Versions != 2 {
		t.Fatalf("stats %+v", st)
	}
}

func TestBroadcastCacheEviction(t *testing.T) {
	c := NewBroadcastCache(2)
	c.Put("w", 1, "a")
	c.Put("w", 2, "b")
	c.Put("w", 3, "c")
	if _, ok := c.Get("w", 1); ok {
		t.Fatal("oldest version not evicted")
	}
	if _, ok := c.Get("w", 2); !ok {
		t.Fatal("version 2 wrongly evicted")
	}
	if _, ok := c.Get("w", 3); !ok {
		t.Fatal("version 3 missing")
	}
	if c.Stats().Evicted != 1 {
		t.Fatalf("evicted = %d", c.Stats().Evicted)
	}
	// re-putting the same version must not grow the order list
	c.Put("w", 3, "c2")
	if v, _ := c.Get("w", 3); v != "c2" {
		t.Fatal("overwrite failed")
	}
}

func TestLocalClusterFnTask(t *testing.T) {
	c := newTestCluster(t, 2, nil)
	task := &Task{ID: c.NextTaskID(), Dispatch: 9}
	task.SetFunc(func(env *Env, tk *Task) (any, error) {
		return env.WorkerID * 10, nil
	})
	if err := c.Submit(1, task); err != nil {
		t.Fatal(err)
	}
	r := awaitResult(t, c)
	if r.Worker != 1 || r.Payload != 10 || r.Dispatch != 9 || r.Failed() {
		t.Fatalf("result %+v", r)
	}
	if r.ComputeTime < 0 {
		t.Fatal("negative compute time")
	}
}

func TestLocalClusterTaskError(t *testing.T) {
	c := newTestCluster(t, 1, nil)
	task := &Task{ID: c.NextTaskID()}
	task.SetFunc(func(*Env, *Task) (any, error) { return nil, fmt.Errorf("boom") })
	if err := c.Submit(0, task); err != nil {
		t.Fatal(err)
	}
	r := awaitResult(t, c)
	if !r.Failed() || r.Err != "boom" {
		t.Fatalf("result %+v", r)
	}
}

func TestLocalClusterTaskPanicRecovered(t *testing.T) {
	c := newTestCluster(t, 1, nil)
	task := &Task{ID: c.NextTaskID()}
	task.SetFunc(func(*Env, *Task) (any, error) { panic("kaboom") })
	if err := c.Submit(0, task); err != nil {
		t.Fatal(err)
	}
	r := awaitResult(t, c)
	if !r.Failed() {
		t.Fatal("panic not converted to failed result")
	}
	// worker must still be usable
	ok := &Task{ID: c.NextTaskID()}
	ok.SetFunc(func(*Env, *Task) (any, error) { return "fine", nil })
	if err := c.Submit(0, ok); err != nil {
		t.Fatal(err)
	}
	if r := awaitResult(t, c); r.Payload != "fine" {
		t.Fatalf("worker dead after panic: %+v", r)
	}
}

func TestLocalClusterUnknownOp(t *testing.T) {
	c := newTestCluster(t, 1, nil)
	if err := c.Submit(0, &Task{ID: c.NextTaskID(), Op: "test.never"}); err != nil {
		t.Fatal(err)
	}
	r := awaitResult(t, c)
	if !r.Failed() {
		t.Fatal("unknown op did not fail")
	}
}

func TestWaitTimeReported(t *testing.T) {
	c := newTestCluster(t, 1, nil)
	run := func() *Result {
		task := &Task{ID: c.NextTaskID()}
		task.SetFunc(func(*Env, *Task) (any, error) { return nil, nil })
		if err := c.Submit(0, task); err != nil {
			t.Fatal(err)
		}
		return awaitResult(t, c)
	}
	r1 := run()
	if r1.WaitTime != 0 {
		t.Fatalf("first task wait %v, want 0", r1.WaitTime)
	}
	time.Sleep(30 * time.Millisecond)
	r2 := run()
	if r2.WaitTime < 20*time.Millisecond {
		t.Fatalf("second task wait %v, want >= ~30ms", r2.WaitTime)
	}
}

func TestStragglerDelayApplied(t *testing.T) {
	// worker 0 runs at half speed (100% delay); worker 1 untouched
	c := newTestCluster(t, 2, straggler.ControlledDelay{Worker: 0, Intensity: 4.0})
	mk := func() *Task {
		task := &Task{ID: c.NextTaskID()}
		task.SetFunc(func(*Env, *Task) (any, error) {
			time.Sleep(20 * time.Millisecond)
			return nil, nil
		})
		return task
	}
	if err := c.Submit(0, mk()); err != nil {
		t.Fatal(err)
	}
	if err := c.Submit(1, mk()); err != nil {
		t.Fatal(err)
	}
	var slow, fast time.Duration
	for i := 0; i < 2; i++ {
		r := awaitResult(t, c)
		if r.Worker == 0 {
			slow = r.ComputeTime
		} else {
			fast = r.ComputeTime
		}
	}
	if slow < 4*fast/2 {
		t.Fatalf("straggler compute %v not ≫ fast compute %v", slow, fast)
	}
}

func TestInstallAndPartitionTask(t *testing.T) {
	c := newTestCluster(t, 2, nil)
	p := tinyPartition(t, 0)
	if err := c.Install(1, p, time.Second); err != nil {
		t.Fatal(err)
	}
	task := &Task{ID: c.NextTaskID(), Partition: 0}
	task.SetFunc(func(env *Env, tk *Task) (any, error) {
		part, err := env.Partition(tk.Partition)
		if err != nil {
			return nil, err
		}
		return part.NumRows(), nil
	})
	if err := c.Submit(1, task); err != nil {
		t.Fatal(err)
	}
	r := awaitResult(t, c)
	if r.Failed() || r.Payload != p.NumRows() {
		t.Fatalf("result %+v", r)
	}
}

func TestInstallUnknownWorker(t *testing.T) {
	c := newTestCluster(t, 1, nil)
	if err := c.Install(5, tinyPartition(t, 0), time.Second); err == nil {
		t.Fatal("unknown worker accepted")
	}
}

func TestBroadcastPushAndValue(t *testing.T) {
	c := newTestCluster(t, 2, nil)
	c.PushAll("w", 3, la.Vec{1, 2})
	// give pushes a moment to land (they are async control messages)
	time.Sleep(20 * time.Millisecond)
	task := &Task{ID: c.NextTaskID()}
	task.SetFunc(func(env *Env, tk *Task) (any, error) {
		return env.BroadcastValue("w", 3)
	})
	if err := c.Submit(0, task); err != nil {
		t.Fatal(err)
	}
	r := awaitResult(t, c)
	if r.Failed() {
		t.Fatalf("task failed: %s", r.Err)
	}
	if v, ok := r.Payload.(la.Vec); !ok || !la.Equal(v, la.Vec{1, 2}, 0) {
		t.Fatalf("payload %v", r.Payload)
	}
}

func TestFetchPath(t *testing.T) {
	c := newTestCluster(t, 1, nil)
	c.SetFetchHandler(func(id string, ver int64) (any, error) {
		if id != "model" || ver != 7 {
			return nil, fmt.Errorf("unexpected fetch %s@%d", id, ver)
		}
		return "v7", nil
	})
	task := &Task{ID: c.NextTaskID()}
	task.SetFunc(func(env *Env, tk *Task) (any, error) {
		// miss → fetch → cached
		v, err := env.BroadcastValue("model", 7)
		if err != nil {
			return nil, err
		}
		if _, ok := env.Cache().Get("model", 7); !ok {
			return nil, fmt.Errorf("fetched value not cached")
		}
		return v, nil
	})
	if err := c.Submit(0, task); err != nil {
		t.Fatal(err)
	}
	r := awaitResult(t, c)
	if r.Failed() || r.Payload != "v7" {
		t.Fatalf("result %+v", r)
	}
}

func TestFetchWithoutHandlerFails(t *testing.T) {
	c := newTestCluster(t, 1, nil)
	task := &Task{ID: c.NextTaskID()}
	task.SetFunc(func(env *Env, tk *Task) (any, error) {
		return env.BroadcastValue("missing", 1)
	})
	if err := c.Submit(0, task); err != nil {
		t.Fatal(err)
	}
	if r := awaitResult(t, c); !r.Failed() {
		t.Fatal("fetch without handler succeeded")
	}
}

func TestKillWorker(t *testing.T) {
	c := newTestCluster(t, 2, nil)
	c.Kill(0)
	if c.Alive(0) {
		t.Fatal("killed worker still alive")
	}
	if !c.Alive(1) {
		t.Fatal("wrong worker killed")
	}
	task := &Task{ID: c.NextTaskID()}
	task.SetFunc(func(*Env, *Task) (any, error) { return nil, nil })
	if err := c.Submit(0, task); !errors.Is(err, ErrWorkerDown) {
		t.Fatalf("submit to dead worker: %v", err)
	}
	if got := c.AliveWorkers(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("AliveWorkers = %v", got)
	}
}

func TestSubmitBadWorker(t *testing.T) {
	c := newTestCluster(t, 1, nil)
	if err := c.Submit(-1, &Task{}); err == nil {
		t.Fatal("negative worker accepted")
	}
	if err := c.Submit(9, &Task{}); err == nil {
		t.Fatal("out-of-range worker accepted")
	}
}

func TestManyConcurrentTasks(t *testing.T) {
	c := newTestCluster(t, 4, nil)
	const n = 200
	for i := 0; i < n; i++ {
		task := &Task{ID: c.NextTaskID(), Seed: int64(i)}
		task.SetFunc(func(env *Env, tk *Task) (any, error) { return tk.Seed * 2, nil })
		if err := c.Submit(i%4, task); err != nil {
			t.Fatal(err)
		}
	}
	seen := map[int64]bool{}
	for i := 0; i < n; i++ {
		r := awaitResult(t, c)
		if r.Failed() {
			t.Fatalf("task failed: %s", r.Err)
		}
		seen[r.Payload.(int64)] = true
	}
	if len(seen) != n {
		t.Fatalf("got %d distinct results, want %d", len(seen), n)
	}
}
