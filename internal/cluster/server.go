package cluster

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dataset"
	"repro/internal/straggler"
)

// ErrWorkerDown is returned when submitting to a dead worker.
var ErrWorkerDown = errors.New("cluster: worker is down")

// FetchHandler serves broadcast values for worker cache misses. It is
// installed by the ASYNCbroadcaster.
type FetchHandler func(id string, version int64) (any, error)

// Config describes a local (in-process) cluster.
type Config struct {
	NumWorkers int
	Delay      straggler.Model // nil = no stragglers
	Seed       int64           // base seed; worker w uses Seed+w

	// MinTaskTime pads every task to at least this duration before the
	// straggler model is applied. The experiments use it to emulate the
	// paper's compute-bound, second-scale tasks at millisecond scale: delay
	// intensities then act on a stable task time, exactly as in §6.3.
	MinTaskTime time.Duration
}

// Cluster is the server-side view of the worker pool: per-worker endpoints,
// a merged result stream, liveness, and the fetch path.
type Cluster struct {
	mu      sync.RWMutex
	workers []*workerHandle
	results chan *Result

	fetchMu sync.RWMutex
	fetch   FetchHandler

	seq        atomic.Int64
	taskID     atomic.Int64
	router     *Router
	fetchCount atomic.Int64

	wg       sync.WaitGroup // receive loops
	workerWg sync.WaitGroup // local worker goroutines
}

type workerHandle struct {
	id    int
	ep    Endpoint
	alive atomic.Bool

	ackMu sync.Mutex
	acks  map[int64]chan Ack
}

// NewLocal builds an in-process cluster: cfg.NumWorkers workers, each a
// goroutine with its own environment, connected via channel endpoints.
func NewLocal(cfg Config) (*Cluster, error) {
	if cfg.NumWorkers <= 0 {
		return nil, fmt.Errorf("cluster: non-positive worker count %d", cfg.NumWorkers)
	}
	c := newCluster()
	for i := 0; i < cfg.NumWorkers; i++ {
		se, we := NewInprocPair()
		w := NewWorker(i, we, cfg.Delay, cfg.Seed+int64(i))
		w.minTaskTime = cfg.MinTaskTime
		c.addWorker(i, se)
		c.workerWg.Add(1)
		go func() {
			defer c.workerWg.Done()
			_ = w.Run() // exits on shutdown/close; errors surface as dead workers
		}()
	}
	return c, nil
}

func newCluster() *Cluster {
	return &Cluster{results: make(chan *Result, inprocBuffer)}
}

// addWorker registers a server-side endpoint for worker id and starts its
// receive loop.
func (c *Cluster) addWorker(id int, ep Endpoint) {
	h := &workerHandle{id: id, ep: ep, acks: map[int64]chan Ack{}}
	h.alive.Store(true)
	c.mu.Lock()
	for len(c.workers) <= id {
		c.workers = append(c.workers, nil)
	}
	c.workers[id] = h
	c.mu.Unlock()
	c.wg.Add(1)
	go c.recvLoop(h)
}

func (c *Cluster) handle(worker int) (*workerHandle, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if worker < 0 || worker >= len(c.workers) || c.workers[worker] == nil {
		return nil, fmt.Errorf("cluster: unknown worker %d", worker)
	}
	return c.workers[worker], nil
}

// recvLoop drains one worker's messages: results to the merged stream,
// fetches to the handler, acks to their waiters.
func (c *Cluster) recvLoop(h *workerHandle) {
	defer c.wg.Done()
	for {
		m, err := h.ep.Recv()
		if err != nil {
			h.alive.Store(false)
			return
		}
		switch m.Kind {
		case KindHello:
			// connection established; id was fixed at registration
		case KindTaskResult:
			c.results <- m.Result
		case KindFetch:
			go c.serveFetch(h, m.Fetch)
		case KindAck:
			h.ackMu.Lock()
			ch := h.acks[m.Ack.Seq]
			delete(h.acks, m.Ack.Seq)
			h.ackMu.Unlock()
			if ch != nil {
				ch <- *m.Ack
			}
		}
	}
}

// FetchCount reports how many broadcast values were served through the
// fetch path — the ASYNCbroadcaster's actual value traffic (each fetch
// ships one value to one worker).
func (c *Cluster) FetchCount() int64 { return c.fetchCount.Load() }

func (c *Cluster) serveFetch(h *workerHandle, req *FetchReq) {
	c.fetchCount.Add(1)
	c.fetchMu.RLock()
	fn := c.fetch
	c.fetchMu.RUnlock()
	rep := FetchReply{ID: req.ID, Version: req.Version}
	if fn == nil {
		rep.Err = "no fetch handler installed"
	} else if v, err := fn(req.ID, req.Version); err != nil {
		rep.Err = err.Error()
	} else {
		rep.Value = v
	}
	_ = h.ep.Send(Message{Kind: KindFetchReply, FetchReply: &rep})
}

// SetFetchHandler installs the broadcast fetch handler.
func (c *Cluster) SetFetchHandler(fn FetchHandler) {
	c.fetchMu.Lock()
	c.fetch = fn
	c.fetchMu.Unlock()
}

// NextTaskID allocates a unique task id.
func (c *Cluster) NextTaskID() int64 { return c.taskID.Add(1) }

// Submit dispatches a task to a worker.
func (c *Cluster) Submit(worker int, t *Task) error {
	h, err := c.handle(worker)
	if err != nil {
		return err
	}
	if !h.alive.Load() {
		return fmt.Errorf("%w: worker %d", ErrWorkerDown, worker)
	}
	if err := h.ep.Send(Message{Kind: KindRunTask, Task: t}); err != nil {
		h.alive.Store(false)
		return fmt.Errorf("%w: worker %d: %v", ErrWorkerDown, worker, err)
	}
	return nil
}

// Results returns the merged result stream from all workers.
func (c *Cluster) Results() <-chan *Result { return c.results }

// Install synchronously ships a partition to a worker, waiting for the ack.
func (c *Cluster) Install(worker int, p *dataset.Partition, timeout time.Duration) error {
	h, err := c.handle(worker)
	if err != nil {
		return err
	}
	if !h.alive.Load() {
		return fmt.Errorf("%w: worker %d", ErrWorkerDown, worker)
	}
	seq := c.seq.Add(1)
	ackCh := make(chan Ack, 1)
	h.ackMu.Lock()
	h.acks[seq] = ackCh
	h.ackMu.Unlock()
	msg := Message{Kind: KindInstallPartition, Seq: seq, Install: &InstallPartition{Part: p}}
	if err := h.ep.Send(msg); err != nil {
		return fmt.Errorf("cluster: install on worker %d: %w", worker, err)
	}
	select {
	case ack := <-ackCh:
		if ack.Err != "" {
			return fmt.Errorf("cluster: install on worker %d: %s", worker, ack.Err)
		}
		return nil
	case <-time.After(timeout):
		h.ackMu.Lock()
		delete(h.acks, seq)
		h.ackMu.Unlock()
		return fmt.Errorf("cluster: install on worker %d timed out after %v", worker, timeout)
	}
}

// Push eagerly installs a broadcast value in one worker's cache.
func (c *Cluster) Push(worker int, id string, version int64, v any) error {
	h, err := c.handle(worker)
	if err != nil {
		return err
	}
	if !h.alive.Load() {
		return fmt.Errorf("%w: worker %d", ErrWorkerDown, worker)
	}
	return h.ep.Send(Message{Kind: KindBroadcastPush, Push: &BroadcastPush{ID: id, Version: version, Value: v}})
}

// PushAll pushes a broadcast value to every live worker.
func (c *Cluster) PushAll(id string, version int64, v any) {
	for _, w := range c.AliveWorkers() {
		_ = c.Push(w, id, version, v)
	}
}

// AddLocalWorker grows an in-process cluster by one worker (elastic
// scale-out, in the spirit of Litz-style elasticity the paper cites). The
// new worker gets the next free id and starts empty: move partitions to it
// with rdd.Context.MovePartition so it can take on work. Returns the id.
func (c *Cluster) AddLocalWorker(delay straggler.Model, seed int64) int {
	c.mu.Lock()
	id := len(c.workers)
	c.mu.Unlock()
	se, we := NewInprocPair()
	w := NewWorker(id, we, delay, seed)
	c.addWorker(id, se)
	c.workerWg.Add(1)
	go func() {
		defer c.workerWg.Done()
		_ = w.Run()
	}()
	return id
}

// Kill abruptly severs a worker (crash injection for fault-tolerance tests).
func (c *Cluster) Kill(worker int) {
	h, err := c.handle(worker)
	if err != nil {
		return
	}
	h.alive.Store(false)
	_ = h.ep.Close()
}

// Alive reports whether a worker is reachable.
func (c *Cluster) Alive(worker int) bool {
	h, err := c.handle(worker)
	return err == nil && h.alive.Load()
}

// NumWorkers returns the number of registered workers (alive or not).
func (c *Cluster) NumWorkers() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.workers)
}

// AliveWorkers lists the ids of live workers in ascending order.
func (c *Cluster) AliveWorkers() []int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var out []int
	for _, h := range c.workers {
		if h != nil && h.alive.Load() {
			out = append(out, h.id)
		}
	}
	return out
}

// Shutdown stops all workers and receive loops. Results buffered but not yet
// consumed remain readable until the channel is drained; the channel itself
// is not closed (consumers use engine-level completion signals instead).
func (c *Cluster) Shutdown() {
	c.mu.RLock()
	handles := append([]*workerHandle(nil), c.workers...)
	c.mu.RUnlock()
	for _, h := range handles {
		if h == nil {
			continue
		}
		_ = h.ep.Send(Message{Kind: KindShutdown})
	}
	// give workers a moment to exit their loops, then sever transports
	done := make(chan struct{})
	go func() {
		c.workerWg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
	}
	for _, h := range handles {
		if h == nil {
			continue
		}
		h.alive.Store(false)
		_ = h.ep.Close()
	}
	c.wg.Wait()
}
