package cluster

import (
	"encoding/gob"
	"net"
	"testing"
	"time"

	"repro/internal/la"
	"repro/internal/straggler"
)

// tcpArgs / tcpReply are the payload types shipped over the wire in these
// tests; they are gob-registered like any real op payload would be.
type tcpArgs struct {
	Scale float64
}

type tcpReply struct {
	Rows int
	Sum  float64
}

func init() {
	gob.Register(tcpArgs{})
	gob.Register(tcpReply{})
	gob.Register(la.Vec{})
	RegisterOp("test.tcpSum", func(env *Env, t *Task) (any, error) {
		p, err := env.Partition(t.Partition)
		if err != nil {
			return nil, err
		}
		a := t.Args.(tcpArgs)
		var sum float64
		for _, y := range p.Y {
			sum += y * a.Scale
		}
		return tcpReply{Rows: p.NumRows(), Sum: sum}, nil
	})
	RegisterOp("test.tcpBroadcastNorm", func(env *Env, t *Task) (any, error) {
		v, err := env.BroadcastValue("model", t.Args.(int64))
		if err != nil {
			return nil, err
		}
		return la.Norm2(v.(la.Vec)), nil
	})
}

func startTCPCluster(t *testing.T, n int) *Cluster {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	type res struct {
		c   *Cluster
		err error
	}
	ch := make(chan res, 1)
	go func() {
		c, err := ServeTCP(ln, n)
		ch <- res{c, err}
	}()
	for i := 0; i < n; i++ {
		go func(id int) {
			_ = DialWorkerTCP(addr, id, straggler.None{}, int64(id))
		}(i)
	}
	select {
	case r := <-ch:
		if r.err != nil {
			t.Fatal(r.err)
		}
		t.Cleanup(func() {
			r.c.Shutdown()
			_ = ln.Close()
		})
		return r.c
	case <-time.After(10 * time.Second):
		t.Fatal("TCP cluster assembly timed out")
		return nil
	}
}

func TestTCPClusterOpTask(t *testing.T) {
	c := startTCPCluster(t, 2)
	for w := 0; w < 2; w++ {
		p := tinyPartition(t, w)
		if err := c.Install(w, p, 5*time.Second); err != nil {
			t.Fatal(err)
		}
	}
	for w := 0; w < 2; w++ {
		task := &Task{ID: c.NextTaskID(), Op: "test.tcpSum", Args: tcpArgs{Scale: 2}, Partition: w}
		if err := c.Submit(w, task); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 2; i++ {
		r := awaitResult(t, c)
		if r.Failed() {
			t.Fatalf("tcp task failed: %s", r.Err)
		}
		rep, ok := r.Payload.(tcpReply)
		if !ok {
			t.Fatalf("payload type %T", r.Payload)
		}
		if rep.Rows == 0 {
			t.Fatal("empty partition over TCP")
		}
	}
}

func TestTCPClusterFetchPath(t *testing.T) {
	c := startTCPCluster(t, 1)
	model := la.Vec{3, 4}
	c.SetFetchHandler(func(id string, ver int64) (any, error) {
		return model, nil
	})
	task := &Task{ID: c.NextTaskID(), Op: "test.tcpBroadcastNorm", Args: int64(5)}
	if err := c.Submit(0, task); err != nil {
		t.Fatal(err)
	}
	r := awaitResult(t, c)
	if r.Failed() {
		t.Fatalf("fetch over TCP failed: %s", r.Err)
	}
	if got := r.Payload.(float64); got != 5 {
		t.Fatalf("norm = %v, want 5", got)
	}
}

func TestTCPClusterPush(t *testing.T) {
	c := startTCPCluster(t, 1)
	c.PushAll("model", 9, la.Vec{6, 8})
	time.Sleep(50 * time.Millisecond) // let the push land
	task := &Task{ID: c.NextTaskID(), Op: "test.tcpBroadcastNorm", Args: int64(9)}
	if err := c.Submit(0, task); err != nil {
		t.Fatal(err)
	}
	r := awaitResult(t, c)
	if r.Failed() {
		t.Fatalf("pushed broadcast not visible: %s", r.Err)
	}
	if got := r.Payload.(float64); got != 10 {
		t.Fatalf("norm = %v, want 10", got)
	}
}
