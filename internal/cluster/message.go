// Package cluster implements the distributed runtime substrate beneath the
// ASYNC engine: worker processes with their own executor loop and local
// state, a server that dispatches tasks and collects results, and a
// pluggable Transport with two implementations — in-process channels (the
// default, simulating the paper's XSEDE cluster with real concurrency and
// real wall-clock timing) and TCP + gob (demonstrating the same protocol
// across real sockets).
//
// The protocol is message-passing in both directions:
//
//	server → worker: RunTask, InstallPartition, BroadcastPush, FetchReply, Shutdown
//	worker → server: Hello, TaskResult, Fetch, Ack
//
// Stragglers are injected at the worker executor: after a task's real
// compute finishes, the worker sleeps for the model's extra delay, exactly
// like the paper's sleep-based controlled delay (§6.3).
package cluster

import (
	"encoding/gob"
	"time"

	"repro/internal/dataset"
	"repro/internal/la"
)

// Kind discriminates protocol messages.
type Kind int

// Protocol message kinds.
const (
	KindHello Kind = iota + 1
	KindRunTask
	KindTaskResult
	KindInstallPartition
	KindAck
	KindFetch
	KindFetchReply
	KindBroadcastPush
	KindShutdown
	KindHelloAck
)

func (k Kind) String() string {
	switch k {
	case KindHello:
		return "hello"
	case KindRunTask:
		return "run-task"
	case KindTaskResult:
		return "task-result"
	case KindInstallPartition:
		return "install-partition"
	case KindAck:
		return "ack"
	case KindFetch:
		return "fetch"
	case KindFetchReply:
		return "fetch-reply"
	case KindBroadcastPush:
		return "broadcast-push"
	case KindShutdown:
		return "shutdown"
	case KindHelloAck:
		return "hello-ack"
	default:
		return "unknown"
	}
}

// TaskFunc is the in-process fast path for task execution. It cannot cross a
// real transport; remote-capable tasks use a registered Op instead.
type TaskFunc func(env *Env, t *Task) (any, error)

// Task is one unit of work dispatched to a worker.
type Task struct {
	ID        int64
	Op        string // registered op name; "" when fn is set (in-proc only)
	Args      any    // op arguments; concrete type must be gob-registered for TCP
	Partition int    // partition the task targets; -1 = worker-wide
	Seed      int64  // per-task sampling seed, for reproducibility
	Dispatch  int64  // server logical clock (update count) at dispatch — staleness bookkeeping

	fn TaskFunc // unexported: never serialized
}

// SetFunc attaches an in-process task function. Tasks with a func bypass the
// op registry; they cannot be sent over a real transport.
func (t *Task) SetFunc(f TaskFunc) { t.fn = f }

// Func returns the attached in-process task function, if any.
func (t *Task) Func() TaskFunc { return t.fn }

// Result is a completed task's payload plus the worker-side measurements the
// ASYNC bookkeeping structures need (per-task worker ID, timings, batch).
type Result struct {
	TaskID   int64
	Worker   int
	Op       string
	Dispatch int64 // echoed from the task, for staleness computation
	Payload  any
	Err      string // non-empty on task failure

	ComputeTime time.Duration // real compute plus injected straggler delay
	WaitTime    time.Duration // idle time between previous submit and this task's start
}

// Failed reports whether the task errored on the worker.
func (r *Result) Failed() bool { return r.Err != "" }

// FetchReq asks the server for a broadcast value the worker does not have
// cached (the ASYNCbroadcaster miss path).
type FetchReq struct {
	Worker  int
	ID      string
	Version int64
}

// FetchReply carries the requested broadcast value back to the worker.
type FetchReply struct {
	ID      string
	Version int64
	Value   any
	Err     string
}

// BroadcastPush eagerly installs a broadcast value in the worker cache.
type BroadcastPush struct {
	ID      string
	Version int64
	Value   any
}

// InstallPartition ships a data partition to a worker at setup (or during
// recovery after a crash).
type InstallPartition struct {
	Part *dataset.Partition
}

// Hello is the worker's first message on a transport connection. Codecs
// advertises the wire codecs the sender can decode (e.g. BinCodecName); the
// framed TCP endpoint fills it in and the receiving side answers with a
// HelloAck naming the codec it picked, after which both directions use it.
type Hello struct {
	Worker int
	Codecs []string
}

// HelloAck completes the codec negotiation: it names the codec the receiver
// of a Hello selected from the offered list ("" = stay on gob). It is
// consumed inside the framed endpoint and never surfaces to the worker or
// server loops.
type HelloAck struct {
	Codec string
}

// Ack acknowledges an install (correlated by sequence number).
type Ack struct {
	Seq int64
	Err string
}

// Message is the single envelope exchanged between server and workers.
// Exactly one pointer field (matching Kind) is set.
type Message struct {
	Kind       Kind
	Seq        int64 // request/ack correlation for control messages
	Hello      *Hello
	HelloAck   *HelloAck
	Task       *Task
	Result     *Result
	Install    *InstallPartition
	Ack        *Ack
	Fetch      *FetchReq
	FetchReply *FetchReply
	Push       *BroadcastPush
}

// RegisterGobTypes registers every protocol type plus the payload types the
// optimization layer ships, so the TCP transport can encode them. Callers
// with custom Args/Payload types must gob.Register them too.
func RegisterGobTypes() {
	gob.Register(Hello{})
	gob.Register(HelloAck{})
	gob.Register(Task{})
	gob.Register(Result{})
	gob.Register(InstallPartition{})
	gob.Register(Ack{})
	gob.Register(FetchReq{})
	gob.Register(FetchReply{})
	gob.Register(BroadcastPush{})
	gob.Register(dataset.Partition{})
	gob.Register(la.Vec{})
	gob.Register(&la.DeltaVec{})
}
