// Package metrics holds the measurement types the experiments report:
// convergence traces (suboptimality versus wall-clock time, the y/x axes of
// the paper's Figures 2, 3, 5, 7, 8), per-worker average wait time (Figures
// 4 and 6, Table 3), and speedup computation (time-to-target-error ratios).
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"time"
)

// TracePoint is one sample of a convergence curve.
type TracePoint struct {
	Time    time.Duration // wall-clock since the run started
	Updates int64         // model updates applied so far
	Error   float64       // objective suboptimality F(w) − F(w*)
}

// Trace is the full record of one optimization run.
type Trace struct {
	Algorithm string
	Dataset   string
	Workers   int
	Straggler string
	Points    []TracePoint
	// AvgWait is each worker's mean wait time between submitting a result
	// and receiving the next task.
	AvgWait map[int]time.Duration
	// Total wall-clock duration of the run.
	Total time.Duration
}

// FinalError returns the last recorded suboptimality.
func (t *Trace) FinalError() float64 {
	if len(t.Points) == 0 {
		return math.NaN()
	}
	return t.Points[len(t.Points)-1].Error
}

// TimeToError returns the first time at which the trace reaches target or
// below, and whether it ever did.
func (t *Trace) TimeToError(target float64) (time.Duration, bool) {
	for _, p := range t.Points {
		if p.Error <= target {
			return p.Time, true
		}
	}
	return 0, false
}

// MeanWait averages the per-worker wait times (the bar heights in Fig. 4/6;
// the cells of Table 3).
func (t *Trace) MeanWait() time.Duration {
	if len(t.AvgWait) == 0 {
		return 0
	}
	var sum time.Duration
	for _, w := range t.AvgWait {
		sum += w
	}
	return sum / time.Duration(len(t.AvgWait))
}

// Speedup compares two runs: how much faster "fast" reaches the target
// error than "slow". Returns 0 when either run never reaches the target.
func Speedup(slow, fast *Trace, target float64) float64 {
	ts, ok1 := slow.TimeToError(target)
	tf, ok2 := fast.TimeToError(target)
	if !ok1 || !ok2 || tf == 0 {
		return 0
	}
	return float64(ts) / float64(tf)
}

// SharedTarget picks an error target both traces reach: the weaker run's
// final error plus margin × (initial − weaker final), i.e. the point where
// the weaker run has made (1−margin) of its total progress. Expressing the
// slack as a fraction of achieved progress keeps the target meaningful both
// near convergence and in the early, barely-descended regime.
func SharedTarget(a, b *Trace, margin float64) float64 {
	fa, fb := a.FinalError(), b.FinalError()
	if math.IsNaN(fa) || math.IsNaN(fb) || len(a.Points) == 0 || len(b.Points) == 0 {
		return math.Inf(1)
	}
	initial := math.Max(a.Points[0].Error, b.Points[0].Error)
	worst := math.Max(fa, fb)
	if worst >= initial {
		return initial // no progress at all: any point qualifies
	}
	return worst + margin*(initial-worst)
}

// WaitSummary condenses the per-worker wait table (the data behind Figures
// 4 and 6) into the scalars a serving layer reports per job.
type WaitSummary struct {
	MeanMS  float64 `json:"mean_ms"`
	MaxMS   float64 `json:"max_ms"`
	Workers int     `json:"workers"`
}

// Waits summarizes the trace's per-worker average wait times.
func (t *Trace) Waits() WaitSummary {
	return SummarizeWaits(t.AvgWait)
}

// SummarizeWaits condenses a per-worker wait map (coordinator WaitTimes or
// trace AvgWait) into the scalar summary the serving layer reports.
func SummarizeWaits(waits map[int]time.Duration) WaitSummary {
	s := WaitSummary{Workers: len(waits)}
	if len(waits) == 0 {
		return s
	}
	var sum, max time.Duration
	for _, w := range waits {
		sum += w
		if w > max {
			max = w
		}
	}
	mean := sum / time.Duration(len(waits))
	s.MeanMS = float64(mean.Microseconds()) / 1000.0
	s.MaxMS = float64(max.Microseconds()) / 1000.0
	return s
}

// StalenessSummary condenses a staleness histogram (staleness value →
// occurrence count, the coordinator's per-run record) into the scalars a
// serving layer reports per job.
type StalenessSummary struct {
	Count int64   `json:"count"`
	Mean  float64 `json:"mean"`
	P50   int64   `json:"p50"`
	P95   int64   `json:"p95"`
	P99   int64   `json:"p99"`
	Max   int64   `json:"max"`
}

// SummarizeStaleness summarizes a staleness histogram. Percentiles are exact
// (the histogram is already the full distribution, not a sketch).
func SummarizeStaleness(hist map[int64]int64) StalenessSummary {
	var s StalenessSummary
	if len(hist) == 0 {
		return s
	}
	vals := make([]int64, 0, len(hist))
	var weighted float64
	for v, n := range hist {
		if n <= 0 {
			continue
		}
		vals = append(vals, v)
		s.Count += n
		weighted += float64(v) * float64(n)
		if v > s.Max {
			s.Max = v
		}
	}
	if s.Count == 0 {
		return StalenessSummary{}
	}
	s.Mean = weighted / float64(s.Count)
	sort.Slice(vals, func(a, b int) bool { return vals[a] < vals[b] })
	pct := func(p float64) int64 {
		rank := int64(math.Ceil(p * float64(s.Count)))
		var cum int64
		for _, v := range vals {
			cum += hist[v]
			if cum >= rank {
				return v
			}
		}
		return vals[len(vals)-1]
	}
	s.P50, s.P95, s.P99 = pct(0.50), pct(0.95), pct(0.99)
	return s
}

// Format renders the trace as aligned rows "time_ms  updates  error",
// the series behind the paper's convergence figures.
func (t *Trace) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "# %s on %s (%d workers, straggler=%s)\n", t.Algorithm, t.Dataset, t.Workers, t.Straggler)
	fmt.Fprintf(&sb, "%12s %10s %14s\n", "time_ms", "updates", "error")
	for _, p := range t.Points {
		fmt.Fprintf(&sb, "%12.2f %10d %14.6e\n", float64(p.Time.Microseconds())/1000.0, p.Updates, p.Error)
	}
	return sb.String()
}

// FormatWait renders the per-worker wait table sorted by worker id.
func (t *Trace) FormatWait() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "# avg wait per task, %s on %s\n", t.Algorithm, t.Dataset)
	ids := make([]int, 0, len(t.AvgWait))
	for w := range t.AvgWait {
		ids = append(ids, w)
	}
	sort.Ints(ids)
	for _, w := range ids {
		fmt.Fprintf(&sb, "worker %3d  %10.3f ms\n", w, float64(t.AvgWait[w].Microseconds())/1000.0)
	}
	fmt.Fprintf(&sb, "mean        %10.3f ms\n", float64(t.MeanWait().Microseconds())/1000.0)
	return sb.String()
}

// WriteCSV emits the trace as CSV (time_ms, updates, error) with a header
// row, for external plotting.
func (t *Trace) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "time_ms,updates,error\n"); err != nil {
		return err
	}
	for _, p := range t.Points {
		if _, err := fmt.Fprintf(w, "%.3f,%d,%.9e\n",
			float64(p.Time.Microseconds())/1000.0, p.Updates, p.Error); err != nil {
			return err
		}
	}
	return nil
}

// Row is one line of a reproduced table (e.g. Table 3).
type Row struct {
	Label  string
	Values map[string]string
}

// Table renders rows with the given column order.
type Table struct {
	Title   string
	Columns []string
	Rows    []Row
}

// Format renders the table with aligned columns.
func (tb *Table) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "# %s\n", tb.Title)
	fmt.Fprintf(&sb, "%-16s", "")
	for _, c := range tb.Columns {
		fmt.Fprintf(&sb, "%16s", c)
	}
	sb.WriteByte('\n')
	for _, r := range tb.Rows {
		fmt.Fprintf(&sb, "%-16s", r.Label)
		for _, c := range tb.Columns {
			fmt.Fprintf(&sb, "%16s", r.Values[c])
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
