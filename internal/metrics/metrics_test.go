package metrics

import (
	"math"
	"strings"
	"testing"
	"time"
)

func mkTrace(errs []float64) *Trace {
	t := &Trace{Algorithm: "a", Dataset: "d", Workers: 2, Straggler: "none"}
	for i, e := range errs {
		t.Points = append(t.Points, TracePoint{
			Time:    time.Duration(i+1) * time.Millisecond,
			Updates: int64(i + 1),
			Error:   e,
		})
	}
	return t
}

func TestFinalError(t *testing.T) {
	tr := mkTrace([]float64{3, 2, 1})
	if tr.FinalError() != 1 {
		t.Fatalf("final = %v", tr.FinalError())
	}
	empty := &Trace{}
	if !math.IsNaN(empty.FinalError()) {
		t.Fatal("empty trace should be NaN")
	}
}

func TestTimeToError(t *testing.T) {
	tr := mkTrace([]float64{3, 2, 1})
	d, ok := tr.TimeToError(2)
	if !ok || d != 2*time.Millisecond {
		t.Fatalf("time to 2 = %v %v", d, ok)
	}
	if _, ok := tr.TimeToError(0.5); ok {
		t.Fatal("unreachable target reported reached")
	}
}

func TestSpeedup(t *testing.T) {
	slow := mkTrace([]float64{4, 3, 2, 1})
	fast := mkTrace([]float64{1, 1, 1, 1})
	// fast reaches ≤1 at 1ms; slow at 4ms → 4×
	if s := Speedup(slow, fast, 1); math.Abs(s-4) > 1e-12 {
		t.Fatalf("speedup = %v, want 4", s)
	}
	if s := Speedup(slow, fast, 0.1); s != 0 {
		t.Fatalf("unreachable target speedup = %v, want 0", s)
	}
}

func TestSharedTarget(t *testing.T) {
	a := mkTrace([]float64{3, 1})
	b := mkTrace([]float64{3, 2})
	// worst final = 2, initial = 3 → target = 2 + 0.1·(3−2) = 2.1
	target := SharedTarget(a, b, 0.1)
	if math.Abs(target-2.1) > 1e-12 {
		t.Fatalf("target = %v, want 2.1", target)
	}
	if _, ok := a.TimeToError(target); !ok {
		t.Fatal("trace a cannot reach shared target")
	}
	if _, ok := b.TimeToError(target); !ok {
		t.Fatal("trace b cannot reach shared target")
	}
}

func TestSharedTargetNoProgress(t *testing.T) {
	a := mkTrace([]float64{3, 3})
	b := mkTrace([]float64{3, 3})
	if target := SharedTarget(a, b, 0.1); target != 3 {
		t.Fatalf("no-progress target = %v, want 3", target)
	}
	if target := SharedTarget(&Trace{}, a, 0.1); !math.IsInf(target, 1) {
		t.Fatalf("empty-trace target = %v, want +Inf", target)
	}
}

func TestMeanWait(t *testing.T) {
	tr := mkTrace(nil)
	tr.AvgWait = map[int]time.Duration{0: 2 * time.Millisecond, 1: 4 * time.Millisecond}
	if got := tr.MeanWait(); got != 3*time.Millisecond {
		t.Fatalf("mean wait = %v", got)
	}
	if (&Trace{}).MeanWait() != 0 {
		t.Fatal("empty mean wait should be 0")
	}
}

func TestFormatContainsSeries(t *testing.T) {
	tr := mkTrace([]float64{2, 1})
	out := tr.Format()
	if !strings.Contains(out, "time_ms") || !strings.Contains(out, "error") {
		t.Fatalf("format missing header: %s", out)
	}
	if !strings.Contains(out, "1.00") {
		t.Fatalf("format missing time: %s", out)
	}
}

func TestFormatWait(t *testing.T) {
	tr := mkTrace(nil)
	tr.AvgWait = map[int]time.Duration{1: time.Millisecond, 0: 2 * time.Millisecond}
	out := tr.FormatWait()
	if !strings.Contains(out, "worker   0") || !strings.Contains(out, "mean") {
		t.Fatalf("wait format: %s", out)
	}
	// worker 0 must come before worker 1 (sorted)
	if strings.Index(out, "worker   0") > strings.Index(out, "worker   1") {
		t.Fatal("workers not sorted")
	}
}

func TestTableFormat(t *testing.T) {
	tb := &Table{
		Title:   "Table 3",
		Columns: []string{"SGD", "ASGD"},
		Rows: []Row{
			{Label: "mnist8m", Values: map[string]string{"SGD": "6.44", "ASGD": "3.57"}},
		},
	}
	out := tb.Format()
	if !strings.Contains(out, "Table 3") || !strings.Contains(out, "mnist8m") || !strings.Contains(out, "3.57") {
		t.Fatalf("table format: %s", out)
	}
}
