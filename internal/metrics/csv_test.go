package metrics

import (
	"strings"
	"testing"
	"time"
)

func TestWriteCSV(t *testing.T) {
	tr := &Trace{
		Points: []TracePoint{
			{Time: 1500 * time.Microsecond, Updates: 3, Error: 0.25},
			{Time: 3 * time.Millisecond, Updates: 6, Error: 0.125},
		},
	}
	var sb strings.Builder
	if err := tr.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv lines = %d: %q", len(lines), sb.String())
	}
	if lines[0] != "time_ms,updates,error" {
		t.Fatalf("header %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "1.500,3,") {
		t.Fatalf("row 1 = %q", lines[1])
	}
	if !strings.HasPrefix(lines[2], "3.000,6,") {
		t.Fatalf("row 2 = %q", lines[2])
	}
}

type failWriter struct{ n int }

func (f *failWriter) Write(p []byte) (int, error) {
	f.n++
	if f.n > 1 {
		return 0, errFail
	}
	return len(p), nil
}

var errFail = errString("write failed")

type errString string

func (e errString) Error() string { return string(e) }

func TestWriteCSVPropagatesErrors(t *testing.T) {
	tr := &Trace{Points: []TracePoint{{Time: time.Millisecond, Updates: 1, Error: 1}}}
	if err := tr.WriteCSV(&failWriter{}); err == nil {
		t.Fatal("write error swallowed")
	}
}
