package rdd

import (
	"fmt"
	"math/rand"

	"repro/internal/cluster"
	"repro/internal/la"
)

// Point is one labelled training example, the element type of the base RDD.
// GlobalIndex is the row's index in the full dataset — SAGA-style history
// tables key on it.
type Point struct {
	GlobalIndex int
	X           la.SparseVec
	Y           float64
}

// ComputeFunc materializes the contents of one partition of an RDD on a
// worker. It is the lineage: derived RDDs wrap their parent's compute, so a
// recovered partition is rebuilt by re-running the whole chain from the
// base partition. The seed makes randomized transformations (Sample)
// reproducible per task.
type ComputeFunc[T any] func(env *cluster.Env, part int, seed int64) ([]T, error)

// RDD is a lazily evaluated, partitioned dataset in the style of Spark.
// Transformations build new RDDs; actions trigger bulk-synchronous
// execution via the driver Context.
type RDD[T any] struct {
	ctx     *Context
	nParts  int
	compute ComputeFunc[T]
}

// NewRDD builds an RDD from an explicit compute function (advanced use;
// most callers start from Context.Distribute).
func NewRDD[T any](ctx *Context, nParts int, compute ComputeFunc[T]) *RDD[T] {
	return &RDD[T]{ctx: ctx, nParts: nParts, compute: compute}
}

// basePointRDD reads installed dataset partitions into Points.
func basePointRDD(ctx *Context, nParts int) *RDD[Point] {
	return NewRDD(ctx, nParts, func(env *cluster.Env, part int, seed int64) ([]Point, error) {
		p, err := env.Partition(part)
		if err != nil {
			return nil, err
		}
		pts := make([]Point, p.NumRows())
		for i := range pts {
			pts[i] = Point{GlobalIndex: p.GlobalRow(i), X: p.X.Row(i), Y: p.Y[i]}
		}
		return pts, nil
	})
}

// Context returns the driver context the RDD is bound to.
func (r *RDD[T]) Context() *Context { return r.ctx }

// NumPartitions returns the RDD's partition count.
func (r *RDD[T]) NumPartitions() int { return r.nParts }

// Compute exposes the lineage function (used by the ASYNC engine to embed
// RDD computation inside asynchronous tasks).
func (r *RDD[T]) Compute() ComputeFunc[T] { return r.compute }

// Map is the classic element-wise transformation. (Top-level function
// because Go methods cannot introduce type parameters.)
func Map[T, U any](r *RDD[T], f func(T) U) *RDD[U] {
	parent := r.compute
	return NewRDD(r.ctx, r.nParts, func(env *cluster.Env, part int, seed int64) ([]U, error) {
		in, err := parent(env, part, seed)
		if err != nil {
			return nil, err
		}
		out := make([]U, len(in))
		for i, v := range in {
			out[i] = f(v)
		}
		return out, nil
	})
}

// Filter keeps the elements satisfying pred.
func (r *RDD[T]) Filter(pred func(T) bool) *RDD[T] {
	parent := r.compute
	return NewRDD(r.ctx, r.nParts, func(env *cluster.Env, part int, seed int64) ([]T, error) {
		in, err := parent(env, part, seed)
		if err != nil {
			return nil, err
		}
		out := in[:0:0]
		for _, v := range in {
			if pred(v) {
				out = append(out, v)
			}
		}
		return out, nil
	})
}

// Sample takes a random fraction of each partition without replacement,
// Spark's sample(false, frac). The per-task seed (mixed with the partition
// index) drives the choice, so a given task is reproducible.
func (r *RDD[T]) Sample(frac float64) *RDD[T] {
	parent := r.compute
	return NewRDD(r.ctx, r.nParts, func(env *cluster.Env, part int, seed int64) ([]T, error) {
		if frac <= 0 || frac > 1 {
			return nil, fmt.Errorf("rdd: sample fraction %v outside (0,1]", frac)
		}
		in, err := parent(env, part, seed)
		if err != nil {
			return nil, err
		}
		rng := rand.New(rand.NewSource(seed*1000003 + int64(part)))
		// sample a binomial-distributed subset, like Spark's per-element coin flips
		out := make([]T, 0, int(frac*float64(len(in)))+1)
		for _, v := range in {
			if rng.Float64() < frac {
				out = append(out, v)
			}
		}
		return out, nil
	})
}

// MapPartitions transforms a whole partition at once.
func MapPartitions[T, U any](r *RDD[T], f func(part int, in []T) ([]U, error)) *RDD[U] {
	parent := r.compute
	return NewRDD(r.ctx, r.nParts, func(env *cluster.Env, part int, seed int64) ([]U, error) {
		in, err := parent(env, part, seed)
		if err != nil {
			return nil, err
		}
		return f(part, in)
	})
}

// partitionTask wraps per-partition computation plus a local fold into a
// cluster task. The fold output type must be concrete for transport.
func partitionTask[T, U any](r *RDD[T], part int, fold func([]T) (U, error)) *cluster.Task {
	t := &cluster.Task{ID: r.ctx.c.NextTaskID(), Partition: part, Seed: r.ctx.c.NextTaskID() * 7919}
	compute := r.compute
	t.SetFunc(func(env *cluster.Env, tk *cluster.Task) (any, error) {
		in, err := compute(env, tk.Partition, tk.Seed)
		if err != nil {
			return nil, err
		}
		return fold(in)
	})
	return t
}

// Reduce aggregates all elements with an associative operator, Spark-style:
// partials are computed per partition on workers, combined on the driver,
// and the action blocks until every partition has reported (the
// bulk-synchronous behaviour ASYNC exists to relax).
func (r *RDD[T]) Reduce(f func(T, T) T) (T, error) {
	var zero T
	type partial struct {
		val T
		ok  bool
	}
	results, err := r.ctx.RunSync(r.partitions(), func(part int) *cluster.Task {
		return partitionTask(r, part, func(in []T) (partial, error) {
			if len(in) == 0 {
				return partial{}, nil
			}
			acc := in[0]
			for _, v := range in[1:] {
				acc = f(acc, v)
			}
			return partial{val: acc, ok: true}, nil
		})
	})
	if err != nil {
		return zero, err
	}
	var acc T
	seen := false
	for _, res := range results {
		p := res.Payload.(partial)
		if !p.ok {
			continue
		}
		if !seen {
			acc, seen = p.val, true
		} else {
			acc = f(acc, p.val)
		}
	}
	if !seen {
		return zero, fmt.Errorf("rdd: reduce of empty RDD")
	}
	return acc, nil
}

// Aggregate folds with a zero value, per-partition seqOp and driver-side
// combOp — Spark's aggregate action.
func Aggregate[T, U any](r *RDD[T], zero U, seqOp func(U, T) U, combOp func(U, U) U) (U, error) {
	results, err := r.ctx.RunSync(r.partitions(), func(part int) *cluster.Task {
		return partitionTask(r, part, func(in []T) (U, error) {
			acc := zero
			for _, v := range in {
				acc = seqOp(acc, v)
			}
			return acc, nil
		})
	})
	var out U
	if err != nil {
		return out, err
	}
	out = zero
	for _, res := range results {
		out = combOp(out, res.Payload.(U))
	}
	return out, nil
}

// Collect gathers every element to the driver.
func (r *RDD[T]) Collect() ([]T, error) {
	results, err := r.ctx.RunSync(r.partitions(), func(part int) *cluster.Task {
		return partitionTask(r, part, func(in []T) ([]T, error) { return in, nil })
	})
	if err != nil {
		return nil, err
	}
	var out []T
	for _, res := range results {
		out = append(out, res.Payload.([]T)...)
	}
	return out, nil
}

// Count returns the number of elements.
func (r *RDD[T]) Count() (int, error) {
	results, err := r.ctx.RunSync(r.partitions(), func(part int) *cluster.Task {
		return partitionTask(r, part, func(in []T) (int, error) { return len(in), nil })
	})
	if err != nil {
		return 0, err
	}
	n := 0
	for _, res := range results {
		n += res.Payload.(int)
	}
	return n, nil
}

func (r *RDD[T]) partitions() []int {
	parts := make([]int, r.nParts)
	for i := range parts {
		parts[i] = i
	}
	return parts
}
