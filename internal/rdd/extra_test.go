package rdd

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/la"
)

func TestPruneBroadcastKeepsLatest(t *testing.T) {
	ctx, _, _ := testSetup(t, 1, 1)
	var last Broadcast
	for i := 0; i < 10; i++ {
		last = ctx.BroadcastQuiet("p", i)
	}
	ctx.PruneBroadcast("p", 3)
	// the latest must survive
	v, err := ctx.DriverValue(last)
	if err != nil {
		t.Fatalf("latest version pruned: %v", err)
	}
	if v != 9 {
		t.Fatalf("latest value %v", v)
	}
	// the oldest must be gone
	if _, err := ctx.DriverValue(Broadcast{ID: "p", Version: last.Version - 9}); err == nil {
		t.Fatal("oldest version survived prune to 3")
	}
	// prune with keep < 1 clamps to 1
	ctx.PruneBroadcast("p", 0)
	if _, err := ctx.DriverValue(last); err != nil {
		t.Fatal("prune(0) removed the latest version")
	}
}

func TestMovePartitionUpdatesByWorker(t *testing.T) {
	ctx, _, _ := testSetup(t, 2, 4)
	part := 0
	from, err := ctx.WorkerFor(part)
	if err != nil {
		t.Fatal(err)
	}
	to := 1 - from
	before := len(ctx.PartitionsOn(to))
	if err := ctx.MovePartition(part, to); err != nil {
		t.Fatal(err)
	}
	if got := len(ctx.PartitionsOn(to)); got != before+1 {
		t.Fatalf("target owns %d partitions, want %d", got, before+1)
	}
	for _, p := range ctx.PartitionsOn(from) {
		if p == part {
			t.Fatal("source still listed as owner")
		}
	}
}

func TestSampleSeedDeterminism(t *testing.T) {
	ctx, r, _ := testSetup(t, 1, 2)
	s := r.Sample(0.5)
	compute := s.Compute()
	// same seed → same sample; different seed → (almost surely) different
	env := clusterEnvFor(t, ctx, 0)
	a1, err := compute(env, 0, 42)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := compute(env, 0, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(a1) != len(a2) {
		t.Fatalf("same seed, different sample sizes %d vs %d", len(a1), len(a2))
	}
	for i := range a1 {
		if a1[i].GlobalIndex != a2[i].GlobalIndex {
			t.Fatal("same seed, different samples")
		}
	}
}

// clusterEnvFor builds a local Env with the same partition contents the
// cluster worker holds (for direct compute testing).
func clusterEnvFor(t *testing.T, ctx *Context, part int) *cluster.Env {
	t.Helper()
	env := cluster.NewEnv(0, 1, nil)
	ctx.mu.Lock()
	m := ctx.master[part]
	ctx.mu.Unlock()
	if m == nil {
		t.Fatalf("no master for partition %d", part)
	}
	if err := env.InstallPartition(m); err != nil {
		t.Fatal(err)
	}
	return env
}

func TestCollectEmptyRDD(t *testing.T) {
	_, r, _ := testSetup(t, 2, 2)
	empty := r.Filter(func(Point) bool { return false })
	pts, err := empty.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 0 {
		t.Fatalf("collected %d from empty RDD", len(pts))
	}
	n, err := empty.Count()
	if err != nil || n != 0 {
		t.Fatalf("count = %d, %v", n, err)
	}
}

func TestPointRowViewMatchesDataset(t *testing.T) {
	_, r, d := testSetup(t, 2, 4)
	pts, err := r.Collect()
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		want := d.X.Row(p.GlobalIndex)
		if !la.Equal(p.X.Dense(), want.Dense(), 0) {
			t.Fatalf("row %d features differ", p.GlobalIndex)
		}
	}
}

func TestAllPartitionsSorted(t *testing.T) {
	ctx, _, _ := testSetup(t, 3, 6)
	parts := ctx.AllPartitions()
	if len(parts) != 6 {
		t.Fatalf("parts = %v", parts)
	}
	for i := 1; i < len(parts); i++ {
		if parts[i] <= parts[i-1] {
			t.Fatalf("not sorted: %v", parts)
		}
	}
}
