package rdd

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Broadcast is a Spark-style broadcast variable: the driver wraps a value,
// pushes it to every worker eagerly, and tasks read it by id. Each call to
// Context.Broadcast ships the whole value to every worker — the overhead
// the ASYNCbroadcaster exists to avoid when history is needed (§4.3).
type Broadcast struct {
	ID      string
	Version int64
}

var bcastSeq atomic.Int64

// driverStore keeps driver-side copies so the fetch path can serve workers
// that missed the eager push (e.g. a worker recovered after a crash).
type driverStore struct {
	mu   sync.RWMutex
	vals map[string]map[int64]any
}

func newDriverStore() *driverStore {
	return &driverStore{vals: map[string]map[int64]any{}}
}

func (s *driverStore) put(id string, ver int64, v any) {
	s.mu.Lock()
	defer s.mu.Unlock()
	m, ok := s.vals[id]
	if !ok {
		m = map[int64]any{}
		s.vals[id] = m
	}
	m[ver] = v
}

// prune drops all but the newest keep versions of id.
func (s *driverStore) prune(id string, keep int) {
	if keep < 1 {
		keep = 1
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	m := s.vals[id]
	for len(m) > keep {
		oldest := int64(-1)
		for ver := range m {
			if oldest < 0 || ver < oldest {
				oldest = ver
			}
		}
		delete(m, oldest)
	}
}

func (s *driverStore) get(id string, ver int64) (any, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	v, ok := s.vals[id][ver]
	if !ok {
		return nil, fmt.Errorf("rdd: broadcast %s@%d not found on driver", id, ver)
	}
	return v, nil
}

// ensureStore lazily installs the driver store and fetch handler.
func (ctx *Context) ensureStore() *driverStore {
	ctx.mu.Lock()
	defer ctx.mu.Unlock()
	if ctx.store == nil {
		ctx.store = newDriverStore()
		ctx.c.SetFetchHandler(ctx.store.get)
	}
	return ctx.store
}

// Broadcast ships value to every live worker (Spark semantics: the full
// value goes out on every call) and returns a handle tasks can dereference
// with BroadcastValue.
func (ctx *Context) Broadcast(id string, value any) Broadcast {
	ver := bcastSeq.Add(1)
	ctx.ensureStore().put(id, ver, value)
	ctx.c.PushAll(id, ver, value)
	return Broadcast{ID: id, Version: ver}
}

// BroadcastQuiet registers the value on the driver only; workers resolve it
// lazily through the fetch path. This is the building block the
// ASYNCbroadcaster uses: re-broadcasting costs an (id, version) pair, not
// the value.
func (ctx *Context) BroadcastQuiet(id string, value any) Broadcast {
	ver := bcastSeq.Add(1)
	ctx.ensureStore().put(id, ver, value)
	return Broadcast{ID: id, Version: ver}
}

// DriverValue reads a broadcast value from the driver store (driver side).
func (ctx *Context) DriverValue(b Broadcast) (any, error) {
	return ctx.ensureStore().get(b.ID, b.Version)
}

// PruneBroadcast drops all but the newest keep versions of a broadcast id
// from the driver store. Safe only for ids whose history is never read
// (e.g. plain SGD model broadcasts); history-dependent methods like SAGA
// must keep every version still referenced.
func (ctx *Context) PruneBroadcast(id string, keep int) {
	ctx.ensureStore().prune(id, keep)
}
