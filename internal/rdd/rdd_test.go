package rdd

import (
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/dataset"
	"repro/internal/la"
)

func testSetup(t *testing.T, workers, partitions int) (*Context, *RDD[Point], *dataset.Dataset) {
	t.Helper()
	c, err := cluster.NewLocal(cluster.Config{NumWorkers: workers, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Shutdown)
	ctx := NewContext(c)
	d, err := dataset.Generate(dataset.SynthConfig{
		Name: "t", Rows: 64, Cols: 8, NNZPerRow: 4, Noise: 0.1, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	r, err := ctx.Distribute(d, partitions)
	if err != nil {
		t.Fatal(err)
	}
	return ctx, r, d
}

func TestDistributePlacement(t *testing.T) {
	ctx, r, _ := testSetup(t, 3, 6)
	if r.NumPartitions() != 6 {
		t.Fatalf("partitions = %d", r.NumPartitions())
	}
	if ctx.NumPartitions() != 6 {
		t.Fatalf("ctx partitions = %d", ctx.NumPartitions())
	}
	counts := map[int]int{}
	for _, p := range ctx.AllPartitions() {
		w, err := ctx.WorkerFor(p)
		if err != nil {
			t.Fatal(err)
		}
		counts[w]++
	}
	for w, n := range counts {
		if n != 2 {
			t.Fatalf("worker %d has %d partitions, want 2", w, n)
		}
	}
}

func TestWorkerForUnknown(t *testing.T) {
	ctx, _, _ := testSetup(t, 2, 2)
	if _, err := ctx.WorkerFor(99); err == nil {
		t.Fatal("unknown partition accepted")
	}
}

func TestCount(t *testing.T) {
	_, r, d := testSetup(t, 2, 4)
	n, err := r.Count()
	if err != nil {
		t.Fatal(err)
	}
	if n != d.NumRows() {
		t.Fatalf("Count = %d, want %d", n, d.NumRows())
	}
}

func TestCollectMatchesDataset(t *testing.T) {
	_, r, d := testSetup(t, 2, 4)
	pts, err := r.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != d.NumRows() {
		t.Fatalf("collected %d, want %d", len(pts), d.NumRows())
	}
	seen := map[int]bool{}
	for _, p := range pts {
		if seen[p.GlobalIndex] {
			t.Fatalf("duplicate global index %d", p.GlobalIndex)
		}
		seen[p.GlobalIndex] = true
		if p.Y != d.Y[p.GlobalIndex] {
			t.Fatalf("label mismatch at %d", p.GlobalIndex)
		}
	}
}

func TestReduceSumsLabels(t *testing.T) {
	_, r, d := testSetup(t, 2, 4)
	ys := Map(r, func(p Point) float64 { return p.Y })
	got, err := ys.Reduce(func(a, b float64) float64 { return a + b })
	if err != nil {
		t.Fatal(err)
	}
	var want float64
	for _, y := range d.Y {
		want += y
	}
	if diff := got - want; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("Reduce = %v, want %v", got, want)
	}
}

func TestReduceEmptyRDDFails(t *testing.T) {
	_, r, _ := testSetup(t, 2, 4)
	empty := r.Filter(func(Point) bool { return false })
	if _, err := empty.Reduce(func(a, b Point) Point { return a }); err == nil {
		t.Fatal("reduce of empty RDD succeeded")
	}
}

func TestReduceWithSomeEmptyPartitions(t *testing.T) {
	_, r, _ := testSetup(t, 2, 4)
	// keep only global index 0 — three of four partitions become empty
	one := r.Filter(func(p Point) bool { return p.GlobalIndex == 0 })
	got, err := Map(one, func(Point) int { return 1 }).Reduce(func(a, b int) int { return a + b })
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Fatalf("Reduce = %d, want 1", got)
	}
}

func TestAggregate(t *testing.T) {
	_, r, d := testSetup(t, 2, 4)
	type acc struct {
		N   int
		Sum float64
	}
	got, err := Aggregate(r, acc{},
		func(a acc, p Point) acc { return acc{a.N + 1, a.Sum + p.Y} },
		func(a, b acc) acc { return acc{a.N + b.N, a.Sum + b.Sum} })
	if err != nil {
		t.Fatal(err)
	}
	if got.N != d.NumRows() {
		t.Fatalf("Aggregate N = %d, want %d", got.N, d.NumRows())
	}
}

func TestFilterAndMapChain(t *testing.T) {
	_, r, d := testSetup(t, 2, 4)
	pos := r.Filter(func(p Point) bool { return p.Y > 0 })
	n, err := pos.Count()
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for _, y := range d.Y {
		if y > 0 {
			want++
		}
	}
	if n != want {
		t.Fatalf("filtered count = %d, want %d", n, want)
	}
}

func TestSampleFraction(t *testing.T) {
	_, r, d := testSetup(t, 2, 4)
	var total int
	const trials = 30
	for i := 0; i < trials; i++ {
		n, err := r.Sample(0.25).Count()
		if err != nil {
			t.Fatal(err)
		}
		total += n
	}
	mean := float64(total) / trials
	want := 0.25 * float64(d.NumRows())
	if mean < want*0.6 || mean > want*1.4 {
		t.Fatalf("mean sample size %.1f, want ≈ %.1f", mean, want)
	}
}

func TestSampleBadFraction(t *testing.T) {
	_, r, _ := testSetup(t, 2, 4)
	if _, err := r.Sample(0).Count(); err == nil {
		t.Fatal("zero fraction accepted")
	}
	if _, err := r.Sample(1.5).Count(); err == nil {
		t.Fatal("fraction > 1 accepted")
	}
}

func TestMapPartitions(t *testing.T) {
	_, r, _ := testSetup(t, 2, 4)
	sizes, err := MapPartitions(r, func(part int, in []Point) ([]int, error) {
		return []int{len(in)}, nil
	}).Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(sizes) != 4 {
		t.Fatalf("got %d partition sizes", len(sizes))
	}
	sum := 0
	for _, s := range sizes {
		sum += s
	}
	if sum != 64 {
		t.Fatalf("sizes sum to %d, want 64", sum)
	}
}

func TestRecoveryAfterWorkerDeath(t *testing.T) {
	ctx, r, d := testSetup(t, 3, 6)
	// kill a worker, then run an action: RunSync must recover its partitions
	ctx.Cluster().Kill(1)
	n, err := r.Count()
	if err != nil {
		t.Fatal(err)
	}
	if n != d.NumRows() {
		t.Fatalf("Count after death = %d, want %d", n, d.NumRows())
	}
	// every partition must now be placed on a live worker
	for _, p := range ctx.AllPartitions() {
		w, err := ctx.WorkerFor(p)
		if err != nil {
			t.Fatal(err)
		}
		if !ctx.Cluster().Alive(w) {
			t.Fatalf("partition %d still on dead worker %d", p, w)
		}
	}
}

func TestRecoveryMidFlight(t *testing.T) {
	ctx, r, d := testSetup(t, 3, 3)
	// a slow map gives us time to kill the worker while tasks are in flight
	slow := Map(r, func(p Point) Point {
		time.Sleep(time.Millisecond)
		return p
	})
	done := make(chan int, 1)
	errc := make(chan error, 1)
	go func() {
		n, err := slow.Count()
		if err != nil {
			errc <- err
			return
		}
		done <- n
	}()
	time.Sleep(5 * time.Millisecond)
	ctx.Cluster().Kill(0)
	select {
	case n := <-done:
		if n != d.NumRows() {
			t.Fatalf("Count = %d, want %d", n, d.NumRows())
		}
	case err := <-errc:
		t.Fatalf("action failed after mid-flight death: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("action hung after mid-flight death")
	}
}

func TestRecoverNoLineageRoot(t *testing.T) {
	ctx, _, _ := testSetup(t, 2, 2)
	if _, err := ctx.Recover(42); err == nil {
		t.Fatal("recovering unknown partition succeeded")
	}
}

func TestBroadcastEagerAndValue(t *testing.T) {
	ctx, r, _ := testSetup(t, 2, 2)
	b := ctx.Broadcast("w", la.Vec{1, 2, 3})
	time.Sleep(20 * time.Millisecond) // pushes are async
	norms, err := MapPartitions(r, func(part int, in []Point) ([]float64, error) {
		return []float64{0}, nil
	}).Collect()
	_ = norms
	if err != nil {
		t.Fatal(err)
	}
	// read via a task
	got, err := Aggregate(r, 0.0,
		func(acc float64, p Point) float64 { return acc },
		func(a, b float64) float64 { return a + b })
	_ = got
	if err != nil {
		t.Fatal(err)
	}
	v, err := ctx.DriverValue(b)
	if err != nil {
		t.Fatal(err)
	}
	if !la.Equal(v.(la.Vec), la.Vec{1, 2, 3}, 0) {
		t.Fatalf("driver value %v", v)
	}
}

func TestBroadcastQuietServedByFetch(t *testing.T) {
	ctx, r, _ := testSetup(t, 2, 2)
	b := ctx.BroadcastQuiet("lazy", la.Vec{4, 5})
	// a task resolving the broadcast must succeed via the fetch path
	results, err := ctx.RunSync(r.partitions(), func(part int) *cluster.Task {
		tk := &cluster.Task{ID: ctx.Cluster().NextTaskID(), Partition: part}
		tk.SetFunc(func(env *cluster.Env, task *cluster.Task) (any, error) {
			v, err := env.BroadcastValue(b.ID, b.Version)
			if err != nil {
				return nil, err
			}
			return la.Norm2(v.(la.Vec)), nil
		})
		return tk
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, res := range results {
		if res.Payload.(float64) == 0 {
			t.Fatal("broadcast value empty")
		}
	}
}

func TestBroadcastVersionsDistinct(t *testing.T) {
	ctx, _, _ := testSetup(t, 1, 1)
	b1 := ctx.Broadcast("w", 1)
	b2 := ctx.Broadcast("w", 2)
	if b1.Version == b2.Version {
		t.Fatal("broadcast versions collide")
	}
	v1, _ := ctx.DriverValue(b1)
	v2, _ := ctx.DriverValue(b2)
	if v1 != 1 || v2 != 2 {
		t.Fatalf("history lost: %v %v", v1, v2)
	}
}

func TestDriverValueUnknown(t *testing.T) {
	ctx, _, _ := testSetup(t, 1, 1)
	if _, err := ctx.DriverValue(Broadcast{ID: "x", Version: 999}); err == nil {
		t.Fatal("unknown broadcast accepted")
	}
}
