// Package rdd implements the Spark-like dataflow layer the paper builds on:
// resilient distributed datasets with lazy, lineage-tracked transformations,
// synchronous actions (reduce, collect, aggregate — Spark's bulk-synchronous
// model), Spark-style broadcast variables, and fault tolerance by
// recomputation: every derived partition is recomputed from its base
// partition, and base partitions are re-installed on a live worker when
// their owner dies.
//
// The ASYNC engine (internal/core) layers its asynchronous primitives —
// ASYNCreduce, ASYNCbarrier, ASYNCbroadcast — on top of this package's
// Context and Dist types, exactly as the paper layers ASYNC on Spark.
package rdd

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/dataset"
)

// installTimeout bounds synchronous partition installs.
const installTimeout = 30 * time.Second

// Context is the driver-side handle tying RDDs to a cluster: it owns
// partition placement, master copies of base partitions (the lineage roots),
// and recovery.
type Context struct {
	c *cluster.Cluster

	mu        sync.Mutex
	placement map[int]int                // partition → worker
	master    map[int]*dataset.Partition // driver-side lineage roots
	byWorker  map[int][]int              // worker → partitions (derived)
	store     *driverStore               // broadcast values (driver side)
}

// NewContext creates a driver context on a cluster.
func NewContext(c *cluster.Cluster) *Context {
	return &Context{
		c:         c,
		placement: map[int]int{},
		master:    map[int]*dataset.Partition{},
		byWorker:  map[int][]int{},
	}
}

// Cluster exposes the underlying cluster.
func (ctx *Context) Cluster() *cluster.Cluster { return ctx.c }

// Distribute splits d into numPartitions contiguous blocks and installs them
// round-robin across live workers, keeping driver-side master copies for
// recovery. It returns the base RDD of labelled points.
func (ctx *Context) Distribute(d *dataset.Dataset, numPartitions int) (*RDD[Point], error) {
	parts, err := dataset.Split(d, numPartitions)
	if err != nil {
		return nil, err
	}
	workers := ctx.c.AliveWorkers()
	if len(workers) == 0 {
		return nil, fmt.Errorf("rdd: no live workers")
	}
	for i, p := range parts {
		w := workers[i%len(workers)]
		if err := ctx.c.Install(w, p, installTimeout); err != nil {
			return nil, err
		}
		ctx.mu.Lock()
		ctx.placement[p.Index] = w
		ctx.master[p.Index] = p
		ctx.byWorker[w] = append(ctx.byWorker[w], p.Index)
		ctx.mu.Unlock()
	}
	return basePointRDD(ctx, numPartitions), nil
}

// Release drops every placed partition and its driver-side lineage root,
// returning the context to its pre-Distribute state so a different dataset
// can be distributed on the same cluster. Worker-side copies of the old
// partitions are overwritten index-by-index on the next Distribute; any
// leftovers with indices beyond the new partition count are unreachable
// (tasks only target placed partitions) and are reclaimed when the worker
// shuts down.
func (ctx *Context) Release() {
	ctx.mu.Lock()
	defer ctx.mu.Unlock()
	ctx.placement = map[int]int{}
	ctx.master = map[int]*dataset.Partition{}
	ctx.byWorker = map[int][]int{}
}

// NumPartitions returns the number of placed partitions.
func (ctx *Context) NumPartitions() int {
	ctx.mu.Lock()
	defer ctx.mu.Unlock()
	return len(ctx.placement)
}

// WorkerFor returns the worker currently owning a partition.
func (ctx *Context) WorkerFor(part int) (int, error) {
	ctx.mu.Lock()
	defer ctx.mu.Unlock()
	w, ok := ctx.placement[part]
	if !ok {
		return 0, fmt.Errorf("rdd: partition %d not placed", part)
	}
	return w, nil
}

// PartitionsOn returns the partitions placed on worker w.
func (ctx *Context) PartitionsOn(w int) []int {
	ctx.mu.Lock()
	defer ctx.mu.Unlock()
	return append([]int(nil), ctx.byWorker[w]...)
}

// Recover re-places a partition whose worker died onto a live worker,
// re-installing the master copy (lineage root). It returns the new worker.
func (ctx *Context) Recover(part int) (int, error) {
	ctx.mu.Lock()
	old, placed := ctx.placement[part]
	m := ctx.master[part]
	ctx.mu.Unlock()
	if !placed || m == nil {
		return 0, fmt.Errorf("rdd: partition %d has no lineage root", part)
	}
	var target = -1
	for _, w := range ctx.c.AliveWorkers() {
		if w != old {
			target = w
			break
		}
	}
	if target < 0 {
		return 0, fmt.Errorf("rdd: no live worker to recover partition %d", part)
	}
	if err := ctx.c.Install(target, m, installTimeout); err != nil {
		return 0, err
	}
	ctx.mu.Lock()
	ctx.placement[part] = target
	old = ctx.prunePlacementLocked(part, old, target)
	ctx.mu.Unlock()
	_ = old
	return target, nil
}

func (ctx *Context) prunePlacementLocked(part, old, target int) int {
	ws := ctx.byWorker[old]
	for i, p := range ws {
		if p == part {
			ctx.byWorker[old] = append(ws[:i], ws[i+1:]...)
			break
		}
	}
	ctx.byWorker[target] = append(ctx.byWorker[target], part)
	return old
}

// MovePartition re-installs a partition's lineage root on the given worker
// and updates placement — explicit rebalancing, e.g. onto a worker added
// after startup.
func (ctx *Context) MovePartition(part, worker int) error {
	ctx.mu.Lock()
	old, placed := ctx.placement[part]
	m := ctx.master[part]
	ctx.mu.Unlock()
	if !placed || m == nil {
		return fmt.Errorf("rdd: partition %d has no lineage root", part)
	}
	if old == worker {
		return nil
	}
	if err := ctx.c.Install(worker, m, installTimeout); err != nil {
		return err
	}
	ctx.mu.Lock()
	ctx.placement[part] = worker
	ctx.prunePlacementLocked(part, old, worker)
	ctx.mu.Unlock()
	return nil
}

// RunSync submits one task per listed partition and waits for all results —
// Spark's bulk-synchronous stage execution. When a worker dies (at submit
// time or while a task is in flight) the partition is recovered onto a live
// worker from its lineage root and the task resubmitted, preserving Spark's
// fault-tolerance semantics.
func (ctx *Context) RunSync(parts []int, mk func(part int) *cluster.Task) ([]*cluster.Result, error) {
	router := ctx.c.Router()
	ch := make(chan *cluster.Result, len(parts))
	pendingByID := map[int64]int{} // task id → partition
	submit := func(part int) error {
		for attempt := 0; attempt < 3; attempt++ {
			w, err := ctx.WorkerFor(part)
			if err != nil {
				return err
			}
			t := mk(part)
			router.Route(t.ID, ch)
			if err := ctx.c.Submit(w, t); err == nil {
				pendingByID[t.ID] = part
				return nil
			}
			router.Unroute(t.ID)
			if _, err := ctx.Recover(part); err != nil {
				return fmt.Errorf("rdd: partition %d unrecoverable: %w", part, err)
			}
		}
		return fmt.Errorf("rdd: partition %d: submit retries exhausted", part)
	}
	for _, p := range parts {
		if err := submit(p); err != nil {
			return nil, err
		}
	}
	out := make([]*cluster.Result, 0, len(parts))
	liveness := time.NewTicker(100 * time.Millisecond)
	defer liveness.Stop()
	for len(pendingByID) > 0 {
		select {
		case r := <-ch:
			if _, mine := pendingByID[r.TaskID]; !mine {
				continue // a resubmitted task's abandoned twin
			}
			if r.Failed() {
				return nil, fmt.Errorf("rdd: task %d failed on worker %d: %s", r.TaskID, r.Worker, r.Err)
			}
			delete(pendingByID, r.TaskID)
			out = append(out, r)
		case <-liveness.C:
			// resubmit tasks whose worker died while the task was in flight
			for id, part := range pendingByID {
				w, err := ctx.WorkerFor(part)
				if err == nil && ctx.c.Alive(w) {
					continue
				}
				router.Unroute(id)
				delete(pendingByID, id)
				if _, err := ctx.Recover(part); err != nil {
					return nil, fmt.Errorf("rdd: partition %d unrecoverable: %w", part, err)
				}
				if err := submit(part); err != nil {
					return nil, err
				}
			}
		}
	}
	return out, nil
}

// AllPartitions lists every placed partition id in ascending order.
func (ctx *Context) AllPartitions() []int {
	ctx.mu.Lock()
	defer ctx.mu.Unlock()
	out := make([]int, 0, len(ctx.placement))
	for p := range ctx.placement {
		out = append(out, p)
	}
	sortInts(out)
	return out
}

func sortInts(v []int) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}
