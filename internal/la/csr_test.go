package la

import (
	"math"
	"math/rand"
	"testing"
)

func randomCSR(rng *rand.Rand, rows, cols int, density float64) *CSR {
	m := NewCSR(rows, cols, int(float64(rows*cols)*density)+1)
	for i := 0; i < rows; i++ {
		entries := map[int32]float64{}
		for j := 0; j < cols; j++ {
			if rng.Float64() < density {
				entries[int32(j)] = rng.NormFloat64()
			}
		}
		if err := m.AppendRow(SparseFromMap(cols, entries)); err != nil {
			panic(err)
		}
	}
	return m
}

func denseOf(m *CSR) [][]float64 {
	out := make([][]float64, m.NumRows)
	for i := range out {
		out[i] = m.Row(i).Dense()
	}
	return out
}

func TestCSRAppendAndRow(t *testing.T) {
	m := NewCSR(2, 3, 4)
	r0, _ := NewSparseVec(3, []int32{0, 2}, []float64{1, 2})
	r1, _ := NewSparseVec(3, []int32{1}, []float64{5})
	if err := m.AppendRow(r0); err != nil {
		t.Fatal(err)
	}
	if err := m.AppendRow(r1); err != nil {
		t.Fatal(err)
	}
	if !m.Complete() {
		t.Fatal("matrix should be complete")
	}
	if err := m.AppendRow(r1); err == nil {
		t.Fatal("extra row accepted")
	}
	if !Equal(m.Row(0).Dense(), Vec{1, 0, 2}, 0) {
		t.Fatalf("Row(0) = %v", m.Row(0).Dense())
	}
	if !Equal(m.Row(1).Dense(), Vec{0, 5, 0}, 0) {
		t.Fatalf("Row(1) = %v", m.Row(1).Dense())
	}
	if m.NNZ() != 3 {
		t.Fatalf("NNZ = %d", m.NNZ())
	}
}

func TestCSRAppendRowDimMismatch(t *testing.T) {
	m := NewCSR(1, 3, 1)
	r, _ := NewSparseVec(4, []int32{0}, []float64{1})
	if err := m.AppendRow(r); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
}

func TestMatVecAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		rows, cols := 1+rng.Intn(20), 1+rng.Intn(20)
		m := randomCSR(rng, rows, cols, 0.3)
		x := NewVec(cols)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		y := NewVec(rows)
		m.MatVec(x, y)
		d := denseOf(m)
		for i := 0; i < rows; i++ {
			var want float64
			for j := 0; j < cols; j++ {
				want += d[i][j] * x[j]
			}
			if math.Abs(y[i]-want) > 1e-10 {
				t.Fatalf("MatVec row %d = %v, want %v", i, y[i], want)
			}
		}
	}
}

func TestMatTVecAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 20; trial++ {
		rows, cols := 1+rng.Intn(20), 1+rng.Intn(20)
		m := randomCSR(rng, rows, cols, 0.3)
		x := NewVec(rows)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		y := NewVec(cols)
		m.MatTVec(x, y)
		d := denseOf(m)
		for j := 0; j < cols; j++ {
			var want float64
			for i := 0; i < rows; i++ {
				want += d[i][j] * x[i]
			}
			if math.Abs(y[j]-want) > 1e-10 {
				t.Fatalf("MatTVec col %d = %v, want %v", j, y[j], want)
			}
		}
	}
}

func TestSliceRows(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := randomCSR(rng, 10, 6, 0.4)
	s := m.SliceRows(3, 7)
	if s.NumRows != 4 || s.NumCols != 6 {
		t.Fatalf("slice dims %dx%d", s.NumRows, s.NumCols)
	}
	for i := 0; i < 4; i++ {
		if !Equal(s.Row(i).Dense(), m.Row(3+i).Dense(), 0) {
			t.Fatalf("slice row %d differs", i)
		}
	}
	// mutating the slice must not affect the original
	if s.NNZ() > 0 {
		s.Val[0] += 100
		if m.Row(3).NNZ() > 0 && m.Row(3).Val[0] == s.Val[0] {
			t.Fatal("SliceRows shares storage with parent")
		}
	}
}

func TestSliceRowsOutOfRangePanics(t *testing.T) {
	m := NewCSR(2, 2, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.SliceRows(0, 3)
}

func TestDensity(t *testing.T) {
	m := NewCSR(2, 2, 2)
	r, _ := NewSparseVec(2, []int32{0}, []float64{1})
	_ = m.AppendRow(r)
	_ = m.AppendRow(r)
	if got := m.Density(); math.Abs(got-0.5) > 1e-15 {
		t.Fatalf("Density = %v, want 0.5", got)
	}
	empty := NewCSR(0, 0, 0)
	if empty.Density() != 0 {
		t.Fatal("empty density should be 0")
	}
}

// Property: (Aᵀ(Ax))·x == ||Ax||² — exercises MatVec and MatTVec consistency.
func TestPropMatVecMatTVecAdjoint(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 30; trial++ {
		rows, cols := 1+rng.Intn(15), 1+rng.Intn(15)
		m := randomCSR(rng, rows, cols, 0.4)
		x := NewVec(cols)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		ax := NewVec(rows)
		m.MatVec(x, ax)
		atax := NewVec(cols)
		m.MatTVec(ax, atax)
		lhs := Dot(atax, x)
		rhs := Dot(ax, ax)
		if math.Abs(lhs-rhs) > 1e-9*(math.Abs(rhs)+1) {
			t.Fatalf("adjoint identity violated: %v vs %v", lhs, rhs)
		}
	}
}
