package la

import "sync"

// Vector pool: task kernels accumulate gradients into pooled vectors whose
// ownership transfers to the driver with the task result; the driver returns
// them with PutVec once the update is applied. In steady state every task of
// a run reuses storage from earlier tasks of the same dimension, so the
// per-task compute path allocates nothing (see the allocation assertions in
// internal/opt). The pool is per-process, and only the driver recycles: over
// the in-process transport the driver's PutVec feeds the very pool kernels
// Get from, closing the loop. Over the TCP transport the driver recycles its
// decoded copies, but remote workers cannot safely Put after Send (the
// endpoint may still be encoding the payload), so they allocate one fresh
// accumulator per task.

const maxPooledPerSize = 64

var vecPool = struct {
	mu   sync.Mutex
	free map[int][]Vec
}{free: map[int][]Vec{}}

// GetVec returns a zeroed dense vector of length n, reusing pooled storage
// when a vector of that exact length has been returned with PutVec.
func GetVec(n int) Vec {
	vecPool.mu.Lock()
	l := vecPool.free[n]
	if len(l) > 0 {
		v := l[len(l)-1]
		vecPool.free[n] = l[:len(l)-1]
		vecPool.mu.Unlock()
		v.Zero()
		return v
	}
	vecPool.mu.Unlock()
	return NewVec(n)
}

// PutVec returns v to the pool. The caller must not retain any reference to
// v afterwards; a later GetVec of the same length may hand it to another
// task. Putting nil is a no-op. The pool keeps at most maxPooledPerSize
// vectors per length; extras are dropped for the GC.
func PutVec(v Vec) {
	if v == nil {
		return
	}
	n := len(v)
	vecPool.mu.Lock()
	if len(vecPool.free[n]) < maxPooledPerSize {
		vecPool.free[n] = append(vecPool.free[n], v)
	}
	vecPool.mu.Unlock()
}
