package la

import "fmt"

// This file holds the fused, 4-way-unrolled kernels behind the package's
// zero-allocation invariant: every function here runs in O(1) extra space,
// never allocates, and makes a single pass over its operands. The gradient
// inner loops in internal/opt are built exclusively from these kernels plus
// per-worker scratch buffers, and alloc_test.go / the opt allocation tests
// lock the invariant in with testing.AllocsPerRun.

// DotAxpy performs y += alpha·x and returns the squared 2-norm of the
// updated y in the same pass — the fused residual-update + convergence-check
// step of conjugate gradient (r -= alpha·Ap; rs = r·r).
func DotAxpy(alpha float64, x, y Vec) float64 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("la: DotAxpy length mismatch %d != %d", len(x), len(y)))
	}
	var s0, s1, s2, s3 float64
	i := 0
	for ; i < len(x)-3; i += 4 {
		y0 := y[i] + alpha*x[i]
		y1 := y[i+1] + alpha*x[i+1]
		y2 := y[i+2] + alpha*x[i+2]
		y3 := y[i+3] + alpha*x[i+3]
		y[i], y[i+1], y[i+2], y[i+3] = y0, y1, y2, y3
		s0 += y0 * y0
		s1 += y1 * y1
		s2 += y2 * y2
		s3 += y3 * y3
	}
	for ; i < len(x); i++ {
		yi := y[i] + alpha*x[i]
		y[i] = yi
		s0 += yi * yi
	}
	return (s0 + s1) + (s2 + s3)
}

// ScaleAddInto sets dst = a·x + b·y elementwise. dst may alias x or y, so
// the momentum update vel = μ·vel − α·g and the CG direction update
// p = r + β·p are both single calls with no temporary.
func ScaleAddInto(dst Vec, a float64, x Vec, b float64, y Vec) {
	if len(dst) != len(x) || len(x) != len(y) {
		panic("la: ScaleAddInto length mismatch")
	}
	i := 0
	for ; i < len(dst)-3; i += 4 {
		dst[i] = a*x[i] + b*y[i]
		dst[i+1] = a*x[i+1] + b*y[i+1]
		dst[i+2] = a*x[i+2] + b*y[i+2]
		dst[i+3] = a*x[i+3] + b*y[i+3]
	}
	for ; i < len(dst); i++ {
		dst[i] = a*x[i] + b*y[i]
	}
}

// SparseDot returns Σ_k val[k]·w[idx[k]] over raw CSR row slices (see
// CSR.RowNZ), the residual computation of every per-sample gradient. The
// indices must be in range for w; out-of-range indices panic.
func SparseDot(idx []int32, val []float64, w Vec) float64 {
	if len(idx) != len(val) {
		panic(fmt.Sprintf("la: SparseDot idx/val length mismatch %d != %d", len(idx), len(val)))
	}
	var s0, s1, s2, s3 float64
	i := 0
	for ; i < len(idx)-3; i += 4 {
		s0 += val[i] * w[idx[i]]
		s1 += val[i+1] * w[idx[i+1]]
		s2 += val[i+2] * w[idx[i+2]]
		s3 += val[i+3] * w[idx[i+3]]
	}
	for ; i < len(idx); i++ {
		s0 += val[i] * w[idx[i]]
	}
	return (s0 + s1) + (s2 + s3)
}

// GradAccum accumulates g[idx[k]] += alpha·val[k] over raw CSR row slices —
// the scatter half of every per-sample gradient (g += alpha·x for a sparse
// row x). Indices within one row are strictly increasing, so the unrolled
// writes never alias.
func GradAccum(alpha float64, idx []int32, val []float64, g Vec) {
	if len(idx) != len(val) {
		panic(fmt.Sprintf("la: GradAccum idx/val length mismatch %d != %d", len(idx), len(val)))
	}
	i := 0
	for ; i < len(idx)-3; i += 4 {
		g[idx[i]] += alpha * val[i]
		g[idx[i+1]] += alpha * val[i+1]
		g[idx[i+2]] += alpha * val[i+2]
		g[idx[i+3]] += alpha * val[i+3]
	}
	for ; i < len(idx); i++ {
		g[idx[i]] += alpha * val[i]
	}
}
