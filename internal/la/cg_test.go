package la

import (
	"math"
	"math/rand"
	"testing"
)

func TestConjGradIdentity(t *testing.T) {
	// A = I, so the solution is b itself.
	b := Vec{1, 2, 3}
	w := NewVec(3)
	res, err := ConjGrad(func(x, y Vec) { y.CopyFrom(x) }, b, w, 1e-12, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("did not converge: %+v", res)
	}
	if !Equal(w, b, 1e-10) {
		t.Fatalf("w = %v, want %v", w, b)
	}
}

func TestConjGradDiagonal(t *testing.T) {
	d := Vec{4, 9, 16, 25}
	b := Vec{8, 27, 32, 100}
	w := NewVec(4)
	mul := func(x, y Vec) {
		for i := range x {
			y[i] = d[i] * x[i]
		}
	}
	res, err := ConjGrad(mul, b, w, 1e-12, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("did not converge: %+v", res)
	}
	want := Vec{2, 3, 2, 4}
	if !Equal(w, want, 1e-8) {
		t.Fatalf("w = %v, want %v", w, want)
	}
}

func TestConjGradRejectsBadInput(t *testing.T) {
	if _, err := ConjGrad(func(x, y Vec) {}, Vec{1}, Vec{1, 2}, 1e-9, 10); err == nil {
		t.Fatal("dim mismatch accepted")
	}
	if _, err := ConjGrad(func(x, y Vec) {}, Vec{1}, Vec{0}, 0, 10); err == nil {
		t.Fatal("zero tol accepted")
	}
}

func TestConjGradIndefiniteDetected(t *testing.T) {
	// A = -I is negative definite; CG must report the failure.
	mul := func(x, y Vec) {
		for i := range x {
			y[i] = -x[i]
		}
	}
	_, err := ConjGrad(mul, Vec{1, 1}, NewVec(2), 1e-12, 10)
	if err == nil {
		t.Fatal("indefinite operator not detected")
	}
}

func TestNormalEquationsSolveRecoversPlanted(t *testing.T) {
	// Plant wTrue, build b = A wTrue, solve the regularized least squares
	// with tiny lambda; the solution must be close to wTrue when A has
	// full column rank.
	rng := rand.New(rand.NewSource(7))
	rows, cols := 60, 8
	a := randomCSR(rng, rows, cols, 0.9)
	wTrue := NewVec(cols)
	for i := range wTrue {
		wTrue[i] = rng.NormFloat64()
	}
	b := NewVec(rows)
	a.MatVec(wTrue, b)
	w, res, err := NormalEquationsSolve(a, b, 0, 1e-12, 500)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("CG did not converge: %+v", res)
	}
	if !Equal(w, wTrue, 1e-6) {
		t.Fatalf("w = %v, want %v", w, wTrue)
	}
}

func TestNormalEquationsSolveRegularized(t *testing.T) {
	// With large lambda the solution shrinks toward zero.
	rng := rand.New(rand.NewSource(8))
	a := randomCSR(rng, 30, 5, 0.9)
	b := NewVec(30)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	wSmall, _, err := NormalEquationsSolve(a, b, 1e-6, 1e-10, 500)
	if err != nil {
		t.Fatal(err)
	}
	wBig, _, err := NormalEquationsSolve(a, b, 1e6, 1e-10, 500)
	if err != nil {
		t.Fatal(err)
	}
	if Norm2(wBig) >= Norm2(wSmall) {
		t.Fatalf("regularization did not shrink: %v >= %v", Norm2(wBig), Norm2(wSmall))
	}
	if Norm2(wBig) > 1e-3 {
		t.Fatalf("huge lambda should give ~0 solution, got norm %v", Norm2(wBig))
	}
}

func TestNormalEquationsDimMismatch(t *testing.T) {
	a := NewCSR(3, 2, 0)
	if _, _, err := NormalEquationsSolve(a, Vec{1, 2}, 0, 1e-9, 10); err == nil {
		t.Fatal("dim mismatch accepted")
	}
}

func TestConjGradResidualDecreases(t *testing.T) {
	// Solve a random SPD system built as AᵀA + I and check the final
	// residual is below the requested tolerance.
	rng := rand.New(rand.NewSource(9))
	a := randomCSR(rng, 20, 10, 0.5)
	tmp := NewVec(20)
	mul := func(x, y Vec) {
		a.MatVec(x, tmp)
		a.MatTVec(tmp, y)
		Axpy(1.0, x, y)
	}
	b := NewVec(10)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	w := NewVec(10)
	res, err := ConjGrad(mul, b, w, 1e-10, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("no convergence: %+v", res)
	}
	// verify residual independently
	y := NewVec(10)
	mul(w, y)
	r := NewVec(10)
	SubInto(r, b, y)
	if Norm2(r) > 1e-8 {
		t.Fatalf("independent residual %v too large", Norm2(r))
	}
	if math.IsNaN(Norm2(w)) {
		t.Fatal("solution contains NaN")
	}
}
