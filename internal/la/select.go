package la

// In-place selection over parallel (index, value) slices — the alloc-free
// substrate of top-k gradient sparsification. Replaces the former full sort:
// selecting the k largest-magnitude coordinates is O(d + k) expected via
// quickselect, and only the k survivors pay the final by-index ordering.

func absf(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// TopAbs partially partitions the parallel slices so that the cut = min(k,
// len) largest-|val| entries occupy idx[:cut], val[:cut] (in unspecified
// order). Expected O(len + cut); no allocation. Returns cut.
func TopAbs(idx []int32, val []float64, k int) int {
	n := len(idx)
	if k >= n {
		return n
	}
	if k <= 0 {
		return 0
	}
	lo, hi := 0, n-1
	for {
		if hi-lo < 12 {
			insertionAbsDesc(idx, val, lo, hi)
			return k
		}
		// median-of-three pivot, moved to hi for a Lomuto partition
		mid := int(uint(lo+hi) >> 1)
		p := mid
		a, b, c := absf(val[lo]), absf(val[mid]), absf(val[hi])
		switch {
		case (a >= b) == (a <= c):
			p = lo
		case (c >= a) == (c <= b):
			p = hi
		}
		idx[p], idx[hi] = idx[hi], idx[p]
		val[p], val[hi] = val[hi], val[p]
		pv := absf(val[hi])
		store := lo
		for i := lo; i < hi; i++ {
			if absf(val[i]) > pv {
				idx[i], idx[store] = idx[store], idx[i]
				val[i], val[store] = val[store], val[i]
				store++
			}
		}
		idx[store], idx[hi] = idx[hi], idx[store]
		val[store], val[hi] = val[hi], val[store]
		switch {
		case k-1 < store:
			hi = store - 1
		case k-1 > store:
			lo = store + 1
		default:
			return k
		}
	}
}

// insertionAbsDesc sorts idx/val[lo:hi+1] by descending |val| in place.
func insertionAbsDesc(idx []int32, val []float64, lo, hi int) {
	for i := lo + 1; i <= hi; i++ {
		for j := i; j > lo && absf(val[j]) > absf(val[j-1]); j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
			val[j], val[j-1] = val[j-1], val[j]
		}
	}
}

// SortPairsByIdx sorts the parallel slices by ascending index in place —
// the canonical-order pass a SparseVec needs after selection. In-place
// quicksort with an insertion-sort tail; no allocation.
func SortPairsByIdx(idx []int32, val []float64) {
	sortPairsRange(idx, val, 0, len(idx)-1)
}

func sortPairsRange(idx []int32, val []float64, lo, hi int) {
	for hi-lo >= 12 {
		mid := int(uint(lo+hi) >> 1)
		p := mid
		if (idx[lo] >= idx[mid]) == (idx[lo] <= idx[hi]) {
			p = lo
		} else if (idx[hi] >= idx[lo]) == (idx[hi] <= idx[mid]) {
			p = hi
		}
		idx[p], idx[hi] = idx[hi], idx[p]
		val[p], val[hi] = val[hi], val[p]
		pv := idx[hi]
		store := lo
		for i := lo; i < hi; i++ {
			if idx[i] < pv {
				idx[i], idx[store] = idx[store], idx[i]
				val[i], val[store] = val[store], val[i]
				store++
			}
		}
		idx[store], idx[hi] = idx[hi], idx[store]
		val[store], val[hi] = val[hi], val[store]
		// recurse into the smaller half, loop on the larger
		if store-lo < hi-store {
			sortPairsRange(idx, val, lo, store-1)
			lo = store + 1
		} else {
			sortPairsRange(idx, val, store+1, hi)
			hi = store - 1
		}
	}
	for i := lo + 1; i <= hi; i++ {
		for j := i; j > lo && idx[j] < idx[j-1]; j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
			val[j], val[j-1] = val[j-1], val[j]
		}
	}
}
