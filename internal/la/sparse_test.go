package la

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewSparseVecValidation(t *testing.T) {
	if _, err := NewSparseVec(5, []int32{0, 2, 4}, []float64{1, 2, 3}); err != nil {
		t.Fatalf("valid sparse vec rejected: %v", err)
	}
	if _, err := NewSparseVec(5, []int32{0, 2}, []float64{1}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := NewSparseVec(5, []int32{2, 1}, []float64{1, 2}); err == nil {
		t.Fatal("out-of-order indices accepted")
	}
	if _, err := NewSparseVec(5, []int32{0, 5}, []float64{1, 2}); err == nil {
		t.Fatal("out-of-range index accepted")
	}
	if _, err := NewSparseVec(5, []int32{0, 0}, []float64{1, 2}); err == nil {
		t.Fatal("duplicate index accepted")
	}
}

func TestSparseDenseRoundTrip(t *testing.T) {
	s, err := NewSparseVec(6, []int32{1, 3}, []float64{2.5, -1})
	if err != nil {
		t.Fatal(err)
	}
	d := s.Dense()
	want := Vec{0, 2.5, 0, -1, 0, 0}
	if !Equal(d, want, 0) {
		t.Fatalf("Dense = %v, want %v", d, want)
	}
	s2 := SparseFromDense(d)
	if !Equal(s2.Dense(), want, 0) {
		t.Fatalf("round trip = %v", s2.Dense())
	}
	if s2.NNZ() != 2 {
		t.Fatalf("NNZ = %d, want 2", s2.NNZ())
	}
}

func TestSparseFromMap(t *testing.T) {
	s := SparseFromMap(4, map[int32]float64{3: 1, 0: 2, 2: 0})
	if s.NNZ() != 2 {
		t.Fatalf("NNZ = %d, want 2 (explicit zero dropped)", s.NNZ())
	}
	if s.Idx[0] != 0 || s.Idx[1] != 3 {
		t.Fatalf("indices not sorted: %v", s.Idx)
	}
}

func TestSparseDotDenseMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(40)
		d := NewVec(n)
		for i := range d {
			d[i] = rng.NormFloat64()
		}
		m := map[int32]float64{}
		for k := 0; k < rng.Intn(n+1); k++ {
			m[int32(rng.Intn(n))] = rng.NormFloat64()
		}
		s := SparseFromMap(n, m)
		got := s.DotDense(d)
		want := Dot(s.Dense(), d)
		if math.Abs(got-want) > 1e-12*(math.Abs(want)+1) {
			t.Fatalf("sparse dot %v != dense dot %v", got, want)
		}
	}
}

func TestSparseAxpyDenseMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(40)
		m := map[int32]float64{}
		for k := 0; k < rng.Intn(n+1); k++ {
			m[int32(rng.Intn(n))] = rng.NormFloat64()
		}
		s := SparseFromMap(n, m)
		alpha := rng.NormFloat64()
		y1 := NewVec(n)
		y2 := NewVec(n)
		for i := range y1 {
			y1[i] = rng.NormFloat64()
			y2[i] = y1[i]
		}
		s.AxpyDense(alpha, y1)
		Axpy(alpha, s.Dense(), y2)
		if !Equal(y1, y2, 1e-12) {
			t.Fatalf("sparse axpy %v != dense axpy %v", y1, y2)
		}
	}
}

func TestPropSparseNorm2Sq(t *testing.T) {
	f := func(raw []float64) bool {
		d := clampVec(raw)
		s := SparseFromDense(d)
		want := Dot(d, d)
		got := s.Norm2Sq()
		return math.Abs(got-want) <= 1e-9*(want+1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
