package la

import (
	"math/rand"
	"sort"
	"testing"
)

// randDelta builds a random delta with nnz distinct sorted indices in [0,n).
func randDelta(rng *rand.Rand, n, nnz int) *DeltaVec {
	picked := map[int32]float64{}
	for len(picked) < nnz {
		picked[int32(rng.Intn(n))] = rng.NormFloat64()
	}
	idx := make([]int32, 0, nnz)
	for j := range picked {
		idx = append(idx, j)
	}
	sort.Slice(idx, func(a, b int) bool { return idx[a] < idx[b] })
	val := make([]float64, nnz)
	for i, j := range idx {
		val[i] = picked[j]
	}
	return &DeltaVec{Idx: idx, Val: val, N: n}
}

func TestDeltaAxpyDotMatchDense(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := 5 + rng.Intn(80)
		d := randDelta(rng, n, 1+rng.Intn(n))
		w := NewVec(n)
		for i := range w {
			w[i] = rng.NormFloat64()
		}
		dd := d.Dense()
		if got, want := d.DotDense(w), Dot(dd, w); !approx(got, want, 1e-12) {
			t.Fatalf("DotDense %g != dense %g", got, want)
		}
		y1, y2 := w.Clone(), w.Clone()
		d.AxpyDense(-0.7, y1)
		Axpy(-0.7, dd, y2)
		if !Equal(y1, y2, 1e-12) {
			t.Fatal("AxpyDense disagrees with dense Axpy")
		}
	}
}

func TestDeltaMergeFrom(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 100; trial++ {
		n := 5 + rng.Intn(60)
		a := randDelta(rng, n, 1+rng.Intn(n))
		b := randDelta(rng, n, 1+rng.Intn(n))
		want := a.Dense()
		Axpy(1, b.Dense(), want)
		bCopy := b.Clone()
		a.MergeFrom(b)
		// result sorted, unique, matches the dense sum
		for k := 1; k < len(a.Idx); k++ {
			if a.Idx[k] <= a.Idx[k-1] {
				t.Fatalf("merge broke ordering at %d: %v", k, a.Idx)
			}
		}
		if !Equal(a.Dense(), want, 1e-12) {
			t.Fatal("merge result disagrees with dense sum")
		}
		// b untouched
		if len(b.Idx) != len(bCopy.Idx) || !Equal(b.Dense(), bCopy.Dense(), 0) {
			t.Fatal("MergeFrom mutated its argument")
		}
	}
}

func TestDeltaAccumMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 120
	acc := NewDeltaAccum(n)
	for trial := 0; trial < 30; trial++ {
		acc.Reset()
		dense := NewVec(n)
		for s := 0; s < 15; s++ {
			row := randDelta(rng, n, 1+rng.Intn(12))
			alpha := rng.NormFloat64()
			acc.Accum(alpha, row.Idx, row.Val)
			GradAccum(alpha, row.Idx, row.Val, dense)
		}
		d := acc.Compact()
		for k := 1; k < len(d.Idx); k++ {
			if d.Idx[k] <= d.Idx[k-1] {
				t.Fatalf("Compact broke ordering: %v", d.Idx)
			}
		}
		if !Equal(d.Dense(), dense, 0) {
			t.Fatal("accumulated delta disagrees bitwise with dense scatter")
		}
		PutDelta(d)
	}
}

// TestDeltaAccumSteadyStateAllocFree pins the sparse inner loop to zero
// allocations once the touched list and the pool are warm — the sparse-path
// counterpart of the dense zero-allocation invariant.
func TestDeltaAccumSteadyStateAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n := 500
	acc := NewDeltaAccum(n)
	rows := make([]*DeltaVec, 20)
	for i := range rows {
		rows[i] = randDelta(rng, n, 25)
	}
	work := func() {
		acc.Reset()
		for _, r := range rows {
			acc.Accum(0.5, r.Idx, r.Val)
		}
		PutDelta(acc.Compact())
	}
	work() // warm the touched list and the pool
	if allocs := testing.AllocsPerRun(100, work); allocs != 0 {
		t.Errorf("sparse accumulate+compact allocates %v per task, want 0", allocs)
	}
}

func TestSortInt32(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(300)
		s := make([]int32, n)
		for i := range s {
			s[i] = int32(rng.Intn(50)) // duplicates on purpose
		}
		want := append([]int32(nil), s...)
		sort.Slice(want, func(a, b int) bool { return want[a] < want[b] })
		sortInt32(s)
		for i := range s {
			if s[i] != want[i] {
				t.Fatalf("sortInt32 wrong at %d: %v vs %v", i, s, want)
			}
		}
	}
}

func TestDeltaPoolRoundTrip(t *testing.T) {
	d := GetDelta(8, 100)
	if d.NNZ() != 8 || d.N != 100 {
		t.Fatalf("GetDelta shape (%d,%d)", d.NNZ(), d.N)
	}
	PutDelta(d)
	PutDelta(nil) // no-op
	e := GetDelta(4, 50)
	if e.NNZ() != 4 || e.N != 50 {
		t.Fatalf("recycled shape (%d,%d)", e.NNZ(), e.N)
	}
	PutDelta(e)
}

func approx(a, b, tol float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= tol*(1+abs(a)+abs(b))
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
