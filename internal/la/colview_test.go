package la

import (
	"math/rand"
	"testing"
)

// randCSR builds a random sparse matrix with nnzPerRow stored entries per
// row (distinct columns, ascending).
func randCSR(rows, cols, nnzPerRow int, seed int64) *CSR {
	rng := rand.New(rand.NewSource(seed))
	m := NewCSR(rows, cols, rows*nnzPerRow)
	idx := make([]int32, 0, nnzPerRow)
	val := make([]float64, 0, nnzPerRow)
	for i := 0; i < rows; i++ {
		idx, val = idx[:0], val[:0]
		seen := map[int32]bool{}
		for len(idx) < nnzPerRow {
			j := int32(rng.Intn(cols))
			if seen[j] {
				continue
			}
			seen[j] = true
			idx = append(idx, j)
		}
		sortInt32(idx)
		for range idx {
			val = append(val, rng.NormFloat64())
		}
		if err := m.AppendRow(SparseVec{Idx: append([]int32(nil), idx...), Val: append([]float64(nil), val...), N: cols}); err != nil {
			panic(err)
		}
	}
	return m
}

// TestColViewMatchesDense checks every view accessor against a dense
// reconstruction of the matrix.
func TestColViewMatchesDense(t *testing.T) {
	const rows, cols, nnz = 60, 40, 5
	m := randCSR(rows, cols, nnz, 7)
	v := NewColView(m)

	dense := make([][]float64, rows)
	total := 0
	for i := 0; i < rows; i++ {
		dense[i] = make([]float64, cols)
		idx, val := m.RowNZ(i)
		for k, j := range idx {
			dense[i][j] = val[k]
		}
		total += len(idx)
	}
	if v.NNZ() != total {
		t.Fatalf("NNZ = %d, want %d", v.NNZ(), total)
	}

	for j := int32(0); j < cols; j++ {
		rowsJ, valsJ := v.Col(j)
		got := map[int32]float64{}
		for k, i := range rowsJ {
			if _, dup := got[i]; dup {
				t.Fatalf("col %d lists row %d twice", j, i)
			}
			got[i] = valsJ[k]
		}
		var sq float64
		for i := 0; i < rows; i++ {
			x := dense[i][int32(j)]
			sq += x * x
			if x == 0 {
				if _, ok := got[int32(i)]; ok && got[int32(i)] != 0 {
					t.Fatalf("col %d row %d: stored %v, dense 0", j, i, got[int32(i)])
				}
				continue
			}
			if got[int32(i)] != x {
				t.Fatalf("col %d row %d: stored %v, dense %v", j, i, got[int32(i)], x)
			}
		}
		if s := v.ColSqSum(j); s != sq && !(s-sq < 1e-12 && sq-s < 1e-12) {
			t.Fatalf("ColSqSum(%d) = %v, want %v", j, s, sq)
		}
	}
	if r, vv := v.Col(int32(cols + 5)); r != nil || vv != nil {
		t.Fatal("absent column returned stored entries")
	}
}

// TestColViewApplyDelta pins the residual-maintenance identity: advancing
// r by a coordinate delta through the column view equals recomputing
// X·(w + δ) from scratch, to rounding.
func TestColViewApplyDelta(t *testing.T) {
	const rows, cols, nnz = 80, 50, 6
	m := randCSR(rows, cols, nnz, 11)
	v := NewColView(m)
	rng := rand.New(rand.NewSource(3))

	w := NewVec(cols)
	for j := range w {
		w[j] = rng.NormFloat64()
	}
	r := NewVec(rows)
	m.MatVec(w, r)

	dv := &DeltaVec{N: cols}
	for j := 0; j < cols; j += 7 {
		dv.Idx = append(dv.Idx, int32(j))
		dv.Val = append(dv.Val, rng.NormFloat64())
	}
	v.ApplyDelta(dv, r)
	dv.AxpyDense(1, w)

	want := NewVec(rows)
	m.MatVec(w, want)
	if !Equal(r, want, 1e-12) {
		t.Fatal("incrementally maintained residuals diverged from recompute")
	}
}
