package la

import (
	"math/rand"
	"sort"
	"testing"
)

// TestTopAbsSelectsLargest checks the quickselect cut against a full sort
// across sizes, k values, and duplicate-heavy inputs.
func TestTopAbsSelectsLargest(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(200)
		k := rng.Intn(n + 10)
		idx := make([]int32, n)
		val := make([]float64, n)
		for i := range val {
			idx[i] = int32(i)
			if trial%3 == 0 {
				val[i] = float64(rng.Intn(4)) - 2 // heavy ties
			} else {
				val[i] = rng.NormFloat64()
			}
		}
		want := append([]float64(nil), val...)
		sort.Slice(want, func(a, b int) bool { return absf(want[a]) > absf(want[b]) })

		cut := TopAbs(idx, val, k)
		wantCut := k
		if wantCut > n {
			wantCut = n
		}
		if cut != wantCut {
			t.Fatalf("trial %d: cut %d, want %d", trial, cut, wantCut)
		}
		got := append([]float64(nil), val[:cut]...)
		sort.Slice(got, func(a, b int) bool { return absf(got[a]) > absf(got[b]) })
		for i := range got {
			// compare magnitudes: ties may resolve to either signed value
			if absf(got[i]) != absf(want[i]) {
				t.Fatalf("trial %d rank %d: |%v| != |%v|", trial, i, got[i], want[i])
			}
		}
	}
}

// TestTopAbsPairsStayParallel: after selection, each index still carries the
// value it started with.
func TestTopAbsPairsStayParallel(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(300)
		k := 1 + rng.Intn(n)
		idx := make([]int32, n)
		val := make([]float64, n)
		orig := map[int32]float64{}
		for i := range val {
			idx[i] = int32(i)
			val[i] = rng.NormFloat64()
			orig[idx[i]] = val[i]
		}
		cut := TopAbs(idx, val, k)
		for i := 0; i < cut; i++ {
			if val[i] != orig[idx[i]] {
				t.Fatalf("trial %d: idx %d carries %v, want %v", trial, idx[i], val[i], orig[idx[i]])
			}
		}
	}
}

func TestSortPairsByIdx(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 100; trial++ {
		n := rng.Intn(400)
		idx := make([]int32, n)
		val := make([]float64, n)
		orig := map[int32]float64{}
		perm := rng.Perm(n)
		for i, p := range perm {
			idx[i] = int32(p)
			val[i] = rng.NormFloat64()
			orig[idx[i]] = val[i]
		}
		SortPairsByIdx(idx, val)
		for i := range idx {
			if i > 0 && idx[i] <= idx[i-1] {
				t.Fatalf("trial %d: unsorted at %d: %d after %d", trial, i, idx[i], idx[i-1])
			}
			if val[i] != orig[idx[i]] {
				t.Fatalf("trial %d: idx %d carries %v, want %v", trial, idx[i], val[i], orig[idx[i]])
			}
		}
	}
}

func TestSelectAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	idx := make([]int32, 4096)
	val := make([]float64, 4096)
	reset := func() {
		for i := range idx {
			idx[i] = int32(rng.Intn(1 << 20))
			val[i] = rng.NormFloat64()
		}
	}
	reset()
	if a := testing.AllocsPerRun(20, func() { TopAbs(idx, val, 128); reset() }); a != 0 {
		t.Errorf("TopAbs allocates %v per run, want 0", a)
	}
	if a := testing.AllocsPerRun(20, func() { SortPairsByIdx(idx, val); reset() }); a != 0 {
		t.Errorf("SortPairsByIdx allocates %v per run, want 0", a)
	}
}
