package la

import (
	"fmt"
	"sort"
)

// SparseVec is a sparse vector in coordinate form with strictly increasing
// indices. It is the row view handed to gradient kernels; dense rows are
// represented with a full index set so the kernels need a single code path.
type SparseVec struct {
	Idx []int32   // strictly increasing column indices
	Val []float64 // values, len(Val) == len(Idx)
	N   int       // logical dimension
}

// NewSparseVec builds a sparse vector from parallel index/value slices.
// The indices must be strictly increasing and within [0, n).
func NewSparseVec(n int, idx []int32, val []float64) (SparseVec, error) {
	if len(idx) != len(val) {
		return SparseVec{}, fmt.Errorf("la: sparse vec idx/val length mismatch %d != %d", len(idx), len(val))
	}
	prev := int32(-1)
	for _, j := range idx {
		if j <= prev || int(j) >= n {
			return SparseVec{}, fmt.Errorf("la: sparse vec index %d out of order or out of range [0,%d)", j, n)
		}
		prev = j
	}
	return SparseVec{Idx: idx, Val: val, N: n}, nil
}

// NNZ returns the number of stored (non-zero) entries.
func (s SparseVec) NNZ() int { return len(s.Idx) }

// Dense expands s into a freshly allocated dense vector.
func (s SparseVec) Dense() Vec {
	v := NewVec(s.N)
	for k, j := range s.Idx {
		v[j] = s.Val[k]
	}
	return v
}

// DotDense returns the inner product of the sparse vector with a dense one.
// It delegates to the unrolled SparseDot kernel.
func (s SparseVec) DotDense(d Vec) float64 {
	if s.N != len(d) {
		panic(fmt.Sprintf("la: sparse DotDense dim mismatch %d != %d", s.N, len(d)))
	}
	return SparseDot(s.Idx, s.Val, d)
}

// AxpyDense computes y += alpha * s for dense y. It delegates to the
// unrolled GradAccum kernel.
func (s SparseVec) AxpyDense(alpha float64, y Vec) {
	if s.N != len(y) {
		panic(fmt.Sprintf("la: sparse AxpyDense dim mismatch %d != %d", s.N, len(y)))
	}
	GradAccum(alpha, s.Idx, s.Val, y)
}

// Norm2Sq returns the squared Euclidean norm of s.
func (s SparseVec) Norm2Sq() float64 {
	var acc float64
	for _, v := range s.Val {
		acc += v * v
	}
	return acc
}

// SparseFromDense converts a dense vector into sparse form, dropping zeros.
func SparseFromDense(d Vec) SparseVec {
	var idx []int32
	var val []float64
	for j, x := range d {
		if x != 0 {
			idx = append(idx, int32(j))
			val = append(val, x)
		}
	}
	return SparseVec{Idx: idx, Val: val, N: len(d)}
}

// SparseFromMap builds a sparse vector from a map of index to value,
// dropping explicit zeros and sorting indices.
func SparseFromMap(n int, m map[int32]float64) SparseVec {
	idx := make([]int32, 0, len(m))
	for j, v := range m {
		if v != 0 {
			idx = append(idx, j)
		}
	}
	sort.Slice(idx, func(a, b int) bool { return idx[a] < idx[b] })
	val := make([]float64, len(idx))
	for k, j := range idx {
		val[k] = m[j]
	}
	return SparseVec{Idx: idx, Val: val, N: n}
}
