package la

import "sort"

// ColView is a column-major index over a CSR's stored entries — the
// incremental-maintenance substrate of the coordinate-descent family. A CSR
// answers "which columns does row i touch" in O(1); coordinate methods need
// the transpose question, "which rows does column j touch", to keep
// per-row inner products r_i = x_i·w exact under sparse coordinate updates:
// when w_j changes by δ, only the rows storing column j move, each by
// δ·x_ij — O(nnz(column j)) instead of O(n·d).
//
// The view stores only the distinct columns present (row partitions of a
// wide sparse matrix touch a small fraction of the dimension), so memory is
// O(nnz + distinct columns) and lookup is a binary search over the distinct
// set.
type ColView struct {
	Cols   []int32   // sorted distinct column ids present in the matrix
	Starts []int32   // len(Cols)+1 offsets into Rows/Vals
	Rows   []int32   // row ids, grouped by column
	Vals   []float64 // matching stored values
}

// NewColView builds the column index of m in O(nnz·log c) for c distinct
// columns.
func NewColView(m *CSR) *ColView {
	nnz := int(m.RowPtr[m.NumRows])
	cols := make([]int32, nnz)
	copy(cols, m.ColIdx[:nnz])
	sortInt32(cols)
	distinct := cols[:0]
	for i, c := range cols {
		if i == 0 || c != distinct[len(distinct)-1] {
			distinct = append(distinct, c)
		}
	}
	v := &ColView{
		Cols:   append([]int32(nil), distinct...),
		Starts: make([]int32, len(distinct)+1),
		Rows:   make([]int32, nnz),
		Vals:   make([]float64, nnz),
	}
	// counting pass, then place each entry at its column's cursor
	counts := make([]int32, len(v.Cols))
	for i := 0; i < m.NumRows; i++ {
		for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
			counts[v.slot(m.ColIdx[p])]++
		}
	}
	for k, c := range counts {
		v.Starts[k+1] = v.Starts[k] + c
	}
	cursor := append([]int32(nil), v.Starts[:len(v.Cols)]...)
	for i := 0; i < m.NumRows; i++ {
		for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
			k := v.slot(m.ColIdx[p])
			v.Rows[cursor[k]] = int32(i)
			v.Vals[cursor[k]] = m.Val[p]
			cursor[k]++
		}
	}
	return v
}

// Slot returns the dense index of column j in Cols, or -1 when absent —
// the handle external column indexes (maxip) key their per-column state on.
func (v *ColView) Slot(j int32) int { return v.slot(j) }

// slot returns the dense index of column j in Cols, or -1 when absent.
func (v *ColView) slot(j int32) int {
	k := sort.Search(len(v.Cols), func(i int) bool { return v.Cols[i] >= j })
	if k < len(v.Cols) && v.Cols[k] == j {
		return k
	}
	return -1
}

// Col returns the rows and stored values of column j (nil, nil when the
// column has no stored entries). The slices alias the view; callers must
// not mutate them.
func (v *ColView) Col(j int32) (rows []int32, vals []float64) {
	k := v.slot(j)
	if k < 0 {
		return nil, nil
	}
	return v.Rows[v.Starts[k]:v.Starts[k+1]], v.Vals[v.Starts[k]:v.Starts[k+1]]
}

// NNZ returns the number of stored entries.
func (v *ColView) NNZ() int { return len(v.Rows) }

// AxpyCol performs r[rows(j)] += delta·x_ij over column j's stored entries
// — the O(nnz(column)) residual maintenance step after coordinate j moved
// by delta.
func (v *ColView) AxpyCol(j int32, delta float64, r Vec) {
	rows, vals := v.Col(j)
	for t, i := range rows {
		r[i] += delta * vals[t]
	}
}

// ApplyDelta folds a sparse coordinate update into the per-row inner
// products: for every (j, δ_j) in dv, r[rows(j)] += δ_j·x_ij. Cost is the
// total stored nnz of the changed columns.
func (v *ColView) ApplyDelta(dv *DeltaVec, r Vec) {
	for k, j := range dv.Idx {
		v.AxpyCol(j, dv.Val[k], r)
	}
}

// ColSqSum returns Σ_i x_ij² over column j's stored entries — the
// data-constant factor of diagonal curvature preconditioning.
func (v *ColView) ColSqSum(j int32) float64 {
	_, vals := v.Col(j)
	var s float64
	for _, x := range vals {
		s += x * x
	}
	return s
}
