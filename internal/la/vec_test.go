package la

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDot(t *testing.T) {
	a := Vec{1, 2, 3}
	b := Vec{4, 5, 6}
	if got := Dot(a, b); got != 32 {
		t.Fatalf("Dot = %v, want 32", got)
	}
}

func TestDotEmpty(t *testing.T) {
	if got := Dot(Vec{}, Vec{}); got != 0 {
		t.Fatalf("Dot(empty) = %v, want 0", got)
	}
}

func TestDotMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	Dot(Vec{1}, Vec{1, 2})
}

func TestAxpy(t *testing.T) {
	x := Vec{1, 2, 3}
	y := Vec{10, 20, 30}
	Axpy(2, x, y)
	want := Vec{12, 24, 36}
	if !Equal(y, want, 0) {
		t.Fatalf("Axpy = %v, want %v", y, want)
	}
}

func TestScale(t *testing.T) {
	v := Vec{1, -2, 3}
	Scale(-3, v)
	if !Equal(v, Vec{-3, 6, -9}, 0) {
		t.Fatalf("Scale = %v", v)
	}
}

func TestAddSubInto(t *testing.T) {
	a := Vec{1, 2}
	b := Vec{3, 5}
	dst := NewVec(2)
	AddInto(dst, a, b)
	if !Equal(dst, Vec{4, 7}, 0) {
		t.Fatalf("AddInto = %v", dst)
	}
	SubInto(dst, a, b)
	if !Equal(dst, Vec{-2, -3}, 0) {
		t.Fatalf("SubInto = %v", dst)
	}
}

func TestNorms(t *testing.T) {
	v := Vec{3, -4}
	if got := Norm2(v); math.Abs(got-5) > 1e-15 {
		t.Fatalf("Norm2 = %v, want 5", got)
	}
	if got := NormInf(v); got != 4 {
		t.Fatalf("NormInf = %v, want 4", got)
	}
}

func TestCloneIndependent(t *testing.T) {
	v := Vec{1, 2, 3}
	w := v.Clone()
	w[0] = 99
	if v[0] != 1 {
		t.Fatal("Clone shares storage")
	}
}

func TestZero(t *testing.T) {
	v := Vec{1, 2, 3}
	v.Zero()
	if !Equal(v, Vec{0, 0, 0}, 0) {
		t.Fatalf("Zero = %v", v)
	}
}

func TestCopyFrom(t *testing.T) {
	v := NewVec(3)
	v.CopyFrom(Vec{7, 8, 9})
	if !Equal(v, Vec{7, 8, 9}, 0) {
		t.Fatalf("CopyFrom = %v", v)
	}
}

func clampVec(v []float64) Vec {
	out := make(Vec, len(v))
	for i, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			x = 1
		}
		// keep magnitudes small so property checks avoid float overflow
		out[i] = math.Mod(x, 1e6)
	}
	return out
}

func TestPropDotCommutative(t *testing.T) {
	f := func(raw []float64) bool {
		a := clampVec(raw)
		b := clampVec(raw)
		for i := range b {
			b[i] = b[i]*0.5 + 1
		}
		return Dot(a, b) == Dot(b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropAxpyLinearity(t *testing.T) {
	// y + a*x + b*x == y + (a+b)*x up to float tolerance.
	f := func(raw []float64, a, b float64) bool {
		if math.IsNaN(a) || math.IsInf(a, 0) {
			a = 0.5
		}
		if math.IsNaN(b) || math.IsInf(b, 0) {
			b = 0.25
		}
		a = math.Mod(a, 100)
		b = math.Mod(b, 100)
		x := clampVec(raw)
		y1 := NewVec(len(x))
		y2 := NewVec(len(x))
		Axpy(a, x, y1)
		Axpy(b, x, y1)
		Axpy(a+b, x, y2)
		for i := range y1 {
			scale := math.Abs(y2[i]) + 1
			if math.Abs(y1[i]-y2[i]) > 1e-9*scale {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropNorm2NonNegative(t *testing.T) {
	f := func(raw []float64) bool {
		v := clampVec(raw)
		n := Norm2(v)
		return n >= 0 && !math.IsNaN(n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropTriangleInequality(t *testing.T) {
	f := func(raw []float64) bool {
		a := clampVec(raw)
		b := make(Vec, len(a))
		for i := range b {
			b[i] = -0.3*a[i] + 2
		}
		sum := NewVec(len(a))
		AddInto(sum, a, b)
		return Norm2(sum) <= Norm2(a)+Norm2(b)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
