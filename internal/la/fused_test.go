package la

import (
	"math"
	"math/rand"
	"testing"
)

// Naive reference implementations the unrolled kernels are checked against.

func naiveDot(a, b Vec) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

func naiveSparseDot(idx []int32, val []float64, w Vec) float64 {
	var s float64
	for k, j := range idx {
		s += val[k] * w[j]
	}
	return s
}

func randVec(rng *rand.Rand, n int) Vec {
	v := NewVec(n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

func randSparse(rng *rand.Rand, n, nnz int) ([]int32, []float64) {
	seen := map[int32]bool{}
	for len(seen) < nnz {
		seen[int32(rng.Intn(n))] = true
	}
	idx := make([]int32, 0, nnz)
	for j := int32(0); int(j) < n; j++ {
		if seen[j] {
			idx = append(idx, j)
		}
	}
	val := make([]float64, len(idx))
	for k := range val {
		val[k] = rng.NormFloat64()
	}
	return idx, val
}

func close(t *testing.T, name string, got, want float64) {
	t.Helper()
	scale := math.Max(1, math.Abs(want))
	if math.Abs(got-want) > 1e-9*scale {
		t.Fatalf("%s: got %v want %v", name, got, want)
	}
}

// TestFusedAgainstNaive is the property test: across many random lengths
// (including the 0..3 unroll remainders) every fused/unrolled kernel must
// agree with its naive one-pass counterpart.
func TestFusedAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	lengths := []int{0, 1, 2, 3, 4, 5, 7, 8, 15, 64, 129, 1000}
	for _, n := range lengths {
		a, b := randVec(rng, n), randVec(rng, n)
		close(t, "Dot", Dot(a, b), naiveDot(a, b))

		alpha := rng.NormFloat64()
		y, yRef := b.Clone(), b.Clone()
		Axpy(alpha, a, y)
		for i := range yRef {
			yRef[i] += alpha * a[i]
		}
		if !Equal(y, yRef, 1e-12) {
			t.Fatalf("Axpy n=%d: %v != %v", n, y, yRef)
		}

		y, yRef = b.Clone(), b.Clone()
		rs := DotAxpy(alpha, a, y)
		for i := range yRef {
			yRef[i] += alpha * a[i]
		}
		if !Equal(y, yRef, 1e-12) {
			t.Fatalf("DotAxpy update n=%d", n)
		}
		close(t, "DotAxpy norm", rs, naiveDot(yRef, yRef))

		ca, cb := rng.NormFloat64(), rng.NormFloat64()
		dst := NewVec(n)
		ScaleAddInto(dst, ca, a, cb, b)
		for i := range dst {
			close(t, "ScaleAddInto", dst[i], ca*a[i]+cb*b[i])
		}
		// aliased form: dst == y (the momentum update pattern)
		self := a.Clone()
		ScaleAddInto(self, ca, self, cb, b)
		for i := range self {
			close(t, "ScaleAddInto aliased", self[i], ca*a[i]+cb*b[i])
		}

		if n == 0 {
			continue
		}
		idx, val := randSparse(rng, n, 1+rng.Intn(n))
		w := randVec(rng, n)
		close(t, "SparseDot", SparseDot(idx, val, w), naiveSparseDot(idx, val, w))

		g, gRef := randVec(rng, n), NewVec(n)
		gRef.CopyFrom(g)
		GradAccum(alpha, idx, val, g)
		for k, j := range idx {
			gRef[j] += alpha * val[k]
		}
		if !Equal(g, gRef, 1e-12) {
			t.Fatalf("GradAccum n=%d", n)
		}
	}
}

// TestRowNZMatchesRow checks that RowNZ exposes exactly the slices of the
// Row view, for every row of a random matrix.
func TestRowNZMatchesRow(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const rows, cols = 40, 30
	m := NewCSR(rows, cols, rows*5)
	for i := 0; i < rows; i++ {
		idx, val := randSparse(rng, cols, 1+rng.Intn(8))
		sv, err := NewSparseVec(cols, idx, val)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.AppendRow(sv); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < rows; i++ {
		r := m.Row(i)
		idx, val := m.RowNZ(i)
		if len(idx) != len(r.Idx) || len(val) != len(r.Val) {
			t.Fatalf("row %d: RowNZ lengths (%d,%d) != Row (%d,%d)", i, len(idx), len(val), len(r.Idx), len(r.Val))
		}
		for k := range idx {
			if idx[k] != r.Idx[k] || val[k] != r.Val[k] {
				t.Fatalf("row %d entry %d: RowNZ (%d,%v) != Row (%d,%v)", i, k, idx[k], val[k], r.Idx[k], r.Val[k])
			}
		}
	}
}

// TestKernelsAllocFree locks in the package's zero-allocation invariant for
// every kernel on the gradient hot path.
func TestKernelsAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const n = 512
	a, b, dst := randVec(rng, n), randVec(rng, n), NewVec(n)
	idx, val := randSparse(rng, n, 64)
	m := NewCSR(4, n, 4*64)
	for i := 0; i < 4; i++ {
		sv, _ := NewSparseVec(n, idx, val)
		if err := m.AppendRow(sv); err != nil {
			t.Fatal(err)
		}
	}
	x, y := randVec(rng, n), NewVec(4)
	var sink float64
	checks := map[string]func(){
		"Dot":          func() { sink += Dot(a, b) },
		"Axpy":         func() { Axpy(0.5, a, b) },
		"DotAxpy":      func() { sink += DotAxpy(0.5, a, b) },
		"ScaleAddInto": func() { ScaleAddInto(dst, 0.5, a, 0.25, b) },
		"SparseDot":    func() { sink += SparseDot(idx, val, a) },
		"GradAccum":    func() { GradAccum(0.5, idx, val, dst) },
		"RowNZ":        func() { i, v := m.RowNZ(2); sink += float64(len(i)) + v[0] },
		"Row+DotDense": func() { sink += m.Row(1).DotDense(a) },
		"MatVec":       func() { m.MatVec(x, y) },
	}
	for name, f := range checks {
		if allocs := testing.AllocsPerRun(100, f); allocs != 0 {
			t.Errorf("%s allocates %v per run, want 0", name, allocs)
		}
	}
	_ = sink
}

// TestVecPool checks the recycle contract: a returned vector of the same
// length comes back zeroed, and Get/Put cycles settle to zero allocations.
func TestVecPool(t *testing.T) {
	v := GetVec(33)
	for i := range v {
		v[i] = float64(i + 1)
	}
	PutVec(v)
	w := GetVec(33)
	for i, x := range w {
		if x != 0 {
			t.Fatalf("pooled vector not zeroed at %d: %v", i, x)
		}
	}
	if &w[0] != &v[0] {
		t.Fatalf("expected GetVec to reuse the pooled backing array")
	}
	PutVec(w)
	PutVec(nil) // no-op
	if allocs := testing.AllocsPerRun(100, func() {
		u := GetVec(33)
		PutVec(u)
	}); allocs != 0 {
		t.Errorf("steady-state GetVec/PutVec allocates %v per run, want 0", allocs)
	}
	// different length falls back to a fresh allocation but must still work
	u := GetVec(21)
	if len(u) != 21 {
		t.Fatalf("GetVec(21) returned len %d", len(u))
	}
	PutVec(u)
}
