// Package la provides the dense and sparse linear-algebra substrate used by
// the ASYNC reproduction: BLAS-1/2 style kernels over dense vectors,
// compressed sparse rows, and a conjugate-gradient solver used to compute
// reference optima for the least-squares experiments.
//
// The package is a pure-Go stand-in for the Breeze/netlib BLAS stack the
// paper uses; the kernels are deliberately allocation-free on the hot paths
// so that per-task compute time in the simulated cluster is dominated by
// arithmetic, as it is on a real worker.
//
// Zero-allocation invariant: every kernel on the gradient hot path — Dot,
// Axpy, the fused DotAxpy/ScaleAddInto, SparseDot, GradAccum, the
// CSR.Row/RowNZ views, MatVec, and steady-state ConjGrad — performs zero
// heap allocations (asserted by TestKernelsAllocFree with
// testing.AllocsPerRun). Vectors that must outlive a call come from the
// GetVec/PutVec pool, which recycles storage across tasks; everything else
// is caller-provided or O(1). Treat this as API: a change that makes any
// of these allocate is a regression, and the CI bench job will surface it
// as ns/gradient and allocs/op movement in BENCH_*.json.
//
// Sparse-delta invariant: the O(nnz) data path is built from DeltaVec (a
// pooled, mutable sparse update with sorted indices — GetDelta/PutDelta
// mirror the dense pool) and DeltaAccum (a generation-stamped scatter
// accumulator whose Reset is O(1) and whose Compact radix-sorts only the
// touched coordinate set). A task that accumulates s samples of at most k
// nonzeros costs O(s·k) plus O(t) compaction for t distinct touched
// coordinates — never O(dimension) — and, like the dense path, allocates
// nothing in steady state (TestDeltaAccumSteadyStateAllocFree,
// TestSparseGradKernelZeroAlloc in internal/opt). When the sparse path
// engages, which update terms may be deferred, and how deltas travel the
// wire are contracts of internal/opt (SparseDensityThreshold, lazy.go) and
// internal/cluster (codec.go) respectively.
package la

import (
	"fmt"
	"math"
)

// Vec is a dense vector of float64.
type Vec []float64

// NewVec returns a zeroed dense vector of length n.
func NewVec(n int) Vec { return make(Vec, n) }

// Clone returns a copy of v.
func (v Vec) Clone() Vec {
	w := make(Vec, len(v))
	copy(w, v)
	return w
}

// Zero sets every element of v to zero.
func (v Vec) Zero() {
	for i := range v {
		v[i] = 0
	}
}

// CopyFrom copies src into v. It panics if the lengths differ.
func (v Vec) CopyFrom(src Vec) {
	if len(v) != len(src) {
		panic(fmt.Sprintf("la: CopyFrom length mismatch %d != %d", len(v), len(src)))
	}
	copy(v, src)
}

// Dot returns the inner product of two dense vectors (4-way unrolled).
func Dot(a, b Vec) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("la: Dot length mismatch %d != %d", len(a), len(b)))
	}
	var s0, s1, s2, s3 float64
	i := 0
	for ; i < len(a)-3; i += 4 {
		s0 += a[i] * b[i]
		s1 += a[i+1] * b[i+1]
		s2 += a[i+2] * b[i+2]
		s3 += a[i+3] * b[i+3]
	}
	for ; i < len(a); i++ {
		s0 += a[i] * b[i]
	}
	return (s0 + s1) + (s2 + s3)
}

// Axpy computes y += alpha*x in place (4-way unrolled).
func Axpy(alpha float64, x, y Vec) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("la: Axpy length mismatch %d != %d", len(x), len(y)))
	}
	i := 0
	for ; i < len(x)-3; i += 4 {
		y[i] += alpha * x[i]
		y[i+1] += alpha * x[i+1]
		y[i+2] += alpha * x[i+2]
		y[i+3] += alpha * x[i+3]
	}
	for ; i < len(x); i++ {
		y[i] += alpha * x[i]
	}
}

// Scale multiplies every element of v by alpha in place.
func Scale(alpha float64, v Vec) {
	for i := range v {
		v[i] *= alpha
	}
}

// AddInto sets dst = a + b.
func AddInto(dst, a, b Vec) {
	if len(dst) != len(a) || len(a) != len(b) {
		panic("la: AddInto length mismatch")
	}
	for i := range dst {
		dst[i] = a[i] + b[i]
	}
}

// SubInto sets dst = a - b.
func SubInto(dst, a, b Vec) {
	if len(dst) != len(a) || len(a) != len(b) {
		panic("la: SubInto length mismatch")
	}
	for i := range dst {
		dst[i] = a[i] - b[i]
	}
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v Vec) float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// Norm1 returns the ℓ1 norm Σ|v_i| of v.
func Norm1(v Vec) float64 {
	var s float64
	for _, x := range v {
		s += math.Abs(x)
	}
	return s
}

// NormInf returns the max-absolute-value norm of v.
func NormInf(v Vec) float64 {
	var m float64
	for _, x := range v {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}

// Equal reports whether a and b have the same length and elements within tol.
func Equal(a, b Vec, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > tol {
			return false
		}
	}
	return true
}
