package la

import "fmt"

// CSR is a compressed-sparse-row matrix. It is the storage format for every
// dataset in the reproduction; dense datasets simply store every column of
// every row. Row i occupies Val[RowPtr[i]:RowPtr[i+1]] with column indices
// ColIdx[RowPtr[i]:RowPtr[i+1]].
type CSR struct {
	NumRows int
	NumCols int
	RowPtr  []int64
	ColIdx  []int32
	Val     []float64
}

// NewCSR allocates an empty CSR with capacity hints.
func NewCSR(rows, cols int, nnzHint int) *CSR {
	return &CSR{
		NumRows: rows,
		NumCols: cols,
		RowPtr:  make([]int64, 1, rows+1),
		ColIdx:  make([]int32, 0, nnzHint),
		Val:     make([]float64, 0, nnzHint),
	}
}

// AppendRow appends a row given by a sparse vector. The matrix must have been
// created with NewCSR; rows are appended in order.
func (m *CSR) AppendRow(r SparseVec) error {
	if r.N != m.NumCols {
		return fmt.Errorf("la: AppendRow dim mismatch %d != %d", r.N, m.NumCols)
	}
	if len(m.RowPtr)-1 >= m.NumRows {
		return fmt.Errorf("la: AppendRow matrix already has %d rows", m.NumRows)
	}
	m.ColIdx = append(m.ColIdx, r.Idx...)
	m.Val = append(m.Val, r.Val...)
	m.RowPtr = append(m.RowPtr, int64(len(m.Val)))
	return nil
}

// Complete reports whether all declared rows have been appended.
func (m *CSR) Complete() bool { return len(m.RowPtr)-1 == m.NumRows }

// NNZ returns the number of stored entries.
func (m *CSR) NNZ() int { return len(m.Val) }

// Row returns a zero-copy sparse view of row i.
func (m *CSR) Row(i int) SparseVec {
	lo, hi := m.RowPtr[i], m.RowPtr[i+1]
	return SparseVec{Idx: m.ColIdx[lo:hi], Val: m.Val[lo:hi], N: m.NumCols}
}

// RowNZ returns the raw index/value slices of row i without materialising a
// SparseVec view — the zero-overhead row access the gradient inner loops
// pair with SparseDot and GradAccum.
func (m *CSR) RowNZ(i int) ([]int32, []float64) {
	lo, hi := m.RowPtr[i], m.RowPtr[i+1]
	return m.ColIdx[lo:hi], m.Val[lo:hi]
}

// MatVec computes y = A x for dense x, y. y must have length NumRows.
func (m *CSR) MatVec(x, y Vec) {
	if len(x) != m.NumCols || len(y) != m.NumRows {
		panic(fmt.Sprintf("la: MatVec dims (%d,%d) vs x=%d y=%d", m.NumRows, m.NumCols, len(x), len(y)))
	}
	for i := 0; i < m.NumRows; i++ {
		lo, hi := m.RowPtr[i], m.RowPtr[i+1]
		var acc float64
		for k := lo; k < hi; k++ {
			acc += m.Val[k] * x[m.ColIdx[k]]
		}
		y[i] = acc
	}
}

// MatTVec computes y = Aᵀ x for dense x, y. y must have length NumCols.
func (m *CSR) MatTVec(x, y Vec) {
	if len(x) != m.NumRows || len(y) != m.NumCols {
		panic(fmt.Sprintf("la: MatTVec dims (%d,%d) vs x=%d y=%d", m.NumRows, m.NumCols, len(x), len(y)))
	}
	y.Zero()
	for i := 0; i < m.NumRows; i++ {
		lo, hi := m.RowPtr[i], m.RowPtr[i+1]
		xi := x[i]
		if xi == 0 {
			continue
		}
		for k := lo; k < hi; k++ {
			y[m.ColIdx[k]] += m.Val[k] * xi
		}
	}
}

// SliceRows returns a new CSR holding rows [lo, hi) of m. The returned matrix
// shares no storage with m (used when shipping partitions to workers).
func (m *CSR) SliceRows(lo, hi int) *CSR {
	if lo < 0 || hi > m.NumRows || lo > hi {
		panic(fmt.Sprintf("la: SliceRows [%d,%d) out of range 0..%d", lo, hi, m.NumRows))
	}
	s, e := m.RowPtr[lo], m.RowPtr[hi]
	out := &CSR{
		NumRows: hi - lo,
		NumCols: m.NumCols,
		RowPtr:  make([]int64, hi-lo+1),
		ColIdx:  append([]int32(nil), m.ColIdx[s:e]...),
		Val:     append([]float64(nil), m.Val[s:e]...),
	}
	for i := lo; i <= hi; i++ {
		out.RowPtr[i-lo] = m.RowPtr[i] - s
	}
	return out
}

// Density returns NNZ / (rows*cols).
func (m *CSR) Density() float64 {
	if m.NumRows == 0 || m.NumCols == 0 {
		return 0
	}
	return float64(m.NNZ()) / (float64(m.NumRows) * float64(m.NumCols))
}
