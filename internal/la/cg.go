package la

import (
	"errors"
	"fmt"
)

// CGResult reports the outcome of a conjugate-gradient solve.
type CGResult struct {
	Iterations int
	Residual   float64
	Converged  bool
}

// MulFunc applies a linear operator: y = A x.
type MulFunc func(x, y Vec)

// ConjGrad solves the symmetric positive-definite system A w = b with the
// conjugate-gradient method, writing the solution into w (which also supplies
// the initial guess). It stops when the residual 2-norm falls below tol or
// after maxIter iterations.
func ConjGrad(mul MulFunc, b, w Vec, tol float64, maxIter int) (CGResult, error) {
	n := len(b)
	if len(w) != n {
		return CGResult{}, fmt.Errorf("la: ConjGrad dim mismatch b=%d w=%d", n, len(w))
	}
	if tol <= 0 {
		return CGResult{}, errors.New("la: ConjGrad tol must be positive")
	}
	// Pooled scratch: ADMM runs one CG solve per partition per task, so the
	// solver itself must not allocate in steady state.
	r := GetVec(n)  // residual b - A w
	p := GetVec(n)  // search direction
	ap := GetVec(n) // A p scratch
	defer func() {
		PutVec(r)
		PutVec(p)
		PutVec(ap)
	}()
	mul(w, ap)
	SubInto(r, b, ap)
	p.CopyFrom(r)
	rs := Dot(r, r)
	res := CGResult{}
	for res.Iterations = 0; res.Iterations < maxIter; res.Iterations++ {
		if rs <= tol*tol {
			res.Converged = true
			break
		}
		mul(p, ap)
		pap := Dot(p, ap)
		if pap <= 0 {
			return res, fmt.Errorf("la: ConjGrad operator not positive definite (pᵀAp=%g at iter %d)", pap, res.Iterations)
		}
		alpha := rs / pap
		Axpy(alpha, p, w)
		rsNew := DotAxpy(-alpha, ap, r) // fused r -= alpha·Ap; rs = r·r
		beta := rsNew / rs
		ScaleAddInto(p, 1, r, beta, p)
		rs = rsNew
	}
	res.Residual = Norm2(r)
	if rs <= tol*tol {
		res.Converged = true
	}
	return res, nil
}

// NormalEquationsSolve solves min_w ||A w - b||² + lambda ||w||² by running
// conjugate gradient on the normal equations (AᵀA + λI) w = Aᵀ b. It is used
// to compute the reference optimum f(w*) against which the experiments
// measure error, playing the role of the long Mllib baseline run in §6.1.
func NormalEquationsSolve(a *CSR, b Vec, lambda, tol float64, maxIter int) (Vec, CGResult, error) {
	if a.NumRows != len(b) {
		return nil, CGResult{}, fmt.Errorf("la: NormalEquationsSolve rows=%d len(b)=%d", a.NumRows, len(b))
	}
	atb := NewVec(a.NumCols)
	a.MatTVec(b, atb)
	tmp := NewVec(a.NumRows)
	mul := func(x, y Vec) {
		a.MatVec(x, tmp)
		a.MatTVec(tmp, y)
		if lambda != 0 {
			Axpy(lambda, x, y)
		}
	}
	w := NewVec(a.NumCols)
	res, err := ConjGrad(mul, atb, w, tol, maxIter)
	if err != nil {
		return nil, res, err
	}
	return w, res, nil
}
