// Package maxip answers maximum-inner-product (MaxIP) queries over the
// columns of a CSR matrix in sublinear time per selection decision — the
// data structure behind greedy (Gauss-Southwell) coordinate selection and
// scan-free top-k (ROADMAP item 4, after Shrivastava/Song/Xu,
// arXiv:2111.15139: conditional-gradient-type methods can pick their next
// atom without an O(d) pass when a MaxIP structure stands between the
// iterate and the dictionary).
//
// # The two structures
//
// Index is the production path: it maintains the exact per-column inner
// products s_j = ⟨x_j, u⟩ against a caller-owned query vector u under a
// tournament tree, and makes both halves of a selection decision sublinear
// in d:
//
//   - Maintenance is O(nnz of dirty rows): when u changes on a set of rows
//     (in the solvers, the rows touched by a sparse model update — the
//     la.DeltaVec touched-set is exactly the dirty list), only the columns
//     stored on those rows can have moved; Flush re-scores those columns and
//     repairs their tournament paths.
//   - Query is O(k·log d): TopK extracts the k best-ranked columns from the
//     tree without visiting the other d−k.
//
// Below Options.ExactBelow distinct columns the tree is skipped entirely
// and TopK falls back to an exact linear scan — at small d the scan beats
// the tree's bookkeeping, and the scan IS the exact argmax, so the
// fallback is also the reference implementation the tests pin against.
//
// # Rebuild-equivalence invariant
//
// A dirty column is re-scored by a full column dot product in storage
// order, never by accumulating the increment into the stale score. Scores
// after any interleaving of SetRow/AddRows/Flush are therefore bitwise
// identical to a from-scratch Rebuild at the same u: equal inputs, equal
// order, equal floating-point result. TestIndexRebuildBitwise and
// FuzzMaxIPIndex hold this line.
//
// # Candidate-set correctness contract
//
// Index ranks by the exact maintained scores, so its candidate set always
// contains the true argmax of the ranking function — with certainty, not
// just high probability. What remains probabilistic in a consumer is the
// query vector itself: a solver that derives u from an incrementally
// maintained residual mirror must verify, when exact per-block gradients
// come back from the workers, that the scores it selected on agree with
// ground truth, and rebuild (or stop being greedy) when they repeatedly do
// not. That driver-side contract lives with the consumer (internal/opt's
// greedy selector); the index's part of the bargain is exactness given u.
//
// SRP is the literal paper construction kept for comparison: a bucketed
// sign-random-projection LSH over norm-augmented columns (the asymmetric
// transform x̂ = [x; √(M²−‖x‖²)], q̂ = [q; 0] reduces MaxIP to angular
// nearest-neighbor). It returns a candidate set that contains the true
// argmax with high probability and needs no per-update maintenance at all
// (the indexed columns are data, hence constant) — but each query pays
// O(L·K·n) dense projections of q, which at the sparse-wide aspect ratio
// (n rows ≪ nnz ≪ d) costs about as much as the exact column sweep it is
// supposed to avoid. On that catalog dataset the maintained-score Index
// wins by orders of magnitude, which is why it is the default; SRP stays
// behind its own constructor for dense-query workloads and as the
// benchmark's honesty check (bench: select.srp_ns vs select.maxip_ns).
package maxip
