package maxip

import (
	"math/rand"
	"testing"

	"repro/internal/la"
)

// FuzzMaxIPIndex interleaves query edits (SetRow / sparse AddRows), flushes,
// and TopK queries against a brute-force oracle. Every query's ranking and
// scores must match the oracle exactly — the bitwise rebuild-equivalence
// contract under arbitrary operation interleavings.
func FuzzMaxIPIndex(f *testing.F) {
	f.Add(int64(1), []byte{0, 1, 2, 3, 4, 5})
	f.Add(int64(42), []byte{9, 9, 9, 0, 0, 7, 1, 3})
	f.Add(int64(7), []byte{255, 128, 64, 32, 16, 8, 4, 2, 1})
	f.Fuzz(func(t *testing.T, seed int64, ops []byte) {
		rng := rand.New(rand.NewSource(seed))
		rows := 8 + rng.Intn(24)
		cols := 20 + rng.Intn(200)
		x := randomCSR(t, rng, rows, cols, 1+rng.Intn(5))
		cv := la.NewColView(x)
		u := make(la.Vec, rows)
		exactBelow := -1
		if len(ops) > 0 && ops[0]&1 == 1 {
			exactBelow = 1 << 20 // exercise exact-scan mode too
		}
		ix := New(x, cv, nil, Options{ExactBelow: exactBelow})

		for _, op := range ops {
			switch op % 4 {
			case 0: // point set
				i := int32(rng.Intn(rows))
				v := rng.NormFloat64()
				u[i] = v
				ix.SetRow(i, v)
			case 1: // sparse increment
				nnz := 1 + rng.Intn(4)
				idx := make([]int32, 0, nnz)
				seen := map[int32]bool{}
				for len(idx) < nnz {
					i := int32(rng.Intn(rows))
					if !seen[i] {
						seen[i] = true
						idx = append(idx, i)
					}
				}
				sortI32(idx)
				dv := &la.DeltaVec{Idx: idx, Val: make([]float64, len(idx)), N: rows}
				for k := range dv.Val {
					dv.Val[k] = rng.NormFloat64()
					u[idx[k]] += dv.Val[k]
				}
				ix.AddRows(dv)
			case 2: // explicit flush
				ix.Flush()
			case 3: // query and check against the oracle
				k := 1 + int(op)%9
				got := ix.TopK(k, nil)
				want, wantS := oracleTopK(cv, u, k, nil)
				if len(got) != len(want) {
					t.Fatalf("topk len %d != %d", len(got), len(want))
				}
				for p := range got {
					if got[p] != want[p] {
						t.Fatalf("rank %d: col %d != oracle %d", p, got[p], want[p])
					}
					if s := ix.Score(got[p]); s != wantS[p] {
						t.Fatalf("col %d: score %v != oracle %v", got[p], s, wantS[p])
					}
				}
			}
		}
		// terminal invariant: every maintained score bitwise-equals a fresh build
		ix.Flush()
		fresh := New(x, cv, u, Options{ExactBelow: exactBelow})
		for _, j := range cv.Cols {
			if a, b := ix.Score(j), fresh.Score(j); a != b {
				t.Fatalf("col %d: incremental %v != rebuild %v", j, a, b)
			}
		}
	})
}
