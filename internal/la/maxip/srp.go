package maxip

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/la"
)

// SRP is a bucketed sign-random-projection LSH over norm-augmented columns
// — the asymmetric MaxIP-to-angular-NN reduction of the related work. Each
// column is lifted to x̂_j = [x_j; √(M² − ‖x_j‖²)] (M the largest column
// norm), which equalizes every indexed vector's length so that angular
// closeness to the lifted query q̂ = [q; 0] orders columns by inner
// product. Tables bucket columns by the sign pattern of Bits seeded
// Gaussian projections; a query unions the buckets its own pattern lands
// in and exactly re-scores the candidates.
//
// The structure needs no maintenance (columns are data, hence constant),
// but every query pays Tables·Bits dense projections of q — O(L·K·n) —
// which is why the maintained-score Index wins whenever queries arrive as
// sparse edits. See the package comment.
type SRP struct {
	view   *la.ColView
	rows   int
	bits   int
	planes [][]float64          // [table][bits·(rows+1)] Gaussian hyperplanes
	tables []map[uint64][]int32 // sign pattern → slots
}

// SRPOptions configure the LSH structure.
type SRPOptions struct {
	Tables int   // hash tables (default 8)
	Bits   int   // sign bits per table (default 12)
	Seed   int64 // plane RNG seed (default 1)
}

// NewSRP builds the LSH candidate index over cv's columns. rows is the
// matrix row count (the home dimension of queries).
func NewSRP(cv *la.ColView, rows int, opts SRPOptions) *SRP {
	if opts.Tables <= 0 {
		opts.Tables = 8
	}
	if opts.Bits <= 0 {
		opts.Bits = 12
	}
	if opts.Bits > 64 {
		opts.Bits = 64
	}
	seed := opts.Seed
	if seed == 0 {
		seed = 1
	}
	rng := rand.New(rand.NewSource(seed))
	s := &SRP{view: cv, rows: rows, bits: opts.Bits}

	// column norms and the augmentation budget M = max ‖x_j‖
	norms := make([]float64, len(cv.Cols))
	maxNorm := 0.0
	for k := range cv.Cols {
		var sq float64
		for _, v := range cv.Vals[cv.Starts[k]:cv.Starts[k+1]] {
			sq += v * v
		}
		norms[k] = math.Sqrt(sq)
		if norms[k] > maxNorm {
			maxNorm = norms[k]
		}
	}
	if maxNorm == 0 {
		maxNorm = 1
	}

	aug := rows // the augmented coordinate's plane component index
	for t := 0; t < opts.Tables; t++ {
		planes := make([]float64, opts.Bits*(rows+1))
		for i := range planes {
			planes[i] = rng.NormFloat64()
		}
		table := make(map[uint64][]int32)
		for k := range cv.Cols {
			extra := math.Sqrt(math.Max(0, maxNorm*maxNorm-norms[k]*norms[k]))
			var sig uint64
			for b := 0; b < opts.Bits; b++ {
				p := planes[b*(rows+1):]
				dot := extra * p[aug]
				for e := cv.Starts[k]; e < cv.Starts[k+1]; e++ {
					dot += cv.Vals[e] * p[cv.Rows[e]]
				}
				if dot >= 0 {
					sig |= 1 << uint(b)
				}
			}
			table[sig] = append(table[sig], int32(k))
		}
		s.planes = append(s.planes, planes)
		s.tables = append(s.tables, table)
	}
	return s
}

// Candidates appends the slots bucketed with query q across all tables
// (deduplicated, ascending) to out. The lifted query zeroes the augmented
// coordinate, so only the first rows components of each plane matter.
func (s *SRP) Candidates(q la.Vec, out []int32) []int32 {
	if len(q) != s.rows {
		panic(fmt.Sprintf("maxip: SRP query dim %d != %d rows", len(q), s.rows))
	}
	base := len(out)
	mask := uint64(1)<<uint(s.bits) - 1
	for t, planes := range s.planes {
		var sig uint64
		for b := 0; b < s.bits; b++ {
			p := planes[b*(s.rows+1):]
			var dot float64
			for i, v := range q {
				dot += v * p[i]
			}
			if dot >= 0 {
				sig |= 1 << uint(b)
			}
		}
		// the query's own bucket catches positive inner products; the
		// complement bucket (−q's signature) catches negative ones, so the
		// candidate set covers argmax |⟨x_j, q⟩| for either sign
		out = append(out, s.tables[t][sig]...)
		out = append(out, s.tables[t][sig^mask]...)
	}
	sel := out[base:]
	sort.Slice(sel, func(a, b int) bool { return sel[a] < sel[b] })
	w := base
	for _, k := range out[base:] {
		if w == base || out[w-1] != k {
			out[w] = k
			w++
		}
	}
	return out[:w]
}

// TopK returns the k candidate columns with the largest |⟨x_j, q⟩| among
// the LSH candidate set, exactly re-scored (highest first, ties by
// ascending column id). The true argmax is in the result with high
// probability — certainty requires the exact Index.
func (s *SRP) TopK(q la.Vec, k int, out []int32) []int32 {
	slots := s.Candidates(q, nil)
	type kv struct {
		col int32
		r   float64
	}
	scored := make([]kv, 0, len(slots))
	for _, slot := range slots {
		var dot float64
		for e := s.view.Starts[slot]; e < s.view.Starts[slot+1]; e++ {
			dot += s.view.Vals[e] * q[s.view.Rows[e]]
		}
		scored = append(scored, kv{s.view.Cols[slot], math.Abs(dot)})
	}
	sort.Slice(scored, func(a, b int) bool {
		if scored[a].r != scored[b].r {
			return scored[a].r > scored[b].r
		}
		return scored[a].col < scored[b].col
	})
	if k > len(scored) {
		k = len(scored)
	}
	for _, e := range scored[:k] {
		out = append(out, e.col)
	}
	return out
}
