package maxip

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/la"
)

// randomCSR builds a seeded sparse matrix with nnz entries per row.
func randomCSR(t testing.TB, rng *rand.Rand, rows, cols, nnz int) *la.CSR {
	t.Helper()
	m := la.NewCSR(rows, cols, rows*nnz)
	for i := 0; i < rows; i++ {
		seen := map[int32]bool{}
		idx := make([]int32, 0, nnz)
		for len(idx) < nnz {
			j := int32(rng.Intn(cols))
			if !seen[j] {
				seen[j] = true
				idx = append(idx, j)
			}
		}
		sortI32(idx)
		val := make([]float64, len(idx))
		for k := range val {
			val[k] = rng.NormFloat64()
		}
		if err := m.AppendRow(la.SparseVec{Idx: idx, Val: val, N: cols}); err != nil {
			t.Fatal(err)
		}
	}
	return m
}

func sortI32(s []int32) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// oracleTopK is the brute-force reference: fresh storage-order column dots,
// full sort by (rank desc, col asc).
func oracleTopK(cv *la.ColView, u la.Vec, k int, scorer func(int32, float64) float64) (ids []int32, scores []float64) {
	type kv struct {
		col int32
		s   float64
		r   float64
	}
	all := make([]kv, 0, len(cv.Cols))
	for slot := range cv.Cols {
		var dot float64
		for e := cv.Starts[slot]; e < cv.Starts[slot+1]; e++ {
			dot += cv.Vals[e] * u[cv.Rows[e]]
		}
		r := math.Abs(dot)
		if scorer != nil {
			r = scorer(cv.Cols[slot], dot)
		}
		all = append(all, kv{cv.Cols[slot], dot, r})
	}
	for i := 1; i < len(all); i++ { // insertion sort: stable, deterministic
		for j := i; j > 0 && (all[j].r > all[j-1].r || (all[j].r == all[j-1].r && all[j].col < all[j-1].col)); j-- {
			all[j], all[j-1] = all[j-1], all[j]
		}
	}
	if k > len(all) {
		k = len(all)
	}
	for _, e := range all[:k] {
		ids = append(ids, e.col)
		scores = append(scores, e.s)
	}
	return ids, scores
}

// TestIndexMatchesOracle drives both modes (tree and exact-scan) through
// random query edits and checks TopK ids and Score values against the
// brute-force oracle, exactly.
func TestIndexMatchesOracle(t *testing.T) {
	for _, exactBelow := range []int{-1, 1 << 20} { // tree mode, exact mode
		rng := rand.New(rand.NewSource(7))
		x := randomCSR(t, rng, 40, 300, 5)
		cv := la.NewColView(x)
		u := make(la.Vec, x.NumRows)
		ix := New(x, cv, u, Options{ExactBelow: exactBelow})
		if (exactBelow < 0) == ix.Exact() {
			t.Fatalf("exactBelow %d: mode = exact(%v)", exactBelow, ix.Exact())
		}
		if ix.Cols() != len(cv.Cols) {
			t.Fatalf("Cols() = %d, view stores %d", ix.Cols(), len(cv.Cols))
		}
		for step := 0; step < 60; step++ {
			for e := 0; e < 3; e++ {
				i := int32(rng.Intn(x.NumRows))
				v := rng.NormFloat64()
				u[i] = v
				ix.SetRow(i, v)
			}
			k := 1 + rng.Intn(12)
			got := ix.TopK(k, nil)
			want, wantS := oracleTopK(cv, u, k, nil)
			if len(got) != len(want) {
				t.Fatalf("step %d: topk len %d != %d", step, len(got), len(want))
			}
			for p := range got {
				if got[p] != want[p] {
					t.Fatalf("step %d rank %d: col %d != oracle %d", step, p, got[p], want[p])
				}
				if s := ix.Score(got[p]); s != wantS[p] {
					t.Fatalf("step %d col %d: score %v != oracle %v (must be bitwise)", step, got[p], s, wantS[p])
				}
			}
		}
	}
}

// TestIndexRebuildBitwise pins the rebuild-equivalence invariant: after a
// random sequence of sparse AddRows updates, every maintained score equals
// a from-scratch Rebuild at the same query — bitwise.
func TestIndexRebuildBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	x := randomCSR(t, rng, 64, 2000, 8)
	cv := la.NewColView(x)
	ix := New(x, cv, nil, Options{ExactBelow: -1})

	u := make(la.Vec, x.NumRows)
	for step := 0; step < 25; step++ {
		nnz := 1 + rng.Intn(6)
		idx := make([]int32, 0, nnz)
		seen := map[int32]bool{}
		for len(idx) < nnz {
			i := int32(rng.Intn(x.NumRows))
			if !seen[i] {
				seen[i] = true
				idx = append(idx, i)
			}
		}
		sortI32(idx)
		dv := &la.DeltaVec{Idx: idx, Val: make([]float64, len(idx)), N: x.NumRows}
		for k := range dv.Val {
			dv.Val[k] = rng.NormFloat64()
			u[idx[k]] += dv.Val[k]
		}
		ix.AddRows(dv)
		if step%7 != 0 {
			ix.Flush() // mix flushed and pending states across steps
		}
	}
	ix.Flush()

	fresh := New(x, cv, u, Options{ExactBelow: -1})
	for _, j := range cv.Cols {
		if a, b := ix.Score(j), fresh.Score(j); a != b {
			t.Fatalf("col %d: incremental score %v != rebuild %v (bitwise contract)", j, a, b)
		}
	}
	// and the index's own Rebuild agrees with its incremental state
	got := ix.TopK(16, nil)
	ix.Rebuild(u)
	after := ix.TopK(16, nil)
	for p := range got {
		if got[p] != after[p] {
			t.Fatalf("rank %d: %d != %d after self-rebuild", p, got[p], after[p])
		}
	}
}

// TestIndexScorerAndMarkCol exercises a consumer scorer that reads state
// outside the index (a model vector), with MarkCol keeping ranks fresh.
func TestIndexScorerAndMarkCol(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x := randomCSR(t, rng, 30, 120, 4)
	cv := la.NewColView(x)
	w := make(la.Vec, x.NumCols)
	scorer := func(col int32, s float64) float64 {
		if w[col] != 0 {
			return math.Abs(s) + 1e6 // held coordinates rank above everything
		}
		return math.Abs(s)
	}
	u := make(la.Vec, x.NumRows)
	for i := range u {
		u[i] = rng.NormFloat64()
	}
	ix := New(x, cv, u, Options{ExactBelow: -1, Scorer: scorer})

	base, _ := oracleTopK(cv, u, 1, scorer)
	if got := ix.TopK(1, nil); got[0] != base[0] {
		t.Fatalf("scorer topk %d != oracle %d", got[0], base[0])
	}

	// flip a model coordinate on: its column must outrank the field once
	// marked — pick a stored column that is not already the leader
	var flip int32 = -1
	for _, j := range cv.Cols {
		if j != base[0] {
			flip = j
			break
		}
	}
	w[flip] = 1
	ix.MarkCol(flip)
	if got := ix.TopK(1, nil); got[0] != flip {
		t.Fatalf("after MarkCol: leader %d, want flipped col %d", got[0], flip)
	}
	want, _ := oracleTopK(cv, u, 5, scorer)
	got := ix.TopK(5, nil)
	for p := range want {
		if got[p] != want[p] {
			t.Fatalf("rank %d: %d != oracle %d", p, got[p], want[p])
		}
	}
}

// TestIndexTopKEdges: k larger than the column count, k = 0, absent
// columns score 0, and repeated extraction leaves the tree intact.
func TestIndexTopKEdges(t *testing.T) {
	m := la.NewCSR(3, 10, 6)
	rows := []la.SparseVec{
		{Idx: []int32{1, 4}, Val: []float64{2, -1}, N: 10},
		{Idx: []int32{4, 7}, Val: []float64{0.5, 3}, N: 10},
		{Idx: []int32{1, 7}, Val: []float64{-1, 1}, N: 10},
	}
	for _, r := range rows {
		if err := m.AppendRow(r); err != nil {
			t.Fatal(err)
		}
	}
	cv := la.NewColView(m)
	ix := New(m, cv, la.Vec{1, 1, 1}, Options{ExactBelow: -1})
	if got := ix.TopK(0, nil); len(got) != 0 {
		t.Fatalf("k=0 returned %v", got)
	}
	all := ix.TopK(99, nil)
	if len(all) != 3 { // only columns 1, 4, 7 are stored
		t.Fatalf("stored columns: got %v", all)
	}
	if s := ix.Score(5); s != 0 {
		t.Fatalf("absent column score %v", s)
	}
	again := ix.TopK(99, nil)
	for p := range all {
		if all[p] != again[p] {
			t.Fatalf("extraction disturbed the tree: %v vs %v", all, again)
		}
	}
}

// TestSRPCandidatesContainArgmax: with the committed seed the LSH candidate
// set contains the true MaxIP argmax for a batch of random queries, and
// SRP.TopK agrees with the oracle on the winner.
func TestSRPCandidatesContainArgmax(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	x := randomCSR(t, rng, 50, 400, 6)
	cv := la.NewColView(x)
	// few bits per table: norm augmentation pushes every lifted column
	// toward the augmentation axis (angles near 90° from q̂), so deep
	// signatures would shatter recall
	srp := NewSRP(cv, x.NumRows, SRPOptions{Tables: 16, Bits: 3, Seed: 5})

	hits := 0
	const queries = 25
	for q := 0; q < queries; q++ {
		u := make(la.Vec, x.NumRows)
		for i := range u {
			u[i] = rng.NormFloat64()
		}
		want, _ := oracleTopK(cv, u, 1, nil)
		got := srp.TopK(u, 1, nil)
		if len(got) == 1 && got[0] == want[0] {
			hits++
		}
	}
	// the candidate-set contract is probabilistic; the committed seed gives
	// a stable count well above this floor
	if hits < queries*4/5 {
		t.Fatalf("SRP argmax recall %d/%d below 80%%", hits, queries)
	}
}
