package maxip

import (
	"fmt"
	"math"

	"repro/internal/la"
)

// Options configure an Index.
type Options struct {
	// ExactBelow is the distinct-column count under which the index skips
	// the tournament tree and answers TopK by exact linear scan (the scan
	// beats tree bookkeeping at small d, and doubles as the reference
	// selector). Zero picks DefaultExactBelow; negative forces the tree.
	ExactBelow int

	// Scorer maps a column and its maintained inner product s = ⟨x_j, u⟩ to
	// the ranking value TopK maximises. nil ranks by |s|. Scorers must
	// return non-negative finite values (the extraction sentinel is −Inf)
	// and may read consumer state beyond s — but then the consumer must
	// MarkCol every column whose outside state changed.
	Scorer func(col int32, s float64) float64
}

// DefaultExactBelow is the dimension threshold below which the exact-scan
// fallback replaces the tournament tree.
const DefaultExactBelow = 1024

// Index maintains the exact inner products s_j = ⟨x_j, u⟩ of every stored
// CSR column against a mutable query vector u, and answers top-k-by-rank
// queries without scanning all columns. See the package comment for the
// maintenance cost model and the rebuild-equivalence invariant.
//
// An Index is not safe for concurrent use.
type Index struct {
	x  *la.CSR
	cv *la.ColView
	u  la.Vec

	s      []float64 // per slot: ⟨column, u⟩, storage-order dot
	rank   []float64 // per slot: scorer(col, s)
	scorer func(col int32, s float64) float64

	exact bool
	base  int     // leaf span (power of two ≥ len(cv.Cols)); tree mode only
	tree  []int32 // winner slots; tree[1] is the root, leaves at [base, 2·base)

	rowMark   []uint64
	rowGen    uint64
	dirtyRows []int32
	colMark   []uint64
	colGen    uint64
	dirtyCols []int32 // dirty slots, first-touch order

	savedSlot []int32 // TopK mask/restore scratch
	savedRank []float64
}

// New builds the index of x's columns (via its column view cv) at the query
// vector u (nil = zeros). u is copied; the caller keeps ownership. The view
// must have been built from x.
func New(x *la.CSR, cv *la.ColView, u la.Vec, opts Options) *Index {
	if u != nil && len(u) != x.NumRows {
		panic(fmt.Sprintf("maxip: query dim %d != %d rows", len(u), x.NumRows))
	}
	exactBelow := opts.ExactBelow
	if exactBelow == 0 {
		exactBelow = DefaultExactBelow
	}
	c := len(cv.Cols)
	ix := &Index{
		x: x, cv: cv,
		u:       make(la.Vec, x.NumRows),
		s:       make([]float64, c),
		rank:    make([]float64, c),
		scorer:  opts.Scorer,
		exact:   c <= exactBelow,
		rowMark: make([]uint64, x.NumRows),
		colMark: make([]uint64, c),
		rowGen:  1, colGen: 1,
	}
	if !ix.exact {
		ix.base = 1
		for ix.base < c {
			ix.base <<= 1
		}
		ix.tree = make([]int32, 2*ix.base)
	}
	ix.Rebuild(u)
	return ix
}

// Cols returns the number of distinct columns the index ranks.
func (ix *Index) Cols() int { return len(ix.cv.Cols) }

// Exact reports whether the index runs in exact-scan mode (below the
// dimension threshold) rather than on the tournament tree.
func (ix *Index) Exact() bool { return ix.exact }

// colDot recomputes slot k's inner product by a full column dot in storage
// order — the one arithmetic Rebuild also uses, which is what makes
// incremental maintenance bitwise-equal to a rebuild.
func (ix *Index) colDot(k int) float64 {
	start, end := ix.cv.Starts[k], ix.cv.Starts[k+1]
	rows := ix.cv.Rows[start:end]
	vals := ix.cv.Vals[start:end]
	var s float64
	for t, i := range rows {
		s += vals[t] * ix.u[i]
	}
	return s
}

func (ix *Index) rankOf(k int) float64 {
	if ix.scorer == nil {
		return math.Abs(ix.s[k])
	}
	return ix.scorer(ix.cv.Cols[k], ix.s[k])
}

// Rebuild recomputes every score (and the tree) from scratch at the query
// vector u; nil keeps the current query. O(nnz + c).
func (ix *Index) Rebuild(u la.Vec) {
	if u != nil {
		if len(u) != len(ix.u) {
			panic(fmt.Sprintf("maxip: query dim %d != %d rows", len(u), len(ix.u)))
		}
		copy(ix.u, u)
	}
	for k := range ix.s {
		ix.s[k] = ix.colDot(k)
		ix.rank[k] = ix.rankOf(k)
	}
	ix.rowGen++
	ix.colGen++
	ix.dirtyRows = ix.dirtyRows[:0]
	ix.dirtyCols = ix.dirtyCols[:0]
	if ix.exact {
		return
	}
	for i := range ix.tree[ix.base:] {
		if i < len(ix.s) {
			ix.tree[ix.base+i] = int32(i)
		} else {
			ix.tree[ix.base+i] = -1
		}
	}
	for i := ix.base - 1; i >= 1; i-- {
		ix.tree[i] = ix.better(ix.tree[2*i], ix.tree[2*i+1])
	}
}

// better picks the winning slot: higher rank, ties to the smaller slot
// (hence the smaller column id — cv.Cols is sorted).
func (ix *Index) better(a, b int32) int32 {
	switch {
	case a < 0:
		return b
	case b < 0:
		return a
	case ix.rank[a] > ix.rank[b]:
		return a
	case ix.rank[a] < ix.rank[b]:
		return b
	case a < b:
		return a
	default:
		return b
	}
}

// repair fixes the tournament path of slot k after its rank changed.
func (ix *Index) repair(k int) {
	for i := (ix.base + k) >> 1; i >= 1; i >>= 1 {
		ix.tree[i] = ix.better(ix.tree[2*i], ix.tree[2*i+1])
	}
}

// SetRow sets query coordinate i (a matrix row) to v and defers the
// re-scoring of that row's columns to the next Flush.
func (ix *Index) SetRow(i int32, v float64) {
	ix.u[i] = v
	if ix.rowMark[i] != ix.rowGen {
		ix.rowMark[i] = ix.rowGen
		ix.dirtyRows = append(ix.dirtyRows, i)
	}
}

// AddRows folds a sparse increment into the query vector: u[i] += v for
// every (i, v) in dv, marking the touched rows dirty. dv indexes matrix
// rows, so dv.N must equal the row count.
func (ix *Index) AddRows(dv *la.DeltaVec) {
	if dv.N != len(ix.u) {
		panic(fmt.Sprintf("maxip: AddRows dim %d != %d rows", dv.N, len(ix.u)))
	}
	for t, i := range dv.Idx {
		ix.SetRow(i, ix.u[i]+dv.Val[t])
	}
}

// MarkCol flags column j for re-ranking at the next Flush even though its
// inner product did not change — the hook for scorers that read consumer
// state beyond s (e.g. the model coordinate itself). Unknown columns are
// ignored.
func (ix *Index) MarkCol(j int32) {
	if k := ix.cv.Slot(j); k >= 0 {
		ix.markSlot(k)
	}
}

func (ix *Index) markSlot(k int) {
	if ix.colMark[k] != ix.colGen {
		ix.colMark[k] = ix.colGen
		ix.dirtyCols = append(ix.dirtyCols, int32(k))
	}
}

// Flush propagates dirty query rows to the columns stored on them,
// re-scores exactly those columns, and repairs their tournament paths.
// Returns the number of columns re-scored. Cost: O(Σ nnz(dirty rows) +
// dirty columns · log c).
func (ix *Index) Flush() int {
	for _, i := range ix.dirtyRows {
		for p := ix.x.RowPtr[i]; p < ix.x.RowPtr[i+1]; p++ {
			ix.markSlot(ix.cv.Slot(ix.x.ColIdx[p]))
		}
	}
	ix.dirtyRows = ix.dirtyRows[:0]
	ix.rowGen++
	n := len(ix.dirtyCols)
	for _, k := range ix.dirtyCols {
		ix.s[k] = ix.colDot(int(k))
		ix.rank[k] = ix.rankOf(int(k))
		if !ix.exact {
			ix.repair(int(k))
		}
	}
	ix.dirtyCols = ix.dirtyCols[:0]
	ix.colGen++
	return n
}

// Score returns the maintained inner product ⟨x_j, u⟩ (0 for a column with
// no stored entries), flushing pending updates first.
func (ix *Index) Score(j int32) float64 {
	ix.Flush()
	k := ix.cv.Slot(j)
	if k < 0 {
		return 0
	}
	return ix.s[k]
}

// TopK appends the k best-ranked column ids to out (highest rank first,
// ties by ascending column id) and returns the extended slice. Fewer than
// k are returned only when the matrix stores fewer distinct columns.
// Pending updates are flushed first. O(k·log c) on the tree, O(c·log k)
// in exact-scan mode.
func (ix *Index) TopK(k int, out []int32) []int32 {
	ix.Flush()
	if k <= 0 {
		return out
	}
	if ix.exact {
		return ix.scanTopK(k, out)
	}
	// extract by mask-and-repair: pop the root winner, sink its rank to
	// −Inf, repair, repeat; then restore the popped ranks.
	ix.savedSlot = ix.savedSlot[:0]
	ix.savedRank = ix.savedRank[:0]
	for len(ix.savedSlot) < k {
		w := ix.tree[1]
		if w < 0 || math.IsInf(ix.rank[w], -1) {
			break
		}
		out = append(out, ix.cv.Cols[w])
		ix.savedSlot = append(ix.savedSlot, w)
		ix.savedRank = append(ix.savedRank, ix.rank[w])
		ix.rank[w] = math.Inf(-1)
		ix.repair(int(w))
	}
	for t, w := range ix.savedSlot {
		ix.rank[w] = ix.savedRank[t]
		ix.repair(int(w))
	}
	return out
}

// scanTopK is the exact-mode selection: one pass over all slots with a
// bounded insertion buffer, producing the same (rank desc, column asc)
// order as tree extraction.
func (ix *Index) scanTopK(k int, out []int32) []int32 {
	if k > len(ix.s) {
		k = len(ix.s)
	}
	base := len(out)
	for slot := range ix.s {
		r := ix.rank[slot]
		sel := out[base:]
		if len(sel) == k && r <= ix.rank[sel[len(sel)-1]] {
			continue // ties keep the incumbent (smaller column id)
		}
		// first position ranked strictly below r: equals stay ahead
		lo, hi := 0, len(sel)
		for lo < hi {
			mid := (lo + hi) / 2
			if ix.rank[sel[mid]] < r {
				hi = mid
			} else {
				lo = mid + 1
			}
		}
		if len(sel) < k {
			out = append(out, 0)
			sel = out[base:]
		}
		copy(sel[lo+1:], sel[lo:])
		sel[lo] = int32(slot)
	}
	sel := out[base:]
	for t, slot := range sel {
		sel[t] = ix.cv.Cols[slot]
	}
	return out
}
