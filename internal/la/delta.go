package la

import (
	"fmt"
	"sync"
)

// Sparse-delta substrate: DeltaVec is the payload type of the O(nnz) task
// path — a gradient (or model-update) restricted to the coordinates it
// actually touches — and DeltaAccum is the worker-side scatter accumulator
// that builds one without ever sweeping the full dimension. Together with
// the GetDelta/PutDelta pool they keep the sparse hot path allocation-free
// in steady state, mirroring the GetVec/PutVec discipline of the dense path.

// DeltaVec is a sparse update vector: strictly increasing coordinate
// indices, parallel values, and the logical dimension N. Unlike SparseVec
// (an immutable zero-copy row view into a CSR), a DeltaVec owns its storage,
// is mutable, and is pooled — task kernels build one per task and the driver
// recycles it with PutDelta after applying the update.
type DeltaVec struct {
	Idx []int32   // strictly increasing coordinate indices
	Val []float64 // values, len(Val) == len(Idx)
	N   int       // logical dimension
}

// NNZ returns the number of stored entries.
func (d *DeltaVec) NNZ() int { return len(d.Idx) }

// Dense expands d into a freshly allocated dense vector.
func (d *DeltaVec) Dense() Vec {
	v := NewVec(d.N)
	for k, j := range d.Idx {
		v[j] = d.Val[k]
	}
	return v
}

// AxpyDense computes y += alpha·d for dense y in O(nnz).
func (d *DeltaVec) AxpyDense(alpha float64, y Vec) {
	if d.N != len(y) {
		panic(fmt.Sprintf("la: delta AxpyDense dim mismatch %d != %d", d.N, len(y)))
	}
	GradAccum(alpha, d.Idx, d.Val, y)
}

// DotDense returns the inner product of d with a dense vector in O(nnz).
func (d *DeltaVec) DotDense(w Vec) float64 {
	if d.N != len(w) {
		panic(fmt.Sprintf("la: delta DotDense dim mismatch %d != %d", d.N, len(w)))
	}
	return SparseDot(d.Idx, d.Val, w)
}

// Clone returns an independent copy of d (not pooled).
func (d *DeltaVec) Clone() *DeltaVec {
	return &DeltaVec{
		Idx: append([]int32(nil), d.Idx...),
		Val: append([]float64(nil), d.Val...),
		N:   d.N,
	}
}

// MergeFrom adds o into d in place (d ← d + o), keeping indices sorted and
// unique. The merge runs backwards over grown slices, so it allocates only
// when d's capacity cannot hold the union. o is left unchanged.
func (d *DeltaVec) MergeFrom(o *DeltaVec) {
	if d.N != o.N {
		panic(fmt.Sprintf("la: delta MergeFrom dim mismatch %d != %d", d.N, o.N))
	}
	if len(o.Idx) == 0 {
		return
	}
	// count the union size with a forward walk
	union, i, j := 0, 0, 0
	for i < len(d.Idx) && j < len(o.Idx) {
		switch {
		case d.Idx[i] < o.Idx[j]:
			i++
		case d.Idx[i] > o.Idx[j]:
			j++
		default:
			i++
			j++
		}
		union++
	}
	union += (len(d.Idx) - i) + (len(o.Idx) - j)
	nd := len(d.Idx)
	d.grow(union)
	// merge backwards so already-stored entries of d are never overwritten
	// before they are read
	w := union - 1
	i, j = nd-1, len(o.Idx)-1
	for j >= 0 {
		switch {
		case i >= 0 && d.Idx[i] > o.Idx[j]:
			d.Idx[w], d.Val[w] = d.Idx[i], d.Val[i]
			i--
		case i >= 0 && d.Idx[i] == o.Idx[j]:
			d.Idx[w], d.Val[w] = d.Idx[i], d.Val[i]+o.Val[j]
			i--
			j--
		default:
			d.Idx[w], d.Val[w] = o.Idx[j], o.Val[j]
			j--
		}
		w--
	}
	// entries of d below i are already in place
}

// grow resizes d to hold n entries, preserving the current prefix.
func (d *DeltaVec) grow(n int) {
	if cap(d.Idx) >= n {
		d.Idx = d.Idx[:n]
		d.Val = d.Val[:n]
		return
	}
	idx := make([]int32, n)
	val := make([]float64, n)
	copy(idx, d.Idx)
	copy(val, d.Val)
	d.Idx, d.Val = idx, val
}

// Delta pool: kernels on the sparse task path Get one per task, fill it via
// DeltaAccum.Compact, and ownership travels to the driver with the task
// result; the driver returns it with PutDelta after applying the update.
// Unlike the dense pool, deltas are not keyed by size — capacity grows to
// the running maximum nnz and then stabilises, so steady state allocates
// nothing. The same remote-transport note as PutVec applies: over TCP the
// driver recycles its decoded copies and remote workers allocate fresh.

const maxPooledDeltas = 64

var deltaPool = struct {
	mu   sync.Mutex
	free []*DeltaVec
}{}

// GetDelta returns a pooled DeltaVec with room for nnz entries (contents
// unspecified — callers overwrite every entry) and logical dimension n.
func GetDelta(nnz, n int) *DeltaVec {
	deltaPool.mu.Lock()
	var d *DeltaVec
	if l := len(deltaPool.free); l > 0 {
		d = deltaPool.free[l-1]
		deltaPool.free = deltaPool.free[:l-1]
	}
	deltaPool.mu.Unlock()
	if d == nil {
		d = &DeltaVec{}
	}
	d.grow(nnz)
	d.N = n
	return d
}

// PutDelta returns d to the pool. The caller must not retain any reference
// afterwards. Putting nil is a no-op.
func PutDelta(d *DeltaVec) {
	if d == nil {
		return
	}
	deltaPool.mu.Lock()
	if len(deltaPool.free) < maxPooledDeltas {
		deltaPool.free = append(deltaPool.free, d)
	}
	deltaPool.mu.Unlock()
}

// DeltaAccum is a generation-stamped sparse scatter accumulator (a SPA):
// Accum adds alpha·row into it touching only the row's coordinates, and
// Compact snapshots the touched set into a sorted pooled DeltaVec. Reset is
// O(1) — a generation bump invalidates all marks — so a per-task
// accumulation over any number of samples costs O(total nnz + t·log t) with
// t distinct touched coordinates, never O(dimension). The backing arrays
// are O(dimension) but persistent (they live in the worker's Scratch), so
// steady state allocates nothing.
type DeltaAccum struct {
	acc     []float64
	mark    []uint64
	gen     uint64
	touched []int32
	tmp     []int32 // radix-sort scratch, grown to the running max nnz
}

// NewDeltaAccum builds an accumulator of logical dimension n.
func NewDeltaAccum(n int) *DeltaAccum {
	return &DeltaAccum{acc: make([]float64, n), mark: make([]uint64, n)}
}

// Dim returns the logical dimension.
func (a *DeltaAccum) Dim() int { return len(a.acc) }

// NNZ returns the number of coordinates touched since the last Reset.
func (a *DeltaAccum) NNZ() int { return len(a.touched) }

// Reset clears the accumulator in O(1) by advancing the generation stamp.
func (a *DeltaAccum) Reset() {
	a.gen++
	a.touched = a.touched[:0]
}

// Add accumulates v into coordinate j.
func (a *DeltaAccum) Add(j int32, v float64) {
	if a.mark[j] != a.gen {
		a.mark[j] = a.gen
		a.acc[j] = 0
		a.touched = append(a.touched, j)
	}
	a.acc[j] += v
}

// Accum adds alpha·(idx, val) into the accumulator — the sparse counterpart
// of GradAccum, tracking first touches as it scatters.
func (a *DeltaAccum) Accum(alpha float64, idx []int32, val []float64) {
	if len(idx) != len(val) {
		panic(fmt.Sprintf("la: DeltaAccum idx/val length mismatch %d != %d", len(idx), len(val)))
	}
	acc, mark, gen := a.acc, a.mark, a.gen
	for k, j := range idx {
		if mark[j] != gen {
			mark[j] = gen
			acc[j] = 0
			a.touched = append(a.touched, j)
		}
		acc[j] += alpha * val[k]
	}
}

// Compact sorts the touched coordinate set and snapshots it into a pooled
// DeltaVec. The accumulator itself stays valid (Compact does not Reset).
// Sorting is LSD radix over the bits of the dimension — comparison sorts
// cost ~10× more per element at the nnz counts sparse tasks produce, and
// the sort is the dominant term of Compact.
func (a *DeltaAccum) Compact() *DeltaVec {
	a.sortTouched()
	d := GetDelta(len(a.touched), len(a.acc))
	for i, j := range a.touched {
		d.Idx[i] = j
		d.Val[i] = a.acc[j]
	}
	return d
}

// radixDigitBits is the LSD radix width: 11 bits → one pass up to d = 2048,
// two passes up to d = 4M (every dataset in the repo), with a 16 KB
// stack-allocated counting table per pass.
const radixDigitBits = 11

// sortTouched sorts the touched list ascending, allocation-free in steady
// state (the swap buffer persists on the accumulator).
func (a *DeltaAccum) sortTouched() {
	t := a.touched
	if len(t) <= 48 {
		sortInt32(t)
		return
	}
	maxBits := bitsFor(int32(len(a.acc) - 1))
	if cap(a.tmp) < len(t) {
		a.tmp = make([]int32, len(t))
	}
	src, dst := t, a.tmp[:len(t)]
	inPlace := true
	for shift := 0; shift < maxBits; shift += radixDigitBits {
		var count [1 << radixDigitBits]int32
		for _, v := range src {
			count[(v>>shift)&(1<<radixDigitBits-1)]++
		}
		sum := int32(0)
		for i := range count {
			c := count[i]
			count[i] = sum
			sum += c
		}
		for _, v := range src {
			d := (v >> shift) & (1<<radixDigitBits - 1)
			dst[count[d]] = v
			count[d]++
		}
		src, dst = dst, src
		inPlace = !inPlace
	}
	if !inPlace {
		copy(t, src)
	}
}

// bitsFor returns the number of significant bits of v (≥ 1).
func bitsFor(v int32) int {
	n := 1
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}

// sortInt32 sorts s ascending without allocating (sort.Slice boxes its
// closure, which would cost an allocation per task on the sparse hot path).
// Insertion sort below a small cutoff, median-of-three quicksort above it,
// always recursing into the smaller side so stack depth stays O(log n).
func sortInt32(s []int32) {
	for len(s) > 12 {
		p := int32Pivot(s)
		lo, hi := 0, len(s)-1
		for lo <= hi {
			for s[lo] < p {
				lo++
			}
			for s[hi] > p {
				hi--
			}
			if lo <= hi {
				s[lo], s[hi] = s[hi], s[lo]
				lo++
				hi--
			}
		}
		if hi+1 < len(s)-lo {
			sortInt32(s[:hi+1])
			s = s[lo:]
		} else {
			sortInt32(s[lo:])
			s = s[:hi+1]
		}
	}
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// int32Pivot returns the median of the first, middle and last elements.
func int32Pivot(s []int32) int32 {
	a, b, c := s[0], s[len(s)/2], s[len(s)-1]
	if a > b {
		a, b = b, a
	}
	if b > c {
		b = c
		if a > b {
			b = a
		}
	}
	return b
}
