package straggler

import (
	"sync"
	"testing"
	"time"
)

func TestNone(t *testing.T) {
	var m None
	if m.Delay(3, time.Second) != 0 {
		t.Fatal("None produced delay")
	}
	if m.Name() != "none" {
		t.Fatalf("name %q", m.Name())
	}
}

func TestControlledDelayOnlyTargetWorker(t *testing.T) {
	m := ControlledDelay{Worker: 2, Intensity: 1.0}
	if d := m.Delay(2, 100*time.Millisecond); d != 100*time.Millisecond {
		t.Fatalf("delay = %v, want 100ms", d)
	}
	for w := 0; w < 8; w++ {
		if w == 2 {
			continue
		}
		if m.Delay(w, time.Second) != 0 {
			t.Fatalf("worker %d delayed", w)
		}
	}
}

func TestControlledDelayIntensities(t *testing.T) {
	base := 200 * time.Millisecond
	for _, in := range []float64{0, 0.3, 0.6, 1.0} {
		m := ControlledDelay{Worker: 0, Intensity: in}
		want := time.Duration(float64(base) * in)
		if d := m.Delay(0, base); d != want {
			t.Fatalf("intensity %v: delay %v, want %v", in, d, want)
		}
	}
}

func TestProductionClusterPaperCounts(t *testing.T) {
	// For 32 workers the paper assigns 6 uniform stragglers + 2 long tail.
	p, err := NewProductionCluster(32, 123)
	if err != nil {
		t.Fatal(err)
	}
	uni, lt := p.Stragglers()
	if len(uni) != 6 {
		t.Fatalf("uniform stragglers = %d, want 6", len(uni))
	}
	if len(lt) != 2 {
		t.Fatalf("long-tail stragglers = %d, want 2", len(lt))
	}
}

func TestProductionClusterBands(t *testing.T) {
	p, err := NewProductionCluster(32, 5)
	if err != nil {
		t.Fatal(err)
	}
	uni, lt := p.Stragglers()
	base := 100 * time.Millisecond
	isStraggler := map[int]bool{}
	for _, w := range uni {
		isStraggler[w] = true
		for i := 0; i < 50; i++ {
			d := p.Delay(w, base)
			f := float64(d) / float64(base)
			if f < 1.5-1e-9 || f > 2.5+1e-9 {
				t.Fatalf("uniform straggler %d factor %v outside [1.5,2.5]", w, f)
			}
		}
	}
	for _, w := range lt {
		isStraggler[w] = true
		for i := 0; i < 50; i++ {
			d := p.Delay(w, base)
			f := float64(d) / float64(base)
			if f < 2.5-1e-9 || f > 10+1e-9 {
				t.Fatalf("long-tail straggler %d factor %v outside [2.5,10]", w, f)
			}
		}
	}
	for w := 0; w < 32; w++ {
		if !isStraggler[w] && p.Delay(w, base) != 0 {
			t.Fatalf("non-straggler %d delayed", w)
		}
	}
}

func TestProductionClusterSeedDeterminesAssignment(t *testing.T) {
	p1, _ := NewProductionCluster(32, 9)
	p2, _ := NewProductionCluster(32, 9)
	u1, l1 := p1.Stragglers()
	u2, l2 := p2.Stragglers()
	if len(u1) != len(u2) || len(l1) != len(l2) {
		t.Fatal("same seed, different counts")
	}
	for i := range u1 {
		if u1[i] != u2[i] {
			t.Fatal("same seed, different uniform assignment")
		}
	}
	for i := range l1 {
		if l1[i] != l2[i] {
			t.Fatal("same seed, different long-tail assignment")
		}
	}
}

func TestProductionClusterRejectsBadCount(t *testing.T) {
	if _, err := NewProductionCluster(0, 1); err == nil {
		t.Fatal("zero workers accepted")
	}
}

func TestProductionClusterOutOfRangeWorker(t *testing.T) {
	p, _ := NewProductionCluster(4, 1)
	if p.Delay(-1, time.Second) != 0 || p.Delay(99, time.Second) != 0 {
		t.Fatal("out-of-range worker delayed")
	}
}

func TestProductionClusterConcurrentUse(t *testing.T) {
	p, _ := NewProductionCluster(16, 2)
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				_ = p.Delay(w, time.Millisecond)
			}
		}(w)
	}
	wg.Wait() // race detector validates safety
}

func TestSmallClusterStillHasStragglers(t *testing.T) {
	// 8 workers → 2 stragglers, 0-1 long tail (rounding)
	p, err := NewProductionCluster(8, 3)
	if err != nil {
		t.Fatal(err)
	}
	uni, lt := p.Stragglers()
	if len(uni)+len(lt) != 2 {
		t.Fatalf("8 workers should yield 2 stragglers, got %d", len(uni)+len(lt))
	}
}
