// Package straggler implements the delay models the paper uses to evaluate
// robustness to slow workers (§6.3):
//
//   - ControlledDelay (the "CDS" experiments): a single designated worker is
//     delayed by a fixed intensity, expressed as a percentage of the nominal
//     task time — a 100% delay means the worker runs at half speed, exactly
//     as the paper's sleep-based straggler.
//   - ProductionCluster (the "PCS" experiments): the empirical straggler
//     distribution from Microsoft and Google production clusters reported in
//     the paper — about 25% of machines straggle; of those, 80% are delayed
//     uniformly between 150% and 250% of average task time, and the
//     remaining 20% are long-tail workers delayed between 250% and 10×.
//
// All models are deterministic given their seed, matching the paper's
// "randomized delay seed is fixed across executions" protocol.
package straggler

import (
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// Model yields the extra delay a worker must add to a task whose nominal
// (undelayed) duration is base. Implementations must be safe for concurrent
// use: every worker goroutine calls Delay on its own tasks.
type Model interface {
	// Delay returns the extra time worker w sleeps for one task of nominal
	// duration base. Zero means the worker is not a straggler.
	Delay(worker int, base time.Duration) time.Duration
	// Name identifies the model in experiment output.
	Name() string
}

// None is the no-straggler model.
type None struct{}

// Delay always returns zero.
func (None) Delay(int, time.Duration) time.Duration { return 0 }

// Name implements Model.
func (None) Name() string { return "none" }

// ControlledDelay delays a single worker by a fixed fraction of the nominal
// task time. Intensity 1.0 ("100% delay") makes the worker half speed.
type ControlledDelay struct {
	Worker    int     // which worker straggles
	Intensity float64 // extra time as a fraction of the nominal task time
}

// Delay implements Model.
func (c ControlledDelay) Delay(worker int, base time.Duration) time.Duration {
	if worker != c.Worker || c.Intensity <= 0 {
		return 0
	}
	return time.Duration(float64(base) * c.Intensity)
}

// Name implements Model.
func (c ControlledDelay) Name() string {
	return fmt.Sprintf("cds-%.0f%%", c.Intensity*100)
}

// band is a per-worker delay band; each task samples its delay factor
// uniformly from [lo, hi] (as a fraction of nominal task time).
type band struct{ lo, hi float64 }

// ProductionCluster reproduces the production-cluster straggler pattern.
// Construct with NewProductionCluster.
type ProductionCluster struct {
	bands []band

	mu  sync.Mutex
	rng *rand.Rand
}

// Fractions from the paper: 25% of machines straggle, 80% of stragglers are
// "uniform" (150–250% delay) and 20% are long-tail (250% to 10×).
const (
	pcsStragglerFrac = 0.25
	pcsLongTailFrac  = 0.20
	pcsUniformLo     = 1.5
	pcsUniformHi     = 2.5
	pcsLongTailLo    = 2.5
	pcsLongTailHi    = 10.0
)

// NewProductionCluster builds the PCS model for n workers with a fixed seed.
// For n=32 this yields the paper's configuration: 6 uniform stragglers and
// 2 long-tail workers.
func NewProductionCluster(n int, seed int64) (*ProductionCluster, error) {
	if n <= 0 {
		return nil, fmt.Errorf("straggler: non-positive worker count %d", n)
	}
	rng := rand.New(rand.NewSource(seed))
	nStraggler := int(pcsStragglerFrac*float64(n) + 0.5)
	nLongTail := int(pcsLongTailFrac*float64(nStraggler) + 0.5)
	bands := make([]band, n)
	// choose straggler workers deterministically via a seeded permutation
	perm := rng.Perm(n)
	for i := 0; i < nStraggler; i++ {
		w := perm[i]
		if i < nLongTail {
			bands[w] = band{pcsLongTailLo, pcsLongTailHi}
		} else {
			bands[w] = band{pcsUniformLo, pcsUniformHi}
		}
	}
	return &ProductionCluster{bands: bands, rng: rng}, nil
}

// Delay implements Model. Non-straggler workers get zero; straggler workers
// sample a delay factor from their band for every task.
func (p *ProductionCluster) Delay(worker int, base time.Duration) time.Duration {
	if worker < 0 || worker >= len(p.bands) {
		return 0
	}
	b := p.bands[worker]
	if b.hi == 0 {
		return 0
	}
	p.mu.Lock()
	f := b.lo + p.rng.Float64()*(b.hi-b.lo)
	p.mu.Unlock()
	return time.Duration(float64(base) * f)
}

// Name implements Model.
func (p *ProductionCluster) Name() string { return "pcs" }

// Stragglers returns the indices of workers that straggle, and which of
// those are long-tail, for reporting.
func (p *ProductionCluster) Stragglers() (uniform, longTail []int) {
	for w, b := range p.bands {
		switch {
		case b.hi == 0:
		case b.hi > pcsUniformHi:
			longTail = append(longTail, w)
		default:
			uniform = append(uniform, w)
		}
	}
	return uniform, longTail
}
