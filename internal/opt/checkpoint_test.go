package opt

import (
	"bytes"
	"encoding/gob"
	"testing"

	"repro/internal/la"
)

func TestCheckpointRoundTrip(t *testing.T) {
	cp := &Checkpoint{
		Algorithm: "ASGD",
		W:         la.Vec{1, 2, 3},
		Updates:   42,
		AvgHist:   la.Vec{0.1, 0.2, 0.3},
	}
	var buf bytes.Buffer
	if err := SaveCheckpoint(&buf, cp); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Algorithm != "ASGD" || got.Updates != 42 {
		t.Fatalf("fields lost: %+v", got)
	}
	if !la.Equal(got.W, cp.W, 0) || !la.Equal(got.AvgHist, cp.AvgHist, 0) {
		t.Fatal("vectors lost")
	}
}

// TestCheckpointExtendedStateRoundTrip covers the solver-specific state
// maps through the binary codec.
func TestCheckpointExtendedStateRoundTrip(t *testing.T) {
	cp := &Checkpoint{
		Algorithm: "svrg",
		W:         la.Vec{1, 2, 3},
		Updates:   7,
		Vecs: map[string]la.Vec{
			"mu":     {0.5, -0.25, 0},
			"anchor": {1, 2, 3},
		},
		Ints: map[string]int64{"dispatches": 42, "round": 9},
	}
	var buf bytes.Buffer
	if err := SaveCheckpoint(&buf, cp); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Algorithm != "svrg" || got.Updates != 7 {
		t.Fatalf("fields lost: %+v", got)
	}
	if !la.Equal(got.Vec("mu"), cp.Vecs["mu"], 0) || !la.Equal(got.Vec("anchor"), cp.Vecs["anchor"], 0) {
		t.Fatal("state vectors lost")
	}
	if got.Int("dispatches") != 42 || got.Int("round") != 9 {
		t.Fatalf("counters lost: %+v", got.Ints)
	}
	if got.AvgHist != nil {
		t.Fatal("phantom history decoded")
	}
}

// TestCheckpointGobFallback: files written by the pre-binary (gob) format
// still load.
func TestCheckpointGobFallback(t *testing.T) {
	cp := &Checkpoint{Algorithm: "ASGD", W: la.Vec{4, 5}, Updates: 3, AvgHist: la.Vec{1, 1}}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(cp); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Algorithm != "ASGD" || got.Updates != 3 || !la.Equal(got.W, cp.W, 0) || !la.Equal(got.AvgHist, cp.AvgHist, 0) {
		t.Fatalf("gob fallback lost fields: %+v", got)
	}
}

// FuzzLoadCheckpoint hardens the load path: arbitrary input must either
// fail cleanly or produce a structurally valid checkpoint that re-saves.
// Lengths are validated against the remaining input before any allocation.
func FuzzLoadCheckpoint(f *testing.F) {
	valid := &Checkpoint{
		Algorithm: "asgd",
		W:         la.Vec{1, 2, 3},
		Updates:   5,
		AvgHist:   la.Vec{0, 1, 0},
		Vecs:      map[string]la.Vec{"vel": {0.1, 0.2, 0.3}},
		Ints:      map[string]int64{"round": 2},
	}
	var bin bytes.Buffer
	if err := SaveCheckpoint(&bin, valid); err != nil {
		f.Fatal(err)
	}
	f.Add(bin.Bytes())
	var gobBuf bytes.Buffer
	if err := gob.NewEncoder(&gobBuf).Encode(valid); err != nil {
		f.Fatal(err)
	}
	f.Add(gobBuf.Bytes())
	f.Add([]byte("ACP1"))
	f.Add([]byte("garbage"))
	f.Fuzz(func(t *testing.T, data []byte) {
		cp, err := LoadCheckpoint(bytes.NewReader(data))
		if err != nil {
			return
		}
		if err := cp.Validate(); err != nil {
			t.Fatalf("loaded checkpoint fails validation: %v", err)
		}
		var buf bytes.Buffer
		if err := SaveCheckpoint(&buf, cp); err != nil {
			t.Fatalf("loaded checkpoint does not re-save: %v", err)
		}
	})
}

func TestCheckpointValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := SaveCheckpoint(&buf, &Checkpoint{}); err == nil {
		t.Fatal("empty checkpoint accepted")
	}
	if err := SaveCheckpoint(&buf, &Checkpoint{W: la.Vec{1}, Updates: -1}); err == nil {
		t.Fatal("negative clock accepted")
	}
	if err := SaveCheckpoint(&buf, &Checkpoint{W: la.Vec{1}, AvgHist: la.Vec{1, 2}}); err == nil {
		t.Fatal("dim mismatch accepted")
	}
	if _, err := LoadCheckpoint(bytes.NewReader([]byte("garbage"))); err == nil {
		t.Fatal("garbage decoded")
	}
}

// TestResumeFromCheckpoint: a run split in two via a checkpoint must end at
// least as converged as its own first half.
func TestResumeFromCheckpoint(t *testing.T) {
	r := newRig(t, 4, 8, nil)
	p := Params{
		Step: Scaled{Base: InvSqrt{A: 0.08}, Factor: 4}, SampleFrac: 0.4,
		Updates: 300, SnapshotEvery: 100,
	}
	first, err := ASGD(r.ac, r.d, p, r.fstar)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveCheckpoint(&buf, FromResult(first, 300)); err != nil {
		t.Fatal(err)
	}
	cp, err := LoadCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	p2 := p
	p2.InitW = cp.W
	second, err := ASGD(r.ac, r.d, p2, r.fstar)
	if err != nil {
		t.Fatal(err)
	}
	e1 := Objective(r.d, LeastSquares{}, first.W) - r.fstar
	e2 := Objective(r.d, LeastSquares{}, second.W) - r.fstar
	if e2 > e1*1.05 {
		t.Fatalf("resumed run regressed: %v → %v", e1, e2)
	}
	// and a resumed run starts from the checkpointed model
	if second.Trace.Points[0].Error > e1*1.5 {
		t.Fatalf("resume did not warm-start: first point error %v vs checkpoint error %v",
			second.Trace.Points[0].Error, e1)
	}
}

func TestInitWDimMismatch(t *testing.T) {
	r := newRig(t, 1, 1, nil)
	p := Params{Step: Constant{A: 0.01}, SampleFrac: 0.5, Updates: 1, InitW: la.Vec{1, 2}}
	if _, err := ASGD(r.ac, r.d, p, r.fstar); err == nil {
		t.Fatal("InitW dim mismatch accepted")
	}
	if _, err := SAGA(r.ac, r.d, p, r.fstar); err == nil {
		t.Fatal("SAGA InitW dim mismatch accepted")
	}
}

func TestMomentumConverges(t *testing.T) {
	r := newRig(t, 4, 8, nil)
	res, err := SyncSGD(r.ac, r.d, Params{
		Step: InvSqrt{A: 0.04}, SampleFrac: 0.4, Updates: 80,
		SnapshotEvery: 20, Momentum: 0.5,
	}, r.fstar)
	if err != nil {
		t.Fatal(err)
	}
	r.assertConverged(t, res, 10)
}

func TestMomentumASGDConverges(t *testing.T) {
	r := newRig(t, 4, 8, nil)
	res, err := ASGD(r.ac, r.d, Params{
		Step: Scaled{Base: InvSqrt{A: 0.04}, Factor: 4}, SampleFrac: 0.4,
		Updates: 600, SnapshotEvery: 150, Momentum: 0.5,
	}, r.fstar)
	if err != nil {
		t.Fatal(err)
	}
	r.assertConverged(t, res, 5)
}

func TestMomentumValidation(t *testing.T) {
	r := newRig(t, 1, 1, nil)
	for _, mu := range []float64{-0.1, 1.0, 2} {
		p := Params{Step: Constant{A: 0.01}, SampleFrac: 0.5, Updates: 1, Momentum: mu}
		if _, err := SyncSGD(r.ac, r.d, p, r.fstar); err == nil {
			t.Fatalf("momentum %v accepted", mu)
		}
	}
}
