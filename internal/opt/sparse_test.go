package opt

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/la"
	"repro/internal/rdd"
)

// sparseCfg is the sparse dataset the path-equivalence tests run on: wide
// enough (and its nnz small enough) that tasks at the tests' sampling
// fractions pass both halves of the sparse gate.
func sparseCfg() dataset.SynthConfig {
	return dataset.SynthConfig{
		Name: "sparse-eq", Rows: 300, Cols: 40_000, NNZPerRow: 8, Noise: 0.1, Seed: 23,
	}
}

// newSparseRig assembles an engine over an arbitrary synthetic dataset
// (the shared newRig fixture is dense by construction).
func newSparseRig(t *testing.T, workers, parts int, cfg dataset.SynthConfig) (*core.Context, *dataset.Dataset) {
	t.Helper()
	c, err := cluster.NewLocal(cluster.Config{NumWorkers: workers, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Shutdown)
	d, err := dataset.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rctx := rdd.NewContext(c)
	if _, err := rctx.Distribute(d, parts); err != nil {
		t.Fatal(err)
	}
	ac := core.New(rctx)
	t.Cleanup(ac.Close)
	return ac, d
}

// forceDense pins the density threshold to 0 (every task takes the dense
// path) and restores it on cleanup.
func forceDense(t *testing.T) {
	t.Helper()
	old := SparseDensityThreshold
	SparseDensityThreshold = 0
	t.Cleanup(func() { SparseDensityThreshold = old })
}

// runASGD executes one deterministic single-worker ASGD run.
func runASGD(t *testing.T, p Params) la.Vec {
	t.Helper()
	ac, d := newSparseRig(t, 1, 2, sparseCfg())
	res, err := ASGD(ac, d, p, 0)
	if err != nil {
		t.Fatal(err)
	}
	return res.W
}

// TestSparsePathMatchesDenseASGD is the core identity guarantee of the
// sparse-delta path: on a fixed seed, the sparse O(nnz) pipeline and the
// dense O(d) pipeline produce bitwise-identical models (the sparse sweep
// consumes the RNG identically and mirrors the dense arithmetic operation
// for operation).
func TestSparsePathMatchesDenseASGD(t *testing.T) {
	p := Params{Step: InvSqrt{A: 0.1}, SampleFrac: 0.3, Updates: 150, SnapshotEvery: 50}
	wSparse := runASGD(t, p)
	wDense := func() la.Vec {
		forceDense(t)
		return runASGD(t, p)
	}()
	if !la.Equal(wSparse, wDense, 0) {
		t.Fatal("sparse and dense ASGD paths diverged on a fixed seed")
	}
}

// TestSparsePathMatchesDenseRidge checks the lazy-L2 contract: deferred
// per-coordinate shrinkage settles to the same model the eager dense path
// computes (to rounding — the deferred factors telescope into products).
func TestSparsePathMatchesDenseRidge(t *testing.T) {
	p := Params{
		Loss: Ridge{Inner: LeastSquares{}, Lambda: 0.05},
		Step: InvSqrt{A: 0.1}, SampleFrac: 0.3, Updates: 150, SnapshotEvery: 50,
	}
	wSparse := runASGD(t, p)
	wDense := func() la.Vec {
		forceDense(t)
		return runASGD(t, p)
	}()
	if !la.Equal(wSparse, wDense, 1e-9) {
		t.Fatal("lazy-L2 sparse path diverged from the eager dense path")
	}
	// the penalty must actually have acted: compare against the plain run
	plain := runASGD(t, Params{Step: InvSqrt{A: 0.1}, SampleFrac: 0.3, Updates: 150, SnapshotEvery: 50})
	if la.Norm2(wSparse) >= la.Norm2(plain) {
		t.Fatalf("ridge run (‖w‖=%v) not smaller than plain (‖w‖=%v)", la.Norm2(wSparse), la.Norm2(plain))
	}
}

// TestSparsePathMatchesDenseASAGA checks the lazy avgHist drift of the
// sparse SAGA driver against the eager dense update.
func TestSparsePathMatchesDenseASAGA(t *testing.T) {
	p := Params{Step: Constant{A: 0.02}, SampleFrac: 0.25, Updates: 120, SnapshotEvery: 40}
	run := func() la.Vec {
		ac, d := newSparseRig(t, 1, 2, sparseCfg())
		res, err := ASAGA(ac, d, p, 0)
		if err != nil {
			t.Fatal(err)
		}
		return res.W
	}
	wSparse := run()
	forceDense(t)
	wDense := run()
	if !la.Equal(wSparse, wDense, 1e-9) {
		t.Fatal("sparse and dense ASAGA paths diverged on a fixed seed")
	}
}

// TestSparsePathMatchesDenseEpochVR checks the lazy μ drift of the sparse
// variance-reduced inner loop.
func TestSparsePathMatchesDenseEpochVR(t *testing.T) {
	p := VRParams{
		Params: Params{Step: Constant{A: 0.05}, SampleFrac: 0.3, Updates: 1, SnapshotEvery: 40},
		Epochs: 3, UpdatesPerEpoch: 40,
	}
	run := func() la.Vec {
		ac, d := newSparseRig(t, 1, 2, sparseCfg())
		res, err := EpochVR(ac, d, p, 0)
		if err != nil {
			t.Fatal(err)
		}
		return res.W
	}
	wSparse := run()
	forceDense(t)
	wDense := run()
	if !la.Equal(wSparse, wDense, 1e-9) {
		t.Fatal("sparse and dense EpochVR paths diverged on a fixed seed")
	}
}

// sparseKernelEnv is a single-worker environment over a sparse dataset with
// a cached model broadcast.
func sparseKernelEnv(t testing.TB) (*cluster.Env, []int, int) {
	t.Helper()
	d, err := dataset.Generate(dataset.SynthConfig{
		Name: "sparse-kernel", Rows: 400, Cols: 50_000, NNZPerRow: 8, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	parts, err := dataset.Split(d, 2)
	if err != nil {
		t.Fatal(err)
	}
	env := cluster.NewEnv(0, 1, nil)
	idx := make([]int, 0, len(parts))
	for _, p := range parts {
		if err := env.InstallPartition(p); err != nil {
			t.Fatal(err)
		}
		idx = append(idx, p.Index)
	}
	env.Cache().Put("w", 1, la.NewVec(d.NumCols()))
	return env, idx, d.NumCols()
}

// TestSparseKernelPayloadTypes pins which payload each kernel ships per
// loss and density — the contract the drivers dispatch on.
func TestSparseKernelPayloadTypes(t *testing.T) {
	env, idx, _ := sparseKernelEnv(t)
	br := core.DynBroadcast{ID: "w", Version: 1}
	collect := func(k core.Kernel) any {
		v, n, err := k(env, idx, 9)
		if err != nil {
			t.Fatal(err)
		}
		if n == 0 {
			t.Fatal("empty sample")
		}
		return v
	}
	if v := collect(GradKernel(LeastSquares{}, br, 0.25)); v != nil {
		d, ok := v.(*la.DeltaVec)
		if !ok {
			t.Fatalf("sparse GradKernel shipped %T, want *la.DeltaVec", v)
		}
		la.PutDelta(d)
	}
	if v := collect(GradKernel(Ridge{Inner: LeastSquares{}, Lambda: 0.1}, br, 0.25)); v != nil {
		d, ok := v.(*la.DeltaVec)
		if !ok {
			t.Fatalf("sparse ridge GradKernel shipped %T, want *la.DeltaVec (λ is driver-side)", v)
		}
		la.PutDelta(d)
	}
	if v := collect(SagaKernel(Logistic{}, br, 0.25)); v != nil {
		sd, ok := v.(SagaDelta)
		if !ok {
			t.Fatalf("sparse SagaKernel shipped %T, want SagaDelta", v)
		}
		la.PutDelta(sd.Sum)
		la.PutDelta(sd.HistSum)
	}
	// lazy SAGA shrinkage is unsupported: ridge SAGA stays dense
	if v := collect(SagaKernel(Ridge{Inner: LeastSquares{}, Lambda: 0.1}, br, 0.25)); v != nil {
		sp, ok := v.(SagaPartial)
		if !ok {
			t.Fatalf("ridge SagaKernel shipped %T, want dense SagaPartial", v)
		}
		la.PutVec(sp.Sum)
		la.PutVec(sp.HistSum)
	}
	if v := collect(VRKernel(LeastSquares{}, br, br, 0.25)); v != nil {
		d, ok := v.(*la.DeltaVec)
		if !ok {
			t.Fatalf("sparse VRKernel shipped %T, want *la.DeltaVec", v)
		}
		la.PutDelta(d)
	}
	// dense fallback: pin the threshold to 0 and the same kernels ship
	// dense vectors again
	forceDense(t)
	if v := collect(GradKernel(LeastSquares{}, br, 0.25)); v != nil {
		g, ok := v.(la.Vec)
		if !ok {
			t.Fatalf("dense-forced GradKernel shipped %T, want la.Vec", v)
		}
		la.PutVec(g)
	}
}

// TestSparseGradKernelZeroAlloc pins the sparse inner loop at zero steady-
// state allocations — stronger than the dense path's single payload-boxing
// allocation, since a pooled *la.DeltaVec boxes without allocating.
func TestSparseGradKernelZeroAlloc(t *testing.T) {
	env, idx, _ := sparseKernelEnv(t)
	kern := GradKernel(LeastSquares{}, core.DynBroadcast{ID: "w", Version: 1}, 0.3)
	seed := int64(0)
	work := func() {
		v, n, err := kern(env, idx, seed)
		if err != nil {
			t.Fatal(err)
		}
		if n > 0 {
			la.PutDelta(v.(*la.DeltaVec))
		}
		seed++
	}
	for i := 0; i < 5; i++ {
		work() // warm the accumulator, pool, and scratch RNG
	}
	if allocs := testing.AllocsPerRun(100, work); allocs != 0 {
		t.Errorf("sparse GradKernel steady state allocates %v per task, want 0", allocs)
	}
}

// TestSparseSagaKernelZeroAlloc does the same for the historical-gradient
// kernel (two accumulators, history table lookups included).
func TestSparseSagaKernelZeroAlloc(t *testing.T) {
	env, idx, _ := sparseKernelEnv(t)
	kern := SagaKernel(LeastSquares{}, core.DynBroadcast{ID: "w", Version: 1}, 0.3)
	// fixed seed: a fresh sample set would insert new history-table keys,
	// which is real per-sample state growth, not a hot-path regression
	work := func() {
		v, n, err := kern(env, idx, 7)
		if err != nil {
			t.Fatal(err)
		}
		if n > 0 {
			sd := v.(SagaDelta)
			la.PutDelta(sd.Sum)
			la.PutDelta(sd.HistSum)
		}
	}
	for i := 0; i < 5; i++ {
		work()
	}
	// SagaDelta is a two-pointer struct: boxing it into `any` is the one
	// unavoidable steady-state allocation (like the dense payload boxing)
	if allocs := testing.AllocsPerRun(100, work); allocs > 1 {
		t.Errorf("sparse SagaKernel steady state allocates %v per task, want ≤ 1 (payload boxing)", allocs)
	}
}

// TestRemoteASGDSparseOverTCP drives the whole stack — sparse kernels,
// SagaOp/GradOp args and delta payloads through the negotiated binary
// codec, lazy driver updates — across real sockets.
func TestRemoteASGDSparseOverTCP(t *testing.T) {
	r := newTCPRigWith(t, 3, dataset.SynthConfig{
		Name: "tcp-sparse", Rows: 400, Cols: 30_000, NNZPerRow: 8, Noise: 0.05, Seed: 12,
	})
	res, err := RemoteASGD(r.ac, r.d, Params{
		Step: Scaled{Base: InvSqrt{A: 0.6}, Factor: 3}, SampleFrac: 0.2,
		Updates: 600, SnapshotEvery: 200,
	}, r.fstar)
	if err != nil {
		t.Fatal(err)
	}
	// a wide near-interpolating system converges slowly along its 400-dim
	// row space; the test is about the sparse wire path, not the rate
	r.assertConverged(t, res, 2)
}

// TestRemoteASAGASparseOverTCP is the SagaDelta flavour of the above.
func TestRemoteASAGASparseOverTCP(t *testing.T) {
	r := newTCPRigWith(t, 3, dataset.SynthConfig{
		Name: "tcp-sparse-saga", Rows: 400, Cols: 30_000, NNZPerRow: 8, Noise: 0.05, Seed: 13,
	})
	res, err := RemoteASAGA(r.ac, r.d, Params{
		Step: Constant{A: 0.1 / 3}, SampleFrac: 0.2,
		Updates: 600, SnapshotEvery: 200,
	}, r.fstar)
	if err != nil {
		t.Fatal(err)
	}
	r.assertConverged(t, res, 2)
}

// TestSparseASGDOnSparseData guards SparseGradKernel (the top-k path)
// against the adaptive kernel payloads: it must keep shipping la.SparseVec
// even on datasets where GradKernel would take the sparse-delta path
// (regression: it once delegated to GradKernel and errored on *la.DeltaVec
// payloads, livelocking the SparseASGD driver loop).
func TestSparseASGDOnSparseData(t *testing.T) {
	ac, d := newSparseRig(t, 1, 2, sparseCfg())
	res, coords, err := SparseASGD(ac, d, Params{
		Step: InvSqrt{A: 0.1}, SampleFrac: 0.3, Updates: 40, SnapshotEvery: 20,
	}, 0.05, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Trace.Total; got <= 0 {
		t.Fatalf("no run recorded: total %v", got)
	}
	k := int(0.05 * float64(d.NumCols()))
	if coords <= 0 || coords > int64(40*k) {
		t.Fatalf("shipped %d coordinates, want in (0, %d]", coords, 40*k)
	}
}
