package opt

import (
	"fmt"
	"math"

	"repro/internal/la"
)

// Driver-side lazy model updates for the sparse-delta data path.
//
// A sparse task payload touches O(nnz) coordinates, but two update terms
// are dense by nature: the L2 shrinkage (1 − αλ)·w of a Ridge loss, and
// additive dense drifts like SAGA's −α·avgHist or SVRG's −α·μ. Applying
// either eagerly would put the driver back at O(d) per update. Instead the
// appliers here defer the dense term per coordinate — a timestamp records
// how far each coordinate has been settled — and settle it in O(1) when a
// sparse update touches the coordinate, or in one O(d) sweep when the full
// model must be externally consistent (snapshot, broadcast, finish, or a
// dense payload arriving mid-run). The deferred algebra telescopes, so the
// settled model is mathematically identical to the eager dense path; the
// regression tests in sparse_test.go pin this (bitwise for unregularized
// losses, to rounding for the deferred products and sums).

// shrinkRenorm bounds the running shrink-factor product: when it decays
// below this, a settle sweep renormalises it to 1 so the per-coordinate
// ratios never lose precision or underflow.
const shrinkRenorm = 1e-120

// sgdApplier applies collected gradient payloads for the SGD family
// (SyncSGD has its own per-round reduction; ASGD and RemoteASGD use this).
// Dense la.Vec payloads take the eager path unchanged; sparse *la.DeltaVec
// payloads take the O(nnz) path with lazy L2 shrinkage.
type sgdApplier struct {
	st     *stepper
	lambda float64 // L2 coefficient peeled off a Ridge loss (0 = none)

	// lazy shrinkage state: the true model is w[j]·(prod/lastProd[j]);
	// settle() restores w[j] itself and resets both to 1.
	prod     float64
	lastProd la.Vec
	dirty    bool

	scatter la.Vec // dense scratch for the momentum fallback
}

// newSGDApplier builds the applier for a run over cols coordinates.
func newSGDApplier(p *Params, cols int) *sgdApplier {
	a := &sgdApplier{st: newStepper(p.Momentum, cols), prod: 1}
	if _, lambda, ok := splitLoss(p.Loss); ok {
		a.lambda = lambda
	}
	return a
}

// apply performs one model update from a collected payload and recycles the
// payload's pooled storage. alpha is the step size, batch the mini-batch
// size from the result attributes.
func (a *sgdApplier) apply(w la.Vec, payload any, alpha float64, batch int) error {
	switch g := payload.(type) {
	case la.Vec:
		// dense partials already carry the loss's own λ·w_task terms
		a.settle(w)
		a.st.apply(w, g, alpha/float64(batch))
		la.PutVec(g)
		return nil
	case *la.DeltaVec:
		a.applySparse(w, g, alpha, batch)
		la.PutDelta(g)
		return nil
	default:
		return fmt.Errorf("opt: unexpected gradient payload %T", payload)
	}
}

func (a *sgdApplier) applySparse(w la.Vec, g *la.DeltaVec, alpha float64, batch int) {
	ab := alpha / float64(batch)
	if a.st.mu > 0 {
		// momentum decays every velocity coordinate — inherently O(d), so
		// expand the delta and take the dense step (the sparse payload
		// still saved worker compute and wire bytes)
		a.settle(w)
		if a.scatter == nil {
			a.scatter = la.NewVec(len(w))
		}
		a.scatter.Zero()
		g.AxpyDense(1, a.scatter)
		if a.lambda > 0 {
			la.Axpy(float64(batch)*a.lambda, w, a.scatter)
		}
		a.st.apply(w, a.scatter, ab)
		return
	}
	if a.lambda <= 0 {
		g.AxpyDense(-ab, w)
		return
	}
	// lazy L2: w ← (1−αλ)·w − (α/b)·g, shrinking untouched coordinates
	// only through the deferred product
	if a.lastProd == nil {
		a.lastProd = la.NewVec(len(w))
		for j := range a.lastProd {
			a.lastProd[j] = 1
		}
	}
	np := a.prod * (1 - alpha*a.lambda)
	for k, j := range g.Idx {
		w[j] = w[j]*(np/a.lastProd[j]) - ab*g.Val[k]
		a.lastProd[j] = np
	}
	a.prod = np
	a.dirty = true
	if math.Abs(np) < shrinkRenorm {
		a.settle(w)
	}
}

// settle flushes deferred shrinkage so w is externally consistent. Call
// before any read of the full model: snapshot, broadcast, finish, or a
// dense update.
func (a *sgdApplier) settle(w la.Vec) {
	if !a.dirty {
		return
	}
	for j := range w {
		if a.lastProd[j] != a.prod {
			w[j] *= a.prod / a.lastProd[j]
		}
		a.lastProd[j] = 1
	}
	a.prod = 1
	a.dirty = false
}

// AxpyPayload applies w += alpha·g for a collected gradient payload of
// either task path — dense la.Vec or sparse *la.DeltaVec — and recycles
// the payload's pooled storage. Consumers outside the solver drivers
// (ablation harnesses, examples) use it so they stay correct whichever
// path the kernel chose.
func AxpyPayload(alpha float64, payload any, w la.Vec) error {
	switch g := payload.(type) {
	case la.Vec:
		la.Axpy(alpha, g, w)
		la.PutVec(g)
		return nil
	case *la.DeltaVec:
		g.AxpyDense(alpha, w)
		la.PutDelta(g)
		return nil
	default:
		return fmt.Errorf("opt: unexpected gradient payload %T", payload)
	}
}

// lazyDrift defers the per-update dense term w ← w − α·base where base[j]
// changes only at moments coordinate j is being settled anyway (SAGA's
// avgHist moves only at touched coordinates; SVRG's μ is constant within an
// epoch). cum accumulates the applied step sizes; last[j] records cum at
// coordinate j's latest settle, so the missing contribution is
// (cum − last[j])·base[j] — the telescoped sum of the skipped updates.
type lazyDrift struct {
	cum   float64
	last  la.Vec
	dirty bool
}

// ensure sizes the timestamp table on first sparse use; existing deferred
// state is preserved across calls.
func (l *lazyDrift) ensure(cols int) {
	if l.last == nil {
		l.last = la.NewVec(cols)
		for j := range l.last {
			l.last[j] = l.cum
		}
	}
}

// advance registers one applied update of step alpha whose dense term is
// being deferred.
func (l *lazyDrift) advance(alpha float64) {
	l.cum += alpha
	l.dirty = true
}

// settleCoord catches coordinate j up through every update registered so
// far, reading base[j] before the caller mutates it.
func (l *lazyDrift) settleCoord(w, base la.Vec, j int32) {
	if d := l.cum - l.last[j]; d != 0 {
		w[j] -= d * base[j]
	}
	l.last[j] = l.cum
}

// settleAll catches every coordinate up (snapshot/broadcast/finish, or
// before base changes wholesale, e.g. a new SVRG epoch anchor).
func (l *lazyDrift) settleAll(w, base la.Vec) {
	if !l.dirty {
		return
	}
	for j := range w {
		if d := l.cum - l.last[j]; d != 0 {
			w[j] -= d * base[j]
			l.last[j] = l.cum
		}
	}
	l.dirty = false
}
