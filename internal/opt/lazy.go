package opt

import (
	"fmt"
	"math"

	"repro/internal/la"
)

// Driver-side lazy model updates for the sparse-delta data path.
//
// A sparse task payload touches O(nnz) coordinates, but three update terms
// are dense by nature: the L2 shrinkage (1 − αλ2)·w of a ridge term, the
// per-update soft-threshold prox of an ℓ1 term, and additive dense drifts
// like SAGA's −α·avgHist or SVRG's −α·μ. Applying any eagerly would put the
// driver back at O(d) per update. Instead the appliers here defer the dense
// term per coordinate — a timestamp records how far each coordinate has
// been settled — and settle it in O(1) when a sparse update touches the
// coordinate, or in one O(d) sweep when the full model must be externally
// consistent (snapshot, broadcast, finish, or a dense payload arriving
// mid-run). The deferred algebra telescopes, so the settled model is
// mathematically identical to the eager dense path; the regression tests in
// sparse_test.go pin this (bitwise for unregularized losses, to rounding
// for the deferred products and sums).
//
// Prox-at-settle: the ℓ1 telescoping rests on two exact scalar identities
// (see SoftThreshold) — thresholds compose additively and commute with
// positive scaling. With prod_k the running shrink product after update k
// and the normalized threshold accumulator
//
//	l1cum_k = Σ_{i≤k} α_i·λ1 / prod_i,
//
// a coordinate last settled at update s catches up to update k in O(1):
//
//	w_j ← (prod_k/prod_s) · soft(w_j, (l1cum_k − l1cum_s)·prod_s)
//
// — the skipped updates' shrinkages and soft-thresholds folded into one
// scale and one threshold. A touched coordinate settles through k−1 first,
// then applies update k's own shrink → gradient → threshold in the eager
// order, so the settled model equals the eager elastic-net iteration
// exactly (up to float rounding of the reassociated products).

// shrinkRenorm bounds the running shrink-factor product: when it decays
// below this, a settle sweep renormalises it to 1 so the per-coordinate
// ratios never lose precision or underflow.
const shrinkRenorm = 1e-120

// l1cumRenorm bounds the normalized threshold accumulator: prod ≈ 1 runs
// (tiny λ2) grow it linearly, so force a settle long before the subtraction
// l1cum − l1last[j] loses precision.
const l1cumRenorm = 1e18

// proxApplier applies collected gradient payloads for the SGD family
// (SyncSGD has its own per-round reduction; ASGD and RemoteASGD use this).
// Dense la.Vec payloads take the eager path; sparse *la.DeltaVec payloads
// take the O(nnz) path with lazy L2 shrinkage and prox-at-settle ℓ1
// soft-thresholding.
type proxApplier struct {
	st     *stepper
	lambda float64 // L2 coefficient peeled off the objective (0 = none)
	l1     float64 // ℓ1 coefficient, applied as prox-at-settle (0 = none)

	// lazy state: the true model is (prod/lastProd[j])·soft(w[j], pending_j)
	// with pending_j = (l1cum − l1last[j])·lastProd[j]; settle() restores
	// w[j] itself and resets prod/lastProd to 1 and l1cum/l1last to 0.
	prod     float64
	lastProd la.Vec
	l1cum    float64
	l1last   la.Vec // allocated only when l1 > 0
	dirty    bool

	scatter la.Vec // dense scratch for the momentum fallback
}

// newProxApplier builds the applier for a run over cols coordinates.
func newProxApplier(p *Params, cols int) *proxApplier {
	a := &proxApplier{st: newStepper(p.Momentum, cols), prod: 1}
	if _, l2, l1, ok := splitProx(p.Loss); ok {
		a.lambda, a.l1 = l2, l1
	}
	return a
}

// apply performs one model update from a collected payload and recycles the
// payload's pooled storage. alpha is the step size, batch the mini-batch
// size from the result attributes.
func (a *proxApplier) apply(w la.Vec, payload any, alpha float64, batch int) error {
	switch g := payload.(type) {
	case la.Vec:
		// dense partials already carry the smooth λ2·w_task terms
		a.settle(w)
		a.st.apply(w, g, alpha/float64(batch))
		a.proxSweep(w, alpha)
		la.PutVec(g)
		return nil
	case *la.DeltaVec:
		a.applySparse(w, g, alpha, batch)
		la.PutDelta(g)
		return nil
	default:
		return fmt.Errorf("opt: unexpected gradient payload %T", payload)
	}
}

func (a *proxApplier) applySparse(w la.Vec, g *la.DeltaVec, alpha float64, batch int) {
	ab := alpha / float64(batch)
	if a.st.mu > 0 {
		// momentum decays every velocity coordinate — inherently O(d), so
		// expand the delta and take the dense step (the sparse payload
		// still saved worker compute and wire bytes)
		a.settle(w)
		if a.scatter == nil {
			a.scatter = la.NewVec(len(w))
		}
		a.scatter.Zero()
		g.AxpyDense(1, a.scatter)
		if a.lambda > 0 {
			la.Axpy(float64(batch)*a.lambda, w, a.scatter)
		}
		a.st.apply(w, a.scatter, ab)
		a.proxSweep(w, alpha)
		return
	}
	if a.lambda <= 0 && a.l1 <= 0 {
		g.AxpyDense(-ab, w)
		return
	}
	a.ensureLazy(len(w))
	np := a.prod * (1 - alpha*a.lambda)
	if a.l1 <= 0 {
		// lazy L2 only: w ← (1−αλ2)·w − (α/b)·g, shrinking untouched
		// coordinates only through the deferred product
		for k, j := range g.Idx {
			w[j] = w[j]*(np/a.lastProd[j]) - ab*g.Val[k]
			a.lastProd[j] = np
		}
	} else {
		// prox-at-settle: catch the touched coordinate up through the
		// previous update (scale + one folded threshold), then apply this
		// update's shrink → gradient → soft-threshold in the eager order
		nl1 := a.l1cum + alpha*a.l1/np
		thr := alpha * a.l1
		for k, j := range g.Idx {
			// the pending threshold is expressed at the coordinate's own
			// settle scale — threshold first, then rescale, like settle()
			x := w[j]
			if pend := (a.l1cum - a.l1last[j]) * a.lastProd[j]; pend > 0 {
				x = SoftThreshold(x, pend)
			}
			w[j] = SoftThreshold(x*(np/a.lastProd[j])-ab*g.Val[k], thr)
			a.lastProd[j] = np
			a.l1last[j] = nl1
		}
		a.l1cum = nl1
	}
	a.prod = np
	a.dirty = true
	if math.Abs(np) < shrinkRenorm || a.l1cum > l1cumRenorm {
		a.settle(w)
	}
}

// ensureLazy sizes the per-coordinate settle timestamps on first sparse use.
func (a *proxApplier) ensureLazy(cols int) {
	if a.lastProd == nil {
		a.lastProd = la.NewVec(cols)
		for j := range a.lastProd {
			a.lastProd[j] = 1
		}
	}
	if a.l1 > 0 && a.l1last == nil {
		a.l1last = la.NewVec(cols)
	}
}

// proxSweep applies one eager per-update soft-threshold over the full model
// — the dense-path counterpart of the deferred thresholds (the model must
// already be settled).
func (a *proxApplier) proxSweep(w la.Vec, alpha float64) {
	if a.l1 <= 0 {
		return
	}
	thr := alpha * a.l1
	for j := range w {
		w[j] = SoftThreshold(w[j], thr)
	}
}

// settle flushes deferred shrinkage and pending soft-thresholds so w is
// externally consistent. Call before any read of the full model: snapshot,
// broadcast, finish, or a dense update.
func (a *proxApplier) settle(w la.Vec) {
	if !a.dirty {
		return
	}
	if a.l1last == nil {
		for j := range w {
			if a.lastProd[j] != a.prod {
				w[j] *= a.prod / a.lastProd[j]
			}
			a.lastProd[j] = 1
		}
	} else {
		for j := range w {
			// threshold first at the coordinate's own settle scale, then
			// rescale — the telescoped form of the skipped updates
			if pend := (a.l1cum - a.l1last[j]) * a.lastProd[j]; pend > 0 {
				w[j] = SoftThreshold(w[j], pend)
			}
			if a.lastProd[j] != a.prod {
				w[j] *= a.prod / a.lastProd[j]
			}
			a.lastProd[j] = 1
			a.l1last[j] = 0
		}
	}
	a.prod = 1
	a.l1cum = 0
	a.dirty = false
}

// AxpyPayload applies w += alpha·g for a collected gradient payload of
// either task path — dense la.Vec or sparse *la.DeltaVec — and recycles
// the payload's pooled storage. Consumers outside the solver drivers
// (ablation harnesses, examples) use it so they stay correct whichever
// path the kernel chose.
func AxpyPayload(alpha float64, payload any, w la.Vec) error {
	switch g := payload.(type) {
	case la.Vec:
		la.Axpy(alpha, g, w)
		la.PutVec(g)
		return nil
	case *la.DeltaVec:
		g.AxpyDense(alpha, w)
		la.PutDelta(g)
		return nil
	default:
		return fmt.Errorf("opt: unexpected gradient payload %T", payload)
	}
}

// lazyDrift defers the per-update dense term w ← w − α·base where base[j]
// changes only at moments coordinate j is being settled anyway (SAGA's
// avgHist moves only at touched coordinates; SVRG's μ is constant within an
// epoch). cum accumulates the applied step sizes; last[j] records cum at
// coordinate j's latest settle, so the missing contribution is
// (cum − last[j])·base[j] — the telescoped sum of the skipped updates.
type lazyDrift struct {
	cum   float64
	last  la.Vec
	dirty bool
}

// ensure sizes the timestamp table on first sparse use; existing deferred
// state is preserved across calls.
func (l *lazyDrift) ensure(cols int) {
	if l.last == nil {
		l.last = la.NewVec(cols)
		for j := range l.last {
			l.last[j] = l.cum
		}
	}
}

// advance registers one applied update of step alpha whose dense term is
// being deferred.
func (l *lazyDrift) advance(alpha float64) {
	l.cum += alpha
	l.dirty = true
}

// settleCoord catches coordinate j up through every update registered so
// far, reading base[j] before the caller mutates it.
func (l *lazyDrift) settleCoord(w, base la.Vec, j int32) {
	if d := l.cum - l.last[j]; d != 0 {
		w[j] -= d * base[j]
	}
	l.last[j] = l.cum
}

// settleAll catches every coordinate up (snapshot/broadcast/finish, or
// before base changes wholesale, e.g. a new SVRG epoch anchor).
func (l *lazyDrift) settleAll(w, base la.Vec) {
	if !l.dirty {
		return
	}
	for j := range w {
		if d := l.cum - l.last[j]; d != 0 {
			w[j] -= d * base[j]
			l.last[j] = l.cum
		}
	}
	l.dirty = false
}
