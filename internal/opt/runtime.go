package opt

import (
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/metrics"
)

// PreemptSignal requests a mid-run stop at the next update boundary: the
// runtime settles the model, captures a checkpoint, drains in-flight tasks,
// and returns a *PreemptedError carrying the checkpoint. Trigger is safe
// from any goroutine; the poll happens on the driver goroutine only.
type PreemptSignal struct{ flag atomic.Bool }

// NewPreemptSignal builds a signal to pass through Params.Preempt.
func NewPreemptSignal() *PreemptSignal { return &PreemptSignal{} }

// Trigger requests preemption. Idempotent; nil receivers are no-ops.
func (s *PreemptSignal) Trigger() {
	if s != nil {
		s.flag.Store(true)
	}
}

// Requested reports whether Trigger has been called.
func (s *PreemptSignal) Requested() bool { return s != nil && s.flag.Load() }

// PreemptedError reports that a run stopped at an update boundary in
// response to its PreemptSignal. Checkpoint resumes the run exactly where
// it stopped (Params.Resume).
type PreemptedError struct{ Checkpoint *Checkpoint }

func (e *PreemptedError) Error() string {
	return fmt.Sprintf("opt: run preempted at update %d", e.Checkpoint.Updates)
}

// publishMode selects how the runtime stages the model for the workers each
// dispatch cycle.
type publishMode int

const (
	// pubStamped re-broadcasts only when an update landed since the last
	// cycle (ASYNCbroadcastStamped keyed by the global update clock) — the
	// steady-state mode of the asynchronous solvers.
	pubStamped publishMode = iota
	// pubPlain registers a fresh version every cycle (lazy worker fetch).
	pubPlain
	// pubEager additionally pushes the value to all live workers.
	pubEager
)

// loopSpec parameterizes runLoop: everything that varies between solvers
// besides the Updater itself.
type loopSpec struct {
	Algo  string // trace label ("ASGD")
	Name  string // registry name recorded in checkpoints ("asgd")
	Key   string // broadcast id for the model
	P     *Params
	Loss  Loss // loss used to resolve the trace
	FStar float64

	// Target is the run budget: global model updates, or rounds when
	// RoundBudget is set.
	Target  int64
	Publish publishMode
	// Prune trims the driver-side broadcast store to 4x the worker count
	// after each publish.
	Prune bool
	// Barrier overrides P.Barrier (the bulk-synchronous solvers force BSP);
	// nil inherits P.Barrier.
	Barrier core.BarrierFunc
	// Dispatch issues this cycle's tasks against the published model.
	Dispatch func(wBr core.DynBroadcast, sel *core.Selection) (int, error)

	// Round switches to bulk-synchronous semantics: every collected partial
	// is folded via Apply and the RoundUpdater's FlushRound turns the round
	// into one model update. StreamRound collects only what has arrived
	// (up to n — asynchronous consensus rounds); otherwise the round blocks
	// for all n partials. RoundBudget makes Target count attempted rounds
	// (empty rounds included) instead of applied updates.
	Round       bool
	StreamRound bool
	RoundBudget bool

	// EpochLen, when positive, divides the run into epochs of that many
	// updates; EpochBegin runs before the first dispatch of each epoch
	// (after draining the previous epoch's stragglers).
	EpochLen   int64
	EpochBegin func(global int64) error

	// SyncStep replaces the publish/barrier/dispatch/collect machinery for
	// AC-free synchronous drivers (mllib-sgd): one call is one round, and
	// applied=false marks an empty round (recorded clock still advances,
	// matching the historical Spark-style drivers). When set, ac may be nil
	// and Workers supplies the trace's worker count.
	SyncStep func(global int64) (applied bool, err error)
	Workers  int
}

// runState is the runtime's per-run bookkeeping, shared with the core
// update-boundary hook.
type runState struct {
	spec  *loopSpec
	u     Updater
	ac    *core.Context // nil for AC-free synchronous drivers
	base  int64         // global = base + AC clock
	round int64         // attempted rounds (round-budgeted solvers)
	// cpDue is set by the update-boundary hook when the global clock hits
	// the checkpoint cadence; consumed on the driver goroutine.
	cpDue bool
	// sinceSettle counts partials folded since the last Settle — the
	// lazy-update backlog exported through async_opt_lazy_settle_backlog.
	sinceSettle int64
}

// apply folds one partial into the updater, timing the driver-side cost and
// tracking the lazy-settle backlog.
func (rt *runState) apply(payload any, attrs *core.Attrs, alpha float64) error {
	start := time.Now()
	err := rt.u.Apply(payload, attrs, alpha)
	optApply.ObserveSince(start)
	rt.sinceSettle++
	optBacklog.SetInt(rt.sinceSettle)
	return err
}

// settle flushes lazily-deferred updater state and zeroes the backlog gauge.
func (rt *runState) settle() {
	start := time.Now()
	rt.u.Settle()
	optSettle.ObserveSince(start)
	rt.sinceSettle = 0
	optBacklog.SetInt(0)
}

// onAdvance is the core update-boundary hook: it observes every clock
// advance and marks checkpoint cadence. It runs synchronously on the driver
// goroutine (inside AdvanceClock).
func (rt *runState) onAdvance(updates int64) {
	p := rt.spec.P
	if p.CheckpointEvery > 0 && (rt.base+updates)%int64(p.CheckpointEvery) == 0 {
		rt.cpDue = true
	}
}

// export captures the full driver state as a checkpoint. The caller must
// have settled the updater.
func (rt *runState) export(global int64) *Checkpoint {
	cp := &Checkpoint{
		Algorithm: rt.spec.Name,
		W:         rt.u.Model().Clone(),
		Updates:   global,
	}
	if rt.spec.Round || rt.spec.RoundBudget {
		// round-mode solvers feed the step schedule from the round counter,
		// so a resume must continue it even when the budget counts updates
		cp.SetInt("round", rt.round)
	}
	if rt.ac != nil {
		// the per-run dispatch counter seeds task sampling: carrying it
		// lets a resumed run (even on a reset engine) continue the
		// interrupted run's seed stream exactly
		cp.SetInt("dispatch_seq", rt.ac.Coordinator().DispatchSeq())
	}
	rt.u.Export(cp)
	return cp
}

// afterUpdate runs the per-update-boundary duties: settle-if-snapshot-due,
// record, emit a due checkpoint, and report a pending preemption.
func (rt *runState) afterUpdate(rec *Recorder, global int64) (preempt bool) {
	p := rt.spec.P
	if rec.Due(global) {
		rt.settle()
	}
	rec.Maybe(global, rt.u.Model())
	if rt.cpDue {
		rt.cpDue = false
		if p.OnCheckpoint != nil {
			rt.settle()
			p.Trace.Event("checkpoint", "global", global)
			p.OnCheckpoint(rt.export(global))
		}
	}
	return p.Preempt.Requested()
}

// preempted finalizes a preempted run: settle, capture, drain, and wrap the
// checkpoint in the error the supervising layer dispatches on.
func (rt *runState) preempted(ac *core.Context, global int64) (*Result, error) {
	rt.settle()
	cp := rt.export(global)
	if ac != nil {
		drain(ac, 5*time.Second)
	}
	optPreempts.Inc()
	rt.spec.P.Trace.Event("preempted", "algo", rt.spec.Algo, "global", global)
	return nil, &PreemptedError{Checkpoint: cp}
}

// publish stages the settled model for the workers per the spec's mode.
func (rt *runState) publish(ac *core.Context, global int64) core.DynBroadcast {
	spec := rt.spec
	switch spec.Publish {
	case pubStamped:
		return ac.ASYNCbroadcastStamped(spec.Key, global, func() any {
			rt.settle()
			return rt.u.Model().Clone()
		})
	case pubEager:
		rt.settle()
		return ac.ASYNCbroadcastEager(spec.Key, rt.u.Model().Clone())
	default:
		rt.settle()
		return ac.ASYNCbroadcast(spec.Key, rt.u.Model().Clone())
	}
}

// runLoop is the single solve loop every solver drives: it owns resume
// import, the broadcast/barrier/dispatch/collect cycle, step-size and
// staleness-adaptive scaling, the recorder and progress cadence, lazy
// settle scheduling, periodic checkpoints, preemption, drain, and trace
// assembly. ac may be nil only for SyncStep specs.
func runLoop(ac *core.Context, d *dataset.Dataset, u Updater, spec *loopSpec) (*Result, error) {
	p := spec.P
	rt := &runState{spec: spec, u: u, ac: ac}
	if p.Resume != nil {
		if err := p.Resume.Validate(); err != nil {
			return nil, fmt.Errorf("opt: resume %s: %w", spec.Algo, err)
		}
		// import through a shallow copy carrying the worker-state verdict:
		// a same-context resume (clock still at the checkpointed value)
		// kept every worker's run state; a resume after an engine reset
		// (clock back at zero) did not, and solvers whose driver state is
		// coupled to worker shards must restart those terms consistently
		cp := *p.Resume
		cp.historyAttached = ac != nil && ac.Updates() == cp.Updates
		if err := u.Import(&cp); err != nil {
			return nil, fmt.Errorf("opt: resume %s: %w", spec.Algo, err)
		}
		rt.base = p.Resume.Updates
		rt.round = p.Resume.Int("round")
		if ac != nil {
			// continue the interrupted run's task-seed stream: a reset
			// engine restarts the dispatch counter at zero, which would
			// otherwise re-draw the first segment's samples
			if seq := p.Resume.Int("dispatch_seq"); seq > ac.Coordinator().DispatchSeq() {
				ac.Coordinator().SetDispatchSeq(seq)
			}
		}
	}
	var clock int64
	if ac != nil {
		clock = ac.Updates()
		ac.SetUpdateHook(rt.onAdvance)
		defer ac.SetUpdateHook(nil)
	}
	rt.base -= clock
	global := rt.base + clock
	if spec.RoundBudget && rt.round < global {
		rt.round = global // pre-runtime checkpoints carried no round counter
	}

	optRuns.Inc()
	p.Trace.Event("run_start", "algo", spec.Algo, "target", spec.Target,
		"global", global, "resumed", p.Resume != nil)

	rec := p.recorder()
	rt.settle()
	rec.Force(global, u.Model())

	ru, _ := u.(RoundUpdater)
	if spec.Round && ru == nil {
		return nil, fmt.Errorf("opt: %s: round spec without a RoundUpdater", spec.Algo)
	}
	keep := 0
	if spec.Prune {
		keep = 4 * ac.RDD().Cluster().NumWorkers()
	}
	barrier := spec.Barrier
	if barrier == nil {
		barrier = p.Barrier
	}
	seg := int64(-1)
	budget := func() int64 {
		if spec.RoundBudget {
			return rt.round
		}
		return global
	}
	for budget() < spec.Target {
		if p.Preempt.Requested() {
			return rt.preempted(ac, global)
		}

		// --- AC-free synchronous rounds (mllib-style drivers) ---
		if spec.SyncStep != nil {
			applied, err := spec.SyncStep(global)
			if err != nil {
				return nil, err
			}
			rt.round++
			global++
			rt.onAdvance(global - rt.base)
			if applied {
				if rt.afterUpdate(rec, global) {
					return rt.preempted(ac, global)
				}
			} else {
				rt.cpDue = false // nothing new to capture this round
			}
			continue
		}

		// --- epoch boundary (variance-reduced solvers) ---
		if spec.EpochLen > 0 {
			if s := global / spec.EpochLen; s != seg {
				if seg >= 0 {
					// drain this epoch's stragglers before re-anchoring
					drain(ac, 5*time.Second)
				}
				if err := spec.EpochBegin(global); err != nil {
					return nil, err
				}
				p.Trace.Event("epoch_begin", "epoch", s, "global", global)
				seg = s
			}
		}

		wBr := rt.publish(ac, global)
		if keep > 0 {
			ac.RDD().PruneBroadcast(spec.Key, keep)
		}
		sel, err := ac.ASYNCbarrier(barrier, p.Filter)
		if err != nil {
			return nil, fmt.Errorf("opt: %s after %d updates: %w", spec.Algo, global, err)
		}
		n, err := spec.Dispatch(wBr, sel)
		if err != nil {
			return nil, err
		}

		if spec.Round {
			// --- bulk-synchronous round: fold partials, flush one update ---
			if spec.StreamRound {
				// collect whatever has arrived, up to n (async consensus)
				for first, got := true, 0; (first || ac.HasNext()) && got < n; first = false {
					tr, err := ac.ASYNCcollectAll()
					if err != nil {
						break
					}
					if err := rt.apply(tr.Payload, &tr.Attrs, 0); err != nil {
						return nil, fmt.Errorf("opt: %s: %w", spec.Algo, err)
					}
					got++
				}
			} else {
				// block for all n partials (early break: the rest were
				// empty samples and produced no queue entry)
				for i := 0; i < n; i++ {
					tr, err := ac.ASYNCcollectAll()
					if err != nil {
						break
					}
					if err := rt.apply(tr.Payload, &tr.Attrs, 0); err != nil {
						return nil, fmt.Errorf("opt: %s: %w", spec.Algo, err)
					}
				}
			}
			alpha := 0.0
			if p.Step != nil {
				alpha = p.Step.Alpha(rt.round)
			}
			rt.round++
			applied, err := ru.FlushRound(alpha)
			if err != nil {
				return nil, err
			}
			if !applied {
				continue // empty round: no clock advance, retry
			}
			global = rt.base + ac.AdvanceClock()
			if rt.afterUpdate(rec, global) {
				return rt.preempted(ac, global)
			}
			continue
		}

		// --- streaming collect: one model update per collected result ---
		segEnd := spec.Target
		if spec.EpochLen > 0 {
			if e := (seg + 1) * spec.EpochLen; e < segEnd {
				segEnd = e
			}
		}
		for first := true; (first || ac.HasNext()) && global < segEnd; first = false {
			tr, err := ac.ASYNCcollectAll()
			if err != nil {
				break
			}
			alpha := 0.0
			if p.Step != nil {
				alpha = p.Step.Alpha(global)
				if p.StalenessLR {
					alpha = StalenessAdapt(alpha, tr.Attrs.Staleness)
				}
			}
			if err := rt.apply(tr.Payload, &tr.Attrs, alpha); err != nil {
				return nil, fmt.Errorf("opt: %s: %w", spec.Algo, err)
			}
			global = rt.base + ac.AdvanceClock()
			if rt.afterUpdate(rec, global) {
				return rt.preempted(ac, global)
			}
		}
	}
	rt.settle()
	rec.Finish(global, u.Model())
	p.Trace.Event("run_done", "algo", spec.Algo, "global", global)
	if ac != nil {
		drain(ac, 5*time.Second)
		return &Result{Trace: newTrace(ac, spec.Algo, d, rec, spec.Loss, spec.FStar), W: u.Model()}, nil
	}
	return &Result{
		Trace: &metrics.Trace{
			Algorithm: spec.Algo,
			Dataset:   d.Name,
			Workers:   spec.Workers,
			Points:    rec.Resolve(d, spec.Loss, spec.FStar),
			Total:     rec.Total(),
		},
		W: u.Model(),
	}, nil
}

// drain discards leftover in-flight results so the AC is clean for the next
// run. It returns once nothing is pending or the timeout passes.
func drain(ac *core.Context, timeout time.Duration) {
	deadline := time.Now().Add(timeout)
	for ac.Pending() > 0 || ac.HasNext() {
		if ac.HasNext() {
			if _, err := ac.ASYNCcollect(); err != nil {
				return
			}
			continue
		}
		if time.Now().After(deadline) {
			return
		}
		time.Sleep(time.Millisecond)
	}
}

// newTrace assembles trace metadata after a run.
func newTrace(ac *core.Context, algo string, d *dataset.Dataset, rec *Recorder, loss Loss, fstar float64) *metrics.Trace {
	return &metrics.Trace{
		Algorithm: algo,
		Dataset:   d.Name,
		Workers:   ac.RDD().Cluster().NumWorkers(),
		Straggler: "none", // overwritten by harnesses that inject delays
		Points:    rec.Resolve(d, loss, fstar),
		AvgWait:   ac.Coordinator().WaitTimes(),
		Total:     rec.Total(),
	}
}

// bspRound runs one blocking bulk-synchronous reduction outside the main
// loop (the full-gradient pass of variance-reduced epochs): barrier on BSP,
// dispatch, collect all n partials, folding each through absorb. An early
// collect error means the remaining partials were empty samples.
func bspRound(ac *core.Context, filter core.WorkerFilter, dispatch func(*core.Selection) (int, error), absorb func(payload any, attrs *core.Attrs) error) error {
	sel, err := ac.ASYNCbarrier(core.BSP(), filter)
	if err != nil {
		return err
	}
	n, err := dispatch(sel)
	if err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		tr, err := ac.ASYNCcollectAll()
		if err != nil {
			break
		}
		if err := absorb(tr.Payload, &tr.Attrs); err != nil {
			return err
		}
	}
	return nil
}
