package opt

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/la"
)

// TestObjectiveSpecResolve pins the wire spec → Loss mapping and its
// validation errors.
func TestObjectiveSpecResolve(t *testing.T) {
	cases := []struct {
		name string
		spec ObjectiveSpec
		want string // Name() of the resolved loss; "" = expect an error
	}{
		{"zero value", ObjectiveSpec{}, LeastSquares{}.Name()},
		{"ls alias", ObjectiveSpec{Loss: "ls"}, LeastSquares{}.Name()},
		{"canonical", ObjectiveSpec{Loss: "least-squares"}, LeastSquares{}.Name()},
		{"logistic", ObjectiveSpec{Loss: "Logistic"}, Logistic{}.Name()},
		{"l2 only is ridge", ObjectiveSpec{L2: 0.1}, Ridge{Inner: LeastSquares{}, Lambda: 0.1}.Name()},
		{"l1 is composite", ObjectiveSpec{L2: 0.1, L1: 0.01}, Composite{Inner: LeastSquares{}, L2: 0.1, L1: 0.01}.Name()},
		{"unknown loss", ObjectiveSpec{Loss: "hinge"}, ""},
		{"negative l2", ObjectiveSpec{L2: -1}, ""},
		{"negative l1", ObjectiveSpec{L1: -1}, ""},
		{"nan l2", ObjectiveSpec{L2: math.NaN()}, ""},
		{"inf l1", ObjectiveSpec{L1: math.Inf(1)}, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			l, err := tc.spec.Resolve()
			if tc.want == "" {
				if err == nil {
					t.Fatalf("Resolve(%+v) accepted an invalid spec", tc.spec)
				}
				if tc.spec.Validate() == nil {
					t.Fatalf("Validate(%+v) disagrees with Resolve", tc.spec)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if l.Name() != tc.want {
				t.Fatalf("Resolve(%+v) = %q, want %q", tc.spec, l.Name(), tc.want)
			}
		})
	}
	if !(ObjectiveSpec{}).IsZero() || (ObjectiveSpec{L1: 1}).IsZero() {
		t.Fatal("IsZero misclassifies")
	}
}

// TestObjectiveSpecKey: loss-name aliases collapse to one cache key,
// distinct penalties do not.
func TestObjectiveSpecKey(t *testing.T) {
	a := ObjectiveSpec{Loss: "ls", L2: 0.1}.Key()
	b := ObjectiveSpec{Loss: "least-squares", L2: 0.1}.Key()
	c := ObjectiveSpec{L2: 0.1}.Key()
	if a != b || b != c {
		t.Fatalf("alias keys differ: %q %q %q", a, b, c)
	}
	if (ObjectiveSpec{L2: 0.1}).Key() == (ObjectiveSpec{L2: 0.1, L1: 0.01}).Key() {
		t.Fatal("distinct objectives share a cache key")
	}
}

// TestReferenceOptimumForComposite pins the generalized (FISTA) reference
// solve that backs auto_fstar for composite objectives: the returned value
// must be a true lower envelope of solver runs and beat both the origin
// and random perturbations of the returned minimizer.
func TestReferenceOptimumForComposite(t *testing.T) {
	d, err := dataset.Generate(dataset.SynthConfig{
		Name: "refopt", Rows: 120, Cols: 24, NNZPerRow: 8, Noise: 0.1, Seed: 17,
	})
	if err != nil {
		t.Fatal(err)
	}
	loss := Composite{Inner: LeastSquares{}, L2: 0.05, L1: 0.15}
	w, fstar, err := ReferenceOptimumFor(d, loss)
	if err != nil {
		t.Fatal(err)
	}
	if got := Objective(d, loss, w); math.Abs(got-fstar) > 1e-12 {
		t.Fatalf("fstar %v does not match F(w*) = %v", fstar, got)
	}
	if f0 := Objective(d, loss, la.NewVec(d.NumCols())); fstar >= f0 {
		t.Fatalf("reference optimum %v no better than the origin %v", fstar, f0)
	}
	// first-order optimality, probed: any small perturbation is worse
	for _, eps := range []float64{1e-3, -1e-3} {
		for j := 0; j < d.NumCols(); j += 5 {
			pert := w.Clone()
			pert[j] += eps
			if f := Objective(d, loss, pert); f < fstar-1e-10 {
				t.Fatalf("perturbing w*[%d] by %v improved F: %v < %v", j, eps, f, fstar)
			}
		}
	}
	zeros := 0
	for _, x := range w {
		if x == 0 {
			zeros++
		}
	}
	if zeros == 0 {
		t.Fatal("ℓ1 reference optimum has no exact zeros")
	}

	// plain least squares keeps the normal-equations fast path
	_, fLS, err := ReferenceOptimumFor(d, LeastSquares{})
	if err != nil {
		t.Fatal(err)
	}
	_, fDirect, err := ReferenceOptimum(d)
	if err != nil {
		t.Fatal(err)
	}
	if fLS != fDirect {
		t.Fatalf("LS fast path diverged: %v vs %v", fLS, fDirect)
	}

	// logistic composite: solvable, finite, below the origin
	bin, err := dataset.Generate(dataset.SynthConfig{
		Name: "refopt-bin", Rows: 120, Cols: 16, NNZPerRow: 8, Binary: true, Seed: 23,
	})
	if err != nil {
		t.Fatal(err)
	}
	logit := Composite{Inner: Logistic{}, L2: 0.01, L1: 0.005}
	_, fLogit, err := ReferenceOptimumFor(bin, logit)
	if err != nil {
		t.Fatal(err)
	}
	if f0 := Objective(bin, logit, la.NewVec(bin.NumCols())); !(fLogit < f0) {
		t.Fatalf("logistic reference optimum %v no better than the origin %v", fLogit, f0)
	}

	// objectives without a usable smooth core are refused, not mis-solved
	if _, _, err := ReferenceOptimumFor(d, Composite{Inner: badLoss{}, L1: 0.1}); err == nil {
		t.Fatal("reference solve accepted an objective without a linear core")
	}
}

// TestProxSettleBenchHook smoke-tests the bench hook: repeated steps keep
// the model finite and thresholded (the suite only times it).
func TestProxSettleBenchHook(t *testing.T) {
	step := ProxSettleBench(256, 16)
	for i := 0; i < 5; i++ {
		step()
	}
}
