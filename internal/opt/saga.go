package opt

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/la"
)

// sagaState carries the driver-side SAGA accumulators shared by the
// synchronous and asynchronous variants, plus the lazy-drift machinery of
// the sparse-delta path: the dense −α·avgHist term of each update is
// deferred per coordinate (avgHist itself moves only at touched
// coordinates, so the skipped contributions telescope into
// (Σα − lastSettled_j)·avgHist[j]) and settled on snapshot, broadcast,
// finish, or a dense partial.
type sagaState struct {
	w       la.Vec
	avgHist la.Vec // running average of historical gradients
	n       float64
	drift   lazyDrift
}

func newSagaState(cols, rows int) *sagaState {
	return &sagaState{
		w:       la.NewVec(cols),
		avgHist: la.NewVec(cols),
		n:       float64(rows),
	}
}

// settle flushes the deferred avgHist drift so w is externally consistent.
func (s *sagaState) settle() { s.drift.settleAll(s.w, s.avgHist) }

// init applies warm starts from Params (checkpoint resume).
func (s *sagaState) init(p Params) error {
	if p.InitW != nil {
		if len(p.InitW) != len(s.w) {
			return fmt.Errorf("opt: InitW dim %d != %d", len(p.InitW), len(s.w))
		}
		s.w.CopyFrom(p.InitW)
	}
	if p.InitAvgHist != nil {
		if len(p.InitAvgHist) != len(s.avgHist) {
			return fmt.Errorf("opt: InitAvgHist dim %d != %d", len(p.InitAvgHist), len(s.avgHist))
		}
		s.avgHist.CopyFrom(p.InitAvgHist)
	}
	return nil
}

// apply performs one SAGA update from a collected partial:
//
//	w ← w − α·[ (ΣgCur − ΣgHist)/b + avgHist ]
//	avgHist ← avgHist + (ΣgCur − ΣgHist)/n
//
// which is Algorithm 4 lines 8–9 with the minibatch scaling written out.
func (s *sagaState) apply(alpha float64, part SagaPartial, batch int) error {
	if batch <= 0 {
		return fmt.Errorf("opt: SAGA partial with batch %d", batch)
	}
	if len(part.Sum) != len(s.w) || len(part.HistSum) != len(s.w) {
		return fmt.Errorf("opt: SAGA partial dims (%d,%d) != %d", len(part.Sum), len(part.HistSum), len(s.w))
	}
	// a dense update reads and eagerly applies avgHist everywhere, so any
	// deferred drift must land first
	s.settle()
	// One fused pass instead of four BLAS-1 sweeps: d = ΣgCur − ΣgHist,
	// w −= α·(d/b + avgHist), avgHist += d/n (Algorithm 4 lines 8–9).
	ab := alpha / float64(batch)
	invN := 1 / s.n
	w, avg := s.w, s.avgHist
	for j := range w {
		d := part.Sum[j] - part.HistSum[j]
		w[j] -= ab*d + alpha*avg[j]
		avg[j] += d * invN
	}
	return nil
}

// applyDelta is the O(nnz) flavour of apply for a sparse partial: touched
// coordinates are settled through this update (including its own −α·avgHist
// term, read before avgHist moves, matching the dense order of operations)
// and every untouched coordinate's drift stays deferred.
func (s *sagaState) applyDelta(alpha float64, part SagaDelta, batch int) error {
	if batch <= 0 {
		return fmt.Errorf("opt: SAGA partial with batch %d", batch)
	}
	if part.Sum == nil || part.HistSum == nil || part.Sum.N != len(s.w) || part.HistSum.N != len(s.w) {
		return fmt.Errorf("opt: SAGA sparse partial dims != %d", len(s.w))
	}
	s.drift.ensure(len(s.w))
	s.drift.advance(alpha)
	ab := alpha / float64(batch)
	invN := 1 / s.n
	w, avg := s.w, s.avgHist
	// merged walk over the two supports (each sorted, possibly different:
	// rows with no recorded history contribute no historical gradient)
	S, H := part.Sum, part.HistSum
	si, hi := 0, 0
	for si < len(S.Idx) || hi < len(H.Idx) {
		var j int32
		var d float64
		switch {
		case hi >= len(H.Idx) || (si < len(S.Idx) && S.Idx[si] < H.Idx[hi]):
			j, d = S.Idx[si], S.Val[si]
			si++
		case si >= len(S.Idx) || H.Idx[hi] < S.Idx[si]:
			j, d = H.Idx[hi], -H.Val[hi]
			hi++
		default:
			j, d = S.Idx[si], S.Val[si]-H.Val[hi]
			si++
			hi++
		}
		s.drift.settleCoord(w, avg, j)
		w[j] -= ab * d
		avg[j] += d * invN
	}
	return nil
}

// SAGA is the synchronous variant of Algorithm 3, but implemented with the
// ASYNCbroadcaster instead of re-broadcasting the model-parameter table
// each round — the optimization §4.3 exists for. Rounds are BSP: every
// worker contributes one partial per update.
func SAGA(ac *core.Context, d *dataset.Dataset, p Params, fstar float64) (*Result, error) {
	if err := p.defaults(); err != nil {
		return nil, err
	}
	st := newSagaState(d.NumCols(), d.NumRows())
	if err := st.init(p); err != nil {
		return nil, err
	}
	rec := p.recorder()
	rec.Force(0, st.w)
	for k := int64(0); k < int64(p.Updates); k++ {
		wBr := ac.ASYNCbroadcast("saga.w", st.w.Clone())
		sel, err := ac.ASYNCbarrier(core.BSP(), p.Filter)
		if err != nil {
			return nil, fmt.Errorf("opt: SAGA round %d: %w", k, err)
		}
		n, err := ac.ASYNCreduce(sel, SagaKernel(p.Loss, wBr, p.SampleFrac))
		if err != nil {
			return nil, err
		}
		combined := SagaPartial{Sum: la.GetVec(d.NumCols()), HistSum: la.GetVec(d.NumCols())}
		total := 0
		for i := 0; i < n; i++ {
			tr, err := ac.ASYNCcollectAll()
			if err != nil {
				break
			}
			switch part := tr.Payload.(type) {
			case SagaPartial:
				la.Axpy(1, part.Sum, combined.Sum)
				la.Axpy(1, part.HistSum, combined.HistSum)
				la.PutVec(part.Sum)
				la.PutVec(part.HistSum)
			case SagaDelta:
				// sparse partials expand into the round accumulator; the
				// round's single apply stays dense (BSP rounds are O(d) on
				// the driver regardless — the sparse win here is worker
				// compute and wire bytes)
				part.Sum.AxpyDense(1, combined.Sum)
				part.HistSum.AxpyDense(1, combined.HistSum)
				la.PutDelta(part.Sum)
				la.PutDelta(part.HistSum)
			default:
				return nil, fmt.Errorf("opt: SAGA payload %T", tr.Payload)
			}
			total += tr.Attrs.MiniBatch
		}
		if total == 0 {
			la.PutVec(combined.Sum)
			la.PutVec(combined.HistSum)
			continue
		}
		err = st.apply(p.Step.Alpha(k), combined, total)
		la.PutVec(combined.Sum)
		la.PutVec(combined.HistSum)
		if err != nil {
			return nil, err
		}
		upd := ac.AdvanceClock()
		rec.Maybe(upd, st.w)
	}
	rec.Finish(ac.Updates(), st.w)
	drain(ac, 5*time.Second)
	return &Result{Trace: newTrace(ac, "SAGA", d, rec, p.Loss, fstar), W: st.w}, nil
}

// ASAGA is asynchronous SAGA (Algorithm 4): workers compute current and
// historical gradients against their locally cached model versions, the
// driver applies an update per collected partial, and no round barrier
// exists (barrier defaults to ASP).
func ASAGA(ac *core.Context, d *dataset.Dataset, p Params, fstar float64) (*Result, error) {
	if err := p.defaults(); err != nil {
		return nil, err
	}
	st := newSagaState(d.NumCols(), d.NumRows())
	if err := st.init(p); err != nil {
		return nil, err
	}
	rec := p.recorder()
	rec.Force(0, st.w)
	updates := int64(0)
	for updates < int64(p.Updates) {
		wBr := ac.ASYNCbroadcastStamped("saga.w", updates, func() any {
			st.settle()
			return st.w.Clone()
		})
		sel, err := ac.ASYNCbarrier(p.Barrier, p.Filter)
		if err != nil {
			return nil, fmt.Errorf("opt: ASAGA after %d updates: %w", updates, err)
		}
		if _, err := ac.ASYNCreduce(sel, SagaKernel(p.Loss, wBr, p.SampleFrac)); err != nil {
			return nil, err
		}
		for first := true; (first || ac.HasNext()) && updates < int64(p.Updates); first = false {
			tr, err := ac.ASYNCcollectAll()
			if err != nil {
				break
			}
			alpha := p.Step.Alpha(updates)
			if p.StalenessLR {
				alpha = StalenessAdapt(alpha, tr.Attrs.Staleness)
			}
			if err := applySagaPayload(st, alpha, tr.Payload, tr.Attrs.MiniBatch); err != nil {
				return nil, fmt.Errorf("opt: ASAGA: %w", err)
			}
			updates = ac.AdvanceClock()
			if rec.Due(updates) {
				st.settle()
			}
			rec.Maybe(updates, st.w)
		}
	}
	st.settle()
	rec.Finish(updates, st.w)
	drain(ac, 5*time.Second)
	return &Result{Trace: newTrace(ac, "ASAGA", d, rec, p.Loss, fstar), W: st.w}, nil
}

// applySagaPayload dispatches a collected partial to the dense or sparse
// apply and recycles its pooled storage.
func applySagaPayload(st *sagaState, alpha float64, payload any, batch int) error {
	switch part := payload.(type) {
	case SagaPartial:
		err := st.apply(alpha, part, batch)
		la.PutVec(part.Sum)
		la.PutVec(part.HistSum)
		return err
	case SagaDelta:
		err := st.applyDelta(alpha, part, batch)
		la.PutDelta(part.Sum)
		la.PutDelta(part.HistSum)
		return err
	default:
		return fmt.Errorf("unexpected SAGA payload %T", payload)
	}
}
