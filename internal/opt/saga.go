package opt

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/la"
)

// sagaState carries the driver-side SAGA accumulators shared by the
// synchronous and asynchronous variants, plus the lazy-drift machinery of
// the sparse-delta path: the dense −α·avgHist term of each update is
// deferred per coordinate (avgHist itself moves only at touched
// coordinates, so the skipped contributions telescope into
// (Σα − lastSettled_j)·avgHist[j]) and settled on snapshot, broadcast,
// finish, or a dense partial.
type sagaState struct {
	w       la.Vec
	avgHist la.Vec // running average of historical gradients
	n       float64
	drift   lazyDrift
}

func newSagaState(cols, rows int) *sagaState {
	return &sagaState{
		w:       la.NewVec(cols),
		avgHist: la.NewVec(cols),
		n:       float64(rows),
	}
}

// settle flushes the deferred avgHist drift so w is externally consistent.
func (s *sagaState) settle() { s.drift.settleAll(s.w, s.avgHist) }

// init applies warm starts from Params (checkpoint resume).
func (s *sagaState) init(p Params) error {
	if p.InitW != nil {
		if len(p.InitW) != len(s.w) {
			return fmt.Errorf("opt: InitW dim %d != %d", len(p.InitW), len(s.w))
		}
		s.w.CopyFrom(p.InitW)
	}
	if p.InitAvgHist != nil {
		if len(p.InitAvgHist) != len(s.avgHist) {
			return fmt.Errorf("opt: InitAvgHist dim %d != %d", len(p.InitAvgHist), len(s.avgHist))
		}
		s.avgHist.CopyFrom(p.InitAvgHist)
	}
	return nil
}

// Updater state half shared by every SAGA flavour. The checkpoint carries
// the settled model plus the history average. avgHist is the mean of the
// gradients stored in the worker-side history shards, so the two must stay
// consistent: a same-context resume (shards intact) restores avgHist for
// an exact continuation, while a resume after an engine reset (shards
// cleared — every sample reports zero historical gradient again) restarts
// avgHist at zero too. Restoring avgHist over empty shards would bake the
// old gradient mass in forever: nothing ever subtracts it, permanently
// biasing the estimator. Zero table + zero average is the standard SAGA
// cold start from the checkpointed model — unbiased, merely without the
// variance reduction history until samples are re-touched.
func (s *sagaState) Model() la.Vec { return s.w }
func (s *sagaState) Settle()       { s.settle() }

func (s *sagaState) Export(cp *Checkpoint) { cp.AvgHist = s.avgHist.Clone() }

func (s *sagaState) Import(cp *Checkpoint) error {
	if err := importModel(s.w, cp); err != nil {
		return err
	}
	if cp.AvgHist != nil && cp.HistoryAttached() {
		s.avgHist.CopyFrom(cp.AvgHist)
	} else {
		s.avgHist.Zero()
	}
	return nil
}

// apply performs one SAGA update from a collected partial:
//
//	w ← w − α·[ (ΣgCur − ΣgHist)/b + avgHist ]
//	avgHist ← avgHist + (ΣgCur − ΣgHist)/n
//
// which is Algorithm 4 lines 8–9 with the minibatch scaling written out.
func (s *sagaState) apply(alpha float64, part SagaPartial, batch int) error {
	if batch <= 0 {
		return fmt.Errorf("opt: SAGA partial with batch %d", batch)
	}
	if len(part.Sum) != len(s.w) || len(part.HistSum) != len(s.w) {
		return fmt.Errorf("opt: SAGA partial dims (%d,%d) != %d", len(part.Sum), len(part.HistSum), len(s.w))
	}
	// a dense update reads and eagerly applies avgHist everywhere, so any
	// deferred drift must land first
	s.settle()
	// One fused pass instead of four BLAS-1 sweeps: d = ΣgCur − ΣgHist,
	// w −= α·(d/b + avgHist), avgHist += d/n (Algorithm 4 lines 8–9).
	ab := alpha / float64(batch)
	invN := 1 / s.n
	w, avg := s.w, s.avgHist
	for j := range w {
		d := part.Sum[j] - part.HistSum[j]
		w[j] -= ab*d + alpha*avg[j]
		avg[j] += d * invN
	}
	return nil
}

// applyDelta is the O(nnz) flavour of apply for a sparse partial: touched
// coordinates are settled through this update (including its own −α·avgHist
// term, read before avgHist moves, matching the dense order of operations)
// and every untouched coordinate's drift stays deferred.
func (s *sagaState) applyDelta(alpha float64, part SagaDelta, batch int) error {
	if batch <= 0 {
		return fmt.Errorf("opt: SAGA partial with batch %d", batch)
	}
	if part.Sum == nil || part.HistSum == nil || part.Sum.N != len(s.w) || part.HistSum.N != len(s.w) {
		return fmt.Errorf("opt: SAGA sparse partial dims != %d", len(s.w))
	}
	s.drift.ensure(len(s.w))
	s.drift.advance(alpha)
	ab := alpha / float64(batch)
	invN := 1 / s.n
	w, avg := s.w, s.avgHist
	// merged walk over the two supports (each sorted, possibly different:
	// rows with no recorded history contribute no historical gradient)
	S, H := part.Sum, part.HistSum
	si, hi := 0, 0
	for si < len(S.Idx) || hi < len(H.Idx) {
		var j int32
		var d float64
		switch {
		case hi >= len(H.Idx) || (si < len(S.Idx) && S.Idx[si] < H.Idx[hi]):
			j, d = S.Idx[si], S.Val[si]
			si++
		case si >= len(S.Idx) || H.Idx[hi] < S.Idx[si]:
			j, d = H.Idx[hi], -H.Val[hi]
			hi++
		default:
			j, d = S.Idx[si], S.Val[si]-H.Val[hi]
			si++
			hi++
		}
		s.drift.settleCoord(w, avg, j)
		w[j] -= ab * d
		avg[j] += d * invN
	}
	return nil
}

// sagaRoundUpdater is the bulk-synchronous SAGA round state: current- and
// historical-gradient partials fold into two roundAccums (sparse partials
// merge without densifying), and the flush applies one combined update —
// dense math when any partial was dense, the O(nnz) lazy-drift path when
// the whole round was sparse.
type sagaRoundUpdater struct {
	*sagaState
	sum, hist *roundAccum
	batch     int
}

func (u *sagaRoundUpdater) Apply(payload any, attrs *core.Attrs, _ float64) error {
	switch part := payload.(type) {
	case SagaPartial:
		u.sum.AddDense(part.Sum)
		u.hist.AddDense(part.HistSum)
	case SagaDelta:
		u.sum.AddSparse(part.Sum)
		u.hist.AddSparse(part.HistSum)
	default:
		return fmt.Errorf("unexpected SAGA payload %T", payload)
	}
	u.batch += attrs.MiniBatch
	return nil
}

func (u *sagaRoundUpdater) FlushRound(alpha float64) (bool, error) {
	batch := u.batch
	u.batch = 0
	defer func() {
		u.sum.Reset()
		u.hist.Reset()
	}()
	if batch == 0 {
		return false, nil
	}
	if u.sum.Dense() != nil || u.hist.Dense() != nil {
		// any dense partial forces the dense combined apply (BSP rounds
		// were O(d) on the driver historically; the sparse win was worker
		// compute and wire bytes)
		combined := SagaPartial{Sum: u.sum.Densify(), HistSum: u.hist.Densify()}
		return true, u.apply(alpha, combined, batch)
	}
	if u.sum.Sparse() == nil {
		return false, nil
	}
	// all-sparse round: one merged O(nnz) update with lazy avgHist drift
	delta := SagaDelta{Sum: u.sum.Sparse(), HistSum: u.hist.Sparse()}
	if delta.HistSum == nil {
		// rows with no recorded history contributed no historical partials
		delta.HistSum = &la.DeltaVec{N: len(u.w)}
	}
	return true, u.applyDelta(alpha, delta, batch)
}

// SAGA is the synchronous variant of Algorithm 3, but implemented with the
// ASYNCbroadcaster instead of re-broadcasting the model-parameter table
// each round — the optimization §4.3 exists for. Rounds are BSP: every
// worker contributes one partial per update.
func SAGA(ac *core.Context, d *dataset.Dataset, p Params, fstar float64) (*Result, error) {
	if err := p.defaults(); err != nil {
		return nil, err
	}
	if err := rejectL1(p.Loss, "saga"); err != nil {
		return nil, err
	}
	st := newSagaState(d.NumCols(), d.NumRows())
	if err := st.init(p); err != nil {
		return nil, err
	}
	u := &sagaRoundUpdater{
		sagaState: st,
		sum:       newRoundAccum(d.NumCols()),
		hist:      newRoundAccum(d.NumCols()),
	}
	return runLoop(ac, d, u, &loopSpec{
		Algo: "SAGA", Name: "saga", Key: "saga.w",
		P: &p, Loss: p.Loss, FStar: fstar,
		Target: int64(p.Updates), Publish: pubPlain,
		Barrier: core.BSP(), Round: true, RoundBudget: true,
		Dispatch: func(wBr core.DynBroadcast, sel *core.Selection) (int, error) {
			return ac.ASYNCreduce(sel, SagaKernel(p.Loss, wBr, p.SampleFrac))
		},
	})
}

// sagaStreamUpdater applies one collected SAGA partial per model update
// (the asynchronous variants, local and remote).
type sagaStreamUpdater struct{ *sagaState }

func (u sagaStreamUpdater) Apply(payload any, attrs *core.Attrs, alpha float64) error {
	return applySagaPayload(u.sagaState, alpha, payload, attrs.MiniBatch)
}

// ASAGA is asynchronous SAGA (Algorithm 4): workers compute current and
// historical gradients against their locally cached model versions, the
// driver applies an update per collected partial, and no round barrier
// exists (barrier defaults to ASP).
func ASAGA(ac *core.Context, d *dataset.Dataset, p Params, fstar float64) (*Result, error) {
	if err := p.defaults(); err != nil {
		return nil, err
	}
	if err := rejectL1(p.Loss, "asaga"); err != nil {
		return nil, err
	}
	st := newSagaState(d.NumCols(), d.NumRows())
	if err := st.init(p); err != nil {
		return nil, err
	}
	return runLoop(ac, d, sagaStreamUpdater{st}, &loopSpec{
		Algo: "ASAGA", Name: "asaga", Key: "saga.w",
		P: &p, Loss: p.Loss, FStar: fstar,
		Target: int64(p.Updates), Publish: pubStamped,
		Dispatch: func(wBr core.DynBroadcast, sel *core.Selection) (int, error) {
			return ac.ASYNCreduce(sel, SagaKernel(p.Loss, wBr, p.SampleFrac))
		},
	})
}

// applySagaPayload dispatches a collected partial to the dense or sparse
// apply and recycles its pooled storage.
func applySagaPayload(st *sagaState, alpha float64, payload any, batch int) error {
	switch part := payload.(type) {
	case SagaPartial:
		err := st.apply(alpha, part, batch)
		la.PutVec(part.Sum)
		la.PutVec(part.HistSum)
		return err
	case SagaDelta:
		err := st.applyDelta(alpha, part, batch)
		la.PutDelta(part.Sum)
		la.PutDelta(part.HistSum)
		return err
	default:
		return fmt.Errorf("unexpected SAGA payload %T", payload)
	}
}
