package opt

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/la"
)

// The unified driver runtime splits every solver into two halves: the
// solver-specific Updater below (kernel wiring plus the arithmetic of one
// model update) and the algorithm-independent loop in runtime.go (broadcast
// staging, barrier waits, dispatch, result collection, recorder cadence,
// lazy-settle scheduling, checkpoint emission, preemption, drain, trace
// assembly). No solver owns its own collect/apply loop; drain/trace/
// progress/settle interplay lives in exactly one place.

// Updater owns a run's solver-specific driver state. The runtime guarantees
// all methods are called from the driver goroutine.
type Updater interface {
	// Model returns the backing model vector. It is externally consistent
	// only after Settle; the runtime settles before every external read
	// (snapshot, broadcast, checkpoint, finish).
	Model() la.Vec
	// Settle flushes lazily deferred dense update terms (L2 shrinkage,
	// SAGA/SVRG drifts). Must be idempotent.
	Settle()
	// Apply performs one model update from a collected payload (streaming
	// solvers) or folds one partial into the round accumulator (round
	// solvers; alpha is then delivered at FlushRound instead).
	Apply(payload any, attrs *core.Attrs, alpha float64) error
	// Export adds solver-specific state to a checkpoint (the runtime has
	// already settled and filled W/Updates/Algorithm).
	Export(cp *Checkpoint)
	// Import restores solver-specific state from a checkpoint (the model
	// itself included).
	Import(cp *Checkpoint) error
}

// RoundUpdater is the bulk-synchronous extension: the runtime folds every
// collected partial of a round via Apply, then asks FlushRound to turn the
// accumulated round into one model update. applied=false reports an empty
// round (no clock advance, no snapshot).
type RoundUpdater interface {
	Updater
	FlushRound(alpha float64) (applied bool, err error)
}

// importModel copies the checkpointed model into w with a dimension check —
// the shared first step of every Updater.Import.
func importModel(w la.Vec, cp *Checkpoint) error {
	if len(cp.W) != len(w) {
		return fmt.Errorf("opt: checkpoint model dim %d != %d", len(cp.W), len(w))
	}
	w.CopyFrom(cp.W)
	return nil
}

// vecUpdater is the minimal Updater over a bare model vector — no lazy
// terms, no extra state. AC-free synchronous drivers (mllib-sgd) and
// simple streaming drivers embed or use it directly.
type vecUpdater struct{ w la.Vec }

func (u *vecUpdater) Model() la.Vec { return u.w }
func (u *vecUpdater) Settle()       {}
func (u *vecUpdater) Apply(payload any, attrs *core.Attrs, alpha float64) error {
	return fmt.Errorf("opt: unexpected payload %T", payload)
}
func (u *vecUpdater) Export(*Checkpoint)          {}
func (u *vecUpdater) Import(cp *Checkpoint) error { return importModel(u.w, cp) }

// roundAccum folds one BSP round's task payloads without densifying sparse
// partials: dense la.Vec payloads sum into a persistent dense accumulator,
// sparse *la.DeltaVec payloads merge in O(nnz) via la.DeltaVec.MergeFrom.
// Both buffers persist across rounds (capacity grows to the running maximum
// and then stabilises), so absorbing a partial allocates nothing in steady
// state. Payload storage is recycled to its pool on absorption.
type roundAccum struct {
	dim       int
	dense     la.Vec
	sparse    *la.DeltaVec
	hasDense  bool
	hasSparse bool
}

func newRoundAccum(dim int) *roundAccum { return &roundAccum{dim: dim} }

// AddDense folds a dense partial and recycles it.
func (r *roundAccum) AddDense(g la.Vec) {
	if !r.hasDense {
		if r.dense == nil {
			r.dense = la.NewVec(r.dim)
		} else {
			r.dense.Zero()
		}
		r.hasDense = true
	}
	la.Axpy(1, g, r.dense)
	la.PutVec(g)
}

// AddSparse merges a sparse partial (sorted-union MergeFrom) and recycles it.
func (r *roundAccum) AddSparse(g *la.DeltaVec) {
	if !r.hasSparse {
		if r.sparse == nil {
			r.sparse = &la.DeltaVec{N: r.dim}
		}
		r.sparse.Idx = r.sparse.Idx[:0]
		r.sparse.Val = r.sparse.Val[:0]
		r.hasSparse = true
	}
	r.sparse.MergeFrom(g)
	la.PutDelta(g)
}

// Empty reports whether the round absorbed no payloads.
func (r *roundAccum) Empty() bool { return !r.hasDense && !r.hasSparse }

// Sparse returns the merged sparse part, nil when the round had none.
func (r *roundAccum) Sparse() *la.DeltaVec {
	if !r.hasSparse {
		return nil
	}
	return r.sparse
}

// Dense returns the dense part, nil when the round had none.
func (r *roundAccum) Dense() la.Vec {
	if !r.hasDense {
		return nil
	}
	return r.dense
}

// Densify folds the sparse part into the dense accumulator and returns the
// complete dense round sum (the momentum / mixed-payload path).
func (r *roundAccum) Densify() la.Vec {
	if !r.hasDense {
		if r.dense == nil {
			r.dense = la.NewVec(r.dim)
		} else {
			r.dense.Zero()
		}
		r.hasDense = true
	}
	if r.hasSparse {
		r.sparse.AxpyDense(1, r.dense)
		r.hasSparse = false
	}
	return r.dense
}

// Reset clears the accumulator for the next round, keeping capacity.
func (r *roundAccum) Reset() { r.hasDense, r.hasSparse = false, false }
