// Package opt is the optimization library of the reproduction: losses and
// step-size schedules, the synchronous methods SGD and SAGA, their
// asynchronous variants ASGD (Algorithm 2) and ASAGA (Algorithm 4) built on
// the ASYNC engine, the staleness-adaptive learning-rate modulation of
// Listing 1, the epoch-based variance-reduced scheme of Listing 3, and an
// Mllib-style baseline implemented directly on the synchronous RDD layer.
//
// Every method dispatches through one unified driver runtime (runtime.go):
// a solver contributes an Updater (kernel wiring plus the arithmetic of a
// single model update) and the runtime owns the collect→apply→broadcast
// loop, recorder cadence, lazy-settle scheduling, mid-run checkpointing
// (Params.CheckpointEvery / Resume), and preemption (Params.Preempt).
//
// Semantics of lazy L2 under staleness: on the sparse task path the Ridge
// shrinkage (1−αλ)·w is deferred per coordinate and applied at the
// driver's CURRENT model when a coordinate is next touched or the model is
// settled — not at the (possibly stale) worker model the task's inner
// gradient was computed against. At zero staleness this is identical to
// the eager dense update (pinned to 1e-9 in sparse_test.go); under
// asynchrony both orderings are valid async-SGD variants — the deferred
// one simply commutes the shrinkage past intervening sparse updates.
// Dense payloads always carry their loss's own λ·w terms eagerly.
package opt

import (
	"fmt"
	"math"

	"repro/internal/dataset"
	"repro/internal/la"
)

// Loss is a per-sample convex loss ℓ(x·w, y) with gradient accumulation.
type Loss interface {
	// Value returns ℓ for one sample.
	Value(x la.SparseVec, y float64, w la.Vec) float64
	// AddGrad accumulates ∇ℓ for one sample into g (g += ∇ℓ(x·w, y)).
	AddGrad(x la.SparseVec, y float64, w la.Vec, g la.Vec)
	Name() string
}

// LinearLoss marks losses of the generalized linear form ℓ(x·w, y): the
// per-sample gradient factors as GradCoeff(x·w, y)·x, touching exactly the
// row's nonzero coordinates. This is what lets the sparse task path
// accumulate gradients in O(nnz) instead of O(d) — see kernel.go.
type LinearLoss interface {
	Loss
	// GradCoeff returns dℓ/d(x·w) evaluated at (dot, y).
	GradCoeff(dot, y float64) float64
}

// splitLoss decomposes a loss into its linear core and an L2 coefficient:
// LeastSquares and Logistic are their own cores with λ = 0, Ridge (and an
// ℓ1-free Composite) peels off its penalty when the inner loss is linear.
// ok reports whether the sparse task path can represent the loss at all;
// when it can and λ > 0, workers ship inner-only gradients and the driver
// applies the shrinkage lazily (see lazy.go). Objectives with an ℓ1 term
// are never ok here — the solvers on this path have no prox step (the
// SGD-family appliers use splitProx instead).
func splitLoss(loss Loss) (lin LinearLoss, lambda float64, ok bool) {
	lin, l2, l1, ok := splitProx(loss)
	return lin, l2, ok && l1 == 0
}

// LeastSquares is the paper's experimental objective (Eq. 3/4):
// ℓ = (x·w − y)², ∇ℓ = 2(x·w − y)x.
type LeastSquares struct{}

// Value implements Loss.
func (LeastSquares) Value(x la.SparseVec, y float64, w la.Vec) float64 {
	r := x.DotDense(w) - y
	return r * r
}

// AddGrad implements Loss.
func (LeastSquares) AddGrad(x la.SparseVec, y float64, w la.Vec, g la.Vec) {
	r := x.DotDense(w) - y
	x.AxpyDense(2*r, g)
}

// GradCoeff implements LinearLoss: ∇ℓ = 2(x·w − y)·x.
func (LeastSquares) GradCoeff(dot, y float64) float64 { return 2 * (dot - y) }

// Name implements Loss.
func (LeastSquares) Name() string { return "least-squares" }

// Logistic is the binary logistic loss ℓ = log(1 + exp(−y·x·w)) for labels
// y ∈ {−1, +1}.
type Logistic struct{}

// Value implements Loss.
func (Logistic) Value(x la.SparseVec, y float64, w la.Vec) float64 {
	m := y * x.DotDense(w)
	// numerically stable log(1+exp(−m))
	if m > 0 {
		return math.Log1p(math.Exp(-m))
	}
	return -m + math.Log1p(math.Exp(m))
}

// AddGrad implements Loss.
func (Logistic) AddGrad(x la.SparseVec, y float64, w la.Vec, g la.Vec) {
	m := y * x.DotDense(w)
	// σ(−m) = 1/(1+exp(m))
	s := 1.0 / (1.0 + math.Exp(m))
	x.AxpyDense(-y*s, g)
}

// GradCoeff implements LinearLoss: ∇ℓ = −y·σ(−y·x·w)·x. The arithmetic
// mirrors AddGrad operation for operation so the sparse and dense task
// paths produce bitwise-identical gradients.
func (Logistic) GradCoeff(dot, y float64) float64 {
	s := 1.0 / (1.0 + math.Exp(y*dot))
	return -y * s
}

// Name implements Loss.
func (Logistic) Name() string { return "logistic" }

// Ridge wraps a loss with an L2 penalty (λ/2)·‖w‖².
type Ridge struct {
	Inner  Loss
	Lambda float64
}

// Value implements Loss. The penalty is amortized per sample assuming the
// objective is a mean over n samples; callers embed λ already scaled.
func (r Ridge) Value(x la.SparseVec, y float64, w la.Vec) float64 {
	return r.Inner.Value(x, y, w) + 0.5*r.Lambda*la.Dot(w, w)
}

// AddGrad implements Loss.
func (r Ridge) AddGrad(x la.SparseVec, y float64, w la.Vec, g la.Vec) {
	r.Inner.AddGrad(x, y, w, g)
	la.Axpy(r.Lambda, w, g)
}

// Name implements Loss.
func (r Ridge) Name() string { return r.Inner.Name() + "+l2" }

// Composite is the elastic-net objective: a smooth inner loss plus
// (L2/2)·‖w‖² + L1·‖w‖₁. The smooth part (inner + L2 ridge) flows through
// AddGrad and the gradient kernels; the nonsmooth ℓ1 term is applied only
// through the prox seam (prox.go) by the prox-capable drivers — AddGrad
// deliberately excludes it, so solvers without a prox step must reject
// composites with L1 > 0 (rejectL1) instead of silently solving the wrong
// problem. Penalties are amortized per sample like Ridge's.
type Composite struct {
	Inner Loss
	L2    float64
	L1    float64
}

// Value implements Loss: the full composite value, both penalties included.
func (c Composite) Value(x la.SparseVec, y float64, w la.Vec) float64 {
	v := c.Inner.Value(x, y, w)
	if c.L2 > 0 {
		v += 0.5 * c.L2 * la.Dot(w, w)
	}
	if c.L1 > 0 {
		v += c.L1 * la.Norm1(w)
	}
	return v
}

// AddGrad implements Loss with the SMOOTH part only (inner + L2·w); the ℓ1
// subgradient is never accumulated — see the type doc.
func (c Composite) AddGrad(x la.SparseVec, y float64, w la.Vec, g la.Vec) {
	c.Inner.AddGrad(x, y, w, g)
	if c.L2 > 0 {
		la.Axpy(c.L2, w, g)
	}
}

// Name implements Loss.
func (c Composite) Name() string {
	switch {
	case c.L1 > 0 && c.L2 > 0:
		return c.Inner.Name() + "+elastic-net"
	case c.L1 > 0:
		return c.Inner.Name() + "+l1"
	default:
		return c.Inner.Name() + "+l2"
	}
}

// splitProx decomposes a composite objective for the prox-capable task
// paths: the linear smooth core, the L2 coefficient (applied lazily as a
// running shrink product) and the L1 coefficient (applied as prox-at-settle
// soft-thresholds). ok reports whether the sparse task path can represent
// the smooth core; both penalties are driver-side, so they never disqualify
// it.
func splitProx(loss Loss) (lin LinearLoss, l2, l1 float64, ok bool) {
	switch l := loss.(type) {
	case Ridge:
		lin, ok = l.Inner.(LinearLoss)
		return lin, l.Lambda, 0, ok && l.Lambda >= 0
	case Composite:
		lin, ok = l.Inner.(LinearLoss)
		return lin, l.L2, l.L1, ok && l.L2 >= 0 && l.L1 >= 0
	default:
		lin, ok = loss.(LinearLoss)
		return lin, 0, 0, ok
	}
}

// Objective evaluates the full mean loss F(w) = (1/n) Σ ℓ_i(w) over a
// dataset on the driver. Experiments use it post hoc on recorded snapshots
// so evaluation never perturbs run timing.
func Objective(d *dataset.Dataset, loss Loss, w la.Vec) float64 {
	n := d.NumRows()
	if n == 0 {
		return 0
	}
	var sum float64
	for i := 0; i < n; i++ {
		sum += loss.Value(d.X.Row(i), d.Y[i], w)
	}
	return sum / float64(n)
}

// ReferenceOptimum computes F(w*) for the least-squares problem by solving
// the normal equations with conjugate gradient — the role the long Mllib
// baseline run plays in §6.1.
func ReferenceOptimum(d *dataset.Dataset) (w la.Vec, fstar float64, err error) {
	w, res, err := la.NormalEquationsSolve(d.X, d.Y, 1e-8, 1e-10, 4*d.NumCols())
	if err != nil {
		return nil, 0, fmt.Errorf("opt: reference optimum: %w", err)
	}
	if !res.Converged {
		// fall back to the best iterate: fine for a reference value as long
		// as the residual is small relative to the problem
		if res.Residual > 1e-3 {
			return nil, 0, fmt.Errorf("opt: reference CG stalled (residual %g)", res.Residual)
		}
	}
	return w, Objective(d, LeastSquares{}, w), nil
}
