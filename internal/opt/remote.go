package opt

import (
	"encoding/gob"
	"fmt"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/la"
)

// GradOpArgs parameterize the registered gradient op: everything a remote
// worker needs to rebuild the mini-batch gradient kernel. All fields are
// serializable, so the op works over the TCP transport.
type GradOpArgs struct {
	BroadcastID string
	Version     int64
	Frac        float64
	Parts       []int
	Loss        string // a Loss name accepted by LossByName
}

// GradOpName is the registered op implementing GradKernel remotely.
const GradOpName = "opt.grad"

func init() {
	gob.Register(GradOpArgs{})
	cluster.RegisterOp(GradOpName, func(env *cluster.Env, t *cluster.Task) (any, error) {
		a, ok := t.Args.(GradOpArgs)
		if !ok {
			return nil, fmt.Errorf("opt: %s args are %T", GradOpName, t.Args)
		}
		// args that arrive over a wire are validated here, at the op
		// boundary — the kernel itself carries no range check (driver-side
		// params fail in defaults() before any task is scheduled)
		if a.Frac <= 0 || a.Frac > 1 {
			return nil, fmt.Errorf("opt: %s sample fraction %v outside (0,1]", GradOpName, a.Frac)
		}
		loss, err := LossByName(a.Loss)
		if err != nil {
			return nil, err
		}
		kern := GradKernel(loss, core.DynBroadcast{ID: a.BroadcastID, Version: a.Version}, a.Frac)
		v, n, err := kern(env, a.Parts, t.Seed)
		if err != nil {
			return nil, err
		}
		return core.ReducePayload{Val: v, N: n, Empty: n == 0 && v == nil}, nil
	})
}

// SagaOpArgs parameterize the registered SAGA op (historical gradients over
// a real transport).
type SagaOpArgs struct {
	BroadcastID string
	Version     int64
	Frac        float64
	Parts       []int
	Loss        string
}

// SagaOpName is the registered op implementing SagaKernel remotely.
const SagaOpName = "opt.saga"

func init() {
	gob.Register(SagaOpArgs{})
	cluster.RegisterOp(SagaOpName, func(env *cluster.Env, t *cluster.Task) (any, error) {
		a, ok := t.Args.(SagaOpArgs)
		if !ok {
			return nil, fmt.Errorf("opt: %s args are %T", SagaOpName, t.Args)
		}
		if a.Frac <= 0 || a.Frac > 1 {
			return nil, fmt.Errorf("opt: %s sample fraction %v outside (0,1]", SagaOpName, a.Frac)
		}
		loss, err := LossByName(a.Loss)
		if err != nil {
			return nil, err
		}
		kern := SagaKernel(loss, core.DynBroadcast{ID: a.BroadcastID, Version: a.Version}, a.Frac)
		v, n, err := kern(env, a.Parts, t.Seed)
		if err != nil {
			return nil, err
		}
		return core.ReducePayload{Val: v, N: n, Empty: n == 0 && v == nil}, nil
	})
}

// RemoteASAGA is ASAGA dispatched through the registered SAGA op, suitable
// for the TCP transport. Semantics match ASAGA; worker-side history shards
// live on the remote workers exactly as in-process.
func RemoteASAGA(ac *core.Context, d *dataset.Dataset, p Params, fstar float64) (*Result, error) {
	if err := p.defaults(); err != nil {
		return nil, err
	}
	lossName := p.Loss.Name()
	if _, err := LossByName(lossName); err != nil {
		return nil, fmt.Errorf("opt: RemoteASAGA: %w", err)
	}
	st := newSagaState(d.NumCols(), d.NumRows())
	if err := st.init(p); err != nil {
		return nil, err
	}
	return runLoop(ac, d, sagaStreamUpdater{st}, &loopSpec{
		Algo: "ASAGA-remote", Name: "asaga-remote", Key: "saga.w",
		P: &p, Loss: p.Loss, FStar: fstar,
		Target: int64(p.Updates), Publish: pubStamped,
		Dispatch: func(wBr core.DynBroadcast, sel *core.Selection) (int, error) {
			return ac.ASYNCreduceOp(sel, SagaOpName, func(worker int, parts []int) any {
				return SagaOpArgs{
					BroadcastID: wBr.ID, Version: wBr.Version,
					Frac: p.SampleFrac, Parts: parts, Loss: lossName,
				}
			})
		},
	})
}

// LossByName resolves the loss functions shippable by name to remote ops.
func LossByName(name string) (Loss, error) {
	switch name {
	case "", "least-squares":
		return LeastSquares{}, nil
	case "logistic":
		return Logistic{}, nil
	default:
		return nil, fmt.Errorf("opt: unknown loss %q", name)
	}
}

// RemoteASGD is ASGD dispatched through the registered gradient op instead
// of in-process closures, so it runs unchanged over the TCP transport
// (cmd/asyncd). Semantics match ASGD.
func RemoteASGD(ac *core.Context, d *dataset.Dataset, p Params, fstar float64) (*Result, error) {
	if err := p.defaults(); err != nil {
		return nil, err
	}
	lossName := p.Loss.Name()
	if _, err := LossByName(lossName); err != nil {
		return nil, fmt.Errorf("opt: RemoteASGD: %w", err)
	}
	u := &asgdUpdater{w: la.NewVec(d.NumCols()), ap: newProxApplier(&p, d.NumCols())}
	return runLoop(ac, d, u, &loopSpec{
		Algo: "ASGD-remote", Name: "asgd-remote", Key: "sgd.w",
		P: &p, Loss: p.Loss, FStar: fstar,
		Target: int64(p.Updates), Publish: pubStamped, Prune: true,
		Dispatch: func(wBr core.DynBroadcast, sel *core.Selection) (int, error) {
			return ac.ASYNCreduceOp(sel, GradOpName, func(worker int, parts []int) any {
				return GradOpArgs{
					BroadcastID: wBr.ID, Version: wBr.Version,
					Frac: p.SampleFrac, Parts: parts, Loss: lossName,
				}
			})
		},
	})
}
