package opt

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/rdd"
)

// SolveConfig is the algorithm-independent run configuration the solver
// registry accepts: the shared Params plus the per-family extensions the
// epoch, consensus and coordinate methods need. Zero values for an
// extension mean "use that solver's defaults".
type SolveConfig struct {
	Params

	// Objective, when non-zero, is the structured composite-objective
	// description; ApplyObjective resolves it into Params.Loss before the
	// solver runs (it wins over a directly-set Loss).
	Objective ObjectiveSpec

	// FStar is the reference optimum f(w*) used for error traces; 0 makes
	// traces report raw objective values.
	FStar float64

	VR   VRConfig
	ADMM ADMMConfig
	BCD  BCDConfig
	CD   CDConfig
	GCG  GCGConfig
}

// ApplyObjective resolves the structured Objective into Params.Loss.
// Idempotent; a zero Objective leaves Params.Loss untouched.
func (c *SolveConfig) ApplyObjective() error {
	if c.Objective.IsZero() {
		return nil
	}
	loss, err := c.Objective.Resolve()
	if err != nil {
		return err
	}
	c.Params.Loss = loss
	return nil
}

// VRConfig carries the epoch structure for variance-reduced solvers
// (svrg). Zero Epochs defaults to 3; zero UpdatesPerEpoch spreads
// Params.Updates evenly across the epochs.
type VRConfig struct {
	Epochs          int
	UpdatesPerEpoch int
}

// ADMMConfig carries the consensus-solver knobs; Params.Updates is the
// round budget and Params.SnapshotEvery the trace resolution.
type ADMMConfig struct {
	Rho     float64
	CGTol   float64
	CGIters int
}

// BCDConfig carries the block-coordinate knobs; zero BlockSize picks
// min(32, cols) and zero Step the full diagonal-Newton step.
type BCDConfig struct {
	BlockSize int
	Step      float64
	Seed      int64
}

// CDConfig carries the proximal coordinate-descent knobs; zero BlockSize
// picks min(32, cols), empty Mode is "cyclic", zero Step the full
// preconditioned prox step.
type CDConfig struct {
	BlockSize int
	Mode      string
	Step      float64
	Seed      int64
}

// GCGConfig carries the generalized-CG knobs; zero RestartEvery restarts
// every 20 updates. Mode "greedy" switches to MaxIP atom selection with
// Atoms coordinates per round (zero picks min(32, cols)); empty Mode is
// the full-gradient conjugate solver.
type GCGConfig struct {
	RestartEvery int
	Mode         string
	Atoms        int
}

// SolveRequest is everything a registered solver runs against: the ASYNC
// context, the distributed base RDD (baselines that bypass the AC need
// it), the dataset, and the configuration.
type SolveRequest struct {
	AC     *core.Context
	Points *rdd.RDD[rdd.Point]
	Data   *dataset.Dataset
	Config SolveConfig
}

// Solver is the unified driver-algorithm interface behind the registry:
// every optimization method the engine runs — the paper's methods and any
// plugged-in extension — implements it. Solve must honour ctx: the
// registry wrappers bind it to the AC so barrier waits and collects abort
// on cancellation.
type Solver interface {
	Name() string
	Solve(ctx context.Context, req SolveRequest) (*Result, error)
}

// solverFunc adapts a plain function to Solver, binding ctx to the AC
// around the call so cancellation propagates into ASYNCbarrier and
// ASYNCcollect without each algorithm having to thread it manually.
type solverFunc struct {
	name string
	fn   func(ctx context.Context, req SolveRequest) (*Result, error)
}

func (s solverFunc) Name() string { return s.name }

// proxCapable names the built-in solvers with a proximal step — the only
// ones that can honour an ℓ1 term exactly.
var proxCapable = map[string]bool{"sgd": true, "asgd": true, "cd": true, "gcg": true}

func (s solverFunc) Solve(ctx context.Context, req SolveRequest) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := req.Config.ApplyObjective(); err != nil {
		return nil, err
	}
	if l1Of(req.Config.Loss) > 0 && !proxCapable[s.name] {
		return nil, rejectL1(req.Config.Loss, s.name)
	}
	if req.AC != nil {
		release := req.AC.Bind(ctx)
		defer release()
	}
	return s.fn(ctx, req)
}

var (
	solverMu sync.RWMutex
	solvers  = map[string]Solver{}
)

// RegisterSolver adds a solver under its lowercased name. Registering a
// duplicate name panics: solver names are package-level constants and a
// collision is a programming error.
func RegisterSolver(s Solver) {
	key := strings.ToLower(s.Name())
	solverMu.Lock()
	defer solverMu.Unlock()
	if _, dup := solvers[key]; dup {
		panic(fmt.Sprintf("opt: duplicate solver %q", key))
	}
	solvers[key] = s
}

// LookupSolver resolves a solver by name (case-insensitive).
func LookupSolver(name string) (Solver, error) {
	solverMu.RLock()
	s, ok := solvers[strings.ToLower(name)]
	solverMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("opt: unknown solver %q (known: %s)",
			name, strings.Join(SolverNames(), ", "))
	}
	return s, nil
}

// SolverNames lists every registered solver name, sorted.
func SolverNames() []string {
	solverMu.RLock()
	defer solverMu.RUnlock()
	out := make([]string, 0, len(solvers))
	for name := range solvers {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

func init() {
	RegisterSolver(solverFunc{"sgd", func(_ context.Context, r SolveRequest) (*Result, error) {
		return SyncSGD(r.AC, r.Data, r.Config.Params, r.Config.FStar)
	}})
	RegisterSolver(solverFunc{"asgd", func(_ context.Context, r SolveRequest) (*Result, error) {
		return ASGD(r.AC, r.Data, r.Config.Params, r.Config.FStar)
	}})
	RegisterSolver(solverFunc{"saga", func(_ context.Context, r SolveRequest) (*Result, error) {
		return SAGA(r.AC, r.Data, r.Config.Params, r.Config.FStar)
	}})
	RegisterSolver(solverFunc{"asaga", func(_ context.Context, r SolveRequest) (*Result, error) {
		return ASAGA(r.AC, r.Data, r.Config.Params, r.Config.FStar)
	}})
	RegisterSolver(solverFunc{"svrg", solveSVRG})
	RegisterSolver(solverFunc{"admm", solveADMM})
	RegisterSolver(solverFunc{"bcd", solveBCD})
	RegisterSolver(solverFunc{"cd", solveCD})
	RegisterSolver(solverFunc{"gcg", solveGCG})
	RegisterSolver(solverFunc{"mllib-sgd", solveMllibSGD})
	RegisterSolver(solverFunc{"asgd-remote", func(_ context.Context, r SolveRequest) (*Result, error) {
		return RemoteASGD(r.AC, r.Data, r.Config.Params, r.Config.FStar)
	}})
	RegisterSolver(solverFunc{"asaga-remote", func(_ context.Context, r SolveRequest) (*Result, error) {
		return RemoteASAGA(r.AC, r.Data, r.Config.Params, r.Config.FStar)
	}})
}

func solveSVRG(_ context.Context, r SolveRequest) (*Result, error) {
	cfg := r.Config
	vp := VRParams{
		Params:          cfg.Params,
		Epochs:          cfg.VR.Epochs,
		UpdatesPerEpoch: cfg.VR.UpdatesPerEpoch,
	}
	if vp.Epochs <= 0 {
		vp.Epochs = 3
	}
	if vp.UpdatesPerEpoch <= 0 {
		vp.UpdatesPerEpoch = cfg.Updates / vp.Epochs
		if vp.UpdatesPerEpoch < 1 {
			vp.UpdatesPerEpoch = 1
		}
	}
	return EpochVR(r.AC, r.Data, vp, cfg.FStar)
}

func solveADMM(_ context.Context, r SolveRequest) (*Result, error) {
	cfg := r.Config
	return ADMM(r.AC, r.Data, ADMMParams{
		Rho:             cfg.ADMM.Rho,
		Rounds:          cfg.Updates,
		CGTol:           cfg.ADMM.CGTol,
		CGIters:         cfg.ADMM.CGIters,
		Barrier:         cfg.Barrier,
		Filter:          cfg.Filter,
		Snapshot:        cfg.SnapshotEvery,
		OnProgress:      cfg.OnProgress,
		CheckpointEvery: cfg.CheckpointEvery,
		OnCheckpoint:    cfg.OnCheckpoint,
		Preempt:         cfg.Preempt,
		Resume:          cfg.Resume,
	}, cfg.FStar)
}

func solveBCD(_ context.Context, r SolveRequest) (*Result, error) {
	cfg := r.Config
	bp := BCDParams{
		BlockSize:       cfg.BCD.BlockSize,
		Step:            cfg.BCD.Step,
		Updates:         cfg.Updates,
		Barrier:         cfg.Barrier,
		Filter:          cfg.Filter,
		Snapshot:        cfg.SnapshotEvery,
		Seed:            cfg.BCD.Seed,
		OnProgress:      cfg.OnProgress,
		CheckpointEvery: cfg.CheckpointEvery,
		OnCheckpoint:    cfg.OnCheckpoint,
		Preempt:         cfg.Preempt,
		Resume:          cfg.Resume,
	}
	if bp.BlockSize <= 0 {
		bp.BlockSize = 32
		if cols := r.Data.NumCols(); cols < bp.BlockSize {
			bp.BlockSize = cols
		}
	}
	if bp.Step <= 0 {
		bp.Step = 1
	}
	return AsyncBCD(r.AC, r.Data, bp, cfg.FStar)
}

func solveCD(_ context.Context, r SolveRequest) (*Result, error) {
	cfg := r.Config
	cp := CDParams{
		Params:    cfg.Params,
		BlockSize: cfg.CD.BlockSize,
		Mode:      cfg.CD.Mode,
		DampStep:  cfg.CD.Step,
		Seed:      cfg.CD.Seed,
	}
	return CD(r.AC, r.Data, cp, cfg.FStar)
}

func solveGCG(_ context.Context, r SolveRequest) (*Result, error) {
	cfg := r.Config
	gp := GCGParams{
		Params:       cfg.Params,
		RestartEvery: cfg.GCG.RestartEvery,
		Mode:         cfg.GCG.Mode,
		Atoms:        cfg.GCG.Atoms,
	}
	return GCG(r.AC, r.Data, gp, cfg.FStar)
}

func solveMllibSGD(ctx context.Context, r SolveRequest) (*Result, error) {
	if r.Points == nil {
		return nil, fmt.Errorf("opt: mllib-sgd needs the distributed points RDD")
	}
	return MllibSGDCtx(ctx, r.AC.RDD(), r.Points, r.Data, r.Config.Params, r.Config.FStar)
}
