package opt

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/la"
)

func TestTopKBasics(t *testing.T) {
	g := la.Vec{0.1, -5, 0, 3, -0.2}
	s := TopK(g, 2)
	if s.NNZ() != 2 {
		t.Fatalf("nnz = %d", s.NNZ())
	}
	d := s.Dense()
	if d[1] != -5 || d[3] != 3 {
		t.Fatalf("kept %v", d)
	}
	if d[0] != 0 || d[2] != 0 || d[4] != 0 {
		t.Fatalf("dropped coords nonzero: %v", d)
	}
}

func TestTopKEdgeCases(t *testing.T) {
	g := la.Vec{1, 2, 3}
	if TopK(g, 0).NNZ() != 0 {
		t.Fatal("k=0 kept entries")
	}
	if TopK(g, 10).NNZ() != 3 {
		t.Fatal("k>len dropped entries")
	}
	zero := la.NewVec(4)
	if TopK(zero, 2).NNZ() != 0 {
		t.Fatal("zeros kept")
	}
}

// TestPropTopKKeepsLargest: every kept coordinate has magnitude ≥ every
// dropped one, indices are sorted, and at most k entries survive.
func TestPropTopKKeepsLargest(t *testing.T) {
	f := func(raw []float64, kRaw uint8) bool {
		g := make(la.Vec, len(raw))
		for i, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				x = 1
			}
			g[i] = math.Mod(x, 1e6)
		}
		k := int(kRaw%16) + 1
		s := TopK(g, k)
		if s.NNZ() > k {
			return false
		}
		kept := map[int32]bool{}
		minKept := math.Inf(1)
		prev := int32(-1)
		for i, j := range s.Idx {
			if j <= prev {
				return false // unsorted
			}
			prev = j
			kept[j] = true
			if a := math.Abs(s.Val[i]); a < minKept {
				minKept = a
			}
			if s.Val[i] != g[j] {
				return false // value altered
			}
		}
		if s.NNZ() == k {
			for j, v := range g {
				if !kept[int32(j)] && math.Abs(v) > minKept {
					return false // dropped something larger than a kept entry
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestTopKAllocs pins the selection path's budget: with the scratch pair
// pooled, a steady-state call pays only the two result-slice copies.
func TestTopKAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	g := make(la.Vec, 8192)
	for i := range g {
		g[i] = rng.NormFloat64()
	}
	TopK(g, 128) // warm the scratch pool
	if a := testing.AllocsPerRun(50, func() { TopK(g, 128) }); a > 2 {
		t.Errorf("TopK allocates %v per run, want ≤ 2 (result slices)", a)
	}
}

func BenchmarkTopK(b *testing.B) {
	rng := rand.New(rand.NewSource(23))
	g := make(la.Vec, 1<<17)
	for i := range g {
		g[i] = rng.NormFloat64()
	}
	k := len(g) / 100
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		TopK(g, k)
	}
}

func TestSparseASGDConverges(t *testing.T) {
	r := newRig(t, 4, 8, nil)
	res, coords, err := SparseASGD(r.ac, r.d, Params{
		Step: Scaled{Base: InvSqrt{A: 0.08}, Factor: 4}, SampleFrac: 0.4,
		Updates: 800, SnapshotEvery: 200,
	}, 0.5, r.fstar)
	if err != nil {
		t.Fatal(err)
	}
	// 4x keeps headroom under full-suite load: unloaded runs sit at ~8x
	r.assertConverged(t, res, 4)
	// with top-50%, at most half the coordinates per update crossed
	maxCoords := int64(800) * int64(r.d.NumCols()) / 2
	if coords == 0 || coords > maxCoords {
		t.Fatalf("coords shipped %d, want (0, %d]", coords, maxCoords)
	}
}

func TestSparseASGDValidation(t *testing.T) {
	r := newRig(t, 1, 1, nil)
	p := Params{Step: Constant{A: 0.01}, SampleFrac: 0.5, Updates: 1}
	if _, _, err := SparseASGD(r.ac, r.d, p, 0, r.fstar); err == nil {
		t.Fatal("zero top-k fraction accepted")
	}
	if _, _, err := SparseASGD(r.ac, r.d, p, 1.5, r.fstar); err == nil {
		t.Fatal("top-k fraction > 1 accepted")
	}
}
