package opt

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/la"
)

// wireTrip encodes a task result carrying payload through the binary codec
// and back, asserting it also gob-round-trips (the fallback format).
func wireTrip(t *testing.T, payload any) any {
	t.Helper()
	cluster.RegisterGobTypes()
	m := cluster.Message{Kind: cluster.KindTaskResult, Result: &cluster.Result{
		TaskID: 3, Worker: 1, Op: GradOpName, Payload: payload,
	}}
	frame, usedBin, err := cluster.EncodeFrame(m, true)
	if err != nil {
		t.Fatal(err)
	}
	if !usedBin {
		t.Fatalf("payload %T fell back to gob", payload)
	}
	back, err := cluster.DecodeFrame(frame)
	if err != nil {
		t.Fatal(err)
	}
	gobFrame, _, err := cluster.EncodeFrame(m, false)
	if err != nil {
		t.Fatalf("gob fallback encode: %v", err)
	}
	if _, err := cluster.DecodeFrame(gobFrame); err != nil {
		t.Fatalf("gob fallback decode: %v", err)
	}
	return back.Result.Payload
}

func wireRandVec(rng *rand.Rand, n int) la.Vec {
	v := la.NewVec(n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

func wireRandDelta(rng *rand.Rand, n, nnz int) *la.DeltaVec {
	d := &la.DeltaVec{N: n}
	step := n / (nnz + 1)
	if step < 1 {
		step = 1
	}
	for j := 0; j < n && len(d.Idx) < nnz; j += 1 + rng.Intn(step) {
		d.Idx = append(d.Idx, int32(j))
		d.Val = append(d.Val, rng.NormFloat64())
	}
	return d
}

func TestWireSagaPartialRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	orig := core.ReducePayload{
		Val: SagaPartial{Sum: wireRandVec(rng, 64), HistSum: wireRandVec(rng, 64)},
		N:   17,
	}
	got, ok := wireTrip(t, orig).(core.ReducePayload)
	if !ok {
		t.Fatal("reduce payload lost its type")
	}
	sp := got.Val.(SagaPartial)
	want := orig.Val.(SagaPartial)
	if got.N != orig.N || !la.Equal(sp.Sum, want.Sum, 0) || !la.Equal(sp.HistSum, want.HistSum, 0) {
		t.Fatal("SagaPartial did not survive the binary wire")
	}
}

func TestWireSagaDeltaRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	orig := SagaDelta{Sum: wireRandDelta(rng, 5000, 80), HistSum: wireRandDelta(rng, 5000, 40)}
	got, ok := wireTrip(t, core.ReducePayload{Val: orig, N: 9}).(core.ReducePayload)
	if !ok {
		t.Fatal("reduce payload lost its type")
	}
	sd := got.Val.(SagaDelta)
	for _, pair := range [][2]*la.DeltaVec{{sd.Sum, orig.Sum}, {sd.HistSum, orig.HistSum}} {
		if pair[0].N != pair[1].N || !reflect.DeepEqual(pair[0].Idx, pair[1].Idx) ||
			!reflect.DeepEqual(pair[0].Val, pair[1].Val) {
			t.Fatal("SagaDelta did not survive the binary wire")
		}
	}
}

func TestWireOpArgsRoundTrip(t *testing.T) {
	cluster.RegisterGobTypes()
	for _, args := range []any{
		GradOpArgs{BroadcastID: "sgd.w", Version: 12, Frac: 0.25, Parts: []int{0, 3, 7}, Loss: "logistic"},
		SagaOpArgs{BroadcastID: "saga.w", Version: 4, Frac: 1, Parts: []int{1}, Loss: "least-squares"},
	} {
		m := cluster.Message{Kind: cluster.KindRunTask, Task: &cluster.Task{
			ID: 8, Op: GradOpName, Args: args, Partition: -1, Seed: 99, Dispatch: 5,
		}}
		frame, usedBin, err := cluster.EncodeFrame(m, true)
		if err != nil {
			t.Fatal(err)
		}
		if !usedBin {
			t.Fatalf("args %T fell back to gob", args)
		}
		back, err := cluster.DecodeFrame(frame)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(back.Task.Args, args) {
			t.Fatalf("op args did not survive: %#v vs %#v", back.Task.Args, args)
		}
	}
}
