package opt

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/la"
)

func evalDataset(t *testing.T) *dataset.Dataset {
	t.Helper()
	d, err := dataset.Generate(dataset.SynthConfig{
		Name: "eval", Rows: 200, Cols: 10, NNZPerRow: 6, Noise: 0, Binary: true, Seed: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestAccuracyAtPlantedModel(t *testing.T) {
	d := evalDataset(t)
	// the reference least-squares solution on noiseless ±1 labels should
	// classify nearly everything correctly
	w, _, err := ReferenceOptimum(d)
	if err != nil {
		t.Fatal(err)
	}
	acc, err := Accuracy(d, w)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.9 {
		t.Fatalf("accuracy %v at reference optimum", acc)
	}
	// the zero model predicts +1 everywhere: accuracy = fraction of +1s
	zeroAcc, err := Accuracy(d, la.NewVec(d.NumCols()))
	if err != nil {
		t.Fatal(err)
	}
	pos := 0
	for _, y := range d.Y {
		if y == 1 {
			pos++
		}
	}
	want := float64(pos) / float64(d.NumRows())
	if math.Abs(zeroAcc-want) > 1e-12 {
		t.Fatalf("zero-model accuracy %v, want %v", zeroAcc, want)
	}
}

func TestPredictDims(t *testing.T) {
	d := evalDataset(t)
	if _, err := Predict(d, la.Vec{1}); err == nil {
		t.Fatal("dim mismatch accepted")
	}
	scores, err := Predict(d, la.NewVec(d.NumCols()))
	if err != nil {
		t.Fatal(err)
	}
	if len(scores) != d.NumRows() {
		t.Fatalf("scores len %d", len(scores))
	}
}

func TestRMSE(t *testing.T) {
	d, err := dataset.Generate(dataset.SynthConfig{
		Name: "rmse", Rows: 100, Cols: 8, NNZPerRow: 8, Noise: 0, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	w, _, err := ReferenceOptimum(d)
	if err != nil {
		t.Fatal(err)
	}
	rmse, err := RMSE(d, w)
	if err != nil {
		t.Fatal(err)
	}
	if rmse > 1e-4 {
		t.Fatalf("RMSE %v at optimum of noiseless problem", rmse)
	}
	zero, err := RMSE(d, la.NewVec(d.NumCols()))
	if err != nil {
		t.Fatal(err)
	}
	if zero <= rmse {
		t.Fatal("zero model beat the optimum")
	}
}

func TestTrainTestSplit(t *testing.T) {
	d := evalDataset(t)
	train, test, err := dataset.TrainTestSplit(d, 0.25, 3)
	if err != nil {
		t.Fatal(err)
	}
	if train.NumRows()+test.NumRows() != d.NumRows() {
		t.Fatalf("split sizes %d + %d != %d", train.NumRows(), test.NumRows(), d.NumRows())
	}
	if test.NumRows() != 50 {
		t.Fatalf("test rows %d, want 50", test.NumRows())
	}
	if train.NumCols() != d.NumCols() || test.NumCols() != d.NumCols() {
		t.Fatal("split changed dimensionality")
	}
	// deterministic given the seed
	train2, _, err := dataset.TrainTestSplit(d, 0.25, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !la.Equal(train.Y, train2.Y, 0) {
		t.Fatal("split not deterministic")
	}
	// invalid fractions rejected
	for _, f := range []float64{0, 1, -0.5, 1.5} {
		if _, _, err := dataset.TrainTestSplit(d, f, 1); err == nil {
			t.Fatalf("fraction %v accepted", f)
		}
	}
}

// TestGeneralizes: training on the train split generalizes to the held-out
// test split (end-to-end sanity of the whole pipeline).
func TestGeneralizes(t *testing.T) {
	r := newRig(t, 2, 4, nil)
	train, test, err := dataset.TrainTestSplit(r.d, 0.25, 7)
	if err != nil {
		t.Fatal(err)
	}
	w, _, err := ReferenceOptimum(train)
	if err != nil {
		t.Fatal(err)
	}
	trainRMSE, err := RMSE(train, w)
	if err != nil {
		t.Fatal(err)
	}
	testRMSE, err := RMSE(test, w)
	if err != nil {
		t.Fatal(err)
	}
	zeroRMSE, err := RMSE(test, la.NewVec(test.NumCols()))
	if err != nil {
		t.Fatal(err)
	}
	if testRMSE >= zeroRMSE {
		t.Fatalf("no generalization: test %v vs zero-model %v", testRMSE, zeroRMSE)
	}
	// train and test errors should be the same order of magnitude (either
	// may be smaller by sampling luck on a low-noise problem)
	if trainRMSE > 3*testRMSE || testRMSE > 3*trainRMSE {
		t.Fatalf("train RMSE %v and test RMSE %v diverge", trainRMSE, testRMSE)
	}
}
