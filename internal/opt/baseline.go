package opt

import (
	"context"
	"fmt"

	"repro/internal/dataset"
	"repro/internal/la"
	"repro/internal/rdd"
)

// gradAgg is the per-partition fold state for the baseline's aggregate.
type gradAgg struct {
	G la.Vec
	N int
}

// MllibSGD is the comparison baseline of Figure 2: mini-batch SGD written
// directly against the synchronous RDD layer (sample → map → reduce per
// round) with Mllib's 1/√t step decay, entirely bypassing the ASYNC
// components. Differences between this and SyncSGD measure ASYNC's
// synchronous-path overhead.
func MllibSGD(rctx *rdd.Context, points *rdd.RDD[rdd.Point], d *dataset.Dataset, p Params, fstar float64) (*Result, error) {
	return MllibSGDCtx(context.Background(), rctx, points, d, p, fstar)
}

// MllibSGDCtx is MllibSGD with cancellation: the baseline bypasses the AC
// (so Context.Bind cannot reach it) and instead checks ctx between rounds.
// It runs through the unified driver runtime in its AC-free synchronous
// mode — one SyncStep per Spark-style round.
func MllibSGDCtx(ctx context.Context, rctx *rdd.Context, points *rdd.RDD[rdd.Point], d *dataset.Dataset, p Params, fstar float64) (*Result, error) {
	if err := p.defaults(); err != nil {
		return nil, err
	}
	if err := rejectL1(p.Loss, "mllib-sgd"); err != nil {
		return nil, err
	}
	u := &vecUpdater{w: la.NewVec(d.NumCols())}
	w, loss := u.w, p.Loss
	return runLoop(nil, d, u, &loopSpec{
		Algo: "Mllib-SGD", Name: "mllib-sgd",
		P: &p, Loss: loss, FStar: fstar,
		Target: int64(p.Updates), RoundBudget: true,
		Workers: rctx.Cluster().NumWorkers(),
		SyncStep: func(k int64) (bool, error) {
			if err := ctx.Err(); err != nil {
				return false, fmt.Errorf("opt: MllibSGD round %d: %w", k, err)
			}
			// Spark broadcasts the model each round; tasks close over this
			// round's immutable copy.
			wRound := w.Clone()
			sampled := points.Sample(p.SampleFrac)
			agg, err := rdd.Aggregate(sampled, gradAgg{},
				func(acc gradAgg, pt rdd.Point) gradAgg {
					if acc.G == nil {
						acc.G = la.NewVec(len(wRound))
					}
					loss.AddGrad(pt.X, pt.Y, wRound, acc.G)
					acc.N++
					return acc
				},
				func(a, b gradAgg) gradAgg {
					switch {
					case a.G == nil:
						return b
					case b.G == nil:
						return a
					default:
						la.Axpy(1, b.G, a.G)
						a.N += b.N
						return a
					}
				})
			if err != nil {
				return false, fmt.Errorf("opt: MllibSGD round %d: %w", k, err)
			}
			if agg.N == 0 {
				return false, nil
			}
			la.Axpy(-p.Step.Alpha(k)/float64(agg.N), agg.G, w)
			return true, nil
		},
	})
}

// SAGAFullTableBroadcast is the inefficient Spark-only SAGA of Algorithm 3,
// kept as the ablation comparator for the ASYNCbroadcaster: every round the
// driver re-broadcasts the FULL history table (one model vector per
// previously touched sample index), exactly the overhead §4.3 describes.
// It returns the total bytes shipped so the ablation bench can report the
// communication blow-up.
func SAGAFullTableBroadcast(rctx *rdd.Context, points *rdd.RDD[rdd.Point], d *dataset.Dataset, p Params, fstar float64) (*Result, int64, error) {
	if err := p.defaults(); err != nil {
		return nil, 0, err
	}
	cols := d.NumCols()
	st := newSagaState(cols, d.NumRows())
	loss := p.Loss
	// history table: sample index → model at last touch (driver side);
	// untouched samples contribute zero historical gradient, matching
	// SagaKernel's zero-initialized table
	table := map[int]la.Vec{}
	var bytesShipped int64
	workers := int64(len(rctx.Cluster().AliveWorkers()))
	res, err := runLoop(nil, d, sagaStreamUpdater{st}, &loopSpec{
		Algo: "SAGA-table", Name: "saga-table",
		P: &p, Loss: loss, FStar: fstar,
		Target: int64(p.Updates), RoundBudget: true,
		Workers: rctx.Cluster().NumWorkers(),
		SyncStep: func(k int64) (bool, error) {
			wRound := st.w.Clone()
			// Spark must ship the whole table with the round's broadcast:
			// count its size against the run (8 bytes per float64).
			tableCopy := make(map[int]la.Vec, len(table))
			for idx, vec := range table {
				tableCopy[idx] = vec
			}
			bytesShipped += workers * int64(len(tableCopy)) * int64(cols) * 8
			bytesShipped += workers * int64(cols) * 8 // the model itself
			sampled := points.Sample(p.SampleFrac)
			type sagaAgg struct {
				Part SagaPartial
				N    int
				Idx  []int
			}
			agg, err := rdd.Aggregate(sampled, sagaAgg{},
				func(acc sagaAgg, pt rdd.Point) sagaAgg {
					if acc.Part.Sum == nil {
						acc.Part.Sum = la.NewVec(cols)
						acc.Part.HistSum = la.NewVec(cols)
					}
					loss.AddGrad(pt.X, pt.Y, wRound, acc.Part.Sum)
					if hw, ok := tableCopy[pt.GlobalIndex]; ok {
						loss.AddGrad(pt.X, pt.Y, hw, acc.Part.HistSum)
					}
					acc.N++
					acc.Idx = append(acc.Idx, pt.GlobalIndex)
					return acc
				},
				func(a, b sagaAgg) sagaAgg {
					switch {
					case a.Part.Sum == nil:
						return b
					case b.Part.Sum == nil:
						return a
					default:
						la.Axpy(1, b.Part.Sum, a.Part.Sum)
						la.Axpy(1, b.Part.HistSum, a.Part.HistSum)
						a.N += b.N
						a.Idx = append(a.Idx, b.Idx...)
						return a
					}
				})
			if err != nil {
				return false, fmt.Errorf("opt: table-SAGA round %d: %w", k, err)
			}
			if agg.N == 0 {
				return false, nil
			}
			if err := st.apply(p.Step.Alpha(k), agg.Part, agg.N); err != nil {
				return false, err
			}
			for _, idx := range agg.Idx {
				table[idx] = wRound
			}
			return true, nil
		},
	})
	return res, bytesShipped, err
}
