package opt

import (
	"math"
	"sort"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/rdd"
	"repro/internal/straggler"
)

// rig is a ready-to-run optimization test fixture.
type rig struct {
	ac     *core.Context
	rctx   *rdd.Context
	points *rdd.RDD[rdd.Point]
	d      *dataset.Dataset
	fstar  float64
	f0     float64 // objective at w = 0
}

func newRig(t *testing.T, workers, parts int, delay straggler.Model) *rig {
	t.Helper()
	c, err := cluster.NewLocal(cluster.Config{NumWorkers: workers, Delay: delay, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Shutdown)
	d, err := dataset.Generate(dataset.SynthConfig{
		Name: "opt-test", Rows: 160, Cols: 8, NNZPerRow: 5, Noise: 0.05, Seed: 17,
	})
	if err != nil {
		t.Fatal(err)
	}
	rctx := rdd.NewContext(c)
	points, err := rctx.Distribute(d, parts)
	if err != nil {
		t.Fatal(err)
	}
	ac := core.New(rctx)
	t.Cleanup(ac.Close)
	_, fstar, err := ReferenceOptimum(d)
	if err != nil {
		t.Fatal(err)
	}
	return &rig{
		ac: ac, rctx: rctx, points: points, d: d, fstar: fstar,
		f0: Objective(d, LeastSquares{}, make([]float64, d.NumCols())),
	}
}

// assertConverged checks the run reduced suboptimality by at least factor.
func (r *rig) assertConverged(t *testing.T, res *Result, factor float64) {
	t.Helper()
	final := Objective(r.d, LeastSquares{}, res.W) - r.fstar
	initial := r.f0 - r.fstar
	if final < 0 {
		t.Fatalf("final error %v below optimum — fstar wrong", final)
	}
	if final > initial/factor {
		t.Fatalf("did not converge: error %v → %v (want ≥%gx reduction)", initial, final, factor)
	}
	r.assertTrace(t, res)
}

// assertTrace checks trace structure without any convergence claim.
func (r *rig) assertTrace(t *testing.T, res *Result) {
	t.Helper()
	if len(res.Trace.Points) < 2 {
		t.Fatalf("trace has %d points", len(res.Trace.Points))
	}
	if res.Trace.Total <= 0 {
		t.Fatal("trace total duration missing")
	}
}

// reduction returns the run's suboptimality-reduction factor.
func (r *rig) reduction(res *Result) float64 {
	final := Objective(r.d, LeastSquares{}, res.W) - r.fstar
	return (r.f0 - r.fstar) / final
}

// medianOf returns the median of a small sample.
func medianOf(v []float64) float64 {
	s := append([]float64(nil), v...)
	sort.Float64s(s)
	return s[len(s)/2]
}

func TestSyncSGDConverges(t *testing.T) {
	r := newRig(t, 4, 8, nil)
	res, err := SyncSGD(r.ac, r.d, Params{
		Step: InvSqrt{A: 0.08}, SampleFrac: 0.4, Updates: 80, SnapshotEvery: 20,
	}, r.fstar)
	if err != nil {
		t.Fatal(err)
	}
	r.assertConverged(t, res, 10)
	if res.Trace.Algorithm != "SGD" {
		t.Fatalf("algo %q", res.Trace.Algorithm)
	}
}

func TestASGDConverges(t *testing.T) {
	r := newRig(t, 4, 8, nil)
	res, err := ASGD(r.ac, r.d, Params{
		Step: Scaled{Base: InvSqrt{A: 0.08}, Factor: 4}, SampleFrac: 0.4,
		Updates: 800, SnapshotEvery: 200,
	}, r.fstar)
	if err != nil {
		t.Fatal(err)
	}
	r.assertConverged(t, res, 10)
	if res.Trace.Algorithm != "ASGD" {
		t.Fatalf("algo %q", res.Trace.Algorithm)
	}
	if len(res.Trace.AvgWait) == 0 {
		t.Fatal("no wait times recorded")
	}
}

func TestASGDWithStalenessLR(t *testing.T) {
	r := newRig(t, 4, 8, nil)
	res, err := ASGD(r.ac, r.d, Params{
		Step: Scaled{Base: InvSqrt{A: 0.08}, Factor: 4}, SampleFrac: 0.4,
		Updates: 800, SnapshotEvery: 200, StalenessLR: true,
	}, r.fstar)
	if err != nil {
		t.Fatal(err)
	}
	r.assertConverged(t, res, 3)
}

func TestASGDWithSSPBarrier(t *testing.T) {
	r := newRig(t, 4, 8, nil)
	res, err := ASGD(r.ac, r.d, Params{
		Step: Scaled{Base: InvSqrt{A: 0.08}, Factor: 4}, SampleFrac: 0.4,
		Updates: 600, SnapshotEvery: 150, Barrier: core.SSP(64),
	}, r.fstar)
	if err != nil {
		t.Fatal(err)
	}
	r.assertConverged(t, res, 5)
}

func TestSAGAConverges(t *testing.T) {
	r := newRig(t, 4, 8, nil)
	res, err := SAGA(r.ac, r.d, Params{
		Step: Constant{A: 0.05}, SampleFrac: 0.3, Updates: 100, SnapshotEvery: 25,
	}, r.fstar)
	if err != nil {
		t.Fatal(err)
	}
	r.assertConverged(t, res, 10)
}

func TestASAGAConverges(t *testing.T) {
	// a single asynchronous run's final error is heavy-tailed in the
	// goroutine interleaving, so the convergence claim is asserted on the
	// median of independent runs rather than one draw
	factors := make([]float64, 0, 5)
	for i := 0; i < 5; i++ {
		r := newRig(t, 4, 8, nil)
		res, err := ASAGA(r.ac, r.d, Params{
			Step: Constant{A: 0.05 / 4}, SampleFrac: 0.3, Updates: 400, SnapshotEvery: 100,
		}, r.fstar)
		if err != nil {
			t.Fatal(err)
		}
		r.assertTrace(t, res)
		factors = append(factors, r.reduction(res))
	}
	if m := medianOf(factors); m < 4 {
		t.Fatalf("ASAGA did not converge: median reduction %.2fx of %v, want >= 4x", m, factors)
	}
}

func TestEpochVRConverges(t *testing.T) {
	r := newRig(t, 4, 8, nil)
	res, err := EpochVR(r.ac, r.d, VRParams{
		Params: Params{Step: Constant{A: 0.02}, SampleFrac: 0.3, Updates: 1, SnapshotEvery: 40},
		Epochs: 4, UpdatesPerEpoch: 80,
	}, r.fstar)
	if err != nil {
		t.Fatal(err)
	}
	r.assertConverged(t, res, 10)
}

func TestMllibSGDConverges(t *testing.T) {
	r := newRig(t, 4, 8, nil)
	res, err := MllibSGD(r.rctx, r.points, r.d, Params{
		Step: InvSqrt{A: 0.08}, SampleFrac: 0.4, Updates: 80, SnapshotEvery: 20,
	}, r.fstar)
	if err != nil {
		t.Fatal(err)
	}
	r.assertConverged(t, res, 10)
}

// TestFig2Shape is the Figure 2 claim: the ASYNC-based synchronous SGD and
// the engine-only baseline reach comparable error.
func TestFig2Shape(t *testing.T) {
	r := newRig(t, 4, 8, nil)
	p := Params{Step: InvSqrt{A: 0.08}, SampleFrac: 0.4, Updates: 60, SnapshotEvery: 20}
	mllib, err := MllibSGD(r.rctx, r.points, r.d, p, r.fstar)
	if err != nil {
		t.Fatal(err)
	}
	async, err := SyncSGD(r.ac, r.d, p, r.fstar)
	if err != nil {
		t.Fatal(err)
	}
	em, ea := mllib.Trace.FinalError(), async.Trace.FinalError()
	if em <= 0 || ea <= 0 {
		t.Fatalf("degenerate errors %v %v", em, ea)
	}
	ratio := em / ea
	if ratio < 0.1 || ratio > 10 {
		t.Fatalf("sync-in-ASYNC and baseline diverge: %v vs %v", ea, em)
	}
}

func TestASGDUnderStraggler(t *testing.T) {
	// one worker at 1/3 speed: ASGD must still converge
	r := newRig(t, 4, 8, straggler.ControlledDelay{Worker: 0, Intensity: 2})
	res, err := ASGD(r.ac, r.d, Params{
		Step: Scaled{Base: InvSqrt{A: 0.08}, Factor: 4}, SampleFrac: 0.4,
		Updates: 600, SnapshotEvery: 150,
	}, r.fstar)
	if err != nil {
		t.Fatal(err)
	}
	r.assertConverged(t, res, 5)
}

func TestSAGAFullTableBroadcastShipsMoreBytes(t *testing.T) {
	r := newRig(t, 2, 4, nil)
	res, bytes, err := SAGAFullTableBroadcast(r.rctx, r.points, r.d, Params{
		Step: Constant{A: 0.05}, SampleFrac: 0.3, Updates: 40, SnapshotEvery: 10,
	}, r.fstar)
	if err != nil {
		t.Fatal(err)
	}
	r.assertConverged(t, res, 3)
	if bytes == 0 {
		t.Fatal("table broadcast reported zero bytes")
	}
	// the table grows with touched samples: later rounds dominate; total
	// must exceed the model-only volume (updates × workers × cols × 8)
	modelOnly := int64(40 * 2 * r.d.NumCols() * 8)
	if bytes <= modelOnly {
		t.Fatalf("table bytes %d not above model-only volume %d", bytes, modelOnly)
	}
}

func TestParamsValidation(t *testing.T) {
	r := newRig(t, 1, 1, nil)
	if _, err := SyncSGD(r.ac, r.d, Params{SampleFrac: 0.5, Updates: 1}, 0); err == nil {
		t.Fatal("missing step accepted")
	}
	if _, err := SyncSGD(r.ac, r.d, Params{Step: Constant{A: 1}, SampleFrac: 0, Updates: 1}, 0); err == nil {
		t.Fatal("zero frac accepted")
	}
	if _, err := SyncSGD(r.ac, r.d, Params{Step: Constant{A: 1}, SampleFrac: 0.5, Updates: 0}, 0); err == nil {
		t.Fatal("zero updates accepted")
	}
	if _, err := EpochVR(r.ac, r.d, VRParams{
		Params: Params{Step: Constant{A: 1}, SampleFrac: 0.5, Updates: 1},
	}, 0); err == nil {
		t.Fatal("zero epochs accepted")
	}
}

func TestSagaStateApplyMath(t *testing.T) {
	st := newSagaState(2, 10)
	part := SagaPartial{Sum: []float64{2, 4}, HistSum: []float64{1, 1}}
	// alpha=1, batch=1: w = -( (2-1), (4-1) ) = (-1, -3); avgHist = (0.1, 0.3)
	if err := st.apply(1, part, 1); err != nil {
		t.Fatal(err)
	}
	approx := func(got, want float64) bool { return math.Abs(got-want) < 1e-12 }
	if !approx(st.w[0], -1) || !approx(st.w[1], -3) {
		t.Fatalf("w = %v", st.w)
	}
	if !approx(st.avgHist[0], 0.1) || !approx(st.avgHist[1], 0.3) {
		t.Fatalf("avgHist = %v", st.avgHist)
	}
	// second apply includes the avgHist correction term
	if err := st.apply(1, SagaPartial{Sum: []float64{0, 0}, HistSum: []float64{0, 0}}, 1); err != nil {
		t.Fatal(err)
	}
	if !approx(st.w[0], -1.1) || !approx(st.w[1], -3.3) {
		t.Fatalf("w after correction = %v", st.w)
	}
	if err := st.apply(1, part, 0); err == nil {
		t.Fatal("zero batch accepted")
	}
}
