package opt

import (
	"testing"

	"repro/internal/core"
	"repro/internal/straggler"
)

func TestADMMSyncConverges(t *testing.T) {
	r := newRig(t, 4, 8, nil)
	res, err := ADMM(r.ac, r.d, ADMMParams{
		Rho: 1, Rounds: 40, Barrier: core.BSP(), Snapshot: 10,
	}, r.fstar)
	if err != nil {
		t.Fatal(err)
	}
	r.assertConverged(t, res, 50) // ADMM with exact local solves converges fast
	if res.Trace.Algorithm != "ADMM" {
		t.Fatalf("algo %q", res.Trace.Algorithm)
	}
}

func TestADMMAsyncConverges(t *testing.T) {
	r := newRig(t, 4, 8, nil)
	res, err := ADMM(r.ac, r.d, ADMMParams{
		Rho: 1, Rounds: 80, Snapshot: 20, // default barrier: ASP
	}, r.fstar)
	if err != nil {
		t.Fatal(err)
	}
	r.assertConverged(t, res, 20)
	if res.Trace.Algorithm != "ADMM-async" {
		t.Fatalf("algo %q", res.Trace.Algorithm)
	}
}

func TestADMMAsyncUnderStraggler(t *testing.T) {
	r := newRig(t, 4, 8, straggler.ControlledDelay{Worker: 0, Intensity: 2})
	res, err := ADMM(r.ac, r.d, ADMMParams{
		Rho: 1, Rounds: 80, Snapshot: 20,
	}, r.fstar)
	if err != nil {
		t.Fatal(err)
	}
	// unloaded runs reduce error 50x+; 5x keeps headroom for the rare
	// straggler-heavy interleaving under full-suite load
	r.assertConverged(t, res, 5)
}

func TestADMMValidation(t *testing.T) {
	r := newRig(t, 1, 1, nil)
	if _, err := ADMM(r.ac, r.d, ADMMParams{Rounds: 0}, r.fstar); err == nil {
		t.Fatal("zero rounds accepted")
	}
}

func TestADMMRhoSensitivity(t *testing.T) {
	// any positive rho must still converge (ADMM is famously insensitive)
	for _, rho := range []float64{0.1, 1, 10} {
		r := newRig(t, 2, 4, nil)
		res, err := ADMM(r.ac, r.d, ADMMParams{
			Rho: rho, Rounds: 60, Barrier: core.BSP(), Snapshot: 20,
		}, r.fstar)
		if err != nil {
			t.Fatalf("rho=%v: %v", rho, err)
		}
		r.assertConverged(t, res, 10)
	}
}
