package opt

import (
	"encoding/gob"
	"fmt"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/la"
)

// ADMM solves the consensus least-squares problem
//
//	min Σ_i ‖A_i x − b_i‖²  over workers i
//
// with the alternating direction method of multipliers: each worker keeps a
// local primal x_i and dual u_i, solves its proximal subproblem with a
// local conjugate-gradient solve, and the server averages (x_i + u_i) into
// the consensus z. The paper (§7) lists ADMM among the methods ASYNC's
// primitives support: the synchronous variant is a BSP round per z-update;
// the asynchronous variant (in the spirit of Zhang & Kwok 2014) updates z
// from whichever workers have reported, under any barrier.
//
// Worker-local state (x_i, u_i, cached Gram operator) lives in the worker
// Env store; the consensus z travels via the ASYNCbroadcaster.

// ADMMParams configures an ADMM run.
type ADMMParams struct {
	Rho      float64 // augmented-Lagrangian penalty (> 0)
	Rounds   int     // z-updates
	CGTol    float64 // local subproblem tolerance
	CGIters  int     // local subproblem iteration cap
	Barrier  core.BarrierFunc
	Filter   core.WorkerFilter
	Snapshot int // trace resolution in z-updates

	// OnProgress observes recorder snapshots as z-updates land (see
	// Params.OnProgress).
	OnProgress ProgressFunc

	// CheckpointEvery / OnCheckpoint / Preempt / Resume mirror the Params
	// fields of the same names (see Params); the checkpoint carries z and
	// the per-worker consensus contributions. Worker-side primal/dual
	// iterates are soft state a resumed run re-seeds.
	CheckpointEvery int
	OnCheckpoint    func(*Checkpoint)
	Preempt         *PreemptSignal
	Resume          *Checkpoint
}

func (p *ADMMParams) defaults() error {
	if p.Rho <= 0 {
		p.Rho = 1
	}
	if p.Rounds <= 0 {
		return fmt.Errorf("opt: ADMM needs positive Rounds")
	}
	if p.CGTol <= 0 {
		p.CGTol = 1e-8
	}
	if p.CGIters <= 0 {
		p.CGIters = 200
	}
	if p.Barrier == nil {
		p.Barrier = core.ASP()
	}
	if p.Snapshot <= 0 {
		p.Snapshot = 5
	}
	return nil
}

// admmState is the per-partition ADMM state kept in the Env store, plus the
// subproblem scratch (rhs, MatVec temporary) sized once per partition so the
// steady-state local solve allocates nothing.
type admmState struct {
	x, u la.Vec
	rhs  la.Vec
	tmp  la.Vec // length NumRows of the partition
}

// ADMMPartial is a worker's contribution to the consensus update.
type ADMMPartial struct {
	XPlusU la.Vec
	// PrimalSq is ‖x_i − z‖², the worker's primal residual contribution.
	PrimalSq float64
}

func init() {
	gob.Register(ADMMPartial{})
}

// admmKernel solves each owned partition's proximal subproblem at the
// current consensus and returns Σ(x_i + u_i) with the partition count as
// the batch size (partitions are ADMM's "agents").
func admmKernel(zBr core.DynBroadcast, rho, cgTol float64, cgIters int) core.Kernel {
	return func(env *cluster.Env, parts []int, seed int64) (any, int, error) {
		zv, err := zBr.Value(env)
		if err != nil {
			return nil, 0, err
		}
		z, err := asVec(zv)
		if err != nil {
			return nil, 0, err
		}
		cols := len(z)
		sum := la.GetVec(cols)
		var primalSq float64
		n := 0
		// all partition states live under one store key so the steady-state
		// lookup is a map read, not a per-task key allocation
		states := env.StoreGetOrCreate("opt.admm.states", func() any {
			return map[int]*admmState{}
		}).(map[int]*admmState)
		for _, pi := range parts {
			p, err := env.Partition(pi)
			if err != nil {
				la.PutVec(sum)
				return nil, 0, err
			}
			st, ok := states[pi]
			if !ok {
				st = &admmState{
					x: la.NewVec(cols), u: la.NewVec(cols),
					rhs: la.NewVec(cols), tmp: la.NewVec(p.X.NumRows),
				}
				states[pi] = st
			}

			// subproblem: (2 A_iᵀA_i + ρI) x = 2 A_iᵀ b_i + ρ (z − u_i)
			rhs := st.rhs
			p.X.MatTVec(p.Y, rhs)
			la.Scale(2, rhs)
			for j := range rhs {
				rhs[j] += rho * (z[j] - st.u[j])
			}
			tmp := st.tmp
			mul := func(x, y la.Vec) {
				p.X.MatVec(x, tmp)
				p.X.MatTVec(tmp, y)
				la.Scale(2, y)
				la.Axpy(rho, x, y)
			}
			if _, err := la.ConjGrad(mul, rhs, st.x, cgTol, cgIters); err != nil {
				la.PutVec(sum)
				return nil, 0, fmt.Errorf("opt: ADMM partition %d: %w", pi, err)
			}
			// dual ascent against the consensus the worker can see
			for j := range st.u {
				st.u[j] += st.x[j] - z[j]
				sum[j] += st.x[j] + st.u[j]
				d := st.x[j] - z[j]
				primalSq += d * d
			}
			n++
		}
		if n == 0 {
			la.PutVec(sum)
			return nil, 0, nil
		}
		return ADMMPartial{XPlusU: sum, PrimalSq: primalSq}, n, nil
	}
}

// admmContrib is one worker's latest consensus contribution: the sum of
// (x_i + u_i) over its partitions plus how many partitions it covered.
type admmContrib struct {
	sum la.Vec
	n   int
}

// admmUpdater re-averages the consensus z from the latest contribution of
// each worker — every contribution is first-class driver state, exported
// with the checkpoint so a resumed asynchronous run re-averages from
// exactly the mix it was preempted at.
type admmUpdater struct {
	z      la.Vec
	latest map[int]admmContrib
}

func (u *admmUpdater) Model() la.Vec { return u.z }
func (u *admmUpdater) Settle()       {}

func (u *admmUpdater) Apply(payload any, attrs *core.Attrs, _ float64) error {
	part, ok := payload.(ADMMPartial)
	if !ok {
		return fmt.Errorf("unexpected payload %T", payload)
	}
	// copy into the worker's persistent contribution buffer and recycle
	// the pooled payload (latest outlives the round)
	c := u.latest[attrs.Worker]
	if len(c.sum) != len(part.XPlusU) {
		c.sum = la.NewVec(len(part.XPlusU))
	}
	c.sum.CopyFrom(part.XPlusU)
	c.n = attrs.MiniBatch
	u.latest[attrs.Worker] = c
	la.PutVec(part.XPlusU)
	return nil
}

// FlushRound recomputes z as the mean over all known partition
// contributions (the round's own collects included).
func (u *admmUpdater) FlushRound(_ float64) (bool, error) {
	total := 0
	u.z.Zero()
	for _, c := range u.latest {
		la.Axpy(1, c.sum, u.z)
		total += c.n
	}
	if total == 0 {
		return false, nil
	}
	la.Scale(1/float64(total), u.z)
	return true, nil
}

func (u *admmUpdater) Export(cp *Checkpoint) {
	for w, c := range u.latest {
		cp.SetVec(fmt.Sprintf("latest.sum.%d", w), c.sum)
		cp.SetInt(fmt.Sprintf("latest.n.%d", w), int64(c.n))
	}
}

func (u *admmUpdater) Import(cp *Checkpoint) error {
	if err := importModel(u.z, cp); err != nil {
		return err
	}
	for name, v := range cp.Vecs {
		var w int
		if _, err := fmt.Sscanf(name, "latest.sum.%d", &w); err != nil {
			continue
		}
		u.latest[w] = admmContrib{sum: v.Clone(), n: int(cp.Int(fmt.Sprintf("latest.n.%d", w)))}
	}
	return nil
}

// ADMM runs consensus ADMM. Synchronous (BSP) when p.Barrier is core.BSP():
// every z-update averages all partitions' (x_i + u_i). Under ASP/SSP the
// server re-averages from the latest contribution of each worker as results
// arrive — asynchronous consensus ADMM. fstar is the reference optimum of
// the global least-squares problem.
func ADMM(ac *core.Context, d *dataset.Dataset, p ADMMParams, fstar float64) (*Result, error) {
	if err := p.defaults(); err != nil {
		return nil, err
	}
	u := &admmUpdater{z: la.NewVec(d.NumCols()), latest: map[int]admmContrib{}}
	algo := "ADMM-async"
	if isBSPBarrier(ac, p.Barrier) {
		algo = "ADMM"
	}
	lp := Params{
		Updates: p.Rounds, Barrier: p.Barrier, Filter: p.Filter,
		SnapshotEvery: p.Snapshot, OnProgress: p.OnProgress,
		CheckpointEvery: p.CheckpointEvery, OnCheckpoint: p.OnCheckpoint,
		Preempt: p.Preempt, Resume: p.Resume,
	}
	return runLoop(ac, d, u, &loopSpec{
		Algo: algo, Name: "admm", Key: "admm.z",
		P: &lp, Loss: LeastSquares{}, FStar: fstar,
		Target: int64(p.Rounds), Publish: pubPlain,
		Round: true, StreamRound: true, RoundBudget: true,
		Dispatch: func(zBr core.DynBroadcast, sel *core.Selection) (int, error) {
			return ac.ASYNCreduce(sel, admmKernel(zBr, p.Rho, p.CGTol, p.CGIters))
		},
	})
}

// isBSPBarrier distinguishes the trace label only; behaviour comes from the
// predicate itself.
func isBSPBarrier(ac *core.Context, f core.BarrierFunc) bool {
	if f == nil {
		return false
	}
	st := ac.STAT()
	if st.AliveWorkers == 0 {
		return false
	}
	// probe: BSP-like predicates are false whenever any worker is busy
	probe := st
	probe.AvailableWorkers = st.AliveWorkers - 1
	return f(st) && !f(probe)
}
