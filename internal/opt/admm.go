package opt

import (
	"encoding/gob"
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/la"
)

// ADMM solves the consensus least-squares problem
//
//	min Σ_i ‖A_i x − b_i‖²  over workers i
//
// with the alternating direction method of multipliers: each worker keeps a
// local primal x_i and dual u_i, solves its proximal subproblem with a
// local conjugate-gradient solve, and the server averages (x_i + u_i) into
// the consensus z. The paper (§7) lists ADMM among the methods ASYNC's
// primitives support: the synchronous variant is a BSP round per z-update;
// the asynchronous variant (in the spirit of Zhang & Kwok 2014) updates z
// from whichever workers have reported, under any barrier.
//
// Worker-local state (x_i, u_i, cached Gram operator) lives in the worker
// Env store; the consensus z travels via the ASYNCbroadcaster.

// ADMMParams configures an ADMM run.
type ADMMParams struct {
	Rho      float64 // augmented-Lagrangian penalty (> 0)
	Rounds   int     // z-updates
	CGTol    float64 // local subproblem tolerance
	CGIters  int     // local subproblem iteration cap
	Barrier  core.BarrierFunc
	Filter   core.WorkerFilter
	Snapshot int // trace resolution in z-updates

	// OnProgress observes recorder snapshots as z-updates land (see
	// Params.OnProgress).
	OnProgress ProgressFunc
}

func (p *ADMMParams) defaults() error {
	if p.Rho <= 0 {
		p.Rho = 1
	}
	if p.Rounds <= 0 {
		return fmt.Errorf("opt: ADMM needs positive Rounds")
	}
	if p.CGTol <= 0 {
		p.CGTol = 1e-8
	}
	if p.CGIters <= 0 {
		p.CGIters = 200
	}
	if p.Barrier == nil {
		p.Barrier = core.ASP()
	}
	if p.Snapshot <= 0 {
		p.Snapshot = 5
	}
	return nil
}

// admmState is the per-partition ADMM state kept in the Env store, plus the
// subproblem scratch (rhs, MatVec temporary) sized once per partition so the
// steady-state local solve allocates nothing.
type admmState struct {
	x, u la.Vec
	rhs  la.Vec
	tmp  la.Vec // length NumRows of the partition
}

// ADMMPartial is a worker's contribution to the consensus update.
type ADMMPartial struct {
	XPlusU la.Vec
	// PrimalSq is ‖x_i − z‖², the worker's primal residual contribution.
	PrimalSq float64
}

func init() {
	gob.Register(ADMMPartial{})
}

// admmKernel solves each owned partition's proximal subproblem at the
// current consensus and returns Σ(x_i + u_i) with the partition count as
// the batch size (partitions are ADMM's "agents").
func admmKernel(zBr core.DynBroadcast, rho, cgTol float64, cgIters int) core.Kernel {
	return func(env *cluster.Env, parts []int, seed int64) (any, int, error) {
		zv, err := zBr.Value(env)
		if err != nil {
			return nil, 0, err
		}
		z, err := asVec(zv)
		if err != nil {
			return nil, 0, err
		}
		cols := len(z)
		sum := la.GetVec(cols)
		var primalSq float64
		n := 0
		// all partition states live under one store key so the steady-state
		// lookup is a map read, not a per-task key allocation
		states := env.StoreGetOrCreate("opt.admm.states", func() any {
			return map[int]*admmState{}
		}).(map[int]*admmState)
		for _, pi := range parts {
			p, err := env.Partition(pi)
			if err != nil {
				la.PutVec(sum)
				return nil, 0, err
			}
			st, ok := states[pi]
			if !ok {
				st = &admmState{
					x: la.NewVec(cols), u: la.NewVec(cols),
					rhs: la.NewVec(cols), tmp: la.NewVec(p.X.NumRows),
				}
				states[pi] = st
			}

			// subproblem: (2 A_iᵀA_i + ρI) x = 2 A_iᵀ b_i + ρ (z − u_i)
			rhs := st.rhs
			p.X.MatTVec(p.Y, rhs)
			la.Scale(2, rhs)
			for j := range rhs {
				rhs[j] += rho * (z[j] - st.u[j])
			}
			tmp := st.tmp
			mul := func(x, y la.Vec) {
				p.X.MatVec(x, tmp)
				p.X.MatTVec(tmp, y)
				la.Scale(2, y)
				la.Axpy(rho, x, y)
			}
			if _, err := la.ConjGrad(mul, rhs, st.x, cgTol, cgIters); err != nil {
				la.PutVec(sum)
				return nil, 0, fmt.Errorf("opt: ADMM partition %d: %w", pi, err)
			}
			// dual ascent against the consensus the worker can see
			for j := range st.u {
				st.u[j] += st.x[j] - z[j]
				sum[j] += st.x[j] + st.u[j]
				d := st.x[j] - z[j]
				primalSq += d * d
			}
			n++
		}
		if n == 0 {
			la.PutVec(sum)
			return nil, 0, nil
		}
		return ADMMPartial{XPlusU: sum, PrimalSq: primalSq}, n, nil
	}
}

// ADMM runs consensus ADMM. Synchronous (BSP) when p.Barrier is core.BSP():
// every z-update averages all partitions' (x_i + u_i). Under ASP/SSP the
// server re-averages from the latest contribution of each worker as results
// arrive — asynchronous consensus ADMM. fstar is the reference optimum of
// the global least-squares problem.
func ADMM(ac *core.Context, d *dataset.Dataset, p ADMMParams, fstar float64) (*Result, error) {
	if err := p.defaults(); err != nil {
		return nil, err
	}
	cols := d.NumCols()
	z := la.NewVec(cols)
	rec := NewRecorder(p.Snapshot)
	rec.Notify(p.OnProgress)
	rec.Force(0, z)
	// latest contribution per worker: sum of (x_i+u_i) over its partitions
	// plus how many partitions it covered
	type contrib struct {
		sum la.Vec
		n   int
	}
	latest := map[int]contrib{}
	algo := "ADMM-async"
	if isBSPBarrier(ac, p.Barrier) {
		algo = "ADMM"
	}
	for round := int64(0); round < int64(p.Rounds); round++ {
		zBr := ac.ASYNCbroadcast("admm.z", z.Clone())
		sel, err := ac.ASYNCbarrier(p.Barrier, p.Filter)
		if err != nil {
			return nil, fmt.Errorf("opt: ADMM round %d: %w", round, err)
		}
		n, err := ac.ASYNCreduce(sel, admmKernel(zBr, p.Rho, p.CGTol, p.CGIters))
		if err != nil {
			return nil, err
		}
		collected := 0
		for first := true; (first || ac.HasNext()) && collected < n; first = false {
			tr, err := ac.ASYNCcollectAll()
			if err != nil {
				break
			}
			part, ok := tr.Payload.(ADMMPartial)
			if !ok {
				return nil, fmt.Errorf("opt: ADMM payload %T", tr.Payload)
			}
			// copy into the worker's persistent contribution buffer and
			// recycle the pooled payload (latest outlives the round)
			c := latest[tr.Attrs.Worker]
			if len(c.sum) != len(part.XPlusU) {
				c.sum = la.NewVec(len(part.XPlusU))
			}
			c.sum.CopyFrom(part.XPlusU)
			c.n = tr.Attrs.MiniBatch
			latest[tr.Attrs.Worker] = c
			la.PutVec(part.XPlusU)
			collected++
		}
		// z = mean over all known partition contributions
		total := 0
		z.Zero()
		for _, c := range latest {
			la.Axpy(1, c.sum, z)
			total += c.n
		}
		if total == 0 {
			continue
		}
		la.Scale(1/float64(total), z)
		upd := ac.AdvanceClock()
		rec.Maybe(upd, z)
	}
	rec.Finish(ac.Updates(), z)
	drain(ac, 5*time.Second)
	res := &Result{W: z}
	res.Trace = newTrace(ac, algo, d, rec, LeastSquares{}, fstar)
	return res, nil
}

// isBSPBarrier distinguishes the trace label only; behaviour comes from the
// predicate itself.
func isBSPBarrier(ac *core.Context, f core.BarrierFunc) bool {
	if f == nil {
		return false
	}
	st := ac.STAT()
	if st.AliveWorkers == 0 {
		return false
	}
	// probe: BSP-like predicates are false whenever any worker is busy
	probe := st
	probe.AvailableWorkers = st.AliveWorkers - 1
	return f(st) && !f(probe)
}
