package opt

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/la"
)

// numGrad approximates ∇ℓ by central differences.
func numGrad(loss Loss, x la.SparseVec, y float64, w la.Vec) la.Vec {
	const h = 1e-6
	g := la.NewVec(len(w))
	for j := range w {
		wp := w.Clone()
		wm := w.Clone()
		wp[j] += h
		wm[j] -= h
		g[j] = (loss.Value(x, y, wp) - loss.Value(x, y, wm)) / (2 * h)
	}
	return g
}

func gradCheck(t *testing.T, loss Loss) {
	t.Helper()
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(6)
		w := la.NewVec(n)
		for j := range w {
			w[j] = rng.NormFloat64()
		}
		m := map[int32]float64{}
		for j := 0; j < n; j++ {
			if rng.Float64() < 0.7 {
				m[int32(j)] = rng.NormFloat64()
			}
		}
		x := la.SparseFromMap(n, m)
		y := float64(1 - 2*rng.Intn(2)) // ±1
		got := la.NewVec(n)
		loss.AddGrad(x, y, w, got)
		want := numGrad(loss, x, y, w)
		for j := range got {
			if math.Abs(got[j]-want[j]) > 1e-4*(math.Abs(want[j])+1) {
				t.Fatalf("%s: grad[%d] = %v, finite diff %v (trial %d)", loss.Name(), j, got[j], want[j], trial)
			}
		}
	}
}

func TestLeastSquaresGradient(t *testing.T) { gradCheck(t, LeastSquares{}) }
func TestLogisticGradient(t *testing.T)     { gradCheck(t, Logistic{}) }
func TestRidgeGradient(t *testing.T)        { gradCheck(t, Ridge{Inner: LeastSquares{}, Lambda: 0.3}) }

func TestLogisticValueStable(t *testing.T) {
	x, _ := la.NewSparseVec(1, []int32{0}, []float64{1})
	big := la.Vec{500}
	if v := (Logistic{}).Value(x, 1, big); v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
		t.Fatalf("logistic value at large margin = %v", v)
	}
	if v := (Logistic{}).Value(x, -1, big); math.IsNaN(v) || math.IsInf(v, 0) {
		t.Fatalf("logistic value at large negative margin = %v", v)
	}
}

func TestObjectiveAtPlantedOptimum(t *testing.T) {
	// noiseless planted problem: objective at wTrue is ~0, and the
	// reference optimum matches
	d, err := dataset.Generate(dataset.SynthConfig{
		Name: "t", Rows: 80, Cols: 6, NNZPerRow: 6, Noise: 0, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	w, fstar, err := ReferenceOptimum(d)
	if err != nil {
		t.Fatal(err)
	}
	if fstar > 1e-10 {
		t.Fatalf("fstar = %v for noiseless planted problem", fstar)
	}
	if len(w) != 6 {
		t.Fatalf("w dims %d", len(w))
	}
	// any perturbation must not be better
	w2 := w.Clone()
	w2[0] += 0.5
	if Objective(d, LeastSquares{}, w2) < fstar {
		t.Fatal("perturbed point beats the optimum")
	}
}

func TestReferenceOptimumIsMinimizer(t *testing.T) {
	d, err := dataset.Generate(dataset.SynthConfig{
		Name: "t", Rows: 100, Cols: 8, NNZPerRow: 4, Noise: 0.5, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	wstar, fstar, err := ReferenceOptimum(d)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 20; trial++ {
		w := wstar.Clone()
		for j := range w {
			w[j] += 0.1 * rng.NormFloat64()
		}
		if Objective(d, LeastSquares{}, w) < fstar-1e-9 {
			t.Fatalf("found better point than reference optimum (trial %d)", trial)
		}
	}
}

func TestObjectiveEmpty(t *testing.T) {
	d := &dataset.Dataset{Name: "e", X: la.NewCSR(0, 3, 0), Y: la.Vec{}}
	if got := Objective(d, LeastSquares{}, la.Vec{0, 0, 0}); got != 0 {
		t.Fatalf("empty objective = %v", got)
	}
}

func TestSchedules(t *testing.T) {
	if a := (Constant{A: 0.5}).Alpha(100); a != 0.5 {
		t.Fatalf("constant = %v", a)
	}
	s := InvSqrt{A: 1}
	if a := s.Alpha(0); a != 1 {
		t.Fatalf("invsqrt(0) = %v", a)
	}
	if a := s.Alpha(3); math.Abs(a-0.5) > 1e-12 {
		t.Fatalf("invsqrt(3) = %v, want 0.5", a)
	}
	p := Polynomial{A: 6, B: 2, C: 1}
	if a := p.Alpha(0); a != 3 {
		t.Fatalf("poly(0) = %v", a)
	}
	if a := p.Alpha(4); a != 1 {
		t.Fatalf("poly(4) = %v", a)
	}
	sc := Scaled{Base: Constant{A: 1}, Factor: 8}
	if a := sc.Alpha(0); a != 0.125 {
		t.Fatalf("scaled = %v", a)
	}
	for _, sch := range []Schedule{Constant{A: 1}, s, p, sc} {
		if sch.Name() == "" {
			t.Fatal("schedule without a name")
		}
	}
}

func TestStalenessAdapt(t *testing.T) {
	if a := StalenessAdapt(1.0, 0); a != 1.0 {
		t.Fatalf("staleness 0: %v", a)
	}
	if a := StalenessAdapt(1.0, 1); a != 1.0 {
		t.Fatalf("staleness 1: %v", a)
	}
	if a := StalenessAdapt(1.0, 4); a != 0.25 {
		t.Fatalf("staleness 4: %v", a)
	}
}

func TestAsyncDecayMatchesSyncPerRound(t *testing.T) {
	// after j = P·k async updates, the async step must equal the sync step
	// at round k divided by P
	syncS := InvSqrt{A: 1}
	asyncS := AsyncDecay{A: 1, Workers: 8}
	for _, k := range []int64{0, 1, 4, 25, 100} {
		want := syncS.Alpha(k) / 8
		got := asyncS.Alpha(8 * k)
		if math.Abs(got-want) > 0.15*want {
			t.Fatalf("k=%d: async %v vs sync/P %v", k, got, want)
		}
	}
}

func TestScheduleDecayMonotone(t *testing.T) {
	for _, sch := range []Schedule{InvSqrt{A: 1}, Polynomial{A: 1, B: 1, C: 0.5}, AsyncDecay{A: 1, Workers: 4}} {
		prev := math.Inf(1)
		for k := int64(0); k < 50; k++ {
			a := sch.Alpha(k)
			if a > prev {
				t.Fatalf("%s not monotone at k=%d", sch.Name(), k)
			}
			if a <= 0 {
				t.Fatalf("%s non-positive at k=%d", sch.Name(), k)
			}
			prev = a
		}
	}
}
