package opt

import (
	"testing"
	"time"

	"repro/internal/core"
)

// TestASGDSurvivesWorkerDeath kills a worker mid-run: ASGD must keep
// converging on the survivors (the dead worker's in-flight gradient is
// simply lost, which asynchronous SGD tolerates by design).
func TestASGDSurvivesWorkerDeath(t *testing.T) {
	r := newRig(t, 4, 8, nil)
	done := make(chan struct{})
	go func() {
		defer close(done)
		time.Sleep(5 * time.Millisecond)
		r.ac.RDD().Cluster().Kill(2)
	}()
	res, err := ASGD(r.ac, r.d, Params{
		Step: Scaled{Base: InvSqrt{A: 0.08}, Factor: 4}, SampleFrac: 0.4,
		Updates: 600, SnapshotEvery: 150,
	}, r.fstar)
	<-done
	if err != nil {
		t.Fatal(err)
	}
	r.assertConverged(t, res, 3)
	// the dead worker must leave the STAT table's alive set once the
	// liveness sweeper (50ms period) observes the death
	deadline := time.Now().Add(3 * time.Second)
	for r.ac.STAT().AliveWorkers != 3 {
		if time.Now().After(deadline) {
			t.Fatalf("alive workers = %d, want 3", r.ac.STAT().AliveWorkers)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestSyncSGDSurvivesWorkerDeath: the BSP barrier compares available
// against *alive* workers, so synchronous rounds continue with the
// survivors after a crash.
func TestSyncSGDSurvivesWorkerDeath(t *testing.T) {
	r := newRig(t, 4, 8, nil)
	go func() {
		time.Sleep(5 * time.Millisecond)
		r.ac.RDD().Cluster().Kill(1)
	}()
	res, err := SyncSGD(r.ac, r.d, Params{
		Step: InvSqrt{A: 0.08}, SampleFrac: 0.4, Updates: 80, SnapshotEvery: 20,
	}, r.fstar)
	if err != nil {
		t.Fatal(err)
	}
	r.assertConverged(t, res, 3)
}

// TestASAGASurvivesWorkerDeath: ASAGA loses the dead worker's history shard
// (its partitions' recorded versions) but the algorithm continues and
// converges on the survivors.
func TestASAGASurvivesWorkerDeath(t *testing.T) {
	r := newRig(t, 4, 8, nil)
	go func() {
		time.Sleep(5 * time.Millisecond)
		r.ac.RDD().Cluster().Kill(3)
	}()
	res, err := ASAGA(r.ac, r.d, Params{
		Step: Constant{A: 0.05 / 4}, SampleFrac: 0.3, Updates: 400, SnapshotEvery: 100,
	}, r.fstar)
	if err != nil {
		t.Fatal(err)
	}
	r.assertConverged(t, res, 3)
}

// TestASGDAllWorkersDeadFails: when every worker dies the driver must
// surface an error rather than hang.
func TestASGDAllWorkersDeadFails(t *testing.T) {
	r := newRig(t, 2, 4, nil)
	r.ac.BarrierTimeout = 500 * time.Millisecond
	go func() {
		time.Sleep(3 * time.Millisecond)
		r.ac.RDD().Cluster().Kill(0)
		r.ac.RDD().Cluster().Kill(1)
	}()
	_, err := ASGD(r.ac, r.d, Params{
		Step: Constant{A: 0.01}, SampleFrac: 0.4, Updates: 100000, SnapshotEvery: 1000,
	}, r.fstar)
	if err == nil {
		t.Fatal("run with zero workers succeeded")
	}
	if _, ok := err.(interface{ Error() string }); !ok {
		t.Fatal("non-error error")
	}
	_ = core.ErrNoWorkers
}
