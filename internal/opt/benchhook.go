package opt

import "repro/internal/la"

// ProxSettleBench builds a cols-dimension elastic-net lazy applier and
// returns a step function that applies one nnz-coordinate sparse delta and
// then settles the full model — the O(d) sweep a snapshot, broadcast or
// finish pays on the sparse prox path. The bench suite times it; production
// code has no use for it.
func ProxSettleBench(cols, nnz int) func() {
	p := Params{Loss: Composite{Inner: LeastSquares{}, L2: 0.01, L1: 0.001}}
	a := newProxApplier(&p, cols)
	w := la.NewVec(cols)
	for j := range w {
		w[j] = float64(j%9) - 4
	}
	g := &la.DeltaVec{N: cols}
	stride := cols / nnz
	if stride < 1 {
		stride = 1
	}
	for j := 0; j < cols; j += stride {
		g.Idx = append(g.Idx, int32(j))
		g.Val = append(g.Val, 0.01)
	}
	return func() {
		a.applySparse(w, g, 0.01, len(g.Idx))
		a.settle(w)
	}
}
