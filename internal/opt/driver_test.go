package opt

import (
	"math/rand"
	"testing"

	"repro/internal/la"
)

// randomDelta builds a sorted sparse delta over dim coordinates.
func randomDelta(rng *rand.Rand, dim, nnz int) *la.DeltaVec {
	seen := map[int32]bool{}
	d := &la.DeltaVec{N: dim}
	for len(d.Idx) < nnz {
		j := int32(rng.Intn(dim))
		if seen[j] {
			continue
		}
		seen[j] = true
		d.Idx = append(d.Idx, j)
	}
	// MergeFrom requires sorted indices
	for i := 1; i < len(d.Idx); i++ {
		for k := i; k > 0 && d.Idx[k] < d.Idx[k-1]; k-- {
			d.Idx[k], d.Idx[k-1] = d.Idx[k-1], d.Idx[k]
		}
	}
	d.Val = make([]float64, nnz)
	for i := range d.Val {
		d.Val[i] = rng.NormFloat64()
	}
	return d
}

// TestRoundAccumDenseEquivalence: merging sparse partials through the
// accumulator matches densifying each partial into a dense sum.
func TestRoundAccumDenseEquivalence(t *testing.T) {
	const dim = 300
	rng := rand.New(rand.NewSource(7))
	acc := newRoundAccum(dim)
	want := la.NewVec(dim)
	for i := 0; i < 12; i++ {
		d := randomDelta(rng, dim, 20+rng.Intn(40))
		d.AxpyDense(1, want)
		acc.AddSparse(d.Clone()) // AddSparse recycles its argument
		la.PutDelta(d)
	}
	if acc.Dense() != nil {
		t.Fatal("sparse-only round grew a dense part")
	}
	got := la.NewVec(dim)
	acc.Sparse().AxpyDense(1, got)
	if !la.Equal(got, want, 0) {
		t.Fatal("merged sparse round != densified sum")
	}
	// mixed round: a dense partial forces Densify, which must fold the
	// sparse part in exactly once
	dense := la.GetVec(dim)
	for j := range dense {
		dense[j] = float64(j % 5)
		want[j] += dense[j]
	}
	acc.AddDense(dense)
	if !la.Equal(acc.Densify(), want, 0) {
		t.Fatal("mixed-round Densify != densified sum")
	}
	acc.Reset()
	if !acc.Empty() {
		t.Fatal("Reset left the accumulator non-empty")
	}
}

// TestRoundAccumAllocFree pins the satellite contract: once capacities have
// grown, absorbing sparse partials into a round allocates nothing — the
// merge runs in place over the persistent union buffer.
func TestRoundAccumAllocFree(t *testing.T) {
	const dim = 2000
	rng := rand.New(rand.NewSource(9))
	acc := newRoundAccum(dim)
	// fixed templates; the measured region only copies them into pooled
	// partials, exactly how task payloads arrive in production
	tplA := randomDelta(rng, dim, 64)
	tplB := randomDelta(rng, dim, 64)
	mk := func(tpl *la.DeltaVec) *la.DeltaVec {
		p := la.GetDelta(len(tpl.Idx), dim)
		copy(p.Idx, tpl.Idx)
		copy(p.Val, tpl.Val)
		return p
	}
	// warm: grow the union buffer and the delta pool to steady state
	for i := 0; i < 8; i++ {
		acc.AddSparse(mk(tplA))
		acc.AddSparse(mk(tplB))
		acc.Reset()
	}
	allocs := testing.AllocsPerRun(32, func() {
		acc.AddSparse(mk(tplA))
		acc.AddSparse(mk(tplB))
		acc.Reset()
	})
	// mk draws from the warmed delta pool; the merge must not allocate
	// either
	if allocs != 0 {
		t.Errorf("sparse round merge allocates %v per round, want 0", allocs)
	}
}

// TestSyncSGDSparseMatchesDense extends the PR 4 path-equivalence guarantee
// to the BSP round driver: sparse partials merged via MergeFrom produce the
// same model as the dense path on a fixed seed (bitwise — pure-sparse
// rounds apply the averaged step over the merged support only).
func TestSyncSGDSparseMatchesDense(t *testing.T) {
	p := Params{Step: InvSqrt{A: 0.1}, SampleFrac: 0.3, Updates: 40, SnapshotEvery: 20}
	run := func() la.Vec {
		ac, d := newSparseRig(t, 1, 2, sparseCfg())
		res, err := SyncSGD(ac, d, p, 0)
		if err != nil {
			t.Fatal(err)
		}
		return res.W
	}
	wSparse := run()
	forceDense(t)
	wDense := run()
	if !la.Equal(wSparse, wDense, 0) {
		t.Fatal("sparse and dense SyncSGD round paths diverged on a fixed seed")
	}
}

// TestSAGASparseRoundMatchesDense does the same for BSP SAGA: an all-sparse
// round now applies one merged O(nnz) update with lazy avgHist drift, and
// must settle to the dense round arithmetic (to rounding — the deferred
// drift telescopes).
func TestSAGASparseRoundMatchesDense(t *testing.T) {
	p := Params{Step: Constant{A: 0.02}, SampleFrac: 0.25, Updates: 40, SnapshotEvery: 20}
	run := func() la.Vec {
		ac, d := newSparseRig(t, 1, 2, sparseCfg())
		res, err := SAGA(ac, d, p, 0)
		if err != nil {
			t.Fatal(err)
		}
		return res.W
	}
	wSparse := run()
	forceDense(t)
	wDense := run()
	if !la.Equal(wSparse, wDense, 1e-9) {
		t.Fatal("sparse and dense SAGA round paths diverged on a fixed seed")
	}
}
