package opt

import (
	"encoding/gob"
	"fmt"
	"sort"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/la"
)

// Top-k gradient sparsification: workers ship only the k largest-magnitude
// gradient coordinates per partial. A common communication-efficiency
// technique in asynchronous parameter-server systems; here it is an
// extension showing the engine is payload-agnostic — the driver just
// applies sparse updates.

// TopK returns the sparse vector keeping the k largest-|value| entries of g.
func TopK(g la.Vec, k int) la.SparseVec {
	if k <= 0 {
		return la.SparseVec{N: len(g)}
	}
	if k >= len(g) {
		return la.SparseFromDense(g)
	}
	type kv struct {
		j int32
		v float64
	}
	entries := make([]kv, 0, len(g))
	for j, v := range g {
		if v != 0 {
			entries = append(entries, kv{int32(j), v})
		}
	}
	if len(entries) > k {
		sort.Slice(entries, func(a, b int) bool {
			av, bv := entries[a].v, entries[b].v
			if av < 0 {
				av = -av
			}
			if bv < 0 {
				bv = -bv
			}
			return av > bv
		})
		entries = entries[:k]
	}
	sort.Slice(entries, func(a, b int) bool { return entries[a].j < entries[b].j })
	idx := make([]int32, len(entries))
	val := make([]float64, len(entries))
	for i, e := range entries {
		idx[i] = e.j
		val[i] = e.v
	}
	return la.SparseVec{Idx: idx, Val: val, N: len(g)}
}

func init() {
	gob.Register(la.SparseVec{})
}

// SparseGradKernel is GradKernel with top-k sparsification of the locally
// reduced gradient before submission. It always runs the dense sweep —
// top-k selection needs the complete local gradient (including any L2
// term a regularized loss folds in per sample), so the adaptive
// sparse-delta path of GradKernel does not apply here; the payload that
// crosses the wire is sparse regardless.
func SparseGradKernel(loss Loss, wBr core.DynBroadcast, frac float64, k int) core.Kernel {
	return func(env *cluster.Env, parts []int, seed int64) (any, int, error) {
		wv, err := wBr.Value(env)
		if err != nil {
			return nil, 0, err
		}
		w, err := asVec(wv)
		if err != nil {
			return nil, 0, err
		}
		g := la.GetVec(len(w))
		rng := env.Scratch().Rand(seed)
		n := 0
		for _, pi := range parts {
			p, err := env.Partition(pi)
			if err != nil {
				la.PutVec(g)
				return nil, 0, err
			}
			n += gradSweep(loss, p, rng, frac, w, g)
		}
		if n == 0 {
			la.PutVec(g)
			return nil, 0, nil
		}
		sv := TopK(g, k)
		la.PutVec(g) // TopK copies; the accumulator goes back to the pool
		return sv, n, nil
	}
}

// SparseASGD is ASGD with top-k sparsified partials: identical driver loop,
// but each collected payload is a sparse vector carrying only k = ⌈topKFrac
// × cols⌉ coordinates. Returns the run result plus the number of gradient
// coordinates actually shipped (for communication accounting).
func SparseASGD(ac *core.Context, d *dataset.Dataset, p Params, topKFrac float64, fstar float64) (*Result, int64, error) {
	if err := p.defaults(); err != nil {
		return nil, 0, err
	}
	if topKFrac <= 0 || topKFrac > 1 {
		return nil, 0, fmt.Errorf("opt: top-k fraction %v outside (0,1]", topKFrac)
	}
	cols := d.NumCols()
	k := int(topKFrac * float64(cols))
	if k < 1 {
		k = 1
	}
	w, err := p.initModel(cols)
	if err != nil {
		return nil, 0, err
	}
	rec := p.recorder()
	rec.Force(0, w)
	updates := int64(0)
	var coordsShipped int64
	keep := 4 * ac.RDD().Cluster().NumWorkers()
	for updates < int64(p.Updates) {
		wBr := ac.ASYNCbroadcast("sgd.w", w.Clone())
		ac.RDD().PruneBroadcast("sgd.w", keep)
		sel, err := ac.ASYNCbarrier(p.Barrier, p.Filter)
		if err != nil {
			return nil, coordsShipped, fmt.Errorf("opt: SparseASGD after %d updates: %w", updates, err)
		}
		if _, err := ac.ASYNCreduce(sel, SparseGradKernel(p.Loss, wBr, p.SampleFrac, k)); err != nil {
			return nil, coordsShipped, err
		}
		for first := true; (first || ac.HasNext()) && updates < int64(p.Updates); first = false {
			tr, err := ac.ASYNCcollectAll()
			if err != nil {
				break
			}
			g, ok := tr.Payload.(la.SparseVec)
			if !ok {
				return nil, coordsShipped, fmt.Errorf("opt: SparseASGD payload %T", tr.Payload)
			}
			coordsShipped += int64(g.NNZ())
			alpha := p.Step.Alpha(updates)
			if p.StalenessLR {
				alpha = StalenessAdapt(alpha, tr.Attrs.Staleness)
			}
			g.AxpyDense(-alpha/float64(tr.Attrs.MiniBatch), w)
			updates = ac.AdvanceClock()
			rec.Maybe(updates, w)
		}
	}
	rec.Finish(updates, w)
	drain(ac, 5*time.Second)
	return &Result{Trace: newTrace(ac, "ASGD-topk", d, rec, p.Loss, fstar), W: w}, coordsShipped, nil
}
