package opt

import (
	"encoding/gob"
	"fmt"
	"sort"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/la"
)

// Top-k gradient sparsification: workers ship only the k largest-magnitude
// gradient coordinates per partial. A common communication-efficiency
// technique in asynchronous parameter-server systems; here it is an
// extension showing the engine is payload-agnostic — the driver just
// applies sparse updates.

// TopK returns the sparse vector keeping the k largest-|value| entries of g.
func TopK(g la.Vec, k int) la.SparseVec {
	if k <= 0 {
		return la.SparseVec{N: len(g)}
	}
	if k >= len(g) {
		return la.SparseFromDense(g)
	}
	type kv struct {
		j int32
		v float64
	}
	entries := make([]kv, 0, len(g))
	for j, v := range g {
		if v != 0 {
			entries = append(entries, kv{int32(j), v})
		}
	}
	if len(entries) > k {
		sort.Slice(entries, func(a, b int) bool {
			av, bv := entries[a].v, entries[b].v
			if av < 0 {
				av = -av
			}
			if bv < 0 {
				bv = -bv
			}
			return av > bv
		})
		entries = entries[:k]
	}
	sort.Slice(entries, func(a, b int) bool { return entries[a].j < entries[b].j })
	idx := make([]int32, len(entries))
	val := make([]float64, len(entries))
	for i, e := range entries {
		idx[i] = e.j
		val[i] = e.v
	}
	return la.SparseVec{Idx: idx, Val: val, N: len(g)}
}

func init() {
	gob.Register(la.SparseVec{})
}

// SparseGradKernel is GradKernel with top-k sparsification of the locally
// reduced gradient before submission. It always runs the dense sweep —
// top-k selection needs the complete local gradient (including any L2
// term a regularized loss folds in per sample), so the adaptive
// sparse-delta path of GradKernel does not apply here; the payload that
// crosses the wire is sparse regardless.
func SparseGradKernel(loss Loss, wBr core.DynBroadcast, frac float64, k int) core.Kernel {
	return func(env *cluster.Env, parts []int, seed int64) (any, int, error) {
		wv, err := wBr.Value(env)
		if err != nil {
			return nil, 0, err
		}
		w, err := asVec(wv)
		if err != nil {
			return nil, 0, err
		}
		g := la.GetVec(len(w))
		rng := env.Scratch().Rand(seed)
		n := 0
		for _, pi := range parts {
			p, err := env.Partition(pi)
			if err != nil {
				la.PutVec(g)
				return nil, 0, err
			}
			n += gradSweep(loss, p, rng, frac, w, g)
		}
		if n == 0 {
			la.PutVec(g)
			return nil, 0, nil
		}
		sv := TopK(g, k)
		la.PutVec(g) // TopK copies; the accumulator goes back to the pool
		return sv, n, nil
	}
}

// topkUpdater applies top-k sparsified partials and accounts the shipped
// coordinates. The count is driver state like any other: it rides the
// checkpoint so a preempted-then-resumed run reports the full run's
// communication cost, not just the post-resume segment.
type topkUpdater struct {
	vecUpdater
	coords int64
}

func (u *topkUpdater) Export(cp *Checkpoint) { cp.SetInt("coords", u.coords) }

func (u *topkUpdater) Import(cp *Checkpoint) error {
	if err := u.vecUpdater.Import(cp); err != nil {
		return err
	}
	u.coords = cp.Int("coords")
	return nil
}

func (u *topkUpdater) Apply(payload any, attrs *core.Attrs, alpha float64) error {
	g, ok := payload.(la.SparseVec)
	if !ok {
		return fmt.Errorf("unexpected payload %T", payload)
	}
	u.coords += int64(g.NNZ())
	g.AxpyDense(-alpha/float64(attrs.MiniBatch), u.w)
	return nil
}

// SparseASGD is ASGD with top-k sparsified partials: identical driver loop,
// but each collected payload is a sparse vector carrying only k = ⌈topKFrac
// × cols⌉ coordinates. Returns the run result plus the number of gradient
// coordinates actually shipped (for communication accounting).
func SparseASGD(ac *core.Context, d *dataset.Dataset, p Params, topKFrac float64, fstar float64) (*Result, int64, error) {
	if err := p.defaults(); err != nil {
		return nil, 0, err
	}
	if err := rejectL1(p.Loss, "sparse-asgd"); err != nil {
		return nil, 0, err
	}
	if topKFrac <= 0 || topKFrac > 1 {
		return nil, 0, fmt.Errorf("opt: top-k fraction %v outside (0,1]", topKFrac)
	}
	cols := d.NumCols()
	k := int(topKFrac * float64(cols))
	if k < 1 {
		k = 1
	}
	w, err := p.initModel(cols)
	if err != nil {
		return nil, 0, err
	}
	u := &topkUpdater{vecUpdater: vecUpdater{w: w}}
	res, err := runLoop(ac, d, u, &loopSpec{
		Algo: "ASGD-topk", Name: "sparse-asgd", Key: "sgd.w",
		P: &p, Loss: p.Loss, FStar: fstar,
		Target: int64(p.Updates), Publish: pubPlain, Prune: true,
		Dispatch: func(wBr core.DynBroadcast, sel *core.Selection) (int, error) {
			return ac.ASYNCreduce(sel, SparseGradKernel(p.Loss, wBr, p.SampleFrac, k))
		},
	})
	return res, u.coords, err
}
