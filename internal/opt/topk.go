package opt

import (
	"encoding/gob"
	"fmt"
	"sync"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/la"
)

// Top-k gradient sparsification: workers ship only the k largest-magnitude
// gradient coordinates per partial. A common communication-efficiency
// technique in asynchronous parameter-server systems; here it is an
// extension showing the engine is payload-agnostic — the driver just
// applies sparse updates.

// topkScratch pools the (index, value) working pair TopK selects over, so a
// steady-state kernel pays only the two result-slice allocations per call.
var topkScratch = sync.Pool{New: func() any { return new(tkScratch) }}

type tkScratch struct {
	idx []int32
	val []float64
}

// TopK returns the sparse vector keeping the k largest-|value| entries of g.
// Selection is quickselect over a pooled scratch pair — O(d + k·log k)
// rather than the O(d·log d) full sort it replaces — and the returned
// SparseVec owns freshly copied slices.
func TopK(g la.Vec, k int) la.SparseVec {
	if k <= 0 {
		return la.SparseVec{N: len(g)}
	}
	if k >= len(g) {
		return la.SparseFromDense(g)
	}
	sc := topkScratch.Get().(*tkScratch)
	idx, val := sc.idx[:0], sc.val[:0]
	for j, v := range g {
		if v != 0 {
			idx = append(idx, int32(j))
			val = append(val, v)
		}
	}
	cut := la.TopAbs(idx, val, k)
	idx, val = idx[:cut], val[:cut]
	la.SortPairsByIdx(idx, val)
	sv := la.SparseVec{
		Idx: append([]int32(nil), idx...),
		Val: append([]float64(nil), val...),
		N:   len(g),
	}
	sc.idx, sc.val = idx[:0], val[:0]
	topkScratch.Put(sc)
	return sv
}

func init() {
	gob.Register(la.SparseVec{})
}

// SparseGradKernel is GradKernel with top-k sparsification of the locally
// reduced gradient before submission. It always runs the dense sweep —
// top-k selection needs the complete local gradient (including any L2
// term a regularized loss folds in per sample), so the adaptive
// sparse-delta path of GradKernel does not apply here; the payload that
// crosses the wire is sparse regardless.
func SparseGradKernel(loss Loss, wBr core.DynBroadcast, frac float64, k int) core.Kernel {
	return func(env *cluster.Env, parts []int, seed int64) (any, int, error) {
		wv, err := wBr.Value(env)
		if err != nil {
			return nil, 0, err
		}
		w, err := asVec(wv)
		if err != nil {
			return nil, 0, err
		}
		g := la.GetVec(len(w))
		rng := env.Scratch().Rand(seed)
		n := 0
		for _, pi := range parts {
			p, err := env.Partition(pi)
			if err != nil {
				la.PutVec(g)
				return nil, 0, err
			}
			n += gradSweep(loss, p, rng, frac, w, g)
		}
		if n == 0 {
			la.PutVec(g)
			return nil, 0, nil
		}
		sv := TopK(g, k)
		la.PutVec(g) // TopK copies; the accumulator goes back to the pool
		return sv, n, nil
	}
}

// topkUpdater applies top-k sparsified partials and accounts the shipped
// coordinates. The count is driver state like any other: it rides the
// checkpoint so a preempted-then-resumed run reports the full run's
// communication cost, not just the post-resume segment.
type topkUpdater struct {
	vecUpdater
	coords int64
}

func (u *topkUpdater) Export(cp *Checkpoint) { cp.SetInt("coords", u.coords) }

func (u *topkUpdater) Import(cp *Checkpoint) error {
	if err := u.vecUpdater.Import(cp); err != nil {
		return err
	}
	u.coords = cp.Int("coords")
	return nil
}

func (u *topkUpdater) Apply(payload any, attrs *core.Attrs, alpha float64) error {
	g, ok := payload.(la.SparseVec)
	if !ok {
		return fmt.Errorf("unexpected payload %T", payload)
	}
	u.coords += int64(g.NNZ())
	g.AxpyDense(-alpha/float64(attrs.MiniBatch), u.w)
	return nil
}

// SparseASGD is ASGD with top-k sparsified partials: identical driver loop,
// but each collected payload is a sparse vector carrying only k = ⌈topKFrac
// × cols⌉ coordinates. Returns the run result plus the number of gradient
// coordinates actually shipped (for communication accounting).
func SparseASGD(ac *core.Context, d *dataset.Dataset, p Params, topKFrac float64, fstar float64) (*Result, int64, error) {
	if err := p.defaults(); err != nil {
		return nil, 0, err
	}
	if err := rejectL1(p.Loss, "sparse-asgd"); err != nil {
		return nil, 0, err
	}
	if topKFrac <= 0 || topKFrac > 1 {
		return nil, 0, fmt.Errorf("opt: top-k fraction %v outside (0,1]", topKFrac)
	}
	cols := d.NumCols()
	k := int(topKFrac * float64(cols))
	if k < 1 {
		k = 1
	}
	w, err := p.initModel(cols)
	if err != nil {
		return nil, 0, err
	}
	u := &topkUpdater{vecUpdater: vecUpdater{w: w}}
	res, err := runLoop(ac, d, u, &loopSpec{
		Algo: "ASGD-topk", Name: "sparse-asgd", Key: "sgd.w",
		P: &p, Loss: p.Loss, FStar: fstar,
		Target: int64(p.Updates), Publish: pubPlain, Prune: true,
		Dispatch: func(wBr core.DynBroadcast, sel *core.Selection) (int, error) {
			return ac.ASYNCreduce(sel, SparseGradKernel(p.Loss, wBr, p.SampleFrac, k))
		},
	})
	return res, u.coords, err
}
