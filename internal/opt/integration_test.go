package opt

import (
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/rdd"
	"repro/internal/straggler"
)

// TestSoakCrashAndElasticReplace is the end-to-end resilience scenario: a
// long ASGD run under production-cluster stragglers, during which one
// worker crashes, a replacement joins, and the dead worker's partitions are
// rebalanced onto it. The run must finish and converge, and the replacement
// must have done real work.
func TestSoakCrashAndElasticReplace(t *testing.T) {
	// the task floor stretches the run well past the coordinator's 50ms
	// liveness sweep, so the mid-run join is always discovered with plenty
	// of work left for the replacement
	c, err := cluster.NewLocal(cluster.Config{
		NumWorkers:  6,
		Delay:       mustPCS(t, 6),
		Seed:        77,
		MinTaskTime: 500 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Shutdown)
	d, err := dataset.Generate(dataset.SynthConfig{
		Name: "soak", Rows: 240, Cols: 10, NNZPerRow: 5, Noise: 0.05, Seed: 23,
	})
	if err != nil {
		t.Fatal(err)
	}
	rctx := rdd.NewContext(c)
	if _, err := rctx.Distribute(d, 12); err != nil {
		t.Fatal(err)
	}
	ac := core.New(rctx)
	t.Cleanup(ac.Close)
	_, fstar, err := ReferenceOptimum(d)
	if err != nil {
		t.Fatal(err)
	}

	// choreograph the failure while the optimization runs
	const victim = 1
	go func() {
		time.Sleep(10 * time.Millisecond)
		c.Kill(victim)
		// replacement joins with no straggler handicap
		id := c.AddLocalWorker(straggler.None{}, 999)
		// rebalance the victim's partitions onto the replacement
		for _, part := range rctx.PartitionsOn(victim) {
			if err := rctx.MovePartition(part, id); err != nil {
				t.Errorf("move partition %d: %v", part, err)
				return
			}
		}
	}()

	res, err := ASGD(ac, d, Params{
		Step: Scaled{Base: InvSqrt{A: 0.06}, Factor: 6}, SampleFrac: 0.3,
		Updates: 2500, SnapshotEvery: 500,
	}, fstar)
	if err != nil {
		t.Fatal(err)
	}
	f0 := Objective(d, LeastSquares{}, make([]float64, d.NumCols()))
	final := Objective(d, LeastSquares{}, res.W) - fstar
	if final > (f0-fstar)/4 {
		t.Fatalf("soak run did not converge: %v → %v", f0-fstar, final)
	}
	// the replacement worker (id 6) must have completed tasks
	st := ac.STAT()
	var replacement *core.WorkerStat
	for i := range st.Workers {
		if st.Workers[i].Worker == 6 {
			replacement = &st.Workers[i]
		}
	}
	if replacement == nil || !replacement.Alive {
		t.Fatalf("replacement worker missing from STAT: %+v", st.Workers)
	}
	if replacement.TasksCompleted == 0 {
		t.Fatal("replacement worker completed no tasks")
	}
	// and the victim must be recorded dead
	if st.AliveWorkers != 6 { // 6 original − 1 dead + 1 replacement
		t.Fatalf("alive workers = %d, want 6", st.AliveWorkers)
	}
}

func mustPCS(t *testing.T, n int) straggler.Model {
	t.Helper()
	m, err := straggler.NewProductionCluster(n, 3)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestLongASAGAStability: long ASAGA runs under a controlled straggler
// must usually stay numerically stable and converge — guards against
// systematic divergence from stale history interactions. A single run's
// outcome is heavy-tailed in the interleaving (stale historical gradients
// occasionally stall a run), so stability is asserted as a supermajority
// over independent runs, plus a strong best-case.
func TestLongASAGAStability(t *testing.T) {
	const runs = 7
	stable := 0
	best := 0.0
	for i := 0; i < runs; i++ {
		r := newRig(t, 4, 8, straggler.ControlledDelay{Worker: 0, Intensity: 1})
		res, err := ASAGA(r.ac, r.d, Params{
			Step: Constant{A: 0.05 / 4}, SampleFrac: 0.3, Updates: 1200, SnapshotEvery: 200,
		}, r.fstar)
		if err != nil {
			t.Fatal(err)
		}
		r.assertTrace(t, res)
		nan := false
		for _, p := range res.Trace.Points {
			if p.Error != p.Error {
				nan = true
				break
			}
		}
		factor := r.reduction(res)
		if factor > best {
			best = factor
		}
		if !nan && factor >= 2 {
			stable++
		}
	}
	if stable < 4 {
		t.Fatalf("only %d of %d long runs stayed stable (NaN-free, >=2x reduction)", stable, runs)
	}
	if best < 8 {
		t.Fatalf("best long run reduced error only %.2fx, want >= 8x", best)
	}
}
