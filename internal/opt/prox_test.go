package opt

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/la"
)

// TestSoftThresholdIdentities exercises the two algebraic identities the
// lazy prox-at-settle path rests on (to rounding: the folded expressions
// reassociate sums and products).
func TestSoftThresholdIdentities(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for i := 0; i < 2000; i++ {
		v := rng.NormFloat64() * 3
		a, b := rng.Float64(), rng.Float64()
		c := rng.Float64() + 0.1
		if got, want := SoftThreshold(SoftThreshold(v, a), b), SoftThreshold(v, a+b); math.Abs(got-want) > 1e-12 {
			t.Fatalf("composition: soft(soft(%v,%v),%v)=%v, soft(v,a+b)=%v", v, a, b, got, want)
		}
		if got, want := c*SoftThreshold(v, a), SoftThreshold(c*v, c*a); math.Abs(got-want) > 1e-12 {
			t.Fatalf("scaling: c·soft(%v,%v)=%v, soft(cv,ca)=%v", v, a, got, want)
		}
	}
	if SoftThreshold(0.5, 1) != 0 || SoftThreshold(-0.5, 1) != 0 {
		t.Fatal("values inside the threshold must map to exact zero")
	}
	if SoftThreshold(2, -1) != 2 {
		t.Fatal("non-positive threshold must be the identity")
	}
}

// TestProxOf resolves the objective → prox mapping.
func TestProxOf(t *testing.T) {
	if !ProxOf(LeastSquares{}).IsIdentity() {
		t.Fatal("smooth loss must carry the identity prox")
	}
	if !ProxOf(Ridge{Inner: LeastSquares{}, Lambda: 0.1}).IsIdentity() {
		t.Fatal("ridge is smooth: identity prox")
	}
	p := ProxOf(Composite{Inner: LeastSquares{}, L1: 0.5})
	if p.IsIdentity() {
		t.Fatal("ℓ1 composite must carry the soft-threshold prox")
	}
	if got := p.Call1(2, 1); got != SoftThreshold(2, 0.5) {
		t.Fatalf("L1Prox.Call1 = %v, want soft(2, 0.5)", got)
	}
}

// elasticNetParams is the shared ASGD configuration of the prox
// path-equivalence runs.
func elasticNetParams(l2, l1 float64) Params {
	return Params{
		Loss: Composite{Inner: LeastSquares{}, L2: l2, L1: l1},
		Step: InvSqrt{A: 0.1}, SampleFrac: 0.3, Updates: 150, SnapshotEvery: 50,
	}
}

// TestSparsePathMatchesDenseElasticNet pins prox-at-settle to the eager
// dense math: on a fixed seed the lazily-settled sparse path must match
// the per-update dense shrink→step→threshold sequence to rounding (the
// deferred products and threshold sums telescope, reassociating the
// floating-point ops — hence 1e-9, not bitwise).
func TestSparsePathMatchesDenseElasticNet(t *testing.T) {
	cases := []struct {
		name   string
		l2, l1 float64
	}{
		{"elastic-net", 0.05, 0.02},
		{"l1-only", 0, 0.02},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := elasticNetParams(tc.l2, tc.l1)
			wSparse := runASGD(t, p)
			wDense := func() la.Vec {
				forceDense(t)
				return runASGD(t, p)
			}()
			if !la.Equal(wSparse, wDense, 1e-9) {
				t.Fatal("sparse prox-at-settle diverged from the eager dense path")
			}
			zeros := 0
			for _, x := range wSparse {
				if x == 0 {
					zeros++
				}
			}
			if zeros == 0 {
				t.Fatal("ℓ1 run produced no exact zeros — prox never fired")
			}
		})
	}
}

// TestProxApplierSettleIdempotent: settling twice is a no-op, and a settle
// mid-stream leaves the same model as settling only at the end.
func TestProxApplierSettleIdempotent(t *testing.T) {
	const cols = 32
	mk := func() (*proxApplier, la.Vec) {
		p := Params{Loss: Composite{Inner: LeastSquares{}, L2: 0.03, L1: 0.01}, Step: Constant{A: 0.1}}
		a := newProxApplier(&p, cols)
		w := la.NewVec(cols)
		for j := range w {
			w[j] = float64(j%5) - 2
		}
		return a, w
	}
	deltas := func(rng *rand.Rand) *la.DeltaVec {
		dv := &la.DeltaVec{N: cols}
		for j := 0; j < cols; j += 1 + rng.Intn(4) {
			dv.Idx = append(dv.Idx, int32(j))
			dv.Val = append(dv.Val, rng.NormFloat64())
		}
		return dv
	}

	a1, w1 := mk()
	a2, w2 := mk()
	rng1 := rand.New(rand.NewSource(9))
	rng2 := rand.New(rand.NewSource(9))
	for i := 0; i < 50; i++ {
		a1.applySparse(w1, deltas(rng1), 0.05, 4)
		a2.applySparse(w2, deltas(rng2), 0.05, 4)
		if i == 25 {
			a2.settle(w2) // mid-stream settle must not change the trajectory
			a2.settle(w2) // idempotent
		}
	}
	a1.settle(w1)
	a2.settle(w2)
	if !la.Equal(w1, w2, 1e-9) {
		t.Fatal("mid-stream settle changed the settled model")
	}
}

// TestRejectL1 pins the capability gate: solvers without a proximal step
// refuse ℓ1 objectives instead of silently optimizing something else.
func TestRejectL1(t *testing.T) {
	enet := Composite{Inner: LeastSquares{}, L2: 0.1, L1: 0.1}
	if err := rejectL1(enet, "saga"); err == nil {
		t.Fatal("ℓ1 objective accepted by a prox-free solver")
	}
	if err := rejectL1(Ridge{Inner: LeastSquares{}, Lambda: 0.1}, "saga"); err != nil {
		t.Fatalf("smooth ridge rejected: %v", err)
	}
	r := newRig(t, 1, 2, nil)
	p := Params{Step: Constant{A: 0.01}, SampleFrac: 0.5, Updates: 4, Loss: enet}
	if _, err := SAGA(r.ac, r.d, p, 0); err == nil {
		t.Fatal("SAGA ran an ℓ1 objective")
	}
	if _, err := ASAGA(r.ac, r.d, p, 0); err == nil {
		t.Fatal("ASAGA ran an ℓ1 objective")
	}
	if _, err := EpochVR(r.ac, r.d, VRParams{Params: p, Epochs: 1, UpdatesPerEpoch: 4}, 0); err == nil {
		t.Fatal("EpochVR ran an ℓ1 objective")
	}
}
