package opt

import (
	"encoding/gob"
	"fmt"
	"math/rand"
	"sort"
	"sync/atomic"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/la"
)

// Proximal (block) coordinate descent on the unified runtime — the CGD
// family of the related work (linlearn's cgd_cycle, Lu & Chen's ℓ1-QP CG),
// generalized to composite elastic-net objectives through the prox seam.
// Each BSP round the driver picks a coordinate block, every worker returns
// the exact block gradient and diagonal curvature over its rows, and the
// driver takes one preconditioned prox step per coordinate:
//
//	w_j ← soft(w_j − τ_j·(g_j + nλ2·w_j), τ_j·nλ1),  τ_j = step/(h_j + nλ2)
//
// (sum units: g_j, h_j are row sums, n the dataset rows) — the
// `prox.call_single` idiom, exact coordinate minimizer at step = 1 for
// least squares.
//
// Incremental inner products: workers keep per-row residuals r_i = x_i·w
// between rounds and the driver broadcasts each round's coordinate delta,
// so a worker advances its residuals via the column index in
// O(nnz of changed columns) and evaluates the block gradient in
// O(nnz of block columns) — never O(n·d). A worker whose residual state is
// missing or stale (cold start, resume, engine reset) rebuilds it from the
// model broadcast in one O(partition nnz) pass and is incremental again
// from the next round.

// CDParams configures CD. The embedded Params supplies the objective, the
// update budget, trace resolution and the checkpoint/preempt/resume hooks;
// Step and SampleFrac are unused (the method is a full-pass coordinate
// solver with its own damping), and the barrier is forced to BSP — the
// block step needs every worker's rows.
type CDParams struct {
	Params
	BlockSize int     // coordinates per block (default min(32, cols))
	Mode      string  // block order: "cyclic" (default), "random", or "greedy"
	DampStep  float64 // damping in (0,1]; 1 = full preconditioned prox step
	Seed      int64   // block RNG seed (random mode)

	// exactBelow forwards to the greedy selector's maxip.Options.ExactBelow
	// (tests pin tree-vs-scan selector equivalence through it; zero is the
	// package default threshold, negative forces the tournament tree).
	exactBelow int
}

func (p *CDParams) defaults(cols int) error {
	if p.Loss == nil {
		p.Loss = LeastSquares{}
	}
	if p.BlockSize <= 0 {
		p.BlockSize = 32
	}
	if p.BlockSize > cols {
		p.BlockSize = cols
	}
	if p.DampStep == 0 {
		p.DampStep = 1
	}
	if p.DampStep < 0 || p.DampStep > 1 {
		return fmt.Errorf("opt: CD step %v outside (0,1]", p.DampStep)
	}
	switch p.Mode {
	case "":
		p.Mode = "cyclic"
	case "cyclic", "random", "greedy":
	default:
		return fmt.Errorf("opt: CD mode %q (cyclic, random, greedy)", p.Mode)
	}
	if p.Updates <= 0 {
		return fmt.Errorf("opt: CD needs positive Updates")
	}
	if p.SnapshotEvery <= 0 {
		p.SnapshotEvery = 10
	}
	if p.CheckpointEvery < 0 {
		return fmt.Errorf("opt: CheckpointEvery %d must be non-negative", p.CheckpointEvery)
	}
	return nil
}

// CDDelta is the round-delta broadcast riding alongside the model: the
// coordinate changes FlushRound applied at the transition Round−1 → Round.
// Workers whose residual stamp matches (RunID, Round−1) advance
// incrementally; anyone else rebuilds from the model broadcast. RunID fences
// runs sharing an engine so one job's residuals can never absorb another
// job's delta.
type CDDelta struct {
	RunID int64
	Round int64
	Delta *la.DeltaVec // nil only before the first flush
}

func init() {
	gob.Register(CDDelta{})
}

// cdRunSeq hands every CD run a process-unique residual fence.
var cdRunSeq atomic.Int64

// cdPartState is one partition's persistent worker-side residual state.
type cdPartState struct {
	cv    *la.ColView // column index of the partition (data-constant)
	r     la.Vec      // r_i = x_i·w at (runID, round)
	runID int64
	round int64
}

// cdState lives in the worker Env's untyped KV store: per-partition column
// indexes and residuals. StoreClear (engine reset) naturally invalidates
// it; the round/run stamps catch every softer staleness.
type cdState struct {
	parts map[int]*cdPartState
}

// cdKernel evaluates the block gradient g_J = Σ_i ℓ'(r_i, y_i)·x_iJ and
// curvature h_J = curv·Σ_i x_iJ² over the worker's rows, maintaining the
// per-row residuals incrementally from the delta broadcast.
func cdKernel(lin LinearLoss, curv float64, wBr, dBr core.DynBroadcast, block []int32) core.Kernel {
	return func(env *cluster.Env, parts []int, seed int64) (any, int, error) {
		dv, err := dBr.Value(env)
		if err != nil {
			return nil, 0, err
		}
		dd, ok := dv.(CDDelta)
		if !ok {
			return nil, 0, fmt.Errorf("opt: cd delta broadcast is %T", dv)
		}
		st := env.StoreGetOrCreate("opt.cd.state", func() any {
			return &cdState{parts: map[int]*cdPartState{}}
		}).(*cdState)
		g := la.GetVec(len(block))
		h := la.GetVec(len(block))
		fail := func(err error) (any, int, error) {
			la.PutVec(g)
			la.PutVec(h)
			return nil, 0, err
		}
		rows := 0
		for _, pi := range parts {
			p, err := env.Partition(pi)
			if err != nil {
				return fail(err)
			}
			ps := st.parts[pi]
			if ps == nil {
				ps = &cdPartState{cv: la.NewColView(p.X), r: la.NewVec(p.NumRows()), runID: -1}
				st.parts[pi] = ps
			}
			switch {
			case ps.runID == dd.RunID && ps.round == dd.Round:
				// already current (idempotent re-dispatch)
			case ps.runID == dd.RunID && ps.round == dd.Round-1 && dd.Delta != nil:
				// incremental: advance residuals by the changed columns only
				ps.cv.ApplyDelta(dd.Delta, ps.r)
				ps.round = dd.Round
			default:
				// cold start, resume, or missed rounds: rebuild from the
				// model broadcast in one O(partition nnz) pass
				wv, err := wBr.Value(env)
				if err != nil {
					return fail(err)
				}
				w, err := asVec(wv)
				if err != nil {
					return fail(err)
				}
				p.X.MatVec(w, ps.r)
				ps.runID, ps.round = dd.RunID, dd.Round
			}
			for k, j := range block {
				colRows, colVals := ps.cv.Col(j)
				var gj, hj float64
				for t, i := range colRows {
					gj += lin.GradCoeff(ps.r[i], p.Y[i]) * colVals[t]
					hj += colVals[t] * colVals[t]
				}
				g[k] += gj
				h[k] += curv * hj
			}
			rows += p.NumRows()
		}
		if rows == 0 {
			return fail(nil)
		}
		return BCDPartial{Block: block, G: g, H: h}, rows, nil
	}
}

// cdUpdater owns the coordinate-descent driver state: the model, the block
// cursor/RNG (dispatch-counted for checkpoint replay, like BCD), the
// round's combined partials, and the last applied coordinate delta.
type cdUpdater struct {
	w          la.Vec
	lin        LinearLoss
	l2, l1     float64
	curv       float64
	step       float64
	n          int // total dataset rows (sum-unit penalty scaling)
	blockSize  int
	cyclic     bool
	sel        *gsSelector // greedy mode; nil otherwise
	rng        *rand.Rand
	perm       []int32
	runID      int64
	dispatches int64

	round int64   // applied block rounds — the delta-broadcast stamp
	block []int32 // the in-flight round's (sorted) block
	g, h  la.Vec
	got   int
	delta *la.DeltaVec // last round's coordinate changes (driver-owned)
}

func newCDUpdater(d *dataset.Dataset, p *CDParams) (*cdUpdater, error) {
	cols, rows := d.NumCols(), d.NumRows()
	lin, l2, l1, ok := splitProx(p.Loss)
	if !ok {
		return nil, fmt.Errorf("opt: cd cannot decompose objective %q into a linear core", p.Loss.Name())
	}
	curv := curvOf(lin)
	if curv <= 0 {
		return nil, fmt.Errorf("opt: cd has no curvature bound for loss %q", lin.Name())
	}
	u := &cdUpdater{
		w: la.NewVec(cols), lin: lin, l2: l2, l1: l1, curv: curv,
		step: p.DampStep, n: rows, blockSize: p.BlockSize,
		cyclic: p.Mode != "random",
		rng:    rand.New(rand.NewSource(p.Seed + 1)),
		perm:   make([]int32, cols),
		runID:  cdRunSeq.Add(1),
		g:      la.NewVec(p.BlockSize), h: la.NewVec(p.BlockSize),
	}
	if p.Mode == "greedy" {
		u.sel = newGSSelector(d, lin, l2, l1, u.w, p.exactBelow)
	}
	for j := range u.perm {
		u.perm[j] = int32(j)
	}
	return u, nil
}

// pickBlock draws the next coordinate block — the cyclic cursor position or
// the random draw both derive from the dispatch counter, so a checkpoint
// resume replays the exact block sequence. Blocks are returned sorted (the
// delta broadcast keeps the DeltaVec index-order contract; within-block
// order is irrelevant to the math).
//
// In greedy mode the block is instead the Gauss-Southwell top-|score| set
// from the selector's index — state-dependent, so resume rebuilds the
// selector rather than replaying draws. Once the selector has tripped its
// verification fallback, picks revert to the cyclic cursor (the dispatch
// counter kept advancing through the greedy picks, so the cursor is
// well-defined).
func (u *cdUpdater) pickBlock() []int32 {
	if u.sel != nil && !u.sel.fallback {
		u.dispatches++
		return append([]int32(nil), u.sel.pick(u.blockSize)...)
	}
	d := len(u.perm)
	block := make([]int32, u.blockSize)
	if u.cyclic {
		pos := int(u.dispatches) * u.blockSize % d
		for k := range block {
			block[k] = int32((pos + k) % d)
		}
	} else {
		for k := 0; k < u.blockSize; k++ {
			swap := k + u.rng.Intn(d-k)
			u.perm[k], u.perm[swap] = u.perm[swap], u.perm[k]
		}
		copy(block, u.perm[:u.blockSize])
	}
	u.dispatches++
	sort.Slice(block, func(a, b int) bool { return block[a] < block[b] })
	return block
}

// exportDelta stages the delta broadcast for the next round. The DeltaVec
// is cloned: broadcast history may outlive the driver's round state.
func (u *cdUpdater) exportDelta() CDDelta {
	dd := CDDelta{RunID: u.runID, Round: u.round}
	if u.delta != nil {
		dd.Delta = u.delta.Clone()
	}
	return dd
}

func (u *cdUpdater) Model() la.Vec { return u.w }
func (u *cdUpdater) Settle()       {}

func (u *cdUpdater) Apply(payload any, _ *core.Attrs, _ float64) error {
	part, ok := payload.(BCDPartial)
	if !ok {
		return fmt.Errorf("unexpected payload %T", payload)
	}
	// greedy blocks can come up short of BlockSize when the data stores
	// fewer distinct columns; the accumulators are sized for the maximum
	la.Axpy(1, part.G, u.g[:len(part.G)])
	la.Axpy(1, part.H, u.h[:len(part.H)])
	u.got++
	la.PutVec(part.G)
	la.PutVec(part.H)
	return nil
}

func (u *cdUpdater) FlushRound(_ float64) (bool, error) {
	if u.got == 0 {
		u.g.Zero()
		u.h.Zero()
		return false, nil
	}
	if u.sel != nil && !u.sel.fallback {
		// the workers' summed block gradient is ground truth for the scores
		// this block was selected on; verify may rebuild the selector (at
		// the still-pre-step model) or trip the permanent cyclic fallback
		u.sel.verify(u.block, u.g[:len(u.block)])
	}
	nl2 := float64(u.n) * u.l2
	nl1 := float64(u.n) * u.l1
	delta := &la.DeltaVec{N: len(u.w)}
	for k, j := range u.block {
		den := u.h[k] + nl2
		if den <= 0 {
			continue
		}
		tau := u.step / den
		uj := SoftThreshold(u.w[j]-tau*(u.g[k]+nl2*u.w[j]), tau*nl1)
		if d := uj - u.w[j]; d != 0 {
			delta.Idx = append(delta.Idx, j)
			delta.Val = append(delta.Val, d)
			u.w[j] = uj
		}
	}
	if u.sel != nil && !u.sel.fallback {
		u.sel.advance(delta)
	}
	u.delta = delta
	u.round++
	u.g.Zero()
	u.h.Zero()
	u.got = 0
	return true, nil
}

func (u *cdUpdater) Export(cp *Checkpoint) { cp.SetInt("dispatches", u.dispatches) }

func (u *cdUpdater) Import(cp *Checkpoint) error {
	if err := importModel(u.w, cp); err != nil {
		return err
	}
	// replay the recorded number of block draws so the resumed run picks up
	// the block sequence exactly where the original stopped; the residual
	// delta chain restarts (fresh run fence → workers rebuild once)
	replay := cp.Int("dispatches")
	u.dispatches = 0
	if u.sel != nil {
		// greedy picks are state-dependent, not counter-derived: rebuild the
		// selector at the restored model instead of replaying draws. The
		// counter still restores so a later fallback's cyclic cursor lands
		// where the original run's would have.
		u.dispatches = replay
		u.sel.misses, u.sel.rebuilt, u.sel.fallback = 0, false, false
		u.sel.reset()
	} else {
		for i := int64(0); i < replay; i++ {
			u.pickBlock()
		}
	}
	u.round = 0
	u.delta = nil
	u.runID = cdRunSeq.Add(1)
	return nil
}

// CD runs proximal coordinate descent over the composite objective
// p.Loss. fstar is the reference optimum used for error traces.
func CD(ac *core.Context, d *dataset.Dataset, p CDParams, fstar float64) (*Result, error) {
	if err := p.defaults(d.NumCols()); err != nil {
		return nil, err
	}
	u, err := newCDUpdater(d, &p)
	if err != nil {
		return nil, err
	}
	return runLoop(ac, d, u, &loopSpec{
		Algo: "CD", Name: "cd", Key: "cd.w",
		P: &p.Params, Loss: p.Loss, FStar: fstar,
		Target: int64(p.Updates), Publish: pubPlain, Prune: true,
		Barrier: core.BSP(), Round: true,
		Dispatch: func(wBr core.DynBroadcast, sel *core.Selection) (int, error) {
			u.block = u.pickBlock()
			dBr := ac.ASYNCbroadcast("cd.delta", u.exportDelta())
			ac.RDD().PruneBroadcast("cd.delta", 4*ac.RDD().Cluster().NumWorkers())
			return ac.ASYNCreduce(sel, cdKernel(u.lin, u.curv, wBr, dBr, u.block))
		},
	})
}
