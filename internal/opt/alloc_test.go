package opt

import (
	"math/rand"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/la"
)

// benchEnv builds a worker environment holding a split synthetic dataset
// and a cached model broadcast, the setup every kernel test reuses.
func benchEnv(t testing.TB, rows, cols, nParts int) (*cluster.Env, []int, la.Vec, *dataset.Dataset) {
	t.Helper()
	d, err := dataset.Generate(dataset.SynthConfig{
		Name: "alloc", Rows: rows, Cols: cols, NNZPerRow: 20, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	parts, err := dataset.Split(d, nParts)
	if err != nil {
		t.Fatal(err)
	}
	env := cluster.NewEnv(0, 1, nil)
	idx := make([]int, 0, nParts)
	for _, p := range parts {
		if err := env.InstallPartition(p); err != nil {
			t.Fatal(err)
		}
		idx = append(idx, p.Index)
	}
	w := la.NewVec(cols)
	rng := rand.New(rand.NewSource(2))
	for i := range w {
		w[i] = rng.NormFloat64()
	}
	env.Cache().Put("w", 1, w)
	return env, idx, w, d
}

// TestGradSweepAllocFree locks in the tentpole invariant: the steady-state
// mini-batch gradient inner loop performs zero allocations per sweep, for
// every loss on the hot path.
func TestGradSweepAllocFree(t *testing.T) {
	env, idx, w, _ := benchEnv(t, 500, 120, 1)
	p, err := env.Partition(idx[0])
	if err != nil {
		t.Fatal(err)
	}
	g := la.NewVec(len(w))
	rng := rand.New(rand.NewSource(3))
	for _, loss := range []Loss{LeastSquares{}, Logistic{}, Ridge{Inner: LeastSquares{}, Lambda: 0.01}} {
		if allocs := testing.AllocsPerRun(50, func() {
			gradSweep(loss, p, rng, 0.3, w, g)
		}); allocs != 0 {
			t.Errorf("%s: gradSweep allocates %v per run, want 0", loss.Name(), allocs)
		}
	}
}

// TestGradKernelSteadyStateAllocs bounds the whole per-task path: with the
// scratch RNG, pooled accumulator, and fused kernels, the only remaining
// per-task allocation is boxing the result payload into `any`.
func TestGradKernelSteadyStateAllocs(t *testing.T) {
	env, idx, _, _ := benchEnv(t, 500, 120, 2)
	kern := GradKernel(LeastSquares{}, core.DynBroadcast{ID: "w", Version: 1}, 0.3)
	// warm the pool and the scratch RNG
	for i := 0; i < 3; i++ {
		v, _, err := kern(env, idx, int64(i))
		if err != nil {
			t.Fatal(err)
		}
		la.PutVec(v.(la.Vec))
	}
	seed := int64(0)
	allocs := testing.AllocsPerRun(100, func() {
		v, _, err := kern(env, idx, seed)
		if err != nil {
			t.Fatal(err)
		}
		la.PutVec(v.(la.Vec))
		seed++
	})
	if allocs > 1 {
		t.Errorf("GradKernel steady state allocates %v per task, want ≤ 1 (payload boxing)", allocs)
	}
}

// TestGradKernelSeedReproducibility pins the reproducibility contract from
// the GradKernel doc: the same task seed draws the same sample set (and so
// the same gradient) no matter what ran on the worker's RNG before, and
// matches a freshly built environment exactly.
func TestGradKernelSeedReproducibility(t *testing.T) {
	run := func(env *cluster.Env, idx []int, seed int64) (la.Vec, int) {
		kern := GradKernel(LeastSquares{}, core.DynBroadcast{ID: "w", Version: 1}, 0.25)
		v, n, err := kern(env, idx, seed)
		if err != nil {
			t.Fatal(err)
		}
		if v == nil {
			t.Fatal("empty sample at frac 0.25 over 500 rows is vanishingly unlikely; check sampling")
		}
		g := v.(la.Vec).Clone()
		la.PutVec(v.(la.Vec))
		return g, n
	}
	env, idx, _, _ := benchEnv(t, 500, 60, 2)
	g1, n1 := run(env, idx, 7)
	// interleave other seeds so the worker RNG is mid-stream
	run(env, idx, 99)
	run(env, idx, 12345)
	g2, n2 := run(env, idx, 7)
	if n1 != n2 {
		t.Fatalf("same seed drew different sample counts: %d vs %d", n1, n2)
	}
	if !la.Equal(g1, g2, 0) {
		t.Fatal("same seed on a reused worker produced a different gradient")
	}
	// a completely fresh environment must agree bit-for-bit too
	envF, idxF, _, _ := benchEnv(t, 500, 60, 2)
	g3, n3 := run(envF, idxF, 7)
	if n1 != n3 || !la.Equal(g1, g3, 0) {
		t.Fatal("fresh worker disagrees with reused worker for the same seed")
	}
}

// TestSagaKernelRecyclesOnEmpty guards the pool discipline on the
// empty-sample path: a kernel returning no result must still hand its
// accumulators back (caught by leak, not crash — the test just exercises
// the path).
func TestSagaKernelRecyclesOnEmpty(t *testing.T) {
	env, idx, _, _ := benchEnv(t, 3, 20, 1)
	kern := SagaKernel(LeastSquares{}, core.DynBroadcast{ID: "w", Version: 1}, 1e-9)
	v, n, err := kern(env, idx, 1)
	if err != nil {
		t.Fatal(err)
	}
	if v != nil || n != 0 {
		t.Fatalf("expected empty sample, got n=%d", n)
	}
}
