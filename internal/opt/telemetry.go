package opt

import "repro/internal/telemetry"

// Driver-runtime instrumentation on the process-global registry. Apply and
// Settle are timed at the runLoop call sites (driver side), so kernel
// micro-benchmarks of the updaters themselves are unaffected.
var (
	optRuns = telemetry.Default().Counter("async_opt_runs_total",
		"Optimization runs started by the driver runtime.")
	optPreempts = telemetry.Default().Counter("async_opt_preemptions_total",
		"Runs stopped at an update boundary by a preemption signal.")
	optApply = telemetry.Default().Histogram("async_opt_apply_seconds",
		"Driver-side Updater.Apply time per collected partial.",
		telemetry.LatencyBuckets())
	optSettle = telemetry.Default().Histogram("async_opt_settle_seconds",
		"Updater.Settle time (lazy-delta flush before publish/snapshot).",
		telemetry.LatencyBuckets())
	optBacklog = telemetry.Default().Gauge("async_opt_lazy_settle_backlog",
		"Partials applied since the last settle (lazy-update backlog).")
	optCpSave = telemetry.Default().Histogram("async_opt_checkpoint_save_seconds",
		"Checkpoint serialization time.",
		telemetry.LatencyBuckets())
	optCpLoad = telemetry.Default().Histogram("async_opt_checkpoint_restore_seconds",
		"Checkpoint decode-and-validate time.",
		telemetry.LatencyBuckets())
)
