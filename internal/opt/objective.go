package opt

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/dataset"
	"repro/internal/la"
)

// ObjectiveSpec is the declarative, wire-friendly description of a
// composite objective:
//
//	{"loss": "logistic", "l2": 0.01, "l1": 0.001}
//
// Loss names the smooth core (least-squares default, or logistic); L2 and
// L1 are the elastic-net coefficients, amortized per sample over the mean
// objective. The same struct parameterizes the facade (SolveConfig.
// Objective) and the jobs HTTP API (Spec.Objective), so both describe
// objectives identically. Resolve maps it onto the Loss hierarchy: the bare
// smooth loss, Ridge for L2-only (preserving the established "+l2" trace
// names), or Composite when an ℓ1 term is present.
type ObjectiveSpec struct {
	Loss string  `json:"loss,omitempty"`
	L2   float64 `json:"l2,omitempty"`
	L1   float64 `json:"l1,omitempty"`
}

// IsZero reports a fully-unset spec (JSON omitzero hook; an unset objective
// falls back to whatever Loss the caller configured directly).
func (o ObjectiveSpec) IsZero() bool { return o == ObjectiveSpec{} }

// Validate checks the spec without building the loss.
func (o ObjectiveSpec) Validate() error {
	_, err := o.Resolve()
	return err
}

// Resolve builds the Loss the spec describes.
func (o ObjectiveSpec) Resolve() (Loss, error) {
	var inner Loss
	switch strings.ToLower(o.Loss) {
	case "", "least-squares", "ls":
		inner = LeastSquares{}
	case "logistic":
		inner = Logistic{}
	default:
		return nil, fmt.Errorf("opt: unknown objective loss %q (least-squares, logistic)", o.Loss)
	}
	if o.L2 < 0 || math.IsNaN(o.L2) || math.IsInf(o.L2, 0) {
		return nil, fmt.Errorf("opt: objective l2 %v must be finite and non-negative", o.L2)
	}
	if o.L1 < 0 || math.IsNaN(o.L1) || math.IsInf(o.L1, 0) {
		return nil, fmt.Errorf("opt: objective l1 %v must be finite and non-negative", o.L1)
	}
	switch {
	case o.L1 > 0:
		return Composite{Inner: inner, L2: o.L2, L1: o.L1}, nil
	case o.L2 > 0:
		return Ridge{Inner: inner, Lambda: o.L2}, nil
	default:
		return inner, nil
	}
}

// Key is a canonical cache key: equal keys describe the same objective
// (loss-name aliases collapsed). Used by the serving layer to cache one
// reference optimum per (dataset, objective).
func (o ObjectiveSpec) Key() string {
	name := strings.ToLower(o.Loss)
	if name == "" || name == "ls" {
		name = "least-squares"
	}
	return fmt.Sprintf("%s|l2=%g|l1=%g", name, o.L2, o.L1)
}

// ReferenceOptimumFor computes F(w*) for an arbitrary composite objective —
// the generalization of ReferenceOptimum beyond plain least squares. Plain
// least squares keeps the normal-equations/CG fast path; everything else is
// solved by an accelerated proximal-gradient (FISTA) reference run with a
// Lipschitz step from a power-iteration bound on λmax(XᵀX). The result
// serves as the f(w*) baseline of error traces, so it is computed to well
// below trace resolution rather than machine precision.
func ReferenceOptimumFor(d *dataset.Dataset, loss Loss) (w la.Vec, fstar float64, err error) {
	if _, isLS := loss.(LeastSquares); isLS || loss == nil {
		return ReferenceOptimum(d)
	}
	lin, l2, l1, ok := splitProx(loss)
	if !ok {
		return nil, 0, fmt.Errorf("opt: reference optimum: objective %q has no linear smooth core", loss.Name())
	}
	curv := curvOf(lin)
	if curv <= 0 {
		return nil, 0, fmt.Errorf("opt: reference optimum: no curvature bound for loss %q", lin.Name())
	}
	n := d.NumRows()
	if n == 0 {
		return la.NewVec(d.NumCols()), 0, nil
	}
	// Lipschitz constant of the smooth mean gradient:
	// L = curv·λmax(XᵀX)/n + l2, with λmax over-estimated slightly so the
	// 1/L step stays safe.
	lip := curv*powerLambdaMax(d.X)/float64(n) + l2
	if lip <= 0 || math.IsNaN(lip) || math.IsInf(lip, 0) {
		return nil, 0, fmt.Errorf("opt: reference optimum: degenerate Lipschitz estimate %g", lip)
	}
	const (
		maxIter = 4000
		tol     = 1e-12
	)
	cols := d.NumCols()
	w = la.NewVec(cols)
	yv := la.NewVec(cols)   // FISTA extrapolation point
	grad := la.NewVec(cols) // smooth mean gradient at yv
	prev := la.NewVec(cols)
	resid := la.NewVec(n) // row-wise x_i·y (then GradCoeff)
	t := 1.0
	for iter := 0; iter < maxIter; iter++ {
		// smooth mean gradient at yv: (1/n)·Xᵀc + l2·yv, c_i = ℓ'(x_i·yv, y_i)
		d.X.MatVec(yv, resid)
		for i := 0; i < n; i++ {
			resid[i] = lin.GradCoeff(resid[i], d.Y[i]) / float64(n)
		}
		d.X.MatTVec(resid, grad)
		if l2 > 0 {
			la.Axpy(l2, yv, grad)
		}
		prev.CopyFrom(w)
		var maxStep float64
		for j := range w {
			w[j] = SoftThreshold(yv[j]-grad[j]/lip, l1/lip)
			if s := math.Abs(w[j] - prev[j]); s > maxStep {
				maxStep = s
			}
		}
		tn := 0.5 * (1 + math.Sqrt(1+4*t*t))
		beta := (t - 1) / tn
		for j := range yv {
			yv[j] = w[j] + beta*(w[j]-prev[j])
		}
		t = tn
		if maxStep <= tol*(1+la.NormInf(w)) {
			break
		}
	}
	return w, Objective(d, loss, w), nil
}

// powerLambdaMax over-estimates λmax(XᵀX) by power iteration on the Gram
// operator v ← Xᵀ(Xv), padded by 1% so a truncated iteration still yields a
// safe (conservative) Lipschitz bound.
func powerLambdaMax(m *la.CSR) float64 {
	v := la.NewVec(m.NumCols)
	for j := range v {
		v[j] = 1 + 0.01*float64(j%7) // deterministic, not orthogonal to the top eigvec
	}
	xv := la.NewVec(m.NumRows)
	var lam float64
	for iter := 0; iter < 40; iter++ {
		m.MatVec(v, xv)
		m.MatTVec(xv, v)
		nrm := la.Norm2(v)
		if nrm == 0 {
			return 0
		}
		la.Scale(1/nrm, v)
		lam = nrm
	}
	return lam * 1.01
}
