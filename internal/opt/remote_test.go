package opt

import (
	"net"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/rdd"
	"repro/internal/straggler"
)

func TestLossByName(t *testing.T) {
	for _, name := range []string{"", "least-squares", "logistic"} {
		if _, err := LossByName(name); err != nil {
			t.Fatalf("%q: %v", name, err)
		}
	}
	if _, err := LossByName("hinge"); err == nil {
		t.Fatal("unknown loss accepted")
	}
}

func TestRemoteASGDInProc(t *testing.T) {
	r := newRig(t, 4, 8, nil)
	res, err := RemoteASGD(r.ac, r.d, Params{
		Step: Scaled{Base: InvSqrt{A: 0.08}, Factor: 4}, SampleFrac: 0.4,
		Updates: 600, SnapshotEvery: 150,
	}, r.fstar)
	if err != nil {
		t.Fatal(err)
	}
	r.assertConverged(t, res, 5)
	if res.Trace.Algorithm != "ASGD-remote" {
		t.Fatalf("algo %q", res.Trace.Algorithm)
	}
}

func TestRemoteASGDRejectsUnshippableLoss(t *testing.T) {
	r := newRig(t, 1, 1, nil)
	_, err := RemoteASGD(r.ac, r.d, Params{
		Loss: Ridge{Inner: LeastSquares{}, Lambda: 0.1},
		Step: Constant{A: 0.01}, SampleFrac: 0.5, Updates: 1,
	}, r.fstar)
	if err == nil {
		t.Fatal("ridge loss shipped by name")
	}
}

func TestRemoteASAGAInProc(t *testing.T) {
	// like TestASAGAConverges, the convergence claim is on the median of
	// independent runs: asynchronous interleavings make one draw heavy-
	// tailed
	factors := make([]float64, 0, 5)
	for i := 0; i < 5; i++ {
		r := newRig(t, 4, 8, nil)
		res, err := RemoteASAGA(r.ac, r.d, Params{
			Step: Constant{A: 0.05 / 4}, SampleFrac: 0.3, Updates: 400, SnapshotEvery: 100,
		}, r.fstar)
		if err != nil {
			t.Fatal(err)
		}
		r.assertTrace(t, res)
		if res.Trace.Algorithm != "ASAGA-remote" {
			t.Fatalf("algo %q", res.Trace.Algorithm)
		}
		factors = append(factors, r.reduction(res))
	}
	if m := medianOf(factors); m < 3 {
		t.Fatalf("remote ASAGA did not converge: median reduction %.2fx of %v, want >= 3x", m, factors)
	}
}

// tcpRig assembles a real-socket cluster with a distributed dataset and an
// ASYNC context — the cmd/asyncd path, in-process.
type tcpRig struct {
	ac    *core.Context
	d     *dataset.Dataset
	fstar float64
	f0    float64
}

func newTCPRig(t *testing.T, workers int) *tcpRig {
	t.Helper()
	return newTCPRigWith(t, workers, dataset.SynthConfig{
		Name: "tcp-opt", Rows: 90, Cols: 6, NNZPerRow: 4, Noise: 0.05, Seed: 12,
	})
}

// newTCPRigWith is newTCPRig over an arbitrary synthetic dataset (the
// sparse-path tests need sparse shapes).
func newTCPRigWith(t *testing.T, workers int, cfg dataset.SynthConfig) *tcpRig {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	type sres struct {
		c   *cluster.Cluster
		err error
	}
	ch := make(chan sres, 1)
	go func() {
		c, err := cluster.ServeTCP(ln, workers)
		ch <- sres{c, err}
	}()
	for i := 0; i < workers; i++ {
		go func(id int) {
			_ = cluster.DialWorkerTCP(addr, id, straggler.None{}, int64(id))
		}(i)
	}
	var c *cluster.Cluster
	select {
	case r := <-ch:
		if r.err != nil {
			t.Fatal(r.err)
		}
		c = r.c
	case <-time.After(10 * time.Second):
		t.Fatal("TCP cluster assembly timed out")
	}
	t.Cleanup(func() {
		c.Shutdown()
		_ = ln.Close()
	})
	d, err := dataset.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var fstar float64
	if cfg.Rows >= cfg.Cols {
		if _, fstar, err = ReferenceOptimum(d); err != nil {
			t.Fatal(err)
		}
	}
	// wide (rows < cols) systems are near-interpolating: F* ≈ noise² ≈ 0,
	// and the CG reference on the singular normal equations is unreliable,
	// so convergence is asserted against 0
	rctx := rdd.NewContext(c)
	if _, err := rctx.Distribute(d, 2*workers); err != nil {
		t.Fatal(err)
	}
	ac := core.New(rctx)
	t.Cleanup(ac.Close)
	return &tcpRig{
		ac: ac, d: d, fstar: fstar,
		f0: Objective(d, LeastSquares{}, make([]float64, d.NumCols())),
	}
}

func (r *tcpRig) assertConverged(t *testing.T, res *Result, factor float64) {
	t.Helper()
	final := Objective(r.d, LeastSquares{}, res.W) - r.fstar
	if final > (r.f0-r.fstar)/factor {
		t.Fatalf("TCP run did not converge: %v → %v", r.f0-r.fstar, final)
	}
}

// TestRemoteASGDOverTCP runs the full ASGD driver against workers connected
// through real sockets — the cmd/asyncd path.
func TestRemoteASGDOverTCP(t *testing.T) {
	r := newTCPRig(t, 3)
	res, err := RemoteASGD(r.ac, r.d, Params{
		Step: Scaled{Base: InvSqrt{A: 0.1}, Factor: 3}, SampleFrac: 0.5,
		Updates: 300, SnapshotEvery: 100,
	}, r.fstar)
	if err != nil {
		t.Fatal(err)
	}
	r.assertConverged(t, res, 3)
}

// TestRemoteASAGAOverTCP exercises the historical-gradient path — version
// cache, fetch-on-miss, per-sample history shards — across real sockets.
func TestRemoteASAGAOverTCP(t *testing.T) {
	r := newTCPRig(t, 3)
	res, err := RemoteASAGA(r.ac, r.d, Params{
		Step: Constant{A: 0.05 / 3}, SampleFrac: 0.4,
		Updates: 300, SnapshotEvery: 100,
	}, r.fstar)
	if err != nil {
		t.Fatal(err)
	}
	r.assertConverged(t, res, 3)
}
