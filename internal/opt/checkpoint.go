package opt

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"sort"
	"time"

	"repro/internal/cluster"
	"repro/internal/la"
)

// Checkpoint is the driver-side state needed to resume an optimization run:
// the model, the logical update clock, and whatever solver-specific driver
// state the algorithm carries (SAGA's running history average, momentum
// velocity, SVRG's epoch anchor and full gradient, ADMM's per-worker
// contributions, BCD's dispatch count for RNG replay). Lazily deferred
// update terms are always settled before export, so a checkpoint never
// stores drift state. Worker-side state — broadcast caches, SAGA history
// shards, ADMM primal/dual iterates — is soft state: a resumed run re-seeds
// it naturally, so checkpoints stay small and the restore path needs no
// worker cooperation (the same philosophy as Spark's lineage-based
// recovery). The one coupling is SAGA's history average: it is the mean of
// the shard-stored gradients, so Import restores it only on a same-context
// resume and restarts it at zero after an engine reset (see sagaState).
type Checkpoint struct {
	// Algorithm is the registry name of the solver that produced the
	// checkpoint ("asgd", "saga", ...), resolvable by the solver registry.
	Algorithm string
	W         la.Vec
	Updates   int64
	AvgHist   la.Vec // nil for methods without history (legacy field)

	// Vecs holds named solver-specific dense state beyond AvgHist (momentum
	// velocity, SVRG mu/anchor, ADMM contributions). Every entry has the
	// model's dimension.
	Vecs map[string]la.Vec
	// Ints holds named solver-specific counters (BCD dispatch count, the
	// round and dispatch-sequence positions).
	Ints map[string]int64

	// historyAttached is runtime-only (never serialized): the driver
	// runtime sets it when the resuming run still holds the worker-side
	// state this capture was taken against (same engine, no ResetRun in
	// between). Solvers whose driver state is coupled to worker shards
	// (SAGA's avgHist ↔ per-sample history tables) consult it on Import.
	historyAttached bool
}

// HistoryAttached reports whether worker-side run state survived between
// capture and resume (see the field doc).
func (c *Checkpoint) HistoryAttached() bool { return c.historyAttached }

// SetVec stores an independent copy of v under name (nil v is skipped).
func (c *Checkpoint) SetVec(name string, v la.Vec) {
	if v == nil {
		return
	}
	if c.Vecs == nil {
		c.Vecs = map[string]la.Vec{}
	}
	c.Vecs[name] = v.Clone()
}

// Vec returns the named vector, nil when absent.
func (c *Checkpoint) Vec(name string) la.Vec { return c.Vecs[name] }

// SetInt stores a named counter.
func (c *Checkpoint) SetInt(name string, v int64) {
	if c.Ints == nil {
		c.Ints = map[string]int64{}
	}
	c.Ints[name] = v
}

// Int returns the named counter (0 when absent).
func (c *Checkpoint) Int(name string) int64 { return c.Ints[name] }

// Validate checks structural consistency.
func (c *Checkpoint) Validate() error {
	if len(c.W) == 0 {
		return fmt.Errorf("opt: checkpoint has empty model")
	}
	if c.Updates < 0 {
		return fmt.Errorf("opt: checkpoint has negative clock %d", c.Updates)
	}
	if c.AvgHist != nil && len(c.AvgHist) != len(c.W) {
		return fmt.Errorf("opt: checkpoint history dim %d != model dim %d", len(c.AvgHist), len(c.W))
	}
	for name, v := range c.Vecs {
		if len(v) != len(c.W) {
			return fmt.Errorf("opt: checkpoint vec %q dim %d != model dim %d", name, len(v), len(c.W))
		}
	}
	return nil
}

// checkpointMagic opens every binary checkpoint; files that do not start
// with it fall back to the gob decoder (the pre-binary format).
var checkpointMagic = []byte("ACP1")

// SaveCheckpoint writes the checkpoint in the compact binary format (the
// same varint/raw-float encoding the wire codec uses).
func SaveCheckpoint(w io.Writer, c *Checkpoint) error {
	defer func(start time.Time) { optCpSave.ObserveSince(start) }(time.Now())
	if err := c.Validate(); err != nil {
		return err
	}
	var bw cluster.BinWriter
	bw.PutString(c.Algorithm)
	bw.PutVarint(c.Updates)
	if err := bw.PutValue(c.W); err != nil {
		return fmt.Errorf("opt: save checkpoint: %w", err)
	}
	var hist any
	if c.AvgHist != nil {
		hist = c.AvgHist
	}
	if err := bw.PutValue(hist); err != nil {
		return fmt.Errorf("opt: save checkpoint: %w", err)
	}
	putVecMap(&bw, c.Vecs)
	bw.PutUvarint(uint64(len(c.Ints)))
	for _, k := range sortedKeys(c.Ints) {
		bw.PutString(k)
		bw.PutVarint(c.Ints[k])
	}
	if _, err := w.Write(checkpointMagic); err != nil {
		return fmt.Errorf("opt: save checkpoint: %w", err)
	}
	if _, err := w.Write(bw.Bytes()); err != nil {
		return fmt.Errorf("opt: save checkpoint: %w", err)
	}
	return nil
}

func putVecMap(bw *cluster.BinWriter, m map[string]la.Vec) {
	bw.PutUvarint(uint64(len(m)))
	for _, k := range sortedKeys(m) {
		bw.PutString(k)
		// vectors ride the builtin la.Vec payload encoding
		_ = bw.PutValue(m[k])
	}
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// LoadCheckpoint reads a checkpoint written by SaveCheckpoint. Binary
// checkpoints (magic-prefixed) decode through the length-validated BinReader
// — a corrupt length field fails before any outsized allocation; files
// written by older releases decode through the gob fallback.
func LoadCheckpoint(r io.Reader) (*Checkpoint, error) {
	defer func(start time.Time) { optCpLoad.ObserveSince(start) }(time.Now())
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("opt: load checkpoint: %w", err)
	}
	var c *Checkpoint
	if bytes.HasPrefix(data, checkpointMagic) {
		if c, err = decodeBinaryCheckpoint(data[len(checkpointMagic):]); err != nil {
			return nil, fmt.Errorf("opt: load checkpoint: %w", err)
		}
	} else {
		c = &Checkpoint{}
		if err := gob.NewDecoder(bytes.NewReader(data)).Decode(c); err != nil {
			return nil, fmt.Errorf("opt: load checkpoint: %w", err)
		}
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return c, nil
}

func decodeBinaryCheckpoint(body []byte) (*Checkpoint, error) {
	br := cluster.NewBinReader(body)
	c := &Checkpoint{
		Algorithm: br.String(),
		Updates:   br.Varint(),
	}
	var err error
	if c.W, err = readVec(br, true); err != nil {
		return nil, err
	}
	if c.AvgHist, err = readVec(br, false); err != nil {
		return nil, err
	}
	if n := br.Length(2); n > 0 { // ≥1 byte key length + 1 byte payload code
		c.Vecs = make(map[string]la.Vec, n)
		for i := 0; i < n && br.Err() == nil; i++ {
			k := br.String()
			v, err := readVec(br, true)
			if err != nil {
				return nil, err
			}
			c.Vecs[k] = v
		}
	}
	if n := br.Length(2); n > 0 {
		c.Ints = make(map[string]int64, n)
		for i := 0; i < n && br.Err() == nil; i++ {
			k := br.String()
			c.Ints[k] = br.Varint()
		}
	}
	if err := br.Err(); err != nil {
		return nil, err
	}
	return c, nil
}

// readVec decodes one payload value and asserts it is a vector (or nil when
// allowed). Decoded vectors come from the la pool but are retained by the
// checkpoint for its lifetime, never recycled.
func readVec(br *cluster.BinReader, required bool) (la.Vec, error) {
	v, err := br.Value()
	if err != nil {
		return nil, err
	}
	if v == nil {
		if required {
			return nil, fmt.Errorf("opt: checkpoint vector missing")
		}
		return nil, nil
	}
	w, ok := v.(la.Vec)
	if !ok {
		return nil, fmt.Errorf("opt: checkpoint vector decoded as %T", v)
	}
	return w, nil
}

// FromResult builds a checkpoint from a finished run.
func FromResult(res *Result, updates int64) *Checkpoint {
	return &Checkpoint{
		Algorithm: res.Trace.Algorithm,
		W:         res.W.Clone(),
		Updates:   updates,
	}
}
