package opt

import (
	"encoding/gob"
	"fmt"
	"io"

	"repro/internal/la"
)

// Checkpoint is the driver-side state needed to resume an optimization run:
// the model, the logical update clock, and (for SAGA-family methods) the
// running history average. Worker-side state — broadcast caches, SAGA
// history shards — is soft state: a resumed run re-seeds it naturally, so
// checkpoints stay small and the restore path needs no worker cooperation
// (the same philosophy as Spark's lineage-based recovery).
type Checkpoint struct {
	Algorithm string
	W         la.Vec
	Updates   int64
	AvgHist   la.Vec // nil for methods without history
}

// Validate checks structural consistency.
func (c *Checkpoint) Validate() error {
	if len(c.W) == 0 {
		return fmt.Errorf("opt: checkpoint has empty model")
	}
	if c.Updates < 0 {
		return fmt.Errorf("opt: checkpoint has negative clock %d", c.Updates)
	}
	if c.AvgHist != nil && len(c.AvgHist) != len(c.W) {
		return fmt.Errorf("opt: checkpoint history dim %d != model dim %d", len(c.AvgHist), len(c.W))
	}
	return nil
}

// SaveCheckpoint writes the checkpoint in gob format.
func SaveCheckpoint(w io.Writer, c *Checkpoint) error {
	if err := c.Validate(); err != nil {
		return err
	}
	if err := gob.NewEncoder(w).Encode(c); err != nil {
		return fmt.Errorf("opt: save checkpoint: %w", err)
	}
	return nil
}

// LoadCheckpoint reads a checkpoint written by SaveCheckpoint.
func LoadCheckpoint(r io.Reader) (*Checkpoint, error) {
	var c Checkpoint
	if err := gob.NewDecoder(r).Decode(&c); err != nil {
		return nil, fmt.Errorf("opt: load checkpoint: %w", err)
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return &c, nil
}

// FromResult builds a checkpoint from a finished run.
func FromResult(res *Result, updates int64) *Checkpoint {
	return &Checkpoint{
		Algorithm: res.Trace.Algorithm,
		W:         res.W.Clone(),
		Updates:   updates,
	}
}
