package opt

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/la"
)

// segCfg parameterizes one segment of a resume-equivalence run: the first
// segment sets a checkpoint cadence and a preemption signal, the second
// resumes from the captured checkpoint.
type segCfg struct {
	every   int
	onCp    func(*Checkpoint)
	preempt *PreemptSignal
	resume  *Checkpoint
}

func (s segCfg) apply(p *Params) {
	p.CheckpointEvery = s.every
	p.OnCheckpoint = s.onCp
	p.Preempt = s.preempt
	p.Resume = s.resume
}

// resumePair pins the resume-equivalence contract for one solver: a run
// preempted at update k and resumed from its checkpoint (round-tripped
// through the on-disk codec, as a scheduler would persist it) must match
// the uninterrupted run on the same seeds. makeRig builds identical rigs
// (fixed seeds); run drives the solver with the segment config applied.
func resumePair(t *testing.T, k int64, tol float64,
	makeRig func(t *testing.T) *rig,
	run func(r *rig, seg segCfg) (*Result, error)) {
	t.Helper()

	full := makeRig(t)
	resFull, err := run(full, segCfg{})
	if err != nil {
		t.Fatal(err)
	}

	r2 := makeRig(t)
	sig := NewPreemptSignal()
	var seen *Checkpoint
	_, err = run(r2, segCfg{
		every:   int(k),
		preempt: sig,
		onCp: func(c *Checkpoint) {
			if seen == nil {
				seen = c
				sig.Trigger()
			}
		},
	})
	var pe *PreemptedError
	if !errors.As(err, &pe) {
		t.Fatalf("want PreemptedError, got %v", err)
	}
	if pe.Checkpoint.Updates != k {
		t.Fatalf("preempted at update %d, want %d", pe.Checkpoint.Updates, k)
	}
	if seen == nil || seen.Updates != k {
		t.Fatalf("periodic checkpoint not captured at %d: %+v", k, seen)
	}

	// resume from exactly what a scheduler would have persisted: the
	// checkpoint round-tripped through the binary codec
	var buf bytes.Buffer
	if err := SaveCheckpoint(&buf, pe.Checkpoint); err != nil {
		t.Fatal(err)
	}
	cp, err := LoadCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	resResumed, err := run(r2, segCfg{resume: cp})
	if err != nil {
		t.Fatal(err)
	}
	if !la.Equal(resFull.W, resResumed.W, tol) {
		t.Fatalf("resumed model diverged from uninterrupted run (tol %g)", tol)
	}
	if got := resResumed.Trace.Points[0].Updates; got != k {
		t.Fatalf("resumed trace starts at update %d, want %d", got, k)
	}
}

// denseRig is the deterministic single-worker fixture the equivalence runs
// use: with one worker, dispatch/collect interleaving is sequential, so an
// uninterrupted run is bit-reproducible and the comparison is meaningful.
func denseRig(t *testing.T) *rig { return newRig(t, 1, 2, nil) }

// asgdParams is the shared base configuration (12 update budget).
func asgdParams() Params {
	return Params{Step: InvSqrt{A: 0.05}, SampleFrac: 0.4, Updates: 12, SnapshotEvery: 4}
}

func TestResumeEquivalenceSyncSGD(t *testing.T) {
	resumePair(t, 6, 0, denseRig, func(r *rig, seg segCfg) (*Result, error) {
		p := asgdParams()
		seg.apply(&p)
		return SyncSGD(r.ac, r.d, p, r.fstar)
	})
}

func TestResumeEquivalenceASGD(t *testing.T) {
	resumePair(t, 6, 0, denseRig, func(r *rig, seg segCfg) (*Result, error) {
		p := asgdParams()
		seg.apply(&p)
		return ASGD(r.ac, r.d, p, r.fstar)
	})
}

func TestResumeEquivalenceASGDMomentum(t *testing.T) {
	// the heavy-ball velocity is driver state: it rides the checkpoint
	resumePair(t, 6, 0, denseRig, func(r *rig, seg segCfg) (*Result, error) {
		p := asgdParams()
		p.Momentum = 0.5
		seg.apply(&p)
		return ASGD(r.ac, r.d, p, r.fstar)
	})
}

func TestResumeEquivalenceSAGA(t *testing.T) {
	resumePair(t, 6, 0, denseRig, func(r *rig, seg segCfg) (*Result, error) {
		p := asgdParams()
		seg.apply(&p)
		return SAGA(r.ac, r.d, p, r.fstar)
	})
}

func TestResumeEquivalenceASAGA(t *testing.T) {
	resumePair(t, 6, 0, denseRig, func(r *rig, seg segCfg) (*Result, error) {
		p := asgdParams()
		seg.apply(&p)
		return ASAGA(r.ac, r.d, p, r.fstar)
	})
}

func TestResumeEquivalenceRemoteASGD(t *testing.T) {
	resumePair(t, 6, 0, denseRig, func(r *rig, seg segCfg) (*Result, error) {
		p := asgdParams()
		seg.apply(&p)
		return RemoteASGD(r.ac, r.d, p, r.fstar)
	})
}

func TestResumeEquivalenceRemoteASAGA(t *testing.T) {
	resumePair(t, 6, 0, denseRig, func(r *rig, seg segCfg) (*Result, error) {
		p := asgdParams()
		seg.apply(&p)
		return RemoteASAGA(r.ac, r.d, p, r.fstar)
	})
}

func TestResumeEquivalenceEpochVR(t *testing.T) {
	// k=7 lands mid-epoch (epochs of 5): the resumed run must continue
	// against the checkpointed anchor and μ, not re-anchor
	resumePair(t, 7, 0, denseRig, func(r *rig, seg segCfg) (*Result, error) {
		p := VRParams{
			Params: Params{Step: Constant{A: 0.03}, SampleFrac: 0.4, Updates: 1, SnapshotEvery: 5},
			Epochs: 3, UpdatesPerEpoch: 5,
		}
		seg.apply(&p.Params)
		return EpochVR(r.ac, r.d, p, r.fstar)
	})
}

func TestResumeEquivalenceADMM(t *testing.T) {
	resumePair(t, 6, 0, denseRig, func(r *rig, seg segCfg) (*Result, error) {
		p := ADMMParams{Rho: 1, Rounds: 12, Snapshot: 4}
		p.CheckpointEvery = seg.every
		p.OnCheckpoint = seg.onCp
		p.Preempt = seg.preempt
		p.Resume = seg.resume
		return ADMM(r.ac, r.d, p, r.fstar)
	})
}

func TestResumeEquivalenceBCD(t *testing.T) {
	// the checkpointed dispatch count replays the block RNG exactly
	resumePair(t, 6, 0, denseRig, func(r *rig, seg segCfg) (*Result, error) {
		p := BCDParams{BlockSize: 4, Step: 1, Updates: 12, Snapshot: 4, Seed: 5}
		p.CheckpointEvery = seg.every
		p.OnCheckpoint = seg.onCp
		p.Preempt = seg.preempt
		p.Resume = seg.resume
		return AsyncBCD(r.ac, r.d, p, r.fstar)
	})
}

// TestResumeEquivalenceCD: the checkpointed dispatch count replays the
// block sequence (cyclic position or seeded permutation) exactly; the
// resume rebuilds per-partition residuals from the restored model, so the
// trajectories agree to rounding rather than bitwise.
func TestResumeEquivalenceCD(t *testing.T) {
	resumePair(t, 6, 1e-9, denseRig, func(r *rig, seg segCfg) (*Result, error) {
		p := CDParams{BlockSize: 4, Mode: "random", Seed: 5}
		p.Loss = Composite{Inner: LeastSquares{}, L2: 0.05, L1: 0.01}
		p.Updates = 12
		p.SnapshotEvery = 4
		seg.apply(&p.Params)
		return CD(r.ac, r.d, p, 0)
	})
}

// TestResumeEquivalenceGCG: with the preemption point on a restart
// boundary (k = 6, RestartEvery = 3) both runs drop the conjugate
// direction there, so the resumed trajectory is bitwise identical.
func TestResumeEquivalenceGCG(t *testing.T) {
	resumePair(t, 6, 0, denseRig, func(r *rig, seg segCfg) (*Result, error) {
		p := GCGParams{RestartEvery: 3}
		p.Step = Constant{A: 0.02}
		p.Updates = 12
		p.SnapshotEvery = 4
		seg.apply(&p.Params)
		return GCG(r.ac, r.d, p, 0)
	})
}

func TestResumeEquivalenceMllibSGD(t *testing.T) {
	resumePair(t, 6, 0, denseRig, func(r *rig, seg segCfg) (*Result, error) {
		p := asgdParams()
		seg.apply(&p)
		return MllibSGDCtx(context.Background(), r.rctx, r.points, r.d, p, r.fstar)
	})
}

// TestResumeEquivalenceLazyRidge covers the deferred-term tolerance: the
// checkpoint settles the lazy L2 shrinkage at update k, so the resumed
// trajectory matches the uninterrupted one only to rounding (the deferred
// factors telescope into products).
func TestResumeEquivalenceLazyRidge(t *testing.T) {
	makeRig := func(t *testing.T) *rig {
		ac, d := newSparseRig(t, 1, 2, sparseCfg())
		return &rig{ac: ac, d: d}
	}
	resumePair(t, 40, 1e-9, makeRig, func(r *rig, seg segCfg) (*Result, error) {
		p := Params{
			Loss: Ridge{Inner: LeastSquares{}, Lambda: 0.05},
			Step: InvSqrt{A: 0.1}, SampleFrac: 0.3, Updates: 100, SnapshotEvery: 25,
		}
		seg.apply(&p)
		return ASGD(r.ac, r.d, p, 0)
	})
}

// TestResumeEquivalenceLazyASAGA covers the deferred avgHist drift of the
// sparse SAGA path across a checkpoint settle.
func TestResumeEquivalenceLazyASAGA(t *testing.T) {
	makeRig := func(t *testing.T) *rig {
		ac, d := newSparseRig(t, 1, 2, sparseCfg())
		return &rig{ac: ac, d: d}
	}
	resumePair(t, 40, 1e-9, makeRig, func(r *rig, seg segCfg) (*Result, error) {
		p := Params{Step: Constant{A: 0.02}, SampleFrac: 0.25, Updates: 100, SnapshotEvery: 25}
		seg.apply(&p)
		return ASAGA(r.ac, r.d, p, 0)
	})
}

// TestPreemptBeforeFirstUpdate: a signal raised before the run starts is
// honoured at the first boundary check, before any dispatch.
func TestPreemptBeforeFirstUpdate(t *testing.T) {
	r := denseRig(t)
	sig := NewPreemptSignal()
	sig.Trigger()
	p := asgdParams()
	p.Preempt = sig
	_, err := ASGD(r.ac, r.d, p, r.fstar)
	var pe *PreemptedError
	if !errors.As(err, &pe) {
		t.Fatalf("want PreemptedError, got %v", err)
	}
	if pe.Checkpoint.Updates != 0 {
		t.Fatalf("preempted at %d, want 0", pe.Checkpoint.Updates)
	}
}

// TestResumeBeyondBudget: resuming a checkpoint at (or past) the budget
// returns immediately with the checkpointed model.
func TestResumeBeyondBudget(t *testing.T) {
	r := denseRig(t)
	p := asgdParams()
	cp := &Checkpoint{Algorithm: "asgd", W: la.NewVec(r.d.NumCols()), Updates: int64(p.Updates)}
	for i := range cp.W {
		cp.W[i] = float64(i)
	}
	p.Resume = cp
	res, err := ASGD(r.ac, r.d, p, r.fstar)
	if err != nil {
		t.Fatal(err)
	}
	if !la.Equal(res.W, cp.W, 0) {
		t.Fatal("exhausted resume did not return the checkpointed model")
	}
}

// TestSagaImportHistoryCoupling: avgHist is the mean of the worker-shard
// gradients, so Import restores it only when those shards survived (a
// same-context resume); after an engine reset it restarts at zero — a
// restored average over empty shards would bias the estimator forever.
func TestSagaImportHistoryCoupling(t *testing.T) {
	cpOf := func(attached bool) *Checkpoint {
		cp := &Checkpoint{Algorithm: "asaga", W: la.Vec{1, 2, 3}, Updates: 5, AvgHist: la.Vec{4, 5, 6}}
		cp.historyAttached = attached
		return cp
	}
	st := newSagaState(3, 10)
	if err := st.Import(cpOf(true)); err != nil {
		t.Fatal(err)
	}
	if !la.Equal(st.avgHist, la.Vec{4, 5, 6}, 0) {
		t.Fatal("attached resume did not restore avgHist")
	}
	if err := st.Import(cpOf(false)); err != nil {
		t.Fatal(err)
	}
	if la.Norm2(st.avgHist) != 0 {
		t.Fatal("detached resume kept stale avgHist over cleared history shards")
	}
	if !la.Equal(st.w, la.Vec{1, 2, 3}, 0) {
		t.Fatal("model not imported")
	}
}

// TestASAGAResumeAcrossReset: resuming ASAGA on a reset context (worker
// history wiped) must stay a correct, converging run — the cold-started
// estimator continues from the checkpointed model without bias.
func TestASAGAResumeAcrossReset(t *testing.T) {
	r := newRig(t, 1, 2, nil)
	p := Params{Step: Scaled{Base: InvSqrt{A: 0.08}, Factor: 1}, SampleFrac: 0.4,
		Updates: 300, SnapshotEvery: 100, CheckpointEvery: 150}
	var cp *Checkpoint
	sig := NewPreemptSignal()
	p.Preempt = sig
	p.OnCheckpoint = func(c *Checkpoint) {
		if cp == nil {
			cp = c
			sig.Trigger()
		}
	}
	var pe *PreemptedError
	if _, err := ASAGA(r.ac, r.d, p, r.fstar); !errors.As(err, &pe) {
		t.Fatalf("want preemption, got %v", err)
	}
	if err := r.ac.ResetRun(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	p2 := Params{Step: p.Step, SampleFrac: p.SampleFrac, Updates: p.Updates,
		SnapshotEvery: p.SnapshotEvery, Resume: pe.Checkpoint}
	res, err := ASAGA(r.ac, r.d, p2, r.fstar)
	if err != nil {
		t.Fatal(err)
	}
	mid := Objective(r.d, LeastSquares{}, pe.Checkpoint.W) - r.fstar
	final := Objective(r.d, LeastSquares{}, res.W) - r.fstar
	if final > mid {
		t.Fatalf("cross-reset resumed ASAGA regressed: %v -> %v", mid, final)
	}
}

// TestResumeDimMismatch: a checkpoint from a different problem fails loudly.
func TestResumeDimMismatch(t *testing.T) {
	r := denseRig(t)
	p := asgdParams()
	p.Resume = &Checkpoint{Algorithm: "asgd", W: la.Vec{1, 2, 3}, Updates: 1}
	if _, err := ASGD(r.ac, r.d, p, r.fstar); err == nil {
		t.Fatal("dim mismatch accepted")
	}
}

func TestResumeEquivalenceSparseASGD(t *testing.T) {
	// the shipped-coordinate count is driver state: the resumed run must
	// report the whole run's communication cost, not the tail segment's
	var counts []int64
	resumePair(t, 6, 0, denseRig, func(r *rig, seg segCfg) (*Result, error) {
		p := asgdParams()
		seg.apply(&p)
		res, coords, err := SparseASGD(r.ac, r.d, p, 0.5, r.fstar)
		if err == nil {
			counts = append(counts, coords)
		}
		return res, err
	})
	if len(counts) != 2 || counts[0] != counts[1] {
		t.Fatalf("coords full=%v vs resumed=%v — count must ride the checkpoint", counts[:1], counts[1:])
	}
}
