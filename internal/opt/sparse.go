package opt

import (
	"encoding/gob"
	"fmt"
	"math/rand"

	"repro/internal/cluster"
	"repro/internal/dataset"
	"repro/internal/la"
)

// Sparse-delta task path. When a task's partitions are sparse enough and
// its loss is linear (see LinearLoss), the gradient kernels accumulate only
// the coordinates the sampled rows touch — O(nnz) per task instead of O(d)
// — and ship the result as a pooled la.DeltaVec (or SagaDelta) instead of a
// dense vector. The drivers recognise the payload type and apply the update
// in O(nnz) too (see lazy.go). Sampling draws from the same worker RNG in
// the same order as the dense sweep, and the scatter arithmetic mirrors the
// dense kernels operation for operation, so on a fixed seed the sparse and
// dense paths produce bitwise-identical gradients (regression-tested in
// sparse_test.go).

// SparseDensityThreshold gates the sparse task path: a task takes it only
// when every partition it sweeps has density (nnz / rows·cols) at or below
// this value (the paper's sparse datasets sit near 0.2% density). It is a
// variable for tests, which pin it to 0 to force the dense path; treat it
// as a constant in production code.
var SparseDensityThreshold = 0.1

// sparseWorkFactor is the second half of the gate: the compact step costs
// roughly an order of magnitude more per touched coordinate than a dense
// element visit (radix sort passes plus a random-access gather), so the
// sparse path only wins when the expected touched set is a small fraction
// of the dimension. A task whose expected sample nnz exceeds
// dim/sparseWorkFactor runs dense. Measured on the CI-class machine the
// break-even sits near dim/22; 32 leaves margin.
const sparseWorkFactor = 32

// sparseTaskViable decides the path for one task: every partition below
// the density threshold, and the expected sampled nnz (frac · stored nnz,
// an upper bound on touched coordinates) small relative to the dimension.
// Both checks read stored counts only — O(#partitions), not O(nnz) — the
// "detect once per partition" contract.
func sparseTaskViable(env *cluster.Env, parts []int, frac float64, dim int) bool {
	totalNNZ := 0
	for _, pi := range parts {
		p, err := env.Partition(pi)
		if err != nil || p.X.Density() > SparseDensityThreshold {
			return false
		}
		totalNNZ += p.X.NNZ()
	}
	return frac*float64(totalNNZ)*sparseWorkFactor <= float64(dim)
}

// gradSweepSparse is the sparse counterpart of gradSweep: sample each row
// of partition p with probability frac (consuming the RNG exactly like the
// dense sweep) and scatter the per-sample gradient coefficient into the
// accumulator, touching only the row's nonzeros.
func gradSweepSparse(lin LinearLoss, p *dataset.Partition, rng *rand.Rand, frac float64, w la.Vec, acc *la.DeltaAccum) int {
	n := 0
	for local := 0; local < p.NumRows(); local++ {
		if rng.Float64() >= frac {
			continue
		}
		idx, val := p.X.RowNZ(local)
		c := lin.GradCoeff(la.SparseDot(idx, val, w), p.Y[local])
		acc.Accum(c, idx, val)
		n++
	}
	return n
}

// SagaDelta is the sparse counterpart of SagaPartial: the current- and
// historical-gradient sums restricted to the coordinates the sampled rows
// touch. Both deltas are pooled; the driver returns them with la.PutDelta
// after applying the update.
type SagaDelta struct {
	Sum     *la.DeltaVec // Σ_{i∈S} ∇f_i(w_current)
	HistSum *la.DeltaVec // Σ_{i∈S} ∇f_i(w_hist(i))
}

func init() {
	gob.Register(SagaDelta{})
}

// Binary payload codes claimed by the opt layer (the core layer owns 16;
// see internal/core/codec.go).
const (
	payloadSagaPartial byte = 17
	payloadSagaDelta   byte = 18
	payloadGradOpArgs  byte = 19
	payloadSagaOpArgs  byte = 20
)

func init() {
	cluster.RegisterPayloadCodec(payloadSagaPartial, SagaPartial{},
		func(w *cluster.BinWriter, v any) error {
			p, ok := v.(SagaPartial)
			if !ok {
				return fmt.Errorf("opt: saga codec got %T", v)
			}
			if err := w.PutValue(p.Sum); err != nil {
				return err
			}
			return w.PutValue(p.HistSum)
		},
		func(r *cluster.BinReader) (any, error) {
			s, err := r.Value()
			if err != nil {
				return nil, err
			}
			h, err := r.Value()
			if err != nil {
				return nil, err
			}
			p := SagaPartial{}
			if s != nil {
				if p.Sum, err = asPayloadVec(s); err != nil {
					return nil, err
				}
			}
			if h != nil {
				if p.HistSum, err = asPayloadVec(h); err != nil {
					return nil, err
				}
			}
			return p, nil
		})
	cluster.RegisterPayloadCodec(payloadSagaDelta, SagaDelta{},
		func(w *cluster.BinWriter, v any) error {
			p, ok := v.(SagaDelta)
			if !ok {
				return fmt.Errorf("opt: saga-delta codec got %T", v)
			}
			if err := w.PutValue(p.Sum); err != nil {
				return err
			}
			return w.PutValue(p.HistSum)
		},
		func(r *cluster.BinReader) (any, error) {
			s, err := r.Value()
			if err != nil {
				return nil, err
			}
			h, err := r.Value()
			if err != nil {
				return nil, err
			}
			p := SagaDelta{}
			var ok bool
			if p.Sum, ok = s.(*la.DeltaVec); !ok {
				return nil, fmt.Errorf("opt: saga-delta sum decoded as %T", s)
			}
			if p.HistSum, ok = h.(*la.DeltaVec); !ok {
				return nil, fmt.Errorf("opt: saga-delta hist decoded as %T", h)
			}
			return p, nil
		})
	cluster.RegisterPayloadCodec(payloadGradOpArgs, GradOpArgs{},
		func(w *cluster.BinWriter, v any) error {
			a, ok := v.(GradOpArgs)
			if !ok {
				return fmt.Errorf("opt: grad-args codec got %T", v)
			}
			putOpArgs(w, a.BroadcastID, a.Version, a.Frac, a.Parts, a.Loss)
			return nil
		},
		func(r *cluster.BinReader) (any, error) {
			var a GradOpArgs
			a.BroadcastID, a.Version, a.Frac, a.Parts, a.Loss = getOpArgs(r)
			return a, r.Err()
		})
	cluster.RegisterPayloadCodec(payloadSagaOpArgs, SagaOpArgs{},
		func(w *cluster.BinWriter, v any) error {
			a, ok := v.(SagaOpArgs)
			if !ok {
				return fmt.Errorf("opt: saga-args codec got %T", v)
			}
			putOpArgs(w, a.BroadcastID, a.Version, a.Frac, a.Parts, a.Loss)
			return nil
		},
		func(r *cluster.BinReader) (any, error) {
			var a SagaOpArgs
			a.BroadcastID, a.Version, a.Frac, a.Parts, a.Loss = getOpArgs(r)
			return a, r.Err()
		})
}

func putOpArgs(w *cluster.BinWriter, id string, version int64, frac float64, parts []int, loss string) {
	w.PutString(id)
	w.PutVarint(version)
	w.PutFloat64(frac)
	w.PutUvarint(uint64(len(parts)))
	for _, p := range parts {
		w.PutVarint(int64(p))
	}
	w.PutString(loss)
}

func getOpArgs(r *cluster.BinReader) (id string, version int64, frac float64, parts []int, loss string) {
	id = r.String()
	version = r.Varint()
	frac = r.Float64()
	n := r.Length(1)
	if r.Err() == nil && n > 0 {
		parts = make([]int, n)
		for i := range parts {
			parts[i] = int(r.Varint())
		}
	}
	loss = r.String()
	return
}

func asPayloadVec(v any) (la.Vec, error) {
	w, ok := v.(la.Vec)
	if !ok {
		return nil, fmt.Errorf("opt: payload vector decoded as %T", v)
	}
	return w, nil
}
