package opt

import "fmt"

// The separable proximal contract. A composite objective
//
//	F(w) = smooth(w) + ψ(w),   ψ separable: ψ(w) = Σ_j ψ_j(w_j)
//
// splits into a smooth part the gradient kernels handle (inner loss plus the
// L2 ridge term) and a nonsmooth part the drivers apply through the prox
// operator, one coordinate at a time — the linlearn `prox.call_single`
// idiom. Smooth objectives carry the identity prox; ℓ1/elastic-net carry the
// soft-threshold. Drivers that cannot apply a prox (SAGA, SVRG, the remote
// and consensus solvers) reject objectives whose prox is not the identity.

// Prox is the proximal operator of the separable nonsmooth term ψ:
// Call1(v, t) = argmin_u ψ(u)·t + ½(u − v)² for one coordinate.
type Prox interface {
	// Call1 applies the scaled operator prox_{t·ψ}(v) to one coordinate.
	Call1(v, t float64) float64
	// IsIdentity reports ψ ≡ 0, letting hot loops skip the call entirely.
	IsIdentity() bool
	Name() string
}

// IdentityProx is the prox of a smooth objective (ψ ≡ 0).
type IdentityProx struct{}

// Call1 implements Prox.
func (IdentityProx) Call1(v, _ float64) float64 { return v }

// IsIdentity implements Prox.
func (IdentityProx) IsIdentity() bool { return true }

// Name implements Prox.
func (IdentityProx) Name() string { return "identity" }

// L1Prox is the soft-threshold operator of ψ(w) = λ1·‖w‖₁.
type L1Prox struct{ Lambda float64 }

// Call1 implements Prox: soft(v, t·λ1).
func (p L1Prox) Call1(v, t float64) float64 { return SoftThreshold(v, t*p.Lambda) }

// IsIdentity implements Prox.
func (p L1Prox) IsIdentity() bool { return p.Lambda <= 0 }

// Name implements Prox.
func (L1Prox) Name() string { return "l1" }

// ProxOf returns the objective's nonsmooth prox: the soft-threshold for a
// Composite with an ℓ1 term, the identity for every smooth loss (L2 is a
// smooth term and stays on the gradient side).
func ProxOf(loss Loss) Prox {
	if _, _, l1, ok := splitProx(loss); ok && l1 > 0 {
		return L1Prox{Lambda: l1}
	}
	return IdentityProx{}
}

// SoftThreshold is the scalar shrinkage operator prox_{t·|·|}(v):
// sign(v)·max(|v| − t, 0). Two algebraic identities make the lazy
// prox-at-settle path exact (see lazy.go): thresholds compose additively,
// soft(soft(v,a),b) = soft(v,a+b), and commute with positive scaling,
// c·soft(v,t) = soft(c·v, c·t).
func SoftThreshold(v, t float64) float64 {
	if t <= 0 {
		return v
	}
	if v > t {
		return v - t
	}
	if v < -t {
		return v + t
	}
	return 0
}

// l1Of returns the objective's ℓ1 coefficient (0 for smooth losses).
func l1Of(loss Loss) float64 {
	if c, ok := loss.(Composite); ok {
		return c.L1
	}
	return 0
}

// rejectL1 guards solvers without a prox step: silently dropping the ℓ1
// term would report the composite objective while optimizing a different
// one.
func rejectL1(loss Loss, solver string) error {
	if l1Of(loss) > 0 {
		return fmt.Errorf("opt: %s has no proximal step and cannot solve an ℓ1 objective (use sgd, asgd, cd or gcg)", solver)
	}
	return nil
}

// curvOf bounds the second derivative ℓ”(dot, y) of a linear loss — the
// data-independent factor of the diagonal curvature h_j = curv·Σᵢ x_ij² the
// coordinate methods precondition with. Exact for least squares (ℓ” = 2),
// the usual ¼ bound for logistic. Returns 0 for losses without a known
// bound.
func curvOf(lin LinearLoss) float64 {
	switch lin.(type) {
	case LeastSquares:
		return 2
	case Logistic:
		return 0.25
	default:
		return 0
	}
}
