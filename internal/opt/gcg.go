package opt

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/la"
)

// Restart-based generalized conjugate gradient for composite objectives —
// the CG family of the related work (Lu & Chen's conjugate-gradient ℓ1
// solver), run as bulk-synchronous full-gradient rounds on the unified
// runtime. Each round every worker returns its exact gradient sum at the
// broadcast model; the driver combines them into the mean smooth gradient
// g (the λ2 term rides the Composite loss), updates a Polak–Ribière+
// conjugate direction
//
//	β = max(0, g·(g − g_prev)/‖g_prev‖²),  dir ← −g + β·dir
//
// (reset to steepest descent whenever dir stops being a descent direction),
// steps w ← w + α·dir, and applies the ℓ1 prox soft(·, α·λ1) — generalized
// CG in the proximal-gradient sense: the conjugate recursion accelerates
// the smooth part, the prox keeps the composite part exact.
//
// Restarts reuse the checkpoint machinery: every RestartEvery updates the
// runtime's epoch boundary exports the driver state through a Checkpoint
// and immediately re-imports it. The conjugate direction and previous
// gradient are deliberately NOT exported, so the round trip is exactly a
// CG restart — and, by construction, a mid-run preempt/resume lands on the
// same state as a restart at that boundary, which is what makes resumed
// GCG runs bitwise-reproducible at restart boundaries.

// GCGParams configures GCG. The embedded Params supplies the objective,
// step schedule, update budget and checkpoint/preempt/resume hooks;
// SampleFrac is ignored (every round is a full gradient pass) and the
// barrier is forced to BSP.
//
// Mode "greedy" switches from full-gradient conjugate rounds to greedy atom
// rounds: each round the driver's MaxIP selector (internal/la/maxip, shared
// with greedy CD) picks the Atoms steepest coordinates, the workers return
// exact per-atom gradients via the block kernel, and the driver takes one
// proximal step on just those atoms at the scheduled step size — the
// conditional-gradient-type "select the next atoms without an O(d) pass"
// move. There is no conjugate recursion over the changing active set, and
// RestartEvery is ignored; the selector's verification contract (rebuild on
// miss, permanent cyclic fallback on repeated misses) applies unchanged.
type GCGParams struct {
	Params
	RestartEvery int    // updates between conjugate restarts (default 20; full mode)
	Mode         string // "full" (default) or "greedy"
	Atoms        int    // greedy mode: atoms per round (default min(32, cols))

	// exactBelow forwards to the greedy selector's maxip.Options.ExactBelow
	// (the test knob; zero = package default, negative = force the tree).
	exactBelow int
}

func (p *GCGParams) defaults() error {
	if p.RestartEvery < 0 {
		return fmt.Errorf("opt: GCG restart interval %d must be non-negative", p.RestartEvery)
	}
	if p.RestartEvery == 0 {
		p.RestartEvery = 20
	}
	switch p.Mode {
	case "":
		p.Mode = "full"
	case "full", "greedy":
	default:
		return fmt.Errorf("opt: GCG mode %q (full, greedy)", p.Mode)
	}
	if p.Atoms < 0 {
		return fmt.Errorf("opt: GCG atoms %d must be non-negative", p.Atoms)
	}
	p.SampleFrac = 1 // full-gradient rounds; satisfy Params validation
	return p.Params.defaults()
}

// gcgUpdater owns the conjugate-gradient driver state: the model, the
// round's gradient accumulator, and the conjugate recursion (direction and
// previous gradient).
type gcgUpdater struct {
	w      la.Vec
	l1     float64
	acc    la.Vec // round gradient sum across workers
	rows   int
	g      la.Vec // mean gradient scratch
	dir    la.Vec
	gPrev  la.Vec
	hasDir bool
}

func newGCGUpdater(cols int, p *GCGParams) *gcgUpdater {
	_, _, l1, _ := splitProx(p.Loss)
	return &gcgUpdater{
		w: la.NewVec(cols), l1: l1,
		acc: la.NewVec(cols), g: la.NewVec(cols),
		dir: la.NewVec(cols), gPrev: la.NewVec(cols),
	}
}

func (u *gcgUpdater) Model() la.Vec { return u.w }
func (u *gcgUpdater) Settle()       {}

func (u *gcgUpdater) Apply(payload any, attrs *core.Attrs, _ float64) error {
	g, ok := payload.(la.Vec)
	if !ok {
		return fmt.Errorf("unexpected payload %T", payload)
	}
	la.Axpy(1, g, u.acc)
	u.rows += attrs.MiniBatch
	la.PutVec(g)
	return nil
}

func (u *gcgUpdater) FlushRound(alpha float64) (bool, error) {
	rows := u.rows
	u.rows = 0
	if rows == 0 {
		u.acc.Zero()
		return false, nil
	}
	la.ScaleAddInto(u.g, 1/float64(rows), u.acc, 0, u.acc) // g = acc/rows
	u.acc.Zero()

	if !u.hasDir {
		la.ScaleAddInto(u.dir, -1, u.g, 0, u.g)
	} else {
		// Polak–Ribière+ with automatic restart on loss of descent
		denom := la.Dot(u.gPrev, u.gPrev)
		beta := 0.0
		if denom > 0 {
			beta = (la.Dot(u.g, u.g) - la.Dot(u.g, u.gPrev)) / denom
			if beta < 0 {
				beta = 0
			}
		}
		la.ScaleAddInto(u.dir, beta, u.dir, -1, u.g)
		if la.Dot(u.dir, u.g) > 0 {
			la.ScaleAddInto(u.dir, -1, u.g, 0, u.g)
		}
	}
	u.gPrev.CopyFrom(u.g)
	u.hasDir = true

	la.Axpy(alpha, u.dir, u.w)
	if u.l1 > 0 {
		thr := alpha * u.l1
		for j := range u.w {
			u.w[j] = SoftThreshold(u.w[j], thr)
		}
	}
	return true, nil
}

// Export carries only the model and update clock: the conjugate direction
// is transient by design, so a checkpoint round trip is a CG restart.
func (u *gcgUpdater) Export(*Checkpoint) {}

func (u *gcgUpdater) Import(cp *Checkpoint) error {
	if err := importModel(u.w, cp); err != nil {
		return err
	}
	u.hasDir = false
	u.dir.Zero()
	u.gPrev.Zero()
	u.acc.Zero()
	u.rows = 0
	return nil
}

// restart performs the epoch-boundary conjugate restart by literally
// round-tripping the driver state through the checkpoint export/import
// path — the same state transition a preempt/resume at this boundary
// produces.
func (u *gcgUpdater) restart(global int64) error {
	cp := &Checkpoint{Algorithm: "gcg", W: u.w.Clone(), Updates: global}
	u.Export(cp)
	return u.Import(cp)
}

// gcgGreedyUpdater owns the greedy-atom driver state: the model, the MaxIP
// selector, the round's atom set and its combined exact gradients, and the
// residual-delta chain the workers advance on (the same CDDelta machinery
// as coordinate descent, under the "gcg.delta" broadcast id).
type gcgGreedyUpdater struct {
	w          la.Vec
	lin        LinearLoss
	l2, l1     float64
	n          int // dataset rows: kernel gradients are sum-unit, steps mean-unit
	atoms      int
	sel        *gsSelector
	runID      int64
	dispatches int64

	round int64
	block []int32
	g     la.Vec
	got   int
	delta *la.DeltaVec
}

func newGCGGreedyUpdater(d *dataset.Dataset, p *GCGParams) (*gcgGreedyUpdater, error) {
	lin, l2, l1, ok := splitProx(p.Loss)
	if !ok {
		return nil, fmt.Errorf("opt: greedy gcg cannot decompose objective %q into a linear core", p.Loss.Name())
	}
	cols := d.NumCols()
	atoms := p.Atoms
	if atoms == 0 {
		atoms = 32
	}
	if atoms > cols {
		atoms = cols
	}
	u := &gcgGreedyUpdater{
		w: la.NewVec(cols), lin: lin, l2: l2, l1: l1,
		n: d.NumRows(), atoms: atoms,
		runID: cdRunSeq.Add(1),
		g:     la.NewVec(atoms),
	}
	u.sel = newGSSelector(d, lin, l2, l1, u.w, p.exactBelow)
	return u, nil
}

// pickAtoms draws the round's atom set: the selector's top-|score| set, or
// the cyclic cursor once the verification fallback has tripped.
func (u *gcgGreedyUpdater) pickAtoms() []int32 {
	u.dispatches++
	if !u.sel.fallback {
		return append([]int32(nil), u.sel.pick(u.atoms)...)
	}
	d := len(u.w)
	block := make([]int32, u.atoms)
	pos := int(u.dispatches-1) * u.atoms % d
	for k := range block {
		block[k] = int32((pos + k) % d)
	}
	sort.Slice(block, func(a, b int) bool { return block[a] < block[b] })
	return block
}

func (u *gcgGreedyUpdater) exportDelta() CDDelta {
	dd := CDDelta{RunID: u.runID, Round: u.round}
	if u.delta != nil {
		dd.Delta = u.delta.Clone()
	}
	return dd
}

func (u *gcgGreedyUpdater) Model() la.Vec { return u.w }
func (u *gcgGreedyUpdater) Settle()       {}

func (u *gcgGreedyUpdater) Apply(payload any, _ *core.Attrs, _ float64) error {
	part, ok := payload.(BCDPartial)
	if !ok {
		return fmt.Errorf("unexpected payload %T", payload)
	}
	la.Axpy(1, part.G, u.g[:len(part.G)])
	u.got++
	la.PutVec(part.G)
	la.PutVec(part.H) // curvature rides the block kernel but greedy GCG steps by schedule
	return nil
}

func (u *gcgGreedyUpdater) FlushRound(alpha float64) (bool, error) {
	if u.got == 0 {
		u.g.Zero()
		return false, nil
	}
	if !u.sel.fallback {
		u.sel.verify(u.block, u.g[:len(u.block)])
	}
	n := float64(u.n)
	delta := &la.DeltaVec{N: len(u.w)}
	for k, j := range u.block {
		gj := u.g[k]/n + u.l2*u.w[j] // mean-unit composite gradient on atom j
		uj := SoftThreshold(u.w[j]-alpha*gj, alpha*u.l1)
		if d := uj - u.w[j]; d != 0 {
			delta.Idx = append(delta.Idx, j)
			delta.Val = append(delta.Val, d)
			u.w[j] = uj
		}
	}
	if !u.sel.fallback {
		u.sel.advance(delta)
	}
	u.delta = delta
	u.round++
	u.g.Zero()
	u.got = 0
	return true, nil
}

func (u *gcgGreedyUpdater) Export(cp *Checkpoint) { cp.SetInt("dispatches", u.dispatches) }

func (u *gcgGreedyUpdater) Import(cp *Checkpoint) error {
	if err := importModel(u.w, cp); err != nil {
		return err
	}
	// greedy picks are state-dependent: rebuild the selector at the restored
	// model; the counter restores so a later fallback's cursor is stable
	u.dispatches = cp.Int("dispatches")
	u.sel.misses, u.sel.rebuilt, u.sel.fallback = 0, false, false
	u.sel.reset()
	u.round = 0
	u.delta = nil
	u.runID = cdRunSeq.Add(1)
	return nil
}

// greedyGCG runs the atom-selection mode on the block-kernel machinery.
func greedyGCG(ac *core.Context, d *dataset.Dataset, p GCGParams, fstar float64) (*Result, error) {
	u, err := newGCGGreedyUpdater(d, &p)
	if err != nil {
		return nil, err
	}
	return runLoop(ac, d, u, &loopSpec{
		Algo: "GCG-greedy", Name: "gcg", Key: "gcg.w",
		P: &p.Params, Loss: p.Loss, FStar: fstar,
		Target: int64(p.Updates), Publish: pubPlain, Prune: true,
		Barrier: core.BSP(), Round: true,
		Dispatch: func(wBr core.DynBroadcast, sel *core.Selection) (int, error) {
			u.block = u.pickAtoms()
			dBr := ac.ASYNCbroadcast("gcg.delta", u.exportDelta())
			ac.RDD().PruneBroadcast("gcg.delta", 4*ac.RDD().Cluster().NumWorkers())
			return ac.ASYNCreduce(sel, cdKernel(u.lin, 1, wBr, dBr, u.block))
		},
	})
}

// GCG runs restart-based generalized conjugate gradient over the composite
// objective p.Loss. fstar is the reference optimum used for error traces.
func GCG(ac *core.Context, d *dataset.Dataset, p GCGParams, fstar float64) (*Result, error) {
	if err := p.defaults(); err != nil {
		return nil, err
	}
	if p.Mode == "greedy" {
		return greedyGCG(ac, d, p, fstar)
	}
	u := newGCGUpdater(d.NumCols(), &p)
	return runLoop(ac, d, u, &loopSpec{
		Algo: "GCG", Name: "gcg", Key: "gcg.w",
		P: &p.Params, Loss: p.Loss, FStar: fstar,
		Target: int64(p.Updates), Publish: pubEager, Prune: true,
		Barrier: core.BSP(), Round: true,
		EpochLen: int64(p.RestartEvery),
		EpochBegin: func(global int64) error {
			if global == 0 {
				return nil // run start: nothing to restart
			}
			return u.restart(global)
		},
		Dispatch: func(wBr core.DynBroadcast, sel *core.Selection) (int, error) {
			return ac.ASYNCreduce(sel, FullGradKernel(p.Loss, wBr))
		},
	})
}
