package opt

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/la"
)

// Restart-based generalized conjugate gradient for composite objectives —
// the CG family of the related work (Lu & Chen's conjugate-gradient ℓ1
// solver), run as bulk-synchronous full-gradient rounds on the unified
// runtime. Each round every worker returns its exact gradient sum at the
// broadcast model; the driver combines them into the mean smooth gradient
// g (the λ2 term rides the Composite loss), updates a Polak–Ribière+
// conjugate direction
//
//	β = max(0, g·(g − g_prev)/‖g_prev‖²),  dir ← −g + β·dir
//
// (reset to steepest descent whenever dir stops being a descent direction),
// steps w ← w + α·dir, and applies the ℓ1 prox soft(·, α·λ1) — generalized
// CG in the proximal-gradient sense: the conjugate recursion accelerates
// the smooth part, the prox keeps the composite part exact.
//
// Restarts reuse the checkpoint machinery: every RestartEvery updates the
// runtime's epoch boundary exports the driver state through a Checkpoint
// and immediately re-imports it. The conjugate direction and previous
// gradient are deliberately NOT exported, so the round trip is exactly a
// CG restart — and, by construction, a mid-run preempt/resume lands on the
// same state as a restart at that boundary, which is what makes resumed
// GCG runs bitwise-reproducible at restart boundaries.

// GCGParams configures GCG. The embedded Params supplies the objective,
// step schedule, update budget and checkpoint/preempt/resume hooks;
// SampleFrac is ignored (every round is a full gradient pass) and the
// barrier is forced to BSP.
type GCGParams struct {
	Params
	RestartEvery int // updates between conjugate restarts (default 20)
}

func (p *GCGParams) defaults() error {
	if p.RestartEvery < 0 {
		return fmt.Errorf("opt: GCG restart interval %d must be non-negative", p.RestartEvery)
	}
	if p.RestartEvery == 0 {
		p.RestartEvery = 20
	}
	p.SampleFrac = 1 // full-gradient rounds; satisfy Params validation
	return p.Params.defaults()
}

// gcgUpdater owns the conjugate-gradient driver state: the model, the
// round's gradient accumulator, and the conjugate recursion (direction and
// previous gradient).
type gcgUpdater struct {
	w      la.Vec
	l1     float64
	acc    la.Vec // round gradient sum across workers
	rows   int
	g      la.Vec // mean gradient scratch
	dir    la.Vec
	gPrev  la.Vec
	hasDir bool
}

func newGCGUpdater(cols int, p *GCGParams) *gcgUpdater {
	_, _, l1, _ := splitProx(p.Loss)
	return &gcgUpdater{
		w: la.NewVec(cols), l1: l1,
		acc: la.NewVec(cols), g: la.NewVec(cols),
		dir: la.NewVec(cols), gPrev: la.NewVec(cols),
	}
}

func (u *gcgUpdater) Model() la.Vec { return u.w }
func (u *gcgUpdater) Settle()       {}

func (u *gcgUpdater) Apply(payload any, attrs *core.Attrs, _ float64) error {
	g, ok := payload.(la.Vec)
	if !ok {
		return fmt.Errorf("unexpected payload %T", payload)
	}
	la.Axpy(1, g, u.acc)
	u.rows += attrs.MiniBatch
	la.PutVec(g)
	return nil
}

func (u *gcgUpdater) FlushRound(alpha float64) (bool, error) {
	rows := u.rows
	u.rows = 0
	if rows == 0 {
		u.acc.Zero()
		return false, nil
	}
	la.ScaleAddInto(u.g, 1/float64(rows), u.acc, 0, u.acc) // g = acc/rows
	u.acc.Zero()

	if !u.hasDir {
		la.ScaleAddInto(u.dir, -1, u.g, 0, u.g)
	} else {
		// Polak–Ribière+ with automatic restart on loss of descent
		denom := la.Dot(u.gPrev, u.gPrev)
		beta := 0.0
		if denom > 0 {
			beta = (la.Dot(u.g, u.g) - la.Dot(u.g, u.gPrev)) / denom
			if beta < 0 {
				beta = 0
			}
		}
		la.ScaleAddInto(u.dir, beta, u.dir, -1, u.g)
		if la.Dot(u.dir, u.g) > 0 {
			la.ScaleAddInto(u.dir, -1, u.g, 0, u.g)
		}
	}
	u.gPrev.CopyFrom(u.g)
	u.hasDir = true

	la.Axpy(alpha, u.dir, u.w)
	if u.l1 > 0 {
		thr := alpha * u.l1
		for j := range u.w {
			u.w[j] = SoftThreshold(u.w[j], thr)
		}
	}
	return true, nil
}

// Export carries only the model and update clock: the conjugate direction
// is transient by design, so a checkpoint round trip is a CG restart.
func (u *gcgUpdater) Export(*Checkpoint) {}

func (u *gcgUpdater) Import(cp *Checkpoint) error {
	if err := importModel(u.w, cp); err != nil {
		return err
	}
	u.hasDir = false
	u.dir.Zero()
	u.gPrev.Zero()
	u.acc.Zero()
	u.rows = 0
	return nil
}

// restart performs the epoch-boundary conjugate restart by literally
// round-tripping the driver state through the checkpoint export/import
// path — the same state transition a preempt/resume at this boundary
// produces.
func (u *gcgUpdater) restart(global int64) error {
	cp := &Checkpoint{Algorithm: "gcg", W: u.w.Clone(), Updates: global}
	u.Export(cp)
	return u.Import(cp)
}

// GCG runs restart-based generalized conjugate gradient over the composite
// objective p.Loss. fstar is the reference optimum used for error traces.
func GCG(ac *core.Context, d *dataset.Dataset, p GCGParams, fstar float64) (*Result, error) {
	if err := p.defaults(); err != nil {
		return nil, err
	}
	u := newGCGUpdater(d.NumCols(), &p)
	return runLoop(ac, d, u, &loopSpec{
		Algo: "GCG", Name: "gcg", Key: "gcg.w",
		P: &p.Params, Loss: p.Loss, FStar: fstar,
		Target: int64(p.Updates), Publish: pubEager, Prune: true,
		Barrier: core.BSP(), Round: true,
		EpochLen: int64(p.RestartEvery),
		EpochBegin: func(global int64) error {
			if global == 0 {
				return nil // run start: nothing to restart
			}
			return u.restart(global)
		},
		Dispatch: func(wBr core.DynBroadcast, sel *core.Selection) (int, error) {
			return ac.ASYNCreduce(sel, FullGradKernel(p.Loss, wBr))
		},
	})
}
