package opt

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/la"
	"repro/internal/metrics"
	"repro/internal/telemetry"
)

// Params configures an optimization run.
type Params struct {
	Loss       Loss     // defaults to LeastSquares
	Step       Schedule // required
	SampleFrac float64  // mini-batch sampling rate b (per the paper, §6.1)
	Updates    int      // number of model updates to perform

	// Barrier and Filter drive the ASYNCscheduler for asynchronous
	// variants. nil Barrier means ASP (fully asynchronous).
	Barrier core.BarrierFunc
	Filter  core.WorkerFilter

	// StalenessLR applies the Listing 1 staleness-dependent learning-rate
	// modulation: each result's step is divided by its staleness.
	StalenessLR bool

	// Momentum is the heavy-ball coefficient μ ∈ [0,1); 0 disables it.
	Momentum float64

	// InitW warm-starts the model (e.g. from a Checkpoint); nil = zeros.
	InitW la.Vec

	// InitAvgHist warm-starts the SAGA history average (checkpoint resume).
	InitAvgHist la.Vec

	// SnapshotEvery controls trace resolution (model snapshots per updates).
	SnapshotEvery int

	// OnProgress, when non-nil, observes every recorder snapshot as the run
	// progresses — the hook a supervising layer (e.g. the job scheduler)
	// uses to stream live convergence state. Never serialized.
	OnProgress ProgressFunc

	// CheckpointEvery, when positive, has the driver runtime capture a
	// Checkpoint every that many model updates and deliver it to
	// OnCheckpoint. The model is settled before every capture.
	CheckpointEvery int
	// OnCheckpoint observes periodic checkpoints. Never serialized.
	OnCheckpoint func(*Checkpoint)

	// Preempt, when non-nil, is polled at every update boundary; once
	// triggered the run settles, captures a checkpoint, drains, and returns
	// a *PreemptedError carrying it — the hook a preemptive scheduler uses
	// to take the engine away mid-run.
	Preempt *PreemptSignal

	// Resume warm-starts the full driver state (model, update clock,
	// solver-specific accumulators) from a checkpoint; the run continues
	// until the global budget Updates is reached. Supersedes InitW.
	Resume *Checkpoint

	// Trace, when non-nil, receives run-scoped lifecycle events (run_start,
	// epoch_begin, checkpoint, preempted, run_done) from the driver runtime,
	// correlated by the supervising layer's run ID. Never serialized.
	Trace *telemetry.Trace
}

// initModel builds the starting model for a run.
func (p *Params) initModel(cols int) (la.Vec, error) {
	w := la.NewVec(cols)
	if p.InitW != nil {
		if len(p.InitW) != cols {
			return nil, fmt.Errorf("opt: InitW dim %d != %d", len(p.InitW), cols)
		}
		w.CopyFrom(p.InitW)
	}
	return w, nil
}

// stepper applies (optionally momentum-accelerated) gradient steps.
type stepper struct {
	mu  float64
	vel la.Vec
}

func newStepper(mu float64, cols int) *stepper {
	s := &stepper{mu: mu}
	if mu > 0 {
		s.vel = la.NewVec(cols)
	}
	return s
}

// apply performs w += μ·v − alpha·g (heavy ball), or a plain step if μ = 0.
func (s *stepper) apply(w, g la.Vec, alpha float64) {
	if s.mu <= 0 {
		la.Axpy(-alpha, g, w)
		return
	}
	la.ScaleAddInto(s.vel, s.mu, s.vel, -alpha, g) // fused vel = μ·vel − α·g
	la.Axpy(1, s.vel, w)
}

// export/import of the velocity — the stepper's only driver state.
func (s *stepper) export(cp *Checkpoint) { cp.SetVec("vel", s.vel) }

func (s *stepper) importFrom(cp *Checkpoint) {
	if v := cp.Vec("vel"); v != nil && s.vel != nil {
		s.vel.CopyFrom(v)
	}
}

func (p *Params) defaults() error {
	if p.Loss == nil {
		p.Loss = LeastSquares{}
	}
	if p.Step == nil {
		return errors.New("opt: Params.Step is required")
	}
	if p.SampleFrac <= 0 || p.SampleFrac > 1 {
		return fmt.Errorf("opt: sample fraction %v outside (0,1]", p.SampleFrac)
	}
	if p.Updates <= 0 {
		return errors.New("opt: Params.Updates must be positive")
	}
	if p.Barrier == nil {
		p.Barrier = core.ASP()
	}
	if p.Momentum < 0 || p.Momentum >= 1 {
		return fmt.Errorf("opt: momentum %v outside [0,1)", p.Momentum)
	}
	if p.SnapshotEvery <= 0 {
		p.SnapshotEvery = 10
	}
	if p.CheckpointEvery < 0 {
		return fmt.Errorf("opt: CheckpointEvery %d must be non-negative", p.CheckpointEvery)
	}
	return nil
}

// Result bundles a run's trace and final model.
type Result struct {
	Trace *metrics.Trace
	W     la.Vec
}

// syncSGDUpdater is the bulk-synchronous SGD round state: partials fold
// into a roundAccum (sparse partials merge without densifying), and the
// flush applies one averaged, optionally momentum-accelerated step.
type syncSGDUpdater struct {
	w      la.Vec
	st     *stepper
	lambda float64
	l1     float64 // ℓ1 coefficient: eager full-sweep soft-threshold per round
	acc    *roundAccum
	batch  int
	sparse int // samples behind sparse partials (their λ·w is driver-side)
}

func (u *syncSGDUpdater) Model() la.Vec { return u.w }
func (u *syncSGDUpdater) Settle()       {}

func (u *syncSGDUpdater) Apply(payload any, attrs *core.Attrs, _ float64) error {
	switch g := payload.(type) {
	case la.Vec:
		// dense partials already carry the loss's own λ·w_task terms
		u.acc.AddDense(g)
	case *la.DeltaVec:
		// sparse partials carry the inner gradient only; their λ·w terms
		// are restored once per round below (under BSP the workers' model
		// is exactly w, so this is the dense math)
		u.acc.AddSparse(g)
		u.sparse += attrs.MiniBatch
	default:
		return fmt.Errorf("unexpected gradient payload %T", payload)
	}
	u.batch += attrs.MiniBatch
	return nil
}

func (u *syncSGDUpdater) FlushRound(alpha float64) (bool, error) {
	batch, sparse := u.batch, u.sparse
	u.batch, u.sparse = 0, 0
	if batch == 0 {
		u.acc.Reset()
		return false, nil // every worker sampled zero rows; retry round
	}
	ab := alpha / float64(batch)
	needDense := u.st.mu > 0 || (u.lambda > 0 && sparse > 0) || (u.acc.Dense() != nil && u.acc.Sparse() != nil)
	if needDense {
		g := u.acc.Densify()
		if u.lambda > 0 && sparse > 0 {
			la.Axpy(float64(sparse)*u.lambda, u.w, g)
		}
		u.st.apply(u.w, g, ab)
	} else if g := u.acc.Dense(); g != nil {
		u.st.apply(u.w, g, ab)
	} else if s := u.acc.Sparse(); s != nil {
		// pure sparse round: the averaged step touches only the merged
		// support — O(round nnz) on the driver
		s.AxpyDense(-ab, u.w)
	}
	if u.l1 > 0 {
		// under BSP a round is one update, so the prox applies eagerly to
		// every coordinate — the O(d) sweep rides the round barrier
		thr := alpha * u.l1
		for j := range u.w {
			u.w[j] = SoftThreshold(u.w[j], thr)
		}
	}
	u.acc.Reset()
	return true, nil
}

func (u *syncSGDUpdater) Export(cp *Checkpoint) { u.st.export(cp) }
func (u *syncSGDUpdater) Import(cp *Checkpoint) error {
	if err := importModel(u.w, cp); err != nil {
		return err
	}
	u.st.importFrom(cp)
	return nil
}

// SyncSGD is mini-batch SGD with bulk-synchronous rounds (Algorithm 1),
// implemented through the ASYNC engine with a BSP barrier: every round
// broadcasts the model, tasks every worker, waits for all partials, and
// applies one averaged update. fstar is the reference optimum used for
// error traces.
func SyncSGD(ac *core.Context, d *dataset.Dataset, p Params, fstar float64) (*Result, error) {
	if err := p.defaults(); err != nil {
		return nil, err
	}
	w, err := p.initModel(d.NumCols())
	if err != nil {
		return nil, err
	}
	_, lambda, l1, _ := splitProx(p.Loss)
	u := &syncSGDUpdater{
		w:      w,
		st:     newStepper(p.Momentum, d.NumCols()),
		lambda: lambda,
		l1:     l1,
		acc:    newRoundAccum(d.NumCols()),
	}
	return runLoop(ac, d, u, &loopSpec{
		Algo: "SGD", Name: "sgd", Key: "sgd.w",
		P: &p, Loss: p.Loss, FStar: fstar,
		Target: int64(p.Updates), Publish: pubEager, Prune: true,
		Barrier: core.BSP(), Round: true, RoundBudget: true,
		Dispatch: func(wBr core.DynBroadcast, sel *core.Selection) (int, error) {
			return ac.ASYNCreduce(sel, GradKernel(p.Loss, wBr, p.SampleFrac))
		},
	})
}

// asgdUpdater applies one collected gradient payload per model update
// through the shared SGD applier (dense eager, sparse lazy-L2).
type asgdUpdater struct {
	w  la.Vec
	ap *proxApplier
}

func (u *asgdUpdater) Model() la.Vec { return u.w }
func (u *asgdUpdater) Settle()       { u.ap.settle(u.w) }

func (u *asgdUpdater) Apply(payload any, attrs *core.Attrs, alpha float64) error {
	return u.ap.apply(u.w, payload, alpha, attrs.MiniBatch)
}

func (u *asgdUpdater) Export(cp *Checkpoint) { u.ap.st.export(cp) }
func (u *asgdUpdater) Import(cp *Checkpoint) error {
	if err := importModel(u.w, cp); err != nil {
		return err
	}
	u.ap.st.importFrom(cp)
	return nil
}

// ASGD is asynchronous mini-batch SGD (Algorithm 2): the driver broadcasts
// the model, tasks whichever workers the barrier admits, and applies an
// update per collected partial without waiting for stragglers. The barrier
// defaults to ASP; pass core.SSP/MinAvailable/etc. for bounded variants.
func ASGD(ac *core.Context, d *dataset.Dataset, p Params, fstar float64) (*Result, error) {
	if err := p.defaults(); err != nil {
		return nil, err
	}
	w, err := p.initModel(d.NumCols())
	if err != nil {
		return nil, err
	}
	u := &asgdUpdater{w: w, ap: newProxApplier(&p, d.NumCols())}
	return runLoop(ac, d, u, &loopSpec{
		Algo: "ASGD", Name: "asgd", Key: "sgd.w",
		P: &p, Loss: p.Loss, FStar: fstar,
		Target: int64(p.Updates), Publish: pubStamped, Prune: true,
		Dispatch: func(wBr core.DynBroadcast, sel *core.Selection) (int, error) {
			return ac.ASYNCreduce(sel, GradKernel(p.Loss, wBr, p.SampleFrac))
		},
	})
}
