package opt

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/la"
	"repro/internal/metrics"
)

// Params configures an optimization run.
type Params struct {
	Loss       Loss     // defaults to LeastSquares
	Step       Schedule // required
	SampleFrac float64  // mini-batch sampling rate b (per the paper, §6.1)
	Updates    int      // number of model updates to perform

	// Barrier and Filter drive the ASYNCscheduler for asynchronous
	// variants. nil Barrier means ASP (fully asynchronous).
	Barrier core.BarrierFunc
	Filter  core.WorkerFilter

	// StalenessLR applies the Listing 1 staleness-dependent learning-rate
	// modulation: each result's step is divided by its staleness.
	StalenessLR bool

	// Momentum is the heavy-ball coefficient μ ∈ [0,1); 0 disables it.
	Momentum float64

	// InitW warm-starts the model (e.g. from a Checkpoint); nil = zeros.
	InitW la.Vec

	// InitAvgHist warm-starts the SAGA history average (checkpoint resume).
	InitAvgHist la.Vec

	// SnapshotEvery controls trace resolution (model snapshots per updates).
	SnapshotEvery int

	// OnProgress, when non-nil, observes every recorder snapshot as the run
	// progresses — the hook a supervising layer (e.g. the job scheduler)
	// uses to stream live convergence state. Never serialized.
	OnProgress ProgressFunc
}

// initModel builds the starting model for a run.
func (p *Params) initModel(cols int) (la.Vec, error) {
	w := la.NewVec(cols)
	if p.InitW != nil {
		if len(p.InitW) != cols {
			return nil, fmt.Errorf("opt: InitW dim %d != %d", len(p.InitW), cols)
		}
		w.CopyFrom(p.InitW)
	}
	return w, nil
}

// stepper applies (optionally momentum-accelerated) gradient steps.
type stepper struct {
	mu  float64
	vel la.Vec
}

func newStepper(mu float64, cols int) *stepper {
	s := &stepper{mu: mu}
	if mu > 0 {
		s.vel = la.NewVec(cols)
	}
	return s
}

// apply performs w += μ·v − alpha·g (heavy ball), or a plain step if μ = 0.
func (s *stepper) apply(w, g la.Vec, alpha float64) {
	if s.mu <= 0 {
		la.Axpy(-alpha, g, w)
		return
	}
	la.ScaleAddInto(s.vel, s.mu, s.vel, -alpha, g) // fused vel = μ·vel − α·g
	la.Axpy(1, s.vel, w)
}

func (p *Params) defaults() error {
	if p.Loss == nil {
		p.Loss = LeastSquares{}
	}
	if p.Step == nil {
		return errors.New("opt: Params.Step is required")
	}
	if p.SampleFrac <= 0 || p.SampleFrac > 1 {
		return fmt.Errorf("opt: sample fraction %v outside (0,1]", p.SampleFrac)
	}
	if p.Updates <= 0 {
		return errors.New("opt: Params.Updates must be positive")
	}
	if p.Barrier == nil {
		p.Barrier = core.ASP()
	}
	if p.Momentum < 0 || p.Momentum >= 1 {
		return fmt.Errorf("opt: momentum %v outside [0,1)", p.Momentum)
	}
	if p.SnapshotEvery <= 0 {
		p.SnapshotEvery = 10
	}
	return nil
}

// Result bundles a run's trace and final model.
type Result struct {
	Trace *metrics.Trace
	W     la.Vec
}

// drain discards leftover in-flight results so the AC is clean for the next
// run. It returns once nothing is pending or the timeout passes.
func drain(ac *core.Context, timeout time.Duration) {
	deadline := time.Now().Add(timeout)
	for ac.Pending() > 0 || ac.HasNext() {
		if ac.HasNext() {
			if _, err := ac.ASYNCcollect(); err != nil {
				return
			}
			continue
		}
		if time.Now().After(deadline) {
			return
		}
		time.Sleep(time.Millisecond)
	}
}

// newTrace assembles trace metadata after a run.
func newTrace(ac *core.Context, algo string, d *dataset.Dataset, rec *Recorder, loss Loss, fstar float64) *metrics.Trace {
	return &metrics.Trace{
		Algorithm: algo,
		Dataset:   d.Name,
		Workers:   ac.RDD().Cluster().NumWorkers(),
		Straggler: "none", // overwritten by harnesses that inject delays
		Points:    rec.Resolve(d, loss, fstar),
		AvgWait:   ac.Coordinator().WaitTimes(),
		Total:     rec.Total(),
	}
}

// SyncSGD is mini-batch SGD with bulk-synchronous rounds (Algorithm 1),
// implemented through the ASYNC engine with a BSP barrier: every round
// broadcasts the model, tasks every worker, waits for all partials, and
// applies one averaged update. fstar is the reference optimum used for
// error traces.
func SyncSGD(ac *core.Context, d *dataset.Dataset, p Params, fstar float64) (*Result, error) {
	if err := p.defaults(); err != nil {
		return nil, err
	}
	w, err := p.initModel(d.NumCols())
	if err != nil {
		return nil, err
	}
	st := newStepper(p.Momentum, d.NumCols())
	_, lambda, _ := splitLoss(p.Loss)
	rec := p.recorder()
	rec.Force(0, w)
	gSum := la.NewVec(d.NumCols())
	keep := 4 * ac.RDD().Cluster().NumWorkers()
	for k := int64(0); k < int64(p.Updates); k++ {
		wBr := ac.ASYNCbroadcastEager("sgd.w", w.Clone())
		ac.RDD().PruneBroadcast("sgd.w", keep)
		sel, err := ac.ASYNCbarrier(core.BSP(), p.Filter)
		if err != nil {
			return nil, fmt.Errorf("opt: SyncSGD round %d: %w", k, err)
		}
		n, err := ac.ASYNCreduce(sel, GradKernel(p.Loss, wBr, p.SampleFrac))
		if err != nil {
			return nil, err
		}
		gSum.Zero()
		total, sparseBatch := 0, 0
		for i := 0; i < n; i++ {
			tr, err := ac.ASYNCcollectAll()
			if err != nil {
				break // remaining partials were empty samples
			}
			switch g := tr.Payload.(type) {
			case la.Vec:
				la.Axpy(1, g, gSum)
				la.PutVec(g) // recycle the pooled task accumulator
			case *la.DeltaVec:
				// sparse partials carry the inner gradient only; their λ·w
				// terms are restored once per round below (under BSP the
				// workers' model is exactly w, so this is the dense math)
				g.AxpyDense(1, gSum)
				la.PutDelta(g)
				sparseBatch += tr.Attrs.MiniBatch
			default:
				return nil, fmt.Errorf("opt: SyncSGD payload %T", tr.Payload)
			}
			total += tr.Attrs.MiniBatch
		}
		if total == 0 {
			continue // every worker sampled zero rows; retry round
		}
		if lambda > 0 && sparseBatch > 0 {
			la.Axpy(float64(sparseBatch)*lambda, w, gSum)
		}
		st.apply(w, gSum, p.Step.Alpha(k)/float64(total))
		upd := ac.AdvanceClock()
		rec.Maybe(upd, w)
	}
	rec.Finish(ac.Updates(), w)
	drain(ac, 5*time.Second)
	return &Result{Trace: newTrace(ac, "SGD", d, rec, p.Loss, fstar), W: w}, nil
}

// ASGD is asynchronous mini-batch SGD (Algorithm 2): the driver broadcasts
// the model, tasks whichever workers the barrier admits, and applies an
// update per collected partial without waiting for stragglers. The barrier
// defaults to ASP; pass core.SSP/MinAvailable/etc. for bounded variants.
func ASGD(ac *core.Context, d *dataset.Dataset, p Params, fstar float64) (*Result, error) {
	if err := p.defaults(); err != nil {
		return nil, err
	}
	w, err := p.initModel(d.NumCols())
	if err != nil {
		return nil, err
	}
	ap := newSGDApplier(&p, d.NumCols())
	rec := p.recorder()
	rec.Force(0, w)
	updates := int64(0)
	// in-flight tasks reference at most one version per worker, so pruning
	// the driver store to a few multiples of the pool is safe for SGD
	// (no history reads)
	keep := 4 * ac.RDD().Cluster().NumWorkers()
	for updates < int64(p.Updates) {
		// versioned broadcast: if no update landed since the last loop
		// iteration the previous (id, version) handle is reused, workers
		// hit their caches, and no clone is taken
		wBr := ac.ASYNCbroadcastStamped("sgd.w", updates, func() any {
			ap.settle(w)
			return w.Clone()
		})
		ac.RDD().PruneBroadcast("sgd.w", keep)
		sel, err := ac.ASYNCbarrier(p.Barrier, p.Filter)
		if err != nil {
			return nil, fmt.Errorf("opt: ASGD after %d updates: %w", updates, err)
		}
		if _, err := ac.ASYNCreduce(sel, GradKernel(p.Loss, wBr, p.SampleFrac)); err != nil {
			return nil, err
		}
		// Block for the first result, then drain whatever else has arrived
		// (the paper's `while AC.hasNext()` loop).
		for first := true; (first || ac.HasNext()) && updates < int64(p.Updates); first = false {
			tr, err := ac.ASYNCcollectAll()
			if err != nil {
				break
			}
			alpha := p.Step.Alpha(updates)
			if p.StalenessLR {
				alpha = StalenessAdapt(alpha, tr.Attrs.Staleness)
			}
			if err := ap.apply(w, tr.Payload, alpha, tr.Attrs.MiniBatch); err != nil {
				return nil, fmt.Errorf("opt: ASGD: %w", err)
			}
			updates = ac.AdvanceClock()
			if rec.Due(updates) {
				ap.settle(w)
			}
			rec.Maybe(updates, w)
		}
	}
	ap.settle(w)
	rec.Finish(updates, w)
	drain(ac, 5*time.Second)
	return &Result{Trace: newTrace(ac, "ASGD", d, rec, p.Loss, fstar), W: w}, nil
}
