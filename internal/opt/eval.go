package opt

import (
	"fmt"
	"math"

	"repro/internal/dataset"
	"repro/internal/la"
)

// Predict returns the raw scores X·w for every row of d.
func Predict(d *dataset.Dataset, w la.Vec) (la.Vec, error) {
	if d.NumCols() != len(w) {
		return nil, fmt.Errorf("opt: predict dim %d != model dim %d", d.NumCols(), len(w))
	}
	scores := la.NewVec(d.NumRows())
	d.X.MatVec(w, scores)
	return scores, nil
}

// Accuracy computes binary classification accuracy for ±1 labels using
// sign(x·w) as the prediction. Zero scores count as +1.
func Accuracy(d *dataset.Dataset, w la.Vec) (float64, error) {
	scores, err := Predict(d, w)
	if err != nil {
		return 0, err
	}
	if len(scores) == 0 {
		return 0, fmt.Errorf("opt: accuracy of empty dataset")
	}
	correct := 0
	for i, s := range scores {
		pred := 1.0
		if s < 0 {
			pred = -1
		}
		if pred == d.Y[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(scores)), nil
}

// RMSE computes the root-mean-square prediction error on d.
func RMSE(d *dataset.Dataset, w la.Vec) (float64, error) {
	scores, err := Predict(d, w)
	if err != nil {
		return 0, err
	}
	if len(scores) == 0 {
		return 0, fmt.Errorf("opt: RMSE of empty dataset")
	}
	var sum float64
	for i, s := range scores {
		r := s - d.Y[i]
		sum += r * r
	}
	return math.Sqrt(sum / float64(len(scores))), nil
}
