package opt

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/dataset"
	"repro/internal/la"
)

// TestCDGreedyClosedForm: on the decoupled diagonal design, greedy
// Gauss-Southwell selection must land every coordinate on the same
// closed-form elastic-net solution the cyclic pass reaches — the order
// changes, the fixed point does not.
func TestCDGreedyClosedForm(t *testing.T) {
	a := []float64{1.5, -0.8, 2.0, 0.5, 1.0, -1.2, 0.9, 1.8, -0.4, 0.7, 1.1, -2.2}
	y := []float64{2.0, 0.1, -1.5, 0.05, 0.8, -0.02, 1.2, 0.03, 0.3, -0.9, 0.01, 2.5}
	const l2, l1 = 0.1, 0.2
	d := diagDataset(t, a, y)
	n := float64(len(a))

	ac := cdRig(t, d, 2, 4)
	p := CDParams{BlockSize: 4, Mode: "greedy", DampStep: 1}
	p.Loss = Composite{Inner: LeastSquares{}, L2: l2, L1: l1}
	p.Updates = 6
	p.SnapshotEvery = 3
	res, err := CD(ac, d, p, 0)
	if err != nil {
		t.Fatal(err)
	}
	for j := range a {
		want := SoftThreshold(2*a[j]*y[j], n*l1) / (2*a[j]*a[j] + n*l2)
		if math.Abs(res.W[j]-want) > 1e-9 {
			t.Fatalf("w[%d] = %v, closed form %v", j, res.W[j], want)
		}
	}
}

// TestCDGreedySelectorEquivalence is the satellite pin: greedy CD run on
// the exact-scan selector and on the MaxIP tournament tree converges to
// the same objective (and model) at 1e-9 on fixed seeds. The two selectors
// share the tie-break order (score desc, column asc), so the entire block
// sequence — and hence the run — must agree.
func TestCDGreedySelectorEquivalence(t *testing.T) {
	d, err := dataset.Generate(dataset.SynthConfig{
		Name: "gs-eq", Rows: 150, Cols: 600, NNZPerRow: 6, Noise: 0.1, Seed: 41,
	})
	if err != nil {
		t.Fatal(err)
	}
	loss := Composite{Inner: LeastSquares{}, L2: 0.01, L1: 0.004}
	run := func(exactBelow int) la.Vec {
		ac := cdRig(t, d, 1, 3)
		p := CDParams{BlockSize: 16, Mode: "greedy", DampStep: 0.9, exactBelow: exactBelow}
		p.Loss = loss
		p.Updates = 30
		p.SnapshotEvery = 10
		res, err := CD(ac, d, p, 0)
		if err != nil {
			t.Fatal(err)
		}
		return res.W
	}
	wTree := run(-1)      // force the tournament tree
	wScan := run(1 << 30) // force the exact linear scan
	if !la.Equal(wTree, wScan, 1e-9) {
		t.Fatal("tree-selector and scan-selector greedy CD diverged")
	}
	fTree := Objective(d, loss, wTree)
	fScan := Objective(d, loss, wScan)
	if math.Abs(fTree-fScan) > 1e-9*math.Max(1, math.Abs(fScan)) {
		t.Fatalf("objectives diverged: tree %v vs scan %v", fTree, fScan)
	}
}

// illCondDataset builds the concentrated-signal design greedy selection is
// for: `heavy` strong columns at the END of the index range carry all of
// the label signal (each row stores exactly one heavy entry, so the heavy
// columns are row-disjoint — no intra-block coupling), while a long tail of
// weak columns carries only noise. A cyclic cursor starting at column 0
// burns most of a pass before it ever touches signal; greedy jumps straight
// to it.
func illCondDataset(t testing.TB, rows, cols, heavy int, seed int64) *dataset.Dataset {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	const tailPerRow = 5
	m := la.NewCSR(rows, cols, rows*(tailPerRow+1))
	hbase := cols - heavy
	w := la.NewVec(cols)
	for j := 0; j < heavy; j++ {
		w[hbase+j] = 1 + float64(j%3)
	}
	for i := 0; i < rows; i++ {
		seen := map[int32]bool{}
		idx := make([]int32, 0, tailPerRow+1)
		for len(idx) < tailPerRow {
			j := int32(rng.Intn(hbase))
			if !seen[j] {
				seen[j] = true
				idx = append(idx, j)
			}
		}
		idx = append(idx, int32(hbase+i%heavy))
		sort.Slice(idx, func(a, b int) bool { return idx[a] < idx[b] })
		val := make([]float64, len(idx))
		for k, j := range idx {
			if int(j) >= hbase {
				val[k] = 10
			} else {
				val[k] = 0.3 * rng.NormFloat64()
			}
		}
		if err := m.AppendRow(la.SparseVec{Idx: idx, Val: val, N: cols}); err != nil {
			t.Fatal(err)
		}
	}
	y := la.NewVec(rows)
	m.MatVec(w, y)
	for i := range y {
		y[i] += 0.01 * rng.NormFloat64()
	}
	return &dataset.Dataset{Name: "ill-cond", X: m, Y: y}
}

// TestCDGreedyBeatsCyclic: on the concentrated-signal design, greedy
// selection reaches a strictly lower objective than cyclic order given the
// same round budget — the budget is far too small for a full cyclic pass,
// so cursor order barely touches the heavy coordinates.
func TestCDGreedyBeatsCyclic(t *testing.T) {
	d := illCondDataset(t, 200, 512, 8, 47)
	loss := Composite{Inner: LeastSquares{}, L2: 0.001}
	run := func(mode string) float64 {
		ac := cdRig(t, d, 1, 2)
		p := CDParams{BlockSize: 8, Mode: mode, DampStep: 1}
		p.Loss = loss
		p.Updates = 12 // cyclic needs 64 rounds for one full pass
		p.SnapshotEvery = 4
		res, err := CD(ac, d, p, 0)
		if err != nil {
			t.Fatal(err)
		}
		return Objective(d, loss, res.W)
	}
	fGreedy := run("greedy")
	fCyclic := run("cyclic")
	if fGreedy >= fCyclic {
		t.Fatalf("greedy %v did not beat cyclic %v on concentrated signal", fGreedy, fCyclic)
	}
	if fGreedy > fCyclic*0.05 {
		t.Fatalf("greedy %v should be far below cyclic %v at this budget", fGreedy, fCyclic)
	}
}

// TestGSSelectorVerifyContract exercises the driver-side half of the
// correctness contract directly: agreement counts a hit, a disagreement
// triggers one rebuild, and a second consecutive disagreement (the rebuild
// did not cure it) trips the permanent cyclic fallback.
func TestGSSelectorVerifyContract(t *testing.T) {
	d, err := dataset.Generate(dataset.SynthConfig{
		Name: "gs-verify", Rows: 60, Cols: 100, NNZPerRow: 5, Noise: 0.1, Seed: 53,
	})
	if err != nil {
		t.Fatal(err)
	}
	w := la.NewVec(d.NumCols())
	s := newGSSelector(d, LeastSquares{}, 0.01, 0, w, 0)
	block := append([]int32(nil), s.pick(6)...)

	exact := la.NewVec(len(block))
	for k, j := range block {
		exact[k] = s.ix.Score(j)
	}
	if !s.verify(block, exact) || s.rebuilt || s.fallback {
		t.Fatal("exact gradients must verify as a hit")
	}

	bad := exact.Clone()
	bad[0] += 1000
	if !s.verify(block, bad) {
		t.Fatal("first miss must rebuild and stay greedy")
	}
	if !s.rebuilt || s.fallback {
		t.Fatalf("after first miss: rebuilt=%v fallback=%v", s.rebuilt, s.fallback)
	}
	if s.verify(block, bad) {
		t.Fatal("second consecutive miss must trip the fallback")
	}
	if !s.fallback {
		t.Fatal("fallback flag not set")
	}
	if s.verify(block, exact) {
		t.Fatal("fallback must be permanent")
	}
}

// TestCDGreedyResume: a greedy run preempted at a checkpoint and resumed
// must still reach the diagonal design's closed form — the selector
// rebuilds from the restored model rather than replaying draws.
func TestCDGreedyResume(t *testing.T) {
	a := []float64{1.5, -0.8, 2.0, 0.5, 1.0, -1.2, 0.9, 1.8}
	y := []float64{2.0, 0.1, -1.5, 0.05, 0.8, -0.02, 1.2, 0.03}
	const l2, l1 = 0.1, 0.1
	d := diagDataset(t, a, y)
	n := float64(len(a))

	var cp *Checkpoint
	{
		ac := cdRig(t, d, 1, 2)
		p := CDParams{BlockSize: 2, Mode: "greedy", DampStep: 1}
		p.Loss = Composite{Inner: LeastSquares{}, L2: l2, L1: l1}
		p.Updates = 2
		p.SnapshotEvery = 1
		p.CheckpointEvery = 1
		p.OnCheckpoint = func(c *Checkpoint) { cp = c }
		if _, err := CD(ac, d, p, 0); err != nil {
			t.Fatal(err)
		}
	}
	if cp == nil {
		t.Fatal("no checkpoint emitted")
	}
	ac := cdRig(t, d, 1, 2)
	p := CDParams{BlockSize: 2, Mode: "greedy", DampStep: 1}
	p.Loss = Composite{Inner: LeastSquares{}, L2: l2, L1: l1}
	p.Updates = 8
	p.SnapshotEvery = 2
	p.Resume = cp
	res, err := CD(ac, d, p, 0)
	if err != nil {
		t.Fatal(err)
	}
	for j := range a {
		want := SoftThreshold(2*a[j]*y[j], n*l1) / (2*a[j]*a[j] + n*l2)
		if math.Abs(res.W[j]-want) > 1e-9 {
			t.Fatalf("w[%d] = %v, closed form %v after resume", j, res.W[j], want)
		}
	}
}
