package opt

import (
	"testing"

	"repro/internal/la"
)

// TestGCGConvergesLS: generalized CG on plain least squares converges on
// the shared rig.
func TestGCGConvergesLS(t *testing.T) {
	r := newRig(t, 2, 4, nil)
	p := GCGParams{RestartEvery: 10}
	p.Step = Constant{A: 0.05}
	p.Updates = 60
	p.SnapshotEvery = 10
	res, err := GCG(r.ac, r.d, p, r.fstar)
	if err != nil {
		t.Fatal(err)
	}
	r.assertConverged(t, res, 4)
}

// TestGCGElasticNet: the prox step keeps the ℓ1 term exact — the composite
// objective decreases and stays below the smooth-only start.
func TestGCGElasticNet(t *testing.T) {
	r := newRig(t, 1, 2, nil)
	loss := Composite{Inner: LeastSquares{}, L2: 0.02, L1: 0.01}
	p := GCGParams{RestartEvery: 8}
	p.Loss = loss
	p.Step = Constant{A: 0.05}
	p.Updates = 40
	p.SnapshotEvery = 10
	res, err := GCG(r.ac, r.d, p, 0)
	if err != nil {
		t.Fatal(err)
	}
	f0 := Objective(r.d, loss, la.NewVec(r.d.NumCols()))
	if f := Objective(r.d, loss, res.W); f >= f0 {
		t.Fatalf("GCG did not reduce the composite objective: %v → %v", f0, f)
	}
}

// TestGCGRestartIsCheckpointRoundTrip pins the restart mechanism to the
// checkpoint contract: a restart at an epoch boundary must leave the
// updater in exactly the state a checkpoint export/import produces (model
// preserved bitwise, conjugate direction and gradient memory dropped).
func TestGCGRestartIsCheckpointRoundTrip(t *testing.T) {
	u := newGCGUpdater(4, &GCGParams{})
	copy(u.w, []float64{1, -2, 3, -4})
	copy(u.dir, []float64{0.5, 0.5, 0.5, 0.5})
	copy(u.gPrev, []float64{1, 1, 1, 1})
	u.hasDir = true
	wBefore := u.w.Clone()

	if err := u.restart(7); err != nil {
		t.Fatal(err)
	}
	if !la.Equal(u.w, wBefore, 0) {
		t.Fatal("restart changed the model")
	}
	if u.hasDir {
		t.Fatal("restart kept the conjugate direction")
	}
	for j := range u.dir {
		if u.dir[j] != 0 || u.gPrev[j] != 0 {
			t.Fatal("restart kept direction/gradient memory")
		}
	}
}
