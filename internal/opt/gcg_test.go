package opt

import (
	"testing"

	"repro/internal/la"
)

// TestGCGConvergesLS: generalized CG on plain least squares converges on
// the shared rig.
func TestGCGConvergesLS(t *testing.T) {
	r := newRig(t, 2, 4, nil)
	p := GCGParams{RestartEvery: 10}
	p.Step = Constant{A: 0.05}
	p.Updates = 60
	p.SnapshotEvery = 10
	res, err := GCG(r.ac, r.d, p, r.fstar)
	if err != nil {
		t.Fatal(err)
	}
	r.assertConverged(t, res, 4)
}

// TestGCGElasticNet: the prox step keeps the ℓ1 term exact — the composite
// objective decreases and stays below the smooth-only start.
func TestGCGElasticNet(t *testing.T) {
	r := newRig(t, 1, 2, nil)
	loss := Composite{Inner: LeastSquares{}, L2: 0.02, L1: 0.01}
	p := GCGParams{RestartEvery: 8}
	p.Loss = loss
	p.Step = Constant{A: 0.05}
	p.Updates = 40
	p.SnapshotEvery = 10
	res, err := GCG(r.ac, r.d, p, 0)
	if err != nil {
		t.Fatal(err)
	}
	f0 := Objective(r.d, loss, la.NewVec(r.d.NumCols()))
	if f := Objective(r.d, loss, res.W); f >= f0 {
		t.Fatalf("GCG did not reduce the composite objective: %v → %v", f0, f)
	}
}

// TestGCGRestartIsCheckpointRoundTrip pins the restart mechanism to the
// checkpoint contract: a restart at an epoch boundary must leave the
// updater in exactly the state a checkpoint export/import produces (model
// preserved bitwise, conjugate direction and gradient memory dropped).
func TestGCGRestartIsCheckpointRoundTrip(t *testing.T) {
	u := newGCGUpdater(4, &GCGParams{})
	copy(u.w, []float64{1, -2, 3, -4})
	copy(u.dir, []float64{0.5, 0.5, 0.5, 0.5})
	copy(u.gPrev, []float64{1, 1, 1, 1})
	u.hasDir = true
	wBefore := u.w.Clone()

	if err := u.restart(7); err != nil {
		t.Fatal(err)
	}
	if !la.Equal(u.w, wBefore, 0) {
		t.Fatal("restart changed the model")
	}
	if u.hasDir {
		t.Fatal("restart kept the conjugate direction")
	}
	for j := range u.dir {
		if u.dir[j] != 0 || u.gPrev[j] != 0 {
			t.Fatal("restart kept direction/gradient memory")
		}
	}
}

// TestGCGGreedyConverges: greedy atom selection on the concentrated-signal
// design converges, reduces the composite objective far faster than the
// same budget of full-gradient rounds spends on tail coordinates, and the
// two selector backends (tree / exact scan) agree at 1e-9.
func TestGCGGreedyConverges(t *testing.T) {
	d := illCondDataset(t, 200, 512, 8, 61)
	loss := Composite{Inner: LeastSquares{}, L2: 0.001, L1: 0.0005}
	run := func(exactBelow int) la.Vec {
		ac := cdRig(t, d, 1, 2)
		p := GCGParams{Mode: "greedy", Atoms: 8, exactBelow: exactBelow}
		p.Loss = loss
		p.Step = Constant{A: 0.02}
		p.Updates = 60
		p.SnapshotEvery = 10
		res, err := GCG(ac, d, p, 0)
		if err != nil {
			t.Fatal(err)
		}
		return res.W
	}
	wTree := run(-1)
	wScan := run(1 << 30)
	if !la.Equal(wTree, wScan, 1e-9) {
		t.Fatal("tree-selector and scan-selector greedy GCG diverged")
	}
	f0 := Objective(d, loss, la.NewVec(d.NumCols()))
	if f := Objective(d, loss, wTree); f >= f0*0.1 {
		t.Fatalf("greedy GCG barely moved: %v → %v", f0, f)
	}
}

// TestGCGModeValidation: unknown modes and negative atom counts error out.
func TestGCGModeValidation(t *testing.T) {
	r := newRig(t, 1, 1, nil)
	p := GCGParams{Mode: "sideways"}
	p.Step = Constant{A: 0.05}
	p.Updates = 1
	if _, err := GCG(r.ac, r.d, p, 0); err == nil {
		t.Fatal("unknown GCG mode accepted")
	}
	p = GCGParams{Atoms: -1}
	p.Step = Constant{A: 0.05}
	p.Updates = 1
	if _, err := GCG(r.ac, r.d, p, 0); err == nil {
		t.Fatal("negative atom count accepted")
	}
}

// TestGCGGreedyResume: a greedy GCG run preempted at a checkpoint and
// resumed matches the uninterrupted run at 1e-9 — atom picks re-derive
// from the restored model (the selector rebuilds rather than replaying
// draws), and the step schedule continues from the restored update count.
func TestGCGGreedyResume(t *testing.T) {
	d := illCondDataset(t, 120, 256, 8, 71)
	loss := Composite{Inner: LeastSquares{}, L2: 0.001, L1: 0.0005}
	params := func() GCGParams {
		p := GCGParams{Mode: "greedy", Atoms: 8}
		p.Loss = loss
		p.Step = Constant{A: 0.02}
		p.SnapshotEvery = 10
		return p
	}

	full := params()
	full.Updates = 30
	res, err := GCG(cdRig(t, d, 1, 2), d, full, 0)
	if err != nil {
		t.Fatal(err)
	}

	var cp *Checkpoint
	head := params()
	head.Updates = 10
	head.CheckpointEvery = 10
	head.OnCheckpoint = func(c *Checkpoint) { cp = c }
	if _, err := GCG(cdRig(t, d, 1, 2), d, head, 0); err != nil {
		t.Fatal(err)
	}
	if cp == nil {
		t.Fatal("no checkpoint emitted")
	}
	tail := params()
	tail.Updates = 30
	tail.Resume = cp
	resumed, err := GCG(cdRig(t, d, 1, 2), d, tail, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !la.Equal(resumed.W, res.W, 1e-9) {
		t.Fatal("resumed greedy GCG diverged from the uninterrupted run")
	}
}

// TestGCGGreedyFallbackCursor: once the verification fallback trips, atom
// picks come from a deterministic cyclic cursor — consecutive, sorted,
// wrapping blocks keyed off the dispatch counter.
func TestGCGGreedyFallbackCursor(t *testing.T) {
	d := illCondDataset(t, 60, 40, 4, 73)
	p := GCGParams{Mode: "greedy", Atoms: 16}
	p.Loss = Composite{Inner: LeastSquares{}, L2: 0.01}
	u, err := newGCGGreedyUpdater(d, &p)
	if err != nil {
		t.Fatal(err)
	}
	u.sel.fallback = true
	seen := map[int32]bool{}
	for r := 0; r < 3; r++ {
		block := u.pickAtoms()
		if len(block) != 16 {
			t.Fatalf("pick %d: got %d atoms, want 16", r, len(block))
		}
		for k := 1; k < len(block); k++ {
			if block[k] <= block[k-1] {
				t.Fatalf("pick %d not sorted ascending: %v", r, block)
			}
		}
		for _, j := range block {
			if int(j) >= d.NumCols() {
				t.Fatalf("pick %d out of range: %v", r, block)
			}
			seen[j] = true
		}
	}
	if len(seen) != 40 { // 3 picks × 16 atoms wrap the 40 columns (48 mod 40)
		t.Fatalf("cyclic cursor covered %d/40 columns across 3 wrapping picks", len(seen))
	}
}
