package opt

import (
	"fmt"
	"math"
)

// Schedule yields the step size for the k-th model update (k starts at 0).
type Schedule interface {
	Alpha(k int64) float64
	Name() string
}

// Constant is a fixed step size (the paper's SAGA tuning).
type Constant struct{ A float64 }

// Alpha implements Schedule.
func (c Constant) Alpha(int64) float64 { return c.A }

// Name implements Schedule.
func (c Constant) Name() string { return fmt.Sprintf("const(%g)", c.A) }

// InvSqrt is Mllib's decay: α_k = A/√(k+1) (the paper's SGD tuning, §6.1).
type InvSqrt struct{ A float64 }

// Alpha implements Schedule.
func (s InvSqrt) Alpha(k int64) float64 { return s.A / math.Sqrt(float64(k+1)) }

// Name implements Schedule.
func (s InvSqrt) Name() string { return fmt.Sprintf("invsqrt(%g)", s.A) }

// AsyncDecay is the decaying schedule for asynchronous variants: the
// paper's heuristic divides the synchronous initial step by the worker
// count, and because each synchronous round corresponds to ~P asynchronous
// updates, the decay index is stretched by P as well:
//
//	α_j = (A/P) / √(j/P + 1)
//
// Without the stretch, a 1/√t schedule indexed by raw async updates decays
// √P too fast and the asynchronous run stalls.
type AsyncDecay struct {
	A       float64 // synchronous initial step
	Workers float64 // P
}

// Alpha implements Schedule.
func (s AsyncDecay) Alpha(k int64) float64 {
	return s.A / s.Workers / math.Sqrt(float64(k)/s.Workers+1)
}

// Name implements Schedule.
func (s AsyncDecay) Name() string { return fmt.Sprintf("async(%g,P=%g)", s.A, s.Workers) }

// Polynomial is the classical α_k = a/(b + c·k) form discussed in §2.
type Polynomial struct{ A, B, C float64 }

// Alpha implements Schedule.
func (p Polynomial) Alpha(k int64) float64 { return p.A / (p.B + p.C*float64(k)) }

// Name implements Schedule.
func (p Polynomial) Name() string { return fmt.Sprintf("poly(%g,%g,%g)", p.A, p.B, p.C) }

// Scaled divides a base schedule by a constant factor — the paper's
// heuristic of running asynchronous variants at (sync step)/(num workers).
type Scaled struct {
	Base   Schedule
	Factor float64
}

// Alpha implements Schedule.
func (s Scaled) Alpha(k int64) float64 { return s.Base.Alpha(k) / s.Factor }

// Name implements Schedule.
func (s Scaled) Name() string { return fmt.Sprintf("%s/%g", s.Base.Name(), s.Factor) }

// StalenessAdapt applies the Listing 1 modulation: the effective step for a
// result with staleness τ is α/max(1, τ) — the staleness-dependent learning
// rate technique of Zhang et al. the paper demonstrates.
func StalenessAdapt(alpha float64, staleness int64) float64 {
	if staleness > 1 {
		return alpha / float64(staleness)
	}
	return alpha
}
