package opt

import (
	"time"

	"repro/internal/dataset"
	"repro/internal/la"
	"repro/internal/metrics"
)

// snapshot is a timestamped copy of the model; errors are computed after
// the run so objective evaluation never perturbs the timing being measured.
type snapshot struct {
	elapsed time.Duration
	updates int64
	w       la.Vec
}

// Recorder captures model snapshots every `every` updates (plus the first
// and the moment Finish is called).
type Recorder struct {
	start time.Time
	every int
	snaps []snapshot
	total time.Duration
}

// NewRecorder starts the clock. every <= 0 disables periodic snapshots
// (only start/finish are kept).
func NewRecorder(every int) *Recorder {
	return &Recorder{start: time.Now(), every: every}
}

// Maybe records a snapshot if the update count hits the cadence.
func (r *Recorder) Maybe(updates int64, w la.Vec) {
	if r.every > 0 && updates%int64(r.every) == 0 {
		r.snaps = append(r.snaps, snapshot{time.Since(r.start), updates, w.Clone()})
	}
}

// Force records a snapshot unconditionally.
func (r *Recorder) Force(updates int64, w la.Vec) {
	r.snaps = append(r.snaps, snapshot{time.Since(r.start), updates, w.Clone()})
}

// Finish stamps the total duration and records the final model.
func (r *Recorder) Finish(updates int64, w la.Vec) {
	r.total = time.Since(r.start)
	r.snaps = append(r.snaps, snapshot{r.total, updates, w.Clone()})
}

// Resolve evaluates every snapshot against the dataset and reference
// optimum, producing the convergence trace.
func (r *Recorder) Resolve(d *dataset.Dataset, loss Loss, fstar float64) []metrics.TracePoint {
	pts := make([]metrics.TracePoint, 0, len(r.snaps))
	for _, s := range r.snaps {
		pts = append(pts, metrics.TracePoint{
			Time:    s.elapsed,
			Updates: s.updates,
			Error:   Objective(d, loss, s.w) - fstar,
		})
	}
	return pts
}

// Total returns the stamped run duration.
func (r *Recorder) Total() time.Duration { return r.total }
