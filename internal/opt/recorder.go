package opt

import (
	"time"

	"repro/internal/dataset"
	"repro/internal/la"
	"repro/internal/metrics"
)

// snapshot is a timestamped copy of the model; errors are computed after
// the run so objective evaluation never perturbs the timing being measured.
type snapshot struct {
	elapsed time.Duration
	updates int64
	w       la.Vec
}

// Progress is one in-run progress sample, delivered through a ProgressFunc
// every time the recorder takes a snapshot. W is the snapshot's own copy of
// the model: receivers may read or retain it but must not mutate it (the
// trace is resolved from the same backing array after the run).
type Progress struct {
	Updates int64
	Elapsed time.Duration
	Final   bool // true for the Finish snapshot
	W       la.Vec
}

// ProgressFunc receives in-run progress samples. It is called synchronously
// on the driver goroutine, so implementations should be quick or hand off.
type ProgressFunc func(Progress)

// Recorder captures model snapshots every `every` updates (plus the first
// and the moment Finish is called).
type Recorder struct {
	start      time.Time
	every      int
	snaps      []snapshot
	total      time.Duration
	onProgress ProgressFunc
}

// NewRecorder starts the clock. every <= 0 disables periodic snapshots
// (only start/finish are kept).
func NewRecorder(every int) *Recorder {
	return &Recorder{start: time.Now(), every: every}
}

// Notify registers fn to observe every snapshot as it is taken — the hook
// solvers use to report per-epoch progress to a supervising layer (e.g. the
// job scheduler) without waiting for the final Result. nil is allowed.
func (r *Recorder) Notify(fn ProgressFunc) { r.onProgress = fn }

func (r *Recorder) record(elapsed time.Duration, updates int64, w la.Vec, final bool) {
	wc := w.Clone()
	r.snaps = append(r.snaps, snapshot{elapsed, updates, wc})
	if r.onProgress != nil {
		r.onProgress(Progress{Updates: updates, Elapsed: elapsed, Final: final, W: wc})
	}
}

// Due reports whether Maybe(updates, …) would record a snapshot — drivers
// with lazily deferred update terms check it so they settle the model only
// when a snapshot will actually read it.
func (r *Recorder) Due(updates int64) bool {
	return r.every > 0 && updates%int64(r.every) == 0
}

// Maybe records a snapshot if the update count hits the cadence.
func (r *Recorder) Maybe(updates int64, w la.Vec) {
	if r.every > 0 && updates%int64(r.every) == 0 {
		r.record(time.Since(r.start), updates, w, false)
	}
}

// Force records a snapshot unconditionally.
func (r *Recorder) Force(updates int64, w la.Vec) {
	r.record(time.Since(r.start), updates, w, false)
}

// Finish stamps the total duration and records the final model.
func (r *Recorder) Finish(updates int64, w la.Vec) {
	r.total = time.Since(r.start)
	r.record(r.total, updates, w, true)
}

// Resolve evaluates every snapshot against the dataset and reference
// optimum, producing the convergence trace.
func (r *Recorder) Resolve(d *dataset.Dataset, loss Loss, fstar float64) []metrics.TracePoint {
	pts := make([]metrics.TracePoint, 0, len(r.snaps))
	for _, s := range r.snaps {
		pts = append(pts, metrics.TracePoint{
			Time:    s.elapsed,
			Updates: s.updates,
			Error:   Objective(d, loss, s.w) - fstar,
		})
	}
	return pts
}

// Total returns the stamped run duration.
func (r *Recorder) Total() time.Duration { return r.total }

// recorder builds a run's snapshot recorder with the params' progress hook
// already attached, so every solver reports through the same channel.
func (p *Params) recorder() *Recorder {
	r := NewRecorder(p.SnapshotEvery)
	r.Notify(p.OnProgress)
	return r
}
