package opt

import (
	"encoding/gob"
	"fmt"
	"math/rand"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/la"
)

// Allocation discipline: the kernels in this file are the per-task compute
// path of every solver, so they are written to allocate nothing in steady
// state. Accumulators that travel with the task result come from la.GetVec
// (the driver returns them with la.PutVec once the update is applied),
// purely local temporaries come from the worker's Env scratch store, and
// sampling uses the per-worker RNG reseeded with the task seed. The only
// unavoidable per-task allocation is boxing the result payload into `any`.
// alloc_test.go pins the inner loops at zero allocations per run.

// SagaPartial is a worker's locally reduced SAGA contribution: the sum of
// current-gradient terms, the sum of historical-gradient terms, and the
// sample count (carried in the result attributes).
type SagaPartial struct {
	Sum     la.Vec // Σ_{i∈S} ∇f_i(w_current)
	HistSum la.Vec // Σ_{i∈S} ∇f_i(w_hist(i))
}

func init() {
	gob.Register(la.Vec{})
	gob.Register(SagaPartial{})
}

// asVec extracts the dense model vector from a broadcast value.
func asVec(v any) (la.Vec, error) {
	w, ok := v.(la.Vec)
	if !ok {
		return nil, fmt.Errorf("opt: broadcast value is %T, want la.Vec", v)
	}
	return w, nil
}

// gradSweep is the steady-state mini-batch inner loop shared by the
// gradient kernels: sample each row of partition p with probability frac
// and accumulate the per-sample loss gradient at w into g, returning the
// number of sampled rows. It is allocation-free (asserted by
// TestGradSweepAllocFree): row views are zero-copy CSR slices and the loss
// accumulates through the unrolled la kernels.
func gradSweep(loss Loss, p *dataset.Partition, rng *rand.Rand, frac float64, w, g la.Vec) int {
	n := 0
	for local := 0; local < p.NumRows(); local++ {
		if rng.Float64() >= frac {
			continue
		}
		loss.AddGrad(p.X.Row(local), p.Y[local], w, g)
		n++
	}
	return n
}

// GradKernel builds the mini-batch gradient kernel used by SGD and ASGD:
// sample each row of the worker's partitions with probability frac, sum the
// per-sample loss gradients at the broadcast model, and return the
// (unnormalized) gradient sum. The driver divides by the batch size from
// the result attributes. frac is validated by the drivers' defaults() (and
// by the remote op handlers for args that arrive over a wire) so the hot
// path carries no range check.
//
// Sparse-delta path: when the loss is linear (see LinearLoss) and every
// partition of the task sits below SparseDensityThreshold, the kernel
// accumulates only touched coordinates and returns a pooled *la.DeltaVec —
// O(nnz) per task. For an L2-regularized loss the sparse payload carries
// the inner gradient only; the driver applies the shrinkage lazily
// (lazy.go). Dense partitions keep the dense path unchanged.
//
// Reproducibility contract: sampling draws from the worker's reusable RNG
// reseeded with the task seed, which yields exactly the stream of
// rand.New(rand.NewSource(seed)) — the same seed always selects the same
// sample set regardless of what ran on the worker before (see
// TestGradKernelSeedReproducibility). The sparse sweep consumes the RNG
// identically, so both paths sample the same rows.
func GradKernel(loss Loss, wBr core.DynBroadcast, frac float64) core.Kernel {
	// splitProx, not splitLoss: an ℓ1 term never disqualifies the sparse
	// path — both penalties are applied driver-side (lazy L2 shrinkage,
	// prox-at-settle ℓ1), so sparse payloads always carry the inner
	// gradient only
	lin, _, _, linOK := splitProx(loss)
	return func(env *cluster.Env, parts []int, seed int64) (any, int, error) {
		wv, err := wBr.Value(env)
		if err != nil {
			return nil, 0, err
		}
		w, err := asVec(wv)
		if err != nil {
			return nil, 0, err
		}
		rng := env.Scratch().Rand(seed)
		if linOK && sparseTaskViable(env, parts, frac, len(w)) {
			acc := env.Scratch().Delta("opt.grad.acc", len(w))
			acc.Reset()
			n := 0
			for _, pi := range parts {
				p, err := env.Partition(pi)
				if err != nil {
					return nil, 0, err
				}
				n += gradSweepSparse(lin, p, rng, frac, w, acc)
			}
			if n == 0 {
				return nil, 0, nil // empty sample: no result
			}
			return acc.Compact(), n, nil
		}
		g := la.GetVec(len(w))
		n := 0
		for _, pi := range parts {
			p, err := env.Partition(pi)
			if err != nil {
				la.PutVec(g)
				return nil, 0, err
			}
			n += gradSweep(loss, p, rng, frac, w, g)
		}
		if n == 0 {
			la.PutVec(g)
			return nil, 0, nil // empty sample: no result
		}
		return g, n, nil
	}
}

// SagaKernel builds the historical-gradient kernel of Algorithm 4: for each
// sampled row it computes the gradient at the current model AND at the
// model version recorded for that row (w_br.value(index)), then records the
// current version for the row. Rows never touched contribute zero
// historical gradient (the standard zero-initialized SAGA table, which is
// also the only initialization under which Algorithm 3's
// `averageHistory = 0` start is consistent). Sampling follows GradKernel's
// reproducibility contract (per-worker RNG reseeded with the task seed).
// frac is validated by the drivers' defaults(), not here.
//
// Sparse-delta path: for an unregularized linear loss over partitions below
// SparseDensityThreshold the kernel returns a SagaDelta of pooled sparse
// sums (the current and historical gradients of a sampled row share its
// support); the driver applies the update — including the dense avgHist
// drift — lazily in O(nnz) (see saga.go).
func SagaKernel(loss Loss, wBr core.DynBroadcast, frac float64) core.Kernel {
	lin, lambda, linOK := splitLoss(loss)
	sparseOK := linOK && lambda == 0 // lazy SAGA shrinkage is not supported
	return func(env *cluster.Env, parts []int, seed int64) (any, int, error) {
		wv, err := wBr.Value(env)
		if err != nil {
			return nil, 0, err
		}
		w, err := asVec(wv)
		if err != nil {
			return nil, 0, err
		}
		n := 0
		rng := env.Scratch().Rand(seed)
		hist := wBr.History(env) // hoisted: per-sample lookups are alloc-free
		if sparseOK && sparseTaskViable(env, parts, frac, len(w)) {
			accCur := env.Scratch().Delta("opt.saga.cur", len(w))
			accHist := env.Scratch().Delta("opt.saga.hist", len(w))
			accCur.Reset()
			accHist.Reset()
			for _, pi := range parts {
				p, err := env.Partition(pi)
				if err != nil {
					return nil, 0, err
				}
				for local := 0; local < p.NumRows(); local++ {
					if rng.Float64() >= frac {
						continue
					}
					idx := p.GlobalRow(local)
					rowIdx, rowVal := p.X.RowNZ(local)
					y := p.Y[local]
					accCur.Accum(lin.GradCoeff(la.SparseDot(rowIdx, rowVal, w), y), rowIdx, rowVal)
					hv, touched, err := hist.TryValueAt(env, idx)
					if err != nil {
						return nil, 0, err
					}
					if touched {
						wHist, err := asVec(hv)
						if err != nil {
							return nil, 0, err
						}
						accHist.Accum(lin.GradCoeff(la.SparseDot(rowIdx, rowVal, wHist), y), rowIdx, rowVal)
					}
					hist.Record(idx)
					n++
				}
			}
			if n == 0 {
				return nil, 0, nil
			}
			return SagaDelta{Sum: accCur.Compact(), HistSum: accHist.Compact()}, n, nil
		}
		gCur := la.GetVec(len(w))
		gHist := la.GetVec(len(w))
		fail := func(err error) (any, int, error) {
			la.PutVec(gCur)
			la.PutVec(gHist)
			return nil, 0, err
		}
		for _, pi := range parts {
			p, err := env.Partition(pi)
			if err != nil {
				return fail(err)
			}
			for local := 0; local < p.NumRows(); local++ {
				if rng.Float64() >= frac {
					continue
				}
				idx := p.GlobalRow(local)
				x, y := p.X.Row(local), p.Y[local]
				loss.AddGrad(x, y, w, gCur)
				hv, touched, err := hist.TryValueAt(env, idx)
				if err != nil {
					return fail(err)
				}
				if touched {
					wHist, err := asVec(hv)
					if err != nil {
						return fail(err)
					}
					loss.AddGrad(x, y, wHist, gHist)
				}
				hist.Record(idx)
				n++
			}
		}
		if n == 0 {
			return fail(nil)
		}
		return SagaPartial{Sum: gCur, HistSum: gHist}, n, nil
	}
}

// VRKernel builds the inner-loop kernel of the epoch-based variance-reduced
// scheme (Listing 3 / SVRG): per sampled row it returns ∇f_i(w) − ∇f_i(w̃),
// where w̃ is the epoch anchor.
//
// Sparse-delta path: for an unregularized linear loss the per-sample
// difference is (c_w − c_w̃)·x — one scatter over the row's support — so
// sparse partitions ship a pooled *la.DeltaVec and the driver defers the
// dense μ term lazily (see svrg.go).
func VRKernel(loss Loss, wBr, anchorBr core.DynBroadcast, frac float64) core.Kernel {
	lin, lambda, linOK := splitLoss(loss)
	sparseOK := linOK && lambda == 0
	return func(env *cluster.Env, parts []int, seed int64) (any, int, error) {
		wv, err := wBr.Value(env)
		if err != nil {
			return nil, 0, err
		}
		w, err := asVec(wv)
		if err != nil {
			return nil, 0, err
		}
		av, err := anchorBr.Value(env)
		if err != nil {
			return nil, 0, err
		}
		anchor, err := asVec(av)
		if err != nil {
			return nil, 0, err
		}
		rng := env.Scratch().Rand(seed)
		if sparseOK && sparseTaskViable(env, parts, frac, len(w)) {
			acc := env.Scratch().Delta("opt.vr.acc", len(w))
			acc.Reset()
			n := 0
			for _, pi := range parts {
				p, err := env.Partition(pi)
				if err != nil {
					return nil, 0, err
				}
				for local := 0; local < p.NumRows(); local++ {
					if rng.Float64() >= frac {
						continue
					}
					idx, val := p.X.RowNZ(local)
					y := p.Y[local]
					c := lin.GradCoeff(la.SparseDot(idx, val, w), y) -
						lin.GradCoeff(la.SparseDot(idx, val, anchor), y)
					acc.Accum(c, idx, val)
					n++
				}
			}
			if n == 0 {
				return nil, 0, nil
			}
			return acc.Compact(), n, nil
		}
		diff := la.GetVec(len(w))
		tmp := env.Scratch().Vec("opt.vr.tmp", len(w))
		n := 0
		for _, pi := range parts {
			p, err := env.Partition(pi)
			if err != nil {
				la.PutVec(diff)
				return nil, 0, err
			}
			for local := 0; local < p.NumRows(); local++ {
				if rng.Float64() >= frac {
					continue
				}
				x, y := p.X.Row(local), p.Y[local]
				loss.AddGrad(x, y, w, diff)
				tmp.Zero()
				loss.AddGrad(x, y, anchor, tmp)
				la.Axpy(-1, tmp, diff)
				n++
			}
		}
		if n == 0 {
			la.PutVec(diff)
			return nil, 0, nil
		}
		return diff, n, nil
	}
}

// FullGradKernel computes the exact gradient sum over the worker's
// partitions (frac = 1, no sampling) — the synchronous full pass at the top
// of each variance-reduction epoch.
func FullGradKernel(loss Loss, wBr core.DynBroadcast) core.Kernel {
	return func(env *cluster.Env, parts []int, seed int64) (any, int, error) {
		wv, err := wBr.Value(env)
		if err != nil {
			return nil, 0, err
		}
		w, err := asVec(wv)
		if err != nil {
			return nil, 0, err
		}
		g := la.GetVec(len(w))
		n := 0
		for _, pi := range parts {
			p, err := env.Partition(pi)
			if err != nil {
				la.PutVec(g)
				return nil, 0, err
			}
			for local := 0; local < p.NumRows(); local++ {
				loss.AddGrad(p.X.Row(local), p.Y[local], w, g)
				n++
			}
		}
		if n == 0 {
			la.PutVec(g)
			return nil, 0, nil
		}
		return g, n, nil
	}
}
