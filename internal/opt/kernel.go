package opt

import (
	"encoding/gob"
	"fmt"
	"math/rand"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/la"
)

// SagaPartial is a worker's locally reduced SAGA contribution: the sum of
// current-gradient terms, the sum of historical-gradient terms, and the
// sample count (carried in the result attributes).
type SagaPartial struct {
	Sum     la.Vec // Σ_{i∈S} ∇f_i(w_current)
	HistSum la.Vec // Σ_{i∈S} ∇f_i(w_hist(i))
}

func init() {
	gob.Register(la.Vec{})
	gob.Register(SagaPartial{})
}

// asVec extracts the dense model vector from a broadcast value.
func asVec(v any) (la.Vec, error) {
	w, ok := v.(la.Vec)
	if !ok {
		return nil, fmt.Errorf("opt: broadcast value is %T, want la.Vec", v)
	}
	return w, nil
}

// GradKernel builds the mini-batch gradient kernel used by SGD and ASGD:
// sample each row of the worker's partitions with probability frac, sum the
// per-sample loss gradients at the broadcast model, and return the
// (unnormalized) gradient sum. The driver divides by the batch size from
// the result attributes.
func GradKernel(loss Loss, wBr core.DynBroadcast, frac float64) core.Kernel {
	return func(env *cluster.Env, parts []int, seed int64) (any, int, error) {
		if frac <= 0 || frac > 1 {
			return nil, 0, fmt.Errorf("opt: sample fraction %v outside (0,1]", frac)
		}
		wv, err := wBr.Value(env)
		if err != nil {
			return nil, 0, err
		}
		w, err := asVec(wv)
		if err != nil {
			return nil, 0, err
		}
		g := la.NewVec(len(w))
		n := 0
		rng := rand.New(rand.NewSource(seed))
		for _, pi := range parts {
			p, err := env.Partition(pi)
			if err != nil {
				return nil, 0, err
			}
			for local := 0; local < p.NumRows(); local++ {
				if rng.Float64() >= frac {
					continue
				}
				loss.AddGrad(p.X.Row(local), p.Y[local], w, g)
				n++
			}
		}
		if n == 0 {
			return nil, 0, nil // empty sample: no result
		}
		return g, n, nil
	}
}

// SagaKernel builds the historical-gradient kernel of Algorithm 4: for each
// sampled row it computes the gradient at the current model AND at the
// model version recorded for that row (w_br.value(index)), then records the
// current version for the row. Rows never touched contribute zero
// historical gradient (the standard zero-initialized SAGA table, which is
// also the only initialization under which Algorithm 3's
// `averageHistory = 0` start is consistent).
func SagaKernel(loss Loss, wBr core.DynBroadcast, frac float64) core.Kernel {
	return func(env *cluster.Env, parts []int, seed int64) (any, int, error) {
		if frac <= 0 || frac > 1 {
			return nil, 0, fmt.Errorf("opt: sample fraction %v outside (0,1]", frac)
		}
		wv, err := wBr.Value(env)
		if err != nil {
			return nil, 0, err
		}
		w, err := asVec(wv)
		if err != nil {
			return nil, 0, err
		}
		gCur := la.NewVec(len(w))
		gHist := la.NewVec(len(w))
		n := 0
		rng := rand.New(rand.NewSource(seed))
		for _, pi := range parts {
			p, err := env.Partition(pi)
			if err != nil {
				return nil, 0, err
			}
			for local := 0; local < p.NumRows(); local++ {
				if rng.Float64() >= frac {
					continue
				}
				idx := p.GlobalRow(local)
				x, y := p.X.Row(local), p.Y[local]
				loss.AddGrad(x, y, w, gCur)
				hv, touched, err := wBr.TryValueAt(env, idx)
				if err != nil {
					return nil, 0, err
				}
				if touched {
					wHist, err := asVec(hv)
					if err != nil {
						return nil, 0, err
					}
					loss.AddGrad(x, y, wHist, gHist)
				}
				wBr.Record(env, idx)
				n++
			}
		}
		if n == 0 {
			return nil, 0, nil
		}
		return SagaPartial{Sum: gCur, HistSum: gHist}, n, nil
	}
}

// VRKernel builds the inner-loop kernel of the epoch-based variance-reduced
// scheme (Listing 3 / SVRG): per sampled row it returns ∇f_i(w) − ∇f_i(w̃),
// where w̃ is the epoch anchor.
func VRKernel(loss Loss, wBr, anchorBr core.DynBroadcast, frac float64) core.Kernel {
	return func(env *cluster.Env, parts []int, seed int64) (any, int, error) {
		wv, err := wBr.Value(env)
		if err != nil {
			return nil, 0, err
		}
		w, err := asVec(wv)
		if err != nil {
			return nil, 0, err
		}
		av, err := anchorBr.Value(env)
		if err != nil {
			return nil, 0, err
		}
		anchor, err := asVec(av)
		if err != nil {
			return nil, 0, err
		}
		diff := la.NewVec(len(w))
		tmp := la.NewVec(len(w))
		n := 0
		rng := rand.New(rand.NewSource(seed))
		for _, pi := range parts {
			p, err := env.Partition(pi)
			if err != nil {
				return nil, 0, err
			}
			for local := 0; local < p.NumRows(); local++ {
				if rng.Float64() >= frac {
					continue
				}
				x, y := p.X.Row(local), p.Y[local]
				loss.AddGrad(x, y, w, diff)
				tmp.Zero()
				loss.AddGrad(x, y, anchor, tmp)
				la.Axpy(-1, tmp, diff)
				n++
			}
		}
		if n == 0 {
			return nil, 0, nil
		}
		return diff, n, nil
	}
}

// FullGradKernel computes the exact gradient sum over the worker's
// partitions (frac = 1, no sampling) — the synchronous full pass at the top
// of each variance-reduction epoch.
func FullGradKernel(loss Loss, wBr core.DynBroadcast) core.Kernel {
	return func(env *cluster.Env, parts []int, seed int64) (any, int, error) {
		wv, err := wBr.Value(env)
		if err != nil {
			return nil, 0, err
		}
		w, err := asVec(wv)
		if err != nil {
			return nil, 0, err
		}
		g := la.NewVec(len(w))
		n := 0
		for _, pi := range parts {
			p, err := env.Partition(pi)
			if err != nil {
				return nil, 0, err
			}
			for local := 0; local < p.NumRows(); local++ {
				loss.AddGrad(p.X.Row(local), p.Y[local], w, g)
				n++
			}
		}
		if n == 0 {
			return nil, 0, nil
		}
		return g, n, nil
	}
}
