package opt

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/rdd"
)

// logisticRig sets up a separable classification problem.
func logisticRig(t *testing.T) (*core.Context, *dataset.Dataset) {
	t.Helper()
	c, err := cluster.NewLocal(cluster.Config{NumWorkers: 4, Seed: 41})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Shutdown)
	d, err := dataset.Generate(dataset.SynthConfig{
		Name: "cls", Rows: 200, Cols: 12, NNZPerRow: 8, Noise: 0.1, Binary: true, Seed: 33,
	})
	if err != nil {
		t.Fatal(err)
	}
	rctx := rdd.NewContext(c)
	if _, err := rctx.Distribute(d, 8); err != nil {
		t.Fatal(err)
	}
	ac := core.New(rctx)
	t.Cleanup(ac.Close)
	return ac, d
}

// TestLogisticASGDClassifies: ASGD on the logistic loss must reach high
// training accuracy on a (nearly) separable problem — the engine is
// loss-agnostic end to end.
func TestLogisticASGDClassifies(t *testing.T) {
	ac, d := logisticRig(t)
	res, err := ASGD(ac, d, Params{
		Loss:          Logistic{},
		Step:          Constant{A: 0.5},
		SampleFrac:    0.3,
		Updates:       800,
		SnapshotEvery: 200,
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	acc, err := Accuracy(d, res.W)
	if err != nil {
		t.Fatal(err)
	}
	// the asynchronous dynamics plateau this rig at ~0.865-0.87 training
	// accuracy (well above the 0.5 chance level the loss-agnosticity claim
	// is about); 0.85 keeps margin without asserting a level the
	// interleaving does not reliably reach
	if acc < 0.85 {
		t.Fatalf("training accuracy %v, want >= 0.85", acc)
	}
	// the trace records raw logistic loss (fstar = 0): it must decrease
	first := res.Trace.Points[0].Error
	last := res.Trace.FinalError()
	if last >= first {
		t.Fatalf("logistic loss did not decrease: %v → %v", first, last)
	}
}

// TestLogisticSAGAClassifies exercises historical gradients with a
// non-quadratic loss (the gradient at an old model is recomputed, so any
// differentiable loss works).
func TestLogisticSAGAClassifies(t *testing.T) {
	ac, d := logisticRig(t)
	res, err := ASAGA(ac, d, Params{
		Loss:          Logistic{},
		Step:          Constant{A: 0.3},
		SampleFrac:    0.3,
		Updates:       800,
		SnapshotEvery: 200,
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	acc, err := Accuracy(d, res.W)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.85 {
		t.Fatalf("training accuracy %v", acc)
	}
}

// TestRidgeASGDShrinks: the ridge penalty must yield a smaller-norm model
// than the unregularized run.
func TestRidgeASGDShrinks(t *testing.T) {
	r := newRig(t, 2, 4, nil)
	base := Params{
		Step: Scaled{Base: InvSqrt{A: 0.08}, Factor: 2}, SampleFrac: 0.4,
		Updates: 400, SnapshotEvery: 100,
	}
	plain, err := ASGD(r.ac, r.d, base, r.fstar)
	if err != nil {
		t.Fatal(err)
	}
	reg := base
	reg.Loss = Ridge{Inner: LeastSquares{}, Lambda: 5}
	ridge, err := ASGD(r.ac, r.d, reg, r.fstar)
	if err != nil {
		t.Fatal(err)
	}
	if norm2(ridge.W) >= norm2(plain.W) {
		t.Fatalf("ridge norm %v not below plain norm %v", norm2(ridge.W), norm2(plain.W))
	}
}

func norm2(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return s
}
