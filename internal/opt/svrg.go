package opt

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/la"
)

// VRParams extends Params with the epoch structure of Listing 3.
type VRParams struct {
	Params
	Epochs          int // outer epochs, each starting with a full pass
	UpdatesPerEpoch int // asynchronous inner updates per epoch
}

// vrUpdater is the variance-reduced inner-loop state: the anchor w̃ and its
// full gradient μ (recomputed per epoch by begin), the model, and the
// deferred −α·μ drift of the sparse task path. A checkpoint carries anchor
// and μ, so a mid-epoch resume continues against the exact epoch state
// instead of re-anchoring.
type vrUpdater struct {
	ac       *core.Context
	loss     Loss
	filter   core.WorkerFilter
	epochLen int64

	w, mu    la.Vec
	anchor   la.Vec
	anchorBr core.DynBroadcast
	drift    lazyDrift
	resumed  bool // anchor/μ imported from a checkpoint, valid mid-epoch
}

func (u *vrUpdater) Model() la.Vec { return u.w }
func (u *vrUpdater) Settle()       { u.drift.settleAll(u.w, u.mu) }

func (u *vrUpdater) Apply(payload any, attrs *core.Attrs, alpha float64) error {
	ab := alpha / float64(attrs.MiniBatch)
	switch diff := payload.(type) {
	case la.Vec:
		u.Settle()
		la.Axpy(-ab, diff, u.w)
		la.Axpy(-alpha, u.mu, u.w)
		la.PutVec(diff)
		return nil
	case *la.DeltaVec:
		// O(nnz): the sparse variance-reduced step touches only the sampled
		// rows' support; the dense −α·μ term is deferred per coordinate
		u.drift.ensure(len(u.w))
		u.drift.advance(alpha)
		for k, j := range diff.Idx {
			u.drift.settleCoord(u.w, u.mu, j)
			u.w[j] -= ab * diff.Val[k]
		}
		la.PutDelta(diff)
		return nil
	default:
		return fmt.Errorf("unexpected payload %T", payload)
	}
}

func (u *vrUpdater) Export(cp *Checkpoint) {
	cp.SetVec("mu", u.mu)
	cp.SetVec("anchor", u.anchor)
}

func (u *vrUpdater) Import(cp *Checkpoint) error {
	if err := importModel(u.w, cp); err != nil {
		return err
	}
	if mu, anchor := cp.Vec("mu"), cp.Vec("anchor"); mu != nil && anchor != nil {
		u.mu.CopyFrom(mu)
		u.anchor = anchor.Clone()
		u.resumed = true
	}
	return nil
}

// begin opens an epoch: settle the previous epoch's drift, take (or, on a
// mid-epoch resume, keep) the anchor, broadcast it eagerly, and recompute
// μ = ∇F(w̃) with a synchronous full pass — unless μ arrived with a
// mid-epoch checkpoint, in which case the pass is skipped and the resumed
// run continues bit-for-bit where the original stopped.
func (u *vrUpdater) begin(global int64) error {
	u.Settle()
	keep := u.resumed && u.epochLen > 0 && global%u.epochLen != 0
	u.resumed = false
	if !keep {
		u.anchor = u.w.Clone()
	}
	u.anchorBr = u.ac.ASYNCbroadcastEager("vr.anchor", u.anchor)
	if keep {
		return nil // μ was imported alongside the anchor
	}
	u.mu.Zero()
	total := 0
	err := bspRound(u.ac,
		u.filter,
		func(sel *core.Selection) (int, error) {
			return u.ac.ASYNCreduce(sel, FullGradKernel(u.loss, u.anchorBr))
		},
		func(payload any, attrs *core.Attrs) error {
			g, ok := payload.(la.Vec)
			if !ok {
				return fmt.Errorf("unexpected full-pass payload %T", payload)
			}
			la.Axpy(1, g, u.mu)
			la.PutVec(g)
			total += attrs.MiniBatch
			return nil
		})
	if err != nil {
		return fmt.Errorf("opt: EpochVR anchor at update %d: %w", global, err)
	}
	if total == 0 {
		return fmt.Errorf("opt: EpochVR at update %d: empty full pass", global)
	}
	la.Scale(1/float64(total), u.mu)
	return nil
}

// EpochVR is the epoch-based variance-reduced scheme of Listing 3 (SVRG
// style): each epoch synchronously computes the full gradient μ = ∇F(w̃) at
// the anchor w̃ via a BSP reduction, then runs asynchronous inner updates
//
//	w ← w − α·[ (∇f_S(w) − ∇f_S(w̃))/b + μ ]
//
// mixing synchronous Spark-style actions with ASYNC's asynchronous
// reductions, which is exactly the pattern the listing demonstrates.
func EpochVR(ac *core.Context, d *dataset.Dataset, p VRParams, fstar float64) (*Result, error) {
	if err := p.defaults(); err != nil {
		return nil, err
	}
	if err := rejectL1(p.Loss, "svrg"); err != nil {
		return nil, err
	}
	if p.Epochs <= 0 || p.UpdatesPerEpoch <= 0 {
		return nil, fmt.Errorf("opt: EpochVR needs positive Epochs and UpdatesPerEpoch")
	}
	u := &vrUpdater{
		ac:       ac,
		loss:     p.Loss,
		filter:   p.Filter,
		epochLen: int64(p.UpdatesPerEpoch),
		w:        la.NewVec(d.NumCols()),
		mu:       la.NewVec(d.NumCols()),
	}
	return runLoop(ac, d, u, &loopSpec{
		Algo: "EpochVR", Name: "svrg", Key: "vr.w",
		P: &p.Params, Loss: p.Loss, FStar: fstar,
		Target:     int64(p.Epochs) * int64(p.UpdatesPerEpoch),
		Publish:    pubStamped,
		EpochLen:   int64(p.UpdatesPerEpoch),
		EpochBegin: u.begin,
		Dispatch: func(wBr core.DynBroadcast, sel *core.Selection) (int, error) {
			return ac.ASYNCreduce(sel, VRKernel(p.Loss, wBr, u.anchorBr, p.SampleFrac))
		},
	})
}
