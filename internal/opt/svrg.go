package opt

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/la"
)

// VRParams extends Params with the epoch structure of Listing 3.
type VRParams struct {
	Params
	Epochs          int // outer epochs, each starting with a full pass
	UpdatesPerEpoch int // asynchronous inner updates per epoch
}

// EpochVR is the epoch-based variance-reduced scheme of Listing 3 (SVRG
// style): each epoch synchronously computes the full gradient μ = ∇F(w̃) at
// the anchor w̃ via a BSP reduction, then runs asynchronous inner updates
//
//	w ← w − α·[ (∇f_S(w) − ∇f_S(w̃))/b + μ ]
//
// mixing synchronous Spark-style actions with ASYNC's asynchronous
// reductions, which is exactly the pattern the listing demonstrates.
func EpochVR(ac *core.Context, d *dataset.Dataset, p VRParams, fstar float64) (*Result, error) {
	if err := p.defaults(); err != nil {
		return nil, err
	}
	if p.Epochs <= 0 || p.UpdatesPerEpoch <= 0 {
		return nil, fmt.Errorf("opt: EpochVR needs positive Epochs and UpdatesPerEpoch")
	}
	w := la.NewVec(d.NumCols())
	rec := p.recorder()
	rec.Force(0, w)
	mu := la.NewVec(d.NumCols())
	// deferred −α·μ drift of the sparse inner-update path; μ is constant
	// within an epoch, so the drift must be settled before each re-anchor
	var drift lazyDrift
	updates := int64(0)
	for epoch := 0; epoch < p.Epochs; epoch++ {
		// --- synchronous full pass at the anchor (Spark-style reduce) ---
		drift.settleAll(w, mu)
		anchor := w.Clone()
		anchorBr := ac.ASYNCbroadcastEager("vr.anchor", anchor)
		sel, err := ac.ASYNCbarrier(core.BSP(), p.Filter)
		if err != nil {
			return nil, fmt.Errorf("opt: EpochVR epoch %d anchor: %w", epoch, err)
		}
		n, err := ac.ASYNCreduce(sel, FullGradKernel(p.Loss, anchorBr))
		if err != nil {
			return nil, err
		}
		mu.Zero()
		total := 0
		for i := 0; i < n; i++ {
			tr, err := ac.ASYNCcollectAll()
			if err != nil {
				break
			}
			g := tr.Payload.(la.Vec)
			la.Axpy(1, g, mu)
			la.PutVec(g)
			total += tr.Attrs.MiniBatch
		}
		if total == 0 {
			return nil, fmt.Errorf("opt: EpochVR epoch %d: empty full pass", epoch)
		}
		la.Scale(1/float64(total), mu)
		// --- asynchronous inner loop ---
		target := updates + int64(p.UpdatesPerEpoch)
		for updates < target {
			wBr := ac.ASYNCbroadcastStamped("vr.w", updates, func() any {
				drift.settleAll(w, mu)
				return w.Clone()
			})
			sel, err := ac.ASYNCbarrier(p.Barrier, p.Filter)
			if err != nil {
				return nil, fmt.Errorf("opt: EpochVR inner: %w", err)
			}
			if _, err := ac.ASYNCreduce(sel, VRKernel(p.Loss, wBr, anchorBr, p.SampleFrac)); err != nil {
				return nil, err
			}
			for first := true; (first || ac.HasNext()) && updates < target; first = false {
				tr, err := ac.ASYNCcollectAll()
				if err != nil {
					break
				}
				alpha := p.Step.Alpha(updates)
				if p.StalenessLR {
					alpha = StalenessAdapt(alpha, tr.Attrs.Staleness)
				}
				ab := alpha / float64(tr.Attrs.MiniBatch)
				switch diff := tr.Payload.(type) {
				case la.Vec:
					drift.settleAll(w, mu)
					la.Axpy(-ab, diff, w)
					la.Axpy(-alpha, mu, w)
					la.PutVec(diff)
				case *la.DeltaVec:
					// O(nnz): the sparse variance-reduced step touches only
					// the sampled rows' support; the dense −α·μ term is
					// deferred per coordinate
					drift.ensure(len(w))
					drift.advance(alpha)
					for k, j := range diff.Idx {
						drift.settleCoord(w, mu, j)
						w[j] -= ab * diff.Val[k]
					}
					la.PutDelta(diff)
				default:
					return nil, fmt.Errorf("opt: EpochVR payload %T", tr.Payload)
				}
				updates = ac.AdvanceClock()
				if rec.Due(updates) {
					drift.settleAll(w, mu)
				}
				rec.Maybe(updates, w)
			}
		}
		// drain stragglers from this epoch before re-anchoring
		drain(ac, 5*time.Second)
	}
	drift.settleAll(w, mu)
	rec.Finish(updates, w)
	return &Result{Trace: newTrace(ac, "EpochVR", d, rec, p.Loss, fstar), W: w}, nil
}
