package opt

import (
	"testing"

	"repro/internal/core"
	"repro/internal/straggler"
)

func TestBCDSyncConverges(t *testing.T) {
	r := newRig(t, 4, 8, nil)
	res, err := AsyncBCD(r.ac, r.d, BCDParams{
		BlockSize: 4, Step: 0.9, Updates: 120, Barrier: core.BSP(), Snapshot: 30, Seed: 1,
	}, r.fstar)
	if err != nil {
		t.Fatal(err)
	}
	r.assertConverged(t, res, 10)
	if res.Trace.Algorithm != "BCD" {
		t.Fatalf("algo %q", res.Trace.Algorithm)
	}
}

func TestBCDAsyncConverges(t *testing.T) {
	r := newRig(t, 4, 8, nil)
	res, err := AsyncBCD(r.ac, r.d, BCDParams{
		BlockSize: 4, Step: 0.5, Updates: 400, Snapshot: 100, Seed: 2,
	}, r.fstar)
	if err != nil {
		t.Fatal(err)
	}
	r.assertConverged(t, res, 10)
	if res.Trace.Algorithm != "BCD-async" {
		t.Fatalf("algo %q", res.Trace.Algorithm)
	}
}

func TestBCDAsyncUnderStraggler(t *testing.T) {
	r := newRig(t, 4, 8, straggler.ControlledDelay{Worker: 1, Intensity: 2})
	res, err := AsyncBCD(r.ac, r.d, BCDParams{
		BlockSize: 4, Step: 0.5, Updates: 400, Snapshot: 100, Seed: 3,
	}, r.fstar)
	if err != nil {
		t.Fatal(err)
	}
	r.assertConverged(t, res, 5)
}

func TestBCDValidation(t *testing.T) {
	r := newRig(t, 1, 1, nil)
	cases := []BCDParams{
		{BlockSize: 0, Step: 0.5, Updates: 10},
		{BlockSize: 999, Step: 0.5, Updates: 10},
		{BlockSize: 2, Step: 0, Updates: 10},
		{BlockSize: 2, Step: 1.5, Updates: 10},
		{BlockSize: 2, Step: 0.5, Updates: 0},
	}
	for i, p := range cases {
		if _, err := AsyncBCD(r.ac, r.d, p, r.fstar); err == nil {
			t.Fatalf("case %d: invalid params accepted", i)
		}
	}
}

func TestApplyBlockStep(t *testing.T) {
	w := []float64{0, 0, 0, 0}
	applyBlockStep(w, []int32{1, 3}, []float64{2, 4}, []float64{1, 2}, 0.5)
	if w[1] != -1 || w[3] != -1 {
		t.Fatalf("w = %v", w)
	}
	if w[0] != 0 || w[2] != 0 {
		t.Fatalf("out-of-block coordinates touched: %v", w)
	}
	// zero curvature must not divide by zero
	applyBlockStep(w, []int32{0}, []float64{5}, []float64{0}, 1)
	if w[0] != 0 {
		t.Fatalf("zero-curvature coordinate moved: %v", w)
	}
}
