package opt

import (
	"encoding/gob"
	"fmt"
	"math/rand"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/la"
)

// Asynchronous block coordinate descent for least squares, in the family of
// asynchronous coordinate methods the paper cites (PASSCoDe, asynchronous
// Jacobi-style solvers). The driver picks a random coordinate block per
// dispatch; each worker computes, over its rows, the block gradient
//
//	g_J = 2 Σ_r a_{rJ} (x_r·w − y_r)
//
// and the diagonal curvature h_J = 2 Σ_r a_{rJ}², and the server applies a
// damped diagonal-Newton step on the block. Row partitioning means every
// worker contributes a partial (g_J, h_J) for the same block; asynchrony
// makes those partials stale in exactly the ASYNC sense.

// BCDParams configures AsyncBCD.
type BCDParams struct {
	BlockSize int     // coordinates per block
	Step      float64 // damping in (0, 1]; 1 = full diagonal-Newton step
	Updates   int     // block updates
	Barrier   core.BarrierFunc
	Filter    core.WorkerFilter
	Snapshot  int
	Seed      int64

	// OnProgress observes recorder snapshots as block updates land (see
	// Params.OnProgress).
	OnProgress ProgressFunc

	// CheckpointEvery / OnCheckpoint / Preempt / Resume mirror the Params
	// fields of the same names (see Params). Besides the model, the
	// checkpoint carries the dispatch count, which Import replays against
	// the seeded RNG so a resumed run continues the block sequence exactly
	// where the original stopped.
	CheckpointEvery int
	OnCheckpoint    func(*Checkpoint)
	Preempt         *PreemptSignal
	Resume          *Checkpoint
}

func (p *BCDParams) defaults(cols int) error {
	if p.BlockSize <= 0 || p.BlockSize > cols {
		return fmt.Errorf("opt: BCD block size %d outside (0,%d]", p.BlockSize, cols)
	}
	if p.Step <= 0 || p.Step > 1 {
		return fmt.Errorf("opt: BCD step %v outside (0,1]", p.Step)
	}
	if p.Updates <= 0 {
		return fmt.Errorf("opt: BCD needs positive Updates")
	}
	if p.Barrier == nil {
		p.Barrier = core.ASP()
	}
	if p.Snapshot <= 0 {
		p.Snapshot = 10
	}
	return nil
}

// BCDPartial is one worker's block gradient and curvature.
type BCDPartial struct {
	Block []int32
	G     la.Vec // block gradient over the worker's rows
	H     la.Vec // diagonal curvature over the worker's rows
}

func init() {
	gob.Register(BCDPartial{})
}

// bcdKernel computes the exact block gradient/curvature over every owned
// row at the broadcast model. Block membership is resolved through a
// persistent scratch lookup table (position+1, 0 = not in block) instead of
// a per-task map; entries are restored to zero before returning so the next
// task sees a clean table.
func bcdKernel(wBr core.DynBroadcast, block []int32) core.Kernel {
	return func(env *cluster.Env, parts []int, seed int64) (any, int, error) {
		wv, err := wBr.Value(env)
		if err != nil {
			return nil, 0, err
		}
		w, err := asVec(wv)
		if err != nil {
			return nil, 0, err
		}
		lookup := env.Scratch().I32("opt.bcd.lookup", len(w))
		for k, j := range block {
			lookup[j] = int32(k) + 1
		}
		defer func() {
			for _, j := range block {
				lookup[j] = 0
			}
		}()
		g := la.GetVec(len(block))
		h := la.GetVec(len(block))
		rows := 0
		for _, pi := range parts {
			p, err := env.Partition(pi)
			if err != nil {
				la.PutVec(g)
				la.PutVec(h)
				return nil, 0, err
			}
			for r := 0; r < p.NumRows(); r++ {
				idx, val := p.X.RowNZ(r)
				resid := la.SparseDot(idx, val, w) - p.Y[r]
				for k, j := range idx {
					bi := lookup[j]
					if bi == 0 {
						continue
					}
					v := val[k]
					g[bi-1] += 2 * resid * v
					h[bi-1] += 2 * v * v
				}
				rows++
			}
		}
		if rows == 0 {
			la.PutVec(g)
			la.PutVec(h)
			return nil, 0, nil
		}
		return BCDPartial{Block: block, G: g, H: h}, rows, nil
	}
}

// bcdUpdater owns the block-coordinate driver state: the model, the block
// RNG (with a dispatch counter so checkpoints can replay the block
// sequence), and — in synchronous mode — the round's combined block
// gradient/curvature.
type bcdUpdater struct {
	w         la.Vec
	step      float64
	blockSize int
	seed      int64
	rng       *rand.Rand
	perm      []int32
	sync      bool

	dispatches int64
	block      []int32 // sync mode: the round's block
	g, h       la.Vec  // sync mode: combined partials
	got        int
}

func newBCDUpdater(cols int, p BCDParams, sync bool) *bcdUpdater {
	u := &bcdUpdater{
		w: la.NewVec(cols), step: p.Step, blockSize: p.BlockSize,
		seed: p.Seed, rng: rand.New(rand.NewSource(p.Seed + 1)),
		perm: make([]int32, cols), sync: sync,
	}
	for j := range u.perm {
		u.perm[j] = int32(j)
	}
	if sync {
		u.g = la.NewVec(p.BlockSize)
		u.h = la.NewVec(p.BlockSize)
	}
	return u
}

// pickBlock draws the next coordinate block, counting the draw so a
// checkpoint resume can fast-forward the RNG.
func (u *bcdUpdater) pickBlock() []int32 {
	u.dispatches++
	for k := 0; k < u.blockSize; k++ {
		swap := k + u.rng.Intn(len(u.perm)-k)
		u.perm[k], u.perm[swap] = u.perm[swap], u.perm[k]
	}
	return append([]int32(nil), u.perm[:u.blockSize]...)
}

func (u *bcdUpdater) Model() la.Vec { return u.w }
func (u *bcdUpdater) Settle()       {}

func (u *bcdUpdater) Apply(payload any, attrs *core.Attrs, _ float64) error {
	part, ok := payload.(BCDPartial)
	if !ok {
		return fmt.Errorf("unexpected payload %T", payload)
	}
	if u.sync {
		// combine every worker's partial into one exact block step
		la.Axpy(1, part.G, u.g)
		la.Axpy(1, part.H, u.h)
		u.got++
	} else {
		applyBlockStep(u.w, part.Block, part.G, part.H, u.step)
	}
	la.PutVec(part.G)
	la.PutVec(part.H)
	return nil
}

func (u *bcdUpdater) FlushRound(_ float64) (bool, error) {
	applied := u.got > 0
	if applied {
		applyBlockStep(u.w, u.block, u.g, u.h, u.step)
	}
	u.g.Zero()
	u.h.Zero()
	u.got = 0
	return applied, nil
}

func (u *bcdUpdater) Export(cp *Checkpoint) { cp.SetInt("dispatches", u.dispatches) }

func (u *bcdUpdater) Import(cp *Checkpoint) error {
	if err := importModel(u.w, cp); err != nil {
		return err
	}
	// replay the recorded number of block draws against the freshly seeded
	// RNG so the resumed run picks up the block sequence exactly where the
	// original stopped
	replay := cp.Int("dispatches")
	u.dispatches = 0
	for i := int64(0); i < replay; i++ {
		u.pickBlock()
	}
	return nil
}

// AsyncBCD runs the block coordinate method. With core.BSP() it is a
// synchronous Jacobi block solver (all partials combined before the step);
// under ASP each worker's partial triggers its own damped step.
func AsyncBCD(ac *core.Context, d *dataset.Dataset, p BCDParams, fstar float64) (*Result, error) {
	if err := p.defaults(d.NumCols()); err != nil {
		return nil, err
	}
	sync := isBSPBarrier(ac, p.Barrier)
	algo := "BCD-async"
	if sync {
		algo = "BCD"
	}
	u := newBCDUpdater(d.NumCols(), p, sync)
	lp := Params{
		Updates: p.Updates, Barrier: p.Barrier, Filter: p.Filter,
		SnapshotEvery: p.Snapshot, OnProgress: p.OnProgress,
		CheckpointEvery: p.CheckpointEvery, OnCheckpoint: p.OnCheckpoint,
		Preempt: p.Preempt, Resume: p.Resume,
	}
	return runLoop(ac, d, u, &loopSpec{
		Algo: algo, Name: "bcd", Key: "bcd.w",
		P: &lp, Loss: LeastSquares{}, FStar: fstar,
		Target: int64(p.Updates), Publish: pubPlain, Prune: true,
		Round: sync,
		Dispatch: func(wBr core.DynBroadcast, sel *core.Selection) (int, error) {
			block := u.pickBlock()
			if u.sync {
				u.block = block
			}
			return ac.ASYNCreduce(sel, bcdKernel(wBr, block))
		},
	})
}

// applyBlockStep performs the damped diagonal-Newton update on a block.
func applyBlockStep(w la.Vec, block []int32, g, h la.Vec, step float64) {
	for k, j := range block {
		if h[k] > 0 {
			w[j] -= step * g[k] / h[k]
		}
	}
}
