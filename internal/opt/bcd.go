package opt

import (
	"encoding/gob"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/la"
)

// Asynchronous block coordinate descent for least squares, in the family of
// asynchronous coordinate methods the paper cites (PASSCoDe, asynchronous
// Jacobi-style solvers). The driver picks a random coordinate block per
// dispatch; each worker computes, over its rows, the block gradient
//
//	g_J = 2 Σ_r a_{rJ} (x_r·w − y_r)
//
// and the diagonal curvature h_J = 2 Σ_r a_{rJ}², and the server applies a
// damped diagonal-Newton step on the block. Row partitioning means every
// worker contributes a partial (g_J, h_J) for the same block; asynchrony
// makes those partials stale in exactly the ASYNC sense.

// BCDParams configures AsyncBCD.
type BCDParams struct {
	BlockSize int     // coordinates per block
	Step      float64 // damping in (0, 1]; 1 = full diagonal-Newton step
	Updates   int     // block updates
	Barrier   core.BarrierFunc
	Filter    core.WorkerFilter
	Snapshot  int
	Seed      int64

	// OnProgress observes recorder snapshots as block updates land (see
	// Params.OnProgress).
	OnProgress ProgressFunc
}

func (p *BCDParams) defaults(cols int) error {
	if p.BlockSize <= 0 || p.BlockSize > cols {
		return fmt.Errorf("opt: BCD block size %d outside (0,%d]", p.BlockSize, cols)
	}
	if p.Step <= 0 || p.Step > 1 {
		return fmt.Errorf("opt: BCD step %v outside (0,1]", p.Step)
	}
	if p.Updates <= 0 {
		return fmt.Errorf("opt: BCD needs positive Updates")
	}
	if p.Barrier == nil {
		p.Barrier = core.ASP()
	}
	if p.Snapshot <= 0 {
		p.Snapshot = 10
	}
	return nil
}

// BCDPartial is one worker's block gradient and curvature.
type BCDPartial struct {
	Block []int32
	G     la.Vec // block gradient over the worker's rows
	H     la.Vec // diagonal curvature over the worker's rows
}

func init() {
	gob.Register(BCDPartial{})
}

// bcdKernel computes the exact block gradient/curvature over every owned
// row at the broadcast model. Block membership is resolved through a
// persistent scratch lookup table (position+1, 0 = not in block) instead of
// a per-task map; entries are restored to zero before returning so the next
// task sees a clean table.
func bcdKernel(wBr core.DynBroadcast, block []int32) core.Kernel {
	return func(env *cluster.Env, parts []int, seed int64) (any, int, error) {
		wv, err := wBr.Value(env)
		if err != nil {
			return nil, 0, err
		}
		w, err := asVec(wv)
		if err != nil {
			return nil, 0, err
		}
		lookup := env.Scratch().I32("opt.bcd.lookup", len(w))
		for k, j := range block {
			lookup[j] = int32(k) + 1
		}
		defer func() {
			for _, j := range block {
				lookup[j] = 0
			}
		}()
		g := la.GetVec(len(block))
		h := la.GetVec(len(block))
		rows := 0
		for _, pi := range parts {
			p, err := env.Partition(pi)
			if err != nil {
				la.PutVec(g)
				la.PutVec(h)
				return nil, 0, err
			}
			for r := 0; r < p.NumRows(); r++ {
				idx, val := p.X.RowNZ(r)
				resid := la.SparseDot(idx, val, w) - p.Y[r]
				for k, j := range idx {
					bi := lookup[j]
					if bi == 0 {
						continue
					}
					v := val[k]
					g[bi-1] += 2 * resid * v
					h[bi-1] += 2 * v * v
				}
				rows++
			}
		}
		if rows == 0 {
			la.PutVec(g)
			la.PutVec(h)
			return nil, 0, nil
		}
		return BCDPartial{Block: block, G: g, H: h}, rows, nil
	}
}

// AsyncBCD runs the block coordinate method. With core.BSP() it is a
// synchronous Jacobi block solver (all partials combined before the step);
// under ASP each worker's partial triggers its own damped step.
func AsyncBCD(ac *core.Context, d *dataset.Dataset, p BCDParams, fstar float64) (*Result, error) {
	if err := p.defaults(d.NumCols()); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(p.Seed + 1))
	w := la.NewVec(d.NumCols())
	rec := NewRecorder(p.Snapshot)
	rec.Notify(p.OnProgress)
	rec.Force(0, w)
	perm := make([]int32, d.NumCols())
	for j := range perm {
		perm[j] = int32(j)
	}
	pickBlock := func() []int32 {
		for k := 0; k < p.BlockSize; k++ {
			swap := k + rng.Intn(len(perm)-k)
			perm[k], perm[swap] = perm[swap], perm[k]
		}
		return append([]int32(nil), perm[:p.BlockSize]...)
	}
	sync := isBSPBarrier(ac, p.Barrier)
	updates := int64(0)
	for updates < int64(p.Updates) {
		wBr := ac.ASYNCbroadcast("bcd.w", w.Clone())
		ac.RDD().PruneBroadcast("bcd.w", 4*ac.RDD().Cluster().NumWorkers())
		block := pickBlock()
		sel, err := ac.ASYNCbarrier(p.Barrier, p.Filter)
		if err != nil {
			return nil, fmt.Errorf("opt: BCD after %d updates: %w", updates, err)
		}
		n, err := ac.ASYNCreduce(sel, bcdKernel(wBr, block))
		if err != nil {
			return nil, err
		}
		if sync {
			// combine every worker's partial into one exact block step
			g := la.GetVec(len(block))
			h := la.GetVec(len(block))
			got := 0
			for i := 0; i < n; i++ {
				tr, err := ac.ASYNCcollectAll()
				if err != nil {
					break
				}
				part := tr.Payload.(BCDPartial)
				la.Axpy(1, part.G, g)
				la.Axpy(1, part.H, h)
				la.PutVec(part.G)
				la.PutVec(part.H)
				got++
			}
			if got > 0 {
				applyBlockStep(w, block, g, h, p.Step)
			}
			la.PutVec(g)
			la.PutVec(h)
			if got == 0 {
				continue
			}
			updates = ac.AdvanceClock()
			rec.Maybe(updates, w)
			continue
		}
		for first := true; (first || ac.HasNext()) && updates < int64(p.Updates); first = false {
			tr, err := ac.ASYNCcollectAll()
			if err != nil {
				break
			}
			part, ok := tr.Payload.(BCDPartial)
			if !ok {
				return nil, fmt.Errorf("opt: BCD payload %T", tr.Payload)
			}
			applyBlockStep(w, part.Block, part.G, part.H, p.Step)
			la.PutVec(part.G)
			la.PutVec(part.H)
			updates = ac.AdvanceClock()
			rec.Maybe(updates, w)
		}
	}
	rec.Finish(updates, w)
	drain(ac, 5*time.Second)
	algo := "BCD-async"
	if sync {
		algo = "BCD"
	}
	return &Result{Trace: newTrace(ac, algo, d, rec, LeastSquares{}, fstar), W: w}, nil
}

// applyBlockStep performs the damped diagonal-Newton update on a block.
func applyBlockStep(w la.Vec, block []int32, g, h la.Vec, step float64) {
	for k, j := range block {
		if h[k] > 0 {
			w[j] -= step * g[k] / h[k]
		}
	}
}
