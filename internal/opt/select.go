package opt

import (
	"math"
	"sort"

	"repro/internal/dataset"
	"repro/internal/la"
	"repro/internal/la/maxip"
	"repro/internal/telemetry"
)

// Greedy (Gauss-Southwell) block selection for the coordinate family: a
// driver-side maxip.Index over the full dataset's columns ranks every
// coordinate by its penalty-aware gradient score, and each round's block is
// the top-|score| set — the steepest block instead of the next cursor
// position, at O(k·log d) per pick instead of the O(nnz + d) exact sweep.
//
// The correctness contract has two halves. The index's half is exactness
// given its query vector (see internal/la/maxip). The driver's half is
// verifying that query: the selector's scores derive from a residual mirror
// it advances incrementally from the same CDDelta stream the workers
// consume, so every round it compares its predicted block gradient against
// the exact per-block gradients the workers return. A relative mismatch is
// a miss; a miss triggers one full rebuild (residuals recomputed from the
// model); a second consecutive miss after rebuilding means the incremental
// chain cannot be trusted and the solver permanently falls back to cyclic
// order. Hits, misses, rebuilds, and fallbacks are all counted on the
// process registry (async_opt_select_*).
var (
	optSelHits = telemetry.Default().Counter("async_opt_select_hits_total",
		"Greedy-selection rounds where the index-predicted block gradient matched the workers' exact one.")
	optSelMisses = telemetry.Default().Counter("async_opt_select_misses_total",
		"Greedy-selection rounds where the predicted block gradient missed the exact one.")
	optSelRebuilds = telemetry.Default().Counter("async_opt_select_rebuilds_total",
		"Full selector rebuilds (residual mirror + index) triggered by a verification miss.")
	optSelFallbacks = telemetry.Default().Counter("async_opt_select_fallbacks_total",
		"Permanent falls back to cyclic order after repeated verification misses.")
)

// selVerifyTol is the relative tolerance separating float-reassociation
// noise (worker partials sum in arrival order; the mirror sums in storage
// order) from a genuinely stale score.
const selVerifyTol = 1e-8

// gsSelector owns the greedy-selection driver state.
type gsSelector struct {
	d        *dataset.Dataset
	cv       *la.ColView
	ix       *maxip.Index
	lin      LinearLoss
	w        la.Vec // the updater's model (aliased, driver-owned)
	nl2, nl1 float64
	r        la.Vec // residual mirror r_i = x_i·w

	buf      []int32 // pick scratch
	misses   int     // consecutive verification misses
	rebuilt  bool    // a rebuild already answered the current miss streak
	fallback bool    // permanent: greedy disabled, caller reverts to cyclic
}

// newGSSelector builds the selector at the current model w (usually zeros).
// exactBelow forwards to maxip.Options.ExactBelow: 0 is the package default
// threshold, negative forces the tournament tree (tests pin tree vs scan
// equivalence through this knob).
func newGSSelector(d *dataset.Dataset, lin LinearLoss, l2, l1 float64, w la.Vec, exactBelow int) *gsSelector {
	s := &gsSelector{
		d: d, cv: la.NewColView(d.X), lin: lin, w: w,
		nl2: float64(d.NumRows()) * l2, nl1: float64(d.NumRows()) * l1,
		r: la.NewVec(d.NumRows()),
	}
	s.ix = maxip.New(d.X, s.cv, nil, maxip.Options{
		ExactBelow: exactBelow,
		Scorer:     s.score,
	})
	s.reset()
	return s
}

// score is the penalty-aware Gauss-Southwell rule over the maintained sum
// gradient g_j = s: held coordinates rank by the magnitude of the full
// composite subgradient, zero coordinates by how far the smooth gradient
// exceeds the ℓ1 threshold that pins them at zero (0 = not worth moving).
func (s *gsSelector) score(col int32, g float64) float64 {
	if wj := s.w[col]; wj != 0 {
		v := g + s.nl2*wj
		if wj > 0 {
			v += s.nl1
		} else {
			v -= s.nl1
		}
		return math.Abs(v)
	}
	v := math.Abs(g) - s.nl1
	if v < 0 {
		return 0
	}
	return v
}

// reset recomputes the residual mirror and the index from the model — the
// cold-start, resume, and miss-recovery path.
func (s *gsSelector) reset() {
	s.d.X.MatVec(s.w, s.r)
	u := la.GetVec(len(s.r))
	for i, ri := range s.r {
		u[i] = s.lin.GradCoeff(ri, s.d.Y[i])
	}
	s.ix.Rebuild(u)
	la.PutVec(u)
}

// advance folds one applied round delta into the mirror: residuals move on
// the changed columns' rows, the query re-derives on exactly those rows,
// and the changed coordinates re-rank (their w_j feeds the scorer).
func (s *gsSelector) advance(delta *la.DeltaVec) {
	s.cv.ApplyDelta(delta, s.r)
	for _, j := range delta.Idx {
		s.ix.MarkCol(j)
		rows, _ := s.cv.Col(j)
		for _, i := range rows {
			s.ix.SetRow(i, s.lin.GradCoeff(s.r[i], s.d.Y[int(i)]))
		}
	}
}

// pick returns the k best-scored coordinates, ascending (the block-order
// contract of the delta broadcast). Fewer than k come back only when the
// data stores fewer distinct columns.
func (s *gsSelector) pick(k int) []int32 {
	s.buf = s.ix.TopK(k, s.buf[:0])
	block := s.buf
	sort.Slice(block, func(a, b int) bool { return block[a] < block[b] })
	return block
}

// verify compares the index's predicted block gradients against the exact
// per-block gradients the workers returned for the same round. One miss
// rebuilds; a second consecutive miss (the rebuild didn't cure it) trips
// the permanent cyclic fallback. Returns false once fallen back.
func (s *gsSelector) verify(block []int32, g la.Vec) bool {
	if s.fallback {
		return false
	}
	ok := true
	for k, j := range block {
		pred := s.ix.Score(j)
		if diff := math.Abs(pred - g[k]); diff > selVerifyTol*math.Max(1, math.Abs(g[k])) {
			ok = false
			break
		}
	}
	if ok {
		optSelHits.Inc()
		s.misses = 0
		s.rebuilt = false
		return true
	}
	optSelMisses.Inc()
	s.misses++
	if s.rebuilt {
		// the from-scratch rebuild did not restore agreement: stop being
		// greedy rather than keep selecting on untrusted scores
		s.fallback = true
		optSelFallbacks.Inc()
		return false
	}
	s.reset()
	s.rebuilt = true
	optSelRebuilds.Inc()
	return true
}
