package opt

import (
	"math"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/la"
	"repro/internal/rdd"
)

// cdRig assembles an engine over a hand-constructed dataset.
func cdRig(t *testing.T, d *dataset.Dataset, workers, parts int) *core.Context {
	t.Helper()
	c, err := cluster.NewLocal(cluster.Config{NumWorkers: workers, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Shutdown)
	rctx := rdd.NewContext(c)
	if _, err := rctx.Distribute(d, parts); err != nil {
		t.Fatal(err)
	}
	ac := core.New(rctx)
	t.Cleanup(ac.Close)
	return ac
}

// diagDataset builds a diagonal design: row j has the single entry a[j] at
// column j with label y[j], so the elastic-net objective decouples per
// coordinate and has the closed-form minimizer
//
//	w*_j = soft(2·a_j·y_j, n·λ1) / (2·a_j² + n·λ2)
//
// (sum units over the n = len(a) rows).
func diagDataset(t *testing.T, a, y []float64) *dataset.Dataset {
	t.Helper()
	n := len(a)
	m := la.NewCSR(n, n, n)
	for j := 0; j < n; j++ {
		if err := m.AppendRow(la.SparseVec{Idx: []int32{int32(j)}, Val: []float64{a[j]}, N: n}); err != nil {
			t.Fatal(err)
		}
	}
	return &dataset.Dataset{Name: "diag", X: m, Y: append(la.Vec(nil), y...)}
}

// TestCDLassoClosedForm pins the prox coordinate step against the
// closed-form elastic-net solution on a diagonal design: with step 1 and
// exact curvature, one cyclic pass lands every coordinate exactly on
//
//	w*_j = soft(2 a_j y_j, nλ1)/(2 a_j² + nλ2),
//
// including the exact zeros the soft-threshold produces.
func TestCDLassoClosedForm(t *testing.T) {
	a := []float64{1.5, -0.8, 2.0, 0.5, 1.0, -1.2, 0.9, 1.8, -0.4, 0.7, 1.1, -2.2}
	y := []float64{2.0, 0.1, -1.5, 0.05, 0.8, -0.02, 1.2, 0.03, 0.3, -0.9, 0.01, 2.5}
	const l2, l1 = 0.1, 0.2
	d := diagDataset(t, a, y)
	n := float64(len(a))

	ac := cdRig(t, d, 2, 4)
	p := CDParams{BlockSize: 4, Mode: "cyclic", DampStep: 1}
	p.Loss = Composite{Inner: LeastSquares{}, L2: l2, L1: l1}
	p.Updates = 6 // two full cyclic passes over 12 coords in blocks of 4
	p.SnapshotEvery = 3
	res, err := CD(ac, d, p, 0)
	if err != nil {
		t.Fatal(err)
	}

	zeros := 0
	for j := range a {
		want := SoftThreshold(2*a[j]*y[j], n*l1) / (2*a[j]*a[j] + n*l2)
		if math.Abs(res.W[j]-want) > 1e-9 {
			t.Fatalf("w[%d] = %v, closed form %v", j, res.W[j], want)
		}
		if want == 0 {
			if res.W[j] != 0 {
				t.Fatalf("w[%d] = %v, want exact zero", j, res.W[j])
			}
			zeros++
		}
	}
	if zeros == 0 {
		t.Fatal("test design produced no zero coordinates — ℓ1 threshold never exercised")
	}
}

// TestCDIncrementalMatchesRecompute pins the incremental residual
// maintenance: the engine run (per-partition residuals advanced by the
// round-delta broadcast) must match a driver-side reference that
// recomputes r = X·w from scratch every round, to rounding.
func TestCDIncrementalMatchesRecompute(t *testing.T) {
	cfg := dataset.SynthConfig{
		Name: "cd-eq", Rows: 200, Cols: 512, NNZPerRow: 6, Noise: 0.1, Seed: 29,
	}
	d, err := dataset.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const bs, updates = 16, 40
	const l2, l1, step = 0.01, 0.005, 0.8

	ac := cdRig(t, d, 1, 3)
	p := CDParams{BlockSize: bs, Mode: "cyclic", DampStep: step}
	p.Loss = Composite{Inner: LeastSquares{}, L2: l2, L1: l1}
	p.Updates = updates
	p.SnapshotEvery = 10
	res, err := CD(ac, d, p, 0)
	if err != nil {
		t.Fatal(err)
	}

	// reference: same cyclic blocks, same prox step, residuals recomputed
	lin := LeastSquares{}
	cols, n := d.NumCols(), float64(d.NumRows())
	cv := la.NewColView(d.X)
	w := la.NewVec(cols)
	r := la.NewVec(d.NumRows())
	for round := 0; round < updates; round++ {
		d.X.MatVec(w, r) // full recompute — the thing the engine avoids
		pos := round * bs % cols
		for k := 0; k < bs; k++ {
			j := int32(pos + k)
			rows, vals := cv.Col(j)
			var g, h float64
			for t, i := range rows {
				g += lin.GradCoeff(r[i], d.Y[i]) * vals[t]
				h += 2 * vals[t] * vals[t]
			}
			den := h + n*l2
			if den <= 0 {
				continue
			}
			tau := step / den
			w[j] = SoftThreshold(w[j]-tau*(g+n*l2*w[j]), tau*n*l1)
		}
	}
	if !la.Equal(res.W, w, 1e-9) {
		t.Fatal("incremental CD diverged from full-recompute reference")
	}
}

// TestCDRandomModeDeterministic: the seeded random block sequence makes
// runs bit-reproducible, and the solve actually reduces the composite
// objective.
func TestCDRandomModeDeterministic(t *testing.T) {
	run := func() la.Vec {
		r := newRig(t, 1, 2, nil)
		p := CDParams{BlockSize: 4, Mode: "random", Seed: 5}
		p.Loss = Composite{Inner: LeastSquares{}, L2: 0.02, L1: 0.01}
		p.Updates = 12
		p.SnapshotEvery = 4
		res, err := CD(r.ac, r.d, p, 0)
		if err != nil {
			t.Fatal(err)
		}
		f0 := Objective(r.d, p.Loss, la.NewVec(r.d.NumCols()))
		if f := Objective(r.d, p.Loss, res.W); f >= f0 {
			t.Fatalf("CD did not reduce the composite objective: %v → %v", f0, f)
		}
		return res.W
	}
	if !la.Equal(run(), run(), 0) {
		t.Fatal("seeded random-mode CD runs diverged")
	}
}

// TestCDLogisticConverges exercises the logistic curvature bound.
func TestCDLogisticConverges(t *testing.T) {
	d, err := dataset.Generate(dataset.SynthConfig{
		Name: "cd-logit", Rows: 200, Cols: 16, NNZPerRow: 8, Noise: 0.05, Binary: true, Seed: 13,
	})
	if err != nil {
		t.Fatal(err)
	}
	ac := cdRig(t, d, 2, 4)
	loss := Composite{Inner: Logistic{}, L2: 0.01, L1: 0.002}
	p := CDParams{BlockSize: 8}
	p.Loss = loss
	p.Updates = 30
	p.SnapshotEvery = 10
	res, err := CD(ac, d, p, 0)
	if err != nil {
		t.Fatal(err)
	}
	f0 := Objective(d, loss, la.NewVec(d.NumCols()))
	if f := Objective(d, loss, res.W); f >= f0*0.9 {
		t.Fatalf("logistic CD barely moved: %v → %v", f0, f)
	}
}

// TestCDRejectsUnknownObjective: a loss without a linear core or curvature
// bound fails fast instead of looping.
func TestCDRejectsUnknownObjective(t *testing.T) {
	r := newRig(t, 1, 2, nil)
	p := CDParams{}
	p.Loss = Ridge{Inner: badLoss{}, Lambda: 0.1}
	p.Updates = 4
	if _, err := CD(r.ac, r.d, p, 0); err == nil {
		t.Fatal("CD accepted an objective it cannot decompose")
	}
}

// badLoss is a non-linear stand-in.
type badLoss struct{}

func (badLoss) Value(la.SparseVec, float64, la.Vec) float64   { return 0 }
func (badLoss) AddGrad(la.SparseVec, float64, la.Vec, la.Vec) {}
func (badLoss) Name() string                                  { return "bad" }
