package dataset

import (
	"fmt"
	"math/rand"

	"repro/internal/la"
)

// SynthConfig describes a synthetic regression dataset generated around a
// planted weight vector: y = X·wTrue + noise. The generators below fill in
// shapes mimicking the paper's Table 2 datasets at a configurable scale.
type SynthConfig struct {
	Name      string
	Rows      int
	Cols      int
	NNZPerRow int     // stored entries per row; == Cols for dense datasets
	Noise     float64 // stddev of additive label noise
	Binary    bool    // if true labels are sign(X·wTrue + noise) ∈ {-1,+1}
	Seed      int64
}

// Validate checks the configuration.
func (c SynthConfig) Validate() error {
	if c.Rows <= 0 || c.Cols <= 0 {
		return fmt.Errorf("synth %q: non-positive shape %dx%d", c.Name, c.Rows, c.Cols)
	}
	if c.NNZPerRow <= 0 || c.NNZPerRow > c.Cols {
		return fmt.Errorf("synth %q: nnz per row %d out of (0,%d]", c.Name, c.NNZPerRow, c.Cols)
	}
	if c.Noise < 0 {
		return fmt.Errorf("synth %q: negative noise %v", c.Name, c.Noise)
	}
	return nil
}

// Generate builds the dataset deterministically from the seed.
func Generate(c SynthConfig) (*Dataset, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(c.Seed))
	wTrue := la.NewVec(c.Cols)
	for i := range wTrue {
		wTrue[i] = rng.NormFloat64()
	}
	x := la.NewCSR(c.Rows, c.Cols, c.Rows*c.NNZPerRow)
	y := la.NewVec(c.Rows)
	dense := c.NNZPerRow == c.Cols
	perm := make([]int32, c.Cols)
	for j := range perm {
		perm[j] = int32(j)
	}
	for i := 0; i < c.Rows; i++ {
		var sv la.SparseVec
		if dense {
			idx := make([]int32, c.Cols)
			val := make([]float64, c.Cols)
			for j := 0; j < c.Cols; j++ {
				idx[j] = int32(j)
				val[j] = rng.NormFloat64()
			}
			sv = la.SparseVec{Idx: idx, Val: val, N: c.Cols}
		} else {
			// partial Fisher–Yates to pick NNZPerRow distinct columns
			for k := 0; k < c.NNZPerRow; k++ {
				swap := k + rng.Intn(c.Cols-k)
				perm[k], perm[swap] = perm[swap], perm[k]
			}
			m := make(map[int32]float64, c.NNZPerRow)
			for k := 0; k < c.NNZPerRow; k++ {
				m[perm[k]] = rng.NormFloat64()
			}
			sv = la.SparseFromMap(c.Cols, m)
		}
		if err := x.AppendRow(sv); err != nil {
			return nil, err
		}
		lbl := sv.DotDense(wTrue)
		if c.Noise > 0 {
			lbl += c.Noise * rng.NormFloat64()
		}
		if c.Binary {
			if lbl >= 0 {
				lbl = 1
			} else {
				lbl = -1
			}
		}
		y[i] = lbl
	}
	d := &Dataset{Name: c.Name, X: x, Y: y}
	return d, d.Validate()
}

// Scale selects the size of the synthetic Table 2 analogues. The paper's
// datasets are cluster-sized (up to 19 GB); the reproduction defaults to
// shapes that preserve each dataset's character (sparsity, aspect ratio,
// label type) while fitting a single machine.
type Scale int

const (
	// ScaleTiny is for unit tests: hundreds of rows.
	ScaleTiny Scale = iota
	// ScaleSmall is for quick examples and CI benchmarks.
	ScaleSmall
	// ScaleFull is for regenerating the paper's figures.
	ScaleFull
)

func scalePick(s Scale, tiny, small, full int) int {
	switch s {
	case ScaleTiny:
		return tiny
	case ScaleSmall:
		return small
	default:
		return full
	}
}

// RCV1Like mimics rcv1_full.binary: a very sparse, wide text dataset with
// binary ±1 labels (697,641 × 47,236, ~0.16% dense in the paper).
func RCV1Like(s Scale, seed int64) SynthConfig {
	return SynthConfig{
		Name:      "rcv1-like",
		Rows:      scalePick(s, 240, 4000, 16000),
		Cols:      scalePick(s, 120, 1000, 4000),
		NNZPerRow: scalePick(s, 8, 24, 64), // keeps density well under 3%
		Noise:     0.3,
		Binary:    true,
		Seed:      seed,
	}
}

// MNIST8MLike mimics mnist8m: dense 784-feature image data with many rows
// (8.1M × 784 in the paper). Labels are treated as regression targets, as in
// the paper's least-squares experiments.
func MNIST8MLike(s Scale, seed int64) SynthConfig {
	cols := scalePick(s, 32, 196, 784)
	return SynthConfig{
		Name:      "mnist8m-like",
		Rows:      scalePick(s, 300, 6000, 24000),
		Cols:      cols,
		NNZPerRow: cols, // dense
		Noise:     0.5,
		Seed:      seed,
	}
}

// EpsilonLike mimics epsilon: dense, 2000 features, moderate rows
// (400,000 × 2000 in the paper), binary labels.
func EpsilonLike(s Scale, seed int64) SynthConfig {
	cols := scalePick(s, 40, 400, 2000)
	return SynthConfig{
		Name:      "epsilon-like",
		Rows:      scalePick(s, 200, 3000, 8000),
		Cols:      cols,
		NNZPerRow: cols, // dense
		Noise:     0.4,
		Binary:    true,
		Seed:      seed,
	}
}

// SparseWide is a high-dimensional, extremely sparse regression dataset
// (d ≈ 1e6 at full scale, ~100 nnz per row, density ~1e-4) built to
// exercise the O(nnz) sparse-delta data path: per-task work, driver
// updates, and wire payloads all scale with nnz while the model itself is a
// million-dimensional dense vector. Not a Table 2 analogue — it is the
// serving-layer stress shape for sparse workloads, addressable by name
// through the jobs API and the benchmarks.
func SparseWide(s Scale, seed int64) SynthConfig {
	return SynthConfig{
		Name:      "sparse-wide",
		Rows:      scalePick(s, 300, 3000, 20000),
		Cols:      scalePick(s, 20_000, 200_000, 1_000_000),
		NNZPerRow: scalePick(s, 16, 64, 100),
		Noise:     0.3,
		Seed:      seed,
	}
}

// Table2 returns the three paper datasets at the given scale, in the order
// the paper lists them.
func Table2(s Scale, seed int64) []SynthConfig {
	return []SynthConfig{
		RCV1Like(s, seed),
		MNIST8MLike(s, seed+1),
		EpsilonLike(s, seed+2),
	}
}
