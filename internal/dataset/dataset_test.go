package dataset

import (
	"strings"
	"testing"

	"repro/internal/la"
)

func tiny(t *testing.T) *Dataset {
	t.Helper()
	d, err := Generate(SynthConfig{Name: "t", Rows: 20, Cols: 6, NNZPerRow: 3, Noise: 0.1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestGenerateShapes(t *testing.T) {
	d := tiny(t)
	if d.NumRows() != 20 || d.NumCols() != 6 {
		t.Fatalf("shape %dx%d", d.NumRows(), d.NumCols())
	}
	if d.X.NNZ() != 20*3 {
		t.Fatalf("NNZ = %d, want 60", d.X.NNZ())
	}
}

func TestGenerateDeterministic(t *testing.T) {
	c := SynthConfig{Name: "t", Rows: 15, Cols: 8, NNZPerRow: 4, Noise: 0.2, Seed: 42}
	d1, err := Generate(c)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := Generate(c)
	if err != nil {
		t.Fatal(err)
	}
	if !la.Equal(d1.Y, d2.Y, 0) {
		t.Fatal("labels differ across identical seeds")
	}
	for i := 0; i < 15; i++ {
		if !la.Equal(d1.X.Row(i).Dense(), d2.X.Row(i).Dense(), 0) {
			t.Fatalf("row %d differs across identical seeds", i)
		}
	}
	d3, err := Generate(SynthConfig{Name: "t", Rows: 15, Cols: 8, NNZPerRow: 4, Noise: 0.2, Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	if la.Equal(d1.Y, d3.Y, 0) {
		t.Fatal("different seeds produced identical labels")
	}
}

func TestGenerateBinaryLabels(t *testing.T) {
	d, err := Generate(SynthConfig{Name: "b", Rows: 50, Cols: 5, NNZPerRow: 5, Binary: true, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i, y := range d.Y {
		if y != 1 && y != -1 {
			t.Fatalf("label %d = %v, want ±1", i, y)
		}
	}
}

func TestGenerateValidation(t *testing.T) {
	cases := []SynthConfig{
		{Name: "bad", Rows: 0, Cols: 3, NNZPerRow: 1},
		{Name: "bad", Rows: 3, Cols: 0, NNZPerRow: 1},
		{Name: "bad", Rows: 3, Cols: 3, NNZPerRow: 0},
		{Name: "bad", Rows: 3, Cols: 3, NNZPerRow: 4},
		{Name: "bad", Rows: 3, Cols: 3, NNZPerRow: 2, Noise: -1},
	}
	for i, c := range cases {
		if _, err := Generate(c); err == nil {
			t.Fatalf("case %d: invalid config accepted", i)
		}
	}
}

func TestSplitCoversAllRows(t *testing.T) {
	d := tiny(t)
	parts, err := Split(d, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 6 {
		t.Fatalf("got %d partitions", len(parts))
	}
	covered := 0
	prevHi := 0
	for i, p := range parts {
		if p.Index != i {
			t.Fatalf("partition %d has index %d", i, p.Index)
		}
		if p.RowLo != prevHi {
			t.Fatalf("gap before partition %d: lo=%d prev hi=%d", i, p.RowLo, prevHi)
		}
		if p.NumRows() != p.X.NumRows || p.NumRows() != len(p.Y) {
			t.Fatalf("partition %d inconsistent sizes", i)
		}
		covered += p.NumRows()
		prevHi = p.RowHi
	}
	if covered != d.NumRows() {
		t.Fatalf("covered %d of %d rows", covered, d.NumRows())
	}
	// content check: partition rows equal dataset rows
	for _, p := range parts {
		for local := 0; local < p.NumRows(); local++ {
			g := p.GlobalRow(local)
			if !la.Equal(p.X.Row(local).Dense(), d.X.Row(g).Dense(), 0) {
				t.Fatalf("partition row %d != dataset row %d", local, g)
			}
			if p.Y[local] != d.Y[g] {
				t.Fatalf("partition label %d != dataset label %d", local, g)
			}
		}
	}
}

func TestSplitErrors(t *testing.T) {
	d := tiny(t)
	if _, err := Split(d, 0); err == nil {
		t.Fatal("zero partitions accepted")
	}
	if _, err := Split(d, d.NumRows()+1); err == nil {
		t.Fatal("more partitions than rows accepted")
	}
}

func TestLIBSVMRoundTrip(t *testing.T) {
	d := tiny(t)
	var sb strings.Builder
	if err := WriteLIBSVM(&sb, d); err != nil {
		t.Fatal(err)
	}
	got, err := ReadLIBSVM(strings.NewReader(sb.String()), "t2", d.NumCols())
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != d.NumRows() || got.NumCols() != d.NumCols() {
		t.Fatalf("round trip shape %dx%d", got.NumRows(), got.NumCols())
	}
	for i := 0; i < d.NumRows(); i++ {
		if !la.Equal(got.X.Row(i).Dense(), d.X.Row(i).Dense(), 1e-12) {
			t.Fatalf("row %d differs after round trip", i)
		}
	}
	if !la.Equal(got.Y, d.Y, 1e-12) {
		t.Fatal("labels differ after round trip")
	}
}

func TestReadLIBSVMParsing(t *testing.T) {
	in := "1 1:0.5 3:2\n# comment\n\n-1 2:1\n"
	d, err := ReadLIBSVM(strings.NewReader(in), "p", 0)
	if err != nil {
		t.Fatal(err)
	}
	if d.NumRows() != 2 || d.NumCols() != 3 {
		t.Fatalf("shape %dx%d, want 2x3", d.NumRows(), d.NumCols())
	}
	if !la.Equal(d.X.Row(0).Dense(), la.Vec{0.5, 0, 2}, 0) {
		t.Fatalf("row 0 = %v", d.X.Row(0).Dense())
	}
	if d.Y[0] != 1 || d.Y[1] != -1 {
		t.Fatalf("labels %v", d.Y)
	}
}

func TestReadLIBSVMUnsortedIndices(t *testing.T) {
	d, err := ReadLIBSVM(strings.NewReader("2 3:3 1:1\n"), "u", 0)
	if err != nil {
		t.Fatal(err)
	}
	if !la.Equal(d.X.Row(0).Dense(), la.Vec{1, 0, 3}, 0) {
		t.Fatalf("row = %v", d.X.Row(0).Dense())
	}
}

func TestReadLIBSVMErrors(t *testing.T) {
	cases := []string{
		"x 1:1\n",     // bad label
		"1 a:1\n",     // bad index
		"1 0:1\n",     // index < 1
		"1 1:zz\n",    // bad value
		"1 nocolon\n", // missing colon
	}
	for i, in := range cases {
		if _, err := ReadLIBSVM(strings.NewReader(in), "bad", 0); err == nil {
			t.Fatalf("case %d accepted: %q", i, in)
		}
	}
	if _, err := ReadLIBSVM(strings.NewReader("1 5:1\n"), "over", 3); err == nil {
		t.Fatal("feature index beyond declared cols accepted")
	}
}

func TestStats(t *testing.T) {
	d := tiny(t)
	s := d.Stats()
	if s.Rows != 20 || s.Cols != 6 || s.NNZ != 60 {
		t.Fatalf("stats %+v", s)
	}
	if s.Density <= 0 || s.Density > 1 {
		t.Fatalf("density %v", s.Density)
	}
	if s.SizeMB <= 0 {
		t.Fatalf("size %v", s.SizeMB)
	}
}

func TestTable2Configs(t *testing.T) {
	cfgs := Table2(ScaleTiny, 7)
	if len(cfgs) != 3 {
		t.Fatalf("got %d configs", len(cfgs))
	}
	names := map[string]bool{}
	for _, c := range cfgs {
		if err := c.Validate(); err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
		names[c.Name] = true
		d, err := Generate(c)
		if err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
		if err := d.Validate(); err != nil {
			t.Fatal(err)
		}
	}
	for _, want := range []string{"rcv1-like", "mnist8m-like", "epsilon-like"} {
		if !names[want] {
			t.Fatalf("missing dataset %s", want)
		}
	}
	// rcv1-like must be sparse, the others dense
	rcv1, _ := Generate(cfgs[0])
	if rcv1.X.Density() > 0.1 {
		t.Fatalf("rcv1-like density %v too high", rcv1.X.Density())
	}
	eps, _ := Generate(cfgs[2])
	if eps.X.Density() != 1.0 {
		t.Fatalf("epsilon-like density %v, want dense", eps.X.Density())
	}
}

func TestScalesMonotone(t *testing.T) {
	tinyCfg := RCV1Like(ScaleTiny, 1)
	small := RCV1Like(ScaleSmall, 1)
	full := RCV1Like(ScaleFull, 1)
	if !(tinyCfg.Rows < small.Rows && small.Rows < full.Rows) {
		t.Fatalf("rows not monotone: %d %d %d", tinyCfg.Rows, small.Rows, full.Rows)
	}
}
