package dataset

import (
	"fmt"
	"math/rand"

	"repro/internal/la"
)

// TrainTestSplit partitions the rows of d into a training and a test set by
// a seeded shuffle. testFrac is the fraction of rows held out (0, 1).
func TrainTestSplit(d *Dataset, testFrac float64, seed int64) (train, test *Dataset, err error) {
	if err := d.Validate(); err != nil {
		return nil, nil, err
	}
	if testFrac <= 0 || testFrac >= 1 {
		return nil, nil, fmt.Errorf("dataset %q: test fraction %v outside (0,1)", d.Name, testFrac)
	}
	n := d.NumRows()
	nTest := int(testFrac * float64(n))
	if nTest == 0 || nTest == n {
		return nil, nil, fmt.Errorf("dataset %q: split %v leaves an empty side (%d rows)", d.Name, testFrac, n)
	}
	perm := rand.New(rand.NewSource(seed)).Perm(n)
	build := func(rows []int, suffix string) (*Dataset, error) {
		x := la.NewCSR(len(rows), d.NumCols(), 0)
		y := la.NewVec(len(rows))
		for i, r := range rows {
			if err := x.AppendRow(d.X.Row(r)); err != nil {
				return nil, err
			}
			y[i] = d.Y[r]
		}
		out := &Dataset{Name: d.Name + suffix, X: x, Y: y}
		return out, out.Validate()
	}
	test, err = build(perm[:nTest], "-test")
	if err != nil {
		return nil, nil, err
	}
	train, err = build(perm[nTest:], "-train")
	if err != nil {
		return nil, nil, err
	}
	return train, test, nil
}
