// Package dataset provides the data substrate for the ASYNC reproduction:
// an in-memory labelled design matrix, LIBSVM-format I/O, contiguous row
// partitioning (the unit of work shipped to cluster workers), and seeded
// synthetic generators that stand in for the paper's LIBSVM datasets
// (rcv1_full.binary, mnist8m, epsilon — Table 2).
package dataset

import (
	"fmt"

	"repro/internal/la"
)

// Dataset is a labelled design matrix: row i of X is example i with label Y[i].
type Dataset struct {
	Name string
	X    *la.CSR
	Y    la.Vec
}

// Validate checks internal consistency.
func (d *Dataset) Validate() error {
	if d.X == nil {
		return fmt.Errorf("dataset %q: nil design matrix", d.Name)
	}
	if !d.X.Complete() {
		return fmt.Errorf("dataset %q: incomplete CSR (%d of %d rows)", d.Name, len(d.X.RowPtr)-1, d.X.NumRows)
	}
	if d.X.NumRows != len(d.Y) {
		return fmt.Errorf("dataset %q: %d rows but %d labels", d.Name, d.X.NumRows, len(d.Y))
	}
	return nil
}

// NumRows returns the number of examples.
func (d *Dataset) NumRows() int { return d.X.NumRows }

// NumCols returns the feature dimension.
func (d *Dataset) NumCols() int { return d.X.NumCols }

// Stats summarizes a dataset for Table 2-style reporting.
type Stats struct {
	Name    string
	Rows    int
	Cols    int
	NNZ     int
	Density float64
	SizeMB  float64 // approximate in-memory size of the CSR + labels
}

// Stats computes summary statistics.
func (d *Dataset) Stats() Stats {
	nnz := d.X.NNZ()
	// 8 bytes per value, 4 per column index, 8 per row pointer, 8 per label.
	bytes := float64(nnz)*12 + float64(len(d.X.RowPtr))*8 + float64(len(d.Y))*8
	return Stats{
		Name:    d.Name,
		Rows:    d.NumRows(),
		Cols:    d.NumCols(),
		NNZ:     nnz,
		Density: d.X.Density(),
		SizeMB:  bytes / (1 << 20),
	}
}

// Partition is a contiguous block of rows of a dataset. RowLo/RowHi are
// global row indices; they are what SAGA-style history tables key on.
type Partition struct {
	Dataset string
	Index   int
	RowLo   int // inclusive global row index
	RowHi   int // exclusive global row index
	X       *la.CSR
	Y       la.Vec
}

// NumRows returns the number of examples in the partition.
func (p *Partition) NumRows() int { return p.RowHi - p.RowLo }

// GlobalRow converts a local row offset into the global sample index.
func (p *Partition) GlobalRow(local int) int { return p.RowLo + local }

// Split partitions d into n contiguous row blocks of near-equal size.
// Storage is copied so partitions can be handed to concurrent workers
// (and serialized over a real transport) without sharing.
func Split(d *Dataset, n int) ([]*Partition, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if n <= 0 {
		return nil, fmt.Errorf("dataset %q: non-positive partition count %d", d.Name, n)
	}
	rows := d.NumRows()
	if n > rows {
		return nil, fmt.Errorf("dataset %q: %d partitions for %d rows", d.Name, n, rows)
	}
	parts := make([]*Partition, 0, n)
	for i := 0; i < n; i++ {
		lo := i * rows / n
		hi := (i + 1) * rows / n
		parts = append(parts, &Partition{
			Dataset: d.Name,
			Index:   i,
			RowLo:   lo,
			RowHi:   hi,
			X:       d.X.SliceRows(lo, hi),
			Y:       d.Y[lo:hi].Clone(),
		})
	}
	return parts, nil
}
