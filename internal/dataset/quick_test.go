package dataset

import (
	"testing"
	"testing/quick"
)

// TestPropSplitPartitionsCoverExactly: for any valid (rows, parts), Split
// yields contiguous, non-overlapping, complete coverage with sizes within
// one row of each other.
func TestPropSplitPartitionsCoverExactly(t *testing.T) {
	f := func(rowsRaw, partsRaw uint8) bool {
		rows := int(rowsRaw%120) + 1
		parts := int(partsRaw)%rows + 1
		d, err := Generate(SynthConfig{
			Name: "q", Rows: rows, Cols: 4, NNZPerRow: 2, Seed: int64(rows*31 + parts),
		})
		if err != nil {
			return false
		}
		ps, err := Split(d, parts)
		if err != nil {
			return false
		}
		if len(ps) != parts {
			return false
		}
		prevHi := 0
		minSize, maxSize := rows, 0
		for i, p := range ps {
			if p.Index != i || p.RowLo != prevHi || p.RowHi < p.RowLo {
				return false
			}
			n := p.NumRows()
			if n < minSize {
				minSize = n
			}
			if n > maxSize {
				maxSize = n
			}
			prevHi = p.RowHi
		}
		return prevHi == rows && maxSize-minSize <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestPropGlobalRowIdentity: GlobalRow is a bijection between local offsets
// and the partition's global row range.
func TestPropGlobalRowIdentity(t *testing.T) {
	d, err := Generate(SynthConfig{Name: "q", Rows: 60, Cols: 4, NNZPerRow: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	ps, err := Split(d, 7)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, p := range ps {
		for local := 0; local < p.NumRows(); local++ {
			g := p.GlobalRow(local)
			if g < p.RowLo || g >= p.RowHi || seen[g] {
				t.Fatalf("bad global row %d in partition %d", g, p.Index)
			}
			seen[g] = true
		}
	}
	if len(seen) != 60 {
		t.Fatalf("covered %d rows", len(seen))
	}
}
