package dataset

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"repro/internal/la"
)

// ReadLIBSVM parses the LIBSVM text format ("label idx:val idx:val ...",
// 1-based feature indices). If cols <= 0 the feature dimension is inferred
// from the largest index seen.
func ReadLIBSVM(r io.Reader, name string, cols int) (*Dataset, error) {
	type row struct {
		y   float64
		idx []int32
		val []float64
	}
	var rows []row
	maxCol := 0
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		y, err := strconv.ParseFloat(fields[0], 64)
		if err != nil {
			return nil, fmt.Errorf("libsvm %q line %d: bad label %q: %v", name, lineNo, fields[0], err)
		}
		rw := row{y: y}
		for _, f := range fields[1:] {
			colon := strings.IndexByte(f, ':')
			if colon < 0 {
				return nil, fmt.Errorf("libsvm %q line %d: bad feature %q", name, lineNo, f)
			}
			j, err := strconv.Atoi(f[:colon])
			if err != nil || j < 1 {
				return nil, fmt.Errorf("libsvm %q line %d: bad feature index %q", name, lineNo, f)
			}
			v, err := strconv.ParseFloat(f[colon+1:], 64)
			if err != nil {
				return nil, fmt.Errorf("libsvm %q line %d: bad feature value %q", name, lineNo, f)
			}
			rw.idx = append(rw.idx, int32(j-1))
			rw.val = append(rw.val, v)
			if j > maxCol {
				maxCol = j
			}
		}
		rows = append(rows, rw)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("libsvm %q: %v", name, err)
	}
	if cols <= 0 {
		cols = maxCol
	} else if maxCol > cols {
		return nil, fmt.Errorf("libsvm %q: feature index %d exceeds declared cols %d", name, maxCol, cols)
	}
	x := la.NewCSR(len(rows), cols, 0)
	y := la.NewVec(len(rows))
	for i, rw := range rows {
		// LIBSVM does not require sorted indices; sort defensively.
		if !sort.SliceIsSorted(rw.idx, func(a, b int) bool { return rw.idx[a] < rw.idx[b] }) {
			sort.Sort(&pairSorter{rw.idx, rw.val})
		}
		sv, err := la.NewSparseVec(cols, rw.idx, rw.val)
		if err != nil {
			return nil, fmt.Errorf("libsvm %q row %d: %v", name, i, err)
		}
		if err := x.AppendRow(sv); err != nil {
			return nil, err
		}
		y[i] = rw.y
	}
	d := &Dataset{Name: name, X: x, Y: y}
	return d, d.Validate()
}

type pairSorter struct {
	idx []int32
	val []float64
}

func (p *pairSorter) Len() int           { return len(p.idx) }
func (p *pairSorter) Less(i, j int) bool { return p.idx[i] < p.idx[j] }
func (p *pairSorter) Swap(i, j int) {
	p.idx[i], p.idx[j] = p.idx[j], p.idx[i]
	p.val[i], p.val[j] = p.val[j], p.val[i]
}

// WriteLIBSVM writes d in LIBSVM text format (1-based indices).
func WriteLIBSVM(w io.Writer, d *Dataset) error {
	if err := d.Validate(); err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	for i := 0; i < d.NumRows(); i++ {
		if _, err := fmt.Fprintf(bw, "%g", d.Y[i]); err != nil {
			return err
		}
		r := d.X.Row(i)
		for k, j := range r.Idx {
			if _, err := fmt.Fprintf(bw, " %d:%g", j+1, r.Val[k]); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}
