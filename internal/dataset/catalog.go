package dataset

import (
	"fmt"
	"sort"
	"strings"
)

// catalog maps the Table 2 dataset names to their synthetic generators, so
// serving layers can resolve a dataset from a request by name instead of
// hard-coding one generator per call site.
var catalog = map[string]func(Scale, int64) SynthConfig{
	"rcv1-like":    RCV1Like,
	"mnist8m-like": MNIST8MLike,
	"epsilon-like": EpsilonLike,
	"sparse-wide":  SparseWide,
}

// CatalogNames lists the named synthetic datasets, sorted.
func CatalogNames() []string {
	out := make([]string, 0, len(catalog))
	for name := range catalog {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// ParseScale resolves a scale name ("tiny", "small", "full"); the empty
// string defaults to tiny.
func ParseScale(s string) (Scale, error) {
	switch strings.ToLower(s) {
	case "", "tiny":
		return ScaleTiny, nil
	case "small":
		return ScaleSmall, nil
	case "full":
		return ScaleFull, nil
	default:
		return ScaleTiny, fmt.Errorf("dataset: unknown scale %q (tiny, small, full)", s)
	}
}

// ScaleName renders a Scale back to its catalog name.
func ScaleName(s Scale) string {
	switch s {
	case ScaleSmall:
		return "small"
	case ScaleFull:
		return "full"
	default:
		return "tiny"
	}
}

// ByName resolves a named synthetic dataset configuration at the given
// scale and seed (case-insensitive).
func ByName(name string, s Scale, seed int64) (SynthConfig, error) {
	mk, ok := catalog[strings.ToLower(name)]
	if !ok {
		return SynthConfig{}, fmt.Errorf("dataset: unknown dataset %q (known: %s)",
			name, strings.Join(CatalogNames(), ", "))
	}
	return mk(s, seed), nil
}
