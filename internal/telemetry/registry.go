package telemetry

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing value. Inc/Add are lock-free and
// allocation-free.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n; negative deltas are dropped (counters only move up).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value reads the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a value that can go up and down, stored as float64 bits in one
// atomic word. Set/Add are lock-free and allocation-free.
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// SetInt replaces the value with an integer.
func (g *Gauge) SetInt(v int64) { g.Set(float64(v)) }

// Add shifts the value by d (CAS loop).
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Value reads the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// kind discriminates family storage; String maps it to the exposition TYPE.
type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
	kindCounterFunc
	kindGaugeFunc
	kindLabeledCounterFunc
	kindLabeledGaugeFunc
)

func (k kind) String() string {
	switch k {
	case kindGauge, kindGaugeFunc, kindLabeledGaugeFunc:
		return "gauge"
	case kindHistogram:
		return "histogram"
	default:
		return "counter"
	}
}

// family is one named metric with its children (one per label value; the
// unlabeled case is the single child keyed "").
type family struct {
	name   string
	help   string
	kind   kind
	label  string    // label name for Vec/labeled families ("" = unlabeled)
	bounds []float64 // histogram upper bounds

	mu       sync.RWMutex
	children map[string]any // label value -> *Counter | *Gauge | *Histogram

	fn      func() float64                            // func metrics, read at scrape
	collect func(emit func(label string, v float64)) // labeled func metrics
}

// child returns the metric for one label value, creating it on first use.
// The read path is an RLock + map hit; hot callers cache the result.
func (f *family) child(labelValue string) any {
	f.mu.RLock()
	c := f.children[labelValue]
	f.mu.RUnlock()
	if c != nil {
		return c
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if c := f.children[labelValue]; c != nil {
		return c
	}
	var n any
	switch f.kind {
	case kindCounter:
		n = &Counter{}
	case kindGauge:
		n = &Gauge{}
	case kindHistogram:
		n = newHistogram(f.bounds)
	default:
		panic(fmt.Sprintf("telemetry: %s: func metric has no children", f.name))
	}
	if f.children == nil {
		f.children = map[string]any{}
	}
	f.children[labelValue] = n
	return n
}

// Registry is a name-keyed set of metric families. Registration is
// get-or-create: registering the same name with the same shape returns the
// existing metric, so package-level instrumentation can never double-count;
// re-registering with a different type or label name panics (a programming
// error, caught by any test that touches both sites).
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry { return &Registry{fams: map[string]*family{}} }

var std = NewRegistry()

// Default returns the process-global registry the internal layers (core,
// opt, store, cluster) register into at init.
func Default() *Registry { return std }

func (r *Registry) family(name, help string, k kind, label string, bounds []float64) *family {
	if !validName(name) {
		panic(fmt.Sprintf("telemetry: invalid metric name %q", name))
	}
	if label != "" && !validName(label) {
		panic(fmt.Sprintf("telemetry: metric %q: invalid label name %q", name, label))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.fams[name]; ok {
		if f.kind.String() != k.String() || f.label != label {
			panic(fmt.Sprintf("telemetry: metric %q re-registered as %s{%s}, was %s{%s}",
				name, k, label, f.kind, f.label))
		}
		// func metrics rebind to the latest closure (a rebuilt owner's
		// snapshot must win over the dead one's)
		return f
	}
	f := &family{name: name, help: help, kind: k, label: label, bounds: bounds}
	r.fams[name] = f
	return f
}

// validName checks the Prometheus metric/label name charset
// [a-zA-Z_:][a-zA-Z0-9_:]* (colons for metric names only; harmless to
// accept for labels we never generate).
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// Counter registers (or returns) an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	return r.family(name, help, kindCounter, "", nil).child("").(*Counter)
}

// Gauge registers (or returns) an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.family(name, help, kindGauge, "", nil).child("").(*Gauge)
}

// Histogram registers (or returns) an unlabeled histogram with the given
// upper bounds (the first registration's buckets win).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	return r.family(name, help, kindHistogram, "", buckets).child("").(*Histogram)
}

// CounterVec is a counter family keyed by one label.
type CounterVec struct{ f *family }

// CounterVec registers (or returns) a single-label counter family.
func (r *Registry) CounterVec(name, help, label string) CounterVec {
	return CounterVec{r.family(name, help, kindCounter, label, nil)}
}

// With returns the counter for one label value, creating it on first use.
// Cache the result on hot paths.
func (v CounterVec) With(value string) *Counter { return v.f.child(value).(*Counter) }

// GaugeVec is a gauge family keyed by one label.
type GaugeVec struct{ f *family }

// GaugeVec registers (or returns) a single-label gauge family.
func (r *Registry) GaugeVec(name, help, label string) GaugeVec {
	return GaugeVec{r.family(name, help, kindGauge, label, nil)}
}

// With returns the gauge for one label value, creating it on first use.
func (v GaugeVec) With(value string) *Gauge { return v.f.child(value).(*Gauge) }

// HistogramVec is a histogram family keyed by one label.
type HistogramVec struct{ f *family }

// HistogramVec registers (or returns) a single-label histogram family.
func (r *Registry) HistogramVec(name, help, label string, buckets []float64) HistogramVec {
	return HistogramVec{r.family(name, help, kindHistogram, label, buckets)}
}

// With returns the histogram for one label value, creating it on first use.
func (v HistogramVec) With(value string) *Histogram { return v.f.child(value).(*Histogram) }

// CounterFunc registers a counter whose value is read from fn at scrape
// time (for owners that already keep an authoritative count).
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	r.family(name, help, kindCounterFunc, "", nil).fn = fn
}

// GaugeFunc registers a gauge read from fn at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.family(name, help, kindGaugeFunc, "", nil).fn = fn
}

// LabeledCounterFunc registers a counter family whose label set is dynamic:
// collect is called at scrape time and emits one sample per label value.
func (r *Registry) LabeledCounterFunc(name, help, label string, collect func(emit func(labelValue string, v float64))) {
	r.family(name, help, kindLabeledCounterFunc, label, nil).collect = collect
}

// LabeledGaugeFunc registers a gauge family with a dynamic label set.
func (r *Registry) LabeledGaugeFunc(name, help, label string, collect func(emit func(labelValue string, v float64))) {
	r.family(name, help, kindLabeledGaugeFunc, label, nil).collect = collect
}
