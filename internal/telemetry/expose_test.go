package telemetry

import (
	"bufio"
	"fmt"
	"math"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

func expose(r *Registry) string {
	var sb strings.Builder
	r.WritePrometheus(&sb)
	return sb.String()
}

func TestExposeCounterGauge(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "Counts a.").Add(3)
	r.Gauge("b", "Measures b.").Set(1.5)
	got := expose(r)
	want := "# HELP a_total Counts a.\n# TYPE a_total counter\na_total 3\n" +
		"# HELP b Measures b.\n# TYPE b gauge\nb 1.5\n"
	if got != want {
		t.Fatalf("exposition:\n%q\nwant:\n%q", got, want)
	}
}

func TestExposeSortedFamiliesAndChildren(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("z_total", "z", "k")
	v.With("b").Inc()
	v.With("a").Inc()
	r.Counter("a_total", "a").Inc()
	got := expose(r)
	ia := strings.Index(got, "# HELP a_total")
	iz := strings.Index(got, "# HELP z_total")
	if ia < 0 || iz < 0 || ia > iz {
		t.Fatalf("families not name-sorted:\n%s", got)
	}
	if strings.Index(got, `z_total{k="a"}`) > strings.Index(got, `z_total{k="b"}`) {
		t.Fatalf("children not label-sorted:\n%s", got)
	}
}

func TestExposeHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "Latency.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(2)
	got := expose(r)
	for _, want := range []string{
		"# TYPE lat_seconds histogram",
		`lat_seconds_bucket{le="0.1"} 1`,
		`lat_seconds_bucket{le="1"} 2`,
		`lat_seconds_bucket{le="+Inf"} 3`,
		"lat_seconds_sum 2.55",
		"lat_seconds_count 3",
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("missing %q in:\n%s", want, got)
		}
	}
}

func TestExposeLabeledHistogram(t *testing.T) {
	r := NewRegistry()
	hv := r.HistogramVec("hv_seconds", "h", "tenant", []float64{1})
	hv.With("acme").Observe(0.5)
	got := expose(r)
	for _, want := range []string{
		`hv_seconds_bucket{tenant="acme",le="1"} 1`,
		`hv_seconds_bucket{tenant="acme",le="+Inf"} 1`,
		`hv_seconds_sum{tenant="acme"} 0.5`,
		`hv_seconds_count{tenant="acme"} 1`,
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("missing %q in:\n%s", want, got)
		}
	}
}

func TestExposeEscaping(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("esc_total", "Help with \\ and\nnewline.", "k")
	v.With("a\"b\\c\nd").Inc()
	got := expose(r)
	if !strings.Contains(got, `# HELP esc_total Help with \\ and\nnewline.`) {
		t.Fatalf("HELP not escaped:\n%s", got)
	}
	if !strings.Contains(got, `esc_total{k="a\"b\\c\nd"} 1`) {
		t.Fatalf("label not escaped:\n%s", got)
	}
}

func TestExposeFuncMetrics(t *testing.T) {
	r := NewRegistry()
	n := 41.0
	r.CounterFunc("fc_total", "fc", func() float64 { return n })
	r.GaugeFunc("fg", "fg", func() float64 { return -2 })
	r.LabeledCounterFunc("lc_total", "lc", "tenant", func(emit func(string, float64)) {
		emit("b", 2)
		emit("a", 1)
	})
	r.LabeledGaugeFunc("lg", "lg", "tenant", func(emit func(string, float64)) {})
	n++
	got := expose(r)
	for _, want := range []string{
		"fc_total 42\n", "fg -2\n",
		`lc_total{tenant="a"} 1`, `lc_total{tenant="b"} 2`,
		"# TYPE lg gauge\n", // metadata only: no samples yet
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("missing %q in:\n%s", want, got)
		}
	}
	ia := strings.Index(got, `lc_total{tenant="a"}`)
	ib := strings.Index(got, `lc_total{tenant="b"}`)
	if ia > ib {
		t.Fatalf("labeled func samples not sorted:\n%s", got)
	}
}

func TestFormatValueSpecials(t *testing.T) {
	if formatValue(math.Inf(1)) != "+Inf" || formatValue(math.Inf(-1)) != "-Inf" || formatValue(math.NaN()) != "NaN" {
		t.Fatalf("specials: %q %q %q", formatValue(math.Inf(1)), formatValue(math.Inf(-1)), formatValue(math.NaN()))
	}
	if formatValue(1) != "1" {
		t.Fatalf("integer float renders %q", formatValue(1))
	}
}

// Exposition grammar of the 0.0.4 text format, per line.
var (
	helpRe   = regexp.MustCompile(`^# HELP [a-zA-Z_:][a-zA-Z0-9_:]* .*$`)
	typeRe   = regexp.MustCompile(`^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|histogram|summary|untyped)$`)
	sampleRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"(,[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*")*\})? (NaN|[+-]?Inf|[+-]?[0-9].*)$`)
)

// ValidateExposition is the promlint-style structural check shared with the
// serving-layer tests (exported via export_test only to this package; the
// jobs package carries its own copy of the regexes).
func validateExposition(t *testing.T, body string) {
	t.Helper()
	typed := map[string]string{}
	var lastType string
	sc := bufio.NewScanner(strings.NewReader(body))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for ln := 1; sc.Scan(); ln++ {
		line := sc.Text()
		if line == "" {
			continue
		}
		switch {
		case strings.HasPrefix(line, "# HELP "):
			if !helpRe.MatchString(line) {
				t.Fatalf("line %d: bad HELP: %q", ln, line)
			}
		case strings.HasPrefix(line, "# TYPE "):
			m := typeRe.FindStringSubmatch(line)
			if m == nil {
				t.Fatalf("line %d: bad TYPE: %q", ln, line)
			}
			if _, dup := typed[m[1]]; dup {
				t.Fatalf("line %d: duplicate TYPE for %s", ln, m[1])
			}
			typed[m[1]] = m[2]
			lastType = m[1]
		case strings.HasPrefix(line, "#"):
			// comment: fine
		default:
			m := sampleRe.FindStringSubmatch(line)
			if m == nil {
				t.Fatalf("line %d: bad sample: %q", ln, line)
			}
			name := m[1]
			base := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name, "_bucket"), "_sum"), "_count")
			if _, ok := typed[name]; !ok {
				if _, ok := typed[base]; !ok {
					t.Fatalf("line %d: sample %s has no TYPE", ln, name)
				}
			}
			_ = lastType
			if v := m[len(m)-1]; v != "NaN" && !strings.HasSuffix(v, "Inf") {
				if _, err := strconv.ParseFloat(v, 64); err != nil {
					t.Fatalf("line %d: bad value %q: %v", ln, v, err)
				}
			}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestExpositionGrammar(t *testing.T) {
	r := NewRegistry()
	r.Counter("g1_total", "c").Inc()
	r.Gauge("g2", "g").Set(math.Inf(1))
	h := r.Histogram("g3_seconds", "h", LatencyBuckets())
	for i := 0; i < 100; i++ {
		h.Observe(float64(i) * 1e-5)
	}
	v := r.CounterVec("g4_total", "v", "tenant")
	v.With(`we"ird\label` + "\nvalue").Inc()
	r.LabeledGaugeFunc("g5", "lg", "k", func(emit func(string, float64)) { emit("x", 1) })
	validateExposition(t, expose(r))
}

func TestExposeDeterministic(t *testing.T) {
	r := NewRegistry()
	for i := 0; i < 20; i++ {
		r.Counter(fmt.Sprintf("m%02d_total", i), "m").Add(int64(i))
	}
	if expose(r) != expose(r) {
		t.Fatal("exposition must be deterministic")
	}
}
