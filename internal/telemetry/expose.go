package telemetry

import (
	"bytes"
	"io"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders every family in the Prometheus text exposition
// format (0.0.4): families sorted by name, each with its HELP and TYPE
// line, children sorted by label value, histograms as cumulative _bucket
// series plus _sum and _count.
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.fams))
	for _, f := range r.fams {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	var b bytes.Buffer
	for _, f := range fams {
		f.expose(&b)
	}
	_, _ = w.Write(b.Bytes())
}

func (f *family) expose(b *bytes.Buffer) {
	b.WriteString("# HELP ")
	b.WriteString(f.name)
	b.WriteByte(' ')
	b.WriteString(escapeHelp(f.help))
	b.WriteString("\n# TYPE ")
	b.WriteString(f.name)
	b.WriteByte(' ')
	b.WriteString(f.kind.String())
	b.WriteByte('\n')
	switch f.kind {
	case kindCounterFunc, kindGaugeFunc:
		if f.fn != nil {
			writeSample(b, f.name, "", "", f.fn())
		}
	case kindLabeledCounterFunc, kindLabeledGaugeFunc:
		if f.collect == nil {
			return
		}
		type sample struct {
			label string
			v     float64
		}
		var samples []sample
		f.collect(func(label string, v float64) {
			samples = append(samples, sample{label, v})
		})
		sort.Slice(samples, func(i, j int) bool { return samples[i].label < samples[j].label })
		for _, s := range samples {
			writeSample(b, f.name, f.label, s.label, s.v)
		}
	default:
		f.mu.RLock()
		labels := make([]string, 0, len(f.children))
		children := make(map[string]any, len(f.children))
		for l, c := range f.children {
			labels = append(labels, l)
			children[l] = c
		}
		f.mu.RUnlock()
		sort.Strings(labels)
		for _, l := range labels {
			switch c := children[l].(type) {
			case *Counter:
				writeSample(b, f.name, f.label, l, float64(c.Value()))
			case *Gauge:
				writeSample(b, f.name, f.label, l, c.Value())
			case *Histogram:
				writeHistogram(b, f.name, f.label, l, c)
			}
		}
	}
}

func writeSample(b *bytes.Buffer, name, label, labelValue string, v float64) {
	b.WriteString(name)
	if label != "" {
		b.WriteByte('{')
		b.WriteString(label)
		b.WriteString(`="`)
		b.WriteString(EscapeLabel(labelValue))
		b.WriteString(`"}`)
	}
	b.WriteByte(' ')
	b.WriteString(formatValue(v))
	b.WriteByte('\n')
}

func writeHistogram(b *bytes.Buffer, name, label, labelValue string, h *Histogram) {
	cum, total, sum := h.snapshot()
	bucket := func(le string, n int64) {
		b.WriteString(name)
		b.WriteString("_bucket{")
		if label != "" {
			b.WriteString(label)
			b.WriteString(`="`)
			b.WriteString(EscapeLabel(labelValue))
			b.WriteString(`",`)
		}
		b.WriteString(`le="`)
		b.WriteString(le)
		b.WriteString(`"} `)
		b.WriteString(strconv.FormatInt(n, 10))
		b.WriteByte('\n')
	}
	for i, bound := range h.bounds {
		bucket(formatValue(bound), cum[i])
	}
	bucket("+Inf", total)
	writeSample(b, name+"_sum", label, labelValue, sum)
	writeSample(b, name+"_count", label, labelValue, float64(total))
}

// formatValue renders a sample value: shortest round-trip float, with the
// exposition spellings of the specials (+Inf, -Inf, NaN).
func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

// EscapeLabel escapes a label value per the exposition format: backslash,
// double quote, and newline.
func EscapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	return labelEscaper.Replace(v)
}

var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)

// escapeHelp escapes a HELP string: backslash and newline (quotes stay).
func escapeHelp(v string) string {
	if !strings.ContainsAny(v, "\\\n") {
		return v
	}
	return helpEscaper.Replace(v)
}
