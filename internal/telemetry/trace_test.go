package telemetry

import (
	"bufio"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func traceLines(t *testing.T, tr *Trace) []map[string]any {
	t.Helper()
	var sb strings.Builder
	if _, err := tr.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	var out []map[string]any
	sc := bufio.NewScanner(strings.NewReader(sb.String()))
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("line %q is not JSON: %v", sc.Text(), err)
		}
		out = append(out, m)
	}
	return out
}

func TestTraceEvents(t *testing.T) {
	tr := NewTrace("job-000001", 0)
	tr.Event("queued", "tenant", "acme", "priority", 3)
	tr.Event("dispatched", "engine", 0)
	lines := traceLines(t, tr)
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2", len(lines))
	}
	first := lines[0]
	if first["event"] != "queued" || first["run"] != "job-000001" {
		t.Fatalf("first line = %v", first)
	}
	if first["tenant"] != "acme" || first["priority"] != float64(3) {
		t.Fatalf("args missing: %v", first)
	}
	if first["seq"] != float64(1) || lines[1]["seq"] != float64(2) {
		t.Fatalf("seq not monotonic: %v %v", first["seq"], lines[1]["seq"])
	}
	if _, ok := first["time"]; !ok {
		t.Fatalf("no timestamp: %v", first)
	}
	if _, ok := first["level"]; ok {
		t.Fatalf("level key must be dropped: %v", first)
	}
	if tr.Run() != "job-000001" || tr.Len() != 2 || tr.Dropped() != 0 {
		t.Fatalf("accessors: run=%q len=%d dropped=%d", tr.Run(), tr.Len(), tr.Dropped())
	}
}

func TestTraceBounded(t *testing.T) {
	tr := NewTrace("r", 512)
	for i := 0; i < 100; i++ {
		tr.Event("tick", "i", i, "pad", "xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx")
	}
	if tr.Dropped() == 0 {
		t.Fatal("byte budget never dropped anything")
	}
	lines := traceLines(t, tr)
	if len(lines) == 0 || len(lines) >= 100 {
		t.Fatalf("retained %d lines", len(lines))
	}
	// the newest event always survives
	last := lines[len(lines)-1]
	if last["i"] != float64(99) {
		t.Fatalf("newest event evicted: %v", last)
	}
}

func TestTraceNilNoOp(t *testing.T) {
	var tr *Trace
	tr.Event("ignored")
	if n, err := tr.WriteTo(&strings.Builder{}); n != 0 || err != nil {
		t.Fatalf("nil WriteTo = %d, %v", n, err)
	}
	if tr.Run() != "" || tr.Len() != 0 || tr.Dropped() != 0 {
		t.Fatal("nil accessors must be zero")
	}
}

func TestTraceConcurrent(t *testing.T) {
	tr := NewTrace("r", 1<<20)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				tr.Event("e", "g", g, "i", i)
			}
		}(g)
	}
	wg.Wait()
	lines := traceLines(t, tr)
	if len(lines) != 400 {
		t.Fatalf("got %d lines, want 400", len(lines))
	}
	seen := map[float64]bool{}
	for _, l := range lines {
		s := l["seq"].(float64)
		if seen[s] {
			t.Fatalf("duplicate seq %v", s)
		}
		seen[s] = true
	}
}
