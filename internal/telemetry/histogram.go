package telemetry

import (
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// Histogram counts observations into fixed buckets (upper bounds, +Inf
// implicit) and tracks their running sum. Observe is lock-free and
// allocation-free: one atomic add into the bucket found by binary search
// plus a CAS loop on the float sum. Bucket counts are stored per-bucket
// (not cumulative); the exposition accumulates them, and renders _count
// from the bucket total so the histogram is internally consistent even
// under concurrent observation.
type Histogram struct {
	bounds  []float64 // strictly increasing upper bounds
	counts  []atomic.Int64
	sumBits atomic.Uint64
}

func newHistogram(bounds []float64) *Histogram {
	b := make([]float64, 0, len(bounds))
	b = append(b, bounds...)
	sort.Float64s(b)
	// drop an explicit +Inf and duplicates; the last slot is always +Inf
	for len(b) > 0 && math.IsInf(b[len(b)-1], 1) {
		b = b[:len(b)-1]
	}
	dedup := b[:0]
	for i, v := range b {
		if i == 0 || v != b[i-1] {
			dedup = append(dedup, v)
		}
	}
	b = dedup
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one value. NaN is dropped (it would poison the sum).
func (h *Histogram) Observe(v float64) {
	if v != v {
		return
	}
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if h.bounds[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	h.counts[lo].Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// ObserveSince records the seconds elapsed since start.
func (h *Histogram) ObserveSince(start time.Time) { h.Observe(time.Since(start).Seconds()) }

// Count returns the total number of observations.
func (h *Histogram) Count() int64 {
	var n int64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the running sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// snapshot returns cumulative counts aligned with bounds, the grand total
// (the +Inf bucket of the exposition), and the sum.
func (h *Histogram) snapshot() (cum []int64, total int64, sum float64) {
	cum = make([]int64, len(h.bounds))
	for i := range h.bounds {
		total += h.counts[i].Load()
		cum[i] = total
	}
	total += h.counts[len(h.bounds)].Load()
	return cum, total, h.Sum()
}

// ExpBuckets returns n exponentially spaced upper bounds: start,
// start*factor, start*factor², ...
func ExpBuckets(start, factor float64, n int) []float64 {
	b := make([]float64, n)
	v := start
	for i := range b {
		b[i] = v
		v *= factor
	}
	return b
}

// PowTwoBuckets returns the power-of-two integer bounds 0, 1, 2, 4, ...,
// 2^(n-2) — the natural shape for staleness and queue-depth distributions.
func PowTwoBuckets(n int) []float64 {
	b := make([]float64, n)
	for i := 1; i < n; i++ {
		b[i] = float64(int64(1) << (i - 1))
	}
	return b
}

// LatencyBuckets returns the default latency bounds: 1µs doubling up to
// ~8.4s (24 buckets), covering fsyncs through full checkpoint captures.
func LatencyBuckets() []float64 { return ExpBuckets(1e-6, 2, 24) }
