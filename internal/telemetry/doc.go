// Package telemetry is the repo's dependency-free observability spine: a
// metrics registry (atomic counters, gauges, fixed-bucket histograms,
// single-label families, scrape-time callback metrics) rendered in the
// Prometheus text exposition format, plus run-scoped structured trace
// events (JSONL via log/slog) correlated by run ID and dispatch_seq.
//
// # Zero-allocation invariant
//
// The hot-path operations — Counter.Inc/Add, Gauge.Set/Add,
// Histogram.Observe, and Observe/Inc on a cached Vec child — perform zero
// heap allocations and take no locks (atomics only). Instrumentation may
// therefore sit on per-task, per-update, and per-frame paths without
// perturbing what it measures; internal/bench pins the combined cost as
// telemetry.overhead_ns and a testing.AllocsPerRun test pins 0 allocs/op.
// Vec.With on a *new* label value allocates (it creates the child under a
// lock); hot callers resolve children once and reuse them. Trace events
// allocate (slog encoding) and are for low-cadence lifecycle points —
// dispatches, checkpoints, preemptions — never per-update loops.
//
// # Registries
//
// Default() is the process-global registry the internal layers (core
// coordinator, opt runtime, WAL store, wire codec) register into at init;
// serving layers own private registries (NewRegistry) for per-instance
// families and concatenate both expositions on scrape.
package telemetry
