package telemetry

import (
	"math"
	"sync"
	"testing"
)

func TestCounterBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "help")
	c.Inc()
	c.Add(4)
	c.Add(-3) // dropped: counters are monotonic
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if again := r.Counter("c_total", "help"); again != c {
		t.Fatal("re-registration must return the same counter")
	}
}

func TestGaugeBasics(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("g", "help")
	g.Set(2.5)
	g.Add(-1.25)
	if got := g.Value(); got != 1.25 {
		t.Fatalf("gauge = %v, want 1.25", got)
	}
	g.SetInt(7)
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge = %v, want 7", got)
	}
}

func TestGaugeConcurrentAdd(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("g", "help")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				g.Add(1)
			}
		}()
	}
	wg.Wait()
	if got := g.Value(); got != 8000 {
		t.Fatalf("gauge = %v, want 8000 (lost CAS updates)", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "help", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 3, 100, math.NaN()} {
		h.Observe(v)
	}
	if got := h.Count(); got != 5 {
		t.Fatalf("count = %d, want 5 (NaN must be dropped)", got)
	}
	cum, total, sum := h.snapshot()
	if total != 5 {
		t.Fatalf("total = %d, want 5", total)
	}
	// le=1: 0.5, 1; le=2: +1.5; le=4: +3; +Inf: +100
	want := []int64{2, 3, 4}
	for i, w := range want {
		if cum[i] != w {
			t.Fatalf("cum[%d] = %d, want %d", i, cum[i], w)
		}
	}
	if sum != 0.5+1+1.5+3+100 {
		t.Fatalf("sum = %v", sum)
	}
}

func TestHistogramBoundNormalization(t *testing.T) {
	h := newHistogram([]float64{4, 1, 2, 2, math.Inf(1)})
	if len(h.bounds) != 3 || h.bounds[0] != 1 || h.bounds[2] != 4 {
		t.Fatalf("bounds = %v, want sorted deduped [1 2 4] without +Inf", h.bounds)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "help", PowTwoBuckets(8))
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				h.Observe(float64(k))
			}
		}(i)
	}
	wg.Wait()
	if got := h.Count(); got != 4000 {
		t.Fatalf("count = %d, want 4000", got)
	}
}

func TestVecChildren(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("by_kind_total", "help", "kind")
	v.With("a").Inc()
	v.With("a").Inc()
	v.With("b").Add(3)
	if v.With("a").Value() != 2 || v.With("b").Value() != 3 {
		t.Fatalf("vec children: a=%d b=%d", v.With("a").Value(), v.With("b").Value())
	}
	gv := r.GaugeVec("gv", "help", "k")
	gv.With("x").Set(9)
	if gv.With("x").Value() != 9 {
		t.Fatal("gauge vec child")
	}
	hv := r.HistogramVec("hv", "help", "k", []float64{1})
	hv.With("x").Observe(0.5)
	if hv.With("x").Count() != 1 {
		t.Fatal("histogram vec child")
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "help")
	defer func() {
		if recover() == nil {
			t.Fatal("registering m as a gauge after a counter must panic")
		}
	}()
	r.Gauge("m", "help")
}

func TestLabelMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("m_total", "help", "tenant")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering with a different label name must panic")
		}
	}()
	r.CounterVec("m_total", "help", "priority")
}

func TestInvalidNamePanics(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Fatal("invalid metric name must panic")
		}
	}()
	r.Counter("bad-name", "help")
}

func TestBucketHelpers(t *testing.T) {
	e := ExpBuckets(1, 2, 4)
	want := []float64{1, 2, 4, 8}
	for i := range want {
		if e[i] != want[i] {
			t.Fatalf("ExpBuckets = %v", e)
		}
	}
	p := PowTwoBuckets(5)
	want = []float64{0, 1, 2, 4, 8}
	for i := range want {
		if p[i] != want[i] {
			t.Fatalf("PowTwoBuckets = %v", p)
		}
	}
	if lb := LatencyBuckets(); len(lb) != 24 || lb[0] != 1e-6 {
		t.Fatalf("LatencyBuckets = %v", lb)
	}
}

func TestDefaultRegistryIsSingleton(t *testing.T) {
	if Default() != Default() {
		t.Fatal("Default must be stable")
	}
	c := Default().Counter("telemetry_test_singleton_total", "test")
	if Default().Counter("telemetry_test_singleton_total", "test") != c {
		t.Fatal("Default registry must get-or-create")
	}
}
