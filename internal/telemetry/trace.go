package telemetry

import (
	"bytes"
	"context"
	"io"
	"log/slog"
	"sync"
)

// DefaultTraceBytes bounds a trace's retained JSONL bytes when NewTrace is
// given no budget.
const DefaultTraceBytes = 256 << 10

// Trace is a run-scoped structured event log: each Event call appends one
// JSON line (encoded via log/slog) stamped with the run ID and a
// monotonically increasing per-trace seq. Lines are retained in a bounded
// ring — oldest dropped first, the drop count kept — so a long run's
// trace stays a bounded download. A nil *Trace is a valid no-op receiver,
// which is how un-traced runs pay nothing.
//
// Events allocate (slog encoding); they are for lifecycle cadence
// (dispatches, checkpoints, preemptions), not per-update hot paths — those
// belong in Registry metrics.
type Trace struct {
	mu      sync.Mutex
	run     string
	limit   int
	lines   [][]byte
	size    int
	dropped int64
	seq     int64
	buf     bytes.Buffer
	log     *slog.Logger
}

// NewTrace builds a trace whose events carry run="runID", retaining at
// most maxBytes of encoded lines (<=0 uses DefaultTraceBytes).
func NewTrace(runID string, maxBytes int) *Trace {
	if maxBytes <= 0 {
		maxBytes = DefaultTraceBytes
	}
	t := &Trace{run: runID, limit: maxBytes}
	h := slog.NewJSONHandler(&t.buf, &slog.HandlerOptions{
		ReplaceAttr: func(groups []string, a slog.Attr) slog.Attr {
			switch a.Key {
			case slog.LevelKey:
				return slog.Attr{} // every trace event is informational
			case slog.MessageKey:
				a.Key = "event"
			}
			return a
		},
	})
	t.log = slog.New(h).With("run", runID)
	return t
}

// Event appends one line: {"time":..., "event": name, "run":..., "seq":...,
// args...}. args are slog key/value pairs. Safe from any goroutine; a nil
// receiver is a no-op.
func (t *Trace) Event(name string, args ...any) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.seq++
	t.buf.Reset()
	all := make([]any, 0, len(args)+2)
	all = append(all, "seq", t.seq)
	all = append(all, args...)
	t.log.Log(context.Background(), slog.LevelInfo, name, all...)
	line := append([]byte(nil), t.buf.Bytes()...)
	t.lines = append(t.lines, line)
	t.size += len(line)
	for t.size > t.limit && len(t.lines) > 1 {
		t.size -= len(t.lines[0])
		t.lines[0] = nil
		t.lines = t.lines[1:]
		t.dropped++
	}
}

// WriteTo streams the retained lines as JSONL. Lines are immutable once
// appended, so the writes happen outside the lock.
func (t *Trace) WriteTo(w io.Writer) (int64, error) {
	if t == nil {
		return 0, nil
	}
	t.mu.Lock()
	lines := make([][]byte, len(t.lines))
	copy(lines, t.lines)
	t.mu.Unlock()
	var n int64
	for _, l := range lines {
		m, err := w.Write(l)
		n += int64(m)
		if err != nil {
			return n, err
		}
	}
	return n, nil
}

// Run returns the trace's run ID ("" for a nil trace).
func (t *Trace) Run() string {
	if t == nil {
		return ""
	}
	return t.run
}

// Len reports how many events are currently retained.
func (t *Trace) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.lines)
}

// Dropped reports how many events the byte budget evicted.
func (t *Trace) Dropped() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}
