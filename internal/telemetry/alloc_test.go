package telemetry

import "testing"

// TestHotPathZeroAllocs pins the package's core invariant: the operations
// that sit on per-task/per-update/per-frame paths allocate nothing.
func TestHotPathZeroAllocs(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("alloc_c_total", "t")
	g := r.Gauge("alloc_g", "t")
	h := r.Histogram("alloc_h_seconds", "t", LatencyBuckets())
	vc := r.CounterVec("alloc_vc_total", "t", "k").With("hot") // cached child
	vh := r.HistogramVec("alloc_vh_seconds", "t", "k", PowTwoBuckets(16)).With("hot")

	cases := []struct {
		name string
		op   func()
	}{
		{"Counter.Inc", func() { c.Inc() }},
		{"Counter.Add", func() { c.Add(3) }},
		{"Gauge.Set", func() { g.Set(1.5) }},
		{"Gauge.Add", func() { g.Add(0.5) }},
		{"Histogram.Observe", func() { h.Observe(1e-4) }},
		{"CachedVecCounter.Inc", func() { vc.Inc() }},
		{"CachedVecHistogram.Observe", func() { vh.Observe(7) }},
	}
	for _, tc := range cases {
		if allocs := testing.AllocsPerRun(1000, tc.op); allocs != 0 {
			t.Errorf("%s: %v allocs/op, want 0", tc.name, allocs)
		}
	}
	// the warm With lookup itself must not allocate either
	vec := r.CounterVec("alloc_vc_total", "t", "k")
	if allocs := testing.AllocsPerRun(1000, func() { vec.With("hot").Inc() }); allocs != 0 {
		t.Errorf("warm Vec.With: %v allocs/op, want 0", allocs)
	}
}

func BenchmarkCounterInc(b *testing.B) {
	c := NewRegistry().Counter("bench_c_total", "b")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("bench_h_seconds", "b", LatencyBuckets())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i%1000) * 1e-6)
	}
}
