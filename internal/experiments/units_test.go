package experiments

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/opt"
)

func TestEffFrac(t *testing.T) {
	if got := effFrac(dataset.ScaleFull, 0.1); got != 0.1 {
		t.Fatalf("full = %v", got)
	}
	if got := effFrac(dataset.ScaleSmall, 0.1); math.Abs(got-0.2) > 1e-15 {
		t.Fatalf("small = %v", got)
	}
	if got := effFrac(dataset.ScaleTiny, 0.1); math.Abs(got-1.0) > 1e-15 {
		t.Fatalf("tiny = %v", got)
	}
	// clamped to 1
	if got := effFrac(dataset.ScaleTiny, 0.5); got != 1 {
		t.Fatalf("clamp = %v", got)
	}
}

func TestFracRules(t *testing.T) {
	if fracSGD("rcv1-like") != 0.05 || fracSGD("mnist8m-like") != 0.10 {
		t.Fatal("SGD fractions do not match §6.1")
	}
	if fracSAGA("rcv1-like") != 0.02 || fracSAGA("mnist8m-like") != 0.01 || fracSAGA("epsilon-like") != 0.10 {
		t.Fatal("SAGA fractions do not match §6.1")
	}
}

func TestStepForRules(t *testing.T) {
	cfg := dataset.MNIST8MLike(dataset.ScaleTiny, 1)
	syncS := stepFor(AlgoSGD, cfg, 8)
	asyncS := stepFor(AlgoASGD, cfg, 8)
	// paper heuristic: async initial step = sync initial step / P
	if math.Abs(asyncS.Alpha(0)-syncS.Alpha(0)/8) > 1e-12 {
		t.Fatalf("async α₀ %v != sync α₀/8 %v", asyncS.Alpha(0), syncS.Alpha(0)/8)
	}
	saga := stepFor(AlgoSAGA, cfg, 8)
	asaga := stepFor(AlgoASAGA, cfg, 8)
	if math.Abs(asaga.Alpha(0)-saga.Alpha(0)/8) > 1e-12 {
		t.Fatal("ASAGA step not SAGA/P")
	}
	// SAGA steps are constant
	if saga.Alpha(0) != saga.Alpha(1000) {
		t.Fatal("SAGA step not constant")
	}
	// SGD steps decay
	if syncS.Alpha(100) >= syncS.Alpha(0) {
		t.Fatal("SGD step does not decay")
	}
}

func TestStepScalesWithSparsity(t *testing.T) {
	sparse := dataset.RCV1Like(dataset.ScaleTiny, 1)
	dense := dataset.MNIST8MLike(dataset.ScaleTiny, 1)
	// gradients scale with E‖x‖² ≈ nnz/row, so the denser dataset must get
	// the smaller step
	if baseStep(dense) >= baseStep(sparse) {
		t.Fatalf("dense step %v not below sparse step %v", baseStep(dense), baseStep(sparse))
	}
}

func TestProblemCacheReuse(t *testing.T) {
	cfg := dataset.RCV1Like(dataset.ScaleTiny, 99)
	p1, err := getProblem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := getProblem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Fatal("problem cache missed for identical config")
	}
	if p1.fstar > opt.Objective(p1.d, opt.LeastSquares{}, make([]float64, p1.d.NumCols())) {
		t.Fatal("fstar above the zero-model objective")
	}
}
