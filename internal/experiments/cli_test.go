package experiments

import (
	"os"
	"strings"
	"testing"
)

func TestRunUnknownID(t *testing.T) {
	var sb strings.Builder
	if err := Run(tinyOpts(), "fig99", &sb); err == nil {
		t.Fatal("unknown id accepted")
	}
}

func TestRunTable2(t *testing.T) {
	var sb strings.Builder
	if err := Run(tinyOpts(), "table2", &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "rcv1-like") {
		t.Fatalf("table2 output: %s", sb.String())
	}
}

func TestRunFig4EmitsWaitTable(t *testing.T) {
	var sb strings.Builder
	if err := Run(tinyOpts(), "fig4", &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "avg_wait_ms") || !strings.Contains(out, "ASGD-1.0") {
		t.Fatalf("fig4 output missing columns: %s", out)
	}
}

func TestRunExtSSPSweep(t *testing.T) {
	var sb strings.Builder
	if err := Run(tinyOpts(), "ext-sspsweep", &sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"BSP", "ASP", "max_staleness"} {
		if !strings.Contains(sb.String(), want) {
			t.Fatalf("sweep output missing %q", want)
		}
	}
}

func TestRunWritesCSV(t *testing.T) {
	dir := t.TempDir()
	o := tinyOpts()
	o.CSVDir = dir
	var sb strings.Builder
	if err := Run(o, "fig2", &sb); err != nil {
		t.Fatal(err)
	}
	entries, err := osReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 6 { // 3 datasets × 2 algorithms
		t.Fatalf("csv files = %d: %v", len(entries), entries)
	}
	for _, name := range entries {
		if !strings.HasSuffix(name, ".csv") || strings.ContainsRune(name, '/') {
			t.Fatalf("bad csv name %q", name)
		}
	}
}

func osReadDir(dir string) ([]string, error) {
	des, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, de := range des {
		out = append(out, de.Name())
	}
	return out, nil
}

func TestIDsAllRunnable(t *testing.T) {
	// every listed id must at least be recognized (fast ones actually run
	// in other tests; here we only validate the registry is consistent)
	known := map[string]bool{}
	for _, id := range IDs() {
		if known[id] {
			t.Fatalf("duplicate id %s", id)
		}
		known[id] = true
	}
	if len(known) != 15 {
		t.Fatalf("expected 15 experiment ids, got %d", len(known))
	}
}
