package experiments

import (
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/metrics"
)

// tinyOpts keeps experiment tests fast: tiny datasets, short task floor,
// few rounds.
func tinyOpts() Options {
	return Options{
		Scale:         dataset.ScaleTiny,
		Seed:          5,
		MinTask:       500 * time.Microsecond,
		SyncUpdates:   20,
		SnapshotEvery: 4,
	}
}

func TestTable2(t *testing.T) {
	tb, err := Table2(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 3 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	out := tb.Format()
	for _, want := range []string{"rcv1-like", "mnist8m-like", "epsilon-like", "density"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
}

func TestFig2SeriesConverge(t *testing.T) {
	series, err := Fig2(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 6 { // 3 datasets × {Mllib, SGD-in-ASYNC}
		t.Fatalf("series = %d", len(series))
	}
	for _, s := range series {
		first := s.Trace.Points[0].Error
		last := s.Trace.FinalError()
		if !(last < first) {
			t.Fatalf("%s did not improve: %v → %v", s.Label, first, last)
		}
	}
	// pairwise: Mllib and SGD-in-ASYNC end within an order of magnitude
	for i := 0; i < len(series); i += 2 {
		em, ea := series[i].Trace.FinalError(), series[i+1].Trace.FinalError()
		if em/ea > 20 || ea/em > 20 {
			t.Fatalf("fig2 pair diverges: %s=%v vs %s=%v", series[i].Label, em, series[i+1].Label, ea)
		}
	}
}

func TestCDSShape(t *testing.T) {
	// one dataset is enough for the shape test; restrict via a custom sweep
	o := tinyOpts()
	series, err := CDS(o, SGDPair)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 3*4*2 {
		t.Fatalf("series = %d, want 24", len(series))
	}
	// Paper claim (Fig. 3/4): sync wait time grows with delay; async stays
	// flat. Compare delay=0 vs delay=1.0 for each dataset's sync runs.
	byLabel := map[string]*metrics.Trace{}
	for _, s := range series {
		byLabel[s.Label] = s.Trace
	}
	for _, ds := range []string{"rcv1-like", "mnist8m-like", "epsilon-like"} {
		sync0 := byLabel[ds+"/SGD-0.0"]
		sync1 := byLabel[ds+"/SGD-1.0"]
		async0 := byLabel[ds+"/ASGD-0.0"]
		async1 := byLabel[ds+"/ASGD-1.0"]
		if sync0 == nil || sync1 == nil || async0 == nil || async1 == nil {
			t.Fatalf("missing series for %s: %v", ds, byLabel)
		}
		if sync1.MeanWait() <= sync0.MeanWait() {
			t.Errorf("%s: sync wait did not grow with delay: %v vs %v", ds, sync0.MeanWait(), sync1.MeanWait())
		}
		// async wait under 100%% delay stays below sync wait under 100%% delay
		if async1.MeanWait() >= sync1.MeanWait() {
			t.Errorf("%s: async wait %v not below sync wait %v at delay 1.0", ds, async1.MeanWait(), sync1.MeanWait())
		}
		// sync total runtime grows materially with the straggler
		if sync1.Total <= sync0.Total {
			t.Errorf("%s: sync total did not grow with delay: %v vs %v", ds, sync0.Total, sync1.Total)
		}
	}
}

func TestWaitTableFormat(t *testing.T) {
	tr := &metrics.Trace{Algorithm: "SGD", Dataset: "d", Total: time.Second}
	tb := WaitTable("Fig 4", []Series{{Label: "d/SGD-0.0", Trace: tr}})
	out := tb.Format()
	if !strings.Contains(out, "Fig 4") || !strings.Contains(out, "d/SGD-0.0") {
		t.Fatalf("wait table: %s", out)
	}
}

func TestPCSShape(t *testing.T) {
	if testing.Short() {
		t.Skip("PCS spins 32 workers")
	}
	o := tinyOpts()
	series, err := PCS(o, SGDPair)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 4 { // 2 datasets × {sync, async}
		t.Fatalf("series = %d", len(series))
	}
	// async must beat sync in total time under production stragglers at the
	// same task budget
	for i := 0; i < len(series); i += 2 {
		syncTr, asyncTr := series[i].Trace, series[i+1].Trace
		if asyncTr.Total >= syncTr.Total {
			t.Errorf("%s: async total %v not below sync total %v",
				series[i+1].Label, asyncTr.Total, syncTr.Total)
		}
		if asyncTr.MeanWait() >= syncTr.MeanWait() {
			t.Errorf("%s: async wait %v not below sync wait %v",
				series[i+1].Label, asyncTr.MeanWait(), syncTr.MeanWait())
		}
	}
	tb := Table3From(series, nil)
	out := tb.Format()
	if !strings.Contains(out, "mnist8m-like") {
		t.Fatalf("table3: %s", out)
	}
	sp := Speedups(series)
	if len(sp.Rows) != 2 {
		t.Fatalf("speedup rows = %d", len(sp.Rows))
	}
}

func TestAblationBroadcast(t *testing.T) {
	tb, err := AblationBroadcast(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 2 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	var full, async string
	for _, r := range tb.Rows {
		switch r.Label {
		case "full-table":
			full = r.Values["bytes_shipped"]
		case "asyncbroadcast":
			async = r.Values["bytes_shipped"]
		}
	}
	if full == "" || async == "" {
		t.Fatalf("missing rows: %+v", tb.Rows)
	}
	// the whole point: full-table ships strictly more bytes
	var fb, ab int64
	if _, err := fmtSscan(full, &fb); err != nil {
		t.Fatal(err)
	}
	if _, err := fmtSscan(async, &ab); err != nil {
		t.Fatal(err)
	}
	if fb <= ab {
		t.Fatalf("full-table bytes %d not above asyncbroadcast bytes %d", fb, ab)
	}
}

func TestAblationLocalReduce(t *testing.T) {
	tb, err := AblationLocalReduce(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 2 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	var localBytes, perSampleBytes int64
	for _, r := range tb.Rows {
		switch r.Label {
		case "local-reduce":
			if _, err := fmtSscan(r.Values["bytes_shipped"], &localBytes); err != nil {
				t.Fatal(err)
			}
		case "per-sample":
			if _, err := fmtSscan(r.Values["bytes_shipped"], &perSampleBytes); err != nil {
				t.Fatal(err)
			}
		}
	}
	if perSampleBytes < localBytes {
		t.Fatalf("per-sample bytes %d below local-reduce bytes %d", perSampleBytes, localBytes)
	}
}

func TestAblationBarrier(t *testing.T) {
	tb, err := AblationBarrier(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 3 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	labels := map[string]bool{}
	for _, r := range tb.Rows {
		labels[r.Label] = true
	}
	for _, want := range []string{"ASP", "SSP(s=64)", "BSP"} {
		if !labels[want] {
			t.Fatalf("missing barrier %s", want)
		}
	}
}

func TestAblationStalenessLR(t *testing.T) {
	if testing.Short() {
		t.Skip("PCS spins 32 workers")
	}
	tb, err := AblationStalenessLR(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 2 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
}

// fmtSscan parses a decimal byte count from a table cell.
func fmtSscan(s string, v *int64) (int, error) {
	x, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, err
	}
	*v = x
	return 1, nil
}
