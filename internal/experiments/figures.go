package experiments

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/metrics"
	"repro/internal/straggler"
)

// cdsWorkers and pcsWorkers match the paper's cluster sizes.
const (
	cdsWorkers = 8
	pcsWorkers = 32
)

// cdsDelays are the controlled delay intensities of §6.3.
var cdsDelays = []float64{0, 0.3, 0.6, 1.0}

// Table2 reports the datasets (shape, sparsity, size) like the paper's
// Table 2, at the configured scale.
func Table2(o Options) (*metrics.Table, error) {
	o = o.withDefaults()
	tb := &metrics.Table{
		Title:   "Table 2: datasets (synthetic analogues)",
		Columns: []string{"rows", "cols", "nnz", "density", "sizeMB"},
	}
	for _, cfg := range dataset.Table2(o.Scale, o.Seed) {
		d, err := dataset.Generate(cfg)
		if err != nil {
			return nil, err
		}
		s := d.Stats()
		tb.Rows = append(tb.Rows, metrics.Row{
			Label: s.Name,
			Values: map[string]string{
				"rows":    fmt.Sprintf("%d", s.Rows),
				"cols":    fmt.Sprintf("%d", s.Cols),
				"nnz":     fmt.Sprintf("%d", s.NNZ),
				"density": fmt.Sprintf("%.4f", s.Density),
				"sizeMB":  fmt.Sprintf("%.2f", s.SizeMB),
			},
		})
	}
	return tb, nil
}

// Fig2 compares synchronous SGD implemented through ASYNC against the
// Mllib-style baseline on all three datasets (8 workers, no stragglers):
// the curves should coincide.
func Fig2(o Options) ([]Series, error) {
	o = o.withDefaults()
	var out []Series
	for _, cfg := range dataset.Table2(o.Scale, o.Seed) {
		frac := fracSGD(cfg.Name)
		for _, algo := range []Algo{AlgoMllibSGD, AlgoSGD} {
			tr, err := run(o, cfg, RunSpec{
				Algo: algo, Workers: cdsWorkers, Frac: frac, Updates: o.SyncUpdates,
			})
			if err != nil {
				return nil, err
			}
			out = append(out, Series{Label: fmt.Sprintf("%s/%s", cfg.Name, algo), Trace: tr})
		}
	}
	return out, nil
}

// CDS runs the controlled-delay-straggler sweep for one algorithm pair on 8
// workers: each dataset × delay intensity × {sync, async}. It is the data
// behind Figs. 3 and 4 (SGDPair) and Figs. 5 and 6 (SAGAPair).
func CDS(o Options, pair Pair) ([]Series, error) {
	o = o.withDefaults()
	var out []Series
	for _, cfg := range dataset.Table2(o.Scale, o.Seed) {
		frac := pair.Frac(cfg.Name)
		for _, delay := range cdsDelays {
			var model straggler.Model = straggler.None{}
			if delay > 0 {
				model = straggler.ControlledDelay{Worker: 0, Intensity: delay}
			}
			syncTr, err := run(o, cfg, RunSpec{
				Algo: pair.Sync, Workers: cdsWorkers, Delay: model,
				Frac: frac, Updates: o.SyncUpdates,
			})
			if err != nil {
				return nil, err
			}
			asyncTr, err := run(o, cfg, RunSpec{
				Algo: pair.Async, Workers: cdsWorkers, Delay: model,
				Frac: frac, Updates: o.SyncUpdates * cdsWorkers,
			})
			if err != nil {
				return nil, err
			}
			out = append(out,
				Series{Label: fmt.Sprintf("%s/%s-%.1f", cfg.Name, pair.Sync, delay), Trace: syncTr},
				Series{Label: fmt.Sprintf("%s/%s-%.1f", cfg.Name, pair.Async, delay), Trace: asyncTr},
			)
		}
	}
	return out, nil
}

// Fig3 is the SGD/ASGD convergence sweep under controlled delays.
func Fig3(o Options) ([]Series, error) { return CDS(o, SGDPair) }

// Fig5 is the SAGA/ASAGA convergence sweep under controlled delays.
func Fig5(o Options) ([]Series, error) { return CDS(o, SAGAPair) }

// WaitTable condenses a CDS/PCS series list into the average-wait-time view
// of Figs. 4 and 6 (one row per series, mean worker wait in ms).
func WaitTable(title string, series []Series) *metrics.Table {
	tb := &metrics.Table{Title: title, Columns: []string{"avg_wait_ms", "total_ms"}}
	for _, s := range series {
		tb.Rows = append(tb.Rows, metrics.Row{
			Label: s.Label,
			Values: map[string]string{
				"avg_wait_ms": fmt.Sprintf("%.3f", float64(s.Trace.MeanWait().Microseconds())/1000.0),
				"total_ms":    fmt.Sprintf("%.1f", float64(s.Trace.Total.Microseconds())/1000.0),
			},
		})
	}
	return tb
}

// PCS runs the production-cluster-straggler experiment for one pair on 32
// workers with the two larger datasets (mnist8m-like, epsilon-like) and the
// paper's 1% sampling rate — the data behind Figs. 7 and 8 and Table 3.
func PCS(o Options, pair Pair) ([]Series, error) {
	o = o.withDefaults()
	model, err := straggler.NewProductionCluster(pcsWorkers, o.Seed+7)
	if err != nil {
		return nil, err
	}
	var out []Series
	cfgs := dataset.Table2(o.Scale, o.Seed)
	for _, cfg := range []dataset.SynthConfig{cfgs[1], cfgs[2]} { // mnist8m-like, epsilon-like
		// paper: b = 1% for the PCS experiments; at reduced scale keep the
		// expected per-task batch non-trivial (run() additionally applies
		// the effFrac scale multiplier)
		frac := 0.01
		if o.Scale != dataset.ScaleFull {
			frac = 0.05
		}
		syncTr, err := run(o, cfg, RunSpec{
			Algo: pair.Sync, Workers: pcsWorkers, Delay: model,
			Frac: frac, Updates: o.SyncUpdates,
		})
		if err != nil {
			return nil, err
		}
		asyncTr, err := run(o, cfg, RunSpec{
			Algo: pair.Async, Workers: pcsWorkers, Delay: model,
			Frac: frac, Updates: o.SyncUpdates * pcsWorkers,
		})
		if err != nil {
			return nil, err
		}
		out = append(out,
			Series{Label: fmt.Sprintf("%s/%s-pcs", cfg.Name, pair.Sync), Trace: syncTr},
			Series{Label: fmt.Sprintf("%s/%s-pcs", cfg.Name, pair.Async), Trace: asyncTr},
		)
	}
	return out, nil
}

// Fig7 is SGD vs ASGD under production-cluster stragglers (32 workers).
func Fig7(o Options) ([]Series, error) { return PCS(o, SGDPair) }

// Fig8 is SAGA vs ASAGA under production-cluster stragglers (32 workers).
func Fig8(o Options) ([]Series, error) { return PCS(o, SAGAPair) }

// Table3 reproduces the 32-worker average-wait-time table from PCS runs of
// both pairs.
func Table3(o Options) (*metrics.Table, error) {
	sgd, err := PCS(o, SGDPair)
	if err != nil {
		return nil, err
	}
	saga, err := PCS(o, SAGAPair)
	if err != nil {
		return nil, err
	}
	return Table3From(sgd, saga), nil
}

// Table3From builds Table 3 from already-computed PCS series.
func Table3From(sgdSeries, sagaSeries []Series) *metrics.Table {
	tb := &metrics.Table{
		Title:   "Table 3: average wait time per iteration on 32 workers (ms)",
		Columns: []string{"SAGA", "ASAGA", "SGD", "ASGD"},
	}
	byDataset := map[string]map[string]string{}
	fill := func(series []Series) {
		for _, s := range series {
			ds := s.Trace.Dataset
			if byDataset[ds] == nil {
				byDataset[ds] = map[string]string{}
			}
			byDataset[ds][s.Trace.Algorithm] = fmt.Sprintf("%.4f", float64(s.Trace.MeanWait().Microseconds())/1000.0)
		}
	}
	fill(sgdSeries)
	fill(sagaSeries)
	for _, ds := range []string{"mnist8m-like", "epsilon-like"} {
		if vals, ok := byDataset[ds]; ok {
			tb.Rows = append(tb.Rows, metrics.Row{Label: ds, Values: vals})
		}
	}
	return tb
}

// Speedups summarizes sync-vs-async time-to-target ratios for a series list
// produced by CDS or PCS (consecutive sync/async entries are paired).
func Speedups(series []Series) *metrics.Table {
	tb := &metrics.Table{
		Title:   "speedup: sync time-to-target / async time-to-target",
		Columns: []string{"speedup", "target_err"},
	}
	for i := 0; i+1 < len(series); i += 2 {
		sync, async := series[i], series[i+1]
		target := metrics.SharedTarget(sync.Trace, async.Trace, 0.25)
		sp := metrics.Speedup(sync.Trace, async.Trace, target)
		tb.Rows = append(tb.Rows, metrics.Row{
			Label: async.Label,
			Values: map[string]string{
				"speedup":    fmt.Sprintf("%.2fx", sp),
				"target_err": fmt.Sprintf("%.3g", target),
			},
		})
	}
	return tb
}
