package experiments

import (
	"context"
	"fmt"

	"repro/async"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/metrics"
	"repro/internal/opt"
	"repro/internal/straggler"
)

// Extension experiments beyond the paper's figures: sweeps enabled by the
// engine that the paper's discussion motivates but does not plot.

// SSPSweep runs ASGD under a 100% controlled-delay straggler across SSP
// staleness thresholds, bracketed by BSP (s → 1) and ASP (s → ∞): the
// trade-off curve between hardware efficiency (loose barriers run faster)
// and statistical efficiency (tight barriers see fresher gradients) that
// §3 describes.
func SSPSweep(o Options) (*metrics.Table, error) {
	o = o.withDefaults()
	cfg := dataset.MNIST8MLike(o.Scale, o.Seed+1)
	delay := straggler.ControlledDelay{Worker: 0, Intensity: 1.0}
	updates := o.SyncUpdates * cdsWorkers
	type entry struct {
		name    string
		barrier core.BarrierFunc
	}
	entries := []entry{
		{"BSP", core.BSP()},
		{"SSP(4)", core.SSP(4)},
		{"SSP(16)", core.SSP(16)},
		{"SSP(64)", core.SSP(64)},
		{"ASP", core.ASP()},
	}
	tb := &metrics.Table{
		Title:   "extension: SSP staleness-threshold sweep (ASGD, 100% straggler, " + cfg.Name + ")",
		Columns: []string{"total_ms", "final_err", "max_staleness"},
	}
	for _, e := range entries {
		pr, err := getProblem(cfg)
		if err != nil {
			return nil, err
		}
		eng, err := async.New(
			async.WithWorkers(cdsWorkers),
			async.WithSeed(o.Seed),
			async.WithStraggler(delay),
			async.WithMinTaskTime(o.MinTask),
			async.WithPartitions(numPartitions),
			async.WithBarrier(e.barrier),
		)
		if err != nil {
			return nil, err
		}
		res, err := eng.Solve(context.Background(), "asgd", pr.d, async.SolveOptions{
			Params: opt.Params{
				Step:          stepFor(AlgoASGD, cfg, cdsWorkers),
				SampleFrac:    effFrac(o.Scale, fracSGD(cfg.Name)),
				Updates:       updates,
				SnapshotEvery: o.SnapshotEvery,
			},
			FStar: pr.fstar,
		})
		var maxStale int64
		if err == nil {
			for s := range eng.Context().Coordinator().StalenessHistogram() {
				if s > maxStale {
					maxStale = s
				}
			}
		}
		eng.Close()
		if err != nil {
			return nil, fmt.Errorf("experiments: SSP sweep %s: %w", e.name, err)
		}
		tb.Rows = append(tb.Rows, metrics.Row{
			Label: e.name,
			Values: map[string]string{
				"total_ms":      fmt.Sprintf("%.1f", float64(res.Trace.Total.Microseconds())/1000.0),
				"final_err":     fmt.Sprintf("%.4g", res.Trace.FinalError()),
				"max_staleness": fmt.Sprintf("%d", maxStale),
			},
		})
	}
	return tb, nil
}

// StalenessDistribution reports the observed staleness histogram of ASGD
// under production-cluster stragglers — the quantity staleness-aware
// methods ([72], Listing 1) key on, which ASYNC's bookkeeping makes
// observable.
func StalenessDistribution(o Options) (*metrics.Table, error) {
	o = o.withDefaults()
	cfg := dataset.EpsilonLike(o.Scale, o.Seed+2)
	pr, err := getProblem(cfg)
	if err != nil {
		return nil, err
	}
	model, err := straggler.NewProductionCluster(pcsWorkers, o.Seed+7)
	if err != nil {
		return nil, err
	}
	eng, err := async.New(
		async.WithWorkers(pcsWorkers),
		async.WithSeed(o.Seed),
		async.WithStraggler(model),
		async.WithMinTaskTime(o.MinTask),
		async.WithPartitions(numPartitions),
	)
	if err != nil {
		return nil, err
	}
	defer eng.Close()
	if _, err := eng.Solve(context.Background(), "asgd", pr.d, async.SolveOptions{
		Params: opt.Params{
			Step:          stepFor(AlgoASGD, cfg, pcsWorkers),
			SampleFrac:    effFrac(o.Scale, 0.05),
			Updates:       o.SyncUpdates * pcsWorkers,
			SnapshotEvery: o.SnapshotEvery,
		},
		FStar: pr.fstar,
	}); err != nil {
		return nil, err
	}
	hist := eng.Context().Coordinator().StalenessHistogram()
	// bucket into powers of two for a compact table
	buckets := map[string]int64{}
	var order []string
	bucketOf := func(s int64) string {
		switch {
		case s == 0:
			return "0"
		case s <= 2:
			return "1-2"
		case s <= 8:
			return "3-8"
		case s <= 32:
			return "9-32"
		case s <= 128:
			return "33-128"
		default:
			return ">128"
		}
	}
	for _, name := range []string{"0", "1-2", "3-8", "9-32", "33-128", ">128"} {
		order = append(order, name)
		buckets[name] = 0
	}
	var total int64
	for s, n := range hist {
		buckets[bucketOf(s)] += n
		total += n
	}
	tb := &metrics.Table{
		Title:   "extension: staleness distribution (ASGD under PCS, 32 workers)",
		Columns: []string{"results", "fraction"},
	}
	for _, name := range order {
		tb.Rows = append(tb.Rows, metrics.Row{
			Label: "staleness " + name,
			Values: map[string]string{
				"results":  fmt.Sprintf("%d", buckets[name]),
				"fraction": fmt.Sprintf("%.3f", float64(buckets[name])/float64(total)),
			},
		})
	}
	return tb, nil
}
