// Package experiments contains one harness per table and figure of the
// paper's evaluation (§6): dataset summaries (Table 2), the Mllib
// comparison (Fig. 2), the controlled-delay-straggler sweeps for SGD/ASGD
// (Figs. 3–4) and SAGA/ASAGA (Figs. 5–6), the production-cluster-straggler
// runs on 32 workers (Figs. 7–8), the 32-worker wait-time table (Table 3),
// and ablations for the design choices DESIGN.md calls out.
//
// Every harness returns Series/Table values whose Format methods print the
// same rows or curves the paper reports. Absolute times differ from the
// paper (simulated cluster, scaled datasets); the comparisons — who wins,
// by what factor, how curves respond to delay — are the reproduction
// target.
package experiments

import (
	"context"
	"fmt"
	"io"
	"sync"
	"time"

	"repro/async"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/metrics"
	"repro/internal/opt"
	"repro/internal/straggler"
)

// Options configures the experiment harnesses.
type Options struct {
	Scale dataset.Scale
	Seed  int64

	// MinTask pads worker tasks to a stable duration so delay intensities
	// act on a well-defined task time (the paper's tasks are seconds long;
	// ours default to 2ms).
	MinTask time.Duration

	// SyncUpdates is the round budget for synchronous algorithms; the
	// asynchronous variants get SyncUpdates × workers updates so both sides
	// consume comparable task counts.
	SyncUpdates int

	// SnapshotEvery controls trace resolution, in updates.
	SnapshotEvery int

	// Log receives progress lines; nil silences them.
	Log io.Writer

	// CSVDir, when non-empty, makes Run additionally write each figure
	// series as a CSV file (<label>.csv, '/' replaced by '_') in that
	// directory, for external plotting.
	CSVDir string
}

func (o Options) withDefaults() Options {
	if o.MinTask <= 0 {
		o.MinTask = 2 * time.Millisecond
	}
	if o.SyncUpdates <= 0 {
		switch o.Scale {
		case dataset.ScaleTiny:
			o.SyncUpdates = 30
		case dataset.ScaleSmall:
			o.SyncUpdates = 80
		default:
			o.SyncUpdates = 250
		}
	}
	if o.SnapshotEvery <= 0 {
		o.SnapshotEvery = 5
	}
	return o
}

func (o Options) logf(format string, args ...any) {
	if o.Log != nil {
		fmt.Fprintf(o.Log, format+"\n", args...)
	}
}

// Series is one labelled curve of a figure.
type Series struct {
	Label string
	Trace *metrics.Trace
}

// problem is a generated dataset with its reference optimum.
type problem struct {
	d     *dataset.Dataset
	fstar float64
}

var (
	probMu    sync.Mutex
	probCache = map[string]*problem{}
)

// getProblem generates (or returns the cached) dataset plus its reference
// optimum f(w*).
func getProblem(cfg dataset.SynthConfig) (*problem, error) {
	key := fmt.Sprintf("%s/%d/%d/%d/%d", cfg.Name, cfg.Rows, cfg.Cols, cfg.NNZPerRow, cfg.Seed)
	probMu.Lock()
	defer probMu.Unlock()
	if p, ok := probCache[key]; ok {
		return p, nil
	}
	d, err := dataset.Generate(cfg)
	if err != nil {
		return nil, err
	}
	_, fstar, err := opt.ReferenceOptimum(d)
	if err != nil {
		return nil, fmt.Errorf("experiments: %s: %w", cfg.Name, err)
	}
	p := &problem{d: d, fstar: fstar}
	probCache[key] = p
	return p, nil
}

// Algo names a driver algorithm.
type Algo string

// Algorithms available to RunSpec.
const (
	AlgoSGD      Algo = "SGD"
	AlgoASGD     Algo = "ASGD"
	AlgoSAGA     Algo = "SAGA"
	AlgoASAGA    Algo = "ASAGA"
	AlgoMllibSGD Algo = "Mllib-SGD"
)

// numPartitions matches the paper: 32 data partitions in every experiment.
const numPartitions = 32

// RunSpec describes a single optimization run on a fresh cluster.
type RunSpec struct {
	Algo        Algo
	Workers     int
	Delay       straggler.Model
	Frac        float64
	Updates     int // model updates (rounds for sync algorithms)
	StalenessLR bool
	Barrier     core.BarrierFunc
}

// baseStep is the tuned initial step for a dataset: gradients of the
// least-squares loss scale with E‖x‖² ≈ nnz-per-row, so steps are expressed
// relative to it (the paper tunes per dataset the same way).
func baseStep(cfg dataset.SynthConfig) float64 {
	return 0.5 / float64(cfg.NNZPerRow)
}

// stepFor applies the paper's tuning rules (§6.1): SGD uses Mllib's 1/√t
// decay; SAGA a fixed step; asynchronous variants divide the synchronous
// step by the number of workers.
func stepFor(algo Algo, cfg dataset.SynthConfig, workers int) opt.Schedule {
	a0 := baseStep(cfg)
	switch algo {
	case AlgoSGD, AlgoMllibSGD:
		return opt.InvSqrt{A: a0}
	case AlgoASGD:
		return opt.AsyncDecay{A: a0, Workers: float64(workers)}
	case AlgoSAGA:
		return opt.Constant{A: a0 / 4}
	case AlgoASAGA:
		return opt.Constant{A: a0 / 4 / float64(workers)}
	default:
		return opt.InvSqrt{A: a0}
	}
}

// run executes one spec on a fresh engine and returns its trace. The
// algorithm is resolved through the solver registry: spec.Algo values are
// registry names up to case ("ASGD" → "asgd"), so new methods plug in by
// registration, not another switch arm.
func run(o Options, cfg dataset.SynthConfig, spec RunSpec) (*metrics.Trace, error) {
	pr, err := getProblem(cfg)
	if err != nil {
		return nil, err
	}
	delay := spec.Delay
	if delay == nil {
		delay = straggler.None{}
	}
	eng, err := async.New(
		async.WithWorkers(spec.Workers),
		async.WithSeed(o.Seed+101),
		async.WithStraggler(delay),
		async.WithMinTaskTime(o.MinTask),
		async.WithPartitions(numPartitions),
	)
	if err != nil {
		return nil, err
	}
	defer eng.Close()
	res, err := eng.Solve(context.Background(), string(spec.Algo), pr.d, async.SolveOptions{
		Params: opt.Params{
			Step:          stepFor(spec.Algo, cfg, spec.Workers),
			SampleFrac:    effFrac(o.Scale, spec.Frac),
			Updates:       spec.Updates,
			SnapshotEvery: o.SnapshotEvery,
			StalenessLR:   spec.StalenessLR,
			Barrier:       spec.Barrier,
		},
		FStar: pr.fstar,
	})
	if err != nil {
		return nil, err
	}
	res.Trace.Straggler = delay.Name()
	o.logf("  %-10s %-14s straggler=%-10s total=%8.1fms final-err=%.4g",
		spec.Algo, cfg.Name, delay.Name(),
		float64(res.Trace.Total.Microseconds())/1000.0, res.Trace.FinalError())
	return res.Trace, nil
}

// effFrac adjusts a paper sampling rate to the dataset scale: at reduced
// scales partitions hold only a handful of rows, and the paper's 1–10%
// rates would make most mini-batches empty. The multiplier keeps the
// expected batch size meaningful while preserving the relative rates.
func effFrac(scale dataset.Scale, frac float64) float64 {
	mult := 1.0
	switch scale {
	case dataset.ScaleTiny:
		mult = 10
	case dataset.ScaleSmall:
		mult = 2
	}
	if f := frac * mult; f < 1 {
		return f
	}
	return 1
}

// fracSGD returns the paper's SGD sampling rates (§6.1): 10% generally, 5%
// for rcv1.
func fracSGD(name string) float64 {
	if name == "rcv1-like" {
		return 0.05
	}
	return 0.10
}

// fracSAGA returns the paper's SAGA sampling rates: 10% epsilon, 2% rcv1,
// 1% mnist8m.
func fracSAGA(name string) float64 {
	switch name {
	case "rcv1-like":
		return 0.02
	case "mnist8m-like":
		return 0.01
	default:
		return 0.10
	}
}

// Pair selects which algorithm family an experiment sweeps.
type Pair struct {
	Sync, Async Algo
	Frac        func(dataset string) float64
}

// SGDPair is SGD vs ASGD; SAGAPair is SAGA vs ASAGA.
var (
	SGDPair  = Pair{Sync: AlgoSGD, Async: AlgoASGD, Frac: fracSGD}
	SAGAPair = Pair{Sync: AlgoSAGA, Async: AlgoASAGA, Frac: fracSAGA}
)
