package experiments

import (
	"strconv"
	"testing"
)

func TestSSPSweep(t *testing.T) {
	tb, err := SSPSweep(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(tb.Rows))
	}
	var bspMs, aspMs float64
	var bspStale, aspStale int64
	for _, r := range tb.Rows {
		ms, err := strconv.ParseFloat(r.Values["total_ms"], 64)
		if err != nil {
			t.Fatal(err)
		}
		stale, err := strconv.ParseInt(r.Values["max_staleness"], 10, 64)
		if err != nil {
			t.Fatal(err)
		}
		switch r.Label {
		case "BSP":
			bspMs, bspStale = ms, stale
		case "ASP":
			aspMs, aspStale = ms, stale
		}
	}
	// hardware efficiency: ASP runs faster than BSP under the straggler
	if aspMs >= bspMs {
		t.Errorf("ASP %vms not below BSP %vms", aspMs, bspMs)
	}
	// statistical efficiency: BSP observes no more staleness than ASP
	if bspStale > aspStale {
		t.Errorf("BSP max staleness %d above ASP %d", bspStale, aspStale)
	}
}

func TestStalenessDistribution(t *testing.T) {
	if testing.Short() {
		t.Skip("spins 32 workers")
	}
	tb, err := StalenessDistribution(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 6 {
		t.Fatalf("rows = %d, want 6 buckets", len(tb.Rows))
	}
	var fracSum float64
	var results int64
	for _, r := range tb.Rows {
		f, err := strconv.ParseFloat(r.Values["fraction"], 64)
		if err != nil {
			t.Fatal(err)
		}
		n, err := strconv.ParseInt(r.Values["results"], 10, 64)
		if err != nil {
			t.Fatal(err)
		}
		fracSum += f
		results += n
	}
	if fracSum < 0.98 || fracSum > 1.02 {
		t.Fatalf("fractions sum to %v", fracSum)
	}
	if results == 0 {
		t.Fatal("no results observed")
	}
}
