package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"repro/async"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/la"
	"repro/internal/metrics"
	"repro/internal/opt"
	"repro/internal/straggler"
)

// newAblationEngine builds the straggler-free 8-worker engine the ablation
// harnesses share.
func newAblationEngine(o Options) (*async.Engine, error) {
	return async.New(
		async.WithWorkers(cdsWorkers),
		async.WithSeed(o.Seed),
		async.WithMinTaskTime(o.MinTask),
		async.WithPartitions(numPartitions),
	)
}

// AblationBroadcast quantifies the ASYNCbroadcaster design (§4.3): SAGA
// with versioned history broadcast versus the Spark-only full-table
// broadcast of Algorithm 3, same updates, same data. Reported: wall time
// and bytes of model state shipped.
func AblationBroadcast(o Options) (*metrics.Table, error) {
	o = o.withDefaults()
	cfg := dataset.RCV1Like(o.Scale, o.Seed)
	pr, err := getProblem(cfg)
	if err != nil {
		return nil, err
	}
	updates := o.SyncUpdates
	frac := fracSAGA(cfg.Name)
	tb := &metrics.Table{
		Title:   "ablation: ASYNCbroadcast vs full-table broadcast (SAGA, " + cfg.Name + ")",
		Columns: []string{"total_ms", "bytes_shipped", "final_err"},
	}

	// Spark-style: full history table with every broadcast.
	{
		eng, err := newAblationEngine(o)
		if err != nil {
			return nil, err
		}
		points, err := eng.Distribute(pr.d)
		if err != nil {
			eng.Close()
			return nil, err
		}
		res, bytes, err := opt.SAGAFullTableBroadcast(eng.RDD(), points, pr.d, opt.Params{
			Step: stepFor(AlgoSAGA, cfg, cdsWorkers), SampleFrac: frac,
			Updates: updates, SnapshotEvery: o.SnapshotEvery,
		}, pr.fstar)
		eng.Close()
		if err != nil {
			return nil, err
		}
		tb.Rows = append(tb.Rows, metrics.Row{
			Label: "full-table",
			Values: map[string]string{
				"total_ms":      fmt.Sprintf("%.1f", float64(res.Trace.Total.Microseconds())/1000.0),
				"bytes_shipped": fmt.Sprintf("%d", bytes),
				"final_err":     fmt.Sprintf("%.4g", res.Trace.FinalError()),
			},
		})
	}

	// ASYNC: versioned broadcast, value fetched at most once per worker.
	{
		eng, err := newAblationEngine(o)
		if err != nil {
			return nil, err
		}
		res, err := eng.Solve(context.Background(), "saga", pr.d, async.SolveOptions{
			Params: opt.Params{
				Step: stepFor(AlgoSAGA, cfg, cdsWorkers), SampleFrac: frac,
				Updates: updates, SnapshotEvery: o.SnapshotEvery,
			},
			FStar: pr.fstar,
		})
		bytes := eng.Cluster().FetchCount() * int64(pr.d.NumCols()) * 8
		eng.Close()
		if err != nil {
			return nil, err
		}
		tb.Rows = append(tb.Rows, metrics.Row{
			Label: "asyncbroadcast",
			Values: map[string]string{
				"total_ms":      fmt.Sprintf("%.1f", float64(res.Trace.Total.Microseconds())/1000.0),
				"bytes_shipped": fmt.Sprintf("%d", bytes),
				"final_err":     fmt.Sprintf("%.4g", res.Trace.FinalError()),
			},
		})
	}
	return tb, nil
}

// perSampleKernel is the Glint-style worker: no local reduction — every
// sampled row's gradient is shipped individually (as one slice, but the
// driver must apply them one by one, and the wire volume is per-sample).
func perSampleKernel(loss opt.Loss, wBr core.DynBroadcast, frac float64) core.Kernel {
	return func(env *cluster.Env, parts []int, seed int64) (any, int, error) {
		wv, err := wBr.Value(env)
		if err != nil {
			return nil, 0, err
		}
		w := wv.(la.Vec)
		var gs []la.Vec
		rng := rand.New(rand.NewSource(seed))
		for _, pi := range parts {
			p, err := env.Partition(pi)
			if err != nil {
				return nil, 0, err
			}
			for local := 0; local < p.NumRows(); local++ {
				if rng.Float64() >= frac {
					continue
				}
				g := la.NewVec(len(w))
				loss.AddGrad(p.X.Row(local), p.Y[local], w, g)
				gs = append(gs, g)
			}
		}
		if len(gs) == 0 {
			return nil, 0, nil
		}
		return gs, len(gs), nil
	}
}

// AblationLocalReduce compares ASYNC's per-worker local reduction against
// Glint-style per-sample submission (§7: "workers are not allowed to
// locally reduce their updates"): same sample budget, wall time and bytes.
func AblationLocalReduce(o Options) (*metrics.Table, error) {
	o = o.withDefaults()
	cfg := dataset.MNIST8MLike(o.Scale, o.Seed+1)
	pr, err := getProblem(cfg)
	if err != nil {
		return nil, err
	}
	frac := effFrac(o.Scale, fracSGD(cfg.Name))
	tasks := o.SyncUpdates * cdsWorkers
	tb := &metrics.Table{
		Title:   "ablation: local reduce vs per-sample submission (ASGD, " + cfg.Name + ")",
		Columns: []string{"total_ms", "bytes_shipped", "samples", "final_err"},
	}
	// Both sides process the same number of tasks; the difference is what
	// crosses the wire per task (one reduced vector vs one vector per
	// sample) and how much work the server does per task.
	loss := opt.LeastSquares{}
	step := stepFor(AlgoASGD, cfg, cdsWorkers)
	for _, mode := range []string{"local-reduce", "per-sample"} {
		eng, err := newAblationEngine(o)
		if err != nil {
			return nil, err
		}
		if _, err := eng.Distribute(pr.d); err != nil {
			eng.Close()
			return nil, err
		}
		ac := eng.Context()
		rctx := eng.RDD()
		w := la.NewVec(pr.d.NumCols())
		collected := 0
		var samples, vecsShipped int64
		start := time.Now()
		for collected < tasks {
			wBr := ac.ASYNCbroadcast("abl.w", w.Clone())
			rctx.PruneBroadcast("abl.w", 4*cdsWorkers)
			sel, err := ac.ASYNCbarrier(core.ASP(), nil)
			if err != nil {
				eng.Close()
				return nil, err
			}
			var kern core.Kernel
			if mode == "local-reduce" {
				kern = opt.GradKernel(loss, wBr, frac)
			} else {
				kern = perSampleKernel(loss, wBr, frac)
			}
			if _, err := ac.ASYNCreduce(sel, kern); err != nil {
				eng.Close()
				return nil, err
			}
			for first := true; (first || ac.HasNext()) && collected < tasks; first = false {
				res, err := ac.ASYNCcollectAll()
				if err != nil {
					break
				}
				alpha := step.Alpha(int64(collected))
				if mode == "local-reduce" {
					// payload may be dense or a sparse delta depending on
					// the dataset; AxpyPayload handles (and recycles) both
					if err := opt.AxpyPayload(-alpha/float64(res.Attrs.MiniBatch), res.Payload, w); err != nil {
						eng.Close()
						return nil, err
					}
					vecsShipped++
				} else {
					// Glint-style: the server applies every per-sample
					// gradient individually
					gs := res.Payload.([]la.Vec)
					for _, g := range gs {
						la.Axpy(-alpha/float64(len(gs)), g, w)
					}
					vecsShipped += int64(len(gs))
				}
				samples += int64(res.Attrs.MiniBatch)
				ac.AdvanceClock()
				collected++
			}
		}
		total := time.Since(start)
		finalErr := opt.Objective(pr.d, loss, w) - pr.fstar
		eng.Close()
		tb.Rows = append(tb.Rows, metrics.Row{
			Label: mode,
			Values: map[string]string{
				"total_ms":      fmt.Sprintf("%.1f", float64(total.Microseconds())/1000.0),
				"bytes_shipped": fmt.Sprintf("%d", vecsShipped*int64(pr.d.NumCols())*8),
				"samples":       fmt.Sprintf("%d", samples),
				"final_err":     fmt.Sprintf("%.4g", finalErr),
			},
		})
	}
	return tb, nil
}

// AblationBarrier compares barrier-control strategies for ASGD under a
// 100% controlled-delay straggler: ASP, SSP, and BSP (via the barrier
// predicate), reporting total time and final error at a fixed update
// budget.
func AblationBarrier(o Options) (*metrics.Table, error) {
	o = o.withDefaults()
	cfg := dataset.MNIST8MLike(o.Scale, o.Seed+1)
	delay := straggler.ControlledDelay{Worker: 0, Intensity: 1.0}
	updates := o.SyncUpdates * cdsWorkers
	barriers := []struct {
		name string
		f    core.BarrierFunc
	}{
		{"ASP", core.ASP()},
		{"SSP(s=64)", core.SSP(64)},
		{"BSP", core.BSP()},
	}
	tb := &metrics.Table{
		Title:   "ablation: barrier control under 100% straggler (ASGD, " + cfg.Name + ")",
		Columns: []string{"total_ms", "final_err", "mean_wait_ms"},
	}
	for _, b := range barriers {
		tr, err := run(o, cfg, RunSpec{
			Algo: AlgoASGD, Workers: cdsWorkers, Delay: delay,
			Frac: fracSGD(cfg.Name), Updates: updates, Barrier: b.f,
		})
		if err != nil {
			return nil, err
		}
		tb.Rows = append(tb.Rows, metrics.Row{
			Label: b.name,
			Values: map[string]string{
				"total_ms":     fmt.Sprintf("%.1f", float64(tr.Total.Microseconds())/1000.0),
				"final_err":    fmt.Sprintf("%.4g", tr.FinalError()),
				"mean_wait_ms": fmt.Sprintf("%.3f", float64(tr.MeanWait().Microseconds())/1000.0),
			},
		})
	}
	return tb, nil
}

// AblationStalenessLR measures the Listing 1 staleness-dependent learning
// rate under production-cluster stragglers: ASGD with and without the
// modulation, same update budget.
func AblationStalenessLR(o Options) (*metrics.Table, error) {
	o = o.withDefaults()
	cfg := dataset.EpsilonLike(o.Scale, o.Seed+2)
	model, err := straggler.NewProductionCluster(pcsWorkers, o.Seed+7)
	if err != nil {
		return nil, err
	}
	updates := o.SyncUpdates * pcsWorkers
	tb := &metrics.Table{
		Title:   "ablation: staleness-dependent learning rate (ASGD under PCS, " + cfg.Name + ")",
		Columns: []string{"total_ms", "final_err"},
	}
	for _, mod := range []bool{false, true} {
		tr, err := run(o, cfg, RunSpec{
			Algo: AlgoASGD, Workers: pcsWorkers, Delay: model,
			Frac: 0.05, Updates: updates, StalenessLR: mod,
		})
		if err != nil {
			return nil, err
		}
		label := "fixed-lr"
		if mod {
			label = "staleness-lr"
		}
		tb.Rows = append(tb.Rows, metrics.Row{
			Label: label,
			Values: map[string]string{
				"total_ms":  fmt.Sprintf("%.1f", float64(tr.Total.Microseconds())/1000.0),
				"final_err": fmt.Sprintf("%.4g", tr.FinalError()),
			},
		})
	}
	return tb, nil
}
