package experiments

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// WriteSeriesCSV writes each series as <dir>/<label>.csv ('/' → '_').
func WriteSeriesCSV(dir string, series []Series) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, s := range series {
		name := strings.ReplaceAll(s.Label, "/", "_") + ".csv"
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		if err := s.Trace.WriteCSV(f); err != nil {
			_ = f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}

// IDs lists every experiment id Run accepts, in presentation order.
func IDs() []string {
	return []string{
		"table2", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8",
		"table3", "ablation-broadcast", "ablation-localreduce",
		"ablation-barrier", "ablation-staleness",
		"ext-sspsweep", "ext-staleness-dist",
	}
}

// Run executes one experiment by id and writes its output (series and/or
// tables) to w. It is the engine behind cmd/asyncbench. When o.CSVDir is
// set, figure series are additionally written there as CSV files.
func Run(o Options, id string, w io.Writer) error {
	printSeries := func(series []Series) {
		for _, s := range series {
			fmt.Fprintf(w, "--- %s\n%s", s.Label, s.Trace.Format())
		}
		if o.CSVDir != "" {
			if err := WriteSeriesCSV(o.CSVDir, series); err != nil {
				fmt.Fprintf(w, "# csv export failed: %v\n", err)
			}
		}
	}
	printTable := func(tb interface{ Format() string }, err error) error {
		if err != nil {
			return err
		}
		fmt.Fprint(w, tb.Format())
		return nil
	}
	switch strings.ToLower(id) {
	case "table2":
		tb, err := Table2(o)
		return printTable(tb, err)
	case "fig2":
		series, err := Fig2(o)
		if err != nil {
			return err
		}
		printSeries(series)
	case "fig3", "fig4":
		series, err := CDS(o, SGDPair)
		if err != nil {
			return err
		}
		if strings.EqualFold(id, "fig3") {
			printSeries(series)
			fmt.Fprint(w, Speedups(series).Format())
		} else {
			fmt.Fprint(w, WaitTable("Fig 4: average wait time per iteration (8 workers, SGD vs ASGD)", series).Format())
		}
	case "fig5", "fig6":
		series, err := CDS(o, SAGAPair)
		if err != nil {
			return err
		}
		if strings.EqualFold(id, "fig5") {
			printSeries(series)
			fmt.Fprint(w, Speedups(series).Format())
		} else {
			fmt.Fprint(w, WaitTable("Fig 6: average wait time per iteration (8 workers, SAGA vs ASAGA)", series).Format())
		}
	case "fig7", "fig8":
		pair := SGDPair
		if strings.EqualFold(id, "fig8") {
			pair = SAGAPair
		}
		series, err := PCS(o, pair)
		if err != nil {
			return err
		}
		printSeries(series)
		fmt.Fprint(w, Speedups(series).Format())
	case "table3":
		tb, err := Table3(o)
		return printTable(tb, err)
	case "ablation-broadcast":
		tb, err := AblationBroadcast(o)
		return printTable(tb, err)
	case "ablation-localreduce":
		tb, err := AblationLocalReduce(o)
		return printTable(tb, err)
	case "ablation-barrier":
		tb, err := AblationBarrier(o)
		return printTable(tb, err)
	case "ablation-staleness":
		tb, err := AblationStalenessLR(o)
		return printTable(tb, err)
	case "ext-sspsweep":
		tb, err := SSPSweep(o)
		return printTable(tb, err)
	case "ext-staleness-dist":
		tb, err := StalenessDistribution(o)
		return printTable(tb, err)
	default:
		return fmt.Errorf("experiments: unknown experiment %q (known: %s)", id, strings.Join(IDs(), ", "))
	}
	return nil
}
