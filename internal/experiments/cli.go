package experiments

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// WriteSeriesCSV writes each series as <dir>/<label>.csv ('/' → '_').
func WriteSeriesCSV(dir string, series []Series) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, s := range series {
		name := strings.ReplaceAll(s.Label, "/", "_") + ".csv"
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		if err := s.Trace.WriteCSV(f); err != nil {
			_ = f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}

// printer bundles the output sinks an experiment writes to.
type printer struct {
	o Options
	w io.Writer
}

func (p printer) series(series []Series) {
	for _, s := range series {
		fmt.Fprintf(p.w, "--- %s\n%s", s.Label, s.Trace.Format())
	}
	if p.o.CSVDir != "" {
		if err := WriteSeriesCSV(p.o.CSVDir, series); err != nil {
			fmt.Fprintf(p.w, "# csv export failed: %v\n", err)
		}
	}
}

func (p printer) table(tb interface{ Format() string }, err error) error {
	if err != nil {
		return err
	}
	fmt.Fprint(p.w, tb.Format())
	return nil
}

// experimentReg maps experiment ids to runners; experimentOrder preserves
// presentation order for IDs(). Experiments register here instead of
// occupying arms of a switch, mirroring the solver registry.
var (
	experimentOrder []string
	experimentReg   = map[string]func(o Options, p printer) error{}
)

func registerExperiment(id string, fn func(o Options, p printer) error) {
	if _, dup := experimentReg[id]; dup {
		panic("experiments: duplicate experiment id " + id)
	}
	experimentOrder = append(experimentOrder, id)
	experimentReg[id] = fn
}

// tableExperiment adapts a table harness to the registry signature.
func tableExperiment[T interface{ Format() string }](f func(Options) (T, error)) func(Options, printer) error {
	return func(o Options, p printer) error {
		tb, err := f(o)
		return p.table(tb, err)
	}
}

// cdsFigure adapts a controlled-delay-straggler sweep: the error curves
// plus speedups (fig 3/5), or the wait-time table (fig 4/6).
func cdsFigure(pair Pair, waitTitle string, curves bool) func(Options, printer) error {
	return func(o Options, p printer) error {
		series, err := CDS(o, pair)
		if err != nil {
			return err
		}
		if curves {
			p.series(series)
			fmt.Fprint(p.w, Speedups(series).Format())
		} else {
			fmt.Fprint(p.w, WaitTable(waitTitle, series).Format())
		}
		return nil
	}
}

// pcsFigure adapts a production-cluster-straggler sweep (fig 7/8).
func pcsFigure(pair Pair) func(Options, printer) error {
	return func(o Options, p printer) error {
		series, err := PCS(o, pair)
		if err != nil {
			return err
		}
		p.series(series)
		fmt.Fprint(p.w, Speedups(series).Format())
		return nil
	}
}

func init() {
	registerExperiment("table2", tableExperiment(Table2))
	registerExperiment("fig2", func(o Options, p printer) error {
		series, err := Fig2(o)
		if err != nil {
			return err
		}
		p.series(series)
		return nil
	})
	registerExperiment("fig3", cdsFigure(SGDPair, "", true))
	registerExperiment("fig4", cdsFigure(SGDPair, "Fig 4: average wait time per iteration (8 workers, SGD vs ASGD)", false))
	registerExperiment("fig5", cdsFigure(SAGAPair, "", true))
	registerExperiment("fig6", cdsFigure(SAGAPair, "Fig 6: average wait time per iteration (8 workers, SAGA vs ASAGA)", false))
	registerExperiment("fig7", pcsFigure(SGDPair))
	registerExperiment("fig8", pcsFigure(SAGAPair))
	registerExperiment("table3", tableExperiment(Table3))
	registerExperiment("ablation-broadcast", tableExperiment(AblationBroadcast))
	registerExperiment("ablation-localreduce", tableExperiment(AblationLocalReduce))
	registerExperiment("ablation-barrier", tableExperiment(AblationBarrier))
	registerExperiment("ablation-staleness", tableExperiment(AblationStalenessLR))
	registerExperiment("ext-sspsweep", tableExperiment(SSPSweep))
	registerExperiment("ext-staleness-dist", tableExperiment(StalenessDistribution))
}

// IDs lists every experiment id Run accepts, in presentation order.
func IDs() []string {
	return append([]string(nil), experimentOrder...)
}

// Run executes one experiment by id and writes its output (series and/or
// tables) to w. It is the engine behind cmd/asyncbench. When o.CSVDir is
// set, figure series are additionally written there as CSV files.
func Run(o Options, id string, w io.Writer) error {
	fn, ok := experimentReg[strings.ToLower(id)]
	if !ok {
		return fmt.Errorf("experiments: unknown experiment %q (known: %s)", id, strings.Join(IDs(), ", "))
	}
	return fn(o, printer{o: o, w: w})
}
