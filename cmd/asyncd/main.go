// Command asyncd runs the engine over real TCP sockets: one server process
// and N worker processes. It demonstrates that the ASYNC protocol (tasks,
// results, installs, versioned broadcast fetches) works across a real
// transport, running a short ASGD job on a synthetic dataset through the
// public async facade and its TCP transport.
//
// Server (drives the job):
//
//	asyncd -role server -addr :7077 -workers 4
//
// Workers (one per process; id in [0, workers)):
//
//	asyncd -role worker -addr host:7077 -id 0
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/async"
	"repro/internal/dataset"
	"repro/internal/opt"
	"repro/internal/straggler"
)

func main() {
	var (
		role    = flag.String("role", "", "server|worker")
		addr    = flag.String("addr", ":7077", "listen/dial address")
		workers = flag.Int("workers", 4, "number of workers (server)")
		id      = flag.Int("id", 0, "worker id (worker)")
		updates = flag.Int("updates", 200, "ASGD updates to run (server)")
		delayW  = flag.Int("straggle", -1, "worker id to delay at 100% (worker; -1 = none)")
	)
	flag.Parse()
	switch *role {
	case "server":
		if err := runServer(*addr, *workers, *updates); err != nil {
			fatalf("server: %v", err)
		}
	case "worker":
		var model straggler.Model = straggler.None{}
		if *delayW == *id {
			model = straggler.ControlledDelay{Worker: *id, Intensity: 1.0}
		}
		if err := async.ServeWorker(*addr, *id, model, int64(*id)+1); err != nil {
			fatalf("worker %d: %v", *id, err)
		}
	default:
		fatalf("-role must be server or worker")
	}
}

func runServer(addr string, workers, updates int) error {
	fmt.Fprintf(os.Stderr, "asyncd: waiting for %d workers on %s\n", workers, addr)
	eng, err := async.New(
		async.WithWorkers(workers),
		async.WithTransport(async.TCP(addr)),
		async.WithPartitions(2*workers),
	)
	if err != nil {
		return err
	}
	defer eng.Close()
	fmt.Fprintf(os.Stderr, "asyncd: %d workers connected\n", workers)

	d, err := dataset.Generate(dataset.MNIST8MLike(dataset.ScaleTiny, 7))
	if err != nil {
		return err
	}
	_, fstar, err := opt.ReferenceOptimum(d)
	if err != nil {
		return err
	}
	start := time.Now()
	// asgd-remote dispatches registered ops (serializable args) rather than
	// closures, so the whole job runs across the TCP transport.
	res, err := eng.Solve(context.Background(), "asgd-remote", d, async.SolveOptions{
		Params: opt.Params{
			Step:       opt.Scaled{Base: opt.InvSqrt{A: 0.5 / float64(d.NumCols())}, Factor: float64(workers)},
			SampleFrac: 0.5,
			Updates:    updates,
		},
		FStar: fstar,
	})
	if err != nil {
		return err
	}
	fmt.Printf("ASGD over TCP: %d updates in %v, final error %.4g\n",
		updates, time.Since(start).Round(time.Millisecond), res.Trace.FinalError())
	fmt.Print(res.Trace.FormatWait())
	return nil
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "asyncd: "+format+"\n", args...)
	os.Exit(1)
}
