// Command asyncd is the ASYNC serving daemon. It has three roles:
//
// Serve (the default): a long-running job-scheduling service over a pool
// of in-process engines, exposing the JSON/HTTP API of async/jobs — any
// registry algorithm, any catalog dataset, any barrier policy, per
// request. Scheduling is preemptive: a strictly-higher-priority job
// checkpoints the lowest-priority running job aside (POST
// /v1/jobs/{id}/preempt does it manually, GET /v1/jobs/{id}/checkpoint
// downloads the capture, and "resume_from" on submission continues it):
//
//	asyncd -listen :8080 -engines 2 -workers 4
//	curl -s localhost:8080/v1/jobs -d '{"algorithm":"asgd","dataset":{"name":"rcv1-like"}}'
//
// The serve role is fully observable: GET /v1/metrics is a Prometheus
// scrape covering every layer (serving, coordinator, driver runtime, WAL,
// wire codec), GET /v1/jobs/{id}/trace downloads a job's run-scoped JSONL
// event trace, and /debug/pprof/ serves live CPU/heap/goroutine profiles.
//
// TCP demo roles: one server process driving N worker processes over real
// sockets, demonstrating the ASYNC protocol (tasks, results, installs,
// versioned broadcast fetches) across a real transport:
//
//	asyncd -role server -addr :7077 -workers 4
//	asyncd -role worker -addr host:7077 -id 0
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/async"
	"repro/async/jobs"
	"repro/async/jobs/store"
	"repro/internal/dataset"
	"repro/internal/opt"
	"repro/internal/straggler"
)

func main() {
	var (
		role     = flag.String("role", "serve", "serve|server|worker")
		listen   = flag.String("listen", ":8080", "HTTP listen address (serve)")
		engines  = flag.Int("engines", 2, "engine-pool size (serve)")
		queue    = flag.Int("queue", 64, "job-queue depth (serve)")
		retain   = flag.Int("retain", 256, "terminal jobs retained (serve)")
		storeDir = flag.String("store-dir", "", "WAL directory for durable job state (serve; empty = in-memory only)")
		replica  = flag.String("replica-id", "", "replica name for multi-replica serving over a shared -store-dir (serve; empty = single-owner)")
		leaseTTL = flag.Duration("lease-ttl", 10*time.Second, "job-lease duration in replica mode (serve)")
		quota    = flag.Int("tenant-quota", 0, "max queued jobs per tenant (serve; 0 = unlimited)")
		sloSlack = flag.Duration("slo-slack", 5*time.Second, "deadline slack below which SLO jobs may preempt (serve)")
		compact  = flag.Int("compact-every", 1024, "WAL appends between compactions (serve)")
		addr     = flag.String("addr", ":7077", "listen/dial address (server, worker)")
		workers  = flag.Int("workers", 4, "workers per engine (serve) or per cluster (server)")
		id       = flag.Int("id", 0, "worker id (worker)")
		updates  = flag.Int("updates", 200, "ASGD updates to run (server)")
		delayW   = flag.Int("straggle", -1, "worker id to delay at 100% (worker; -1 = none)")
	)
	flag.Parse()
	switch *role {
	case "serve":
		if err := runService(serviceConfig{
			listen: *listen, engines: *engines, workers: *workers,
			queue: *queue, retain: *retain, storeDir: *storeDir,
			tenantQuota: *quota, sloSlack: *sloSlack, compactEvery: *compact,
			replicaID: *replica, leaseTTL: *leaseTTL,
		}); err != nil {
			fatalf("serve: %v", err)
		}
	case "server":
		if err := runServer(*addr, *workers, *updates); err != nil {
			fatalf("server: %v", err)
		}
	case "worker":
		var model straggler.Model = straggler.None{}
		if *delayW == *id {
			model = straggler.ControlledDelay{Worker: *id, Intensity: 1.0}
		}
		if err := async.ServeWorker(*addr, *id, model, int64(*id)+1); err != nil {
			fatalf("worker %d: %v", *id, err)
		}
	default:
		fatalf("-role must be serve, server, or worker")
	}
}

// serviceConfig bundles the serve-role flags.
type serviceConfig struct {
	listen       string
	engines      int
	workers      int
	queue        int
	retain       int
	storeDir     string
	tenantQuota  int
	sloSlack     time.Duration
	compactEvery int
	replicaID    string
	leaseTTL     time.Duration
}

// runService runs the job-scheduling daemon until SIGINT/SIGTERM. With
// -store-dir, job state is durable: every lifecycle transition is WAL-logged
// before it is acknowledged, boot replays the log (resuming interrupted jobs
// from their last durable checkpoint), and a signal drains gracefully —
// running jobs preempt at their next update boundary, checkpoints persist,
// and the WAL is fsynced before exit. With -replica-id, several daemons
// share one -store-dir: jobs are lease-claimed before dispatch, every
// append is epoch-fenced, and a crashed replica's jobs fail over to the
// survivors after its lease expires.
func runService(cfg serviceConfig) error {
	jc := jobs.Config{
		Engines:       cfg.engines,
		QueueDepth:    cfg.queue,
		Retention:     cfg.retain,
		TenantQuota:   cfg.tenantQuota,
		SLOSlack:      cfg.sloSlack,
		CompactEvery:  cfg.compactEvery,
		EngineOptions: []async.Option{async.WithWorkers(cfg.workers)},
	}
	switch {
	case cfg.replicaID != "":
		if cfg.storeDir == "" {
			return errors.New("-replica-id needs -store-dir (replicas coordinate through the shared log)")
		}
		sh, err := store.OpenShared(cfg.storeDir, cfg.replicaID, store.SharedOptions{
			CompactEvery: cfg.compactEvery,
		})
		if err != nil {
			return err
		}
		defer sh.Close()
		jc.Store = sh
		jc.ReplicaID = cfg.replicaID
		jc.LeaseTTL = cfg.leaseTTL
	case cfg.storeDir != "":
		w, err := store.Open(cfg.storeDir, store.Options{})
		if err != nil {
			return err
		}
		defer w.Close()
		jc.Store = w
	}
	sched, err := jobs.New(jc)
	if err != nil {
		return err
	}
	defer sched.Close()
	if cfg.storeDir != "" {
		st := sched.Stats()
		fmt.Fprintf(os.Stderr, "asyncd: recovered %d jobs from %s in %.1fms\n",
			st.RecoveredJobs, cfg.storeDir, st.RecoveryMS)
	}
	srv := &http.Server{Addr: cfg.listen, Handler: jobs.NewHandler(sched)}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "asyncd: serving on %s (%d engines × %d workers, queue %d)\n",
		cfg.listen, cfg.engines, cfg.workers, cfg.queue)
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		return err
	case sig := <-stop:
		fmt.Fprintf(os.Stderr, "asyncd: %v, draining\n", sig)
	}
	// graceful drain: stop dispatching, preempt running jobs so their
	// checkpoints spill durably, fsync the WAL. Bounded so a
	// non-cooperating solver cannot hold shutdown hostage.
	if jc.Store != nil {
		dctx, dcancel := context.WithTimeout(context.Background(), 30*time.Second)
		if err := sched.Drain(dctx); err != nil {
			fmt.Fprintf(os.Stderr, "asyncd: drain: %v\n", err)
		}
		dcancel()
	}
	// close the scheduler next: it cancels jobs and closes event
	// subscriptions, so long-lived SSE handlers return and Shutdown can
	// drain instead of hanging on them until the timeout
	if err := sched.Close(); err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		return err
	}
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

// runServer drives the TCP demo job: one short ASGD run over real sockets.
func runServer(addr string, workers, updates int) error {
	fmt.Fprintf(os.Stderr, "asyncd: waiting for %d workers on %s\n", workers, addr)
	eng, err := async.New(
		async.WithWorkers(workers),
		async.WithTransport(async.TCP(addr)),
		async.WithPartitions(2*workers),
	)
	if err != nil {
		return err
	}
	defer eng.Close()
	fmt.Fprintf(os.Stderr, "asyncd: %d workers connected\n", workers)

	d, err := dataset.Generate(dataset.MNIST8MLike(dataset.ScaleTiny, 7))
	if err != nil {
		return err
	}
	_, fstar, err := opt.ReferenceOptimum(d)
	if err != nil {
		return err
	}
	start := time.Now()
	// asgd-remote dispatches registered ops (serializable args) rather than
	// closures, so the whole job runs across the TCP transport.
	res, err := eng.Solve(context.Background(), "asgd-remote", d, async.SolveOptions{
		Params: opt.Params{
			Step:       opt.Scaled{Base: opt.InvSqrt{A: 0.5 / float64(d.NumCols())}, Factor: float64(workers)},
			SampleFrac: 0.5,
			Updates:    updates,
		},
		FStar: fstar,
	})
	if err != nil {
		return err
	}
	fmt.Printf("ASGD over TCP: %d updates in %v, final error %.4g\n",
		updates, time.Since(start).Round(time.Millisecond), res.Trace.FinalError())
	fmt.Print(res.Trace.FormatWait())
	return nil
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "asyncd: "+format+"\n", args...)
	os.Exit(1)
}
