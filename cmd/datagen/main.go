// Command datagen generates the synthetic Table 2 dataset analogues in
// LIBSVM format, or lists their shapes.
//
// Usage:
//
//	datagen -list -scale small
//	datagen -name rcv1-like -scale small -out rcv1.libsvm
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/dataset"
)

func main() {
	var (
		list  = flag.Bool("list", false, "list dataset shapes and exit")
		name  = flag.String("name", "", "dataset to generate: rcv1-like|mnist8m-like|epsilon-like")
		scale = flag.String("scale", "small", "dataset scale: tiny|small|full")
		seed  = flag.Int64("seed", 42, "generator seed")
		out   = flag.String("out", "", "output path (default stdout)")
	)
	flag.Parse()
	var sc dataset.Scale
	switch *scale {
	case "tiny":
		sc = dataset.ScaleTiny
	case "small":
		sc = dataset.ScaleSmall
	case "full":
		sc = dataset.ScaleFull
	default:
		fatalf("unknown scale %q", *scale)
	}
	cfgs := dataset.Table2(sc, *seed)
	if *list {
		fmt.Printf("%-14s %8s %8s %10s\n", "name", "rows", "cols", "nnz/row")
		for _, c := range cfgs {
			fmt.Printf("%-14s %8d %8d %10d\n", c.Name, c.Rows, c.Cols, c.NNZPerRow)
		}
		return
	}
	var cfg *dataset.SynthConfig
	for i := range cfgs {
		if cfgs[i].Name == *name {
			cfg = &cfgs[i]
			break
		}
	}
	if cfg == nil {
		fatalf("unknown dataset %q (use -list)", *name)
	}
	d, err := dataset.Generate(*cfg)
	if err != nil {
		fatalf("generate: %v", err)
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatalf("create %s: %v", *out, err)
		}
		defer f.Close()
		w = f
	}
	if err := dataset.WriteLIBSVM(w, d); err != nil {
		fatalf("write: %v", err)
	}
	s := d.Stats()
	fmt.Fprintf(os.Stderr, "wrote %s: %d x %d, %d nnz, %.2f MB\n", s.Name, s.Rows, s.Cols, s.NNZ, s.SizeMB)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "datagen: "+format+"\n", args...)
	os.Exit(1)
}
