// Command asyncbench regenerates the paper's tables and figures on the
// simulated cluster. Each experiment prints the series or rows the paper
// reports (error-vs-time curves, wait times, speedups).
//
// Usage:
//
//	asyncbench -exp fig3 -scale small
//	asyncbench -exp all -scale tiny
//
// Experiments: table2, fig2..fig8, table3, ablation-broadcast,
// ablation-localreduce, ablation-barrier, ablation-staleness,
// ext-sspsweep, ext-staleness-dist, all.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/dataset"
	"repro/internal/experiments"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment id (or 'all'; see package doc)")
		scale   = flag.String("scale", "small", "dataset scale: tiny|small|full")
		seed    = flag.Int64("seed", 42, "experiment seed")
		rounds  = flag.Int("rounds", 0, "sync round budget (0 = scale default)")
		minTask = flag.Duration("mintask", 2*time.Millisecond, "per-task compute floor")
		quiet   = flag.Bool("quiet", false, "suppress progress logging")
		csvDir  = flag.String("csvdir", "", "also write figure series as CSV files into this directory")
	)
	flag.Parse()
	o := experiments.Options{
		Seed:        *seed,
		SyncUpdates: *rounds,
		MinTask:     *minTask,
		CSVDir:      *csvDir,
	}
	if !*quiet {
		o.Log = os.Stderr
	}
	sc, err := dataset.ParseScale(*scale)
	if err != nil {
		fatalf("%v", err)
	}
	o.Scale = sc
	ids := []string{*exp}
	if *exp == "all" {
		ids = experiments.IDs()
	}
	for _, id := range ids {
		fmt.Printf("==================== %s ====================\n", id)
		if err := experiments.Run(o, id, os.Stdout); err != nil {
			fatalf("%s: %v", id, err)
		}
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "asyncbench: "+format+"\n", args...)
	os.Exit(1)
}
