// Command asyncbench regenerates the paper's tables and figures on the
// simulated cluster, and doubles as the performance-trajectory tool: -json
// runs the hot-path benchmark suite and writes a BENCH_<date>.json report,
// -compare gates one report against a baseline.
//
// Usage:
//
//	asyncbench -exp fig3 -scale small
//	asyncbench -exp all -scale tiny
//	asyncbench -json                        # writes BENCH_<date>.json
//	asyncbench -json -out bench_pr.json
//	asyncbench -compare old.json,new.json   # exit 1 on >15% regression
//	asyncbench -compare old.json,new.json -threshold 0.10
//	asyncbench -json -cpuprofile cpu.pb.gz -memprofile mem.pb.gz
//
// Experiments: table2, fig2..fig8, table3, ablation-broadcast,
// ablation-localreduce, ablation-barrier, ablation-staleness,
// ext-sspsweep, ext-staleness-dist, all.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/dataset"
	"repro/internal/experiments"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment id (or 'all'; see package doc)")
		scale   = flag.String("scale", "small", "dataset scale: tiny|small|full")
		seed    = flag.Int64("seed", 42, "experiment seed")
		rounds  = flag.Int("rounds", 0, "sync round budget (0 = scale default)")
		minTask = flag.Duration("mintask", 2*time.Millisecond, "per-task compute floor")
		quiet   = flag.Bool("quiet", false, "suppress progress logging")
		csvDir  = flag.String("csvdir", "", "also write figure series as CSV files into this directory")

		jsonMode  = flag.Bool("json", false, "run the hot-path benchmark suite and write a BENCH_<date>.json report")
		out       = flag.String("out", "", "report path for -json (default BENCH_<date>.json)")
		schedJobs = flag.Int("schedjobs", 0, "scheduler jobs for the -json throughput leg (0 = default)")
		compare   = flag.String("compare", "", "old.json,new.json: compare two reports, exit 1 on regression")
		threshold = flag.Float64("threshold", 0.15, "relative regression threshold for -compare (0.15 = 15%)")

		cpuProfile = flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
		memProfile = flag.String("memprofile", "", "write a pprof heap profile at exit to this file")
	)
	flag.Parse()
	stopProfiles, err := startProfiles(*cpuProfile, *memProfile)
	if err != nil {
		fatalf("%v", err)
	}
	defer stopProfiles()
	if *jsonMode {
		runSuite(*out, *schedJobs, *quiet)
		stopProfiles()
		return
	}
	if *compare != "" {
		runCompare(*compare, *threshold)
		return
	}
	o := experiments.Options{
		Seed:        *seed,
		SyncUpdates: *rounds,
		MinTask:     *minTask,
		CSVDir:      *csvDir,
	}
	if !*quiet {
		o.Log = os.Stderr
	}
	sc, err := dataset.ParseScale(*scale)
	if err != nil {
		fatalf("%v", err)
	}
	o.Scale = sc
	ids := []string{*exp}
	if *exp == "all" {
		ids = experiments.IDs()
	}
	for _, id := range ids {
		fmt.Printf("==================== %s ====================\n", id)
		if err := experiments.Run(o, id, os.Stdout); err != nil {
			fatalf("%s: %v", id, err)
		}
	}
	stopProfiles()
}

// startProfiles arms the pprof outputs named by -cpuprofile/-memprofile so
// a regression flagged by the CI bench gate can be rerun locally and
// diagnosed from artifacts. The returned stop is idempotent: it ends the
// CPU profile and writes the heap snapshot.
func startProfiles(cpuPath, memPath string) (stop func(), err error) {
	stopped := false
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			_ = f.Close()
			return nil, fmt.Errorf("start cpu profile: %w", err)
		}
		stop = func() {
			pprof.StopCPUProfile()
			_ = f.Close()
		}
	}
	cpuStop := stop
	return func() {
		if stopped {
			return
		}
		stopped = true
		if cpuStop != nil {
			cpuStop()
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintf(os.Stderr, "asyncbench: memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle allocations so the heap profile is stable
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "asyncbench: memprofile: %v\n", err)
			}
		}
	}, nil
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "asyncbench: "+format+"\n", args...)
	os.Exit(1)
}

// runSuite measures the hot paths and writes the BENCH_<date>.json report.
func runSuite(out string, schedJobs int, quiet bool) {
	now := time.Now()
	opts := bench.SuiteOptions{SchedulerJobs: schedJobs}
	if !quiet {
		opts.Log = os.Stderr
	}
	r, err := bench.RunSuite(now, opts)
	if err != nil {
		fatalf("suite: %v", err)
	}
	if out == "" {
		out = bench.DefaultFilename(now)
	}
	if err := r.Write(out); err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("wrote %s (%d metrics)\n", out, len(r.Entries))
}

// runCompare gates new against old, printing every shared metric and
// exiting non-zero when any regresses past the threshold.
func runCompare(spec string, threshold float64) {
	parts := strings.Split(spec, ",")
	if len(parts) != 2 {
		fatalf("-compare wants old.json,new.json")
	}
	old, err := bench.ReadReport(strings.TrimSpace(parts[0]))
	if err != nil {
		fatalf("%v", err)
	}
	cur, err := bench.ReadReport(strings.TrimSpace(parts[1]))
	if err != nil {
		fatalf("%v", err)
	}
	for _, e := range cur.Entries {
		oe, ok := old.Lookup(e.Name)
		if !ok {
			fmt.Printf("%-28s %14.4g %-10s (new metric)\n", e.Name, e.Value, e.Unit)
			continue
		}
		fmt.Printf("%-28s %14.4g -> %-14.4g %s\n", e.Name, oe.Value, e.Value, e.Unit)
	}
	regs := bench.Compare(old, cur, threshold)
	if len(regs) == 0 {
		fmt.Printf("no regressions beyond %.0f%%\n", threshold*100)
		return
	}
	for _, r := range regs {
		fmt.Fprintf(os.Stderr, "REGRESSION %s\n", r)
	}
	os.Exit(1)
}
