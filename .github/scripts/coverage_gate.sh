#!/usr/bin/env bash
# coverage_gate.sh <coverprofile> — the coverage ratchet: total statement
# coverage may never drop below the floor checked into COVERAGE_RATCHET.
# Raising coverage? Bump the ratchet in the same PR so it can only go up.
set -euo pipefail

profile="${1:-cover.out}"
root="$(cd "$(dirname "$0")/../.." && pwd)"
floor="$(tr -d '[:space:]' < "$root/COVERAGE_RATCHET")"

total="$(go tool cover -func="$profile" | awk '/^total:/ {gsub("%", "", $3); print $3}')"
if [ -z "$total" ]; then
  echo "coverage_gate: could not parse total coverage from $profile" >&2
  exit 1
fi
echo "total statement coverage: ${total}% (ratchet floor: ${floor}%)"

below="$(awk -v t="$total" -v f="$floor" 'BEGIN { print (t + 0 < f + 0) ? 1 : 0 }')"
if [ "$below" = "1" ]; then
  echo "FAIL: coverage ${total}% fell below the ratchet ${floor}%." >&2
  echo "Add tests, or lower COVERAGE_RATCHET in this PR with justification." >&2
  exit 1
fi

slack="$(awk -v t="$total" -v f="$floor" 'BEGIN { print (t >= f + 2) ? 1 : 0 }')"
if [ "$slack" = "1" ]; then
  echo "note: coverage exceeds the ratchet by >=2 points; consider bumping COVERAGE_RATCHET to lock it in."
fi
