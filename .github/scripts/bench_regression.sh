#!/usr/bin/env bash
# bench_regression.sh <base-ref> — the CI bench-regression gate.
#
# Runs the Go micro/scheduler benchmarks and the asyncbench -json suite on
# the working tree, then again at the merge-base in a throwaway git
# worktree, compares the raw benchmarks with benchstat (human-readable) and
# gates on the BENCH json reports via `asyncbench -compare` (>15% worse on
# any shared metric fails). If the merge-base predates the -json flag the
# gate is skipped (there is no baseline to regress against) but the PR
# report is still produced for the artifact upload.
set -euo pipefail

base_ref="${1:-}"
go_benches='BenchmarkGradKernelLocal|BenchmarkGradInnerLoop|BenchmarkCSRMatVec|BenchmarkSparseGradAccum'

echo "== benchmarks @ PR head =="
go test -run '^$' -bench "$go_benches" -benchmem -count 5 . | tee bench_new.txt
go test -run '^$' -bench BenchmarkSchedulerThroughput -benchtime 100x -count 3 ./async/jobs/ | tee -a bench_new.txt
# overwrite any committed snapshot of the same date: the gate and the
# artifact must carry THIS run's numbers, not a checked-in baseline's
pr_report="BENCH_$(date -u +%F).json"
go run ./cmd/asyncbench -json -out "$pr_report" -schedjobs 40 -quiet

if [ -z "$base_ref" ]; then
  echo "no base ref (push build): report produced, nothing to compare against"
  exit 0
fi

base_sha="$(git merge-base "$base_ref" HEAD)"
echo "== benchmarks @ merge-base $base_sha =="
worktree="$(mktemp -d)"
git worktree add --detach "$worktree" "$base_sha" >/dev/null
trap 'git worktree remove --force "$worktree" >/dev/null || true' EXIT

(cd "$worktree" && go test -run '^$' -bench "$go_benches" -benchmem -count 5 . | tee "$OLDPWD/bench_old.txt") || true
(cd "$worktree" && go test -run '^$' -bench BenchmarkSchedulerThroughput -benchtime 100x -count 3 ./async/jobs/ | tee -a "$OLDPWD/bench_old.txt") || true

if [ -s bench_old.txt ]; then
  echo "== benchstat old new =="
  benchstat bench_old.txt bench_new.txt || true
fi

if (cd "$worktree" && go run ./cmd/asyncbench -json -out /tmp/bench_base.json -schedjobs 40 -quiet); then
  echo "== regression gate (threshold 15%) =="
  go run ./cmd/asyncbench -compare "/tmp/bench_base.json,$pr_report"
else
  echo "merge-base asyncbench has no -json mode; skipping the regression gate"
fi
