package async_test

import (
	"context"
	"strings"
	"testing"

	"repro/async"
	"repro/internal/dataset"
	"repro/internal/opt"
)

// TestPaperAlgorithmsRegistered asserts every optimization method the
// paper evaluates is registered and resolvable by name.
func TestPaperAlgorithmsRegistered(t *testing.T) {
	want := []string{"sgd", "asgd", "saga", "asaga", "svrg", "admm", "bcd"}
	names := map[string]bool{}
	for _, n := range async.Solvers() {
		names[n] = true
	}
	for _, n := range want {
		if !names[n] {
			t.Errorf("solver %q not listed (have: %s)", n, strings.Join(async.Solvers(), ", "))
		}
		s, err := async.Lookup(n)
		if err != nil {
			t.Errorf("Lookup(%q): %v", n, err)
			continue
		}
		if got := strings.ToLower(s.Name()); got != n {
			t.Errorf("Lookup(%q).Name() = %q", n, got)
		}
		// resolution is case-insensitive
		if _, err := async.Lookup(strings.ToUpper(n)); err != nil {
			t.Errorf("Lookup(%q): %v", strings.ToUpper(n), err)
		}
	}
	// the baseline and TCP-transport variants ride along
	for _, n := range []string{"mllib-sgd", "asgd-remote", "asaga-remote"} {
		if _, err := async.Lookup(n); err != nil {
			t.Errorf("Lookup(%q): %v", n, err)
		}
	}
	if _, err := async.Lookup("nope"); err == nil {
		t.Error("unknown solver resolved")
	}
}

// TestEverySolverRuns drives each paper algorithm end-to-end on a tiny
// problem through the facade — the registry wrappers must produce working
// parameterizations from one shared SolveOptions.
func TestEverySolverRuns(t *testing.T) {
	d, err := dataset.Generate(dataset.EpsilonLike(dataset.ScaleTiny, 21))
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"sgd", "asgd", "saga", "asaga", "svrg", "admm", "bcd", "mllib-sgd"} {
		t.Run(name, func(t *testing.T) {
			eng, err := async.New(async.WithWorkers(2), async.WithSeed(23), async.WithPartitions(4))
			if err != nil {
				t.Fatal(err)
			}
			defer eng.Close()
			res, err := eng.Solve(context.Background(), name, d, async.SolveOptions{
				Params: opt.Params{
					Step:          opt.Constant{A: 0.001},
					SampleFrac:    0.5,
					Updates:       12,
					SnapshotEvery: 4,
				},
			})
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if res.Trace == nil || len(res.W) != d.NumCols() {
				t.Fatalf("%s: malformed result", name)
			}
		})
	}
}

// stubSolver exercises the public plug-in path.
type stubSolver struct{ calls int }

func (s *stubSolver) Name() string { return "stub-method" }

func (s *stubSolver) Solve(_ context.Context, _ *async.Engine, _ *dataset.Dataset, _ async.SolveOptions) (*async.Result, error) {
	s.calls++
	return &async.Result{}, nil
}

func TestRegisterCustomSolver(t *testing.T) {
	st := &stubSolver{}
	if err := async.Register(st); err != nil {
		t.Fatal(err)
	}
	if err := async.Register(&stubSolver{}); err == nil {
		t.Fatal("duplicate registration accepted")
	}
	if err := async.Register(nil); err == nil {
		t.Fatal("nil registration accepted")
	}
	eng, err := async.New(async.WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	d, err := dataset.Generate(dataset.EpsilonLike(dataset.ScaleTiny, 25))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Solve(context.Background(), "Stub-Method", d, async.SolveOptions{}); err != nil {
		t.Fatal(err)
	}
	if st.calls != 1 {
		t.Fatalf("stub called %d times", st.calls)
	}
}

// TestRegisterCollidesWithBuiltin asserts a public registration cannot
// shadow a built-in solver name.
func TestRegisterCollidesWithBuiltin(t *testing.T) {
	if err := async.Register(builtinShadow{}); err == nil {
		t.Fatal("registration shadowing built-in \"asgd\" accepted")
	}
}

type builtinShadow struct{}

func (builtinShadow) Name() string { return "ASGD" }

func (builtinShadow) Solve(context.Context, *async.Engine, *dataset.Dataset, async.SolveOptions) (*async.Result, error) {
	return nil, nil
}
