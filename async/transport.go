package async

import (
	"io"

	"repro/internal/cluster"
	"repro/internal/straggler"
)

// Transport abstracts how an Engine reaches its worker pool.
type Transport interface {
	// connect builds the cluster; the returned closer (possibly nil) is
	// released on Engine.Close after the cluster shuts down.
	connect(cfg cluster.Config) (*cluster.Cluster, io.Closer, error)
}

type localTransport struct{}

func (localTransport) connect(cfg cluster.Config) (*cluster.Cluster, io.Closer, error) {
	c, err := cluster.NewLocal(cfg)
	return c, nil, err
}

// Local runs workers as in-process goroutines over channel endpoints — the
// default transport.
func Local() Transport { return localTransport{} }

type tcpTransport struct{ addr string }

func (t tcpTransport) connect(cfg cluster.Config) (*cluster.Cluster, io.Closer, error) {
	c, ln, err := cluster.ListenTCP(t.addr, cfg.NumWorkers)
	if err != nil {
		return nil, nil, err
	}
	return c, ln, nil
}

// TCP listens on addr and blocks engine construction until the configured
// number of workers (started with ServeWorker, typically separate
// processes) have connected. Straggler models and task-time floors are
// worker-side settings on this transport: pass them to ServeWorker.
func TCP(addr string) Transport { return tcpTransport{addr: addr} }

// ServeWorker runs one TCP worker process: it dials the engine's address,
// registers as worker id, and serves tasks until the connection closes.
// The delay model (nil = none) and seed are this worker's own.
func ServeWorker(addr string, id int, delay straggler.Model, seed int64) error {
	if delay == nil {
		delay = straggler.None{}
	}
	return cluster.DialWorkerTCP(addr, id, delay, seed)
}
