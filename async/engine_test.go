package async_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/async"
	"repro/internal/dataset"
	"repro/internal/opt"
)

func tinyData(t *testing.T, seed int64) *dataset.Dataset {
	t.Helper()
	d, err := dataset.Generate(dataset.EpsilonLike(dataset.ScaleTiny, seed))
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func tinyParams(updates int) opt.Params {
	return opt.Params{
		Step:          opt.Constant{A: 0.001},
		SampleFrac:    0.5,
		Updates:       updates,
		SnapshotEvery: 50,
	}
}

func TestOptionValidation(t *testing.T) {
	bad := []struct {
		name string
		opt  async.Option
	}{
		{"WithWorkers(0)", async.WithWorkers(0)},
		{"WithWorkers(-3)", async.WithWorkers(-3)},
		{"WithPartitions(0)", async.WithPartitions(0)},
		{"WithTransport(nil)", async.WithTransport(nil)},
		{"WithBarrier(nil)", async.WithBarrier(nil)},
		{"WithStalenessBound(0)", async.WithStalenessBound(0)},
		{"WithMinTaskTime(-1)", async.WithMinTaskTime(-time.Millisecond)},
		{"WithBarrierTimeout(0)", async.WithBarrierTimeout(0)},
	}
	for _, tc := range bad {
		if eng, err := async.New(tc.opt); err == nil {
			eng.Close()
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestEngineDefaults(t *testing.T) {
	eng, err := async.New()
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if got := eng.Workers(); got != 4 {
		t.Fatalf("default workers = %d, want 4", got)
	}
	if eng.Points() != nil {
		t.Fatal("points non-nil before Distribute")
	}
}

func TestCloseIdempotent(t *testing.T) {
	eng, err := async.New(async.WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Close(); err != nil {
		t.Fatalf("first Close: %v", err)
	}
	if err := eng.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, err := eng.Distribute(tinyData(t, 1)); !errors.Is(err, async.ErrClosed) {
		t.Fatalf("Distribute after Close: %v, want ErrClosed", err)
	}
	if _, err := eng.Solve(context.Background(), "asgd", tinyData(t, 1),
		async.SolveOptions{Params: tinyParams(10)}); !errors.Is(err, async.ErrClosed) {
		t.Fatalf("Solve after Close: %v, want ErrClosed", err)
	}
}

func TestDistributeReturnsLiveHandle(t *testing.T) {
	eng, err := async.New(async.WithWorkers(2), async.WithPartitions(4), async.WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	d := tinyData(t, 2)
	points, err := eng.Distribute(d)
	if err != nil {
		t.Fatal(err)
	}
	if points.NumPartitions() != 4 {
		t.Fatalf("partitions = %d, want 4", points.NumPartitions())
	}
	rows, err := points.Count()
	if err != nil {
		t.Fatal(err)
	}
	if rows != d.NumRows() {
		t.Fatalf("distributed rows = %d, want %d", rows, d.NumRows())
	}
	// idempotent for the same dataset, rejected for a different one
	again, err := eng.Distribute(d)
	if err != nil || again != points {
		t.Fatalf("re-Distribute same dataset: %v, %p vs %p", err, again, points)
	}
	if _, err := eng.Distribute(tinyData(t, 3)); err == nil {
		t.Fatal("second dataset accepted on one engine")
	}
}

func TestReleaseSwapsDataset(t *testing.T) {
	eng, err := async.New(async.WithWorkers(2), async.WithSeed(23))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	a, b := tinyData(t, 30), tinyData(t, 31)
	if _, err := eng.Solve(context.Background(), "asgd", a, async.SolveOptions{Params: tinyParams(20)}); err != nil {
		t.Fatal(err)
	}
	if eng.Dataset() != a {
		t.Fatal("engine does not report held dataset")
	}
	// a different dataset is rejected until the first is released
	if _, err := eng.Distribute(b); err == nil {
		t.Fatal("second dataset accepted without Release")
	}
	if err := eng.Release(); err != nil {
		t.Fatalf("Release: %v", err)
	}
	if eng.Dataset() != nil {
		t.Fatal("dataset still held after Release")
	}
	if err := eng.Release(); err != nil {
		t.Fatalf("idempotent Release: %v", err)
	}
	// the same engine now solves on the new dataset end to end
	res, err := eng.Solve(context.Background(), "asgd", b, async.SolveOptions{Params: tinyParams(20)})
	if err != nil {
		t.Fatalf("Solve after Release: %v", err)
	}
	if len(res.W) != b.NumCols() {
		t.Fatalf("model dim %d, want %d", len(res.W), b.NumCols())
	}
	rows, err := eng.Points().Count()
	if err != nil {
		t.Fatal(err)
	}
	if rows != b.NumRows() {
		t.Fatalf("distributed rows = %d, want %d", rows, b.NumRows())
	}
}

func TestProgressCallback(t *testing.T) {
	eng, err := async.New(async.WithWorkers(2), async.WithSeed(37))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	var events []opt.Progress
	p := tinyParams(40)
	p.SnapshotEvery = 10
	p.OnProgress = func(pr opt.Progress) { events = append(events, pr) }
	if _, err := eng.Solve(context.Background(), "asgd", tinyData(t, 33), async.SolveOptions{Params: p}); err != nil {
		t.Fatal(err)
	}
	if len(events) < 3 {
		t.Fatalf("got %d progress events, want >= 3", len(events))
	}
	last := events[len(events)-1]
	if !last.Final {
		t.Fatal("last progress event not marked final")
	}
	if last.Updates < 40 {
		t.Fatalf("final event at %d updates, want >= 40", last.Updates)
	}
	if len(last.W) == 0 {
		t.Fatal("progress event missing model snapshot")
	}
}

func TestSolveByName(t *testing.T) {
	eng, err := async.New(async.WithWorkers(2), async.WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	d := tinyData(t, 4)
	res, err := eng.Solve(context.Background(), "ASGD", d, async.SolveOptions{Params: tinyParams(40)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace == nil || len(res.W) != d.NumCols() {
		t.Fatalf("malformed result: %+v", res)
	}
	if _, err := eng.Solve(context.Background(), "no-such-algo", d, async.SolveOptions{Params: tinyParams(10)}); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

func TestSolveCancellationMidRun(t *testing.T) {
	eng, err := async.New(
		async.WithWorkers(2),
		async.WithSeed(11),
		async.WithMinTaskTime(2*time.Millisecond),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	d := tinyData(t, 6)
	ctx, cancel := context.WithCancel(context.Background())
	time.AfterFunc(50*time.Millisecond, cancel)
	start := time.Now()
	// a budget far beyond what 50ms of 2ms-floor tasks can deliver
	_, err = eng.Solve(ctx, "asgd", d, async.SolveOptions{Params: tinyParams(1_000_000)})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled Solve returned %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v to propagate", elapsed)
	}
	// the engine stays usable after a cancelled run
	if _, err := eng.Solve(context.Background(), "asgd", d, async.SolveOptions{Params: tinyParams(20)}); err != nil {
		t.Fatalf("Solve after cancellation: %v", err)
	}
}

func TestSolveDeadline(t *testing.T) {
	eng, err := async.New(async.WithWorkers(2), async.WithSeed(13), async.WithMinTaskTime(2*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	_, err = eng.Solve(ctx, "saga", tinyData(t, 8), async.SolveOptions{Params: tinyParams(1_000_000)})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("deadline Solve returned %v, want context.DeadlineExceeded", err)
	}
}

func TestMllibSolverHonoursCancellation(t *testing.T) {
	// mllib-sgd bypasses the AC, so its cancellation path is a per-round
	// ctx check rather than Context.Bind — it must still stop mid-run.
	eng, err := async.New(async.WithWorkers(2), async.WithSeed(19), async.WithMinTaskTime(2*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	_, err = eng.Solve(ctx, "mllib-sgd", tinyData(t, 10), async.SolveOptions{Params: tinyParams(1_000_000)})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("mllib-sgd under deadline returned %v, want context.DeadlineExceeded", err)
	}
}

func TestConcurrentSolveRejected(t *testing.T) {
	eng, err := async.New(async.WithWorkers(2), async.WithSeed(29), async.WithMinTaskTime(2*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	d := tinyData(t, 12)
	started := make(chan struct{})
	firstDone := make(chan error, 1)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		close(started)
		_, err := eng.Solve(ctx, "asgd", d, async.SolveOptions{Params: tinyParams(1_000_000)})
		firstDone <- err
	}()
	<-started
	time.Sleep(30 * time.Millisecond) // let the first solve get in flight
	if _, err := eng.Solve(context.Background(), "asgd", d, async.SolveOptions{Params: tinyParams(10)}); !errors.Is(err, async.ErrBusy) {
		t.Fatalf("second concurrent Solve returned %v, want ErrBusy", err)
	}
	cancel()
	if err := <-firstDone; !errors.Is(err, context.Canceled) {
		t.Fatalf("first solve: %v", err)
	}
	// sequential solves still work once the engine is free again
	if _, err := eng.Solve(context.Background(), "asgd", d, async.SolveOptions{Params: tinyParams(10)}); err != nil {
		t.Fatalf("Solve after ErrBusy window: %v", err)
	}
}

func TestEngineBarrierDefault(t *testing.T) {
	// An SSP default via WithStalenessBound must flow into solves that
	// leave Barrier nil; the run should still converge on a tiny budget.
	eng, err := async.New(async.WithWorkers(2), async.WithSeed(17), async.WithStalenessBound(8))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if _, err := eng.Solve(context.Background(), "asgd", tinyData(t, 9),
		async.SolveOptions{Params: tinyParams(30)}); err != nil {
		t.Fatal(err)
	}
}

// TestCheckpointEveryAndSolveFrom covers the mid-run checkpoint surface of
// the facade: an engine-wide WithCheckpointEvery default feeds every
// solve's OnCheckpoint observer, and SolveFrom resumes the captured
// driver state (the resumed trace picks up at the checkpoint's clock and
// runs out the remaining global budget).
func TestCheckpointEveryAndSolveFrom(t *testing.T) {
	eng, err := async.New(
		async.WithWorkers(1),
		async.WithPartitions(2),
		async.WithCheckpointEvery(20),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	d := tinyData(t, 5)

	var cps []*opt.Checkpoint
	opts := async.SolveOptions{Params: tinyParams(60)}
	opts.Params.OnCheckpoint = func(cp *opt.Checkpoint) { cps = append(cps, cp) }
	res, err := eng.Solve(context.Background(), "asgd", d, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(cps) != 3 {
		t.Fatalf("engine cadence 20 over 60 updates captured %d checkpoints, want 3", len(cps))
	}
	mid := cps[1]
	if mid.Algorithm != "asgd" || mid.Updates != 40 {
		t.Fatalf("checkpoint %+v, want asgd@40", mid)
	}

	resumed, err := eng.SolveFrom(context.Background(), mid, d, async.SolveOptions{Params: tinyParams(60)})
	if err != nil {
		t.Fatal(err)
	}
	if got := resumed.Trace.Points[0].Updates; got != 40 {
		t.Fatalf("resumed trace starts at %d, want 40", got)
	}
	if got := resumed.Trace.Points[len(resumed.Trace.Points)-1].Updates; got != 60 {
		t.Fatalf("resumed trace ends at %d, want 60", got)
	}
	if len(resumed.W) != len(res.W) {
		t.Fatalf("resumed model dim %d != %d", len(resumed.W), len(res.W))
	}

	// validation paths
	if _, err := eng.SolveFrom(context.Background(), nil, d, async.SolveOptions{Params: tinyParams(60)}); err == nil {
		t.Fatal("SolveFrom(nil) accepted")
	}
	if _, err := eng.SolveFrom(context.Background(), &opt.Checkpoint{Algorithm: "asgd"}, d, async.SolveOptions{Params: tinyParams(60)}); err == nil {
		t.Fatal("invalid checkpoint accepted")
	}
	if eng2, err := async.New(async.WithCheckpointEvery(-1)); err == nil {
		eng2.Close()
		t.Fatal("WithCheckpointEvery(-1) accepted")
	}
}
