package async

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/straggler"
)

// Barrier is a barrier-control predicate over the STAT table (the paper's
// Listing 2 interface); ASP, BSP and SSP are provided and any custom
// predicate works.
type Barrier = core.BarrierFunc

// Filter selects which available workers receive tasks once the barrier
// opens; nil means all of them.
type Filter = core.WorkerFilter

// ASP is the fully asynchronous barrier: always open.
func ASP() Barrier { return core.ASP() }

// BSP is the bulk-synchronous barrier: open only when every live worker is
// available.
func BSP() Barrier { return core.BSP() }

// SSP is the stale-synchronous barrier with staleness threshold s.
func SSP(s int64) Barrier { return core.SSP(s) }

// MinAvailable opens when at least ⌊beta·P⌋ workers are available.
func MinAvailable(beta float64) Barrier { return core.MinAvailable(beta) }

// MaxAvgTaskTime admits only workers whose average task time is below the
// bound — a completion-time-based worker filter.
func MaxAvgTaskTime(bound time.Duration) Filter { return core.MaxAvgTaskTime(bound) }

// PSP admits each available worker with probability p (probabilistic
// synchronous parallel); the rng must be owned by the driver goroutine.
func PSP(p float64, rng *rand.Rand) Filter { return core.PSP(p, rng) }

// config collects the engine settings the functional options mutate.
type config struct {
	workers         int
	seed            int64
	partitions      int
	transport       Transport
	barrier         Barrier
	delay           straggler.Model
	minTask         time.Duration
	barrierTimeout  time.Duration
	checkpointEvery int
}

func defaultConfig() config {
	return config{
		workers:   4,
		seed:      1,
		transport: Local(),
	}
}

// Option configures an Engine at construction time.
type Option func(*config) error

// WithWorkers sets the worker-pool size (default 4).
func WithWorkers(n int) Option {
	return func(c *config) error {
		if n <= 0 {
			return fmt.Errorf("async: WithWorkers(%d): need at least one worker", n)
		}
		c.workers = n
		return nil
	}
}

// WithSeed sets the base seed; worker w derives its stream from seed+w.
func WithSeed(seed int64) Option {
	return func(c *config) error {
		c.seed = seed
		return nil
	}
}

// WithPartitions sets how many data partitions Distribute creates
// (default: 2 × workers).
func WithPartitions(n int) Option {
	return func(c *config) error {
		if n <= 0 {
			return fmt.Errorf("async: WithPartitions(%d): need at least one partition", n)
		}
		c.partitions = n
		return nil
	}
}

// WithTransport selects how the engine reaches its workers: Local()
// in-process goroutines (default) or TCP(addr) real sockets.
func WithTransport(t Transport) Option {
	return func(c *config) error {
		if t == nil {
			return fmt.Errorf("async: WithTransport(nil)")
		}
		c.transport = t
		return nil
	}
}

// WithBarrier sets the engine's default barrier-control policy, applied to
// every Solve whose options leave Barrier nil (solver default is ASP).
func WithBarrier(b Barrier) Option {
	return func(c *config) error {
		if b == nil {
			return fmt.Errorf("async: WithBarrier(nil)")
		}
		c.barrier = b
		return nil
	}
}

// WithStalenessBound is shorthand for WithBarrier(SSP(s)).
func WithStalenessBound(s int64) Option {
	return func(c *config) error {
		if s <= 0 {
			return fmt.Errorf("async: WithStalenessBound(%d): bound must be positive", s)
		}
		c.barrier = SSP(s)
		return nil
	}
}

// WithStraggler injects a delay model into local workers (TCP workers own
// their delay model at ServeWorker time).
func WithStraggler(m straggler.Model) Option {
	return func(c *config) error {
		c.delay = m
		return nil
	}
}

// WithMinTaskTime pads every local task to at least d before the straggler
// model applies, so delay intensities act on a stable task time.
func WithMinTaskTime(d time.Duration) Option {
	return func(c *config) error {
		if d < 0 {
			return fmt.Errorf("async: WithMinTaskTime(%v): negative duration", d)
		}
		c.minTask = d
		return nil
	}
}

// WithCheckpointEvery sets the engine's default mid-run checkpoint cadence:
// every Solve whose options leave Params.CheckpointEvery zero captures a
// driver checkpoint every n model updates (delivered to the run's
// Params.OnCheckpoint observer). 0 disables the default.
func WithCheckpointEvery(n int) Option {
	return func(c *config) error {
		if n < 0 {
			return fmt.Errorf("async: WithCheckpointEvery(%d): cadence must be non-negative", n)
		}
		c.checkpointEvery = n
		return nil
	}
}

// WithBarrierTimeout bounds how long a barrier may block before reporting
// that the system cannot make progress (default 30s).
func WithBarrierTimeout(d time.Duration) Option {
	return func(c *config) error {
		if d <= 0 {
			return fmt.Errorf("async: WithBarrierTimeout(%v): need a positive duration", d)
		}
		c.barrierTimeout = d
		return nil
	}
}
