// Package async is the public facade of the ASYNC engine reproduction
// (Soori et al., IPDPS 2020): one blessed entry point that owns the
// cluster, the RDD dataflow context and the Asynchronous Context (AC), and
// runs any registered optimization method by name.
//
// The five hand-wired setup steps the internal packages require
// (cluster.NewLocal → rdd.NewContext → core.New → distribute → opt.<Algo>)
// collapse into three calls:
//
//	eng, err := async.New(async.WithWorkers(4), async.WithSeed(1))
//	defer eng.Close()
//	res, err := eng.Solve(ctx, "asgd", d, async.SolveOptions{
//		Params: opt.Params{Step: opt.InvSqrt{A: 0.01}, SampleFrac: 0.25, Updates: 400},
//	})
//
// The objective is declared structurally: a named smooth loss
// (least-squares default, logistic) plus optional elastic-net penalties.
// An ℓ1 term is solved with a proximal step — final models carry exact
// zeros — and is accepted by the prox-capable solvers (sgd, asgd, cd,
// gcg); everything else rejects it up front:
//
//	res, err := eng.Solve(ctx, "cd", d, async.SolveOptions{
//		Objective: async.Objective{Loss: "least-squares", L2: 0.01, L1: 0.001},
//		Params:    opt.Params{Updates: 200},
//	})
//
// Engines are configured with functional options: WithWorkers, WithSeed,
// WithTransport (Local or TCP), WithBarrier / WithStalenessBound (the
// default barrier-control policy: ASP, BSP, SSP or any custom predicate),
// WithPartitions, WithStraggler and WithMinTaskTime.
//
// Algorithms are resolved through a name-keyed registry: the paper's
// methods (sgd, asgd, saga, asaga, svrg, admm, bcd), the composite-
// objective family (cd — proximal coordinate descent with incremental
// residuals, gcg — restart-based generalized conjugate gradient), the
// Mllib-style baseline (mllib-sgd) and the TCP-transport variants
// (asgd-remote, asaga-remote) are pre-registered, and new workloads plug in via
// Register without touching the engine. Solvers receive a context.Context
// that is threaded down into the AC, so cancellation or a deadline aborts
// barrier waits and result collection mid-run.
//
// For drivers that need the raw Table-1 primitives (ASYNCbroadcast,
// ASYNCbarrier, ASYNCreduce, ASYNCcollect), Engine.Context exposes the
// underlying AC; the barrier and filter constructors (ASP, BSP, SSP,
// MinAvailable, MaxAvgTaskTime) are re-exported here so such drivers need
// no internal imports.
//
// An engine serves one Solve at a time (ErrBusy) and holds one dataset at
// a time (Release swaps it); between solves the engine resets its logical
// clock, statistics, and worker-local run state, so sequential runs are
// independent. For serving many concurrent jobs over a pool of engines,
// see the async/jobs subpackage.
package async
