package async

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/dataset"
	"repro/internal/opt"
)

// Solver is the unified interface every optimization method exposes
// through the facade: a name and a Solve over an engine. The paper's
// methods are pre-registered (backed by the internal/opt registry); new
// workloads implement Solver and plug in via Register.
type Solver interface {
	Name() string
	Solve(ctx context.Context, e *Engine, ds *dataset.Dataset, opts SolveOptions) (*Result, error)
}

var (
	regMu    sync.RWMutex
	registry = map[string]Solver{}
)

// Register adds a solver to the public registry under its lowercased
// name. It fails on an empty name or a name that collides with an already
// registered solver (including the built-in ones).
func Register(s Solver) error {
	if s == nil {
		return fmt.Errorf("async: Register(nil)")
	}
	key := strings.ToLower(s.Name())
	if key == "" {
		return fmt.Errorf("async: Register: empty solver name")
	}
	if _, err := opt.LookupSolver(key); err == nil {
		return fmt.Errorf("async: solver %q already registered", key)
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[key]; dup {
		return fmt.Errorf("async: solver %q already registered", key)
	}
	registry[key] = s
	return nil
}

// Lookup resolves a solver by name (case-insensitive): public
// registrations first, then the built-in internal registry.
func Lookup(name string) (Solver, error) {
	key := strings.ToLower(name)
	regMu.RLock()
	s, ok := registry[key]
	regMu.RUnlock()
	if ok {
		return s, nil
	}
	is, err := opt.LookupSolver(key)
	if err != nil {
		return nil, fmt.Errorf("async: unknown solver %q (known: %s)", name, strings.Join(Solvers(), ", "))
	}
	return builtinSolver{is}, nil
}

// Solvers lists every resolvable solver name, sorted.
func Solvers() []string {
	names := opt.SolverNames()
	regMu.RLock()
	for name := range registry {
		names = append(names, name)
	}
	regMu.RUnlock()
	sort.Strings(names)
	return names
}

// builtinSolver adapts an internal/opt registry entry to the public
// interface by assembling its SolveRequest from the engine.
type builtinSolver struct {
	s opt.Solver
}

func (b builtinSolver) Name() string { return b.s.Name() }

func (b builtinSolver) Solve(ctx context.Context, e *Engine, ds *dataset.Dataset, opts SolveOptions) (*Result, error) {
	return b.s.Solve(ctx, opt.SolveRequest{
		AC:     e.Context(),
		Points: e.Points(),
		Data:   ds,
		Config: opts,
	})
}
