package async

import (
	"repro/internal/metrics"
)

// RunStats snapshots the engine's coordinator-level statistics for the run
// in flight (or the last completed one): the logical update clock, in-flight
// tasks, and the staleness and per-worker wait distributions the paper
// reports (Figures 4/6, Table 3). Safe to call concurrently with a solve;
// ResetRun between solves clears the distributions.
type RunStats struct {
	Updates int64 `json:"updates"`
	Pending int   `json:"pending"`

	Staleness metrics.StalenessSummary `json:"staleness"`
	Wait      metrics.WaitSummary      `json:"wait"`

	// StalenessHist is the raw distribution: staleness value → count.
	StalenessHist map[int64]int64 `json:"staleness_hist,omitempty"`
	// WorkerWaitMS is each worker's mean wait between submitting a result
	// and receiving the next task, in milliseconds.
	WorkerWaitMS map[int]float64 `json:"worker_wait_ms,omitempty"`
}

// RunStats captures the coordinator's current run statistics.
func (e *Engine) RunStats() *RunStats {
	co := e.ac.Coordinator()
	hist := co.StalenessHistogram()
	waits := co.WaitTimes()
	rs := &RunStats{
		Updates:   co.Updates(),
		Pending:   co.Pending(),
		Staleness: metrics.SummarizeStaleness(hist),
		Wait:      metrics.SummarizeWaits(waits),
	}
	if len(hist) > 0 {
		rs.StalenessHist = hist
	}
	if len(waits) > 0 {
		rs.WorkerWaitMS = make(map[int]float64, len(waits))
		for w, d := range waits {
			rs.WorkerWaitMS[w] = float64(d.Microseconds()) / 1000.0
		}
	}
	return rs
}
