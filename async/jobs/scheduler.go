package jobs

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/async"
	"repro/async/jobs/store"
	"repro/internal/dataset"
	"repro/internal/opt"
	"repro/internal/telemetry"
)

// Backpressure and lookup errors of the public API.
var (
	// ErrQueueFull is Submit's backpressure signal: the bounded queue is at
	// capacity. Callers retry later or shed load.
	ErrQueueFull = errors.New("jobs: queue is full")
	// ErrUnknownJob is returned for an ID the store does not hold (never
	// assigned, or evicted by the retention limit).
	ErrUnknownJob = errors.New("jobs: unknown job")
	// ErrClosed is returned by operations on a closed scheduler.
	ErrClosed = errors.New("jobs: scheduler is closed")
	// ErrNotRunning is returned by Preempt for a job that holds no engine.
	ErrNotRunning = errors.New("jobs: job is not running")
	// ErrNoCheckpoint is returned when a job holds no retrievable
	// checkpoint (no cadence configured and never preempted).
	ErrNoCheckpoint = errors.New("jobs: job has no checkpoint")
	// ErrStoreUnavailable rejects new submissions while the durable store
	// errors out: running jobs keep serving (graceful degradation), but
	// acknowledging a job the log cannot record would break
	// append-before-ack.
	ErrStoreUnavailable = errors.New("jobs: store unavailable")
	// ErrRemoteJob is returned for mutations of a job whose lease another
	// replica holds — cancel or preempt it on its owning replica.
	ErrRemoteJob = errors.New("jobs: job is owned by another replica")
)

// eventBuffer is the per-subscriber channel slack beyond history replay;
// a subscriber that lags further loses intermediate progress events (the
// channel close still signals termination, and Status has the final word).
const eventBuffer = 64

// maxEventHistory bounds the per-job event history kept for replay.
const maxEventHistory = 256

// maxQueueJumps bounds how many times affinity routing may dispatch a
// later job ahead of the current queue head before the head is forced.
const maxQueueJumps = 4

// Config sizes a Scheduler. The zero value serves: 2 engines, a 64-job
// queue, 256 retained terminal jobs, default engine options.
type Config struct {
	// Engines is the engine-pool ceiling; engines spin up lazily as
	// concurrent demand appears (default 2).
	Engines int
	// QueueDepth bounds the number of queued (not yet running) jobs;
	// Submit returns ErrQueueFull beyond it (default 64).
	QueueDepth int
	// Retention is how many terminal jobs (results included) the store
	// keeps before evicting the oldest (default 256).
	Retention int
	// DatasetCache bounds how many generated datasets (and their cached
	// reference optima) stay resident; beyond it the least-recently-used
	// is dropped and regenerated on next use (default 8).
	DatasetCache int
	// EngineOptions configure each pool engine (workers, transport,
	// barrier default, straggler model, ...).
	EngineOptions []async.Option
	// NewEngine overrides engine construction (tests, custom transports);
	// default async.New(EngineOptions...).
	NewEngine func(slot int) (*async.Engine, error)
	// Store, when set, makes job state durable: every lifecycle transition
	// is appended to it before Submit acknowledges, checkpoints spill
	// through it, and New replays it to recover jobs from a previous
	// process. Nil (the default) keeps today's in-memory behavior.
	Store store.Store
	// CompactEvery triggers a log compaction after that many appends
	// (default 1024). Only meaningful with a Store.
	CompactEvery int
	// TenantQuota bounds how many queued (waiting, preempted included) jobs
	// one tenant may hold; Submit rejects beyond it with ErrQueueFull so a
	// single tenant cannot exhaust the shared queue. 0 disables per-tenant
	// admission control.
	TenantQuota int
	// SLOSlack is the deadline slack below which a queued job with an SLO
	// (Spec.SLOMillis) may preempt a running job with more slack, even at
	// equal priority (default 5s).
	SLOSlack time.Duration
	// ReplicaID enables multi-replica serving: the scheduler claims jobs
	// through the store's lease CAS before dispatching (the Store must
	// implement store.LeaseStore), renews held leases on a heartbeat,
	// fences every owned append with its lease epoch, mirrors the other
	// replicas' records by tailing the shared log, and adopts orphaned
	// jobs whose lease expired. Empty (the default) keeps single-owner
	// mode. Job IDs become "job-<replica>-%06d" so two replicas never
	// mint the same ID.
	ReplicaID string
	// LeaseTTL is the job-lease duration in replica mode (default 10s). A
	// replica that cannot renew within it loses the job to failover.
	LeaseTTL time.Duration
	// RenewEvery is the lease-renewal heartbeat period (default
	// LeaseTTL/3).
	RenewEvery time.Duration
	// AdoptScanEvery is the shared-log tail and orphan-scan period
	// (default LeaseTTL/2). It bounds failover detection latency.
	AdoptScanEvery time.Duration
}

func (c *Config) defaults() {
	if c.Engines <= 0 {
		c.Engines = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.Retention <= 0 {
		c.Retention = 256
	}
	if c.DatasetCache <= 0 {
		c.DatasetCache = 8
	}
	if c.NewEngine == nil {
		opts := c.EngineOptions
		c.NewEngine = func(int) (*async.Engine, error) { return async.New(opts...) }
	}
	if c.CompactEvery <= 0 {
		c.CompactEvery = 1024
	}
	if c.SLOSlack <= 0 {
		c.SLOSlack = 5 * time.Second
	}
	if c.ReplicaID != "" {
		if c.LeaseTTL <= 0 {
			c.LeaseTTL = 10 * time.Second
		}
		if c.RenewEvery <= 0 {
			c.RenewEvery = c.LeaseTTL / 3
		}
		if c.AdoptScanEvery <= 0 {
			c.AdoptScanEvery = c.LeaseTTL / 2
		}
	}
}

// Stats is a snapshot of the scheduler's serving counters.
type Stats struct {
	Submitted int64 `json:"submitted"`
	Rejected  int64 `json:"rejected"`
	Done      int64 `json:"done"`
	Failed    int64 `json:"failed"`
	Canceled  int64 `json:"canceled"`
	Preempted int64 `json:"preempted"`

	Queued      int `json:"queued"`
	Running     int `json:"running"`
	EnginesLive int `json:"engines_live"`
	EnginesMax  int `json:"engines_max"`
	QueueDepth  int `json:"queue_depth"`

	AvgQueueWaitMS float64 `json:"avg_queue_wait_ms"`
	MaxQueueWaitMS float64 `json:"max_queue_wait_ms"`

	// Durability counters (zero without a configured store).
	RecoveredJobs int     `json:"recovered_jobs,omitempty"`
	RecoveryMS    float64 `json:"recovery_ms,omitempty"`
	StoreErrors   int64   `json:"store_errors,omitempty"`
	// Degraded reports that the last store append failed: new submissions
	// are being rejected with ErrStoreUnavailable while running jobs keep
	// serving. Clears on the next successful append.
	Degraded bool `json:"degraded,omitempty"`
	// Replica-mode counters (zero in single-owner mode).
	Replica    string  `json:"replica,omitempty"`
	LeasesHeld int     `json:"leases_held,omitempty"`
	RemoteJobs int     `json:"remote_jobs,omitempty"`
	Fenced     int64   `json:"fenced,omitempty"`
	Adopted    int64   `json:"adopted,omitempty"`
	Retries    int64   `json:"retries,omitempty"`
	FailoverMS float64 `json:"failover_ms,omitempty"` // mean orphan-expiry → re-claim latency
	// Tenants breaks admission and occupancy down per tenant when any job
	// named one ("" stays aggregate-only).
	Tenants map[string]TenantStats `json:"tenants,omitempty"`
}

// TenantStats is one tenant's slice of the serving counters.
type TenantStats struct {
	Submitted int64 `json:"submitted"`
	Rejected  int64 `json:"rejected"`
	Done      int64 `json:"done"`
	Queued    int   `json:"queued"`
	Running   int   `json:"running"`
}

// slot is one engine of the pool. eng and dataKey are touched only by the
// run goroutine while busy, and only under the scheduler mutex while idle.
type slot struct {
	id       int
	eng      *async.Engine
	busy     bool
	dataKey  string // key of the dataset the engine holds ("" = none)
	lastUsed int64
}

// Scheduler owns the engine pool, the job queue, and the job store. Create
// one with New, release it with Close.
type Scheduler struct {
	cfg Config

	mu       sync.Mutex
	queue    []*job // priority desc, submission order within a priority
	slots    []*slot
	jobs     map[ID]*job
	terminal []ID // terminal jobs in completion order, for retention
	seq      int64
	useSeq   int64
	closed   bool
	draining bool
	wg       sync.WaitGroup

	submitted, rejected     int64
	doneN, failedN, killedN int64
	preemptedN              int64
	startedN                int64
	queueWaitTotal          time.Duration
	queueWaitMax            time.Duration

	// durability + multi-tenant accounting
	storeErrs   int64
	recoveredN  int
	recoveryDur time.Duration
	degraded    bool
	startedAt   time.Time
	tenantSub   map[string]int64
	tenantRej   map[string]int64
	tenantDone  map[string]int64

	// replica mode (nil/zero in single-owner mode): the store's lease
	// surface, the shared-log tail position, the loop stop signal, and the
	// fencing/failover counters.
	leaseStore    store.LeaseStore
	wm            store.Watermark
	replicaStop   chan struct{}
	fencedN       int64
	adoptedN      int64
	retriesN      int64
	failoverTotal time.Duration
	failoverN     int64

	dsMu    sync.Mutex
	dsCache map[string]*dsEntry
	dsOrder []string // LRU order, least-recent first

	// telemetry: the scheduler-private registry (asyncd_* families), the
	// live queue-wait histograms observed at dispatch, and the snapshot the
	// scrape-time function metrics read (refreshed by WritePrometheus).
	reg          *telemetry.Registry
	mQWaitPrio   telemetry.HistogramVec
	mQWaitTenant telemetry.HistogramVec
	mFailover    *telemetry.Histogram
	scrapeMu     sync.Mutex
	scrape       Stats
	scrapeUptime float64
	scrapeStore  *storeMetricsView
}

// New builds a scheduler; engines spin up lazily on demand. With a
// configured Store, New first replays its log: terminal jobs reload into
// the retention store, interrupted jobs re-enqueue (with their last durable
// checkpoint when one exists) and resume as engines come up.
func New(cfg Config) (*Scheduler, error) {
	cfg.defaults()
	s := &Scheduler{
		cfg:        cfg,
		jobs:       map[ID]*job{},
		dsCache:    map[string]*dsEntry{},
		startedAt:  time.Now(),
		tenantSub:  map[string]int64{},
		tenantRej:  map[string]int64{},
		tenantDone: map[string]int64{},
	}
	if cfg.ReplicaID != "" {
		ls, ok := cfg.Store.(store.LeaseStore)
		if !ok {
			return nil, fmt.Errorf("jobs: replica mode needs a lease-capable store (store.LeaseStore), got %T", cfg.Store)
		}
		s.leaseStore = ls
	}
	s.registerMetrics()
	if cfg.Store != nil {
		if err := s.recover(); err != nil {
			return nil, err
		}
	}
	if s.leaseStore != nil {
		s.startReplicaLoops()
	}
	return s, nil
}

// Submit validates and enqueues a job, returning its ID immediately. The
// queue is bounded: ErrQueueFull signals backpressure. A spec naming
// ResumeFrom is seeded with the source job's latest checkpoint (algorithm,
// dataset and update budget default to the source's when unset).
func (s *Scheduler) Submit(spec Spec) (ID, error) {
	var cp *opt.Checkpoint
	var src ID
	if spec.ResumeFrom != "" {
		s.mu.Lock()
		from, ok := s.jobs[spec.ResumeFrom]
		if !ok {
			s.mu.Unlock()
			return "", fmt.Errorf("%w: resume_from %s", ErrUnknownJob, spec.ResumeFrom)
		}
		if from.cp == nil {
			s.mu.Unlock()
			return "", fmt.Errorf("%w: resume_from %s", ErrNoCheckpoint, spec.ResumeFrom)
		}
		cp, src = from.cp, from.id
		// unset fields inherit the source job's spec wholesale — a resumed
		// run must continue the same objective and hyperparameters, not
		// reset them to global defaults
		spec = spec.withResumeBase(from.spec)
		if spec.Algorithm == "" {
			spec.Algorithm = cp.Algorithm
		}
		s.mu.Unlock()
	}
	if err := spec.normalize(); err != nil {
		return "", err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return "", ErrClosed
	}
	if s.cfg.TenantQuota > 0 {
		held := 0
		for _, q := range s.queue {
			if q.spec.Tenant == spec.Tenant {
				held++
			}
		}
		if held >= s.cfg.TenantQuota {
			s.rejected++
			s.tenantRej[spec.Tenant]++
			return "", fmt.Errorf("%w: tenant %q at quota %d", ErrQueueFull, spec.Tenant, s.cfg.TenantQuota)
		}
	}
	if len(s.queue) >= s.cfg.QueueDepth {
		s.rejected++
		s.tenantRej[spec.Tenant]++
		return "", fmt.Errorf("%w (depth %d)", ErrQueueFull, s.cfg.QueueDepth)
	}
	now := time.Now()
	id := ID(fmt.Sprintf("job-%06d", s.seq+1))
	if s.cfg.ReplicaID != "" {
		// replica-qualified IDs: two replicas minting concurrently must
		// never collide
		id = ID(fmt.Sprintf("job-%s-%06d", s.cfg.ReplicaID, s.seq+1))
	}
	if s.cfg.Store != nil {
		// append-before-ack: the submitted record must be durable before the
		// caller learns the ID; a failed append fails the Submit
		specJSON, err := json.Marshal(spec)
		if err != nil {
			return "", fmt.Errorf("jobs: encode spec: %w", err)
		}
		rec := &store.Record{
			Type: store.TypeSubmitted, Job: string(id), Time: now.UnixNano(),
			JobSeq: s.seq + 1, Spec: specJSON,
		}
		if err := s.cfg.Store.Append(rec); err != nil {
			s.storeErrs++
			s.degraded = true
			return "", fmt.Errorf("%w: durable submit: %v", ErrStoreUnavailable, err)
		}
		s.degraded = false
	}
	s.seq++
	ctx, cancel := context.WithCancel(context.Background())
	j := &job{
		id:          id,
		spec:        spec,
		dataKey:     spec.Dataset.Key(),
		seq:         s.seq,
		state:       StateQueued,
		engine:      -1,
		submitted:   now,
		queued:      now,
		ctx:         ctx,
		cancel:      cancel,
		done:        make(chan struct{}),
		cp:          cp,
		resumedFrom: src,
	}
	if spec.SLOMillis > 0 {
		j.deadline = now.Add(time.Duration(spec.SLOMillis) * time.Millisecond)
	}
	j.trace = telemetry.NewTrace(string(id), 0)
	j.trace.Event("queued", "algorithm", spec.Algorithm, "tenant", spec.Tenant,
		"priority", spec.Priority, "resumed_from", string(src))
	s.jobs[j.id] = j
	s.enqueueLocked(j)
	s.submitted++
	s.tenantSub[spec.Tenant]++
	s.emitLocked(j, EventQueued, "")
	s.dispatchLocked()
	return j.id, nil
}

// enqueueLocked inserts after the last job with priority >= ours: priority
// order, FIFO within a level.
func (s *Scheduler) enqueueLocked(j *job) {
	at := sort.Search(len(s.queue), func(i int) bool {
		return s.queue[i].spec.Priority < j.spec.Priority
	})
	s.queue = append(s.queue, nil)
	copy(s.queue[at+1:], s.queue[at:])
	s.queue[at] = j
}

// Preempt asks a running job to stop at its next update boundary: the
// solver captures a checkpoint, the engine returns to the pool, and the job
// re-enters the queue in StatePreempted, resuming from the checkpoint when
// an engine frees up. Preemption is cooperative — every registry solver
// polls the signal through the driver runtime, but a custom solver that
// ignores Params.Preempt simply runs to completion. Preempting a job that
// is not running fails with ErrNotRunning.
func (s *Scheduler) Preempt(id ID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return ErrUnknownJob
	}
	if j.remote {
		return fmt.Errorf("%w: %s runs on %s", ErrRemoteJob, id, j.remoteOwner)
	}
	if j.state != StateRunning {
		return fmt.Errorf("%w: %s is %s", ErrNotRunning, id, j.state)
	}
	j.preempting = true
	j.preemptAsked = time.Now()
	j.preempt.Trigger()
	return nil
}

// Checkpoint returns the job's latest captured checkpoint (periodic
// cadence or preemption capture).
func (s *Scheduler) Checkpoint(id ID) (*opt.Checkpoint, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, ErrUnknownJob
	}
	if j.cp == nil {
		return nil, ErrNoCheckpoint
	}
	return j.cp, nil
}

// Trace returns the job's run-scoped trace (JSONL event ring). The trace is
// append-only and safe to read while the job runs.
func (s *Scheduler) Trace(id ID) (*telemetry.Trace, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, ErrUnknownJob
	}
	return j.trace, nil
}

// Status returns a snapshot of the job.
func (s *Scheduler) Status(id ID) (Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return Job{}, ErrUnknownJob
	}
	return j.snapshot(), nil
}

// Result returns a terminal job's full solver result (nil for jobs that
// did not complete successfully).
func (s *Scheduler) Result(id ID) (*async.Result, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, ErrUnknownJob
	}
	return j.result, nil
}

// List snapshots every job the store holds, in submission order.
func (s *Scheduler) List() []Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Job, 0, len(s.jobs))
	ordered := make([]*job, 0, len(s.jobs))
	for _, j := range s.jobs {
		ordered = append(ordered, j)
	}
	sort.Slice(ordered, func(a, b int) bool { return jobLess(ordered[a], ordered[b]) })
	for _, j := range ordered {
		out = append(out, j.snapshot())
	}
	return out
}

// jobLess is the listing order: submission ordinal, then ID. Imported
// remote jobs keep their home replica's JobSeq, so ordinals alone are not
// unique across replicas — the ID tie-break keeps pagination total and
// stable.
func jobLess(a, b *job) bool {
	if a.seq != b.seq {
		return a.seq < b.seq
	}
	return a.id < b.id
}

// ListQuery filters and paginates ListPage.
type ListQuery struct {
	// State keeps only jobs in that lifecycle state ("" = all).
	State State
	// Tenant keeps only jobs of that tenant ("" = all).
	Tenant string
	// After is an exclusive cursor: only jobs submitted after the named job
	// are returned. A cursor naming an evicted job still works — the
	// submission ordinal is parsed from the ID.
	After ID
	// Limit bounds the page size (0 = unlimited).
	Limit int
}

// ListPage snapshots matching jobs in submission order, starting after the
// cursor, at most Limit. next is the cursor of the following page, "" when
// the listing is exhausted.
func (s *Scheduler) ListPage(q ListQuery) (page []Job, next ID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ordered := make([]*job, 0, len(s.jobs))
	for _, j := range s.jobs {
		ordered = append(ordered, j)
	}
	sort.Slice(ordered, func(a, b int) bool { return jobLess(ordered[a], ordered[b]) })
	// the cursor is the full (seq, id) pair: seqs tie across replicas (an
	// imported job keeps its home replica's ordinal), and a bare
	// strictly-greater seq comparison would skip or duplicate at ties
	afterSeq, afterID := int64(-1), ID("")
	if q.After != "" {
		afterSeq, afterID = cursorSeq(s.jobs, q.After), q.After
	}
	page = []Job{}
	for _, j := range ordered {
		if j.seq < afterSeq || (j.seq == afterSeq && j.id <= afterID) {
			continue
		}
		if q.State != "" && j.state != q.State {
			continue
		}
		if q.Tenant != "" && j.spec.Tenant != q.Tenant {
			continue
		}
		if q.Limit > 0 && len(page) == q.Limit {
			next = page[len(page)-1].ID
			return page, next
		}
		page = append(page, j.snapshot())
	}
	return page, ""
}

// cursorSeq resolves a cursor ID to its submission ordinal: the held job's
// seq when retained, else the ordinal parsed from the ID shape (so
// pagination keeps working across a cursor's retention eviction). Both
// "job-%06d" and the replica-qualified "job-<replica>-%06d" end with the
// ordinal after the last dash.
func cursorSeq(jobs map[ID]*job, id ID) int64 {
	if j, ok := jobs[id]; ok {
		return j.seq
	}
	if i := strings.LastIndexByte(string(id), '-'); i >= 0 {
		if n, err := strconv.ParseInt(string(id)[i+1:], 10, 64); err == nil {
			return n
		}
	}
	return -1
}

// Wait blocks until the job reaches a terminal state (or ctx ends) and
// returns the final snapshot.
func (s *Scheduler) Wait(ctx context.Context, id ID) (Job, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return Job{}, ErrUnknownJob
	}
	select {
	case <-ctx.Done():
		return Job{}, ctx.Err()
	case <-j.done:
	}
	// snapshot the held record directly: a retention eviction between the
	// done signal and a by-ID lookup must not turn a completed job into
	// ErrUnknownJob for its own waiter
	s.mu.Lock()
	defer s.mu.Unlock()
	return j.snapshot(), nil
}

// Cancel aborts a job: a queued job is removed before it ever starts; a
// running job's context is canceled, aborting barrier waits and collects
// mid-run. Canceling a terminal job is a no-op.
func (s *Scheduler) Cancel(id ID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return ErrUnknownJob
	}
	if j.remote {
		return fmt.Errorf("%w: %s runs on %s", ErrRemoteJob, id, j.remoteOwner)
	}
	switch j.state {
	case StateQueued, StatePreempted:
		s.removeFromQueueLocked(j)
		j.cancel()
		s.finalizeLocked(j, nil, context.Canceled)
	case StateRunning:
		j.cancelRequested = true
		j.cancel()
	}
	return nil
}

// removeFromQueueLocked takes the job out of the waiting queue if present.
func (s *Scheduler) removeFromQueueLocked(j *job) {
	for i, q := range s.queue {
		if q == j {
			s.queue = append(s.queue[:i], s.queue[i+1:]...)
			return
		}
	}
}

// Subscribe returns a channel of the job's events, starting with a replay
// of its history; the channel closes once the job is terminal (and the
// backlog drained). The returned stop function releases the subscription
// early. Slow subscribers lose intermediate progress events rather than
// blocking the scheduler.
func (s *Scheduler) Subscribe(id ID) (<-chan Event, func(), error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, nil, ErrUnknownJob
	}
	ch := make(chan Event, len(j.events)+eventBuffer)
	for _, ev := range j.events {
		ch <- ev
	}
	if j.state.Terminal() {
		close(ch)
		return ch, func() {}, nil
	}
	j.subs = append(j.subs, ch)
	stop := func() {
		s.mu.Lock()
		defer s.mu.Unlock()
		for i, c := range j.subs {
			if c == ch {
				j.subs = append(j.subs[:i], j.subs[i+1:]...)
				close(ch)
				return
			}
		}
	}
	return ch, stop, nil
}

// Stats snapshots the serving counters.
func (s *Scheduler) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{
		Submitted:  s.submitted,
		Rejected:   s.rejected,
		Done:       s.doneN,
		Failed:     s.failedN,
		Canceled:   s.killedN,
		Preempted:  s.preemptedN,
		Queued:     len(s.queue),
		EnginesMax: s.cfg.Engines,
		QueueDepth: s.cfg.QueueDepth,
	}
	for _, sl := range s.slots {
		if sl.eng != nil || sl.busy {
			st.EnginesLive++
		}
		if sl.busy {
			st.Running++
		}
	}
	if s.startedN > 0 {
		st.AvgQueueWaitMS = float64(s.queueWaitTotal.Microseconds()) / 1000.0 / float64(s.startedN)
		st.MaxQueueWaitMS = float64(s.queueWaitMax.Microseconds()) / 1000.0
	}
	st.RecoveredJobs = s.recoveredN
	st.RecoveryMS = float64(s.recoveryDur.Microseconds()) / 1000.0
	st.StoreErrors = s.storeErrs
	st.Degraded = s.degraded
	st.Retries = s.retriesN
	st.Tenants = s.tenantStatsLocked()
	if s.cfg.ReplicaID != "" {
		st.Replica = s.cfg.ReplicaID
		st.Fenced = s.fencedN
		st.Adopted = s.adoptedN
		for _, j := range s.jobs {
			if j.lease.Epoch != 0 && !j.state.Terminal() {
				st.LeasesHeld++
			}
			if j.remote && !j.state.Terminal() {
				st.RemoteJobs++
			}
		}
		if s.failoverN > 0 {
			st.FailoverMS = float64(s.failoverTotal.Microseconds()) / 1000.0 / float64(s.failoverN)
		}
	}
	return st
}

// tenantStatsLocked assembles the per-tenant breakdown; the unnamed tenant
// ("") stays aggregate-only. Nil when no job ever named a tenant.
func (s *Scheduler) tenantStatsLocked() map[string]TenantStats {
	names := map[string]bool{}
	for t := range s.tenantSub {
		names[t] = true
	}
	for t := range s.tenantRej {
		names[t] = true
	}
	for _, j := range s.jobs {
		names[j.spec.Tenant] = true
	}
	delete(names, "")
	if len(names) == 0 {
		return nil
	}
	out := make(map[string]TenantStats, len(names))
	for t := range names {
		out[t] = TenantStats{Submitted: s.tenantSub[t], Rejected: s.tenantRej[t], Done: s.tenantDone[t]}
	}
	for _, q := range s.queue {
		if t := q.spec.Tenant; t != "" {
			ts := out[t]
			ts.Queued++
			out[t] = ts
		}
	}
	for _, j := range s.jobs {
		if t := j.spec.Tenant; t != "" && j.state == StateRunning {
			ts := out[t]
			ts.Running++
			out[t] = ts
		}
	}
	return out
}

// Drain quiesces the scheduler for a graceful shutdown: dispatch stops,
// every running job is asked to preempt at its next update boundary, and
// Drain waits until no run remains in flight — each unwound run having
// durably spilled its checkpoint — before fsyncing the store. Queued and
// preempted jobs stay queued: with a store they re-enqueue on the next
// boot, and a Close following a completed Drain leaves them unfinalized
// instead of canceling them. Returns ctx.Err() if the context ends first
// (running jobs may then still be unwinding; Close cancels them).
func (s *Scheduler) Drain(ctx context.Context) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	s.draining = true
	for _, j := range s.jobs {
		if j.state == StateRunning && !j.preempting {
			j.preempting = true
			j.preemptAsked = time.Now()
			j.preempt.Trigger()
		}
	}
	s.mu.Unlock()
	tick := time.NewTicker(5 * time.Millisecond)
	defer tick.Stop()
	for {
		s.mu.Lock()
		busy := 0
		for _, sl := range s.slots {
			if sl.busy {
				busy++
			}
		}
		s.mu.Unlock()
		if busy == 0 {
			break
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-tick.C:
		}
	}
	if s.cfg.Store != nil {
		if err := s.cfg.Store.Sync(); err != nil {
			return fmt.Errorf("jobs: drain sync: %w", err)
		}
	}
	return nil
}

// Close cancels queued and running jobs, waits for runs to unwind, and
// closes every engine. It is idempotent.
func (s *Scheduler) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return nil
	}
	s.closed = true
	if s.replicaStop != nil {
		close(s.replicaStop)
		s.replicaStop = nil
	}
	if s.draining {
		// a completed Drain leaves queued/preempted jobs for the next boot:
		// their submitted records (and spilled checkpoints) are durable, so
		// finalizing them here would cancel work the store can still resume
		s.queue = nil
	} else {
		queued := s.queue
		s.queue = nil
		for _, j := range queued {
			j.cancel()
			s.finalizeLocked(j, nil, context.Canceled)
		}
	}
	for _, j := range s.jobs {
		if j.state == StateRunning {
			j.cancelRequested = true
			j.cancel()
		}
	}
	s.mu.Unlock()
	s.wg.Wait()
	s.mu.Lock()
	slots := s.slots
	s.slots = nil
	s.mu.Unlock()
	var firstErr error
	for _, sl := range slots {
		if sl.eng != nil {
			if err := sl.eng.Close(); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	return firstErr
}

// dispatchLocked pairs queued jobs with engines until no pairing remains.
// Affinity first: the earliest queued job whose dataset an idle engine
// already holds wins that engine, ahead of the queue head — bounded
// queue-jumping that saves a Release+Distribute. Otherwise the head job
// takes an empty engine, a lazily spun-up one, or the LRU idle engine.
// When the head would otherwise wait behind strictly-lower-priority work,
// the lowest-priority running job is preempted (checkpointed aside) to
// free its engine.
func (s *Scheduler) dispatchLocked() {
	for !s.closed && !s.draining && len(s.queue) > 0 {
		sl, j := s.pickLocked()
		if j == nil {
			s.maybePreemptLocked()
			return
		}
		if s.leaseStore != nil && !s.claimLocked(j) {
			if j.remote {
				continue // lost the claim CAS; try the next queued job
			}
			return // store trouble: stop the round, the job stays queued
		}
		s.removeFromQueueLocked(j)
		sl.busy = true
		resumed := j.state == StatePreempted
		j.state = StateRunning
		j.engine = sl.id
		j.preempt = opt.NewPreemptSignal() // fresh per dispatch; Preempt targets it
		j.started = time.Now()
		s.logAppendLocked(s.stampOwner(j, &store.Record{
			Type: store.TypeDispatched, Job: string(j.id), Updates: j.updates,
		}))
		wait := j.started.Sub(j.queued)
		s.queueWaitTotal += wait
		if wait > s.queueWaitMax {
			s.queueWaitMax = wait
		}
		s.startedN++
		s.mQWaitPrio.With(strconv.Itoa(j.spec.Priority)).ObserveDuration(wait)
		if t := j.spec.Tenant; t != "" {
			s.mQWaitTenant.With(t).ObserveDuration(wait)
		}
		j.trace.Event("dispatched", "engine", sl.id,
			"wait_ms", float64(wait.Microseconds())/1000.0, "resumed", resumed)
		if resumed {
			s.emitLocked(j, EventResumed, "")
		} else {
			s.emitLocked(j, EventStarted, "")
		}
		s.wg.Add(1)
		go s.run(sl, j)
	}
}

// preemptGrace bounds how long an unanswered preemption blocks further
// preemption decisions: preemption is cooperative (the driver runtime
// polls Params.Preempt at update boundaries), so a custom solver that
// ignores the signal would otherwise pin the single-preemption-in-flight
// guard for its whole run. Past the grace the job is treated as
// non-cooperating: it no longer blocks, and is skipped as a victim.
const preemptGrace = 10 * time.Second

// maybePreemptLocked frees an engine for the queue head by preempting the
// lowest-priority running job whose priority is strictly below the head's.
// When no strict-priority victim exists but the head carries an SLO
// (Spec.SLOMillis) whose remaining slack has dropped below Config.SLOSlack,
// a running job with more slack (no deadline counts as infinite) and no
// higher priority is preempted instead — deadline-pressed work overtakes
// deadline-relaxed peers without violating the priority contract. At most
// one responsive preemption is in flight at a time: the freed engine
// re-enters dispatch when the preempted run unwinds, which re-evaluates the
// queue. SLO slack is evaluated at scheduling points only (submit, run
// unwind), not on a timer.
func (s *Scheduler) maybePreemptLocked() {
	if len(s.queue) == 0 || s.draining {
		return
	}
	head := s.queue[0]
	var candidates []*job
	for _, j := range s.jobs {
		if j.state != StateRunning {
			continue
		}
		if j.preempting {
			if time.Since(j.preemptAsked) < preemptGrace {
				return // a preemption is already unwinding
			}
			continue // non-cooperating solver: don't re-pick, don't block
		}
		candidates = append(candidates, j)
	}
	var victim *job
	for _, j := range candidates {
		if j.spec.Priority >= head.spec.Priority {
			continue
		}
		if victim == nil || j.spec.Priority < victim.spec.Priority ||
			(j.spec.Priority == victim.spec.Priority && j.seq > victim.seq) {
			victim = j
		}
	}
	if victim == nil && !head.deadline.IsZero() {
		if slack := time.Until(head.deadline); slack < s.cfg.SLOSlack {
			victim = s.sloVictimLocked(head, slack, candidates)
		}
	}
	if victim == nil {
		return
	}
	victim.preempting = true
	victim.preemptAsked = time.Now()
	victim.preempt.Trigger()
}

// sloVictimLocked picks the running job with the most deadline slack that
// the pressed head may displace: priority no higher than the head's and
// slack strictly greater than the head's (ties yield the youngest, so the
// job with the least sunk work restarts).
func (s *Scheduler) sloVictimLocked(head *job, headSlack time.Duration, candidates []*job) *job {
	const infinite = time.Duration(1<<63 - 1)
	var victim *job
	var victimSlack time.Duration
	for _, j := range candidates {
		if j.spec.Priority > head.spec.Priority {
			continue
		}
		slack := infinite
		if !j.deadline.IsZero() {
			slack = time.Until(j.deadline)
		}
		if slack <= headSlack {
			continue // no better off than the head; displacing it gains nothing
		}
		if victim == nil || slack > victimSlack ||
			(slack == victimSlack && j.seq > victim.seq) {
			victim, victimSlack = j, slack
		}
	}
	return victim
}

func (s *Scheduler) pickLocked() (*slot, *job) {
	var idle []*slot
	for _, sl := range s.slots {
		if !sl.busy {
			idle = append(idle, sl)
		}
	}
	canGrow := len(s.slots) < s.cfg.Engines
	if len(idle) == 0 && !canGrow {
		return nil, nil
	}
	head := s.queue[0]
	// pass 1: dataset affinity — but never across a priority boundary
	// (Priority ordering is a contract, affinity only reorders FIFO ties)
	// and never more than maxQueueJumps times past the same head job, so
	// a stream of warm-dataset arrivals cannot starve it. The head's own
	// affinity match is always honoured: dispatching it starves nothing.
	for _, sl := range idle {
		if sl.dataKey != "" && sl.dataKey == head.dataKey {
			return sl, head
		}
	}
	if head.skipped < maxQueueJumps {
		for _, j := range s.queue[1:] {
			if j.spec.Priority < head.spec.Priority {
				break
			}
			for _, sl := range idle {
				if sl.dataKey != "" && sl.dataKey == j.dataKey {
					head.skipped++
					return sl, j
				}
			}
		}
	}
	// pass 2: head job onto an empty engine, a new engine, or the LRU
	j := head
	for _, sl := range idle {
		if sl.dataKey == "" {
			return sl, j
		}
	}
	if canGrow {
		sl := &slot{id: len(s.slots)}
		s.slots = append(s.slots, sl)
		return sl, j
	}
	best := idle[0]
	for _, sl := range idle[1:] {
		if sl.lastUsed < best.lastUsed {
			best = sl
		}
	}
	return best, j
}

// run executes one job on its assigned slot and re-enters dispatch. A
// preempted run re-queues with its checkpoint instead of finalizing.
func (s *Scheduler) run(sl *slot, j *job) {
	defer s.wg.Done()
	res, err := s.execute(sl, j)
	// capture the run's coordinator statistics while this goroutine still
	// owns the slot (the engine is quiescent between Solve and the release)
	var rs *async.RunStats
	if sl.eng != nil {
		rs = sl.eng.RunStats()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if rs != nil {
		j.runStats = rs
	}
	sl.busy = false
	s.useSeq++
	sl.lastUsed = s.useSeq
	// replica mode: before any state transition, confirm we still own the
	// job. A fenced run's outcome — success included — must be abandoned,
	// not finalized: the adopter owns the job's history now. leaseLost is
	// checked even with the lease cleared — finalizeRemoteLocked drops the
	// lease while fencing us, and that unwind must still abandon, not fall
	// through to the preempt/retry branches on an already-terminal job.
	if s.leaseStore != nil && (j.leaseLost || j.lease.Epoch != 0) {
		lost := j.leaseLost
		if !lost {
			lease := j.lease
			s.mu.Unlock()
			_, rerr := s.leaseStore.Renew(string(j.id), lease.Owner, lease.Epoch, s.cfg.LeaseTTL)
			s.mu.Lock()
			lost = j.leaseLost || errors.Is(rerr, store.ErrFenced)
		}
		if lost {
			s.abandonLocked(j)
			s.dispatchLocked()
			return
		}
	}
	var pe *opt.PreemptedError
	if errors.As(err, &pe) && !j.cancelRequested && !s.closed {
		j.preempting = false
		j.preemptions++
		s.preemptedN++
		j.trace.Event("preempted", "updates", pe.Checkpoint.Updates, "preemptions", j.preemptions)
		j.cp = pe.Checkpoint
		j.state = StatePreempted
		j.engine = -1
		j.queued = time.Now() // queue-wait accounting restarts here
		s.spillLocked(j, pe.Checkpoint, store.TypePreempted)
		// the lease releases with the spill durable: any replica (this one
		// included) may re-claim the preempted job through the same CAS
		s.releaseLeaseLocked(j)
		s.enqueueLocked(j)
		ev := s.newEventLocked(j, EventPreempted, "")
		ev.Updates = pe.Checkpoint.Updates
		s.deliverLocked(j, ev)
		j.updates = pe.Checkpoint.Updates
		s.dispatchLocked()
		return
	}
	if errors.As(err, &pe) {
		// preempted but also canceled/closing: fold into cancellation
		err = context.Canceled
	}
	if err != nil && !j.cancelRequested && !errors.Is(err, context.Canceled) &&
		!s.closed && !s.draining && j.retries < j.spec.maxRetries() {
		// transient runtime failure with retry budget left: re-queue and
		// resume from the last durable checkpoint instead of failing
		j.retries++
		s.retriesN++
		j.trace.Event("retrying", "attempt", j.retries, "error", err.Error())
		j.engine = -1
		j.state = StateQueued
		if j.cp != nil {
			j.state = StatePreempted
		}
		j.queued = time.Now()
		s.releaseLeaseLocked(j)
		s.enqueueLocked(j)
		s.emitLocked(j, EventQueued, fmt.Sprintf("retrying after: %v", err))
		s.dispatchLocked()
		return
	}
	s.finalizeLocked(j, res, err)
	s.dispatchLocked()
}

// execute runs outside the scheduler lock; it owns the slot while busy.
func (s *Scheduler) execute(sl *slot, j *job) (*async.Result, error) {
	if sl.eng == nil {
		eng, err := s.cfg.NewEngine(sl.id)
		if err != nil {
			return nil, fmt.Errorf("jobs: engine %d spin-up: %w", sl.id, err)
		}
		// Stats reads eng of busy slots too, so this write needs the lock
		s.mu.Lock()
		sl.eng = eng
		s.mu.Unlock()
	}
	if err := j.ctx.Err(); err != nil {
		return nil, err
	}
	ds, err := s.datasetFor(j.spec.Dataset)
	if err != nil {
		return nil, err
	}
	if sl.eng.Dataset() != ds {
		if err := sl.eng.Release(); err != nil {
			return nil, fmt.Errorf("jobs: engine %d release: %w", sl.id, err)
		}
		sl.dataKey = ""
		if _, err := sl.eng.Distribute(ds); err != nil {
			return nil, fmt.Errorf("jobs: engine %d distribute %s: %w", sl.id, j.dataKey, err)
		}
		sl.dataKey = j.dataKey
	}
	opts, err := j.spec.solveOptions(sl.eng.Workers())
	if err != nil {
		return nil, err
	}
	if j.spec.AutoFStar {
		fstar, err := s.fstarFor(j.spec.Dataset, j.spec.objective())
		if err != nil {
			return nil, err
		}
		opts.FStar = fstar
	}
	loss := opts.Params.Loss
	fstar := opts.FStar
	opts.Params.OnProgress = func(p opt.Progress) {
		s.progress(j, p, ds, loss, fstar)
	}
	// preemption + checkpoint plumbing: the dispatch-time signal (created
	// under the scheduler lock, so Preempt always has a target), the latest
	// capture retained on the job, and — after a preemption or a
	// resume_from submission — the driver state imported from the held
	// checkpoint
	s.mu.Lock()
	sig := j.preempt
	resume := j.cp
	s.mu.Unlock()
	opts.Params.Preempt = sig
	// run-scoped trace: the driver runtime adds its own lifecycle events
	// (run_start, checkpoint, ...) to the job's stream
	opts.Params.Trace = j.trace
	// always wired: it only fires when a cadence is active, which may come
	// from the spec or from an engine-level WithCheckpointEvery default
	opts.Params.OnCheckpoint = func(cp *opt.Checkpoint) {
		s.mu.Lock()
		if j.state == StateRunning {
			// durable first (spill + checkpointed record), then visible:
			// Checkpoint/resume_from never serve state the log doesn't cover
			s.spillLocked(j, cp, store.TypeCheckpointed)
			j.cp = cp
		}
		s.mu.Unlock()
	}
	if resume != nil {
		opts.Params.Resume = resume
	}
	return sl.eng.Solve(j.ctx, j.spec.Algorithm, ds, opts)
}

// maxProgressEvalRows caps the dataset size for which progress events
// carry a live suboptimality: the evaluation runs synchronously on the
// solver driver goroutine, so on large datasets it would stall the solve
// loop at every snapshot. Beyond the cap, progress events report updates
// and elapsed time only (the final error still comes from the trace).
const maxProgressEvalRows = 50_000

// progress streams an in-run snapshot to the job's subscribers. The
// current suboptimality is evaluated driver-side against the full dataset,
// gated by maxProgressEvalRows.
func (s *Scheduler) progress(j *job, p opt.Progress, ds *dataset.Dataset, loss opt.Loss, fstar float64) {
	if loss == nil {
		loss = opt.LeastSquares{}
	}
	var errNow *float64
	if ds.NumRows() <= maxProgressEvalRows {
		errNow = finitePtr(opt.Objective(ds, loss, p.W) - fstar)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if j.state != StateRunning {
		return
	}
	j.updates = p.Updates
	if j.engine >= 0 && j.engine < len(s.slots) {
		if eng := s.slots[j.engine].eng; eng != nil {
			j.runStats = eng.RunStats()
		}
	}
	ev := s.newEventLocked(j, EventProgress, "")
	ev.Updates = p.Updates
	ev.Error = errNow
	ev.ElapsedMS = float64(p.Elapsed.Microseconds()) / 1000.0
	s.deliverLocked(j, ev)
}

// finalizeLocked moves a job to its terminal state, publishes the terminal
// event, closes subscriptions, and applies the retention limit.
func (s *Scheduler) finalizeLocked(j *job, res *async.Result, err error) {
	if j.state.Terminal() {
		return
	}
	j.finished = time.Now()
	var typ EventType
	switch {
	case err == nil:
		j.state = StateDone
		typ = EventDone
		j.result = res
		if res != nil && res.Trace != nil {
			j.finalErr = finitePtr(res.Trace.FinalError())
			w := res.Trace.Waits()
			j.wait = &w
			if n := len(res.Trace.Points); n > 0 {
				j.updates = res.Trace.Points[n-1].Updates
			}
		}
		s.doneN++
	case j.cancelRequested || errors.Is(err, context.Canceled):
		j.state = StateCanceled
		typ = EventCanceled
		j.err = err.Error()
		s.killedN++
	default:
		j.state = StateFailed
		typ = EventFailed
		j.err = err.Error()
		s.failedN++
	}
	switch j.state {
	case StateDone:
		s.tenantDone[j.spec.Tenant]++
		rec := &store.Record{Type: store.TypeDone, Job: string(j.id), Updates: j.updates}
		if j.finalErr != nil {
			rec.FinalError, rec.HasFinal = *j.finalErr, true
		}
		s.logAppendLocked(s.stampOwner(j, rec))
	case StateFailed:
		s.logAppendLocked(s.stampOwner(j, &store.Record{Type: store.TypeFailed, Job: string(j.id), Detail: j.err}))
	case StateCanceled:
		s.logAppendLocked(s.stampOwner(j, &store.Record{Type: store.TypeCanceled, Job: string(j.id), Detail: j.err}))
	}
	j.lease = store.Lease{} // the terminal record cleared it store-side
	if s.cfg.Store != nil {
		if err := s.cfg.Store.DropJob(string(j.id)); err != nil {
			s.storeErrs++
		}
	}
	j.trace.Event(string(typ), "updates", j.updates, "message", j.err)
	ev := s.newEventLocked(j, typ, j.err)
	ev.Updates = j.updates
	ev.Error = j.finalErr
	ev.Wait = j.wait
	s.deliverLocked(j, ev)
	for _, ch := range j.subs {
		close(ch)
	}
	j.subs = nil
	close(j.done)
	s.terminal = append(s.terminal, j.id)
	for len(s.terminal) > s.cfg.Retention {
		delete(s.jobs, s.terminal[0])
		s.terminal = s.terminal[1:]
	}
}

func (s *Scheduler) newEventLocked(j *job, typ EventType, msg string) Event {
	j.eventSeq++
	return Event{Job: j.id, Seq: j.eventSeq, Type: typ, State: j.state, Message: msg}
}

func (s *Scheduler) emitLocked(j *job, typ EventType, msg string) {
	s.deliverLocked(j, s.newEventLocked(j, typ, msg))
}

func (s *Scheduler) deliverLocked(j *job, ev Event) {
	j.events = append(j.events, ev)
	if len(j.events) > maxEventHistory {
		j.events = j.events[1:]
	}
	for _, ch := range j.subs {
		select {
		case ch <- ev:
		default: // lagging subscriber: drop rather than block the driver
		}
	}
}

// dsEntry caches one generated dataset and its lazily computed reference
// optimum. Generation runs under the entry's own once, so two jobs needing
// different datasets never serialize on the cache lock — only same-key
// requests wait for each other.
type dsEntry struct {
	genOnce sync.Once
	d       *dataset.Dataset
	genErr  error

	fMu    sync.Mutex
	fstars map[string]refOpt // keyed by the objective's canonical Key
}

// refOpt memoizes one objective's reference optimum on a dataset.
type refOpt struct {
	fstar float64
	err   error
}

func (en *dsEntry) dataset(spec DatasetSpec) (*dataset.Dataset, error) {
	en.genOnce.Do(func() {
		cfg, err := spec.config()
		if err != nil {
			en.genErr = err
			return
		}
		en.d, en.genErr = dataset.Generate(cfg)
	})
	return en.d, en.genErr
}

func (en *dsEntry) refOptimum(spec DatasetSpec, obj async.Objective) (float64, error) {
	d, err := en.dataset(spec)
	if err != nil {
		return 0, err
	}
	loss, err := obj.Resolve()
	if err != nil {
		return 0, err
	}
	key := obj.Key()
	en.fMu.Lock()
	defer en.fMu.Unlock()
	if en.fstars == nil {
		en.fstars = map[string]refOpt{}
	}
	r, ok := en.fstars[key]
	if !ok {
		// ReferenceOptimumFor dispatches: plain least squares solves the
		// normal equations exactly; composite/logistic objectives run the
		// accelerated prox-gradient reference solve
		_, r.fstar, r.err = opt.ReferenceOptimumFor(d, loss)
		en.fstars[key] = r
	}
	return r.fstar, r.err
}

// entryFor returns the cache entry for a spec's key, creating it and
// applying the LRU bound under the cache lock (generation itself happens
// outside the lock, in the entry's once). Evicting an in-use dataset is
// safe: running jobs hold their own pointer, and a regenerated dataset
// merely forces one redistribution on its next use (Distribute keys on
// pointer identity, which is also what affinity routing relies on).
func (s *Scheduler) entryFor(spec DatasetSpec) *dsEntry {
	key := spec.Key()
	s.dsMu.Lock()
	defer s.dsMu.Unlock()
	en, ok := s.dsCache[key]
	if !ok {
		en = &dsEntry{}
		s.dsCache[key] = en
		s.dsOrder = append(s.dsOrder, key)
		for len(s.dsOrder) > s.cfg.DatasetCache {
			delete(s.dsCache, s.dsOrder[0])
			s.dsOrder = s.dsOrder[1:]
		}
		return en
	}
	for i, k := range s.dsOrder {
		if k == key {
			s.dsOrder = append(append(s.dsOrder[:i], s.dsOrder[i+1:]...), key)
			break
		}
	}
	return en
}

// datasetFor returns the shared in-memory dataset for a spec, generating
// it on first use.
func (s *Scheduler) datasetFor(spec DatasetSpec) (*dataset.Dataset, error) {
	return s.entryFor(spec).dataset(spec)
}

// fstarFor computes (once per cached dataset and objective) the reference
// optimum used when a spec asks for AutoFStar.
func (s *Scheduler) fstarFor(spec DatasetSpec, obj async.Objective) (float64, error) {
	return s.entryFor(spec).refOptimum(spec, obj)
}
