package jobs_test

import (
	"context"
	"testing"
	"time"

	"repro/async"
	"repro/async/jobs"
)

// BenchmarkSchedulerThroughput measures end-to-end jobs/sec through a
// 2-engine local-transport pool: real ASGD runs on a shared tiny dataset
// (affinity keeps it resident), submitted ahead of the pool so the queue
// stays warm. The jobs/sec metric is the serving-layer headline number.
func BenchmarkSchedulerThroughput(b *testing.B) {
	s, err := jobs.New(jobs.Config{
		Engines:    2,
		QueueDepth: b.N + 1,
		Retention:  b.N + 1,
		EngineOptions: []async.Option{
			async.WithWorkers(2),
			async.WithPartitions(2),
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	spec := jobs.Spec{
		Algorithm: "asgd",
		Dataset:   jobs.DatasetSpec{Name: "rcv1-like"},
		Step:      jobs.StepSpec{Kind: "const", A: 0.01},
		Updates:   25,
	}
	// warm up: engines spun, dataset generated and distributed
	id, err := s.Submit(spec)
	if err != nil {
		b.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if _, err := s.Wait(ctx, id); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	start := time.Now()
	ids := make([]jobs.ID, b.N)
	for i := range b.N {
		if ids[i], err = s.Submit(spec); err != nil {
			b.Fatal(err)
		}
	}
	for _, id := range ids {
		job, err := s.Wait(ctx, id)
		if err != nil {
			b.Fatal(err)
		}
		if job.State != jobs.StateDone {
			b.Fatalf("job %s: %s (%s)", job.ID, job.State, job.Err)
		}
	}
	elapsed := time.Since(start)
	b.ReportMetric(float64(b.N)/elapsed.Seconds(), "jobs/sec")
}
