package jobs_test

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/async"
	"repro/async/jobs"
	"repro/async/jobs/store"
	"repro/internal/la"
)

// dedicated controllable solvers for the durability tests (the registry is
// process-global, so instances are per-scenario to keep channels isolated)
var (
	gateDrainA = newPGate("pgate-drain-a")
	gateDrainB = newGate("gate-drain-b")
	gateProm   = newGate("gate-prom")
)

func init() {
	if err := async.Register(gateDrainA); err != nil {
		panic(err)
	}
	for _, g := range []*gate{gateDrainB, gateProm} {
		if err := async.Register(g); err != nil {
			panic(err)
		}
	}
}

func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timeout waiting for %s", what)
}

// TestCrashRecoveryResumeEquivalenceE2E is the durability acceptance test:
// a WAL-backed run is killed mid-flight (store failpoint = kill -9 at the
// store layer), a second scheduler recovers the directory, resumes the job
// from its last durable checkpoint, and the final model is bitwise
// identical to an uninterrupted run on the same seed.
func TestCrashRecoveryResumeEquivalenceE2E(t *testing.T) {
	spec := jobs.Spec{
		Algorithm:       "asgd",
		Dataset:         jobs.DatasetSpec{Name: "rcv1-like"},
		Step:            jobs.StepSpec{Kind: "const", A: 0.01},
		Updates:         1200,
		SnapshotEvery:   25,
		CheckpointEvery: 100,
	}
	engOpts := []async.Option{
		async.WithWorkers(1),
		async.WithPartitions(2),
		async.WithMinTaskTime(200 * time.Microsecond),
	}

	// reference: uninterrupted, no store
	sRef := newScheduler(t, jobs.Config{Engines: 1, EngineOptions: engOpts})
	refID, err := sRef.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, sRef, refID, jobs.StateDone)
	refRes, err := sRef.Result(refID)
	if err != nil || refRes == nil {
		t.Fatalf("reference result: %v", err)
	}
	wFull := refRes.W

	// crashed: WAL-backed, killed after the first durable checkpoint
	dir := t.TempDir()
	w1, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s1 := newScheduler(t, jobs.Config{Engines: 1, EngineOptions: engOpts, Store: w1})
	id, err := s1.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, 30*time.Second, "a durable checkpoint", func() bool {
		m := w1.Metrics()
		return m.CheckpointSpills >= 1 && m.Appends >= 3 // submitted+dispatched+checkpointed
	})
	w1.Kill() // every later store op fails: the log freezes at this instant
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	// reboot: a fresh WAL handle on the same dir, a fresh scheduler
	w2, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	s2 := newScheduler(t, jobs.Config{Engines: 1, EngineOptions: engOpts, Store: w2})
	st := s2.Stats()
	if st.RecoveredJobs != 1 {
		t.Fatalf("recovered %d jobs, want 1", st.RecoveredJobs)
	}
	if st.RecoveryMS <= 0 {
		t.Fatalf("recovery time not measured: %+v", st)
	}
	job, err := s2.Wait(context.Background(), id)
	if err != nil {
		t.Fatal(err)
	}
	if job.State != jobs.StateDone {
		t.Fatalf("recovered job finished %s (err %q), want done", job.State, job.Err)
	}
	recRes, err := s2.Result(id)
	if err != nil || recRes == nil {
		t.Fatalf("recovered result: %v", err)
	}
	if !la.Equal(wFull, recRes.W, 0) {
		t.Fatal("crash-recovered model != uninterrupted model on a fixed seed")
	}
}

// TestGracefulDrainRestartNoWorkLost: Drain preempts the running job, its
// checkpoint lands durably, queued work stays queued, and a successor
// scheduler on the same directory resumes everything — the restart loses no
// submitted job and no checkpointed progress.
func TestGracefulDrainRestartNoWorkLost(t *testing.T) {
	dir := t.TempDir()
	w1, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s1 := newScheduler(t, jobs.Config{Engines: 1, Store: w1})
	runningID, err := s1.Submit(gateSpec2(gateDrainA.name, 71))
	if err != nil {
		t.Fatal(err)
	}
	expectStartTag(t, gateDrainA.starts, 71)
	queuedID, err := s1.Submit(gateSpec(gateDrainB, 72))
	if err != nil {
		t.Fatal(err)
	}

	dctx, dcancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer dcancel()
	if err := s1.Drain(dctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	// drained: the preempted checkpoint is on disk, nothing was finalized
	if m := w1.Metrics(); m.CheckpointSpills < 1 {
		t.Fatalf("drain spilled no checkpoint: %+v", m)
	}
	if job, err := s1.Status(runningID); err != nil || job.State != jobs.StatePreempted {
		t.Fatalf("running job after drain: %+v (err %v), want preempted", job, err)
	}
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s1.Drain(dctx); err == nil {
		t.Fatal("drain after close succeeded, want error")
	}
	w1.Close()

	// restart: both jobs come back — the preempted one resumes from its
	// checkpoint, the queued one runs after it
	w2, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	s2 := newScheduler(t, jobs.Config{Engines: 1, Store: w2})
	if st := s2.Stats(); st.RecoveredJobs != 2 {
		t.Fatalf("recovered %d jobs, want 2", st.RecoveredJobs)
	}
	expectResume(t, gateDrainA, 71) // resumed from the drained checkpoint
	releasePG(t, gateDrainA)
	waitState(t, s2, runningID, jobs.StateDone)
	expectStart(t, gateDrainB, 72)
	release(t, gateDrainB)
	waitState(t, s2, queuedID, jobs.StateDone)
}

// TestPrometheusMetricsScrape pins the /v1/metrics exposition: Prometheus
// text content type, serving counters, WAL counters, tenant labels; /v1/stats
// keeps the JSON Stats shape.
func TestPrometheusMetricsScrape(t *testing.T) {
	dir := t.TempDir()
	w, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	s := newScheduler(t, jobs.Config{Engines: 1, Store: w})
	srv := httptest.NewServer(jobs.NewHandler(s))
	defer srv.Close()

	spec := gateSpec(gateProm, 81)
	spec.Tenant = "acme"
	id := postJob(t, srv.URL, spec)
	expectStart(t, gateProm, 81)
	release(t, gateProm)
	waitState(t, s, id, jobs.StateDone)

	resp, err := http.Get(srv.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("metrics content type %q, want text/plain exposition", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	for _, want := range []string{
		"# TYPE asyncd_jobs_submitted_total counter",
		"asyncd_jobs_submitted_total 1",
		"asyncd_jobs_done_total 1",
		"asyncd_wal_appends_total",
		"asyncd_wal_fsync_seconds_count",
		"asyncd_wal_size_bytes",
		`asyncd_tenant_jobs_submitted_total{tenant="acme"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics body missing %q:\n%s", want, body)
		}
	}
}
