package jobs_test

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/async"
	"repro/async/jobs"
)

var (
	gateTenant    = newGate("gate-tenant")
	gatePage      = newGate("gate-page")
	gateSLOVictim = newPGate("pgate-slo-victim")
	gateSLOUrgent = newGate("gate-slo-urgent")
)

func init() {
	for _, g := range []*gate{gateTenant, gatePage, gateSLOUrgent} {
		if err := async.Register(g); err != nil {
			panic(err)
		}
	}
	if err := async.Register(gateSLOVictim); err != nil {
		panic(err)
	}
}

// TestTenantQuotaFairness pins per-tenant admission under saturation: one
// tenant filling its queue quota gets 429-style rejections while another
// tenant's submissions are still admitted.
func TestTenantQuotaFairness(t *testing.T) {
	s := newScheduler(t, jobs.Config{Engines: 1, QueueDepth: 64, TenantQuota: 2})

	// occupy the only engine so everything else queues
	if _, err := s.Submit(gateSpec(gateTenant, 11)); err != nil {
		t.Fatal(err)
	}
	expectStart(t, gateTenant, 11)

	submitAs := func(tenant string, tag int) error {
		spec := gateSpec(gateTenant, tag)
		spec.Tenant = tenant
		_, err := s.Submit(spec)
		return err
	}
	for i := 0; i < 2; i++ {
		if err := submitAs("alice", 12+i); err != nil {
			t.Fatalf("alice submit %d within quota: %v", i, err)
		}
	}
	err := submitAs("alice", 14)
	if !errors.Is(err, jobs.ErrQueueFull) {
		t.Fatalf("alice over quota: %v, want ErrQueueFull", err)
	}
	if !strings.Contains(err.Error(), `tenant "alice"`) {
		t.Fatalf("quota error %q does not name the tenant", err)
	}
	// fairness: alice saturating her quota must not block bob
	for i := 0; i < 2; i++ {
		if err := submitAs("bob", 15+i); err != nil {
			t.Fatalf("bob submit %d while alice saturated: %v", i, err)
		}
	}
	st := s.Stats()
	al, bo := st.Tenants["alice"], st.Tenants["bob"]
	if al.Submitted != 2 || al.Rejected != 1 || al.Queued != 2 {
		t.Fatalf("alice stats %+v, want submitted=2 rejected=1 queued=2", al)
	}
	if bo.Submitted != 2 || bo.Rejected != 0 || bo.Queued != 2 {
		t.Fatalf("bob stats %+v, want submitted=2 rejected=0 queued=2", bo)
	}
}

// TestSLOAutoPreemption: a running job with no deadline is preempted for an
// equal-priority head-of-queue job whose SLO deadline is inside the slack
// window, then resumes from its checkpoint once the urgent job finishes.
func TestSLOAutoPreemption(t *testing.T) {
	s := newScheduler(t, jobs.Config{Engines: 1, SLOSlack: 5 * time.Second})
	victimID, err := s.Submit(gateSpec2(gateSLOVictim.name, 21))
	if err != nil {
		t.Fatal(err)
	}
	expectStartTag(t, gateSLOVictim.starts, 21)

	urgent := gateSpec(gateSLOUrgent, 22)
	urgent.SLOMillis = 1000 // deadline slack ~1s < 5s SLOSlack window
	urgentID, err := s.Submit(urgent)
	if err != nil {
		t.Fatal(err)
	}
	expectStart(t, gateSLOUrgent, 22) // urgent got the engine
	if job, err := s.Status(victimID); err != nil || job.State != jobs.StatePreempted {
		t.Fatalf("victim state %+v (err %v), want preempted", job, err)
	}
	release(t, gateSLOUrgent)
	waitState(t, s, urgentID, jobs.StateDone)
	expectResume(t, gateSLOVictim, 21)
	releasePG(t, gateSLOVictim)
	waitState(t, s, victimID, jobs.StateDone)
}

// TestListFilterPagination drives GET /v1/jobs with state filters, limits,
// and cursors, and checks the bare listing keeps its original array shape.
func TestListFilterPagination(t *testing.T) {
	s := newScheduler(t, jobs.Config{Engines: 1, QueueDepth: 16})
	srv := httptest.NewServer(jobs.NewHandler(s))
	defer srv.Close()

	running := postJob(t, srv.URL, gateSpec(gatePage, 31))
	expectStart(t, gatePage, 31)
	var queued []jobs.ID
	for i := 0; i < 4; i++ {
		spec := gateSpec(gatePage, 32+i)
		if i%2 == 0 {
			spec.Tenant = "even"
		}
		queued = append(queued, postJob(t, srv.URL, spec))
	}

	type page struct {
		Jobs []jobs.Job `json:"jobs"`
		Next jobs.ID    `json:"next"`
	}
	getPage := func(query string) page {
		t.Helper()
		resp, err := http.Get(srv.URL + "/v1/jobs?" + query)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET /v1/jobs?%s: status %d", query, resp.StatusCode)
		}
		var p page
		if err := json.NewDecoder(resp.Body).Decode(&p); err != nil {
			t.Fatal(err)
		}
		return p
	}

	p1 := getPage("state=queued&limit=2")
	if len(p1.Jobs) != 2 || p1.Jobs[0].ID != queued[0] || p1.Jobs[1].ID != queued[1] {
		t.Fatalf("page 1 %+v, want first two queued jobs", p1.Jobs)
	}
	if p1.Next == "" {
		t.Fatal("page 1 has more results but no cursor")
	}
	p2 := getPage(fmt.Sprintf("state=queued&limit=2&cursor=%s", p1.Next))
	if len(p2.Jobs) != 2 || p2.Jobs[0].ID != queued[2] || p2.Jobs[1].ID != queued[3] {
		t.Fatalf("page 2 %+v, want last two queued jobs", p2.Jobs)
	}
	if p2.Next != "" {
		t.Fatalf("page 2 cursor %q, want exhausted", p2.Next)
	}
	if p := getPage("state=running"); len(p.Jobs) != 1 || p.Jobs[0].ID != running {
		t.Fatalf("running filter %+v, want the one running job", p.Jobs)
	}
	if p := getPage("tenant=even"); len(p.Jobs) != 2 {
		t.Fatalf("tenant filter got %d jobs, want 2", len(p.Jobs))
	}
	if p := getPage("state=done"); len(p.Jobs) != 0 || p.Next != "" {
		t.Fatalf("done filter %+v, want empty", p)
	}
	// a cursor naming an evicted/unknown job still positions by its ordinal
	if p := getPage("state=queued&cursor=job-000099"); len(p.Jobs) != 0 {
		t.Fatalf("cursor past the end returned %d jobs, want 0", len(p.Jobs))
	}
	// an unparseable cursor falls back to the start of the listing
	if p := getPage("cursor=not-a-job-id"); len(p.Jobs) != 5 {
		t.Fatalf("garbage cursor returned %d jobs, want all 5", len(p.Jobs))
	}

	// invalid parameters are rejected
	for _, q := range []string{"state=bogus", "limit=-1", "limit=abc"} {
		resp, err := http.Get(srv.URL + "/v1/jobs?" + q)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("GET /v1/jobs?%s: status %d, want 400", q, resp.StatusCode)
		}
	}

	// the bare listing keeps the original flat-array contract
	resp, err := http.Get(srv.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var flat []jobs.Job
	if err := json.NewDecoder(resp.Body).Decode(&flat); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(flat) != 5 {
		t.Fatalf("bare list has %d jobs, want 5", len(flat))
	}
}
