package jobs

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/async/jobs/store"
	"repro/internal/opt"
	"repro/internal/telemetry"
)

// replayJob accumulates one job's state while the log replays: the last
// state-defining record wins, checkpointed records ride along.
type replayJob struct {
	id          ID
	jobSeq      int64
	spec        []byte
	submitted   int64 // unix nanos
	state       State
	updates     int64
	cpSeq       int64 // dispatch seq keying the last durable spill
	cpUpdates   int64
	hasCp       bool
	preemptions int
	detail      string
	finalErr    float64
	hasFinal    bool
	finished    int64 // unix nanos of the terminal record
}

// recover rebuilds the scheduler from the store's log: terminal jobs
// reload into the retention store, queued jobs re-enqueue in priority/FIFO
// order, and jobs that were running or preempted at the crash re-enqueue
// as preempted with their last durable checkpoint — they resume through
// the normal Params.Resume path, losing at most CheckpointEvery updates.
// Called once from New, before the scheduler serves.
func (s *Scheduler) recover() error {
	start := time.Now()
	byID := map[ID]*replayJob{}
	var order []*replayJob
	replay := s.cfg.Store.Replay
	if s.leaseStore != nil {
		// replica mode replays through the watermarked tail reader so the
		// tail-scan loop starts exactly where recovery stopped
		replay = func(fn func(store.Record) error) error {
			wm, rerr := s.leaseStore.ReplaySince(store.Watermark{}, fn)
			if rerr == nil {
				s.wm = wm
			}
			return rerr
		}
	}
	err := replay(func(rec store.Record) error {
		id := ID(rec.Job)
		rj := byID[id]
		if rj == nil {
			if rec.Type != store.TypeSubmitted {
				// orphan transition (its submit was compacted away with a
				// terminal record the retention limit then dropped): skip
				return nil
			}
			rj = &replayJob{id: id, state: StateQueued}
			byID[id] = rj
			order = append(order, rj)
		}
		switch rec.Type {
		case store.TypeSubmitted:
			rj.jobSeq = rec.JobSeq
			rj.spec = rec.Spec
			rj.submitted = rec.Time
		case store.TypeDispatched:
			rj.state = StateRunning
		case store.TypeCheckpointed:
			rj.cpSeq, rj.cpUpdates, rj.hasCp = rec.DispatchSeq, rec.Updates, true
			if rec.Updates > rj.updates {
				rj.updates = rec.Updates
			}
		case store.TypePreempted:
			rj.state = StatePreempted
			rj.preemptions++
			rj.cpSeq, rj.cpUpdates, rj.hasCp = rec.DispatchSeq, rec.Updates, true
			if rec.Updates > rj.updates {
				rj.updates = rec.Updates
			}
		case store.TypeDone:
			rj.state = StateDone
			rj.updates = rec.Updates
			rj.finalErr, rj.hasFinal = rec.FinalError, rec.HasFinal
			rj.finished = rec.Time
		case store.TypeFailed:
			rj.state, rj.detail, rj.finished = StateFailed, rec.Detail, rec.Time
		case store.TypeCanceled:
			rj.state, rj.detail, rj.finished = StateCanceled, rec.Detail, rec.Time
		}
		return nil
	})
	if err != nil {
		return fmt.Errorf("jobs: recovery replay: %w", err)
	}

	// materialize in submission order so queue FIFO-within-priority and the
	// ID sequence both restore deterministically
	sort.Slice(order, func(a, b int) bool { return order[a].jobSeq < order[b].jobSeq })
	s.mu.Lock()
	defer s.mu.Unlock()
	var terminal []*job
	for _, rj := range order {
		if rj.jobSeq > s.seq {
			s.seq = rj.jobSeq
		}
		// rebuild the serving counters the log proves: every replayed job was
		// once accepted, and terminal records pin their outcome. Without this
		// the Prometheus counters would reset to zero on every restart while
		// the job listing still showed the finished work. Jobs that fail
		// during rebuild (stale spec) are counted by finalizeLocked itself.
		s.submitted++
		s.preemptedN += int64(rj.preemptions)
		switch rj.state {
		case StateDone:
			s.doneN++
		case StateFailed:
			s.failedN++
		case StateCanceled:
			s.killedN++
		}
		j, err := s.rebuildLocked(rj)
		if err != nil {
			return err
		}
		if j.state.Terminal() {
			terminal = append(terminal, j)
		}
	}
	// retention order is completion order
	sort.Slice(terminal, func(a, b int) bool {
		return terminal[a].finished.Before(terminal[b].finished)
	})
	for _, j := range terminal {
		s.terminal = append(s.terminal, j.id)
	}
	for len(s.terminal) > s.cfg.Retention {
		delete(s.jobs, s.terminal[0])
		s.terminal = s.terminal[1:]
	}
	s.recoveredN = len(s.jobs)
	// replica mode: jobs whose live lease another replica holds are
	// mirrors, not local work — pull them back out of the queue. Expired
	// foreign leases mark adoption candidates (the failover latency
	// anchors to the expiry instant). Our own pre-crash leases need no
	// handling: the jobs re-enqueued above and re-claim through the CAS,
	// which bumps the epoch past the stale one.
	if s.leaseStore != nil {
		if leases, lerr := s.leaseStore.Leases(); lerr == nil {
			now := time.Now()
			for _, l := range leases {
				j, ok := s.jobs[ID(l.Job)]
				if !ok || j.state.Terminal() || l.Owner == s.cfg.ReplicaID {
					continue
				}
				if l.Live(now) {
					s.removeFromQueueLocked(j)
					j.remote, j.remoteOwner = true, l.Owner
				} else if j.orphanedAt.IsZero() {
					j.orphanedAt = time.Unix(0, l.ExpiresAt)
				}
			}
		} else {
			s.storeErrs++
		}
	}
	// recovery ends with a compaction — in single-owner mode only: the
	// rebuilt state is the live set and the old log (torn tail included)
	// is rewritten to exactly it. A replica must never rewrite the shared
	// log around its peers' live jobs; Shared self-compacts from the full
	// log instead.
	if s.leaseStore == nil {
		if err := s.compactLocked(); err != nil {
			return fmt.Errorf("jobs: post-recovery compaction: %w", err)
		}
	}
	s.recoveryDur = time.Since(start)
	s.dispatchLocked()
	return nil
}

// rebuildLocked turns one replayed job into a live scheduler record.
func (s *Scheduler) rebuildLocked(rj *replayJob) (*job, error) {
	var spec Spec
	if err := json.Unmarshal(rj.spec, &spec); err != nil {
		return nil, fmt.Errorf("jobs: recovery: job %s spec: %w", rj.id, err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	j := &job{
		id:          rj.id,
		spec:        spec,
		dataKey:     spec.Dataset.Key(),
		seq:         rj.jobSeq,
		engine:      -1,
		submitted:   time.Unix(0, rj.submitted),
		queued:      time.Unix(0, rj.submitted),
		updates:     rj.updates,
		preemptions: rj.preemptions,
		ctx:         ctx,
		cancel:      cancel,
		done:        make(chan struct{}),
	}
	if spec.SLOMillis > 0 {
		j.deadline = j.submitted.Add(time.Duration(spec.SLOMillis) * time.Millisecond)
	}
	j.trace = telemetry.NewTrace(string(j.id), 0)
	j.trace.Event("recovered", "state", string(rj.state), "updates", rj.updates,
		"preemptions", rj.preemptions)
	s.tenantSub[spec.Tenant]++
	if rj.state == StateDone {
		s.tenantDone[spec.Tenant]++
	}
	s.jobs[j.id] = j

	if rj.state.Terminal() {
		j.state = rj.state
		j.err = rj.detail
		j.finished = time.Unix(0, rj.finished)
		if rj.hasFinal {
			j.finalErr = finitePtr(rj.finalErr)
		}
		close(j.done)
		s.emitLocked(j, EventType(rj.state), j.err)
		return j, nil
	}

	// non-terminal: validate the spec against this process's registry and
	// catalog; a job whose algorithm no longer resolves fails loudly
	// instead of wedging the queue
	if err := spec.normalize(); err != nil {
		j.state = StateQueued
		s.finalizeLocked(j, nil, fmt.Errorf("recovery: %w", err))
		return j, nil
	}
	j.spec = spec

	if rj.hasCp {
		cp, err := s.cfg.Store.LoadCheckpoint(string(j.id), rj.cpSeq)
		if err == nil {
			// resumes through the normal preempted path
			j.cp = cp
			j.cpSeq, j.cpUpdates, j.cpSpilled = rj.cpSeq, rj.cpUpdates, true
			j.state = StatePreempted
			j.queued = time.Now() // queue-wait accounting restarts here
			s.enqueueLocked(j)
			s.emitLocked(j, EventQueued, "")
			s.emitLocked(j, EventPreempted, "recovered")
			return j, nil
		}
		// spill missing or corrupt: restart the job from scratch rather
		// than refusing to serve it (work since update 0 is lost, which the
		// log can only ever under-state, never invent)
		s.storeErrs++
	}
	j.state = StateQueued
	j.queued = time.Now()
	s.enqueueLocked(j)
	s.emitLocked(j, EventQueued, "")
	return j, nil
}

// snapshotRecordsLocked rebuilds the compaction snapshot from live state:
// for every held job, a submitted record plus its current state-defining
// records. Replaying the snapshot reproduces exactly the scheduler's
// recoverable state.
func (s *Scheduler) snapshotRecordsLocked() []*store.Record {
	ordered := make([]*job, 0, len(s.jobs))
	for _, j := range s.jobs {
		ordered = append(ordered, j)
	}
	sort.Slice(ordered, func(a, b int) bool { return ordered[a].seq < ordered[b].seq })
	recs := make([]*store.Record, 0, 2*len(ordered))
	for _, j := range ordered {
		specJSON, err := json.Marshal(j.spec)
		if err != nil {
			continue
		}
		recs = append(recs, &store.Record{
			Type: store.TypeSubmitted, Job: string(j.id), Time: j.submitted.UnixNano(),
			JobSeq: j.seq, Spec: specJSON,
		})
		if j.cpSpilled && !j.state.Terminal() {
			recs = append(recs, &store.Record{
				Type: store.TypeCheckpointed, Job: string(j.id), Time: j.submitted.UnixNano(),
				Updates: j.cpUpdates, DispatchSeq: j.cpSeq,
			})
		}
		switch j.state {
		case StateRunning:
			recs = append(recs, &store.Record{
				Type: store.TypeDispatched, Job: string(j.id), Time: j.started.UnixNano(),
			})
		case StatePreempted:
			recs = append(recs, &store.Record{
				Type: store.TypePreempted, Job: string(j.id), Time: j.queued.UnixNano(),
				Updates: j.cpUpdates, DispatchSeq: j.cpSeq,
			})
		case StateDone:
			rec := &store.Record{
				Type: store.TypeDone, Job: string(j.id), Time: j.finished.UnixNano(),
				Updates: j.updates,
			}
			if j.finalErr != nil {
				rec.FinalError, rec.HasFinal = *j.finalErr, true
			}
			recs = append(recs, rec)
		case StateFailed:
			recs = append(recs, &store.Record{
				Type: store.TypeFailed, Job: string(j.id), Time: j.finished.UnixNano(), Detail: j.err,
			})
		case StateCanceled:
			recs = append(recs, &store.Record{
				Type: store.TypeCanceled, Job: string(j.id), Time: j.finished.UnixNano(), Detail: j.err,
			})
		}
	}
	return recs
}

// compactLocked rewrites the log to the live set when the store is
// configured. Called under the scheduler lock (compaction must not race
// appends that would then be lost by the rewrite).
func (s *Scheduler) compactLocked() error {
	if s.cfg.Store == nil {
		return nil
	}
	return s.cfg.Store.Compact(s.snapshotRecordsLocked())
}

// spillLocked durably saves a checkpoint keyed by its dispatch_seq and then
// appends the record (TypeCheckpointed or TypePreempted) that references
// it — spill strictly first, so the log never names a spill that is not on
// disk. Best effort: a failed spill is counted and the job keeps serving
// from memory.
func (s *Scheduler) spillLocked(j *job, cp *opt.Checkpoint, typ store.Type) {
	if s.cfg.Store == nil || cp == nil {
		return
	}
	seq := cp.Int("dispatch_seq")
	if err := s.cfg.Store.SaveCheckpoint(string(j.id), seq, cp); err != nil {
		s.storeErrs++
		return
	}
	j.cpSeq, j.cpUpdates, j.cpSpilled = seq, cp.Updates, true
	s.logAppendLocked(s.stampOwner(j, &store.Record{
		Type: typ, Job: string(j.id), Updates: cp.Updates, DispatchSeq: seq,
	}))
}

// logAppendLocked appends a lifecycle record, best effort: serving does not
// stop when the disk misbehaves, but the failure is counted and surfaced
// through Stats/metrics. Submit is the exception — it calls the store
// directly because acknowledging an unlogged job would break the
// append-before-ack invariant. Triggers compaction past the threshold.
func (s *Scheduler) logAppendLocked(rec *store.Record) {
	if s.cfg.Store == nil {
		return
	}
	if rec.Time == 0 {
		rec.Time = time.Now().UnixNano()
	}
	if err := s.cfg.Store.Append(rec); err != nil {
		s.storeErrs++
		if errors.Is(err, store.ErrFenced) {
			// a stale fencing token, not a sick disk: the job's adopter owns
			// its history now, and serving is not degraded
			s.fencedN++
		} else {
			s.degraded = true
		}
		return
	}
	s.degraded = false
	if s.leaseStore != nil {
		// a replica never rewrites the shared log around its peers' live
		// jobs; Shared self-compacts past its own threshold instead
		return
	}
	if s.cfg.Store.Metrics().AppendsSinceCompact >= int64(s.cfg.CompactEvery) {
		if err := s.compactLocked(); err != nil {
			s.storeErrs++
		}
	}
}
