package jobs_test

import (
	"context"
	"errors"
	"os"
	"strconv"
	"testing"
	"time"

	"repro/async"
	"repro/async/jobs"
	"repro/async/jobs/store"
	"repro/async/jobs/store/faulty"
	"repro/internal/la"
)

// The chaos suite is deterministic: fault plans fire at exact operation
// ordinals, and the probabilistic plans draw from CHAOS_SEED (default 1),
// so a failing run replays from its seed. CI runs the suite under -race
// across a fixed seed matrix.

func chaosSeed() int64 {
	if v := os.Getenv("CHAOS_SEED"); v != "" {
		if n, err := strconv.ParseInt(v, 10, 64); err == nil {
			return n
		}
	}
	return 1
}

var gateChaos = newGate("gate-chaos")

func init() {
	if err := async.Register(gateChaos); err != nil {
		panic(err)
	}
}

// replicaConfig builds a replica-mode scheduler config with chaos-friendly
// lease timing: short enough that failover happens in test time, long
// enough that a healthy replica never self-fences under -race scheduling.
func replicaConfig(st store.Store, replica string) jobs.Config {
	return jobs.Config{
		Engines:        1,
		Store:          st,
		ReplicaID:      replica,
		LeaseTTL:       400 * time.Millisecond,
		RenewEvery:     80 * time.Millisecond,
		AdoptScanEvery: 80 * time.Millisecond,
	}
}

// verifyLog replays the shared log and enforces the two cluster-wide safety
// invariants: claim epochs strictly increase per job, and the job under
// test has exactly one terminal Done record. Returns that record.
func verifyLog(t *testing.T, replay func(func(store.Record) error) error, id jobs.ID) store.Record {
	t.Helper()
	lastEpoch := map[string]int64{}
	var done []store.Record
	err := replay(func(r store.Record) error {
		if r.Type == store.TypeClaimed {
			if r.Epoch <= lastEpoch[r.Job] {
				t.Fatalf("claim epoch %d on %s after epoch %d: not strictly increasing", r.Epoch, r.Job, lastEpoch[r.Job])
			}
			lastEpoch[r.Job] = r.Epoch
		}
		if r.Type == store.TypeDone && r.Job == string(id) {
			done = append(done, r)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(done) != 1 {
		t.Fatalf("job %s has %d Done records, want exactly 1 (double run)", id, len(done))
	}
	return done[0]
}

// asgdSpec is the real-solver workload the failover tests run: long enough
// to spill checkpoints, deterministic on a fixed dataset seed.
func asgdSpec(updates int) jobs.Spec {
	return jobs.Spec{
		Algorithm:       "asgd",
		Dataset:         jobs.DatasetSpec{Name: "rcv1-like"},
		Step:            jobs.StepSpec{Kind: "const", A: 0.01},
		Updates:         updates,
		SnapshotEvery:   25,
		CheckpointEvery: 100,
	}
}

var chaosEngOpts = []async.Option{
	async.WithWorkers(1),
	async.WithPartitions(2),
	async.WithMinTaskTime(200 * time.Microsecond),
}

// TestChaosKillReplicaFailoverE2E is the failover acceptance test: replica
// A runs a real solve over a shared directory and is killed mid-run
// (scheduler and store handle die without releasing anything); replica B
// adopts the orphan after lease expiry, resumes from A's last durable
// checkpoint, and finishes with the update budget intact — the final model
// is bitwise identical to an uninterrupted run on the same seed.
func TestChaosKillReplicaFailoverE2E(t *testing.T) {
	spec := asgdSpec(1200)

	// reference: uninterrupted, no store
	sRef := newScheduler(t, jobs.Config{Engines: 1, EngineOptions: chaosEngOpts})
	refID, err := sRef.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, sRef, refID, jobs.StateDone)
	refRes, err := sRef.Result(refID)
	if err != nil || refRes == nil {
		t.Fatalf("reference result: %v", err)
	}

	dir := t.TempDir()
	shA, err := store.OpenShared(dir, "a", store.SharedOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	cfgA := replicaConfig(shA, "a")
	cfgA.EngineOptions = chaosEngOpts
	sA := newScheduler(t, cfgA)
	id, err := sA.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, 30*time.Second, "a durable checkpoint on replica a", func() bool {
		return shA.Metrics().CheckpointSpills >= 1
	})
	sA.Kill() // crash: nothing finalized, nothing released, lease still live
	shA.Kill()

	shB, err := store.OpenShared(dir, "b", store.SharedOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer shB.Close()
	cfgB := replicaConfig(shB, "b")
	cfgB.EngineOptions = chaosEngOpts
	sB := newScheduler(t, cfgB)

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	job, err := sB.Wait(ctx, id)
	if err != nil {
		t.Fatalf("wait on survivor: %v", err)
	}
	if job.State != jobs.StateDone {
		t.Fatalf("failed-over job finished %s (err %q), want done", job.State, job.Err)
	}
	if job.Updates != int64(spec.Updates) {
		t.Fatalf("failed-over job ran %d updates, want the full budget %d", job.Updates, spec.Updates)
	}
	recRes, err := sB.Result(id)
	if err != nil || recRes == nil {
		t.Fatalf("survivor result: %v", err)
	}
	if !la.Equal(refRes.W, recRes.W, 0) {
		t.Fatal("failed-over model != uninterrupted model on a fixed seed")
	}
	st := sB.Stats()
	if st.Adopted < 1 {
		t.Fatalf("survivor adopted %d jobs, want >= 1", st.Adopted)
	}
	if st.FailoverMS <= 0 {
		t.Fatalf("failover latency not measured: %+v", st)
	}

	done := verifyLog(t, shB.Replay, id)
	if done.Updates != int64(spec.Updates) {
		t.Fatalf("Done record logs %d updates, want %d", done.Updates, spec.Updates)
	}
	if done.Owner != "b" {
		t.Fatalf("Done record owned by %q, want the survivor b", done.Owner)
	}
}

// TestChaosPartitionFencedE2E: a replica partitioned from the store (every
// store operation frozen) loses its lease; a second replica adopts and
// finishes the job. When the partition heals, the stale owner is fenced —
// its run is abandoned, its epoch rejects appends — and exactly one Done
// record lands in the log.
func TestChaosPartitionFencedE2E(t *testing.T) {
	mem := store.NewMem()
	fA := faulty.Wrap(mem, faulty.Plan{Seed: chaosSeed()})
	sA := newScheduler(t, replicaConfig(fA, "a"))
	sB := newScheduler(t, replicaConfig(mem, "b"))

	id, err := sA.Submit(gateSpec(gateChaos, 901))
	if err != nil {
		t.Fatal(err)
	}
	expectStart(t, gateChaos, 901) // a runs it

	fA.Pause() // partition: a cannot renew, append, or even observe the log
	// b imports the submission from the tail, sees the lease expire, adopts
	expectStart(t, gateChaos, 901) // the adopted re-dispatch on b
	waitFor(t, 10*time.Second, "adoption counted on b", func() bool {
		return sB.Stats().Adopted >= 1
	})

	fA.Resume() // heal: a's next heartbeat learns it was fenced
	waitFor(t, 10*time.Second, "stale owner fenced on a", func() bool {
		return sA.Stats().Fenced >= 1
	})
	// the stale epoch is dead: post-expiry appends are rejected
	err = mem.Append(&store.Record{Type: store.TypeDone, Job: string(id), Owner: "a", Epoch: 1})
	if !errors.Is(err, store.ErrFenced) {
		t.Fatalf("stale-owner append: %v, want ErrFenced", err)
	}

	release(t, gateChaos) // only b's run still holds the gate
	job := waitState(t, sB, id, jobs.StateDone)
	if job.Updates != 901 {
		t.Fatalf("adopted run logged %d updates, want 901", job.Updates)
	}
	verifyLog(t, mem.Replay, id)

	// the healed replica mirrors the adopter's terminal record
	waitFor(t, 10*time.Second, "terminal mirror on a", func() bool {
		j, err := sA.Status(id)
		return err == nil && j.State == jobs.StateDone
	})
	if m := mem.Metrics(); m.FencedAppends < 1 {
		t.Fatalf("no fenced operations counted: %+v", m)
	}
}

// TestChaosCrashRecoverLoopE2E kills and replaces the owning replica twice
// mid-run over one shared directory; a final replica finishes the job. The
// log must show exactly one Done record carrying the full update budget and
// strictly increasing claim epochs — the crash/recover loop never
// double-ran the job.
func TestChaosCrashRecoverLoopE2E(t *testing.T) {
	spec := asgdSpec(1500)
	dir := t.TempDir()

	var id jobs.ID
	for i := 0; i < 2; i++ {
		name := "r" + strconv.Itoa(i)
		sh, err := store.OpenShared(dir, name, store.SharedOptions{NoSync: true})
		if err != nil {
			t.Fatal(err)
		}
		cfg := replicaConfig(sh, name)
		cfg.EngineOptions = chaosEngOpts
		s := newScheduler(t, cfg)
		if i == 0 {
			if id, err = s.Submit(spec); err != nil {
				t.Fatal(err)
			}
		}
		// run until this incarnation has banked progress of its own
		waitFor(t, 60*time.Second, "a checkpoint spill on "+name, func() bool {
			return sh.Metrics().CheckpointSpills >= 1
		})
		s.Kill()
		sh.Kill()
	}

	shF, err := store.OpenShared(dir, "final", store.SharedOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer shF.Close()
	cfg := replicaConfig(shF, "final")
	cfg.EngineOptions = chaosEngOpts
	sF := newScheduler(t, cfg)
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	job, err := sF.Wait(ctx, id)
	if err != nil {
		t.Fatalf("wait on final replica: %v", err)
	}
	if job.State != jobs.StateDone {
		t.Fatalf("job finished %s (err %q) after crash loop, want done", job.State, job.Err)
	}
	done := verifyLog(t, shF.Replay, id)
	if done.Updates != int64(spec.Updates) {
		t.Fatalf("Done record logs %d updates, want the full budget %d", done.Updates, spec.Updates)
	}
}

// TestChaosSeededAppendFaults soaks the degraded-store path: every append
// fails independently with probability 0.2 (drawn from CHAOS_SEED), Submit
// surfaces ErrStoreUnavailable — the client retries — and every accepted
// job still finishes: append failures degrade durability, never liveness.
func TestChaosSeededAppendFaults(t *testing.T) {
	mem := store.NewMem()
	f := faulty.Wrap(mem, faulty.Plan{Seed: chaosSeed(), AppendFailProb: 0.2})
	cfg := jobs.Config{Engines: 1, Store: f, EngineOptions: chaosEngOpts}
	s := newScheduler(t, cfg)

	spec := asgdSpec(60)
	spec.CheckpointEvery = 0
	var ids []jobs.ID
	for i := 0; i < 6; i++ {
		var id jobs.ID
		var err error
		for attempt := 0; attempt < 50; attempt++ {
			id, err = s.Submit(spec)
			if !errors.Is(err, jobs.ErrStoreUnavailable) {
				break
			}
		}
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		ids = append(ids, id)
	}
	for _, id := range ids {
		waitState(t, s, id, jobs.StateDone)
	}
	if st := s.Stats(); st.Done != int64(len(ids)) {
		t.Fatalf("done %d of %d accepted jobs", st.Done, len(ids))
	}
	if f.Injected() == 0 {
		t.Skip("seed injected no faults; rerun with a different CHAOS_SEED")
	}
}
